package scanner

import (
	"testing"

	"safetsa/internal/lang/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := ScanAll("t.tj", src)
	if len(errs) > 0 {
		t.Fatalf("scan errors: %v", errs)
	}
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	got := kinds(t, src)
	want = append(want, token.EOF)
	if len(got) != len(want) {
		t.Fatalf("%q: got %v, want %v", src, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%q: token %d is %v, want %v", src, i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	expectKinds(t, "+ - * / % ++ -- += -= *= /= %=",
		token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.INC, token.DEC, token.ADDASSIGN, token.SUBASSIGN,
		token.MULASSIGN, token.QUOASSIGN, token.REMASSIGN)
	expectKinds(t, "<< >> <<= >>= < <= > >= == != = !",
		token.SHL, token.SHR, token.SHLASSIGN, token.SHRASSIGN,
		token.LSS, token.LEQ, token.GTR, token.GEQ,
		token.EQL, token.NEQ, token.ASSIGN, token.NOT)
	expectKinds(t, "& && | || ^ ~ &= |= ^=",
		token.AND, token.LAND, token.OR, token.LOR, token.XOR, token.TILDE,
		token.ANDASSIGN, token.ORASSIGN, token.XORASSIGN)
	expectKinds(t, "( ) { } [ ] , ; . ? :",
		token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE,
		token.LBRACK, token.RBRACK, token.COMMA, token.SEMI,
		token.DOT, token.QUESTION, token.COLON)
}

func TestKeywordsAndIdents(t *testing.T) {
	expectKinds(t, "class className int integer",
		token.CLASS, token.IDENT, token.INT, token.IDENT)
	expectKinds(t, "while whileTrue do done",
		token.WHILE, token.IDENT, token.DO, token.IDENT)
}

func TestNumbers(t *testing.T) {
	cases := map[string]token.Kind{
		"0":     token.INTLIT,
		"123":   token.INTLIT,
		"0x1F":  token.INTLIT,
		"5L":    token.LONGLIT,
		"5l":    token.LONGLIT,
		"1.5":   token.DOUBLELIT,
		"1.5e3": token.DOUBLELIT,
		"2e-4":  token.DOUBLELIT,
		"3.25d": token.DOUBLELIT,
	}
	for src, want := range cases {
		toks, errs := ScanAll("t", src)
		if len(errs) > 0 {
			t.Errorf("%q: %v", src, errs)
			continue
		}
		if toks[0].Kind != want {
			t.Errorf("%q scanned as %v, want %v", src, toks[0].Kind, want)
		}
	}
	// "1.foo" must NOT eat the dot as a fraction.
	expectKinds(t, "x.length", token.IDENT, token.DOT, token.IDENT)
}

func TestCharAndStringLiterals(t *testing.T) {
	toks, errs := ScanAll("t", `'a' '\n' '\t' '\\' '\'' 'A' "hi\n\"quoted\""`)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	wantLits := []string{"a", "\n", "\t", "\\", "'", "A", "hi\n\"quoted\""}
	for i, want := range wantLits {
		if toks[i].Lit != want {
			t.Errorf("literal %d = %q, want %q", i, toks[i].Lit, want)
		}
	}
}

func TestComments(t *testing.T) {
	expectKinds(t, "a // line comment\n b /* block\n comment */ c",
		token.IDENT, token.IDENT, token.IDENT)
	_, errs := ScanAll("t", "/* unterminated")
	if len(errs) == 0 {
		t.Error("unterminated block comment not reported")
	}
}

func TestErrors(t *testing.T) {
	for _, src := range []string{"@", "\"open", "'x", "'\\q'"} {
		_, errs := ScanAll("t", src)
		if len(errs) == 0 {
			t.Errorf("%q: no error reported", src)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, _ := ScanAll("f.tj", "a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
	if toks[1].Pos.String() != "f.tj:2:3" {
		t.Errorf("pos string %q", toks[1].Pos.String())
	}
}

func TestUnicodeIdentifiers(t *testing.T) {
	toks, errs := ScanAll("t", "größe = 1;")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[0].Kind != token.IDENT || toks[0].Lit != "größe" {
		t.Errorf("got %v %q", toks[0].Kind, toks[0].Lit)
	}
}

// Non-ASCII bytes that are not letters (invalid UTF-8, control runes like
// U+0080, symbols) must not stall the scanner: every Next call has to
// consume at least one byte, or ScanAll and the parser loop forever.
func TestNonLetterHighBytesMakeProgress(t *testing.T) {
	for _, src := range []string{"\x80", "\xff\xfe", "", "÷", "x \x80 y"} {
		toks, errs := ScanAll("t", src)
		if len(errs) == 0 {
			t.Errorf("%q: no error reported", src)
		}
		if len(toks) > len(src)+1 {
			t.Errorf("%q: %d tokens for %d bytes", src, len(toks), len(src))
		}
	}
}
