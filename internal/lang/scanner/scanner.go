// Package scanner implements the lexer for TJ source text.
package scanner

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"safetsa/internal/lang/token"
)

// Error is a lexical error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Scanner tokenizes a single TJ source file.
type Scanner struct {
	file string
	src  string
	off  int // byte offset of the next rune
	line int
	col  int
	errs []error
}

// New returns a scanner over src; file is used in positions.
func New(file, src string) *Scanner {
	return &Scanner{file: file, src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (s *Scanner) Errors() []error { return s.errs }

func (s *Scanner) errorf(pos token.Pos, format string, args ...interface{}) {
	s.errs = append(s.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (s *Scanner) pos() token.Pos {
	return token.Pos{File: s.file, Line: s.line, Col: s.col}
}

func (s *Scanner) peek() byte {
	if s.off >= len(s.src) {
		return 0
	}
	return s.src[s.off]
}

func (s *Scanner) peek2() byte {
	if s.off+1 >= len(s.src) {
		return 0
	}
	return s.src[s.off+1]
}

func (s *Scanner) advance() byte {
	if s.off >= len(s.src) {
		return 0
	}
	c := s.src[s.off]
	s.off++
	if c == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return c
}

func (s *Scanner) skipSpaceAndComments() {
	for s.off < len(s.src) {
		switch c := s.peek(); {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			s.advance()
		case c == '/' && s.peek2() == '/':
			for s.off < len(s.src) && s.peek() != '\n' {
				s.advance()
			}
		case c == '/' && s.peek2() == '*':
			start := s.pos()
			s.advance()
			s.advance()
			closed := false
			for s.off < len(s.src) {
				if s.peek() == '*' && s.peek2() == '/' {
					s.advance()
					s.advance()
					closed = true
					break
				}
				s.advance()
			}
			if !closed {
				s.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || c >= utf8.RuneSelf
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || ('a' <= c && c <= 'f') || ('A' <= c && c <= 'F')
}

// Next returns the next token; at end of input it returns an EOF token
// indefinitely.
func (s *Scanner) Next() token.Token {
	s.skipSpaceAndComments()
	pos := s.pos()
	if s.off >= len(s.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := s.peek()
	switch {
	case isIdentStart(c):
		return s.scanIdent(pos)
	case isDigit(c):
		return s.scanNumber(pos)
	case c == '\'':
		return s.scanChar(pos)
	case c == '"':
		return s.scanString(pos)
	}
	return s.scanOperator(pos)
}

func (s *Scanner) scanIdent(pos token.Pos) token.Token {
	start := s.off
	for s.off < len(s.src) && isIdentPart(s.peek()) {
		if s.peek() >= utf8.RuneSelf {
			r, size := utf8.DecodeRuneInString(s.src[s.off:])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				break
			}
			for i := 0; i < size; i++ {
				s.advance()
			}
			continue
		}
		s.advance()
	}
	if s.off == start {
		// The byte looked like an identifier start (>= utf8.RuneSelf) but
		// does not decode to a letter or digit; consume the whole rune so
		// the scanner always makes progress.
		r, size := utf8.DecodeRuneInString(s.src[s.off:])
		lit := s.src[s.off : s.off+size]
		for i := 0; i < size; i++ {
			s.advance()
		}
		if r == utf8.RuneError && size == 1 {
			s.errorf(pos, "illegal byte %#x", lit[0])
		} else {
			s.errorf(pos, "illegal character %q", r)
		}
		return token.Token{Kind: token.ILLEGAL, Lit: lit, Pos: pos}
	}
	lit := s.src[start:s.off]
	kind := token.Lookup(lit)
	if kind != token.IDENT {
		return token.Token{Kind: kind, Pos: pos, Lit: lit}
	}
	return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}
}

func (s *Scanner) scanNumber(pos token.Pos) token.Token {
	start := s.off
	kind := token.INTLIT
	if s.peek() == '0' && (s.peek2() == 'x' || s.peek2() == 'X') {
		s.advance()
		s.advance()
		if !isHexDigit(s.peek()) {
			s.errorf(pos, "malformed hexadecimal literal")
		}
		for isHexDigit(s.peek()) {
			s.advance()
		}
	} else {
		for isDigit(s.peek()) {
			s.advance()
		}
		if s.peek() == '.' && isDigit(s.peek2()) {
			kind = token.DOUBLELIT
			s.advance()
			for isDigit(s.peek()) {
				s.advance()
			}
		}
		if s.peek() == 'e' || s.peek() == 'E' {
			next := s.peek2()
			expOK := isDigit(next)
			if (next == '+' || next == '-') && s.off+2 < len(s.src) && isDigit(s.src[s.off+2]) {
				expOK = true
			}
			if expOK {
				kind = token.DOUBLELIT
				s.advance() // e
				if s.peek() == '+' || s.peek() == '-' {
					s.advance()
				}
				for isDigit(s.peek()) {
					s.advance()
				}
			}
		}
	}
	if kind == token.INTLIT && (s.peek() == 'L' || s.peek() == 'l') {
		lit := s.src[start:s.off]
		s.advance()
		return token.Token{Kind: token.LONGLIT, Lit: lit, Pos: pos}
	}
	if kind == token.DOUBLELIT && (s.peek() == 'd' || s.peek() == 'D') {
		lit := s.src[start:s.off]
		s.advance()
		return token.Token{Kind: token.DOUBLELIT, Lit: lit, Pos: pos}
	}
	return token.Token{Kind: kind, Lit: s.src[start:s.off], Pos: pos}
}

func (s *Scanner) scanEscape(pos token.Pos) (rune, bool) {
	s.advance() // backslash
	switch c := s.advance(); c {
	case 'n':
		return '\n', true
	case 't':
		return '\t', true
	case 'r':
		return '\r', true
	case 'b':
		return '\b', true
	case 'f':
		return '\f', true
	case '0':
		return 0, true
	case '\\':
		return '\\', true
	case '\'':
		return '\'', true
	case '"':
		return '"', true
	case 'u':
		var v rune
		for i := 0; i < 4; i++ {
			h := s.advance()
			switch {
			case isDigit(h):
				v = v*16 + rune(h-'0')
			case 'a' <= h && h <= 'f':
				v = v*16 + rune(h-'a'+10)
			case 'A' <= h && h <= 'F':
				v = v*16 + rune(h-'A'+10)
			default:
				s.errorf(pos, "malformed \\u escape")
				return 0, false
			}
		}
		return v, true
	default:
		s.errorf(pos, "unknown escape sequence \\%c", c)
		return 0, false
	}
}

func (s *Scanner) scanChar(pos token.Pos) token.Token {
	s.advance() // opening quote
	var r rune
	switch {
	case s.off >= len(s.src):
		s.errorf(pos, "unterminated character literal")
		return token.Token{Kind: token.ILLEGAL, Pos: pos}
	case s.peek() == '\\':
		r, _ = s.scanEscape(pos)
	default:
		var size int
		r, size = utf8.DecodeRuneInString(s.src[s.off:])
		for i := 0; i < size; i++ {
			s.advance()
		}
	}
	if s.peek() != '\'' {
		s.errorf(pos, "unterminated character literal")
	} else {
		s.advance()
	}
	return token.Token{Kind: token.CHARLIT, Lit: string(r), Pos: pos}
}

func (s *Scanner) scanString(pos token.Pos) token.Token {
	s.advance() // opening quote
	var b strings.Builder
	for {
		if s.off >= len(s.src) || s.peek() == '\n' {
			s.errorf(pos, "unterminated string literal")
			break
		}
		if s.peek() == '"' {
			s.advance()
			break
		}
		if s.peek() == '\\' {
			r, ok := s.scanEscape(pos)
			if ok {
				b.WriteRune(r)
			}
			continue
		}
		b.WriteByte(s.advance())
	}
	return token.Token{Kind: token.STRINGLIT, Lit: b.String(), Pos: pos}
}

// twoCharOps maps a leading operator byte to its possible two-character
// extensions.
func (s *Scanner) scanOperator(pos token.Pos) token.Token {
	c := s.advance()
	mk := func(k token.Kind) token.Token { return token.Token{Kind: k, Pos: pos} }
	sel := func(next byte, two, one token.Kind) token.Token {
		if s.peek() == next {
			s.advance()
			return mk(two)
		}
		return mk(one)
	}
	switch c {
	case '+':
		if s.peek() == '+' {
			s.advance()
			return mk(token.INC)
		}
		return sel('=', token.ADDASSIGN, token.ADD)
	case '-':
		if s.peek() == '-' {
			s.advance()
			return mk(token.DEC)
		}
		return sel('=', token.SUBASSIGN, token.SUB)
	case '*':
		return sel('=', token.MULASSIGN, token.MUL)
	case '/':
		return sel('=', token.QUOASSIGN, token.QUO)
	case '%':
		return sel('=', token.REMASSIGN, token.REM)
	case '&':
		if s.peek() == '&' {
			s.advance()
			return mk(token.LAND)
		}
		return sel('=', token.ANDASSIGN, token.AND)
	case '|':
		if s.peek() == '|' {
			s.advance()
			return mk(token.LOR)
		}
		return sel('=', token.ORASSIGN, token.OR)
	case '^':
		return sel('=', token.XORASSIGN, token.XOR)
	case '~':
		return mk(token.TILDE)
	case '<':
		if s.peek() == '<' {
			s.advance()
			return sel('=', token.SHLASSIGN, token.SHL)
		}
		return sel('=', token.LEQ, token.LSS)
	case '>':
		if s.peek() == '>' {
			s.advance()
			return sel('=', token.SHRASSIGN, token.SHR)
		}
		return sel('=', token.GEQ, token.GTR)
	case '=':
		return sel('=', token.EQL, token.ASSIGN)
	case '!':
		return sel('=', token.NEQ, token.NOT)
	case '(':
		return mk(token.LPAREN)
	case ')':
		return mk(token.RPAREN)
	case '{':
		return mk(token.LBRACE)
	case '}':
		return mk(token.RBRACE)
	case '[':
		return mk(token.LBRACK)
	case ']':
		return mk(token.RBRACK)
	case ',':
		return mk(token.COMMA)
	case ';':
		return mk(token.SEMI)
	case '.':
		return mk(token.DOT)
	case '?':
		return mk(token.QUESTION)
	case ':':
		return mk(token.COLON)
	}
	s.errorf(pos, "illegal character %q", c)
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

// ScanAll tokenizes the whole input, returning the tokens up to and
// including EOF, plus any lexical errors.
func ScanAll(file, src string) ([]token.Token, []error) {
	s := New(file, src)
	var toks []token.Token
	for {
		t := s.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, s.Errors()
		}
	}
}
