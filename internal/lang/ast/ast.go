// Package ast declares the abstract syntax tree of TJ. The tree produced
// by the parser is untyped; the sema package decorates expression nodes
// with resolved types and symbols in place, turning it into the paper's
// "Unified Abstract Syntax Tree" (a structured tree from which control
// flow and dominance are derived directly).
package ast

import "safetsa/internal/lang/token"

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------
// Types (syntactic)

// TypeExpr is a syntactic type reference.
type TypeExpr interface {
	Node
	typeExpr()
}

// PrimTypeExpr is a primitive type keyword (int, long, double, boolean,
// char, void).
type PrimTypeExpr struct {
	Kind token.Kind // INT, LONG, DOUBLE, BOOLEAN, CHAR, VOID
	P    token.Pos
}

// NamedTypeExpr is a class type referenced by name.
type NamedTypeExpr struct {
	Name string
	P    token.Pos
}

// ArrayTypeExpr is Elem[].
type ArrayTypeExpr struct {
	Elem TypeExpr
	P    token.Pos
}

func (t *PrimTypeExpr) Pos() token.Pos  { return t.P }
func (t *NamedTypeExpr) Pos() token.Pos { return t.P }
func (t *ArrayTypeExpr) Pos() token.Pos { return t.P }

func (*PrimTypeExpr) typeExpr()  {}
func (*NamedTypeExpr) typeExpr() {}
func (*ArrayTypeExpr) typeExpr() {}

// ---------------------------------------------------------------------
// Declarations

// File is a parsed compilation unit: one or more class declarations.
type File struct {
	Name    string
	Classes []*ClassDecl
}

// Pos returns the position of the first class.
func (f *File) Pos() token.Pos {
	if len(f.Classes) > 0 {
		return f.Classes[0].P
	}
	return token.Pos{File: f.Name}
}

// ClassDecl is a class declaration.
type ClassDecl struct {
	Name    string
	Super   string // "" means Object
	Fields  []*FieldDecl
	Methods []*MethodDecl
	P       token.Pos
}

func (c *ClassDecl) Pos() token.Pos { return c.P }

// FieldDecl is a (possibly static) field.
type FieldDecl struct {
	Name   string
	Type   TypeExpr
	Static bool
	Final  bool
	Init   Expr // may be nil
	P      token.Pos
}

func (f *FieldDecl) Pos() token.Pos { return f.P }

// Param is a formal method parameter.
type Param struct {
	Name string
	Type TypeExpr
	P    token.Pos
}

func (p *Param) Pos() token.Pos { return p.P }

// MethodDecl is a method or constructor. Constructors have IsCtor set and
// a nil Return.
type MethodDecl struct {
	Name   string
	Params []*Param
	Return TypeExpr // nil for constructors
	Body   *BlockStmt
	Static bool
	IsCtor bool
	P      token.Pos
}

func (m *MethodDecl) Pos() token.Pos { return m.P }

// ---------------------------------------------------------------------
// Statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmt()
}

// BlockStmt is { stmts }.
type BlockStmt struct {
	Stmts []Stmt
	P     token.Pos
}

// VarDeclStmt declares one local variable, optionally initialized.
type VarDeclStmt struct {
	Name string
	Type TypeExpr
	Init Expr // may be nil
	P    token.Pos
}

// ExprStmt evaluates X for its side effects (assignment, call, inc/dec).
type ExprStmt struct {
	X Expr
	P token.Pos
}

// IfStmt is if (Cond) Then [else Else].
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	P    token.Pos
}

// WhileStmt is while (Cond) Body.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	P    token.Pos
}

// DoWhileStmt is do Body while (Cond);.
type DoWhileStmt struct {
	Body Stmt
	Cond Expr
	P    token.Pos
}

// ForStmt is for (Init; Cond; Post) Body. Any of Init/Cond/Post may be
// nil; Init is either a VarDeclStmt or an ExprStmt.
type ForStmt struct {
	Init Stmt
	Cond Expr
	Post Stmt
	Body Stmt
	P    token.Pos
}

// ReturnStmt is return [X];.
type ReturnStmt struct {
	X Expr // may be nil
	P token.Pos
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ P token.Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ P token.Pos }

// ThrowStmt is throw X;.
type ThrowStmt struct {
	X Expr
	P token.Pos
}

// CatchClause is catch (Type Name) Body.
type CatchClause struct {
	Type TypeExpr
	Name string
	Body *BlockStmt
	P    token.Pos
}

func (c *CatchClause) Pos() token.Pos { return c.P }

// TryStmt is try Body catch... [finally Finally].
type TryStmt struct {
	Body    *BlockStmt
	Catches []*CatchClause
	Finally *BlockStmt // may be nil
	P       token.Pos
}

// EmptyStmt is a stray semicolon.
type EmptyStmt struct{ P token.Pos }

func (s *BlockStmt) Pos() token.Pos    { return s.P }
func (s *VarDeclStmt) Pos() token.Pos  { return s.P }
func (s *ExprStmt) Pos() token.Pos     { return s.P }
func (s *IfStmt) Pos() token.Pos       { return s.P }
func (s *WhileStmt) Pos() token.Pos    { return s.P }
func (s *DoWhileStmt) Pos() token.Pos  { return s.P }
func (s *ForStmt) Pos() token.Pos      { return s.P }
func (s *ReturnStmt) Pos() token.Pos   { return s.P }
func (s *BreakStmt) Pos() token.Pos    { return s.P }
func (s *ContinueStmt) Pos() token.Pos { return s.P }
func (s *ThrowStmt) Pos() token.Pos    { return s.P }
func (s *TryStmt) Pos() token.Pos      { return s.P }
func (s *EmptyStmt) Pos() token.Pos    { return s.P }

func (*BlockStmt) stmt()    {}
func (*VarDeclStmt) stmt()  {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*DoWhileStmt) stmt()  {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ThrowStmt) stmt()    {}
func (*TryStmt) stmt()      {}
func (*EmptyStmt) stmt()    {}

// ---------------------------------------------------------------------
// Expressions

// Expr is implemented by all expression nodes. TypeInfo is filled in by
// sema; it is an opaque handle (the sema package's *types.Type) so that
// ast does not depend on the type checker.
type Expr interface {
	Node
	expr()
	// TypeInfo returns the checker-assigned type handle (nil before sema).
	TypeInfo() interface{}
	// SetTypeInfo records the checker-assigned type handle.
	SetTypeInfo(interface{})
}

// exprBase provides the TypeInfo plumbing shared by all expressions.
type exprBase struct{ ti interface{} }

func (b *exprBase) expr()                     {}
func (b *exprBase) TypeInfo() interface{}     { return b.ti }
func (b *exprBase) SetTypeInfo(t interface{}) { b.ti = t }

// IntLit is an int literal.
type IntLit struct {
	exprBase
	Value int32
	P     token.Pos
}

// LongLit is a long literal.
type LongLit struct {
	exprBase
	Value int64
	P     token.Pos
}

// DoubleLit is a double literal.
type DoubleLit struct {
	exprBase
	Value float64
	P     token.Pos
}

// BoolLit is true or false.
type BoolLit struct {
	exprBase
	Value bool
	P     token.Pos
}

// CharLit is a character literal.
type CharLit struct {
	exprBase
	Value rune
	P     token.Pos
}

// StringLit is a string literal.
type StringLit struct {
	exprBase
	Value string
	P     token.Pos
}

// NullLit is the null literal.
type NullLit struct {
	exprBase
	P token.Pos
}

// Ident is a simple name: local variable, parameter, field of this, or a
// class name in a qualified access. Sema records the resolution.
type Ident struct {
	exprBase
	Name string
	P    token.Pos
	// Sym is filled by sema: *sema.Local, *sema.FieldSym, or
	// *sema.ClassRef.
	Sym interface{}
}

// ThisExpr is the receiver reference.
type ThisExpr struct {
	exprBase
	P token.Pos
}

// SuperCtorCall is the explicit constructor invocation super(args),
// allowed only as the first statement of a constructor body.
type SuperCtorCall struct {
	exprBase
	Args []Expr
	P    token.Pos
	// Ctor is filled by sema with the resolved superclass constructor.
	Ctor interface{}
}

// SuperCall is the non-virtual invocation super.Name(args).
type SuperCall struct {
	exprBase
	Name string
	Args []Expr
	P    token.Pos
	// Sym is filled by sema with the resolved method symbol.
	Sym interface{}
}

// FieldAccess is X.Name (including array .length, flagged by sema).
type FieldAccess struct {
	exprBase
	X    Expr
	Name string
	P    token.Pos
	// Sym is filled by sema: *sema.FieldSym, or nil for array length.
	Sym      interface{}
	IsLength bool
	// IsStaticClass is set when X names a class and this access is a
	// static field read.
	IsStaticClass bool
}

// IndexExpr is X[Index].
type IndexExpr struct {
	exprBase
	X     Expr
	Index Expr
	P     token.Pos
}

// CallExpr is a method invocation. Recv is nil for unqualified calls
// (resolved by sema to this-calls or static calls of the current class);
// when Recv is an Ident naming a class the call is static.
type CallExpr struct {
	exprBase
	Recv Expr // may be nil
	Name string
	Args []Expr
	P    token.Pos
	// Sym is filled by sema: *sema.MethodSym (after overload
	// resolution) or *sema.Builtin.
	Sym interface{}
	// Static is set by sema when the call needs no dynamic dispatch.
	Static bool
}

// NewObject is new Type(Args).
type NewObject struct {
	exprBase
	TypeName string
	Args     []Expr
	P        token.Pos
	// Ctor is filled by sema with the resolved constructor symbol (may
	// be nil for the implicit default constructor).
	Ctor interface{}
}

// NewArray is new Base[len0][len1]...[]..., i.e. an array creation with
// one or more sized dimensions followed by zero or more empty dimensions.
type NewArray struct {
	exprBase
	Base      TypeExpr // innermost element type (no array dims)
	Lens      []Expr   // sized dimensions, outermost first
	ExtraDims int      // trailing empty dimensions
	P         token.Pos
}

// Unary is op X, where Op is SUB, NOT, TILDE, or ADD.
type Unary struct {
	exprBase
	Op token.Kind
	X  Expr
	P  token.Pos
}

// Binary is X op Y for arithmetic, comparison, bitwise and short-circuit
// operators (short-circuit operators are lowered to control flow during
// SSA construction, as described in the paper's footnote 3).
type Binary struct {
	exprBase
	Op   token.Kind
	X, Y Expr
	P    token.Pos
}

// Assign is LHS op= RHS; Op is ASSIGN or a compound assignment token.
// LHS is an Ident, FieldAccess, or IndexExpr.
type Assign struct {
	exprBase
	Op  token.Kind
	LHS Expr
	RHS Expr
	P   token.Pos
}

// IncDec is X++ or X-- (used as a statement-level expression).
type IncDec struct {
	exprBase
	Op token.Kind // INC or DEC
	X  Expr
	P  token.Pos
}

// Cast is (Type) X.
type Cast struct {
	exprBase
	Type TypeExpr
	X    Expr
	P    token.Pos
}

// InstanceOf is X instanceof Type.
type InstanceOf struct {
	exprBase
	X    Expr
	Type TypeExpr
	P    token.Pos
}

// Cond is Cond ? Then : Else; lowered to an if-else value merge during
// SSA construction.
type Cond struct {
	exprBase
	C          Expr
	Then, Else Expr
	P          token.Pos
}

func (e *IntLit) Pos() token.Pos        { return e.P }
func (e *LongLit) Pos() token.Pos       { return e.P }
func (e *DoubleLit) Pos() token.Pos     { return e.P }
func (e *BoolLit) Pos() token.Pos       { return e.P }
func (e *CharLit) Pos() token.Pos       { return e.P }
func (e *StringLit) Pos() token.Pos     { return e.P }
func (e *NullLit) Pos() token.Pos       { return e.P }
func (e *Ident) Pos() token.Pos         { return e.P }
func (e *ThisExpr) Pos() token.Pos      { return e.P }
func (e *SuperCtorCall) Pos() token.Pos { return e.P }
func (e *SuperCall) Pos() token.Pos     { return e.P }
func (e *FieldAccess) Pos() token.Pos   { return e.P }
func (e *IndexExpr) Pos() token.Pos     { return e.P }
func (e *CallExpr) Pos() token.Pos      { return e.P }
func (e *NewObject) Pos() token.Pos     { return e.P }
func (e *NewArray) Pos() token.Pos      { return e.P }
func (e *Unary) Pos() token.Pos         { return e.P }
func (e *Binary) Pos() token.Pos        { return e.P }
func (e *Assign) Pos() token.Pos        { return e.P }
func (e *IncDec) Pos() token.Pos        { return e.P }
func (e *Cast) Pos() token.Pos          { return e.P }
func (e *InstanceOf) Pos() token.Pos    { return e.P }
func (e *Cond) Pos() token.Pos          { return e.P }
