package ast_test

import (
	"testing"

	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/lang/ast"
	"safetsa/internal/lang/parser"
)

// TestPrintReparses: printing a parsed file and reparsing it must yield a
// program with identical behaviour. Checked over the whole corpus by
// running the reprinted source through the SafeTSA pipeline.
func TestPrintReparses(t *testing.T) {
	for _, u := range corpus.Units() {
		u := u
		t.Run(u.Name, func(t *testing.T) {
			want, err := runFiles(u.Files)
			if err != nil {
				t.Fatalf("original: %v", err)
			}
			printed := make(map[string]string)
			for name, src := range u.Files {
				f, errs := parser.ParseFile(name, src)
				if len(errs) > 0 {
					t.Fatalf("parse: %v", errs)
				}
				printed[name] = ast.Print(f)
			}
			got, err := runFiles(printed)
			if err != nil {
				t.Fatalf("reprinted source fails: %v", err)
			}
			if got != want {
				t.Fatalf("reprinted program behaves differently:\n%q\nvs\n%q", got, want)
			}
		})
	}
}

func runFiles(files map[string]string) (string, error) {
	mod, err := driver.CompileTSASource(files)
	if err != nil {
		return "", err
	}
	return driver.RunModule(mod, 200_000_000)
}

func TestPrintExprForms(t *testing.T) {
	src := `
class T {
    int f(int a, double d, String s, int[] xs) {
        int x = a * 3 + (a << 2) - -a;
        boolean b = a < 3 && d >= 0.5 || !(s == null);
        char c = '\n';
        long l = 5L;
        x += b ? xs[a % 4] : (int) d;
        s = s + "q\"z" + c + l;
        this.f(a++, d, s.substring(0, 1), new int[3][2]);
        return x instanceof Object ? 0 : x;
    }
}`
	// Not valid TJ semantically (instanceof on int) — parse-only check
	// that printing doesn't lose forms.
	f, errs := parser.ParseFile("t", src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	out := ast.Print(f)
	f2, errs := parser.ParseFile("t2", out)
	if len(errs) > 0 {
		t.Fatalf("reparse of printed source failed: %v\n%s", errs, out)
	}
	out2 := ast.Print(f2)
	if out != out2 {
		t.Fatalf("printing is not a fixpoint:\n%s\n---\n%s", out, out2)
	}
}
