package ast

import (
	"fmt"
	"strings"

	"safetsa/internal/lang/token"
)

// Print renders a file back to TJ source form — useful for inspecting
// what the parser (and the corpus generator) produced, and round-trip
// testable: Print output reparses to an equivalent tree.
func Print(f *File) string {
	p := &printer{}
	for i, c := range f.Classes {
		if i > 0 {
			p.nl()
		}
		p.class(c)
	}
	return p.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) w(format string, args ...interface{}) {
	fmt.Fprintf(&p.sb, format, args...)
}

func (p *printer) line(format string, args ...interface{}) {
	p.sb.WriteString(strings.Repeat("    ", p.indent))
	p.w(format, args...)
	p.nl()
}

func (p *printer) nl() { p.sb.WriteByte('\n') }

func (p *printer) class(c *ClassDecl) {
	ext := ""
	if c.Super != "" {
		ext = " extends " + c.Super
	}
	p.line("class %s%s {", c.Name, ext)
	p.indent++
	for _, f := range c.Fields {
		mods := ""
		if f.Static {
			mods += "static "
		}
		if f.Final {
			mods += "final "
		}
		init := ""
		if f.Init != nil {
			init = " = " + ExprString(f.Init)
		}
		p.line("%s%s %s%s;", mods, TypeString(f.Type), f.Name, init)
	}
	for _, m := range c.Methods {
		p.method(m)
	}
	p.indent--
	p.line("}")
}

func (p *printer) method(m *MethodDecl) {
	var params []string
	for _, prm := range m.Params {
		params = append(params, TypeString(prm.Type)+" "+prm.Name)
	}
	head := ""
	if m.Static {
		head = "static "
	}
	if m.IsCtor {
		head += m.Name
	} else {
		head += TypeString(m.Return) + " " + m.Name
	}
	p.line("%s(%s) {", head, strings.Join(params, ", "))
	p.indent++
	for _, s := range m.Body.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) block(s Stmt) {
	if b, ok := s.(*BlockStmt); ok {
		p.indent++
		for _, st := range b.Stmts {
			p.stmt(st)
		}
		p.indent--
		return
	}
	p.indent++
	p.stmt(s)
	p.indent--
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *BlockStmt:
		p.line("{")
		p.block(s)
		p.line("}")
	case *EmptyStmt:
		p.line(";")
	case *VarDeclStmt:
		init := ""
		if s.Init != nil {
			init = " = " + ExprString(s.Init)
		}
		p.line("%s %s%s;", TypeString(s.Type), s.Name, init)
	case *ExprStmt:
		p.line("%s;", ExprString(s.X))
	case *IfStmt:
		p.line("if (%s) {", ExprString(s.Cond))
		p.block(s.Then)
		if s.Else != nil {
			p.line("} else {")
			p.block(s.Else)
		}
		p.line("}")
	case *WhileStmt:
		p.line("while (%s) {", ExprString(s.Cond))
		p.block(s.Body)
		p.line("}")
	case *DoWhileStmt:
		p.line("do {")
		p.block(s.Body)
		p.line("} while (%s);", ExprString(s.Cond))
	case *ForStmt:
		init, post := "", ""
		if s.Init != nil {
			init = strings.TrimSuffix(stmtOneLine(s.Init), ";")
		}
		cond := ""
		if s.Cond != nil {
			cond = ExprString(s.Cond)
		}
		if s.Post != nil {
			post = strings.TrimSuffix(stmtOneLine(s.Post), ";")
		}
		p.line("for (%s; %s; %s) {", init, cond, post)
		p.block(s.Body)
		p.line("}")
	case *ReturnStmt:
		if s.X == nil {
			p.line("return;")
		} else {
			p.line("return %s;", ExprString(s.X))
		}
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	case *ThrowStmt:
		p.line("throw %s;", ExprString(s.X))
	case *TryStmt:
		p.line("try {")
		p.block(s.Body)
		for _, cc := range s.Catches {
			p.line("} catch (%s %s) {", TypeString(cc.Type), cc.Name)
			p.block(cc.Body)
		}
		if s.Finally != nil {
			p.line("} finally {")
			p.block(s.Finally)
		}
		p.line("}")
	default:
		p.line("/* ? %T */", s)
	}
}

func stmtOneLine(s Stmt) string {
	switch s := s.(type) {
	case *VarDeclStmt:
		init := ""
		if s.Init != nil {
			init = " = " + ExprString(s.Init)
		}
		return fmt.Sprintf("%s %s%s;", TypeString(s.Type), s.Name, init)
	case *ExprStmt:
		return ExprString(s.X) + ";"
	}
	return "/*stmt*/;"
}

// TypeString renders a syntactic type.
func TypeString(t TypeExpr) string {
	switch t := t.(type) {
	case nil:
		return "void"
	case *PrimTypeExpr:
		return t.Kind.String()
	case *NamedTypeExpr:
		return t.Name
	case *ArrayTypeExpr:
		return TypeString(t.Elem) + "[]"
	}
	return "?"
}

// ExprString renders an expression with full parenthesization of
// subexpressions (safe, if verbose).
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", e.Value)
	case *LongLit:
		return fmt.Sprintf("%dL", e.Value)
	case *DoubleLit:
		s := fmt.Sprintf("%g", e.Value)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *BoolLit:
		if e.Value {
			return "true"
		}
		return "false"
	case *CharLit:
		switch e.Value {
		case '\n':
			return `'\n'`
		case '\t':
			return `'\t'`
		case '\'':
			return `'\''`
		case '\\':
			return `'\\'`
		}
		return "'" + string(e.Value) + "'"
	case *StringLit:
		q := fmt.Sprintf("%q", e.Value)
		return q
	case *NullLit:
		return "null"
	case *Ident:
		return e.Name
	case *ThisExpr:
		return "this"
	case *SuperCtorCall:
		return "super(" + argList(e.Args) + ")"
	case *SuperCall:
		return "super." + e.Name + "(" + argList(e.Args) + ")"
	case *FieldAccess:
		return ExprString(e.X) + "." + e.Name
	case *IndexExpr:
		return ExprString(e.X) + "[" + ExprString(e.Index) + "]"
	case *CallExpr:
		recv := ""
		if e.Recv != nil {
			recv = ExprString(e.Recv) + "."
		}
		return recv + e.Name + "(" + argList(e.Args) + ")"
	case *NewObject:
		return "new " + e.TypeName + "(" + argList(e.Args) + ")"
	case *NewArray:
		s := "new " + TypeString(e.Base)
		for _, l := range e.Lens {
			s += "[" + ExprString(l) + "]"
		}
		s += strings.Repeat("[]", e.ExtraDims)
		return s
	case *Unary:
		return "(" + e.Op.String() + ExprString(e.X) + ")"
	case *Binary:
		return "(" + ExprString(e.X) + " " + e.Op.String() + " " + ExprString(e.Y) + ")"
	case *Assign:
		return ExprString(e.LHS) + " " + e.Op.String() + " " + ExprString(e.RHS)
	case *IncDec:
		op := "++"
		if e.Op == token.DEC {
			op = "--"
		}
		return ExprString(e.X) + op
	case *Cast:
		return "((" + TypeString(e.Type) + ") " + ExprString(e.X) + ")"
	case *InstanceOf:
		return "(" + ExprString(e.X) + " instanceof " + TypeString(e.Type) + ")"
	case *Cond:
		return "(" + ExprString(e.C) + " ? " + ExprString(e.Then) + " : " + ExprString(e.Else) + ")"
	}
	return "/*?expr*/"
}

func argList(args []Expr) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = ExprString(a)
	}
	return strings.Join(parts, ", ")
}
