// Package parser implements a recursive-descent parser for TJ source
// files, producing the untyped AST consumed by sema.
package parser

import (
	"fmt"
	"strconv"

	"safetsa/internal/lang/ast"
	"safetsa/internal/lang/scanner"
	"safetsa/internal/lang/token"
)

// Error is a syntax error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// bailout is used to abort parsing after too many errors.
type bailout struct{}

const maxErrors = 20

type parser struct {
	toks []token.Token
	pos  int
	errs []error
}

// ParseFile parses a whole TJ compilation unit. On syntax errors it
// returns the partial AST together with the error list.
func ParseFile(file, src string) (*ast.File, []error) {
	toks, errs := scanner.ScanAll(file, src)
	p := &parser{toks: toks, errs: errs}
	f := &ast.File{Name: file}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(bailout); !ok {
					panic(r)
				}
			}
		}()
		for p.tok().Kind != token.EOF {
			f.Classes = append(f.Classes, p.parseClass())
		}
	}()
	return f, p.errs
}

func (p *parser) tok() token.Token { return p.toks[p.pos] }

func (p *parser) at(k token.Kind) bool { return p.tok().Kind == k }

func (p *parser) peekKind(n int) token.Kind {
	i := p.pos + n
	if i >= len(p.toks) {
		return token.EOF
	}
	return p.toks[i].Kind
}

func (p *parser) next() token.Token {
	t := p.tok()
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(pos token.Pos, format string, args ...interface{}) {
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	if len(p.errs) >= maxErrors {
		panic(bailout{})
	}
}

func (p *parser) expect(k token.Kind) token.Token {
	if !p.at(k) {
		p.errorf(p.tok().Pos, "expected %q, found %s", k.String(), p.tok())
		// Do not consume: let the caller's loop structure resynchronize.
		return token.Token{Kind: k, Pos: p.tok().Pos}
	}
	return p.next()
}

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

// skipModifiers consumes access and final modifiers, returning whether
// static was among them.
func (p *parser) skipModifiers() (static bool, final bool) {
	for {
		switch p.tok().Kind {
		case token.PUBLIC, token.PRIVATE, token.PROTECTED:
			p.next()
		case token.STATIC:
			static = true
			p.next()
		case token.FINAL:
			final = true
			p.next()
		default:
			return static, final
		}
	}
}

func (p *parser) parseClass() *ast.ClassDecl {
	p.skipModifiers()
	start := p.expect(token.CLASS)
	name := p.expect(token.IDENT)
	c := &ast.ClassDecl{Name: name.Lit, P: start.Pos}
	if p.accept(token.EXTENDS) {
		c.Super = p.expect(token.IDENT).Lit
	}
	p.expect(token.LBRACE)
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		p.parseMember(c)
	}
	p.expect(token.RBRACE)
	return c
}

// parseMember parses one field, method, or constructor declaration and
// appends it to c.
func (p *parser) parseMember(c *ast.ClassDecl) {
	static, final := p.skipModifiers()
	pos := p.tok().Pos

	// Constructor: IDENT matching the class name followed by '('.
	if p.at(token.IDENT) && p.tok().Lit == c.Name && p.peekKind(1) == token.LPAREN {
		name := p.next()
		m := &ast.MethodDecl{Name: name.Lit, IsCtor: true, P: pos}
		m.Params = p.parseParams()
		p.skipThrows()
		m.Body = p.parseBlock()
		c.Methods = append(c.Methods, m)
		return
	}

	typ := p.parseType()
	name := p.expect(token.IDENT)
	if p.at(token.LPAREN) {
		m := &ast.MethodDecl{Name: name.Lit, Return: typ, Static: static, P: pos}
		m.Params = p.parseParams()
		p.skipThrows()
		m.Body = p.parseBlock()
		c.Methods = append(c.Methods, m)
		return
	}

	// Field declaration, possibly with several comma-separated
	// declarators sharing the base type.
	for {
		declType := typ
		// Trailing [] on the declarator name (Java legacy syntax).
		for p.accept(token.LBRACK) {
			p.expect(token.RBRACK)
			declType = &ast.ArrayTypeExpr{Elem: declType, P: pos}
		}
		f := &ast.FieldDecl{Name: name.Lit, Type: declType, Static: static, Final: final, P: pos}
		if p.accept(token.ASSIGN) {
			f.Init = p.parseExpr()
		}
		c.Fields = append(c.Fields, f)
		if !p.accept(token.COMMA) {
			break
		}
		name = p.expect(token.IDENT)
	}
	p.expect(token.SEMI)
}

func (p *parser) skipThrows() {
	if p.accept(token.THROWS) {
		p.expect(token.IDENT)
		for p.accept(token.COMMA) {
			p.expect(token.IDENT)
		}
	}
}

func (p *parser) parseParams() []*ast.Param {
	p.expect(token.LPAREN)
	var params []*ast.Param
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		if len(params) > 0 {
			p.expect(token.COMMA)
		}
		pos := p.tok().Pos
		typ := p.parseType()
		name := p.expect(token.IDENT)
		for p.accept(token.LBRACK) {
			p.expect(token.RBRACK)
			typ = &ast.ArrayTypeExpr{Elem: typ, P: pos}
		}
		params = append(params, &ast.Param{Name: name.Lit, Type: typ, P: pos})
	}
	p.expect(token.RPAREN)
	return params
}

func isPrimTypeToken(k token.Kind) bool {
	switch k {
	case token.INT, token.LONG, token.DOUBLE, token.BOOLEAN, token.CHAR, token.VOID:
		return true
	}
	return false
}

func (p *parser) parseType() ast.TypeExpr {
	pos := p.tok().Pos
	var t ast.TypeExpr
	switch {
	case isPrimTypeToken(p.tok().Kind):
		t = &ast.PrimTypeExpr{Kind: p.next().Kind, P: pos}
	case p.at(token.IDENT):
		t = &ast.NamedTypeExpr{Name: p.next().Lit, P: pos}
	default:
		p.errorf(pos, "expected type, found %s", p.tok())
		p.next()
		return &ast.PrimTypeExpr{Kind: token.INT, P: pos}
	}
	for p.at(token.LBRACK) && p.peekKind(1) == token.RBRACK {
		p.next()
		p.next()
		t = &ast.ArrayTypeExpr{Elem: t, P: pos}
	}
	return t
}

// ---------------------------------------------------------------------
// Statements

func (p *parser) parseBlock() *ast.BlockStmt {
	start := p.expect(token.LBRACE)
	b := &ast.BlockStmt{P: start.Pos}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		before := p.pos
		b.Stmts = append(b.Stmts, p.parseStmt())
		if p.pos == before {
			// No progress: discard a token to avoid an infinite loop
			// after a syntax error.
			p.errorf(p.tok().Pos, "unexpected %s", p.tok())
			p.next()
		}
	}
	p.expect(token.RBRACE)
	return b
}

// startsLocalDecl reports whether the statement at the current position is
// a local variable declaration: a primitive type, or IDENT ([])* IDENT.
func (p *parser) startsLocalDecl() bool {
	if isPrimTypeToken(p.tok().Kind) && !p.at(token.VOID) {
		return true
	}
	if !p.at(token.IDENT) {
		return false
	}
	i := 1
	for p.peekKind(i) == token.LBRACK && p.peekKind(i+1) == token.RBRACK {
		i += 2
	}
	return p.peekKind(i) == token.IDENT
}

func (p *parser) parseStmt() ast.Stmt {
	pos := p.tok().Pos
	switch p.tok().Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.SEMI:
		p.next()
		return &ast.EmptyStmt{P: pos}
	case token.IF:
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		s := &ast.IfStmt{Cond: cond, P: pos}
		s.Then = p.parseStmt()
		if p.accept(token.ELSE) {
			s.Else = p.parseStmt()
		}
		return s
	case token.WHILE:
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.WhileStmt{Cond: cond, Body: p.parseStmt(), P: pos}
	case token.DO:
		p.next()
		body := p.parseStmt()
		p.expect(token.WHILE)
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return &ast.DoWhileStmt{Body: body, Cond: cond, P: pos}
	case token.FOR:
		return p.parseFor()
	case token.RETURN:
		p.next()
		s := &ast.ReturnStmt{P: pos}
		if !p.at(token.SEMI) {
			s.X = p.parseExpr()
		}
		p.expect(token.SEMI)
		return s
	case token.BREAK:
		p.next()
		p.expect(token.SEMI)
		return &ast.BreakStmt{P: pos}
	case token.CONTINUE:
		p.next()
		p.expect(token.SEMI)
		return &ast.ContinueStmt{P: pos}
	case token.THROW:
		p.next()
		x := p.parseExpr()
		p.expect(token.SEMI)
		return &ast.ThrowStmt{X: x, P: pos}
	case token.TRY:
		return p.parseTry()
	}
	if p.startsLocalDecl() {
		s := p.parseLocalDecl()
		p.expect(token.SEMI)
		return s
	}
	x := p.parseExpr()
	p.expect(token.SEMI)
	return &ast.ExprStmt{X: x, P: pos}
}

// parseLocalDecl parses "Type name [= init] (, name [= init])*" without
// the trailing semicolon; multiple declarators are wrapped in a block.
func (p *parser) parseLocalDecl() ast.Stmt {
	pos := p.tok().Pos
	typ := p.parseType()
	var decls []ast.Stmt
	for {
		name := p.expect(token.IDENT)
		declType := typ
		for p.accept(token.LBRACK) {
			p.expect(token.RBRACK)
			declType = &ast.ArrayTypeExpr{Elem: declType, P: pos}
		}
		d := &ast.VarDeclStmt{Name: name.Lit, Type: declType, P: name.Pos}
		if p.accept(token.ASSIGN) {
			d.Init = p.parseExpr()
		}
		decls = append(decls, d)
		if !p.accept(token.COMMA) {
			break
		}
	}
	if len(decls) == 1 {
		return decls[0]
	}
	return &ast.BlockStmt{Stmts: decls, P: pos}
}

func (p *parser) parseFor() ast.Stmt {
	pos := p.tok().Pos
	p.expect(token.FOR)
	p.expect(token.LPAREN)
	s := &ast.ForStmt{P: pos}
	if !p.at(token.SEMI) {
		if p.startsLocalDecl() {
			s.Init = p.parseLocalDecl()
		} else {
			s.Init = &ast.ExprStmt{X: p.parseExpr(), P: p.tok().Pos}
		}
	}
	p.expect(token.SEMI)
	if !p.at(token.SEMI) {
		s.Cond = p.parseExpr()
	}
	p.expect(token.SEMI)
	if !p.at(token.RPAREN) {
		s.Post = &ast.ExprStmt{X: p.parseExpr(), P: p.tok().Pos}
	}
	p.expect(token.RPAREN)
	s.Body = p.parseStmt()
	return s
}

func (p *parser) parseTry() ast.Stmt {
	pos := p.expect(token.TRY).Pos
	s := &ast.TryStmt{P: pos}
	s.Body = p.parseBlock()
	for p.at(token.CATCH) {
		cp := p.next().Pos
		p.expect(token.LPAREN)
		typ := p.parseType()
		name := p.expect(token.IDENT)
		p.expect(token.RPAREN)
		s.Catches = append(s.Catches, &ast.CatchClause{Type: typ, Name: name.Lit, Body: p.parseBlock(), P: cp})
	}
	if p.accept(token.FINALLY) {
		s.Finally = p.parseBlock()
	}
	if len(s.Catches) == 0 && s.Finally == nil {
		p.errorf(pos, "try statement needs at least one catch or finally clause")
	}
	return s
}

// ---------------------------------------------------------------------
// Expressions

func (p *parser) parseExpr() ast.Expr { return p.parseAssign() }

func isLValue(x ast.Expr) bool {
	switch x.(type) {
	case *ast.Ident, *ast.FieldAccess, *ast.IndexExpr:
		return true
	}
	return false
}

func (p *parser) parseAssign() ast.Expr {
	lhs := p.parseTernary()
	if p.tok().Kind.IsAssignOp() {
		op := p.next()
		if !isLValue(lhs) {
			p.errorf(op.Pos, "left operand of %s is not assignable", op.Kind)
		}
		rhs := p.parseAssign() // right associative
		return &ast.Assign{Op: op.Kind, LHS: lhs, RHS: rhs, P: op.Pos}
	}
	return lhs
}

func (p *parser) parseTernary() ast.Expr {
	c := p.parseBinary(1)
	if p.at(token.QUESTION) {
		pos := p.next().Pos
		then := p.parseAssign()
		p.expect(token.COLON)
		els := p.parseTernary()
		return &ast.Cond{C: c, Then: then, Else: els, P: pos}
	}
	return c
}

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		op := p.tok()
		prec := op.Kind.Precedence()
		if prec < minPrec {
			return x
		}
		p.next()
		if op.Kind == token.INSTANCEOF {
			typ := p.parseType()
			x = &ast.InstanceOf{X: x, Type: typ, P: op.Pos}
			continue
		}
		y := p.parseBinary(prec + 1)
		x = &ast.Binary{Op: op.Kind, X: x, Y: y, P: op.Pos}
	}
}

// startsCast reports whether the '(' at the current position opens a cast
// expression rather than a parenthesized subexpression.
func (p *parser) startsCast() bool {
	if !p.at(token.LPAREN) {
		return false
	}
	i := 1
	if isPrimTypeToken(p.peekKind(i)) && p.peekKind(i) != token.VOID {
		return true
	}
	if p.peekKind(i) != token.IDENT {
		return false
	}
	i++
	brackets := false
	for p.peekKind(i) == token.LBRACK && p.peekKind(i+1) == token.RBRACK {
		i += 2
		brackets = true
	}
	if p.peekKind(i) != token.RPAREN {
		return false
	}
	if brackets {
		return true
	}
	// "(Name) X" is a cast only when X can begin a unary expression that
	// is not also a binary-operator continuation.
	switch p.peekKind(i + 1) {
	case token.IDENT, token.INTLIT, token.LONGLIT, token.DOUBLELIT,
		token.CHARLIT, token.STRINGLIT, token.LPAREN, token.NOT,
		token.TILDE, token.THIS, token.NEW, token.NULL, token.TRUE,
		token.FALSE:
		return true
	}
	return false
}

func (p *parser) parseUnary() ast.Expr {
	pos := p.tok().Pos
	switch p.tok().Kind {
	case token.SUB, token.ADD, token.NOT, token.TILDE:
		op := p.next().Kind
		// JLS §3.10.1: the literals 2147483648 and 9223372036854775808L
		// are legal only as the immediate operand of unary minus, so the
		// minus must be folded into the literal before range checking.
		if op == token.SUB && p.at(token.INTLIT) {
			t := p.next()
			return p.parsePostfix(&ast.IntLit{Value: p.intLitValue(t, true), P: pos})
		}
		if op == token.SUB && p.at(token.LONGLIT) {
			t := p.next()
			return p.parsePostfix(&ast.LongLit{Value: p.longLitValue(t, true), P: pos})
		}
		x := p.parseUnary()
		return &ast.Unary{Op: op, X: x, P: pos}
	case token.INC, token.DEC:
		// Prefix inc/dec: treat as the equivalent compound assignment.
		op := p.next().Kind
		x := p.parseUnary()
		if !isLValue(x) {
			p.errorf(pos, "operand of %s is not assignable", op)
		}
		binOp := token.ADDASSIGN
		if op == token.DEC {
			binOp = token.SUBASSIGN
		}
		return &ast.Assign{Op: binOp, LHS: x, RHS: &ast.IntLit{Value: 1, P: pos}, P: pos}
	}
	if p.startsCast() {
		p.next() // (
		typ := p.parseType()
		p.expect(token.RPAREN)
		x := p.parseUnary()
		return &ast.Cast{Type: typ, X: x, P: pos}
	}
	return p.parsePostfix(p.parsePrimary())
}

func (p *parser) parsePostfix(x ast.Expr) ast.Expr {
	for {
		pos := p.tok().Pos
		switch p.tok().Kind {
		case token.DOT:
			p.next()
			name := p.expect(token.IDENT)
			if p.at(token.LPAREN) {
				call := &ast.CallExpr{Recv: x, Name: name.Lit, P: pos}
				call.Args = p.parseArgs()
				x = call
			} else {
				x = &ast.FieldAccess{X: x, Name: name.Lit, P: pos}
			}
		case token.LBRACK:
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBRACK)
			x = &ast.IndexExpr{X: x, Index: idx, P: pos}
		case token.INC, token.DEC:
			op := p.next().Kind
			if !isLValue(x) {
				p.errorf(pos, "operand of %s is not assignable", op)
			}
			x = &ast.IncDec{Op: op, X: x, P: pos}
		default:
			return x
		}
	}
}

func (p *parser) parseArgs() []ast.Expr {
	p.expect(token.LPAREN)
	var args []ast.Expr
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		if len(args) > 0 {
			p.expect(token.COMMA)
		}
		args = append(args, p.parseExpr())
	}
	p.expect(token.RPAREN)
	return args
}

func (p *parser) parsePrimary() ast.Expr {
	pos := p.tok().Pos
	switch p.tok().Kind {
	case token.INTLIT:
		t := p.next()
		return &ast.IntLit{Value: p.intLitValue(t, false), P: pos}
	case token.LONGLIT:
		t := p.next()
		return &ast.LongLit{Value: p.longLitValue(t, false), P: pos}
	case token.DOUBLELIT:
		t := p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			p.errorf(pos, "invalid double literal %q: %v", t.Lit, err)
		}
		return &ast.DoubleLit{Value: v, P: pos}
	case token.CHARLIT:
		t := p.next()
		r := ' '
		for _, c := range t.Lit {
			r = c
			break
		}
		return &ast.CharLit{Value: r, P: pos}
	case token.STRINGLIT:
		t := p.next()
		return &ast.StringLit{Value: t.Lit, P: pos}
	case token.TRUE:
		p.next()
		return &ast.BoolLit{Value: true, P: pos}
	case token.FALSE:
		p.next()
		return &ast.BoolLit{Value: false, P: pos}
	case token.NULL:
		p.next()
		return &ast.NullLit{P: pos}
	case token.THIS:
		p.next()
		return &ast.ThisExpr{P: pos}
	case token.SUPER:
		p.next()
		if p.at(token.LPAREN) {
			c := &ast.SuperCtorCall{P: pos}
			c.Args = p.parseArgs()
			return c
		}
		p.expect(token.DOT)
		name := p.expect(token.IDENT)
		c := &ast.SuperCall{Name: name.Lit, P: pos}
		c.Args = p.parseArgs()
		return c
	case token.NEW:
		return p.parseNew()
	case token.LPAREN:
		p.next()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return x
	case token.IDENT:
		t := p.next()
		if p.at(token.LPAREN) {
			call := &ast.CallExpr{Name: t.Lit, P: pos}
			call.Args = p.parseArgs()
			return call
		}
		return &ast.Ident{Name: t.Lit, P: pos}
	}
	p.errorf(pos, "expected expression, found %s", p.tok())
	p.next()
	return &ast.IntLit{Value: 0, P: pos}
}

// parseIntDigits parses the digit string of an integer literal into its
// magnitude. Range policing per JLS §3.10.1 happens at the use sites
// below, where the literal's type and any folded unary minus are known.
func parseIntDigits(lit string) (u uint64, hex bool, err error) {
	if len(lit) > 2 && lit[0] == '0' && (lit[1] == 'x' || lit[1] == 'X') {
		u, err = strconv.ParseUint(lit[2:], 16, 64)
		return u, true, err
	}
	u, err = strconv.ParseUint(lit, 10, 64)
	return u, false, err
}

// intLitValue enforces the JLS §3.10.1 ranges for an int literal: a
// decimal literal may not exceed 2147483647 (2147483648 only under a
// folded unary minus), and a hex literal must fit in 32 bits — its value
// is the two's-complement reinterpretation, so 0xFFFFFFFF is -1.
func (p *parser) intLitValue(t token.Token, neg bool) int32 {
	u, hex, err := parseIntDigits(t.Lit)
	if err != nil {
		p.errorf(t.Pos, "invalid int literal %q: %v", t.Lit, err)
		return 0
	}
	if hex {
		if u > 0xFFFFFFFF {
			p.errorf(t.Pos, "hex int literal %s does not fit in 32 bits (JLS 3.10.1)", t.Lit)
			return 0
		}
		v := int32(uint32(u))
		if neg {
			v = -v
		}
		return v
	}
	max := uint64(2147483647)
	if neg {
		max = 2147483648
	}
	if u > max {
		if neg {
			p.errorf(t.Pos, "int literal -%s out of range (JLS 3.10.1: minimum is -2147483648)", t.Lit)
		} else {
			p.errorf(t.Pos, "int literal %s out of range (JLS 3.10.1: 2147483648 is legal only as the operand of unary minus)", t.Lit)
		}
		return 0
	}
	v := int64(u)
	if neg {
		v = -v
	}
	return int32(v)
}

// longLitValue enforces the JLS §3.10.1 ranges for a long literal: a
// decimal literal may not exceed 9223372036854775807 (…808 only under a
// folded unary minus); a hex literal may use all 64 bits.
func (p *parser) longLitValue(t token.Token, neg bool) int64 {
	u, hex, err := parseIntDigits(t.Lit)
	if err != nil {
		p.errorf(t.Pos, "invalid long literal %q: %v", t.Lit, err)
		return 0
	}
	if hex {
		v := int64(u)
		if neg {
			v = -v
		}
		return v
	}
	max := uint64(1)<<63 - 1
	if neg {
		max = 1 << 63
	}
	if u > max {
		if neg {
			p.errorf(t.Pos, "long literal -%sL out of range (JLS 3.10.1: minimum is -9223372036854775808)", t.Lit)
		} else {
			p.errorf(t.Pos, "long literal %sL out of range (JLS 3.10.1: 9223372036854775808L is legal only as the operand of unary minus)", t.Lit)
		}
		return 0
	}
	v := int64(u)
	if neg {
		v = -v
	}
	return v
}

func (p *parser) parseNew() ast.Expr {
	pos := p.expect(token.NEW).Pos
	var base ast.TypeExpr
	switch {
	case isPrimTypeToken(p.tok().Kind) && !p.at(token.VOID):
		base = &ast.PrimTypeExpr{Kind: p.next().Kind, P: pos}
	case p.at(token.IDENT):
		base = &ast.NamedTypeExpr{Name: p.next().Lit, P: pos}
	default:
		p.errorf(pos, "expected type after new, found %s", p.tok())
		return &ast.NullLit{P: pos}
	}
	if p.at(token.LPAREN) {
		named, ok := base.(*ast.NamedTypeExpr)
		if !ok {
			p.errorf(pos, "cannot construct a primitive type")
			named = &ast.NamedTypeExpr{Name: "Object", P: pos}
		}
		n := &ast.NewObject{TypeName: named.Name, P: pos}
		n.Args = p.parseArgs()
		return n
	}
	n := &ast.NewArray{Base: base, P: pos}
	for p.at(token.LBRACK) && p.peekKind(1) != token.RBRACK {
		p.next()
		n.Lens = append(n.Lens, p.parseExpr())
		p.expect(token.RBRACK)
	}
	if len(n.Lens) == 0 {
		p.errorf(pos, "array creation needs at least one sized dimension")
	}
	for p.at(token.LBRACK) && p.peekKind(1) == token.RBRACK {
		p.next()
		p.next()
		n.ExtraDims++
	}
	return n
}
