package parser

import (
	"strings"
	"testing"

	"safetsa/internal/lang/ast"
	"safetsa/internal/lang/token"
)

func parseOK(t *testing.T, src string) *ast.File {
	t.Helper()
	f, errs := ParseFile("t.tj", src)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	return f
}

func firstMethodBody(t *testing.T, src string) []ast.Stmt {
	t.Helper()
	f := parseOK(t, "class C { void m() { "+src+" } }")
	return f.Classes[0].Methods[0].Body.Stmts
}

func firstExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	stmts := firstMethodBody(t, "x = "+src+";")
	return stmts[0].(*ast.ExprStmt).X.(*ast.Assign).RHS
}

func TestClassShapes(t *testing.T) {
	f := parseOK(t, `
class A extends B {
    int x;
    static double y = 1.5;
    int[] data, more;
    A(int v) { x = v; }
    int get() throws Exception { return x; }
    static void s() {}
}`)
	c := f.Classes[0]
	if c.Name != "A" || c.Super != "B" {
		t.Fatalf("class header wrong: %+v", c)
	}
	if len(c.Fields) != 4 {
		t.Fatalf("fields: %d", len(c.Fields))
	}
	if _, ok := c.Fields[3].Type.(*ast.ArrayTypeExpr); !ok {
		t.Error("comma declarator lost the array type")
	}
	if len(c.Methods) != 3 || !c.Methods[0].IsCtor || !c.Methods[2].Static {
		t.Fatalf("methods wrong")
	}
}

func TestPrecedence(t *testing.T) {
	// a + b * c parses as a + (b*c)
	e := firstExpr(t, "a + b * c").(*ast.Binary)
	if e.Op != token.ADD {
		t.Fatal("top is not +")
	}
	if inner, ok := e.Y.(*ast.Binary); !ok || inner.Op != token.MUL {
		t.Fatal("* did not bind tighter")
	}
	// a << b + c parses as a << (b+c)
	e = firstExpr(t, "a << b + c").(*ast.Binary)
	if e.Op != token.SHL {
		t.Fatal("top is not <<")
	}
	// a || b && c parses as a || (b&&c)
	e = firstExpr(t, "a || b && c").(*ast.Binary)
	if e.Op != token.LOR {
		t.Fatal("top is not ||")
	}
	// comparison binds tighter than ==: a < b == c < d
	e = firstExpr(t, "a < b == c < d").(*ast.Binary)
	if e.Op != token.EQL {
		t.Fatal("top is not ==")
	}
}

func TestCastDisambiguation(t *testing.T) {
	if _, ok := firstExpr(t, "(Foo) bar").(*ast.Cast); !ok {
		t.Error("(Foo) bar must be a cast")
	}
	if _, ok := firstExpr(t, "(foo) + bar").(*ast.Binary); !ok {
		t.Error("(foo) + bar must be an addition, not a cast")
	}
	if _, ok := firstExpr(t, "(int) d").(*ast.Cast); !ok {
		t.Error("(int) d must be a cast")
	}
	if _, ok := firstExpr(t, "(Foo[]) xs").(*ast.Cast); !ok {
		t.Error("(Foo[]) xs must be a cast")
	}
	if _, ok := firstExpr(t, "(Foo) !b").(*ast.Cast); !ok {
		t.Error("(Foo) !b must be a cast")
	}
}

func TestStatements(t *testing.T) {
	stmts := firstMethodBody(t, `
        int i = 0;
        for (int j = 0; j < 10; j++) { i += j; }
        while (i > 0) i--;
        do { i++; } while (i < 3);
        if (i == 3) return; else i = 4;
        try { i = 1 / i; } catch (Exception e) { i = 0; } finally { i++; }
        throw new Exception("x");`)
	wantTypes := []string{"*ast.VarDeclStmt", "*ast.ForStmt", "*ast.WhileStmt",
		"*ast.DoWhileStmt", "*ast.IfStmt", "*ast.TryStmt", "*ast.ThrowStmt"}
	if len(stmts) != len(wantTypes) {
		t.Fatalf("%d statements", len(stmts))
	}
	for i, s := range stmts {
		got := strings.TrimPrefix(typeName(s), "ast.")
		want := strings.TrimPrefix(wantTypes[i], "*ast.")
		if got != want {
			t.Errorf("stmt %d is %s, want %s", i, got, want)
		}
	}
}

func typeName(v interface{}) string {
	s := strings.TrimPrefix(strings.TrimPrefix(
		strings.TrimSpace(strings.Split(strings.TrimPrefix(
			strings.TrimSpace(sprintT(v)), "*"), " ")[0]), "ast."), "*")
	return s
}

func sprintT(v interface{}) string {
	switch v.(type) {
	case *ast.VarDeclStmt:
		return "ast.VarDeclStmt"
	case *ast.ForStmt:
		return "ast.ForStmt"
	case *ast.WhileStmt:
		return "ast.WhileStmt"
	case *ast.DoWhileStmt:
		return "ast.DoWhileStmt"
	case *ast.IfStmt:
		return "ast.IfStmt"
	case *ast.TryStmt:
		return "ast.TryStmt"
	case *ast.ThrowStmt:
		return "ast.ThrowStmt"
	}
	return "other"
}

func TestNewForms(t *testing.T) {
	if _, ok := firstExpr(t, "new Foo(1, 2)").(*ast.NewObject); !ok {
		t.Error("new Foo(...)")
	}
	na, ok := firstExpr(t, "new int[3][4]").(*ast.NewArray)
	if !ok || len(na.Lens) != 2 || na.ExtraDims != 0 {
		t.Errorf("new int[3][4]: %+v", na)
	}
	na = firstExpr(t, "new double[n][]").(*ast.NewArray)
	if len(na.Lens) != 1 || na.ExtraDims != 1 {
		t.Errorf("new double[n][]: %+v", na)
	}
}

func TestSuperForms(t *testing.T) {
	f := parseOK(t, `
class D extends B {
    D() { super(1); }
    int m() { return super.m(); }
}`)
	ctor := f.Classes[0].Methods[0]
	es := ctor.Body.Stmts[0].(*ast.ExprStmt)
	if _, ok := es.X.(*ast.SuperCtorCall); !ok {
		t.Error("super(1) not parsed as constructor call")
	}
	ret := f.Classes[0].Methods[1].Body.Stmts[0].(*ast.ReturnStmt)
	if _, ok := ret.X.(*ast.SuperCall); !ok {
		t.Error("super.m() not parsed")
	}
}

func TestPrefixIncrementLowering(t *testing.T) {
	stmts := firstMethodBody(t, "++i;")
	asn, ok := stmts[0].(*ast.ExprStmt).X.(*ast.Assign)
	if !ok || asn.Op != token.ADDASSIGN {
		t.Error("++i must lower to i += 1")
	}
	stmts = firstMethodBody(t, "i++;")
	if _, ok := stmts[0].(*ast.ExprStmt).X.(*ast.IncDec); !ok {
		t.Error("i++ must stay postfix IncDec")
	}
}

func TestTernary(t *testing.T) {
	c, ok := firstExpr(t, "a ? b : c ? d : e").(*ast.Cond)
	if !ok {
		t.Fatal("no conditional")
	}
	if _, ok := c.Else.(*ast.Cond); !ok {
		t.Error("?: must be right associative")
	}
}

func TestErrorRecovery(t *testing.T) {
	for _, src := range []string{
		"class {",
		"class C { void m() { if } }",
		"class C { int x = ; }",
		"class C { void m() { 1 + ; } }",
		"class C { void m() { try {} } }", // try without catch/finally
		"class C { void m() { new int[]; } }",
	} {
		_, errs := ParseFile("t", src)
		if len(errs) == 0 {
			t.Errorf("%q: no error reported", src)
		}
	}
	// The parser must not loop forever or panic on truncated input.
	for _, src := range []string{"class C { void m() {", "class C { int", "class"} {
		ParseFile("t", src)
	}
}

func TestAssignTargetsValidated(t *testing.T) {
	_, errs := ParseFile("t", "class C { void m() { 1 = 2; } }")
	if len(errs) == 0 {
		t.Error("assignment to a literal accepted")
	}
	_, errs = ParseFile("t", "class C { void m() { f()++; } }")
	if len(errs) == 0 {
		t.Error("increment of a call accepted")
	}
}

// TestIntLiteralRanges pins the JLS §3.10.1 rules: decimal int literals
// cap at 2147483647 (2147483648 legal only under unary minus), hex int
// literals are 32-bit two's-complement patterns, and the long
// equivalents scale the same rules to 64 bits. The out-of-range cases
// are regression tests — they used to parse silently with wrapped
// values.
func TestIntLiteralRanges(t *testing.T) {
	intVal := func(src string) int32 {
		t.Helper()
		switch e := firstExpr(t, src).(type) {
		case *ast.IntLit:
			return e.Value
		default:
			t.Fatalf("%s parsed to %T, want IntLit", src, e)
			return 0
		}
	}
	longVal := func(src string) int64 {
		t.Helper()
		switch e := firstExpr(t, src).(type) {
		case *ast.LongLit:
			return e.Value
		default:
			t.Fatalf("%s parsed to %T, want LongLit", src, e)
			return 0
		}
	}

	if got := intVal("2147483647"); got != 2147483647 {
		t.Errorf("max int literal = %d", got)
	}
	if got := intVal("-2147483648"); got != -2147483648 {
		t.Errorf("min int literal = %d", got)
	}
	if got := intVal("0xFFFFFFFF"); got != -1 {
		t.Errorf("0xFFFFFFFF = %d, want -1 (two's complement)", got)
	}
	if got := intVal("0x80000000"); got != -2147483648 {
		t.Errorf("0x80000000 = %d, want MinInt32", got)
	}
	if got := intVal("-0x80000000"); got != -2147483648 {
		t.Errorf("-0x80000000 = %d, want MinInt32 (negation wraps)", got)
	}
	if got := longVal("9223372036854775807L"); got != 9223372036854775807 {
		t.Errorf("max long literal = %d", got)
	}
	if got := longVal("-9223372036854775808L"); got != -9223372036854775808 {
		t.Errorf("min long literal = %d", got)
	}
	if got := longVal("0xFFFFFFFFFFFFFFFFL"); got != -1 {
		t.Errorf("0xFFFF...L = %d, want -1", got)
	}

	for _, bad := range []string{
		"2147483648",           // only legal under unary minus
		"-2147483649",          // below MinInt32
		"4999999999",           // wraps if truncated blindly
		"0x100000000",          // 33 bits
		"9223372036854775808L", // only legal under unary minus
		"-9223372036854775809L",
		"0x10000000000000000L", // 65 bits
	} {
		src := "class C { void m() { x = " + bad + "; } }"
		if _, errs := ParseFile("t.tj", src); len(errs) == 0 {
			t.Errorf("%s: out-of-range literal accepted", bad)
		}
	}
}
