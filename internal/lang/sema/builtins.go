package sema

import "safetsa/internal/lang/ast"

// newUniverse creates the Program skeleton with the primitive types and
// the imported host classes: Object, String, and the exception hierarchy.
// These mirror the paper's "types imported from the host environment's
// libraries", whose type-table entries are generated implicitly and are
// therefore tamper-proof.
func newUniverse() *Program {
	p := &Program{
		Classes:        make(map[string]*Class),
		arrays:         make(map[*Type]*Type),
		MethodInfo:     make(map[*MethodSym]*MethodInfo),
		DeclLocal:      make(map[*ast.VarDeclStmt]*Local),
		CatchLocal:     make(map[*ast.CatchClause]*Local),
		ImplicitSuper:  make(map[*MethodSym]*MethodSym),
		InstanceOfType: make(map[*ast.InstanceOf]*Type),
		Int:            &Type{Kind: KindInt, name: "int"},
		Long:           &Type{Kind: KindLong, name: "long"},
		Double:         &Type{Kind: KindDouble, name: "double"},
		Boolean:        &Type{Kind: KindBoolean, name: "boolean"},
		Char:           &Type{Kind: KindChar, name: "char"},
		Void:           &Type{Kind: KindVoid, name: "void"},
		Null:           &Type{Kind: KindNull, name: "null"},
	}

	obj := &Class{Name: "Object", Imported: true}
	p.ClsObject = obj
	p.Object = p.ClassType(obj)
	p.Classes["Object"] = obj

	str := &Class{Name: "String", Super: obj, Imported: true}
	p.ClsString = str
	p.String = p.ClassType(str)
	p.Classes["String"] = str

	throwable := &Class{Name: "Throwable", Super: obj, Imported: true}
	p.ClsThrowable = throwable
	p.Throwable = p.ClassType(throwable)
	p.Classes["Throwable"] = throwable

	exc := &Class{Name: "Exception", Super: throwable, Imported: true}
	p.ClsException = exc
	p.Classes["Exception"] = exc

	mkExc := func(name string) *Class {
		c := &Class{Name: name, Super: exc, Imported: true}
		p.Classes[name] = c
		return c
	}
	p.ClsNPE = mkExc("NullPointerException")
	p.ClsArith = mkExc("ArithmeticException")
	p.ClsBounds = mkExc("IndexOutOfBoundsException")
	p.ClsCast = mkExc("ClassCastException")
	p.ClsNegArraySize = mkExc("NegativeArraySizeException")

	// Object methods.
	obj.Methods = []*MethodSym{
		{Name: "hashCode", Return: p.Int, Owner: obj, Builtin: BObjHashCode},
		{Name: "equals", Params: []*Type{p.Object}, Return: p.Boolean, Owner: obj, Builtin: BObjEquals},
		{Name: "toString", Return: p.String, Owner: obj, Builtin: BObjToString},
	}
	obj.Ctors = []*MethodSym{
		{Name: "Object", IsCtor: true, Return: p.Void, Owner: obj, VSlot: -1},
	}

	// String methods.
	str.Methods = []*MethodSym{
		{Name: "length", Return: p.Int, Owner: str, Builtin: BStrLength},
		{Name: "charAt", Params: []*Type{p.Int}, Return: p.Char, Owner: str, Builtin: BStrCharAt},
		{Name: "substring", Params: []*Type{p.Int, p.Int}, Return: p.String, Owner: str, Builtin: BStrSubstring},
		{Name: "equals", Params: []*Type{p.Object}, Return: p.Boolean, Owner: str, Builtin: BStrEquals},
		{Name: "compareTo", Params: []*Type{p.String}, Return: p.Int, Owner: str, Builtin: BStrCompareTo},
		{Name: "indexOf", Params: []*Type{p.String}, Return: p.Int, Owner: str, Builtin: BStrIndexOf},
		{Name: "hashCode", Return: p.Int, Owner: str, Builtin: BStrHashCode},
	}

	// Throwable/Exception: a message field plus getMessage. The message
	// field occupies instance slot 0 of every throwable.
	throwable.Fields = []*FieldSym{
		{Name: "message", Type: p.String, Owner: throwable, Slot: 0},
	}
	throwable.NumSlots = 1
	throwable.Methods = []*MethodSym{
		{Name: "getMessage", Return: p.String, Owner: throwable, Builtin: BExcGetMessage},
	}
	throwable.Ctors = []*MethodSym{
		{Name: "Throwable", IsCtor: true, Return: p.Void, Owner: throwable, VSlot: -1},
		{Name: "Throwable", IsCtor: true, Params: []*Type{p.String}, Return: p.Void, Owner: throwable, VSlot: -1},
	}
	for _, c := range []*Class{exc, p.ClsNPE, p.ClsArith, p.ClsBounds, p.ClsCast, p.ClsNegArraySize} {
		c.NumSlots = 1
		c.Ctors = []*MethodSym{
			{Name: c.Name, IsCtor: true, Return: p.Void, Owner: c, VSlot: -1},
			{Name: c.Name, IsCtor: true, Params: []*Type{p.String}, Return: p.Void, Owner: c, VSlot: -1},
		}
	}

	return p
}

// mathBuiltins maps Math.<name> overload sets.
func (p *Program) mathBuiltins(name string) []*Builtin {
	b := func(id BuiltinID, ret *Type, params ...*Type) *Builtin {
		return &Builtin{ID: id, Name: "Math." + name, Params: params, Return: ret}
	}
	switch name {
	case "sqrt":
		return []*Builtin{b(BMathSqrt, p.Double, p.Double)}
	case "abs":
		return []*Builtin{
			b(BMathAbsI, p.Int, p.Int),
			b(BMathAbsL, p.Long, p.Long),
			b(BMathAbsD, p.Double, p.Double),
		}
	case "min":
		return []*Builtin{
			b(BMathMinI, p.Int, p.Int, p.Int),
			b(BMathMinL, p.Long, p.Long, p.Long),
			b(BMathMinD, p.Double, p.Double, p.Double),
		}
	case "max":
		return []*Builtin{
			b(BMathMaxI, p.Int, p.Int, p.Int),
			b(BMathMaxL, p.Long, p.Long, p.Long),
			b(BMathMaxD, p.Double, p.Double, p.Double),
		}
	case "pow":
		return []*Builtin{b(BMathPow, p.Double, p.Double, p.Double)}
	case "floor":
		return []*Builtin{b(BMathFloor, p.Double, p.Double)}
	case "ceil":
		return []*Builtin{b(BMathCeil, p.Double, p.Double)}
	case "log":
		return []*Builtin{b(BMathLog, p.Double, p.Double)}
	case "exp":
		return []*Builtin{b(BMathExp, p.Double, p.Double)}
	case "sin":
		return []*Builtin{b(BMathSin, p.Double, p.Double)}
	case "cos":
		return []*Builtin{b(BMathCos, p.Double, p.Double)}
	}
	return nil
}

// printBuiltins maps System.out.<name> overload sets.
func (p *Program) printBuiltins(name string) []*Builtin {
	b := func(id BuiltinID, params ...*Type) *Builtin {
		return &Builtin{ID: id, Name: "System.out." + name, Params: params, Return: p.Void}
	}
	switch name {
	case "println":
		return []*Builtin{
			b(BPrintlnString, p.String),
			b(BPrintlnInt, p.Int),
			b(BPrintlnLong, p.Long),
			b(BPrintlnDouble, p.Double),
			b(BPrintlnBool, p.Boolean),
			b(BPrintlnChar, p.Char),
			b(BPrintlnEmpty),
		}
	case "print":
		return []*Builtin{
			b(BPrintString, p.String),
			b(BPrintInt, p.Int),
			b(BPrintLong, p.Long),
			b(BPrintDouble, p.Double),
			b(BPrintBool, p.Boolean),
			b(BPrintChar, p.Char),
		}
	}
	return nil
}
