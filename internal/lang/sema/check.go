package sema

import (
	"fmt"
	"sort"

	"safetsa/internal/lang/ast"
	"safetsa/internal/lang/token"
)

// Check runs semantic analysis over the given files and returns the
// Program. The AST is decorated in place: every expression carries its
// type, and name uses carry their resolved symbols.
func Check(files ...*ast.File) (*Program, []error) {
	c := &checker{prog: newUniverse()}
	c.collectClasses(files)
	if len(c.errs) == 0 {
		c.linkHierarchy()
	}
	if len(c.errs) == 0 {
		c.collectMembers()
		c.buildVTables()
	}
	if len(c.errs) == 0 {
		c.checkBodies()
	}
	return c.prog, c.errs
}

type checker struct {
	prog *Program
	errs []error

	cls    *Class
	method *MethodSym
	info   *MethodInfo
	scopes []map[string]*Local
	loops  int
}

func (c *checker) errorf(pos token.Pos, format string, args ...interface{}) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// ---------------------------------------------------------------------
// Phase 1: class collection and hierarchy linking.

func (c *checker) collectClasses(files []*ast.File) {
	for _, f := range files {
		for _, d := range f.Classes {
			if prev, ok := c.prog.Classes[d.Name]; ok {
				if prev.Imported {
					c.errorf(d.P, "class %s conflicts with an imported host class", d.Name)
				} else {
					c.errorf(d.P, "class %s redeclared", d.Name)
				}
				continue
			}
			c.prog.Classes[d.Name] = &Class{Name: d.Name, Decl: d}
		}
	}
}

func (c *checker) linkHierarchy() {
	for _, cls := range c.prog.Classes {
		if cls.Imported {
			continue
		}
		super := cls.Decl.Super
		if super == "" {
			cls.Super = c.prog.ClsObject
			continue
		}
		sc, ok := c.prog.Classes[super]
		if !ok {
			c.errorf(cls.Decl.P, "class %s extends unknown class %s", cls.Name, super)
			cls.Super = c.prog.ClsObject
			continue
		}
		if sc == c.prog.ClsString {
			c.errorf(cls.Decl.P, "class %s may not extend String", cls.Name)
			cls.Super = c.prog.ClsObject
			continue
		}
		cls.Super = sc
	}
	// Detect cycles and compute depths.
	for _, cls := range c.prog.Classes {
		seen := map[*Class]bool{}
		for x := cls; x != nil; x = x.Super {
			if seen[x] {
				c.errorf(cls.Decl.P, "inheritance cycle involving %s", cls.Name)
				cls.Super = c.prog.ClsObject
				break
			}
			seen[x] = true
		}
	}
	if len(c.errs) > 0 {
		return
	}
	var depth func(*Class) int
	depth = func(x *Class) int {
		if x.Super == nil {
			x.depth = 0
			return 0
		}
		x.depth = depth(x.Super) + 1
		return x.depth
	}
	order := make([]*Class, 0, len(c.prog.Classes))
	for _, cls := range c.prog.Classes {
		depth(cls)
		order = append(order, cls)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].depth != order[j].depth {
			return order[i].depth < order[j].depth
		}
		return order[i].Name < order[j].Name
	})
	c.prog.Order = order
}

// ---------------------------------------------------------------------
// Phase 2: member collection.

func (c *checker) resolveType(t ast.TypeExpr) *Type {
	switch t := t.(type) {
	case *ast.PrimTypeExpr:
		switch t.Kind {
		case token.INT:
			return c.prog.Int
		case token.LONG:
			return c.prog.Long
		case token.DOUBLE:
			return c.prog.Double
		case token.BOOLEAN:
			return c.prog.Boolean
		case token.CHAR:
			return c.prog.Char
		case token.VOID:
			return c.prog.Void
		}
	case *ast.NamedTypeExpr:
		if cls, ok := c.prog.Classes[t.Name]; ok {
			return c.prog.ClassType(cls)
		}
		c.errorf(t.P, "unknown type %s", t.Name)
		return c.prog.Object
	case *ast.ArrayTypeExpr:
		elem := c.resolveType(t.Elem)
		if elem == c.prog.Void {
			c.errorf(t.P, "array of void")
			elem = c.prog.Int
		}
		return c.prog.ArrayOf(elem)
	}
	panic("sema: unhandled type expression")
}

func (c *checker) collectMembers() {
	for _, cls := range c.prog.Order {
		if cls.Imported {
			continue
		}
		cls.NumSlots = cls.Super.NumSlots
		for _, fd := range cls.Decl.Fields {
			ft := c.resolveType(fd.Type)
			if ft == c.prog.Void {
				c.errorf(fd.P, "field %s has type void", fd.Name)
				ft = c.prog.Int
			}
			for _, prev := range cls.Fields {
				if prev.Name == fd.Name {
					c.errorf(fd.P, "field %s redeclared in %s", fd.Name, cls.Name)
				}
			}
			f := &FieldSym{Name: fd.Name, Type: ft, Static: fd.Static, Final: fd.Final, Owner: cls, Init: fd.Init}
			if fd.Static {
				f.Slot = cls.NumStatics
				cls.NumStatics++
			} else {
				f.Slot = cls.NumSlots
				cls.NumSlots++
			}
			cls.Fields = append(cls.Fields, f)
		}
		for _, md := range cls.Decl.Methods {
			m := &MethodSym{Name: md.Name, Static: md.Static, IsCtor: md.IsCtor, Owner: cls, Decl: md, VSlot: -1}
			for _, prm := range md.Params {
				pt := c.resolveType(prm.Type)
				if pt == c.prog.Void {
					c.errorf(prm.P, "parameter %s has type void", prm.Name)
					pt = c.prog.Int
				}
				m.Params = append(m.Params, pt)
			}
			if md.IsCtor {
				m.Return = c.prog.Void
				for _, prev := range cls.Ctors {
					if sameSignature(prev, m) {
						c.errorf(md.P, "constructor %s redeclared", m.Sig())
					}
				}
				cls.Ctors = append(cls.Ctors, m)
				continue
			}
			m.Return = c.resolveType(md.Return)
			for _, prev := range cls.Methods {
				if sameSignature(prev, m) {
					c.errorf(md.P, "method %s redeclared", m.Sig())
				}
			}
			cls.Methods = append(cls.Methods, m)
		}
		if len(cls.Ctors) == 0 {
			cls.Ctors = append(cls.Ctors, &MethodSym{
				Name: cls.Name, IsCtor: true, Return: c.prog.Void,
				Owner: cls, VSlot: -1, Synthetic: true,
			})
		}
	}
}

// buildVTables assigns virtual slots and builds each class's dispatch
// table, with overrides replacing the inherited entry.
func (c *checker) buildVTables() {
	for _, cls := range c.prog.Order {
		if cls.Super != nil {
			cls.VTable = append([]*MethodSym(nil), cls.Super.VTable...)
		}
		for _, m := range cls.Methods {
			if m.Static {
				continue
			}
			slot := -1
			for i, inherited := range cls.VTable {
				if sameSignature(inherited, m) {
					if inherited.Static {
						c.errorf(m.Decl.P, "method %s overrides a static method", m.Sig())
					}
					if inherited.Return != m.Return {
						c.errorf(m.Decl.P, "method %s overrides %s with a different return type", m.Sig(), inherited.Sig())
					}
					slot = i
					break
				}
			}
			if slot < 0 {
				slot = len(cls.VTable)
				cls.VTable = append(cls.VTable, m)
			} else {
				cls.VTable[slot] = m
			}
			m.VSlot = slot
		}
	}
}

// ---------------------------------------------------------------------
// Phase 3: body checking.

func (c *checker) checkBodies() {
	for _, cls := range c.prog.Order {
		if cls.Imported {
			continue
		}
		c.cls = cls
		for _, f := range cls.Fields {
			if f.Init != nil {
				c.method = nil
				c.info = &MethodInfo{}
				c.scopes = []map[string]*Local{{}}
				t := c.checkExpr(f.Init)
				if !c.prog.Widens(t, f.Type) {
					c.errorf(f.Init.Pos(), "cannot initialize %s field %s with %s", f.Type, f.QName(), t)
				}
			}
		}
		for _, m := range cls.Ctors {
			c.checkMethodBody(m)
		}
		for _, m := range cls.Methods {
			c.checkMethodBody(m)
		}
	}
}

func (c *checker) checkMethodBody(m *MethodSym) {
	c.method = m
	c.info = &MethodInfo{}
	c.prog.MethodInfo[m] = c.info
	c.scopes = []map[string]*Local{{}}
	c.loops = 0

	if m.Synthetic {
		c.resolveImplicitSuper(m, m.Owner.Decl.P)
		return
	}
	for i, prm := range m.Decl.Params {
		l := c.declareLocal(prm.Name, m.Params[i], prm.P)
		l.Param = true
		c.info.Params = append(c.info.Params, l)
	}
	body := m.Decl.Body.Stmts
	if m.IsCtor {
		explicit := false
		if len(body) > 0 {
			if es, ok := body[0].(*ast.ExprStmt); ok {
				if sc, ok := es.X.(*ast.SuperCtorCall); ok {
					explicit = true
					c.checkSuperCtorCall(sc)
				}
			}
		}
		if !explicit {
			c.resolveImplicitSuper(m, m.Decl.P)
		}
		for i, s := range body {
			if i == 0 && explicit {
				continue
			}
			c.checkStmt(s)
		}
		return
	}
	for _, s := range body {
		c.checkStmt(s)
	}
}

func (c *checker) resolveImplicitSuper(m *MethodSym, pos token.Pos) {
	super := m.Owner.Super
	for _, ct := range super.Ctors {
		if len(ct.Params) == 0 {
			c.prog.ImplicitSuper[m] = ct
			return
		}
	}
	c.errorf(pos, "superclass %s has no no-argument constructor; add an explicit super(...) call in %s", super.Name, m.Sig())
}

func (c *checker) checkSuperCtorCall(sc *ast.SuperCtorCall) {
	if c.method == nil || !c.method.IsCtor {
		c.errorf(sc.P, "super(...) call outside a constructor")
		return
	}
	args := c.checkArgs(sc.Args)
	super := c.cls.Super
	m := c.resolveMethodOverload(super.Ctors, args, sc.P, "constructor "+super.Name)
	sc.Ctor = m
	sc.SetTypeInfo(c.prog.Void)
}

func (c *checker) declareLocal(name string, t *Type, pos token.Pos) *Local {
	for _, scope := range c.scopes {
		if _, ok := scope[name]; ok {
			c.errorf(pos, "local %s redeclared", name)
		}
	}
	l := &Local{Name: name, Type: t, Index: len(c.info.Locals)}
	c.info.Locals = append(c.info.Locals, l)
	c.scopes[len(c.scopes)-1][name] = l
	return l
}

func (c *checker) lookupLocal(name string) *Local {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if l, ok := c.scopes[i][name]; ok {
			return l
		}
	}
	return nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*Local{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.pushScope()
		for _, st := range s.Stmts {
			c.checkStmt(st)
		}
		c.popScope()
	case *ast.EmptyStmt:
	case *ast.VarDeclStmt:
		t := c.resolveType(s.Type)
		if t == c.prog.Void {
			c.errorf(s.P, "variable %s has type void", s.Name)
			t = c.prog.Int
		}
		if s.Init != nil {
			it := c.checkExpr(s.Init)
			if !c.prog.Widens(it, t) {
				c.errorf(s.Init.Pos(), "cannot initialize %s %s with %s", t, s.Name, it)
			}
		}
		c.prog.DeclLocal[s] = c.declareLocal(s.Name, t, s.P)
	case *ast.ExprStmt:
		switch x := s.X.(type) {
		case *ast.Assign, *ast.IncDec, *ast.CallExpr, *ast.NewObject, *ast.SuperCall:
			c.checkExpr(s.X)
			_ = x
		case *ast.SuperCtorCall:
			c.errorf(s.P, "super(...) is only allowed as the first statement of a constructor")
		default:
			c.errorf(s.P, "expression statement must be an assignment, call, or increment")
			c.checkExpr(s.X)
		}
	case *ast.IfStmt:
		c.checkCond(s.Cond)
		c.checkStmt(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *ast.WhileStmt:
		c.checkCond(s.Cond)
		c.loops++
		c.checkStmt(s.Body)
		c.loops--
	case *ast.DoWhileStmt:
		c.loops++
		c.checkStmt(s.Body)
		c.loops--
		c.checkCond(s.Cond)
	case *ast.ForStmt:
		c.pushScope()
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			c.checkCond(s.Cond)
		}
		c.loops++
		c.checkStmt(s.Body)
		c.loops--
		if s.Post != nil {
			c.checkStmt(s.Post)
		}
		c.popScope()
	case *ast.ReturnStmt:
		want := c.prog.Void
		if c.method != nil && c.method.Return != nil {
			want = c.method.Return
		}
		if s.X == nil {
			if want != c.prog.Void {
				c.errorf(s.P, "missing return value (want %s)", want)
			}
			return
		}
		got := c.checkExpr(s.X)
		if want == c.prog.Void {
			c.errorf(s.P, "void method returns a value")
		} else if !c.prog.Widens(got, want) {
			c.errorf(s.P, "cannot return %s from a method returning %s", got, want)
		}
	case *ast.BreakStmt:
		if c.loops == 0 {
			c.errorf(s.P, "break outside a loop")
		}
	case *ast.ContinueStmt:
		if c.loops == 0 {
			c.errorf(s.P, "continue outside a loop")
		}
	case *ast.ThrowStmt:
		t := c.checkExpr(s.X)
		if t.Kind != KindClass || !t.Class.IsSubclassOf(c.prog.ClsThrowable) {
			c.errorf(s.P, "thrown value must be a Throwable, have %s", t)
		}
	case *ast.TryStmt:
		c.checkStmt(s.Body)
		for _, cc := range s.Catches {
			t := c.resolveType(cc.Type)
			if t.Kind != KindClass || !t.Class.IsSubclassOf(c.prog.ClsThrowable) {
				c.errorf(cc.P, "catch type must be a Throwable, have %s", t)
				t = c.prog.ClassType(c.prog.ClsThrowable)
			}
			c.pushScope()
			c.prog.CatchLocal[cc] = c.declareLocal(cc.Name, t, cc.P)
			for _, st := range cc.Body.Stmts {
				c.checkStmt(st)
			}
			c.popScope()
		}
		if s.Finally != nil {
			c.checkStmt(s.Finally)
		}
	default:
		panic(fmt.Sprintf("sema: unhandled statement %T", s))
	}
}

func (c *checker) checkCond(x ast.Expr) {
	t := c.checkExpr(x)
	if t != c.prog.Boolean {
		c.errorf(x.Pos(), "condition must be boolean, have %s", t)
	}
}

// unaryPromote implements Java's unary numeric promotion (char → int).
func (c *checker) unaryPromote(t *Type) *Type {
	if t.Kind == KindChar {
		return c.prog.Int
	}
	return t
}

func (c *checker) checkArgs(args []ast.Expr) []*Type {
	out := make([]*Type, len(args))
	for i, a := range args {
		out[i] = c.checkExpr(a)
	}
	return out
}

// set assigns the expression's type and returns it.
func set(e ast.Expr, t *Type) *Type {
	e.SetTypeInfo(t)
	return t
}

// TypeOf extracts the checker-assigned type of an expression.
func TypeOf(e ast.Expr) *Type {
	t, _ := e.TypeInfo().(*Type)
	return t
}

func (c *checker) checkExpr(e ast.Expr) *Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return set(e, c.prog.Int)
	case *ast.LongLit:
		return set(e, c.prog.Long)
	case *ast.DoubleLit:
		return set(e, c.prog.Double)
	case *ast.BoolLit:
		return set(e, c.prog.Boolean)
	case *ast.CharLit:
		return set(e, c.prog.Char)
	case *ast.StringLit:
		return set(e, c.prog.String)
	case *ast.NullLit:
		return set(e, c.prog.Null)
	case *ast.ThisExpr:
		if c.method == nil || c.method.Static {
			c.errorf(e.P, "this used in a static context")
			return set(e, c.prog.Object)
		}
		return set(e, c.prog.ClassType(c.cls))
	case *ast.Ident:
		return c.checkIdent(e)
	case *ast.FieldAccess:
		return c.checkFieldAccess(e)
	case *ast.IndexExpr:
		xt := c.checkExpr(e.X)
		it := c.checkExpr(e.Index)
		if !c.prog.Widens(it, c.prog.Int) || it == c.prog.Double || it == c.prog.Long {
			c.errorf(e.Index.Pos(), "array index must be int, have %s", it)
		}
		if xt.Kind != KindArray {
			c.errorf(e.P, "indexed value is not an array (have %s)", xt)
			return set(e, c.prog.Int)
		}
		return set(e, xt.Elem)
	case *ast.CallExpr:
		return c.checkCall(e)
	case *ast.SuperCall:
		return c.checkSuperMethodCall(e)
	case *ast.SuperCtorCall:
		c.checkSuperCtorCall(e)
		return c.prog.Void
	case *ast.NewObject:
		return c.checkNewObject(e)
	case *ast.NewArray:
		return c.checkNewArray(e)
	case *ast.Unary:
		return c.checkUnary(e)
	case *ast.Binary:
		return c.checkBinary(e)
	case *ast.Assign:
		return c.checkAssign(e)
	case *ast.IncDec:
		t := c.checkExpr(e.X)
		if !t.IsNumeric() {
			c.errorf(e.P, "operand of %s must be numeric, have %s", e.Op, t)
		}
		c.checkLValue(e.X)
		return set(e, t)
	case *ast.Cast:
		return c.checkCast(e)
	case *ast.InstanceOf:
		xt := c.checkExpr(e.X)
		tt := c.resolveType(e.Type)
		if !xt.IsRef() {
			c.errorf(e.P, "instanceof requires a reference operand, have %s", xt)
		}
		if !tt.IsRef() || tt.Kind == KindNull {
			c.errorf(e.P, "instanceof requires a reference type, have %s", tt)
			tt = c.prog.Object
		}
		c.prog.InstanceOfType[e] = tt
		return set(e, c.prog.Boolean)
	case *ast.Cond:
		c.checkCond(e.C)
		tt := c.checkExpr(e.Then)
		et := c.checkExpr(e.Else)
		return set(e, c.condType(e.P, tt, et))
	}
	panic(fmt.Sprintf("sema: unhandled expression %T", e))
}

// condType unifies the arms of a ?: expression.
func (c *checker) condType(pos token.Pos, a, b *Type) *Type {
	switch {
	case a == b:
		return a
	case a.IsNumeric() && b.IsNumeric():
		return c.prog.Promote(a, b)
	case a.Kind == KindNull && b.IsRef():
		return b
	case b.Kind == KindNull && a.IsRef():
		return a
	case a.IsRef() && b.IsRef():
		return c.commonSuper(a, b)
	}
	c.errorf(pos, "incompatible conditional arms %s and %s", a, b)
	return a
}

func (c *checker) commonSuper(a, b *Type) *Type {
	if a.Kind == KindArray || b.Kind == KindArray {
		if a == b {
			return a
		}
		return c.prog.Object
	}
	for x := a.Class; x != nil; x = x.Super {
		if b.Class.IsSubclassOf(x) {
			return c.prog.ClassType(x)
		}
	}
	return c.prog.Object
}

func (c *checker) checkLValue(e ast.Expr) {
	if id, ok := e.(*ast.Ident); ok {
		if _, isClass := id.Sym.(*ClassRef); isClass {
			c.errorf(id.P, "%s is a class name, not a variable", id.Name)
		}
	}
}

func (c *checker) checkIdent(e *ast.Ident) *Type {
	if l := c.lookupLocal(e.Name); l != nil {
		e.Sym = l
		return set(e, l.Type)
	}
	if c.cls != nil {
		if f := c.cls.LookupField(e.Name); f != nil {
			if !f.Static && (c.method == nil || c.method.Static) {
				c.errorf(e.P, "instance field %s used in a static context", f.QName())
			}
			e.Sym = f
			return set(e, f.Type)
		}
	}
	if cls, ok := c.prog.Classes[e.Name]; ok {
		e.Sym = &ClassRef{Class: cls}
		return set(e, c.prog.ClassType(cls))
	}
	c.errorf(e.P, "undefined name %s", e.Name)
	e.Sym = &Local{Name: e.Name, Type: c.prog.Int}
	return set(e, c.prog.Int)
}

// isClassName reports whether e is an identifier that names a class (and
// not a local or field shadowing it).
func (c *checker) isClassName(e ast.Expr) (*Class, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil, false
	}
	if c.lookupLocal(id.Name) != nil {
		return nil, false
	}
	if c.cls != nil && c.cls.LookupField(id.Name) != nil {
		return nil, false
	}
	cls, ok := c.prog.Classes[id.Name]
	return cls, ok
}

func (c *checker) checkFieldAccess(e *ast.FieldAccess) *Type {
	// Static field access: ClassName.field.
	if cls, ok := c.isClassName(e.X); ok {
		id := e.X.(*ast.Ident)
		id.Sym = &ClassRef{Class: cls}
		id.SetTypeInfo(c.prog.ClassType(cls))
		f := cls.LookupField(e.Name)
		if f == nil || !f.Static {
			c.errorf(e.P, "class %s has no static field %s", cls.Name, e.Name)
			return set(e, c.prog.Int)
		}
		e.Sym = f
		e.IsStaticClass = true
		return set(e, f.Type)
	}
	// System.out used directly as a value is rejected; it is only valid
	// as a call receiver (handled in checkCall).
	if id, ok := e.X.(*ast.Ident); ok && id.Name == "System" && e.Name == "out" &&
		c.lookupLocal("System") == nil && (c.cls == nil || c.cls.LookupField("System") == nil) {
		c.errorf(e.P, "System.out may only be used as a call receiver")
		return set(e, c.prog.Object)
	}
	xt := c.checkExpr(e.X)
	if xt.Kind == KindArray {
		if e.Name != "length" {
			c.errorf(e.P, "arrays have no field %s", e.Name)
			return set(e, c.prog.Int)
		}
		e.IsLength = true
		return set(e, c.prog.Int)
	}
	if xt.Kind != KindClass {
		c.errorf(e.P, "%s has no fields", xt)
		return set(e, c.prog.Int)
	}
	f := xt.Class.LookupField(e.Name)
	if f == nil {
		c.errorf(e.P, "class %s has no field %s", xt.Class.Name, e.Name)
		return set(e, c.prog.Int)
	}
	if f.Static {
		c.errorf(e.P, "static field %s accessed through an instance", f.QName())
	}
	e.Sym = f
	return set(e, f.Type)
}

// resolveMethodOverload picks the unique applicable, most specific method.
func (c *checker) resolveMethodOverload(cands []*MethodSym, args []*Type, pos token.Pos, what string) *MethodSym {
	sigs := make([][]*Type, len(cands))
	for i, m := range cands {
		sigs[i] = m.Params
	}
	idx := c.resolveOverload(sigs, args, pos, what)
	if idx < 0 {
		return nil
	}
	return cands[idx]
}

func (c *checker) resolveBuiltinOverload(cands []*Builtin, args []*Type, pos token.Pos, what string) *Builtin {
	sigs := make([][]*Type, len(cands))
	for i, b := range cands {
		sigs[i] = b.Params
	}
	idx := c.resolveOverload(sigs, args, pos, what)
	if idx < 0 {
		return nil
	}
	return cands[idx]
}

// resolveOverload implements two-phase overload resolution: exact match,
// then widening applicability with most-specific selection.
func (c *checker) resolveOverload(sigs [][]*Type, args []*Type, pos token.Pos, what string) int {
	exact := -1
	var applicable []int
	for i, sig := range sigs {
		if len(sig) != len(args) {
			continue
		}
		allExact, allWiden := true, true
		for j := range sig {
			if args[j] != sig[j] {
				allExact = false
			}
			if !c.prog.Widens(args[j], sig[j]) {
				allWiden = false
			}
		}
		if allExact {
			if exact >= 0 {
				c.errorf(pos, "ambiguous call to %s", what)
				return exact
			}
			exact = i
		}
		if allWiden {
			applicable = append(applicable, i)
		}
	}
	if exact >= 0 {
		return exact
	}
	switch len(applicable) {
	case 0:
		c.errorf(pos, "no applicable overload of %s for argument types %s", what, typeList(args))
		return -1
	case 1:
		return applicable[0]
	}
	// Most-specific: m is most specific if its parameter list widens to
	// every other applicable parameter list.
	for _, i := range applicable {
		best := true
		for _, j := range applicable {
			if i == j {
				continue
			}
			for k := range sigs[i] {
				if !c.prog.Widens(sigs[i][k], sigs[j][k]) {
					best = false
					break
				}
			}
			if !best {
				break
			}
		}
		if best {
			return i
		}
	}
	c.errorf(pos, "ambiguous call to %s for argument types %s", what, typeList(args))
	return applicable[0]
}

func typeList(ts []*Type) string {
	s := "("
	for i, t := range ts {
		if i > 0 {
			s += ", "
		}
		s += t.String()
	}
	return s + ")"
}

func (c *checker) checkCall(e *ast.CallExpr) *Type {
	// System.out.println / print.
	if fa, ok := e.Recv.(*ast.FieldAccess); ok {
		if id, ok := fa.X.(*ast.Ident); ok && id.Name == "System" && fa.Name == "out" &&
			c.lookupLocal("System") == nil && (c.cls == nil || c.cls.LookupField("System") == nil) {
			cands := c.prog.printBuiltins(e.Name)
			if cands == nil {
				c.errorf(e.P, "System.out has no method %s", e.Name)
				return set(e, c.prog.Void)
			}
			args := c.checkArgs(e.Args)
			b := c.resolveBuiltinOverload(cands, args, e.P, "System.out."+e.Name)
			if b == nil {
				return set(e, c.prog.Void)
			}
			e.Sym = b
			e.Static = true
			return set(e, b.Return)
		}
	}
	// Math.<fn> and ClassName.staticMethod.
	if e.Recv != nil {
		if cls, ok := c.isClassName(e.Recv); ok {
			id := e.Recv.(*ast.Ident)
			id.Sym = &ClassRef{Class: cls}
			id.SetTypeInfo(c.prog.ClassType(cls))
			args := c.checkArgs(e.Args)
			m := c.resolveMethodOverload(staticsNamed(cls, e.Name), args, e.P, cls.Name+"."+e.Name)
			if m == nil {
				return set(e, c.prog.Void)
			}
			e.Sym = m
			e.Static = true
			return set(e, m.Return)
		}
		if id, ok := e.Recv.(*ast.Ident); ok && id.Name == "Math" &&
			c.lookupLocal("Math") == nil && (c.cls == nil || c.cls.LookupField("Math") == nil) {
			cands := c.prog.mathBuiltins(e.Name)
			if cands == nil {
				c.errorf(e.P, "Math has no function %s", e.Name)
				return set(e, c.prog.Double)
			}
			args := c.checkArgs(e.Args)
			b := c.resolveBuiltinOverload(cands, args, e.P, "Math."+e.Name)
			if b == nil {
				return set(e, c.prog.Double)
			}
			e.Sym = b
			e.Static = true
			return set(e, b.Return)
		}
	}

	args := c.checkArgs(e.Args)

	if e.Recv == nil {
		// Unqualified call: method of the current class.
		if c.cls == nil {
			c.errorf(e.P, "call %s outside a class body", e.Name)
			return set(e, c.prog.Void)
		}
		cands := c.cls.MethodsNamed(e.Name)
		m := c.resolveMethodOverload(cands, args, e.P, c.cls.Name+"."+e.Name)
		if m == nil {
			return set(e, c.prog.Void)
		}
		if !m.Static && (c.method == nil || c.method.Static) {
			c.errorf(e.P, "instance method %s called from a static context", m.Sig())
		}
		e.Sym = m
		e.Static = m.Static
		return set(e, m.Return)
	}

	rt := c.checkExpr(e.Recv)
	if rt.Kind != KindClass {
		c.errorf(e.P, "%s has no methods", rt)
		return set(e, c.prog.Void)
	}
	m := c.resolveMethodOverload(rt.Class.MethodsNamed(e.Name), args, e.P, rt.Class.Name+"."+e.Name)
	if m == nil {
		return set(e, c.prog.Void)
	}
	if m.Static {
		c.errorf(e.P, "static method %s called through an instance", m.Sig())
	}
	e.Sym = m
	e.Static = false
	return set(e, m.Return)
}

func staticsNamed(cls *Class, name string) []*MethodSym {
	var out []*MethodSym
	for x := cls; x != nil; x = x.Super {
		for _, m := range x.Methods {
			if m.Name == name && m.Static {
				out = append(out, m)
			}
		}
	}
	return out
}

func (c *checker) checkSuperMethodCall(e *ast.SuperCall) *Type {
	if c.method == nil || c.method.Static {
		c.errorf(e.P, "super call in a static context")
		return set(e, c.prog.Void)
	}
	args := c.checkArgs(e.Args)
	m := c.resolveMethodOverload(c.cls.Super.MethodsNamed(e.Name), args, e.P, "super."+e.Name)
	if m == nil {
		return set(e, c.prog.Void)
	}
	e.Sym = m
	return set(e, m.Return)
}

func (c *checker) checkNewObject(e *ast.NewObject) *Type {
	cls, ok := c.prog.Classes[e.TypeName]
	if !ok {
		c.errorf(e.P, "unknown class %s", e.TypeName)
		return set(e, c.prog.Object)
	}
	if cls == c.prog.ClsObject || cls == c.prog.ClsString {
		c.errorf(e.P, "cannot instantiate %s directly", cls.Name)
	}
	args := c.checkArgs(e.Args)
	ct := c.resolveMethodOverload(cls.Ctors, args, e.P, "constructor "+cls.Name)
	e.Ctor = ct
	return set(e, c.prog.ClassType(cls))
}

func (c *checker) checkNewArray(e *ast.NewArray) *Type {
	base := c.resolveType(e.Base)
	if base == c.prog.Void {
		c.errorf(e.P, "array of void")
		base = c.prog.Int
	}
	for _, l := range e.Lens {
		lt := c.checkExpr(l)
		if lt != c.prog.Int && lt != c.prog.Char {
			c.errorf(l.Pos(), "array length must be int, have %s", lt)
		}
	}
	t := base
	for i := 0; i < len(e.Lens)+e.ExtraDims; i++ {
		t = c.prog.ArrayOf(t)
	}
	return set(e, t)
}

func (c *checker) checkUnary(e *ast.Unary) *Type {
	t := c.checkExpr(e.X)
	switch e.Op {
	case token.SUB, token.ADD:
		if !t.IsNumeric() {
			c.errorf(e.P, "operand of unary %s must be numeric, have %s", e.Op, t)
			return set(e, c.prog.Int)
		}
		return set(e, c.unaryPromote(t))
	case token.NOT:
		if t != c.prog.Boolean {
			c.errorf(e.P, "operand of ! must be boolean, have %s", t)
		}
		return set(e, c.prog.Boolean)
	case token.TILDE:
		if !t.IsIntegral() {
			c.errorf(e.P, "operand of ~ must be integral, have %s", t)
			return set(e, c.prog.Int)
		}
		return set(e, c.unaryPromote(t))
	}
	panic("sema: unhandled unary operator " + e.Op.String())
}

func (c *checker) checkBinary(e *ast.Binary) *Type {
	xt := c.checkExpr(e.X)
	yt := c.checkExpr(e.Y)
	switch e.Op {
	case token.ADD:
		if xt == c.prog.String || yt == c.prog.String {
			return set(e, c.prog.String)
		}
		fallthrough
	case token.SUB, token.MUL, token.QUO, token.REM:
		if !xt.IsNumeric() || !yt.IsNumeric() {
			c.errorf(e.P, "operands of %s must be numeric, have %s and %s", e.Op, xt, yt)
			return set(e, c.prog.Int)
		}
		return set(e, c.prog.Promote(xt, yt))
	case token.SHL, token.SHR:
		if !xt.IsIntegral() || !yt.IsIntegral() {
			c.errorf(e.P, "operands of %s must be integral, have %s and %s", e.Op, xt, yt)
			return set(e, c.prog.Int)
		}
		return set(e, c.unaryPromote(xt))
	case token.AND, token.OR, token.XOR:
		if xt == c.prog.Boolean && yt == c.prog.Boolean {
			return set(e, c.prog.Boolean)
		}
		if xt.IsIntegral() && yt.IsIntegral() {
			return set(e, c.prog.Promote(xt, yt))
		}
		c.errorf(e.P, "operands of %s must both be boolean or both integral, have %s and %s", e.Op, xt, yt)
		return set(e, c.prog.Int)
	case token.LAND, token.LOR:
		if xt != c.prog.Boolean || yt != c.prog.Boolean {
			c.errorf(e.P, "operands of %s must be boolean, have %s and %s", e.Op, xt, yt)
		}
		return set(e, c.prog.Boolean)
	case token.EQL, token.NEQ:
		switch {
		case xt.IsNumeric() && yt.IsNumeric():
		case xt == c.prog.Boolean && yt == c.prog.Boolean:
		case xt.IsRef() && yt.IsRef() &&
			(c.prog.Widens(xt, yt) || c.prog.Widens(yt, xt)):
		default:
			c.errorf(e.P, "incomparable operands %s and %s", xt, yt)
		}
		return set(e, c.prog.Boolean)
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		if !xt.IsNumeric() || !yt.IsNumeric() {
			c.errorf(e.P, "operands of %s must be numeric, have %s and %s", e.Op, xt, yt)
		}
		return set(e, c.prog.Boolean)
	}
	panic("sema: unhandled binary operator " + e.Op.String())
}

func (c *checker) checkAssign(e *ast.Assign) *Type {
	lt := c.checkExpr(e.LHS)
	c.checkLValue(e.LHS)
	rt := c.checkExpr(e.RHS)
	if e.Op == token.ASSIGN {
		if !c.prog.Widens(rt, lt) {
			c.errorf(e.P, "cannot assign %s to %s", rt, lt)
		}
		return set(e, lt)
	}
	op := e.Op.CompoundOp()
	switch op {
	case token.ADD:
		if lt == c.prog.String {
			return set(e, lt)
		}
		fallthrough
	case token.SUB, token.MUL, token.QUO, token.REM:
		if !lt.IsNumeric() || !rt.IsNumeric() {
			c.errorf(e.P, "operands of %s must be numeric, have %s and %s", e.Op, lt, rt)
		}
	case token.SHL, token.SHR:
		if !lt.IsIntegral() || !rt.IsIntegral() {
			c.errorf(e.P, "operands of %s must be integral, have %s and %s", e.Op, lt, rt)
		}
	case token.AND, token.OR, token.XOR:
		okBool := lt == c.prog.Boolean && rt == c.prog.Boolean
		okInt := lt.IsIntegral() && rt.IsIntegral()
		if !okBool && !okInt {
			c.errorf(e.P, "operands of %s must both be boolean or both integral, have %s and %s", e.Op, lt, rt)
		}
	}
	return set(e, lt)
}

func (c *checker) checkCast(e *ast.Cast) *Type {
	xt := c.checkExpr(e.X)
	tt := c.resolveType(e.Type)
	switch {
	case xt == tt:
	case xt.IsNumeric() && tt.IsNumeric():
	case xt.IsRef() && tt.IsRef() && tt.Kind != KindNull:
		if xt.Kind != KindNull && !c.prog.Widens(xt, tt) && !c.prog.Widens(tt, xt) {
			c.errorf(e.P, "impossible cast from %s to %s", xt, tt)
		}
	default:
		c.errorf(e.P, "invalid cast from %s to %s", xt, tt)
	}
	return set(e, tt)
}
