// Package sema implements the semantic analysis of TJ: class graph
// construction, name resolution, overload resolution, and type checking.
// Its output — the typed AST plus the Program symbol tables — is the
// "Unified Abstract Syntax Tree" that the SSA generator consumes.
package sema

import (
	"fmt"
	"sort"

	"safetsa/internal/lang/ast"
)

// TypeKind partitions the TJ type universe.
type TypeKind int

// The type kinds. KindNull is the type of the null literal, assignable to
// every reference type.
const (
	KindInt TypeKind = iota
	KindLong
	KindDouble
	KindBoolean
	KindChar
	KindVoid
	KindNull
	KindClass
	KindArray
)

// Type is a canonicalized TJ type: two types are identical iff their
// pointers are equal.
type Type struct {
	Kind  TypeKind
	Class *Class // for KindClass
	Elem  *Type  // for KindArray
	name  string
}

// String returns the Java-style spelling of the type.
func (t *Type) String() string {
	switch t.Kind {
	case KindClass:
		return t.Class.Name
	case KindArray:
		return t.Elem.String() + "[]"
	default:
		return t.name
	}
}

// IsNumeric reports whether t participates in arithmetic (int, long,
// double, char).
func (t *Type) IsNumeric() bool {
	switch t.Kind {
	case KindInt, KindLong, KindDouble, KindChar:
		return true
	}
	return false
}

// IsIntegral reports whether t is int, long, or char.
func (t *Type) IsIntegral() bool {
	switch t.Kind {
	case KindInt, KindLong, KindChar:
		return true
	}
	return false
}

// IsRef reports whether t is a reference type (class, array, or null).
func (t *Type) IsRef() bool {
	switch t.Kind {
	case KindClass, KindArray, KindNull:
		return true
	}
	return false
}

// Class describes a TJ class: a user class, or one of the imported host
// classes (Object, String, the exception hierarchy).
type Class struct {
	Name     string
	Super    *Class // nil only for Object
	Imported bool   // host-environment class; its type-table entries are implicit

	Fields  []*FieldSym  // declared fields, in declaration order
	Methods []*MethodSym // declared methods (not ctors)
	Ctors   []*MethodSym

	Decl *ast.ClassDecl // nil for imported classes

	// NumSlots is the total number of instance field slots including
	// inherited ones; field i of this class occupies slot
	// Super.NumSlots + i.
	NumSlots int
	// NumStatics is the number of static field slots declared by this
	// class (not inherited).
	NumStatics int
	// VTable is the full virtual dispatch table: inherited entries
	// first, overrides replacing the superclass entry in place.
	VTable []*MethodSym
	depth  int
	typ    *Type
}

// IsSubclassOf reports whether c is d or a (transitive) subclass of d.
func (c *Class) IsSubclassOf(d *Class) bool {
	for x := c; x != nil; x = x.Super {
		if x == d {
			return true
		}
	}
	return false
}

// LookupField finds the named instance or static field in c or its
// superclasses.
func (c *Class) LookupField(name string) *FieldSym {
	for x := c; x != nil; x = x.Super {
		for _, f := range x.Fields {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// MethodsNamed collects all methods with the given name along the
// superclass chain, nearest first, skipping overridden duplicates.
func (c *Class) MethodsNamed(name string) []*MethodSym {
	var out []*MethodSym
	for x := c; x != nil; x = x.Super {
		for _, m := range x.Methods {
			if m.Name != name {
				continue
			}
			overridden := false
			for _, seen := range out {
				if sameSignature(seen, m) {
					overridden = true
					break
				}
			}
			if !overridden {
				out = append(out, m)
			}
		}
	}
	return out
}

func sameSignature(a, b *MethodSym) bool {
	if a.Name != b.Name || len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return false
		}
	}
	return true
}

// FieldSym is a resolved field.
type FieldSym struct {
	Name   string
	Type   *Type
	Static bool
	Final  bool
	Owner  *Class
	// Slot is the instance slot index (including inherited slots), or
	// the index into the owner's static storage for static fields.
	Slot int
	Init ast.Expr // may be nil
}

// QName returns Owner.Name for diagnostics and symbol tables.
func (f *FieldSym) QName() string { return f.Owner.Name + "." + f.Name }

// BuiltinID identifies a natively-implemented imported method or
// primitive operation of the host environment.
type BuiltinID int

// The builtin operations. They cover the imported String and exception
// classes and the Math/System.out static library.
const (
	BNone BuiltinID = iota

	// String instance methods (receiver null-checked).
	BStrLength
	BStrCharAt
	BStrSubstring
	BStrEquals
	BStrCompareTo
	BStrIndexOf
	BStrHashCode

	// String-typed primitive operations (no null check; null renders
	// as "null", as in Java string conversion).
	BStrConcat
	BStrOfInt
	BStrOfLong
	BStrOfDouble
	BStrOfBool
	BStrOfChar

	// Object methods.
	BObjHashCode
	BObjEquals
	BObjToString

	// Exception methods.
	BExcGetMessage

	// Math statics.
	BMathSqrt
	BMathAbsD
	BMathAbsI
	BMathAbsL
	BMathMinI
	BMathMaxI
	BMathMinD
	BMathMaxD
	BMathMinL
	BMathMaxL
	BMathPow
	BMathFloor
	BMathCeil
	BMathLog
	BMathExp
	BMathSin
	BMathCos

	// System.out.
	BPrintlnString
	BPrintlnInt
	BPrintlnLong
	BPrintlnDouble
	BPrintlnBool
	BPrintlnChar
	BPrintlnEmpty
	BPrintString
	BPrintInt
	BPrintLong
	BPrintDouble
	BPrintBool
	BPrintChar
)

// MethodSym is a resolved method or constructor.
type MethodSym struct {
	Name    string
	Params  []*Type
	Return  *Type
	Static  bool
	IsCtor  bool
	Owner   *Class
	Decl    *ast.MethodDecl // nil for imported and synthetic methods
	Builtin BuiltinID       // non-zero for natively implemented methods
	// Synthetic marks the compiler-generated default constructor of a
	// user class; its body is a super() call plus field initializers.
	Synthetic bool

	// VSlot is the virtual dispatch table slot for instance methods
	// (methods with the same signature share a slot along the
	// hierarchy); -1 for statics and ctors.
	VSlot int
}

// QName returns Owner.Name + "." + Name for diagnostics.
func (m *MethodSym) QName() string { return m.Owner.Name + "." + m.Name }

// Sig renders the full signature for diagnostics.
func (m *MethodSym) Sig() string {
	s := m.QName() + "("
	for i, p := range m.Params {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	s += ")"
	if m.Return != nil {
		s += " " + m.Return.String()
	}
	return s
}

// Local is a local variable or parameter symbol; SSA construction keys its
// versioned values on the *Local pointer.
type Local struct {
	Name  string
	Type  *Type
	Param bool
	// Index is a stable per-method index, used for deterministic
	// iteration and for baseline local-slot assignment.
	Index int
}

// ClassRef marks an identifier that resolves to a class name (for static
// accesses such as Math.sqrt or A.counter).
type ClassRef struct{ Class *Class }

// Builtin marks a call that resolves to a native host operation.
type Builtin struct {
	ID     BuiltinID
	Name   string
	Params []*Type
	Return *Type
}

// Program is the result of semantic analysis over a set of files.
type Program struct {
	Classes map[string]*Class
	// Order lists user classes in a stable topological order
	// (superclasses first, then by name).
	Order []*Class

	// Universe types.
	Int, Long, Double, Boolean, Char, Void, Null *Type
	Object, String, Throwable                    *Type

	// Imported exception classes used by implicit checks.
	ClsObject, ClsString, ClsThrowable                 *Class
	ClsException, ClsNPE, ClsArith, ClsBounds, ClsCast *Class
	ClsNegArraySize                                    *Class

	// MethodInfo carries per-method local-variable information for the
	// back ends.
	MethodInfo map[*MethodSym]*MethodInfo
	// DeclLocal maps each local declaration to its symbol.
	DeclLocal map[*ast.VarDeclStmt]*Local
	// CatchLocal maps each catch clause to the symbol of its exception
	// variable.
	CatchLocal map[*ast.CatchClause]*Local
	// ImplicitSuper maps constructors that do not begin with an
	// explicit super(...) call to the resolved no-arg superclass
	// constructor.
	ImplicitSuper map[*MethodSym]*MethodSym
	// InstanceOfType maps each instanceof expression to its resolved
	// tested type.
	InstanceOfType map[*ast.InstanceOf]*Type

	arrays map[*Type]*Type
}

// MethodInfo lists the locals of one method body.
type MethodInfo struct {
	Params []*Local
	Locals []*Local // all locals including params, in creation order
}

// ArrayOf returns the canonical array type with the given element type.
func (p *Program) ArrayOf(elem *Type) *Type {
	if t, ok := p.arrays[elem]; ok {
		return t
	}
	t := &Type{Kind: KindArray, Elem: elem}
	p.arrays[elem] = t
	return t
}

// ClassType returns the canonical type of a class.
func (p *Program) ClassType(c *Class) *Type {
	if c.typ == nil {
		c.typ = &Type{Kind: KindClass, Class: c}
	}
	return c.typ
}

// UserClasses returns the non-imported classes in Program.Order.
func (p *Program) UserClasses() []*Class {
	var out []*Class
	for _, c := range p.Order {
		if !c.Imported {
			out = append(out, c)
		}
	}
	return out
}

// SortedClassNames returns all class names sorted, for deterministic
// iteration in encoders and reports.
func (p *Program) SortedClassNames() []string {
	names := make([]string, 0, len(p.Classes))
	for n := range p.Classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Widens reports whether a value of type 'from' widens implicitly to
// 'to' (numeric widening, null→ref, subclass→superclass, identity).
func (p *Program) Widens(from, to *Type) bool {
	if from == to {
		return true
	}
	switch {
	case from.Kind == KindNull && to.IsRef() && to.Kind != KindNull:
		return true
	case from.Kind == KindChar && (to.Kind == KindInt || to.Kind == KindLong || to.Kind == KindDouble):
		return true
	case from.Kind == KindInt && (to.Kind == KindLong || to.Kind == KindDouble):
		return true
	case from.Kind == KindLong && to.Kind == KindDouble:
		return true
	case from.Kind == KindClass && to.Kind == KindClass:
		return from.Class.IsSubclassOf(to.Class)
	case from.Kind == KindArray && to.Kind == KindClass:
		return to.Class == p.ClsObject
	}
	return false
}

// Promote computes the binary numeric promotion of two numeric types.
func (p *Program) Promote(a, b *Type) *Type {
	if a.Kind == KindDouble || b.Kind == KindDouble {
		return p.Double
	}
	if a.Kind == KindLong || b.Kind == KindLong {
		return p.Long
	}
	return p.Int
}

// Error is a semantic error with position information.
type Error struct {
	Pos interface{ String() string }
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }
