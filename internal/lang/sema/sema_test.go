package sema_test

import (
	"strings"
	"testing"

	"safetsa/internal/lang/parser"
	"safetsa/internal/lang/sema"
)

func check(t *testing.T, src string) (*sema.Program, []error) {
	t.Helper()
	f, perrs := parser.ParseFile("t.tj", src)
	if len(perrs) > 0 {
		t.Fatalf("parse errors: %v", perrs)
	}
	return sema.Check(f)
}

func checkOK(t *testing.T, src string) *sema.Program {
	t.Helper()
	p, errs := check(t, src)
	if len(errs) > 0 {
		t.Fatalf("unexpected sema errors: %v", errs)
	}
	return p
}

func expectError(t *testing.T, src, fragment string) {
	t.Helper()
	_, errs := check(t, src)
	for _, e := range errs {
		if strings.Contains(e.Error(), fragment) {
			return
		}
	}
	t.Fatalf("expected error containing %q, got %v", fragment, errs)
}

func TestHierarchy(t *testing.T) {
	p := checkOK(t, `
class A { int x; }
class B extends A { int y; }
class C extends B {}
`)
	a, b, c := p.Classes["A"], p.Classes["B"], p.Classes["C"]
	if !c.IsSubclassOf(a) || a.IsSubclassOf(b) {
		t.Error("subclass relation wrong")
	}
	if b.NumSlots != 2 || c.NumSlots != 2 {
		t.Errorf("slot layout: B=%d C=%d", b.NumSlots, c.NumSlots)
	}
	if f := c.LookupField("x"); f == nil || f.Owner != a || f.Slot != 0 {
		t.Error("inherited field lookup failed")
	}
}

func TestHierarchyErrors(t *testing.T) {
	expectError(t, "class A extends A {}", "cycle")
	expectError(t, "class A extends B {} class B extends A {}", "cycle")
	expectError(t, "class A extends Nowhere {}", "unknown class")
	expectError(t, "class A {} class A {}", "redeclared")
	expectError(t, "class String {}", "imported host class")
	expectError(t, "class A extends String {}", "may not extend String")
}

func TestVTableSlots(t *testing.T) {
	p := checkOK(t, `
class A { int f() { return 1; } int g() { return 2; } }
class B extends A { int g() { return 3; } int h() { return 4; } }
`)
	a, b := p.Classes["A"], p.Classes["B"]
	// Object contributes hashCode/equals/toString first.
	base := len(p.Classes["Object"].VTable)
	if len(a.VTable) != base+2 || len(b.VTable) != base+3 {
		t.Fatalf("vtable sizes %d %d (base %d)", len(a.VTable), len(b.VTable), base)
	}
	var ag, bg *sema.MethodSym
	for _, m := range a.Methods {
		if m.Name == "g" {
			ag = m
		}
	}
	for _, m := range b.Methods {
		if m.Name == "g" {
			bg = m
		}
	}
	if ag.VSlot != bg.VSlot {
		t.Error("override does not share the dispatch slot")
	}
	if b.VTable[bg.VSlot] != bg {
		t.Error("subclass vtable does not hold the override")
	}
}

func TestOverloadResolution(t *testing.T) {
	checkOK(t, `
class A {
    int f(int x) { return 1; }
    int f(double x) { return 2; }
    int f(long x) { return 3; }
    void go() {
        f(1);        // exact int
        f(1.5);      // exact double
        f('c');      // widens to int (most specific)
        f(2L);       // exact long
    }
}`)
	expectError(t, `
class A {
    int f(int x, long y) { return 1; }
    int f(long x, int y) { return 2; }
    void go() { f('a', 'b'); }
}`, "ambiguous")
	expectError(t, `
class A { void f(int x) {} void go() { f("s"); } }`, "no applicable overload")
}

func TestTypingErrors(t *testing.T) {
	expectError(t, `class A { void m() { int x = true; } }`, "cannot initialize")
	expectError(t, `class A { void m() { boolean b = 1; } }`, "cannot initialize")
	expectError(t, `class A { void m() { if (1) {} } }`, "condition must be boolean")
	expectError(t, `class A { void m() { while ("s") {} } }`, "condition must be boolean")
	expectError(t, `class A { int m() { return; } }`, "missing return value")
	expectError(t, `class A { void m() { return 1; } }`, "void method returns a value")
	expectError(t, `class A { void m() { break; } }`, "break outside a loop")
	expectError(t, `class A { void m() { continue; } }`, "continue outside a loop")
	expectError(t, `class A { void m() { throw new Object(); } }`, "cannot instantiate")
	expectError(t, `class B {} class A { void m() { throw new B(); } }`, "must be a Throwable")
	expectError(t, `class A { void m() { try {} catch (A e) {} } }`, "catch type must be a Throwable")
	expectError(t, `class A { void m() { int x = y; } }`, "undefined name")
	expectError(t, `class A { void m() { int x = 1; int x = 2; } }`, "redeclared")
	expectError(t, `class A { void m(int p, int p) {} }`, "redeclared")
	expectError(t, `class A { void m() { int x = "s".length() + true; } }`, "must be numeric")
	expectError(t, `class A { void m() { boolean b = 1 < true; } }`, "must be numeric")
	expectError(t, `class A { void m() { int[] a = new int[3]; double d = a[1.5]; } }`, "index must be int")
	expectError(t, `class A { void m() { int x = 3; int y = x.f; } }`, "has no fields")
	expectError(t, `class A { void m() { int x = 3; x.f(); } }`, "has no methods")
	expectError(t, `class A { int f; void m() { f(); } }`, "no applicable overload")
	expectError(t, `class A { static void m() { int x = this.hashCode(); } }`, "this used in a static context")
	expectError(t, `class A { int f; static void m() { int x = f; } }`, "static context")
	expectError(t, `class A { void f() {} static void m() { f(); } }`, "static context")
	expectError(t, `class B { static int s; } class A { void m() { B b = new B(); int x = b.s; } }`, "accessed through an instance")
	expectError(t, `class A { void m() { Object o = (Object) 1; } }`, "invalid cast")
	expectError(t, `class B {} class C {} class A { void m() { B b = new B(); C c = (C) b; } }`, "impossible cast")
	expectError(t, `class A { void m() { int x = 1 instanceof A ? 1 : 2; } }`, "reference operand")
	expectError(t, `class A { void m() { long l = 1L; int i = l; } }`, "cannot initialize")
	expectError(t, `class A { void m() { double d = 1.0; long l = d; } }`, "cannot initialize")
	expectError(t, `class A { A() { int x = 1; super(); } }`, "first statement")
}

func TestCtorRules(t *testing.T) {
	checkOK(t, `
class A { A(int x) {} A() {} }
class B extends A { B() { super(3); } }
class C extends A {}
`)
	expectError(t, `
class A { A(int x) {} }
class B extends A {}
`, "no no-argument constructor")
	p := checkOK(t, `class D {}`)
	d := p.Classes["D"]
	if len(d.Ctors) != 1 || !d.Ctors[0].Synthetic {
		t.Error("default constructor not synthesized")
	}
}

func TestWideningMatrix(t *testing.T) {
	p := checkOK(t, `class A {} class B extends A {}`)
	a := p.ClassType(p.Classes["A"])
	b := p.ClassType(p.Classes["B"])
	cases := []struct {
		from, to *sema.Type
		want     bool
	}{
		{p.Int, p.Long, true},
		{p.Int, p.Double, true},
		{p.Long, p.Double, true},
		{p.Char, p.Int, true},
		{p.Char, p.Double, true},
		{p.Long, p.Int, false},
		{p.Double, p.Long, false},
		{p.Int, p.Char, false},
		{p.Boolean, p.Int, false},
		{b, a, true},
		{a, b, false},
		{p.Null, a, true},
		{p.Null, p.Int, false},
		{p.ArrayOf(p.Int), p.Object, true},
		{p.ArrayOf(p.Int), p.ArrayOf(p.Long), false},
	}
	for _, c := range cases {
		if got := p.Widens(c.from, c.to); got != c.want {
			t.Errorf("Widens(%s, %s) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
	if p.Promote(p.Int, p.Long) != p.Long || p.Promote(p.Char, p.Char) != p.Int ||
		p.Promote(p.Long, p.Double) != p.Double {
		t.Error("binary numeric promotion wrong")
	}
}

func TestArrayTypesCanonical(t *testing.T) {
	p := checkOK(t, `class A {}`)
	if p.ArrayOf(p.Int) != p.ArrayOf(p.Int) {
		t.Error("array types not canonicalized")
	}
	if p.ArrayOf(p.ArrayOf(p.Int)).Elem != p.ArrayOf(p.Int) {
		t.Error("nested array element wrong")
	}
	if p.ArrayOf(p.Int).String() != "int[]" {
		t.Errorf("spelling %q", p.ArrayOf(p.Int).String())
	}
}

func TestStringAndBuiltinResolution(t *testing.T) {
	checkOK(t, `
class A {
    void m() {
        String s = "x";
        int n = s.length();
        char c = s.charAt(0);
        String t = s.substring(0, 1);
        boolean e = s.equals("x");
        double d = Math.sqrt(2.0);
        int k = Math.abs(-3);
        double mx = Math.max(1.0, 2.0);
        System.out.println(s);
        System.out.println(n);
        System.out.println(d);
        System.out.println();
        System.out.print('c');
    }
}`)
	expectError(t, `class A { void m() { Math.frobnicate(1.0); } }`, "has no function")
	expectError(t, `class A { void m() { System.out.flush(); } }`, "has no method")
	expectError(t, `class A { void m() { Object o = System.out; } }`, "call receiver")
}

func TestShadowingRules(t *testing.T) {
	// Locals shadow fields; a local named Math suppresses the builtin.
	checkOK(t, `
class A {
    int x;
    void m() {
        int x = 1;
        x = x + 1;
        this.x = x;
    }
}`)
	expectError(t, `
class A { void m() { int Math = 3; Math.sqrt(4.0); } }`, "has no methods")
}

func TestMethodInfoRecorded(t *testing.T) {
	p := checkOK(t, `
class A {
    int add(int a, int b) { int c = a + b; return c; }
}`)
	var m *sema.MethodSym
	for _, cand := range p.Classes["A"].Methods {
		if cand.Name == "add" {
			m = cand
		}
	}
	info := p.MethodInfo[m]
	if info == nil || len(info.Params) != 2 || len(info.Locals) != 3 {
		t.Fatalf("method info: %+v", info)
	}
	if !info.Params[0].Param || info.Locals[2].Param {
		t.Error("param flags wrong")
	}
}
