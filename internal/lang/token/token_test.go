package token

import "testing"

func TestLookup(t *testing.T) {
	if Lookup("while") != WHILE || Lookup("class") != CLASS || Lookup("instanceof") != INSTANCEOF {
		t.Error("keyword lookup broken")
	}
	if Lookup("whilst") != IDENT || Lookup("") != IDENT {
		t.Error("non-keywords must map to IDENT")
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// Tighter operators bind higher.
	ordered := [][]Kind{
		{LOR}, {LAND}, {OR}, {XOR}, {AND},
		{EQL, NEQ}, {LSS, LEQ, GTR, GEQ, INSTANCEOF},
		{SHL, SHR}, {ADD, SUB}, {MUL, QUO, REM},
	}
	for level, ks := range ordered {
		for _, k := range ks {
			if k.Precedence() != level+1 {
				t.Errorf("%v precedence = %d, want %d", k, k.Precedence(), level+1)
			}
		}
	}
	if SEMI.Precedence() != 0 || NOT.Precedence() != 0 {
		t.Error("non-binary tokens must have precedence 0")
	}
}

func TestAssignOps(t *testing.T) {
	compound := map[Kind]Kind{
		ADDASSIGN: ADD, SUBASSIGN: SUB, MULASSIGN: MUL, QUOASSIGN: QUO,
		REMASSIGN: REM, ANDASSIGN: AND, ORASSIGN: OR, XORASSIGN: XOR,
		SHLASSIGN: SHL, SHRASSIGN: SHR,
	}
	for k, want := range compound {
		if !k.IsAssignOp() {
			t.Errorf("%v not recognized as assignment", k)
		}
		if k.CompoundOp() != want {
			t.Errorf("%v compound op = %v, want %v", k, k.CompoundOp(), want)
		}
	}
	if !ASSIGN.IsAssignOp() || ADD.IsAssignOp() {
		t.Error("IsAssignOp boundaries wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("CompoundOp on plain ASSIGN must panic")
		}
	}()
	ASSIGN.CompoundOp()
}

func TestStringForms(t *testing.T) {
	if ADD.String() != "+" || WHILE.String() != "while" || IDENT.String() != "IDENT" {
		t.Error("token spellings wrong")
	}
	tok := Token{Kind: INTLIT, Lit: "42"}
	if tok.String() != `INTLIT("42")` {
		t.Errorf("token string %q", tok.String())
	}
	if !WHILE.IsKeyword() || ADD.IsKeyword() {
		t.Error("IsKeyword wrong")
	}
	var p Pos
	if p.IsValid() {
		t.Error("zero position must be invalid")
	}
	if p.String() != "<input>:0:0" {
		t.Errorf("zero pos renders %q", p.String())
	}
}
