// Package token defines the lexical tokens of TJ, the Java subset that
// serves as the source language for the SafeTSA pipeline, together with
// source positions and operator precedence tables.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// The token kinds. Literal kinds carry their text in Token.Lit.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT     // foo
	INTLIT    // 123
	LONGLIT   // 123L
	DOUBLELIT // 1.25
	CHARLIT   // 'c'
	STRINGLIT // "abc"

	// Operators and delimiters.
	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	AND // &
	OR  // |
	XOR // ^
	SHL // <<
	SHR // >>

	LAND // &&
	LOR  // ||
	NOT  // !
	TILDE

	ASSIGN    // =
	ADDASSIGN // +=
	SUBASSIGN // -=
	MULASSIGN // *=
	QUOASSIGN // /=
	REMASSIGN // %=
	ANDASSIGN // &=
	ORASSIGN  // |=
	XORASSIGN // ^=
	SHLASSIGN // <<=
	SHRASSIGN // >>=
	INC       // ++
	DEC       // --

	EQL // ==
	NEQ // !=
	LSS // <
	LEQ // <=
	GTR // >
	GEQ // >=

	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACK   // [
	RBRACK   // ]
	COMMA    // ,
	SEMI     // ;
	DOT      // .
	QUESTION // ?
	COLON    // :

	// Keywords.
	keywordBeg
	CLASS
	EXTENDS
	STATIC
	FINAL
	PUBLIC
	PRIVATE
	PROTECTED
	VOID
	INT
	LONG
	DOUBLE
	BOOLEAN
	CHAR
	IF
	ELSE
	WHILE
	FOR
	DO
	BREAK
	CONTINUE
	RETURN
	NEW
	THIS
	SUPER
	NULL
	TRUE
	FALSE
	INSTANCEOF
	TRY
	CATCH
	FINALLY
	THROW
	THROWS
	keywordEnd
)

var names = map[Kind]string{
	ILLEGAL:   "ILLEGAL",
	EOF:       "EOF",
	IDENT:     "IDENT",
	INTLIT:    "INTLIT",
	LONGLIT:   "LONGLIT",
	DOUBLELIT: "DOUBLELIT",
	CHARLIT:   "CHARLIT",
	STRINGLIT: "STRINGLIT",

	ADD: "+", SUB: "-", MUL: "*", QUO: "/", REM: "%",
	AND: "&", OR: "|", XOR: "^", SHL: "<<", SHR: ">>",
	LAND: "&&", LOR: "||", NOT: "!", TILDE: "~",
	ASSIGN: "=", ADDASSIGN: "+=", SUBASSIGN: "-=", MULASSIGN: "*=",
	QUOASSIGN: "/=", REMASSIGN: "%=", ANDASSIGN: "&=", ORASSIGN: "|=",
	XORASSIGN: "^=", SHLASSIGN: "<<=", SHRASSIGN: ">>=",
	INC: "++", DEC: "--",
	EQL: "==", NEQ: "!=", LSS: "<", LEQ: "<=", GTR: ">", GEQ: ">=",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACK: "[", RBRACK: "]", COMMA: ",", SEMI: ";", DOT: ".",
	QUESTION: "?", COLON: ":",

	CLASS: "class", EXTENDS: "extends", STATIC: "static", FINAL: "final",
	PUBLIC: "public", PRIVATE: "private", PROTECTED: "protected",
	VOID: "void", INT: "int", LONG: "long", DOUBLE: "double",
	BOOLEAN: "boolean", CHAR: "char",
	IF: "if", ELSE: "else", WHILE: "while", FOR: "for", DO: "do",
	BREAK: "break", CONTINUE: "continue", RETURN: "return",
	NEW: "new", THIS: "this", SUPER: "super", NULL: "null",
	TRUE: "true", FALSE: "false", INSTANCEOF: "instanceof",
	TRY: "try", CATCH: "catch", FINALLY: "finally",
	THROW: "throw", THROWS: "throws",
}

// String returns the textual representation of the token kind: the
// operator spelling for operators, the keyword for keywords, and the kind
// name for literal classes.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[names[k]] = k
	}
	return m
}()

// Lookup maps an identifier to its keyword kind, or IDENT if it is not a
// keyword.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// IsKeyword reports whether k is a reserved word of TJ.
func (k Kind) IsKeyword() bool { return keywordBeg < k && k < keywordEnd }

// IsAssignOp reports whether k is a (possibly compound) assignment
// operator.
func (k Kind) IsAssignOp() bool { return k >= ASSIGN && k <= SHRASSIGN }

// CompoundOp returns the underlying binary operator of a compound
// assignment operator (e.g. ADD for ADDASSIGN). It panics when k is not a
// compound assignment operator.
func (k Kind) CompoundOp() Kind {
	switch k {
	case ADDASSIGN:
		return ADD
	case SUBASSIGN:
		return SUB
	case MULASSIGN:
		return MUL
	case QUOASSIGN:
		return QUO
	case REMASSIGN:
		return REM
	case ANDASSIGN:
		return AND
	case ORASSIGN:
		return OR
	case XORASSIGN:
		return XOR
	case SHLASSIGN:
		return SHL
	case SHRASSIGN:
		return SHR
	}
	panic("token: not a compound assignment operator: " + k.String())
}

// Precedence returns the binary operator precedence of k, higher binds
// tighter; 0 means k is not a binary operator. instanceof binds at the
// relational level, as in Java.
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case OR:
		return 3
	case XOR:
		return 4
	case AND:
		return 5
	case EQL, NEQ:
		return 6
	case LSS, LEQ, GTR, GEQ, INSTANCEOF:
		return 7
	case SHL, SHR:
		return 8
	case ADD, SUB:
		return 9
	case MUL, QUO, REM:
		return 10
	}
	return 0
}

// Pos is a source position: 1-based line and column plus the file name.
type Pos struct {
	File string
	Line int
	Col  int
}

// String renders the position as file:line:col.
func (p Pos) String() string {
	f := p.File
	if f == "" {
		f = "<input>"
	}
	return fmt.Sprintf("%s:%d:%d", f, p.Line, p.Col)
}

// IsValid reports whether the position carries real line information.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token with its position and, for literal
// kinds, its source text.
type Token struct {
	Kind Kind
	Lit  string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, LONGLIT, DOUBLELIT, CHARLIT, STRINGLIT:
		return fmt.Sprintf("%s(%q)", names[t.Kind], t.Lit)
	}
	return t.Kind.String()
}
