package opt

import (
	"safetsa/internal/core"
)

// dce performs liveness-based dead-code elimination in the style of
// Briggs et al. [7 in the paper]: roots are the instructions with
// observable effects (stores, calls, potentially-throwing operations —
// whose exceptions are part of the program's semantics) plus the values
// referenced by the Control Structure Tree; everything else, notably the
// pessimistically placed phi instructions, is swept when unmarked. The
// paper reports this removing 31% of phi instructions on average.
func dce(m *core.Module, f *core.Func) int {
	live := make(map[core.ValueID]bool)
	var work []core.ValueID

	markVal := func(v core.ValueID) {
		if v != core.NoValue && !live[v] {
			live[v] = true
			work = append(work, v)
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Code {
			if in.Op.HasSideEffect() || in.Op == core.OpCatch || in.Op == core.OpParam {
				markVal(in.ID)
				for _, a := range in.Args {
					markVal(a)
				}
				if in.Bind != core.NoValue {
					markVal(in.Bind)
				}
			}
		}
	}
	var walkCST func(n *core.CSTNode)
	walkCST = func(n *core.CSTNode) {
		if n == nil {
			return
		}
		markVal(n.Cond)
		markVal(n.Val)
		for _, k := range n.Kids {
			walkCST(k)
		}
	}
	walkCST(f.Body)

	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		in := f.Value(v)
		if in == nil {
			continue
		}
		for _, a := range in.Args {
			markVal(a)
		}
		if in.Bind != core.NoValue {
			markVal(in.Bind)
		}
	}

	removed := 0
	for _, b := range f.Blocks {
		keepPhis := b.Phis[:0]
		for _, phi := range b.Phis {
			if live[phi.ID] {
				keepPhis = append(keepPhis, phi)
			} else {
				removed++
			}
		}
		b.Phis = keepPhis
		keep := b.Code[:0]
		for _, in := range b.Code {
			if in.Op.HasSideEffect() || in.Op == core.OpCatch || in.Op == core.OpParam ||
				!in.HasResult() || live[in.ID] {
				keep = append(keep, in)
			} else {
				removed++
			}
		}
		b.Code = keep
	}
	_ = m
	return removed
}
