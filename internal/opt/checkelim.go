package opt

import (
	"safetsa/internal/core"
)

// Flow-based check elimination, beyond what dominator-scoped CSE
// removes. Two mechanisms:
//
//  1. Witness-phi merging. A nullcheck/indexcheck whose equivalent has
//     already executed on *every* incoming edge of its block is replaced
//     by a phi of the per-edge witness values — CSE only reuses a check
//     from a dominator, so a check re-established independently on both
//     arms of a diamond, or in a loop preheader plus each iteration,
//     stays invisible to it. A witness for an edge is an equivalent
//     check positioned before the edge's source point (before the
//     throwing site for exception edges) in the source block, or
//     anywhere in one of its strict dominators; the eliminated check
//     itself is a legal witness on back edges (the block dominates the
//     edge source), in which case the synthesized phi refers to itself
//     for that operand — exactly the paper's loop-carried safe value.
//     Only a check (or a phi of checks) can populate a safe plane, so
//     elimination always synthesizes the phi witness rather than
//     forging a plane transition the verifier would reject.
//
//  2. Exception-edge pruning with range reasoning. A check that provably
//     cannot throw — an indexcheck of a constant index into an array
//     allocated with a larger constant length, a newarray with a
//     non-negative constant length, a division by a non-zero constant,
//     or a nullcheck of a value that came off a safe plane — keeps its
//     instruction (it is the plane witness the consumer re-verifies) but
//     loses its exception edge, shrinking every handler phi and the
//     encoded edge set.
//
// Soundness of the dominator-scan witness leans on the structural
// dominator tree being conservative around try regions: a block after a
// try join is *not* dominated by try-body blocks (its immediate
// dominator is the pre-try block), so a witness that might have been
// skipped by an exception transfer is never found. See DESIGN.md §10.
func checkElimPass() Pass {
	return Pass{Name: "checkelim", Run: func(m *core.Module, f *core.Func, o Options, st *Stats) {
		st.ExcEdgesPruned += pruneExcEdges(m, f)
		st.ChecksElided += mergeCheckWitnesses(f)
	}}
}

// checkKey identifies equivalent checks: same opcode, same resolved
// operands, same result plane type.
type checkKey struct {
	op     core.Op
	a0, a1 core.ValueID
	t      core.TypeID
}

func keyOf(in *core.Instr, resolve func(core.ValueID) core.ValueID) (checkKey, bool) {
	switch in.Op {
	case core.OpNullCheck:
		return checkKey{op: in.Op, a0: resolve(in.Args[0]), t: in.Type}, true
	case core.OpIndexCheck:
		return checkKey{op: in.Op, a0: resolve(in.Args[0]), a1: resolve(in.Args[1]), t: in.Type}, true
	}
	return checkKey{}, false
}

func mergeCheckWitnesses(f *core.Func) int {
	n := 0
	repl := make(map[core.ValueID]core.ValueID)
	resolve := func(v core.ValueID) core.ValueID {
		for {
			r, ok := repl[v]
			if !ok {
				return v
			}
			v = r
		}
	}
	// made records witness phis synthesized per block, so later blocks
	// can use them as witnesses too.
	made := make(map[checkKey]map[*core.Block]core.ValueID)

	// scanBlock finds an equivalent live check among the first limit
	// code instructions of blk (or its synthesized phis), excluding
	// skip, and returns its current value.
	scanBlock := func(blk *core.Block, limit int, key checkKey, skip *core.Instr) core.ValueID {
		if limit > len(blk.Code) {
			limit = len(blk.Code)
		}
		for i := limit - 1; i >= 0; i-- {
			cand := blk.Code[i]
			if cand == skip || cand.Op != key.op {
				continue
			}
			if k2, ok := keyOf(cand, resolve); ok && k2 == key {
				return resolve(cand.ID)
			}
		}
		if m := made[key]; m != nil {
			if w, ok := m[blk]; ok {
				return w
			}
		}
		return core.NoValue
	}

	// witnessOnEdge finds the witness available along one incoming edge:
	// in the source block before the edge's departure point, or in any
	// strict dominator of the source block.
	witnessOnEdge := func(e core.Pred, key checkKey, c *core.Instr, sitePos map[*core.Instr]int) core.ValueID {
		limit := len(e.From.Code)
		if e.Site != nil {
			if p, ok := sitePos[e.Site]; ok {
				limit = p
			} else {
				return core.NoValue
			}
		}
		if w := scanBlock(e.From, limit, key, c); w != core.NoValue {
			return w
		}
		for d := e.From.IDom; d != nil; d = d.IDom {
			if w := scanBlock(d, len(d.Code), key, c); w != core.NoValue {
				return w
			}
		}
		return core.NoValue
	}

	// Exception-edge sources are identified by instruction; index their
	// code positions once per source block on demand.
	posCache := make(map[*core.Block]map[*core.Instr]int)
	positions := func(b *core.Block) map[*core.Instr]int {
		if p, ok := posCache[b]; ok {
			return p
		}
		p := make(map[*core.Instr]int, len(b.Code))
		for i, in := range b.Code {
			p[in] = i
		}
		posCache[b] = p
		return p
	}

	// Blocks are in dominator pre-order, so witnesses synthesized in a
	// dominator are visible in made before dominated blocks scan.
	for _, b := range f.Blocks {
		if len(b.Preds) == 0 {
			continue
		}
		removed := false
		var kept []*core.Instr
		for _, c := range b.Code {
			key, isCheck := keyOf(c, resolve)
			if !isCheck {
				kept = append(kept, c)
				continue
			}
			// Bind of an eventual witness phi must be available at the
			// phi position (before all code), so for indexchecks the
			// array value must come from a strict dominator.
			bind := core.NoValue
			if c.Op == core.OpIndexCheck {
				bind = key.a0
				db := f.DefBlock(bind)
				if db == nil || db == b || !db.Dominates(b) {
					kept = append(kept, c)
					continue
				}
			}
			witnesses := make([]core.ValueID, len(b.Preds))
			ok := true
			for i, e := range b.Preds {
				var w core.ValueID
				if e.From != b {
					w = witnessOnEdge(e, key, c, positions(e.From))
				}
				if w == core.NoValue && b.Dominates(e.From) {
					// Back edge: the check itself ran on every path
					// around the loop; the phi will self-reference.
					w = c.ID
				}
				if w == core.NoValue {
					ok = false
					break
				}
				witnesses[i] = w
			}
			if !ok {
				kept = append(kept, c)
				continue
			}
			// Removing the check must also remove its exception edge;
			// if that would leave a handler's phis with no predecessors,
			// leave the check alone.
			if h := f.HandlerOf[c]; h != nil && len(h.Preds) == 1 && len(h.Phis) > 0 {
				kept = append(kept, c)
				continue
			}
			allSame := true
			for _, w := range witnesses {
				if w != witnesses[0] {
					allSame = false
				}
			}
			if db := f.DefBlock(witnesses[0]); allSame && witnesses[0] != c.ID && db != nil && db != b && db.Dominates(b) {
				repl[c.ID] = witnesses[0]
			} else {
				phi := &core.Instr{Op: core.OpPhi, Type: c.Type, Bind: bind, Blk: b}
				f.Define(phi)
				phi.Args = make([]core.ValueID, len(witnesses))
				for i, w := range witnesses {
					if w == c.ID {
						w = phi.ID
					}
					phi.Args[i] = w
				}
				b.Phis = append(b.Phis, phi)
				if made[key] == nil {
					made[key] = make(map[*core.Block]core.ValueID)
				}
				made[key][b] = phi.ID
				repl[c.ID] = phi.ID
			}
			f.RemoveExcSite(c)
			delete(posCache, b)
			removed = true
			n++
		}
		if removed {
			b.Code = kept
		}
	}
	replaceUses(f, repl)
	return n
}

// pruneExcEdges removes the exception edge of every try-covered site
// that provably cannot throw. The instruction itself always stays: it is
// the verifier-checked witness that puts its result on the safe plane.
// Sites are visited in program order so the module that comes out is
// deterministic even when a handler's last-predecessor guard stops the
// pruning partway.
func pruneExcEdges(m *core.Module, f *core.Func) int {
	var sites []*core.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Code {
			if _, ok := f.ExcEdge[in]; ok {
				sites = append(sites, in)
			}
		}
	}
	n := 0
	for _, site := range sites {
		if !provablyNonThrowing(m, f, site) {
			continue
		}
		if h := f.HandlerOf[site]; h != nil && len(h.Preds) == 1 && len(h.Phis) > 0 {
			continue
		}
		f.RemoveExcSite(site)
		n++
	}
	return n
}

func provablyNonThrowing(m *core.Module, f *core.Func, in *core.Instr) bool {
	constOf := func(v core.ValueID) *core.ConstVal {
		d := f.Value(v)
		if d == nil || d.Op != core.OpConst {
			return nil
		}
		return &d.Const
	}
	switch in.Op {
	case core.OpNewArray:
		c := constOf(in.Args[0])
		return c != nil && c.Kind == core.KInt && c.I >= 0
	case core.OpXPrim:
		switch in.Prim {
		case core.PIDiv, core.PIRem, core.PLDiv, core.PLRem:
			c := constOf(in.Args[1])
			return c != nil && (c.Kind == core.KInt || c.Kind == core.KLong) && c.I != 0
		}
		return false
	case core.OpIndexCheck:
		idx := constOf(in.Args[1])
		if idx == nil || idx.Kind != core.KInt || idx.I < 0 {
			return false
		}
		arr := f.Value(in.Args[0])
		if arr == nil || arr.Op != core.OpNewArray {
			return false
		}
		length := constOf(arr.Args[0])
		return length != nil && length.Kind == core.KInt && idx.I < length.I
	case core.OpNullCheck:
		// A value moved off a safe plane by a downcast is non-null.
		d := f.Value(in.Args[0])
		if d == nil || d.Op != core.OpDowncast {
			return false
		}
		src := m.Types.Get(d.ArgType)
		return src != nil && src.Kind == core.TSafeRef
	}
	return false
}
