package opt_test

import (
	"strings"
	"testing"

	"safetsa/internal/core"
	"safetsa/internal/driver"
	"safetsa/internal/opt"
	"safetsa/internal/oracle"
)

// moduleOptimized compiles src and runs the interprocedural pipeline
// with the consumer verifier re-checked after every pass.
func moduleOptimized(t *testing.T, src string) (*core.Module, opt.Stats) {
	t.Helper()
	mod := compiled(t, src)
	st, err := opt.RunPasses(mod, opt.Options{ModuleLevel: true}, opt.ModulePipeline(),
		func(pass string) error {
			if err := mod.Verify(core.VerifyOptions{}); err != nil {
				t.Fatalf("verifier rejects module after pass %s: %v", pass, err)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return mod, st
}

// runBoth checks that the module-optimized form of src prints the same
// output and fails the same way as the unoptimized form, then returns
// the optimized module and its stats.
func runBoth(t *testing.T, src string) (*core.Module, opt.Stats) {
	t.Helper()
	errStr := func(e error) string {
		if e == nil {
			return ""
		}
		return e.Error()
	}
	base := compiled(t, src)
	want, werr := driver.RunModule(base, 1<<20)
	mod, st := moduleOptimized(t, src)
	got, gerr := driver.RunModule(mod, 1<<20)
	if got != want {
		t.Errorf("output diverged under module optimization\nwant %q\ngot  %q", want, got)
	}
	if errStr(werr) != errStr(gerr) {
		t.Errorf("error diverged under module optimization: %q vs %q", errStr(werr), errStr(gerr))
	}
	return mod, st
}

// TestDevirtualization pins the CHA/RTA devirtualizer case by case:
// which dispatch shapes become direct calls, and which are deliberately
// left virtual.
func TestDevirtualization(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// wantDevirt is the minimum number of rewritten sites; -1
		// demands exactly zero (the site must stay virtual).
		wantDevirt int
	}{
		{
			// One class, one implementation: CHA alone proves the
			// site monomorphic.
			name: "monomorphic-single-class",
			src: `
class A { int m() { return 7; } }
class Main { static void main() {
    A a = new A();
    System.out.println(a.m());
} }`,
			wantDevirt: 1,
		},
		{
			// The subclass overrides nothing, so every candidate
			// receiver shares the root's implementation.
			name: "monomorphic-inherited-impl",
			src: `
class A { int m() { return 11; } }
class B extends A { int other() { return 1; } }
class Main { static void main() {
    A a = new B();
    System.out.println(a.m() + a.m());
} }`,
			wantDevirt: 1,
		},
		{
			// Dispatch through a subclass-typed receiver whose class
			// overrides nothing: the builder anchors the site at the
			// declaring superclass, where it is monomorphic.
			name: "through-subclass-no-override",
			src: `
class A { int m() { return 3; } }
class B extends A { }
class Main { static void main() {
    B b = new B();
    System.out.println(b.m());
} }`,
			wantDevirt: 1,
		},
		{
			// Both implementations are instantiated: genuinely
			// polymorphic, must stay an xdispatch.
			name: "polymorphic",
			src: `
class A { int m() { return 1; } }
class B extends A { int m() { return 2; } }
class Main { static void main() {
    A x = new A();
    A y = new B();
    System.out.println(x.m() + y.m());
} }`,
			wantDevirt: -1,
		},
		{
			// CHA sees two implementations, but the overriding
			// subclass is never instantiated — RTA narrows the
			// candidate set to the root and the site devirtualizes.
			name: "rta-narrowed",
			src: `
class A { int m() { return 21; } }
class B extends A { int m() { return 99; } }
class Main { static void main() {
    A a = new A();
    System.out.println(a.m() * 2);
} }`,
			wantDevirt: 1,
		},
		{
			// Abstract-root shape: the root is never instantiated and
			// the unique live implementation lives on the subclass.
			// The direct call would need the receiver on the
			// subclass's safe-ref plane, which SafeTSA cannot reach
			// without a dynamic check — the site must stay virtual.
			name: "uninstantiated-root-subclass-target",
			src: `
class A { int m() { return 0; } }
class B extends A { int m() { return 5; } }
class Main { static void main() {
    A a = new B();
    System.out.println(a.m());
} }`,
			wantDevirt: -1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mod, st := runBoth(t, tc.src)
			if tc.wantDevirt < 0 {
				if st.Devirtualized != 0 {
					t.Errorf("devirtualized %d sites, want 0", st.Devirtualized)
				}
				if countOp(mod, core.OpXDispatch) == 0 {
					t.Errorf("no xdispatch left; the virtual site should have survived")
				}
			} else {
				if st.Devirtualized < tc.wantDevirt {
					t.Errorf("devirtualized %d sites, want >= %d", st.Devirtualized, tc.wantDevirt)
				}
				if n := countOp(mod, core.OpXDispatch); n != 0 {
					t.Errorf("%d xdispatch sites left, want 0", n)
				}
			}
		})
	}
}

// TestHierarchyQueries pins the core whole-module queries the
// devirtualizer and inliner are built on.
func TestHierarchyQueries(t *testing.T) {
	src := `
class A { int m() { return 1; } }
class B extends A { int m() { return 2; } }
class C extends A { int extra() { return 3; } }
class Main {
    static int spin(A a) { return a.m(); }
    static int loop(int n) { if (n < 1) { return 0; } return loop(n - 1) + 1; }
    static void main() {
        System.out.println(spin(new B()) + loop(2));
    }
}`
	mod := compiled(t, src)
	aID := mod.Types.Class("A")
	if aID == core.NoType {
		t.Fatal("class A not found")
	}
	if n := len(mod.Subclasses(aID)); n != 3 {
		t.Errorf("Subclasses(A) = %d classes, want 3 (A, B, C)", n)
	}
	inst := mod.InstantiatedClasses()
	if !inst[mod.Types.Class("B")] || inst[mod.Types.Class("C")] || inst[aID] {
		t.Errorf("InstantiatedClasses wrong: %v", inst)
	}
	// Find the A.m dispatch entry. CHA alone (nil instantiated set)
	// sees two implementations; RTA narrows to B's.
	var am int32 = -1
	for i := range mod.Methods {
		if mod.Methods[i].Owner == aID && mod.Methods[i].Name == "m" {
			am = int32(i)
		}
	}
	if am < 0 {
		t.Fatal("A.m not in method table")
	}
	if tgt := mod.MonomorphicTarget(am, nil); tgt != -1 {
		t.Errorf("CHA-only target = %d, want -1 (B overrides)", tgt)
	}
	tgt := mod.MonomorphicTarget(am, inst)
	if tgt < 0 || mod.Methods[tgt].Owner != mod.Types.Class("B") {
		t.Errorf("RTA target not B's implementation (got %d)", tgt)
	}
	// Out-of-range and non-virtual entries resolve to nothing.
	if mod.MonomorphicTarget(-1, nil) != -1 || mod.MonomorphicTarget(int32(len(mod.Methods)), nil) != -1 {
		t.Error("out-of-range method index resolved")
	}
	for i := range mod.Methods {
		if mod.Methods[i].Static && mod.MonomorphicTarget(int32(i), nil) != -1 {
			t.Errorf("static method %s resolved as virtual", mod.Methods[i].Name)
		}
		if mod.Types.MustGet(mod.Methods[i].Owner).Imported &&
			mod.MonomorphicTarget(int32(i), nil) != -1 {
			t.Errorf("imported-owner method %s devirtualizable", mod.Methods[i].Name)
		}
	}
	rec := mod.RecursiveFuncs()
	var recNames []string
	for f := range rec {
		recNames = append(recNames, mod.Methods[f.Method].Name)
	}
	if len(rec) != 1 || recNames[0] != "loop" {
		t.Errorf("RecursiveFuncs = %v, want exactly [loop]", recNames)
	}
}

// TestMisdevirtualizationRejected pins the metamorphic safety net: a
// buggy devirtualizer that installs a subclass-owned target without
// repairing the receiver plane produces a module the consumer verifier
// rejects, and RunPassesVerified surfaces that rejection.
func TestMisdevirtualizationRejected(t *testing.T) {
	src := `
class A { int m() { return 0; } }
class B extends A { int m() { return 5; } }
class Main { static void main() {
    A a = new B();
    System.out.println(a.m());
} }`
	mod := compiled(t, src)
	evil := opt.Pass{Name: "evil-devirt", Run: func(m *core.Module, f *core.Func, o opt.Options, st *opt.Stats) {
		inst := m.InstantiatedClasses()
		for _, b := range f.Blocks {
			for _, in := range b.Code {
				if in.Op != core.OpXDispatch {
					continue
				}
				// RTA says B.m is the only live target — but the
				// receiver sits on A's safe-ref plane, and the
				// "optimizer" forgets to care.
				if tgt := m.MonomorphicTarget(in.Method, inst); tgt >= 0 {
					in.Op = core.OpXCall
					in.Method = tgt
				}
			}
		}
	}}
	_, err := oracle.RunPassesVerified(mod, []opt.Pass{evil})
	if err == nil {
		t.Fatal("verifier accepted a mis-devirtualized module")
	}
	if !strings.Contains(err.Error(), "evil-devirt") {
		t.Errorf("error does not name the offending pass: %v", err)
	}
}

// TestInlining pins the inliner: small straight-line callees disappear
// into their callers, recursive ones never do.
func TestInlining(t *testing.T) {
	t.Run("small-callee", func(t *testing.T) {
		src := `
class Main {
    static int add(int a, int b) { return a + b; }
    static int twice(int x) { return add(x, x); }
    static void main() {
        System.out.println(twice(add(3, 4)));
    }
}`
		mod, st := runBoth(t, src)
		if st.Inlined == 0 {
			t.Error("no call sites inlined")
		}
		// Only the builtin println calls should remain: every
		// unit-local call chain collapses within the round budget.
		for _, f := range mod.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Code {
					if in.Op == core.OpXCall && mod.FuncOf(in.Method) != nil {
						t.Errorf("unit-local call survived inlining: %s",
							mod.Methods[in.Method].Sig(mod.Types))
					}
				}
			}
		}
	})
	t.Run("recursive-not-inlined", func(t *testing.T) {
		// Mutually recursive single-block bodies: each qualifies on
		// every size test, so only the recursion analysis stops the
		// expansion. Never executed — main takes the other branch.
		src := `
class Main {
    static int ping(int n) { return pong(n - 1); }
    static int pong(int n) { return ping(n - 1); }
    static void main() {
        int x = 3;
        if (x > 10) { System.out.println(ping(x)); }
        System.out.println(x);
    }
}`
		mod, st := moduleOptimized(t, src)
		_ = st
		calls := 0
		for _, f := range mod.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Code {
					if in.Op == core.OpXCall && mod.FuncOf(in.Method) != nil {
						calls++
					}
				}
			}
		}
		if calls == 0 {
			t.Error("recursive calls disappeared; the inliner must refuse recursion")
		}
	})
	t.Run("throwing-inlinee-in-try", func(t *testing.T) {
		// The inlined body can throw; its exception edges must be
		// stitched to the caller's handler so the catch still fires.
		src := `
class Main {
    static int get(int[] a, int i) { return a[i]; }
    static void main() {
        int[] a = new int[3];
        a[1] = 8;
        int r = 0;
        try { r = get(a, 1) + get(a, 7); } catch (IndexOutOfBoundsException e) { r = -1; }
        System.out.println(r);
        try { r = get(null, 0); } catch (NullPointerException e) { r = -2; }
        System.out.println(r);
        System.out.println(get(a, 1));
    }
}`
		_, st := runBoth(t, src)
		if st.Inlined == 0 {
			t.Error("throwing callee not inlined")
		}
	})
}

// TestCheckElimination pins the flow-based tier: witness phis at joins
// and exception-edge pruning by range reasoning.
func TestCheckElimination(t *testing.T) {
	t.Run("diamond-witness-merge", func(t *testing.T) {
		// a[2] is checked in both arms of the diamond; the check
		// after the join can reuse a phi of the two witnesses. The
		// null call at the end pins that eliding checks never elides
		// the exception.
		src := `
class Main {
    static int f(int[] a, boolean p) {
        int x = 0;
        if (p) { x = a[2]; } else { x = a[2] + 1; }
        return x + a[2];
    }
    static void main() {
        int[] a = new int[5];
        a[2] = 40;
        System.out.println(f(a, true));
        System.out.println(f(a, false));
        System.out.println(f(null, true));
    }
}`
		_, st := runBoth(t, src)
		if st.ChecksElided == 0 {
			t.Error("join-point check not merged into a witness phi")
		}
	})
	t.Run("const-bounds-prunes-exception-edge", func(t *testing.T) {
		// new int[5] indexed at constants in range: the accesses
		// provably cannot throw, so handler edges are pruned while the
		// check instructions stay as the safe-plane witnesses. Two
		// sites feed the handler because the pruner refuses to remove
		// a handler's last incoming edge while it still carries phis.
		src := `
class Main {
    static void main() {
        int[] a = new int[5];
        a[2] = 7;
        int r = 0;
        try { r = a[2] + a[3]; } catch (IndexOutOfBoundsException e) { r = -1; }
        System.out.println(r);
    }
}`
		_, st := runBoth(t, src)
		if st.ExcEdgesPruned == 0 {
			t.Error("provably in-bounds access kept its exception edge")
		}
	})
	t.Run("const-divisor-prunes-exception-edge", func(t *testing.T) {
		src := `
class Main {
    static void main() {
        int x = 84;
        int r = 0;
        try { r = x / 2; } catch (ArithmeticException e) { r = -1; }
        System.out.println(r);
    }
}`
		_, st := runBoth(t, src)
		if st.ExcEdgesPruned == 0 {
			t.Error("division by a non-zero constant kept its exception edge")
		}
	})
}

// TestModulePipelineCombinesTiers checks the pipeline end to end on a
// dispatch-heavy hierarchy: devirtualization feeds the inliner, and the
// merged bodies expose check-elimination opportunities, all while the
// consumer verifier stays green after every pass.
func TestModulePipelineCombinesTiers(t *testing.T) {
	src := `
class Counter {
    int n;
    int bump() { n = n + 1; return n; }
    int read() { return n; }
}
class Main {
    static void main() {
        Counter c = new Counter();
        int total = 0;
        int i = 0;
        while (i < 5) { total = total + c.bump(); i = i + 1; }
        System.out.println(total);
        System.out.println(c.read());
    }
}`
	mod, st := runBoth(t, src)
	if st.Devirtualized == 0 {
		t.Error("no dispatch site devirtualized")
	}
	if st.Inlined == 0 {
		t.Error("no devirtualized call inlined")
	}
	if n := countOp(mod, core.OpXDispatch); n != 0 {
		t.Errorf("%d xdispatch sites left in a monomorphic module", n)
	}
}
