package opt

import (
	"math"

	"safetsa/internal/core"
	"safetsa/internal/rt"
)

// constProp folds primitive operations over constant operands and
// simplifies phis whose operands have collapsed to a single value. Folded
// instructions are replaced in place by constants, so the paper's claim
// that constant propagation shrinks programs by only 1–2% can be measured
// directly. Returns the number of instructions removed or folded.
func constProp(m *core.Module, f *core.Func) int {
	changed := 0
	for {
		repl := make(map[core.ValueID]core.ValueID)
		consts := make(map[core.ValueID]core.ConstVal)
		for _, b := range f.Blocks {
			for _, in := range b.Code {
				if in.Op == core.OpConst {
					consts[in.ID] = in.Const
				}
			}
		}
		var dead []*core.Instr
		for _, b := range f.Blocks {
			// phi(x, x, ..., x) -> x when x's definition structurally
			// dominates the phi's block (which keeps the result
			// expressible as an (l, r) reference).
			for _, phi := range b.Phis {
				// Trivial-phi removal: operands that are the phi itself
				// (loop-invariant variables produce phi(x, self)) are
				// ignored; a phi whose remaining operands agree on a
				// single value collapses to it.
				x := core.NoValue
				trivial := true
				for _, a := range phi.Args {
					if a == phi.ID {
						continue
					}
					if x == core.NoValue {
						x = a
					} else if a != x {
						trivial = false
						break
					}
				}
				if !trivial || x == core.NoValue {
					continue
				}
				def := f.DefBlock(x)
				if def != nil && def != b && def.Dominates(b) {
					repl[phi.ID] = x
					dead = append(dead, phi)
				}
			}
		}
		folded := 0
		for _, b := range f.Blocks {
			for _, in := range b.Code {
				if in.Op != core.OpPrim {
					continue
				}
				cv, ok := foldPrim(in, consts)
				if !ok {
					continue
				}
				// Replace the primitive in place with the folded
				// constant.
				in.Op = core.OpConst
				in.Args = nil
				in.Prim = core.PInvalid
				in.Const = cv
				consts[in.ID] = cv
				folded++
			}
		}
		if len(repl) == 0 && folded == 0 {
			break
		}
		for _, in := range dead {
			removeInstr(in)
		}
		replaceUses(f, repl)
		changed += len(dead) + folded
	}
	_ = m
	return changed
}

// foldPrim evaluates a non-throwing primitive whose operands are all
// constants. String-producing primitives are not folded: their results
// have object identity.
func foldPrim(in *core.Instr, consts map[core.ValueID]core.ConstVal) (core.ConstVal, bool) {
	args := make([]core.ConstVal, len(in.Args))
	for i, a := range in.Args {
		cv, ok := consts[a]
		if !ok {
			return core.ConstVal{}, false
		}
		args[i] = cv
	}
	ci := func(v int32) (core.ConstVal, bool) {
		return core.ConstVal{Kind: core.KInt, I: int64(v)}, true
	}
	cl := func(v int64) (core.ConstVal, bool) {
		return core.ConstVal{Kind: core.KLong, I: v}, true
	}
	cd := func(v float64) (core.ConstVal, bool) {
		return core.ConstVal{Kind: core.KDouble, D: v}, true
	}
	cb := func(v bool) (core.ConstVal, bool) {
		i := int64(0)
		if v {
			i = 1
		}
		return core.ConstVal{Kind: core.KBool, I: i}, true
	}
	cc := func(v uint16) (core.ConstVal, bool) {
		return core.ConstVal{Kind: core.KChar, I: int64(v)}, true
	}
	i32 := func(i int) int32 { return int32(args[i].I) }
	i64v := func(i int) int64 { return args[i].I }
	f64 := func(i int) float64 { return args[i].D }
	bl := func(i int) bool { return args[i].I != 0 }

	switch in.Prim {
	case core.PIAdd:
		return ci(i32(0) + i32(1))
	case core.PISub:
		return ci(i32(0) - i32(1))
	case core.PIMul:
		return ci(i32(0) * i32(1))
	case core.PINeg:
		return ci(-i32(0))
	case core.PIShl:
		return ci(i32(0) << (uint32(i32(1)) & 31))
	case core.PIShr:
		return ci(i32(0) >> (uint32(i32(1)) & 31))
	case core.PIAnd:
		return ci(i32(0) & i32(1))
	case core.PIOr:
		return ci(i32(0) | i32(1))
	case core.PIXor:
		return ci(i32(0) ^ i32(1))
	case core.PIEq:
		return cb(i32(0) == i32(1))
	case core.PINe:
		return cb(i32(0) != i32(1))
	case core.PILt:
		return cb(i32(0) < i32(1))
	case core.PILe:
		return cb(i32(0) <= i32(1))
	case core.PIGt:
		return cb(i32(0) > i32(1))
	case core.PIGe:
		return cb(i32(0) >= i32(1))
	case core.PIAbs:
		v := i32(0)
		if v < 0 {
			v = -v
		}
		return ci(v)
	case core.PIMin:
		if i32(0) < i32(1) {
			return ci(i32(0))
		}
		return ci(i32(1))
	case core.PIMax:
		if i32(0) > i32(1) {
			return ci(i32(0))
		}
		return ci(i32(1))
	case core.PI2L:
		return cl(int64(i32(0)))
	case core.PI2D:
		return cd(float64(i32(0)))
	case core.PI2C:
		return cc(uint16(i32(0)))

	case core.PLAdd:
		return cl(i64v(0) + i64v(1))
	case core.PLSub:
		return cl(i64v(0) - i64v(1))
	case core.PLMul:
		return cl(i64v(0) * i64v(1))
	case core.PLNeg:
		return cl(-i64v(0))
	case core.PLShl:
		return cl(i64v(0) << (uint32(i32(1)) & 63))
	case core.PLShr:
		return cl(i64v(0) >> (uint32(i32(1)) & 63))
	case core.PLAnd:
		return cl(i64v(0) & i64v(1))
	case core.PLOr:
		return cl(i64v(0) | i64v(1))
	case core.PLXor:
		return cl(i64v(0) ^ i64v(1))
	case core.PLEq:
		return cb(i64v(0) == i64v(1))
	case core.PLNe:
		return cb(i64v(0) != i64v(1))
	case core.PLLt:
		return cb(i64v(0) < i64v(1))
	case core.PLLe:
		return cb(i64v(0) <= i64v(1))
	case core.PLGt:
		return cb(i64v(0) > i64v(1))
	case core.PLGe:
		return cb(i64v(0) >= i64v(1))
	case core.PL2I:
		return ci(int32(i64v(0)))
	case core.PL2D:
		return cd(float64(i64v(0)))

	case core.PDAdd:
		return cd(f64(0) + f64(1))
	case core.PDSub:
		return cd(f64(0) - f64(1))
	case core.PDMul:
		return cd(f64(0) * f64(1))
	case core.PDDiv:
		return cd(f64(0) / f64(1))
	case core.PDNeg:
		return cd(-f64(0))
	case core.PDEq:
		return cb(f64(0) == f64(1))
	case core.PDNe:
		return cb(f64(0) != f64(1))
	case core.PDLt:
		return cb(f64(0) < f64(1))
	case core.PDLe:
		return cb(f64(0) <= f64(1))
	case core.PDGt:
		return cb(f64(0) > f64(1))
	case core.PDGe:
		return cb(f64(0) >= f64(1))
	case core.PDAbs:
		return cd(math.Abs(f64(0)))
	case core.PDSqrt:
		return cd(math.Sqrt(f64(0)))
	case core.PD2I:
		return ci(rt.D2I(f64(0)))
	case core.PD2L:
		return cl(rt.D2L(f64(0)))

	case core.PBNot:
		return cb(!bl(0))
	case core.PBAnd:
		return cb(bl(0) && bl(1))
	case core.PBOr:
		return cb(bl(0) || bl(1))
	case core.PBXor:
		return cb(bl(0) != bl(1))
	case core.PBEq:
		return cb(bl(0) == bl(1))
	case core.PBNe:
		return cb(bl(0) != bl(1))

	case core.PC2I:
		return ci(int32(uint16(args[0].I)))
	}
	return core.ConstVal{}, false
}
