// Package opt implements the producer-side optimizations of section 8 of
// the paper: constant propagation with folding, dominator-scoped common
// subexpression elimination with an artificial memory-state variable
// ("Mem") threading load/store dependencies, and liveness-based dead-code
// elimination that prunes the pessimistically placed phi instructions.
// Null-check and bounds-check elimination fall out of CSE over the check
// instructions — the eliminated checks travel tamper-proof because the
// remaining ones are still structurally verified by the consumer.
package opt

import (
	"safetsa/internal/core"
)

// Stats reports what the optimizer did, per category; these feed the
// Figure 6 table and the section 8 claims.
type Stats struct {
	InstrsBefore int
	InstrsAfter  int

	PhisBefore int
	PhisAfter  int

	NullChecksBefore int
	NullChecksAfter  int

	ArrayChecksBefore int
	ArrayChecksAfter  int

	// Per-pass removal counts.
	ConstFolded int
	CSERemoved  int
	DCERemoved  int

	// Interprocedural-tier counts (zero unless Options.ModuleLevel).
	Devirtualized  int // xdispatch sites rewritten to direct xcalls
	Inlined        int // call sites expanded into the caller
	ChecksElided   int // checks replaced by witness phis at joins
	ExcEdgesPruned int // exception edges of provably-safe sites removed
}

// Count tallies the statistics categories over a module.
func Count(m *core.Module) (instrs, phis, nullChecks, arrayChecks int) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			phis += len(b.Phis)
			instrs += len(b.Phis)
			for _, in := range b.Code {
				instrs++
				switch in.Op {
				case core.OpNullCheck:
					nullChecks++
				case core.OpIndexCheck:
					arrayChecks++
				}
			}
		}
	}
	return
}

// Options selects optimizer variants.
type Options struct {
	// FieldSensitiveMem partitions the artificial Mem variable by field
	// (and by array element type), the "simple form of field analysis"
	// the paper names as the next improvement in section 8. A store to
	// one field then no longer kills loads of any other, exposing more
	// common subexpressions. Off by default: the paper's measured
	// configuration is the single conservative Mem.
	FieldSensitiveMem bool

	// ModuleLevel enables the interprocedural tier on top of the
	// intraprocedural pipeline: CHA/RTA devirtualization of monomorphic
	// xdispatch sites, inlining of small non-recursive callees, and
	// flow-based null/bounds-check elimination, followed by a cleanup
	// round. Off by default: the paper's measured configuration is
	// intraprocedural.
	ModuleLevel bool
}

// Optimize runs the paper's measured pipeline (single conservative Mem)
// on a module, in place, and returns the statistics.
func Optimize(m *core.Module) Stats {
	return OptimizeWithOptions(m, Options{})
}

// OptimizeWithOptions runs the producer-side pipeline with variant
// selection.
func OptimizeWithOptions(m *core.Module, o Options) Stats {
	st, _ := RunPasses(m, o, PipelineFor(o), nil)
	return st
}

// Pass is one named step of the producer-side pipeline. Run transforms a
// single function in place and accounts its effect in st. Passes must be
// per-function independent: RunPasses applies each pass to every function
// before moving to the next pass, so that a whole-module invariant (in
// particular, the consumer verifier) can be checked between passes.
type Pass struct {
	Name string
	Run  func(m *core.Module, f *core.Func, o Options, st *Stats)
}

// The intraprocedural pass bodies, shared by every pipeline variant.
func runConstProp(m *core.Module, f *core.Func, o Options, st *Stats) {
	st.ConstFolded += constProp(m, f)
}

func runCSE(m *core.Module, f *core.Func, o Options, st *Stats) {
	st.CSERemoved += cse(m, f, o)
}

func runDCE(m *core.Module, f *core.Func, o Options, st *Stats) {
	st.DCERemoved += dce(m, f)
}

// Pipeline returns the paper's measured pass sequence. Two
// constprop+CSE rounds (CSE exposes new constants and copies), then one
// liveness DCE that prunes the pessimistically placed phis.
func Pipeline() []Pass {
	return []Pass{
		{Name: "constprop", Run: runConstProp},
		{Name: "cse", Run: runCSE},
		{Name: "constprop2", Run: runConstProp},
		{Name: "cse2", Run: runCSE},
		{Name: "dce", Run: runDCE},
	}
}

// ModulePipeline returns the interprocedural tier: the intraprocedural
// pipeline first (smaller callees inline better), then devirtualization
// (turning dispatch sites into inlinable direct calls), inlining, a
// cleanup constprop+CSE round over the merged bodies, flow-based check
// elimination (CSE first, so checkelim only sees the join cases CSE
// cannot reach), and a final DCE sweep. Every pass is per-function and
// leaves the module verifier-clean, so oracle.RunPassesVerified can
// re-check each intermediate state.
func ModulePipeline() []Pass {
	ps := Pipeline()
	return append(ps,
		devirtPass(),
		inlinePass(),
		Pass{Name: "constprop3", Run: runConstProp},
		Pass{Name: "cse3", Run: runCSE},
		checkElimPass(),
		Pass{Name: "dce2", Run: runDCE},
	)
}

// PipelineFor selects the pass sequence the options ask for.
func PipelineFor(o Options) []Pass {
	if o.ModuleLevel {
		return ModulePipeline()
	}
	return Pipeline()
}

// RunPasses applies each pass to every function of the module, calling
// after(pass.Name) once a pass has finished with the whole module. A
// non-nil error from after aborts the pipeline — the module is left in
// its mid-pipeline state for inspection, so callers that care must treat
// the module as scrap on error. after may be nil.
func RunPasses(m *core.Module, o Options, passes []Pass, after func(pass string) error) (Stats, error) {
	var st Stats
	st.InstrsBefore, st.PhisBefore, st.NullChecksBefore, st.ArrayChecksBefore = Count(m)
	for _, p := range passes {
		for _, f := range m.Funcs {
			p.Run(m, f, o, &st)
		}
		if after != nil {
			if err := after(p.Name); err != nil {
				return st, err
			}
		}
	}
	st.InstrsAfter, st.PhisAfter, st.NullChecksAfter, st.ArrayChecksAfter = Count(m)
	return st, nil
}

// replaceUses rewrites every operand (instruction arguments, safe-index
// bindings, and CST value references) through the replacement map,
// resolving chains.
func replaceUses(f *core.Func, repl map[core.ValueID]core.ValueID) {
	if len(repl) == 0 {
		return
	}
	resolve := func(v core.ValueID) core.ValueID {
		for {
			n, ok := repl[v]
			if !ok {
				return v
			}
			v = n
		}
	}
	for _, b := range f.Blocks {
		b.Instrs(func(in *core.Instr) {
			for i, a := range in.Args {
				in.Args[i] = resolve(a)
			}
			if in.Bind != core.NoValue {
				in.Bind = resolve(in.Bind)
			}
		})
	}
	var walk func(n *core.CSTNode)
	walk = func(n *core.CSTNode) {
		if n == nil {
			return
		}
		if n.Cond != core.NoValue {
			n.Cond = resolve(n.Cond)
		}
		if n.Val != core.NoValue {
			n.Val = resolve(n.Val)
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(f.Body)
}

// removeInstr deletes an instruction from its block (either section).
func removeInstr(in *core.Instr) {
	b := in.Blk
	if in.Op == core.OpPhi {
		for i, p := range b.Phis {
			if p == in {
				b.Phis = append(b.Phis[:i], b.Phis[i+1:]...)
				return
			}
		}
		return
	}
	for i, p := range b.Code {
		if p == in {
			b.Code = append(b.Code[:i], b.Code[i+1:]...)
			return
		}
	}
}
