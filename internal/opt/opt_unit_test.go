package opt_test

import (
	"testing"

	"safetsa/internal/core"
	"safetsa/internal/driver"
	"safetsa/internal/opt"
)

func compiled(t *testing.T, src string) *core.Module {
	t.Helper()
	mod, err := driver.CompileTSASource(map[string]string{"Main.tj": src})
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func countOp(m *core.Module, op core.Op) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			b.Instrs(func(in *core.Instr) {
				if in.Op == op {
					n++
				}
			})
		}
	}
	return n
}

const fieldStoreSrc = `
class P { int x; int y; }
class Main {
    static int f(P p, int[] a) {
        int r = p.x + p.x;     // second load merges
        p.y = 1;               // store: kills p.x loads only under field analysis
        r += p.x;
        r += a[0];
        p.y = 2;               // a[0] reload: never killed by a field store
        r += a[0];
        return r;
    }
    static void main() {
        P p = new P();
        p.x = 21;
        int[] a = new int[1];
        a[0] = 100;
        System.out.println(f(p, a));
    }
}`

// TestMemVariableKillsLoads pins the conservative Mem semantics of
// section 8: a store produces a new Mem, so loads across it reload.
func TestMemVariableKillsLoads(t *testing.T) {
	mod := compiled(t, fieldStoreSrc)
	before := countOp(mod, core.OpGetField)
	opt.Optimize(mod)
	after := countOp(mod, core.OpGetField)
	// f has 3 p.x loads: the first pair merges; the store to p.y kills
	// the rest under single-Mem. 3 -> 2.
	if before <= after {
		t.Fatalf("getfield not reduced: %d -> %d", before, after)
	}
	if after < 2 {
		t.Fatalf("conservative Mem merged a load across a store: %d getfields left", after)
	}
}

// TestFieldSensitiveMem checks the paper's future-work extension: with
// the Mem variable partitioned by field, the store to p.y no longer
// kills p.x, and array loads survive field stores.
func TestFieldSensitiveMem(t *testing.T) {
	conservative := compiled(t, fieldStoreSrc)
	opt.Optimize(conservative)
	partitioned := compiled(t, fieldStoreSrc)
	opt.OptimizeWithOptions(partitioned, opt.Options{FieldSensitiveMem: true})

	cLoads := countOp(conservative, core.OpGetField) + countOp(conservative, core.OpGetElt)
	pLoads := countOp(partitioned, core.OpGetField) + countOp(partitioned, core.OpGetElt)
	if pLoads >= cLoads {
		t.Fatalf("field analysis found nothing: %d vs %d loads", pLoads, cLoads)
	}

	// Semantics must be identical.
	want, err := driver.RunModule(conservative, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := driver.RunModule(partitioned, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("field-sensitive CSE changed behaviour: %q vs %q", got, want)
	}
}

// TestFieldSensitiveStillKillsSameField: a store to the loaded field must
// still invalidate it.
func TestFieldSensitiveStillKillsSameField(t *testing.T) {
	mod := compiled(t, `
class P { int x; }
class Main {
    static void main() {
        P p = new P();
        p.x = 1;
        int a = p.x;
        p.x = 2;
        int b = p.x;          // must NOT merge with a
        System.out.println(a + " " + b);
    }
}`)
	opt.OptimizeWithOptions(mod, opt.Options{FieldSensitiveMem: true})
	out, err := driver.RunModule(mod, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if out != "1 2\n" {
		t.Fatalf("store-to-load ordering broken: %q", out)
	}
}

// TestCallsKillAllPartitions: a method call conservatively invalidates
// every partition, even under field analysis.
func TestCallsKillAllPartitions(t *testing.T) {
	mod := compiled(t, `
class P { int x; }
class Main {
    static P shared;
    static void mutate() { shared.x = 99; }
    static void main() {
        shared = new P();
        shared.x = 1;
        P p = shared;
        int a = p.x;
        mutate();
        int b = p.x;          // must reload after the call
        System.out.println(a + " " + b);
    }
}`)
	opt.OptimizeWithOptions(mod, opt.Options{FieldSensitiveMem: true})
	out, err := driver.RunModule(mod, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if out != "1 99\n" {
		t.Fatalf("call did not kill memory: %q", out)
	}
}

// TestArrayLenIsPure: array lengths are immutable, so a store between two
// .length reads must not prevent the merge.
func TestArrayLenIsPure(t *testing.T) {
	mod := compiled(t, `
class Main {
    static void main() {
        int[] a = new int[7];
        int x = a.length;
        a[0] = 5;
        int y = a.length;
        System.out.println(x + y);
    }
}`)
	before := countOp(mod, core.OpArrayLen)
	opt.Optimize(mod)
	after := countOp(mod, core.OpArrayLen)
	if before != 2 || after != 1 {
		t.Fatalf("arraylen CSE: %d -> %d, want 2 -> 1", before, after)
	}
}

// TestCheckEliminationRemovesExceptionEdges: when CSE deletes a redundant
// check inside a try, the handler loses the corresponding phi operand and
// the program still runs correctly.
func TestCheckEliminationRemovesExceptionEdges(t *testing.T) {
	src := `
class Main {
    static int f(int[] a, int i) {
        try {
            return a[i] + a[i] + a[i];
        } catch (IndexOutOfBoundsException e) {
            return -1;
        } catch (NullPointerException e) {
            return -2;
        }
    }
    static void main() {
        int[] a = new int[2];
        a[1] = 50;
        System.out.println(f(a, 1));
        System.out.println(f(a, 7));
        System.out.println(f(null, 0));
    }
}`
	mod := compiled(t, src)
	want, err := driver.RunModule(mod, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	mod2 := compiled(t, src)
	st := opt.Optimize(mod2)
	if st.ArrayChecksAfter >= st.ArrayChecksBefore {
		t.Fatalf("no array checks eliminated inside try: %d -> %d",
			st.ArrayChecksBefore, st.ArrayChecksAfter)
	}
	if err := mod2.Verify(core.VerifyOptions{}); err != nil {
		t.Fatalf("edges inconsistent after check elimination: %v", err)
	}
	got, err := driver.RunModule(mod2, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("behaviour changed: %q vs %q", got, want)
	}
	if want != "150\n-1\n-2\n" {
		t.Fatalf("exception dispatch wrong: %q", want)
	}
}

// TestConstFoldDivideByNonZero: constant folding never folds integer
// division (it may throw), keeping the xprimitive intact.
func TestConstFoldKeepsXPrims(t *testing.T) {
	mod := compiled(t, `
class Main {
    static void main() {
        int z = 0;
        try {
            int x = 10 / z;
            System.out.println(x);
        } catch (ArithmeticException e) {
            System.out.println("caught");
        }
    }
}`)
	opt.Optimize(mod)
	if countOp(mod, core.OpXPrim) == 0 {
		t.Fatal("the potentially-throwing division was folded away")
	}
	out, err := driver.RunModule(mod, 1_000_000)
	if err != nil || out != "caught\n" {
		t.Fatalf("division semantics lost: %q %v", out, err)
	}
}
