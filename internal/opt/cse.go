package opt

import (
	"safetsa/internal/core"
)

// memVersion tokens abstract the state of memory. Every block gets a
// memory-in version by forward dataflow: a block whose predecessors
// disagree receives a fresh "memory phi" token — the paper's artificial
// Mem variable with phi nodes at joins, kept purely producer-side ("this
// mechanism is used solely during the optimization phase and is not part
// of the transmitted code").
type memVersion int32

const memInit memVersion = 0

// killsMemory reports whether an instruction invalidates memory-dependent
// expressions (stores and calls; calls conservatively return a new Mem,
// as the paper's non-interprocedural approximation does).
func killsMemory(op core.Op) bool {
	switch op {
	case core.OpSetField, core.OpSetElt, core.OpXCall, core.OpXDispatch:
		return true
	}
	return false
}

// partition identifies an alias class of memory: the single conservative
// Mem ('m'), one field ('f'), or array elements of one type ('a'). Field
// and array-element partitions never alias each other in TJ (no array
// covariance), which is exactly the type/field-based partitioning the
// paper sketches as future work.
type partition struct {
	kind byte
	sym  int32
}

var memAll = partition{kind: 'm'}

// killsPartition reports whether an instruction invalidates a partition;
// calls conservatively kill everything (the paper's non-interprocedural
// approximation).
func killsPartition(in *core.Instr, p partition) bool {
	switch in.Op {
	case core.OpXCall, core.OpXDispatch:
		return true
	case core.OpSetField:
		return p.kind == 'm' || (p.kind == 'f' && in.Field == p.sym)
	case core.OpSetElt:
		return p.kind == 'm' || (p.kind == 'a' && int32(in.TypeArg) == p.sym)
	}
	return false
}

// memInOf computes the memory-in version of every block for one
// partition by fixpoint; it also returns the per-instruction kill tokens.
func memInOf(f *core.Func, p partition) (map[*core.Block]memVersion, map[*core.Instr]memVersion) {
	// Token space: 0 = init; 1+instrIndex for killing instructions;
	// phi tokens allocated per block from a separate range.
	killToken := make(map[*core.Instr]memVersion)
	next := memVersion(1)
	for _, b := range f.Blocks {
		for _, in := range b.Code {
			if killsPartition(in, p) {
				killToken[in] = next
				next++
			}
		}
	}
	phiToken := make(map[*core.Block]memVersion)
	for _, b := range f.Blocks {
		phiToken[b] = next
		next++
	}

	const unknown = memVersion(-1)
	memIn := make(map[*core.Block]memVersion, len(f.Blocks))
	memOut := make(map[*core.Block]memVersion, len(f.Blocks))
	for _, b := range f.Blocks {
		memIn[b] = unknown
		memOut[b] = unknown
	}
	memIn[f.Entry] = memInit

	outOf := func(b *core.Block, upto *core.Instr) memVersion {
		cur := memIn[b]
		for _, in := range b.Code {
			if in == upto {
				break
			}
			if t, ok := killToken[in]; ok {
				cur = t
			}
		}
		return cur
	}

	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			in := memIn[b]
			if b != f.Entry {
				v := unknown
				conflict := false
				for _, p := range b.Preds {
					var pv memVersion
					if p.Site != nil {
						// Exception edge: memory state at the throwing
						// site.
						if memIn[p.From] == unknown {
							continue
						}
						pv = outOf(p.From, p.Site)
					} else {
						pv = memOut[p.From]
					}
					if pv == unknown {
						continue
					}
					if v == unknown {
						v = pv
					} else if v != pv {
						conflict = true
					}
				}
				if conflict {
					v = phiToken[b]
				}
				if v != unknown && v != in {
					memIn[b] = v
					changed = true
				}
			}
			out := outOf(b, nil)
			if out != memOut[b] {
				memOut[b] = out
				changed = true
			}
		}
	}
	return memIn, killToken
}

// cseKey identifies an expression for value numbering. mem is only
// meaningful for memory-dependent loads.
type cseKey struct {
	op   core.Op
	prim core.PrimOp
	t    core.TypeID
	sym  int32
	a0   core.ValueID
	a1   core.ValueID
	mem  memVersion
}

// cseable builds the value-numbering key of an instruction, or ok=false
// when the instruction must not be merged (calls, stores, allocations,
// and string-producing primitives, whose results have object identity).
func cseable(in *core.Instr, mem memVersion) (cseKey, bool) {
	k := cseKey{op: in.Op, mem: -1}
	arg := func(i int) core.ValueID {
		if i < len(in.Args) {
			return in.Args[i]
		}
		return core.NoValue
	}
	switch in.Op {
	case core.OpPrim, core.OpXPrim:
		switch in.Prim {
		case core.PSConcat, core.PSOfInt, core.PSOfLong, core.PSOfDouble,
			core.PSOfBool, core.PSOfChar, core.PSOfRef:
			return k, false
		}
		k.prim = in.Prim
		k.a0, k.a1 = arg(0), arg(1)
		return k, true
	case core.OpNullCheck:
		k.a0 = arg(0)
		return k, true
	case core.OpIndexCheck:
		k.a0, k.a1 = arg(0), arg(1)
		return k, true
	case core.OpUpcast, core.OpDowncast, core.OpInstanceOf:
		k.t = in.TypeArg
		k.a0 = arg(0)
		return k, true
	case core.OpArrayLen:
		// Array lengths are immutable: no memory dependence.
		k.a0 = arg(0)
		return k, true
	case core.OpGetField:
		k.sym = in.Field
		k.a0 = arg(0)
		k.mem = mem
		return k, true
	case core.OpGetElt:
		k.a0, k.a1 = arg(0), arg(1)
		k.mem = mem
		return k, true
	}
	return k, false
}

// cse performs dominator-scoped common subexpression elimination: a
// pre-order walk of the structural dominator tree with a scoped value
// table, so every replacement value dominates its new uses and remains
// expressible as an (l, r) reference. Redundant checks are deleted
// outright — a dominating identical check already performed the runtime
// test — which is exactly the paper's producer-side check elimination.
func cse(m *core.Module, f *core.Func, o Options) int {
	// Partition dataflow is computed lazily, once per alias class in
	// use. The conservative configuration uses the single memAll class.
	type partData struct {
		memIn map[*core.Block]memVersion
		kills map[*core.Instr]memVersion
	}
	parts := make(map[partition]*partData)
	dataOf := func(p partition) *partData {
		pd, ok := parts[p]
		if !ok {
			memIn, kills := memInOf(f, p)
			pd = &partData{memIn: memIn, kills: kills}
			parts[p] = pd
		}
		return pd
	}
	partOf := func(in *core.Instr) partition {
		if !o.FieldSensitiveMem {
			return memAll
		}
		switch in.Op {
		case core.OpGetField:
			return partition{kind: 'f', sym: in.Field}
		case core.OpGetElt:
			return partition{kind: 'a', sym: int32(in.TypeArg)}
		}
		return memAll
	}

	table := make(map[cseKey][]core.ValueID) // value stacks, scoped
	repl := make(map[core.ValueID]core.ValueID)
	removed := 0

	resolve := func(v core.ValueID) core.ValueID {
		for {
			n, ok := repl[v]
			if !ok {
				return v
			}
			v = n
		}
	}

	var walk func(b *core.Block)
	walk = func(b *core.Block) {
		var pushed []cseKey
		// Kill instructions seen so far in this block; the current
		// version of any partition replays them against its token map.
		var seenKills []*core.Instr
		versionAt := func(p partition) memVersion {
			pd := dataOf(p)
			ver := pd.memIn[b]
			for _, k := range seenKills {
				if t, ok := pd.kills[k]; ok {
					ver = t
				}
			}
			return ver
		}
		var kept []*core.Instr
		for _, in := range b.Code {
			for i := range in.Args {
				in.Args[i] = resolve(in.Args[i])
			}
			if in.Bind != core.NoValue {
				in.Bind = resolve(in.Bind)
			}
			// A null check of a value that was downcast from a safe-ref
			// plane is statically redundant: the safe source value is
			// the checked result (e.g. `new X()` results are already
			// non-null).
			if in.Op == core.OpNullCheck {
				if d := f.Value(in.Args[0]); d != nil && d.Op == core.OpDowncast {
					if src := f.Value(d.Args[0]); src != nil && src.Type == in.Type {
						repl[in.ID] = d.Args[0]
						f.RemoveExcSite(in)
						removed++
						continue
					}
				}
			}
			var mem memVersion = -1
			if in.Op == core.OpGetField || in.Op == core.OpGetElt {
				mem = versionAt(partOf(in))
			}
			key, ok := cseable(in, mem)
			if ok {
				if stack := table[key]; len(stack) > 0 {
					prev := stack[len(stack)-1]
					if in.HasResult() {
						repl[in.ID] = prev
					}
					if in.Op.CanThrow() {
						f.RemoveExcSite(in)
					}
					removed++
					continue // drop the redundant instruction
				}
				if in.HasResult() {
					table[key] = append(table[key], in.ID)
					pushed = append(pushed, key)
				}
			}
			if killsMemory(in.Op) {
				seenKills = append(seenKills, in)
			}
			kept = append(kept, in)
		}
		b.Code = kept
		for _, c := range b.Children {
			walk(c)
		}
		for _, k := range pushed {
			s := table[k]
			table[k] = s[:len(s)-1]
		}
	}
	walk(f.Entry)

	// Phi operands and CST references see the replacements too.
	replaceUses(f, repl)
	_ = m
	return removed
}
