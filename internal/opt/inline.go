package opt

import (
	"safetsa/internal/core"
)

// Inlining: a direct xcall to a small, non-recursive, straight-line
// unit-local callee is replaced by an SSA-renamed copy of the callee's
// body at the call site. Parameters map to the call's arguments (whose
// planes the verifier already proved identical to the parameter planes),
// every cloned result gets a fresh value ID, and uses of the call's
// result are rewritten to the clone of the returned value.
//
// Exception-edge stitching: if the call site sits inside a try region,
// its single exception edge (index k into the handler's predecessor
// list) is replaced in place by one edge per cloned potentially-throwing
// instruction, in clone order — the clones occupy the call's old
// position in the code, so the decoder's strict program-order edge
// numbering is preserved. Each handler phi duplicates its operand for
// edge k across the new edges (sound: that operand was available before
// the call, hence before every clone), and the edge indices of later
// sites into the same handler shift by the difference. A callee that
// cannot throw at all removes the call's edge entirely.
const (
	// inlineMaxInstrs bounds the callee body size (non-parameter code
	// instructions).
	inlineMaxInstrs = 16
	// inlineMaxRounds bounds repeated expansion inside one caller, so a
	// chain f → g → h inlines through at most this depth per pipeline
	// run while the size budget keeps the caller from blowing up.
	inlineMaxRounds = 3
)

func inlinePass() Pass {
	var mod *core.Module
	var rec map[*core.Func]bool
	return Pass{Name: "inline", Run: func(m *core.Module, f *core.Func, o Options, st *Stats) {
		if m != mod {
			mod, rec = m, m.RecursiveFuncs()
		}
		st.Inlined += inline(m, f, rec)
	}}
}

func inline(m *core.Module, f *core.Func, rec map[*core.Func]bool) int {
	total := 0
	for round := 0; round < inlineMaxRounds; round++ {
		n := inlineRound(m, f, rec)
		if n == 0 {
			break
		}
		total += n
	}
	return total
}

func inlineRound(m *core.Module, f *core.Func, rec map[*core.Func]bool) int {
	n := 0
	repl := make(map[core.ValueID]core.ValueID)
	for _, b := range f.Blocks {
		var out []*core.Instr
		changed := false
		for _, in := range b.Code {
			g, ret := inlinableCallee(m, f, in, rec)
			if g == nil {
				out = append(out, in)
				continue
			}
			clones, res := cloneBody(f, b, g, in, ret)
			out = append(out, clones...)
			stitchExcEdges(f, in, clones)
			if in.ID != core.NoValue {
				repl[in.ID] = res
			}
			changed = true
			n++
		}
		if changed {
			b.Code = out
		}
	}
	replaceUses(f, repl)
	return n
}

// inlinableCallee decides whether the instruction is an xcall whose
// callee can be expanded here, returning the callee and the value it
// returns (NoValue for void). All structural conditions are checked up
// front so that cloning cannot fail halfway.
func inlinableCallee(m *core.Module, f *core.Func, in *core.Instr, rec map[*core.Func]bool) (*core.Func, core.ValueID) {
	if in.Op != core.OpXCall {
		return nil, core.NoValue
	}
	g := m.FuncOf(in.Method)
	if g == nil || g == f || rec[g] {
		return nil, core.NoValue
	}
	if len(g.Blocks) != 1 || g.Entry == nil || len(g.Entry.Phis) > 0 {
		return nil, core.NoValue
	}
	ret, ok := straightLineBody(g)
	if !ok {
		return nil, core.NoValue
	}
	if in.ID != core.NoValue && ret == core.NoValue {
		return nil, core.NoValue
	}
	size := 0
	for _, gi := range g.Entry.Code {
		switch gi.Op {
		case core.OpParam:
			if int(gi.Aux) < 0 || int(gi.Aux) >= len(in.Args) {
				return nil, core.NoValue
			}
		case core.OpCatch, core.OpMem0:
			// Neither belongs in a function entry; refuse rather than
			// clone something the verifier would reject.
			return nil, core.NoValue
		default:
			size++
		}
	}
	if size > inlineMaxInstrs {
		return nil, core.NoValue
	}
	return g, ret
}

// straightLineBody checks that a single-block function's CST is a pure
// sequence: exactly one block leaf (the entry) optionally followed by
// one return, nothing else. Such a body has no internal control flow and
// no try regions, so its instructions can be spliced into any caller
// position verbatim.
func straightLineBody(g *core.Func) (ret core.ValueID, ok bool) {
	var leaves []*core.CSTNode
	var flatten func(n *core.CSTNode) bool
	flatten = func(n *core.CSTNode) bool {
		if n == nil {
			return true
		}
		switch n.Kind {
		case core.CSeq:
			for _, k := range n.Kids {
				if !flatten(k) {
					return false
				}
			}
			return true
		case core.CBlock, core.CReturn:
			leaves = append(leaves, n)
			return true
		}
		return false
	}
	if !flatten(g.Body) {
		return core.NoValue, false
	}
	if len(leaves) == 0 || len(leaves) > 2 {
		return core.NoValue, false
	}
	if leaves[0].Kind != core.CBlock || leaves[0].Block != g.Entry {
		return core.NoValue, false
	}
	if len(leaves) == 2 {
		if leaves[1].Kind != core.CReturn {
			return core.NoValue, false
		}
		return leaves[1].Val, true
	}
	return core.NoValue, true
}

// cloneBody copies the callee's code into the caller block at the call's
// position, renaming every defined value and substituting the call's
// arguments for parameters. Returns the clones in callee order and the
// caller-side value standing for the callee's return.
func cloneBody(f *core.Func, b *core.Block, g *core.Func, call *core.Instr, ret core.ValueID) ([]*core.Instr, core.ValueID) {
	vmap := make(map[core.ValueID]core.ValueID, len(g.Entry.Code))
	mapv := func(v core.ValueID) core.ValueID {
		if v == core.NoValue {
			return core.NoValue
		}
		return vmap[v]
	}
	var clones []*core.Instr
	for _, gi := range g.Entry.Code {
		if gi.Op == core.OpParam {
			vmap[gi.ID] = call.Args[gi.Aux]
			continue
		}
		c := &core.Instr{
			Op:      gi.Op,
			Type:    gi.Type,
			ArgType: gi.ArgType,
			TypeArg: gi.TypeArg,
			Field:   gi.Field,
			Method:  gi.Method,
			Prim:    gi.Prim,
			Aux:     gi.Aux,
			Const:   gi.Const,
			Blk:     b,
		}
		c.Args = make([]core.ValueID, len(gi.Args))
		for i, a := range gi.Args {
			c.Args[i] = mapv(a)
		}
		c.Bind = mapv(gi.Bind)
		if gi.HasResult() {
			f.Define(c)
			vmap[gi.ID] = c.ID
		}
		clones = append(clones, c)
	}
	return clones, mapv(ret)
}

// stitchExcEdges rethreads the call's exception edge (if any) to the
// cloned throwing instructions, keeping the handler's predecessor list
// in strict program order and every handler phi aligned with it.
func stitchExcEdges(f *core.Func, call *core.Instr, clones []*core.Instr) {
	h := f.HandlerOf[call]
	if h == nil {
		return
	}
	var throwers []*core.Instr
	for _, c := range clones {
		if c.Op.CanThrow() {
			throwers = append(throwers, c)
		}
	}
	if len(throwers) == 0 {
		f.RemoveExcSite(call)
		return
	}
	k := f.ExcEdge[call]
	n := len(throwers)
	preds := make([]core.Pred, 0, len(h.Preds)+n-1)
	preds = append(preds, h.Preds[:k]...)
	for _, t := range throwers {
		preds = append(preds, core.Pred{From: call.Blk, Site: t})
	}
	preds = append(preds, h.Preds[k+1:]...)
	h.Preds = preds
	for _, phi := range h.Phis {
		args := make([]core.ValueID, 0, len(phi.Args)+n-1)
		args = append(args, phi.Args[:k+1]...)
		for i := 1; i < n; i++ {
			args = append(args, phi.Args[k])
		}
		args = append(args, phi.Args[k+1:]...)
		phi.Args = args
	}
	delete(f.ExcEdge, call)
	delete(f.HandlerOf, call)
	for site, e := range f.ExcEdge {
		if f.HandlerOf[site] == h && e > k {
			f.ExcEdge[site] = e + n - 1
		}
	}
	for node, e := range f.ThrowEdge {
		if f.ThrowHandler[node] == h && e > k {
			f.ThrowEdge[node] = e + n - 1
		}
	}
	for i, t := range throwers {
		f.ExcEdge[t] = k + i
		f.HandlerOf[t] = h
	}
}
