package opt

import (
	"safetsa/internal/core"
)

// Devirtualization (CHA + RTA): an xdispatch site whose dispatch-table
// slot names the same implementation in every possible receiver class is
// rewritten into a direct xcall. The candidate receiver classes are the
// unit's reflexive subclasses of the static receiver type
// (class-hierarchy analysis — sound because a distribution unit is a
// closed world, see DESIGN.md §10), narrowed to the classes the unit can
// actually instantiate (rapid type analysis).
//
// Two sites are deliberately left virtual:
//
//   - Imported receiver roots. Host classes (String) have
//     host-implemented instances whose dispatch is not described by the
//     unit's tables, so no table-derived target is trustworthy.
//   - A unique target declared on a proper subclass of the static
//     receiver type. The direct call would need the receiver on the
//     subclass's safe-ref plane, and SafeTSA has no way to strengthen a
//     plane without a dynamic check — the rewrite is inexpressible, which
//     is exactly the referential security the paper is after.
//
// Those are the only two shapes: in a verifier-valid module every
// dispatchable method entry owns its declaring body, so a site's owner
// declares the method and every dispatch-table candidate is the owner's
// own implementation or an override below it. A unique target is
// therefore owned by the site's owner (same plane, rewrite directly) or
// by a proper subclass (skip).
func devirtPass() Pass {
	var mod *core.Module
	var inst map[core.TypeID]bool
	return Pass{Name: "devirt", Run: func(m *core.Module, f *core.Func, o Options, st *Stats) {
		if m != mod {
			mod, inst = m, m.InstantiatedClasses()
		}
		st.Devirtualized += devirt(m, f, inst)
	}}
}

func devirt(m *core.Module, f *core.Func, inst map[core.TypeID]bool) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Code {
			if in.Op != core.OpXDispatch {
				continue
			}
			target := m.MonomorphicTarget(in.Method, inst)
			if target < 0 || int(target) >= len(m.Methods) {
				continue
			}
			if m.Methods[target].Owner != m.Methods[in.Method].Owner {
				// Subclass-declared target: the receiver is on the
				// owner's safe-ref plane and cannot be strengthened.
				continue
			}
			// The instruction object stays in place (its exception
			// edge and handler registration carry over); only the
			// dispatch becomes direct.
			in.Op = core.OpXCall
			in.Method = target
			n++
		}
	}
	return n
}
