// Package ssabuild translates the checked TJ program (the UAST) into a
// SafeTSA module. The translation is a single pass over the structured
// tree in the style of Brandis and Mössenböck [6 in the paper]: the
// Control Structure Tree, the basic blocks, the structural dominator
// links, and the SSA value numbering are all produced together. Phi
// placement is pessimistic at loop headers and exception handlers (the
// single-pass compromise); the producer-side optimizer prunes the
// superfluous ones, as in section 7.
package ssabuild

import (
	"fmt"

	"safetsa/internal/core"
	"safetsa/internal/lang/ast"
	"safetsa/internal/lang/sema"
)

// Builder accumulates the module-level translation state.
type Builder struct {
	prog *sema.Program
	mod  *core.Module

	classType map[*sema.Class]core.TypeID
	fieldIdx  map[*sema.FieldSym]int32
	methodIdx map[*sema.MethodSym]int32
	// printIdx caches synthetic imported-method entries for the
	// System.out builtins, keyed by BuiltinID.
	printIdx map[sema.BuiltinID]int32
}

// Build translates a checked program into a SafeTSA module.
func Build(prog *sema.Program) (*core.Module, error) {
	b := &Builder{
		prog:      prog,
		classType: make(map[*sema.Class]core.TypeID),
		fieldIdx:  make(map[*sema.FieldSym]int32),
		methodIdx: make(map[*sema.MethodSym]int32),
		printIdx:  make(map[sema.BuiltinID]int32),
	}
	b.mod = &core.Module{Types: core.NewTypeTable(), Entry: -1}
	b.buildTables()
	if err := b.buildBodies(); err != nil {
		return nil, err
	}
	orderFuncsForStreaming(b.mod)
	return b.mod, nil
}

// orderFuncsForStreaming permutes the function list so that everything
// a consumer needs to begin execution — the static initializers, then
// the entry method's body — leads the unit. A streaming decoder
// (wire.DecodeVerifiedStream) can then start main after admitting a
// short prefix, while the remaining bodies are still in flight. Method
// body links and the static-initializer table are rewritten to match;
// the permutation is semantics-free and survives verification
// unchanged.
func orderFuncsForStreaming(m *core.Module) {
	n := len(m.Funcs)
	if n == 0 {
		return
	}
	perm := make([]int32, n) // old index -> new index
	taken := make([]bool, n)
	order := make([]*core.Func, 0, n)
	take := func(i int32) {
		if i < 0 || int(i) >= n || taken[i] {
			return
		}
		taken[i] = true
		perm[i] = int32(len(order))
		order = append(order, m.Funcs[i])
	}
	for _, si := range m.StaticInit {
		take(si)
	}
	if m.Entry >= 0 {
		take(m.Methods[m.Entry].FuncIdx)
	}
	for i := 0; i < n; i++ {
		take(int32(i))
	}
	m.Funcs = order
	for i := range m.Methods {
		if m.Methods[i].FuncIdx >= 0 {
			m.Methods[i].FuncIdx = perm[m.Methods[i].FuncIdx]
		}
	}
	for i, si := range m.StaticInit {
		if si >= 0 {
			m.StaticInit[i] = perm[si]
		}
	}
}

// typeOf maps a sema type to the module type table.
func (b *Builder) typeOf(t *sema.Type) core.TypeID {
	tt := b.mod.Types
	switch t.Kind {
	case sema.KindInt:
		return tt.Int
	case sema.KindLong:
		return tt.Long
	case sema.KindDouble:
		return tt.Double
	case sema.KindBoolean:
		return tt.Boolean
	case sema.KindChar:
		return tt.Char
	case sema.KindVoid:
		return tt.Void
	case sema.KindNull:
		return tt.Object
	case sema.KindClass:
		return b.classID(t.Class)
	case sema.KindArray:
		return tt.ArrayOf(b.typeOf(t.Elem))
	}
	panic("ssabuild: unhandled sema type")
}

func (b *Builder) classID(c *sema.Class) core.TypeID {
	if id, ok := b.classType[c]; ok {
		return id
	}
	tt := b.mod.Types
	if c.Imported {
		id := tt.Class(c.Name)
		if id == core.NoType {
			panic("ssabuild: imported class missing from implicit type table: " + c.Name)
		}
		b.classType[c] = id
		return id
	}
	// Ensure the superclass exists first so Super links are valid.
	superID := b.classID(c.Super)
	id := tt.AddClass(c.Name, superID)
	b.classType[c] = id
	return id
}

// fieldRef interns a field-table entry.
func (b *Builder) fieldRef(f *sema.FieldSym) int32 {
	if i, ok := b.fieldIdx[f]; ok {
		return i
	}
	i := int32(len(b.mod.Fields))
	b.mod.Fields = append(b.mod.Fields, core.FieldRef{
		Owner:  b.classID(f.Owner),
		Name:   f.Name,
		Type:   b.typeOf(f.Type),
		Static: f.Static,
		Slot:   int32(f.Slot),
	})
	b.fieldIdx[f] = i
	return i
}

// methodRef interns a method-table entry.
func (b *Builder) methodRef(m *sema.MethodSym) int32 {
	if i, ok := b.methodIdx[m]; ok {
		return i
	}
	params := make([]core.TypeID, len(m.Params))
	for j, p := range m.Params {
		params[j] = b.typeOf(p)
	}
	i := int32(len(b.mod.Methods))
	b.mod.Methods = append(b.mod.Methods, core.MethodRef{
		Owner:   b.classID(m.Owner),
		Name:    m.Name,
		Params:  params,
		Result:  b.typeOf(m.Return),
		Static:  m.Static,
		IsCtor:  m.IsCtor,
		VSlot:   int32(m.VSlot),
		Builtin: core.BuiltinID(m.Builtin),
		FuncIdx: -1,
	})
	b.methodIdx[m] = i
	return i
}

// printRef interns a synthetic imported static method for a System.out
// builtin.
func (b *Builder) printRef(bi *sema.Builtin) int32 {
	if i, ok := b.printIdx[bi.ID]; ok {
		return i
	}
	params := make([]core.TypeID, len(bi.Params))
	for j, p := range bi.Params {
		params[j] = b.typeOf(p)
	}
	i := int32(len(b.mod.Methods))
	b.mod.Methods = append(b.mod.Methods, core.MethodRef{
		Owner:   b.mod.Types.Object,
		Name:    bi.Name,
		Params:  params,
		Result:  b.mod.Types.Void,
		Static:  true,
		VSlot:   -1,
		Builtin: core.BuiltinID(bi.ID),
		FuncIdx: -1,
	})
	b.printIdx[bi.ID] = i
	return i
}

// buildTables populates the type table and per-class definitions.
func (b *Builder) buildTables() {
	for _, c := range b.prog.UserClasses() {
		b.classID(c)
	}
	for _, c := range b.prog.UserClasses() {
		cd := &core.ClassDef{
			Type:       b.classID(c),
			Super:      b.classID(c.Super),
			NumSlots:   int32(c.NumSlots),
			NumStatics: int32(c.NumStatics),
		}
		for _, f := range c.Fields {
			cd.Fields = append(cd.Fields, b.fieldRef(f))
		}
		for _, m := range c.Ctors {
			cd.Methods = append(cd.Methods, b.methodRef(m))
		}
		for _, m := range c.Methods {
			cd.Methods = append(cd.Methods, b.methodRef(m))
		}
		for _, m := range c.VTable {
			cd.VTable = append(cd.VTable, b.methodRef(m))
		}
		b.mod.Classes = append(b.mod.Classes, cd)
	}
}

// buildBodies translates every user method body, the synthetic static
// initializers, and locates the entry point.
func (b *Builder) buildBodies() error {
	for _, c := range b.prog.UserClasses() {
		// Static initializer.
		var staticInits []*sema.FieldSym
		for _, f := range c.Fields {
			if f.Static && f.Init != nil {
				staticInits = append(staticInits, f)
			}
		}
		si := int32(-1)
		if len(staticInits) > 0 {
			f, err := b.buildClinit(c, staticInits)
			if err != nil {
				return err
			}
			si = int32(len(b.mod.Funcs))
			b.mod.Funcs = append(b.mod.Funcs, f)
		}
		b.mod.StaticInit = append(b.mod.StaticInit, si)

		for _, m := range c.Ctors {
			if err := b.buildMethod(m); err != nil {
				return err
			}
		}
		for _, m := range c.Methods {
			if err := b.buildMethod(m); err != nil {
				return err
			}
			if m.Name == "main" && m.Static && len(m.Params) <= 1 {
				ok := len(m.Params) == 0
				if len(m.Params) == 1 {
					p := m.Params[0]
					ok = p.Kind == sema.KindArray && p.Elem == b.prog.String
				}
				if ok && b.mod.Entry < 0 {
					b.mod.Entry = b.methodIdx[m]
				}
			}
		}
	}
	return nil
}

func (b *Builder) buildMethod(m *sema.MethodSym) error {
	midx := b.methodRef(m)
	fb := newFnBuilder(b, m)
	if err := fb.build(); err != nil {
		return fmt.Errorf("%s: %w", m.Sig(), err)
	}
	fb.f.Method = midx
	b.mod.Methods[midx].FuncIdx = int32(len(b.mod.Funcs))
	b.mod.Funcs = append(b.mod.Funcs, fb.f)
	return nil
}

// buildClinit builds the synthetic static initializer of a class.
func (b *Builder) buildClinit(c *sema.Class, fields []*sema.FieldSym) (*core.Func, error) {
	fb := newFnBuilderRaw(b, c.Name+".<clinit>", nil, b.prog.Void)
	seq := []*core.CSTNode{{Kind: core.CBlock, Block: fb.f.Entry}}
	fb.resume(fb.f.Entry, &seq)
	for _, f := range fields {
		v := fb.exprConv(f.Init, f.Type)
		if fb.cur == nil {
			break
		}
		fb.emit(&core.Instr{
			Op: core.OpSetField, Type: fb.tt().Void,
			Field: b.fieldRef(f), Args: []core.ValueID{v},
		})
	}
	if fb.cur != nil {
		seq = append(seq, &core.CSTNode{Kind: core.CReturn, At: fb.cur})
	}
	fb.f.Body = &core.CSTNode{Kind: core.CSeq, Kids: seq}
	fb.finish()
	if err := core.CheckStructuralDominators(fb.f); err != nil {
		return nil, err
	}
	return fb.f, nil
}

var _ ast.Node // keep the ast import stable while the builder grows
