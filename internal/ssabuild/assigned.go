package ssabuild

import (
	"safetsa/internal/lang/ast"
	"safetsa/internal/lang/sema"
)

// assignedLocals collects the locals assigned anywhere in a statement or
// expression subtree. The builder uses it to limit loop-header phi
// placement to variables the loop can actually change — the paper's
// refinement of the Brandis–Mössenböck scheme ("we improved the handling
// ... to avoid inserting phi nodes"); the remaining superfluous phis are
// still removed by DCE.
func assignedLocals(out map[*sema.Local]bool, nodes ...ast.Node) {
	for _, n := range nodes {
		assignedWalk(out, n)
	}
}

func assignedWalk(out map[*sema.Local]bool, n ast.Node) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		for _, s := range n.Stmts {
			assignedWalk(out, s)
		}
	case *ast.VarDeclStmt:
		assignedWalk(out, n.Init)
	case *ast.ExprStmt:
		assignedWalk(out, n.X)
	case *ast.IfStmt:
		assignedWalk(out, n.Cond)
		assignedWalk(out, n.Then)
		assignedWalk(out, n.Else)
	case *ast.WhileStmt:
		assignedWalk(out, n.Cond)
		assignedWalk(out, n.Body)
	case *ast.DoWhileStmt:
		assignedWalk(out, n.Body)
		assignedWalk(out, n.Cond)
	case *ast.ForStmt:
		assignedWalk(out, n.Init)
		assignedWalk(out, n.Cond)
		assignedWalk(out, n.Post)
		assignedWalk(out, n.Body)
	case *ast.ReturnStmt:
		assignedWalk(out, n.X)
	case *ast.ThrowStmt:
		assignedWalk(out, n.X)
	case *ast.TryStmt:
		assignedWalk(out, n.Body)
		for _, cc := range n.Catches {
			assignedWalk(out, cc.Body)
		}
		if n.Finally != nil {
			assignedWalk(out, n.Finally)
		}
	case *ast.BreakStmt, *ast.ContinueStmt, *ast.EmptyStmt:
	case *ast.Assign:
		if id, ok := n.LHS.(*ast.Ident); ok {
			if l, ok := id.Sym.(*sema.Local); ok {
				out[l] = true
			}
		}
		assignedWalk(out, n.LHS)
		assignedWalk(out, n.RHS)
	case *ast.IncDec:
		if id, ok := n.X.(*ast.Ident); ok {
			if l, ok := id.Sym.(*sema.Local); ok {
				out[l] = true
			}
		}
		assignedWalk(out, n.X)
	case *ast.Unary:
		assignedWalk(out, n.X)
	case *ast.Binary:
		assignedWalk(out, n.X)
		assignedWalk(out, n.Y)
	case *ast.FieldAccess:
		assignedWalk(out, n.X)
	case *ast.IndexExpr:
		assignedWalk(out, n.X)
		assignedWalk(out, n.Index)
	case *ast.CallExpr:
		assignedWalk(out, n.Recv)
		for _, a := range n.Args {
			assignedWalk(out, a)
		}
	case *ast.SuperCall:
		for _, a := range n.Args {
			assignedWalk(out, a)
		}
	case *ast.SuperCtorCall:
		for _, a := range n.Args {
			assignedWalk(out, a)
		}
	case *ast.NewObject:
		for _, a := range n.Args {
			assignedWalk(out, a)
		}
	case *ast.NewArray:
		for _, l := range n.Lens {
			assignedWalk(out, l)
		}
	case *ast.Cast:
		assignedWalk(out, n.X)
	case *ast.InstanceOf:
		assignedWalk(out, n.X)
	case *ast.Cond:
		assignedWalk(out, n.C)
		assignedWalk(out, n.Then)
		assignedWalk(out, n.Else)
	}
}
