package ssabuild_test

import (
	"strings"
	"testing"

	"safetsa/internal/core"
	"safetsa/internal/corpus"
	"safetsa/internal/driver"
)

// TestPaperFigure4Shape checks the worked example of Figures 1-4: the
// fragment `if (i > 0) j = j*i+1; else j = -i*2; i = j*3;` must build
// into exactly the type-separated reference-safe shape the paper draws —
// four blocks (entry, then, else, join), one int phi at the join whose
// (l, r) operands both name register 1 of the respective arm's int plane,
// and arm instructions referencing the parameters with l = 1.
func TestPaperFigure4Shape(t *testing.T) {
	mod, err := driver.CompileTSASource(map[string]string{"Main.tj": `
class Main {
    static int figure1(int i, int j) {
        if (i > 0) {
            j = j * i + 1;
        } else {
            j = -i * 2;
        }
        i = j * 3;
        return i;
    }
}`})
	if err != nil {
		t.Fatal(err)
	}
	var f *core.Func
	for _, cand := range mod.Funcs {
		if strings.Contains(cand.Name, "figure1") {
			f = cand
		}
	}
	if f == nil {
		t.Fatal("figure1 not built")
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("want 4 blocks (entry, then, else, join), have %d", len(f.Blocks))
	}
	entry, thenB, elseB, join := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]

	if thenB.IDom != entry || elseB.IDom != entry || join.IDom != entry {
		t.Error("dominator tree must be flat under the entry")
	}
	if len(join.Preds) != 2 || join.Preds[0].From != thenB || join.Preds[1].From != elseB {
		t.Error("join predecessors wrong")
	}
	if len(join.Phis) != 1 {
		t.Fatalf("join must hold exactly one phi (for j), has %d", len(join.Phis))
	}
	phi := join.Phis[0]
	if phi.Type != mod.Types.Int {
		t.Error("the phi must live on the int plane")
	}

	// The paper's Figure 4 shows the phi operands as (0-1)(0-1): register
	// 1 of each arm's int plane.
	planeIdx := f.PlaneIndex()
	for k, arg := range phi.Args {
		r := f.EncodeRef(join.Preds[k].From, arg, planeIdx)
		if r.L != 0 || r.R != 1 {
			t.Errorf("phi operand %d encodes as (%d-%d), Figure 4 shows (0-1)", k, r.L, r.R)
		}
	}

	// j*i in the then-arm reads both parameters from the entry plane
	// one dominator level up.
	mul := thenB.Code[0]
	if mul.Op != core.OpPrim || mul.Prim != core.PIMul {
		t.Fatalf("then-arm must start with int.mul, has %s", mul.Op)
	}
	for _, a := range mul.Args {
		r := f.EncodeRef(thenB, a, planeIdx)
		if r.L != 1 {
			t.Errorf("parameter reference from the arm must climb one level, got l=%d", r.L)
		}
	}

	// i = j*3 after the join consumes the phi: register 0 of the join's
	// int plane.
	mul3 := join.Code[0]
	r := f.EncodeRef(join, mul3.Args[0], planeIdx)
	if r.L != 0 || r.R != 0 {
		t.Errorf("use of the phi encodes as (%d-%d), want (0-0)", r.L, r.R)
	}
}

// TestAppendixBLoop builds the Appendix B fragment (a while loop over an
// array element access) and checks the loop structure: header phis and a
// safe-index plane bound to the checked array value.
func TestAppendixBLoop(t *testing.T) {
	mod, err := driver.CompileTSASource(map[string]string{"Main.tj": `
class Main {
    static int sum(int[] a, int n) {
        int s = 0;
        int i = 0;
        while (i < n) {
            s = s + a[i];
            i = i + 1;
        }
        return s;
    }
}`})
	if err != nil {
		t.Fatal(err)
	}
	var f *core.Func
	for _, cand := range mod.Funcs {
		if strings.Contains(cand.Name, "sum") {
			f = cand
		}
	}
	header := f.Body.Kids[1]
	if header.Kind != core.CWhile {
		t.Fatalf("second CST node is %v, want while", header.Kind)
	}
	h := header.Block
	if len(h.Phis) != 2 {
		t.Fatalf("loop header must carry phis for s and i, has %d", len(h.Phis))
	}
	for _, phi := range h.Phis {
		if len(phi.Args) != 2 {
			t.Errorf("header phi arity %d, want 2 (entry + back edge)", len(phi.Args))
		}
	}

	// Find the element access inside the body and check Appendix A's
	// binding: the getelt index value is an indexcheck bound to the
	// same array value the getelt reads from.
	found := false
	for _, b := range f.Blocks {
		for _, in := range b.Code {
			if in.Op != core.OpGetElt {
				continue
			}
			found = true
			idx := f.Value(in.Args[1])
			if idx.Op != core.OpIndexCheck {
				t.Fatalf("getelt index produced by %s", idx.Op)
			}
			if idx.Bind != in.Args[0] {
				t.Error("safe-index plane not bound to the accessed array value")
			}
		}
	}
	if !found {
		t.Fatal("no getelt generated")
	}
}

// TestStructuralDominatorsSoundOnCorpus re-checks, for every function of
// every corpus unit (optimized and not), that the structural dominator
// tree is sound against the true flow graph — the property that makes
// every (l, r) reference referentially secure.
func TestStructuralDominatorsSoundOnCorpus(t *testing.T) {
	for _, u := range corpus.Units() {
		mod, err := driver.CompileTSASource(u.Files)
		if err != nil {
			t.Fatalf("%s: %v", u.Name, err)
		}
		for _, f := range mod.Funcs {
			if err := core.CheckStructuralDominators(f); err != nil {
				t.Errorf("%s: %v", u.Name, err)
			}
		}
		if _, err := driver.OptimizeModule(mod); err != nil {
			t.Fatalf("%s: optimize: %v", u.Name, err)
		}
		for _, f := range mod.Funcs {
			if err := core.CheckStructuralDominators(f); err != nil {
				t.Errorf("%s (optimized): %v", u.Name, err)
			}
		}
	}
}

// TestConstantsPreloadedInEntry checks section 5's pre-loading: every
// constant of a function is materialized in the initial basic block.
func TestConstantsPreloadedInEntry(t *testing.T) {
	mod, err := driver.CompileTSASource(map[string]string{"Main.tj": `
class Main {
    static int f(boolean b) {
        if (b) { return 10; }
        while (!b) { return 20; }
        return 30;
    }
}`})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range mod.Funcs {
		for bi, b := range f.Blocks {
			for _, in := range b.Code {
				if in.Op == core.OpConst && bi != 0 {
					t.Errorf("%s: constant %s outside the initial block", f.Name, in.Const)
				}
			}
		}
	}
}
