package ssabuild

import (
	"fmt"

	"safetsa/internal/core"
	"safetsa/internal/lang/ast"
	"safetsa/internal/lang/sema"
	"safetsa/internal/lang/token"
)

// ---------------------------------------------------------------------
// Constants (pre-loaded into the initial basic block, section 5)

func (fb *fnBuilder) constVal(k constKey, cv core.ConstVal, plane core.TypeID) core.ValueID {
	if v, ok := fb.consts[k]; ok {
		return v
	}
	in := &core.Instr{Op: core.OpConst, Type: plane, Const: cv, Blk: fb.f.Entry}
	fb.f.Define(in)
	fb.constInstrs = append(fb.constInstrs, in)
	fb.consts[k] = in.ID
	return in.ID
}

func (fb *fnBuilder) constInt(v int32) core.ValueID {
	return fb.constVal(constKey{kind: core.KInt, i: int64(v)},
		core.ConstVal{Kind: core.KInt, I: int64(v)}, fb.tt().Int)
}

func (fb *fnBuilder) constLong(v int64) core.ValueID {
	return fb.constVal(constKey{kind: core.KLong, i: v},
		core.ConstVal{Kind: core.KLong, I: v}, fb.tt().Long)
}

func (fb *fnBuilder) constDouble(v float64) core.ValueID {
	return fb.constVal(constKey{kind: core.KDouble, d: v},
		core.ConstVal{Kind: core.KDouble, D: v}, fb.tt().Double)
}

func (fb *fnBuilder) constBool(v bool) core.ValueID {
	i := int64(0)
	if v {
		i = 1
	}
	return fb.constVal(constKey{kind: core.KBool, i: i},
		core.ConstVal{Kind: core.KBool, I: i}, fb.tt().Boolean)
}

func (fb *fnBuilder) constChar(v rune) core.ValueID {
	return fb.constVal(constKey{kind: core.KChar, i: int64(v)},
		core.ConstVal{Kind: core.KChar, I: int64(v)}, fb.tt().Char)
}

func (fb *fnBuilder) constString(s string) core.ValueID {
	return fb.constVal(constKey{kind: core.KString, s: s},
		core.ConstVal{Kind: core.KString, S: s}, fb.tt().String)
}

// constNull pre-loads a typed null on the given reference plane.
func (fb *fnBuilder) constNull(plane core.TypeID) core.ValueID {
	return fb.constVal(constKey{kind: core.KNull, t: plane},
		core.ConstVal{Kind: core.KNull}, plane)
}

// zeroValue yields the default value for a plane (used for uninitialized
// locals and missing returns).
func (fb *fnBuilder) zeroValue(plane core.TypeID) core.ValueID {
	tt := fb.tt()
	switch plane {
	case tt.Int:
		return fb.constInt(0)
	case tt.Long:
		return fb.constLong(0)
	case tt.Double:
		return fb.constDouble(0)
	case tt.Boolean:
		return fb.constBool(false)
	case tt.Char:
		return fb.constChar(0)
	default:
		return fb.constNull(plane)
	}
}

// ---------------------------------------------------------------------
// Plane adjustment and conversions

// planeOf returns the plane a value currently lives on.
func (fb *fnBuilder) planeOf(v core.ValueID) core.TypeID {
	return fb.f.Value(v).Type
}

// adjustRef moves a reference value to the wanted reference plane with a
// statically safe downcast (safe-ref → ref, subclass → superclass). It
// panics when the move would not be statically safe — such IR must come
// from an OpUpcast instead.
func (fb *fnBuilder) adjustRef(v core.ValueID, want core.TypeID) core.ValueID {
	have := fb.planeOf(v)
	if have == want {
		return v
	}
	return fb.emit(&core.Instr{
		Op: core.OpDowncast, Type: want,
		ArgType: have, TypeArg: want,
		Args: []core.ValueID{v},
	})
}

// safeRef produces the value on the wanted safe-ref plane, emitting a
// null check when the value is not already known non-null.
func (fb *fnBuilder) safeRef(v core.ValueID, wantSafe core.TypeID) core.ValueID {
	tt := fb.tt()
	have := tt.MustGet(fb.planeOf(v))
	if have.Kind == core.TSafeRef {
		return fb.adjustRef(v, wantSafe)
	}
	checked := fb.emit(&core.Instr{
		Op: core.OpNullCheck, Type: tt.SafeRefOf(have.ID),
		ArgType: have.ID,
		Args:    []core.ValueID{v},
	})
	return fb.adjustRef(checked, wantSafe)
}

func (fb *fnBuilder) prim(op core.PrimOp, args ...core.ValueID) core.ValueID {
	sig := op.Sig()
	o := core.OpPrim
	if sig.Throws {
		o = core.OpXPrim
	}
	return fb.emit(&core.Instr{
		Op: o, Type: core.PlaneType(fb.tt(), sig.Result),
		Prim: op, Args: args,
	})
}

// numConv emits the numeric conversion chain between primitive planes.
func (fb *fnBuilder) numConv(v core.ValueID, from, to sema.TypeKind) core.ValueID {
	if from == to {
		return v
	}
	// Normalize char through int.
	if from == sema.KindChar {
		v = fb.prim(core.PC2I, v)
		return fb.numConv(v, sema.KindInt, to)
	}
	switch {
	case from == sema.KindInt && to == sema.KindLong:
		return fb.prim(core.PI2L, v)
	case from == sema.KindInt && to == sema.KindDouble:
		return fb.prim(core.PI2D, v)
	case from == sema.KindInt && to == sema.KindChar:
		return fb.prim(core.PI2C, v)
	case from == sema.KindLong && to == sema.KindInt:
		return fb.prim(core.PL2I, v)
	case from == sema.KindLong && to == sema.KindDouble:
		return fb.prim(core.PL2D, v)
	case from == sema.KindLong && to == sema.KindChar:
		return fb.numConv(fb.prim(core.PL2I, v), sema.KindInt, sema.KindChar)
	case from == sema.KindDouble && to == sema.KindInt:
		return fb.prim(core.PD2I, v)
	case from == sema.KindDouble && to == sema.KindLong:
		return fb.prim(core.PD2L, v)
	case from == sema.KindDouble && to == sema.KindChar:
		return fb.numConv(fb.prim(core.PD2I, v), sema.KindInt, sema.KindChar)
	}
	panic(fmt.Sprintf("ssabuild: no numeric conversion %v -> %v", from, to))
}

// convert coerces a built value from its sema type to the target sema
// type (widening conversions plus the narrowing ones produced by casts).
func (fb *fnBuilder) convert(v core.ValueID, from, to *sema.Type) core.ValueID {
	if from == to {
		return v
	}
	if from.IsNumeric() && to.IsNumeric() {
		return fb.numConv(v, from.Kind, to.Kind)
	}
	if to.IsRef() {
		return fb.adjustRef(v, fb.b.typeOf(to))
	}
	panic(fmt.Sprintf("ssabuild: no conversion %s -> %s", from, to))
}

// exprConv builds e and converts it to the target type; null literals are
// materialized directly on the target plane.
func (fb *fnBuilder) exprConv(e ast.Expr, want *sema.Type) core.ValueID {
	if _, ok := e.(*ast.NullLit); ok && want.IsRef() {
		return fb.constNull(fb.b.typeOf(want))
	}
	v := fb.expr(e)
	if fb.cur == nil {
		return v
	}
	have := sema.TypeOf(e)
	if want.IsRef() {
		return fb.adjustRef(v, fb.b.typeOf(want))
	}
	return fb.convert(v, have, want)
}

func (fb *fnBuilder) exprBool(e ast.Expr) core.ValueID {
	return fb.exprConv(e, fb.b.prog.Boolean)
}

// toStringVal converts any value to the String plane for concatenation.
func (fb *fnBuilder) toStringVal(e ast.Expr) core.ValueID {
	t := sema.TypeOf(e)
	if t == fb.b.prog.String {
		return fb.expr(e)
	}
	if t.IsRef() {
		v := fb.expr(e)
		return fb.prim(core.PSOfRef, fb.adjustRef(v, fb.tt().Object))
	}
	v := fb.expr(e)
	switch t.Kind {
	case sema.KindInt:
		return fb.prim(core.PSOfInt, v)
	case sema.KindLong:
		return fb.prim(core.PSOfLong, v)
	case sema.KindDouble:
		return fb.prim(core.PSOfDouble, v)
	case sema.KindBoolean:
		return fb.prim(core.PSOfBool, v)
	case sema.KindChar:
		return fb.prim(core.PSOfChar, v)
	}
	panic("ssabuild: cannot convert " + t.String() + " to String")
}

// ---------------------------------------------------------------------
// L-values

// lvalue captures the evaluated address parts of an assignable
// expression so compound assignments evaluate them once.
type lvalue struct {
	load  func() core.ValueID
	store func(core.ValueID)
	typ   *sema.Type
}

func (fb *fnBuilder) evalLValue(e ast.Expr) lvalue {
	tt := fb.tt()
	switch e := e.(type) {
	case *ast.Ident:
		switch sym := e.Sym.(type) {
		case *sema.Local:
			return lvalue{
				load:  func() core.ValueID { return fb.vars[sym] },
				store: func(v core.ValueID) { fb.vars[sym] = v },
				typ:   sym.Type,
			}
		case *sema.FieldSym:
			return fb.fieldLValue(sym, nil)
		}
	case *ast.FieldAccess:
		sym, _ := e.Sym.(*sema.FieldSym)
		if sym == nil {
			panic("ssabuild: assignment to non-field member access")
		}
		if sym.Static {
			return fb.fieldLValue(sym, nil)
		}
		obj := fb.expr(e.X)
		return fb.fieldLValue(sym, &obj)
	case *ast.IndexExpr:
		// The array and index subexpressions are evaluated once, but
		// the null and bounds checks happen at each access, matching
		// Java's evaluation order (the checks of a[i] = f() come after
		// f() runs); the producer-side CSE merges duplicate checks.
		arrType := sema.TypeOf(e.X)
		arrID := fb.b.typeOf(arrType)
		arr := fb.expr(e.X)
		idx := fb.exprConv(e.Index, fb.b.prog.Int)
		elem := arrType.Elem
		access := func() (core.ValueID, core.ValueID) {
			safeArr := fb.safeRef(arr, tt.SafeRefOf(arrID))
			si := fb.emit(&core.Instr{
				Op: core.OpIndexCheck, Type: tt.SafeIndexOf(arrID),
				TypeArg: arrID, Bind: safeArr,
				Args: []core.ValueID{safeArr, idx},
			})
			return safeArr, si
		}
		return lvalue{
			load: func() core.ValueID {
				safeArr, si := access()
				return fb.emit(&core.Instr{
					Op: core.OpGetElt, Type: fb.b.typeOf(elem),
					TypeArg: arrID,
					Args:    []core.ValueID{safeArr, si},
				})
			},
			store: func(v core.ValueID) {
				safeArr, si := access()
				fb.emit(&core.Instr{
					Op: core.OpSetElt, Type: tt.Void,
					TypeArg: arrID,
					Args:    []core.ValueID{safeArr, si, v},
				})
			},
			typ: elem,
		}
	}
	panic(fmt.Sprintf("ssabuild: not an l-value: %T", e))
}

// fieldLValue builds the accessors of a field; obj is nil for statics and
// implicit-this accesses resolve the receiver lazily.
func (fb *fnBuilder) fieldLValue(sym *sema.FieldSym, objp *core.ValueID) lvalue {
	tt := fb.tt()
	fidx := fb.b.fieldRef(sym)
	object := func() []core.ValueID {
		if sym.Static {
			return nil
		}
		want := tt.SafeRefOf(fb.b.classID(sym.Owner))
		if objp != nil {
			// Null check at each access (see IndexExpr above).
			return []core.ValueID{fb.safeRef(*objp, want)}
		}
		return []core.ValueID{fb.adjustRef(fb.recv, want)}
	}
	return lvalue{
		load: func() core.ValueID {
			return fb.emit(&core.Instr{
				Op: core.OpGetField, Type: fb.b.typeOf(sym.Type),
				Field: fidx, Args: object(),
			})
		},
		store: func(v core.ValueID) {
			fb.emit(&core.Instr{
				Op: core.OpSetField, Type: tt.Void,
				Field: fidx, Args: append(object(), v),
			})
		},
		typ: sym.Type,
	}
}

// ---------------------------------------------------------------------
// Expressions

func (fb *fnBuilder) expr(e ast.Expr) core.ValueID {
	switch e := e.(type) {
	case *ast.IntLit:
		return fb.constInt(e.Value)
	case *ast.LongLit:
		return fb.constLong(e.Value)
	case *ast.DoubleLit:
		return fb.constDouble(e.Value)
	case *ast.BoolLit:
		return fb.constBool(e.Value)
	case *ast.CharLit:
		return fb.constChar(e.Value)
	case *ast.StringLit:
		return fb.constString(e.Value)
	case *ast.NullLit:
		return fb.constNull(fb.tt().Object)
	case *ast.ThisExpr:
		return fb.recv
	case *ast.Ident:
		switch sym := e.Sym.(type) {
		case *sema.Local:
			return fb.vars[sym]
		case *sema.FieldSym:
			return fb.fieldLValue(sym, nil).load()
		}
		panic("ssabuild: identifier " + e.Name + " is not a value")
	case *ast.FieldAccess:
		if e.IsLength {
			arrType := sema.TypeOf(e.X)
			arrID := fb.b.typeOf(arrType)
			arr := fb.expr(e.X)
			safe := fb.safeRef(arr, fb.tt().SafeRefOf(arrID))
			return fb.emit(&core.Instr{
				Op: core.OpArrayLen, Type: fb.tt().Int,
				TypeArg: arrID, Args: []core.ValueID{safe},
			})
		}
		return fb.evalLValue(e).load()
	case *ast.IndexExpr:
		return fb.evalLValue(e).load()
	case *ast.Assign:
		return fb.buildAssign(e)
	case *ast.IncDec:
		return fb.buildIncDec(e)
	case *ast.Unary:
		return fb.buildUnary(e)
	case *ast.Binary:
		return fb.buildBinary(e)
	case *ast.CallExpr:
		return fb.buildCall(e)
	case *ast.SuperCall:
		return fb.buildSuperCall(e)
	case *ast.NewObject:
		return fb.buildNewObject(e)
	case *ast.NewArray:
		return fb.buildNewArray(e)
	case *ast.Cast:
		return fb.buildCast(e)
	case *ast.InstanceOf:
		v := fb.expr(e.X)
		plain := fb.plainRef(v)
		return fb.emit(&core.Instr{
			Op: core.OpInstanceOf, Type: fb.tt().Boolean,
			ArgType: fb.planeOf(plain), TypeArg: fb.b.typeOf(fb.b.prog.InstanceOfType[e]),
			Args: []core.ValueID{plain},
		})
	case *ast.Cond:
		t := sema.TypeOf(e)
		return fb.ifValue(e.C,
			func() core.ValueID { return fb.exprConv(e.Then, t) },
			func() core.ValueID { return fb.exprConv(e.Else, t) },
			fb.b.typeOf(t))
	case *ast.SuperCtorCall:
		panic("ssabuild: super(...) outside constructor preamble")
	}
	panic(fmt.Sprintf("ssabuild: unhandled expression %T", e))
}

// plainRef strips a safe-ref plane back to the plain reference plane,
// with InstanceOf's TypeArg fixed for the instanceof use.
func (fb *fnBuilder) plainRef(v core.ValueID) core.ValueID {
	tt := fb.tt()
	t := tt.MustGet(fb.planeOf(v))
	if t.Kind == core.TSafeRef {
		return fb.adjustRef(v, t.Base)
	}
	return v
}

func (fb *fnBuilder) buildAssign(e *ast.Assign) core.ValueID {
	lv := fb.evalLValue(e.LHS)
	if e.Op == token.ASSIGN {
		v := fb.exprConv(e.RHS, lv.typ)
		if fb.cur == nil {
			return v
		}
		lv.store(v)
		return v
	}
	op := e.Op.CompoundOp()
	old := lv.load()
	var v core.ValueID
	if lv.typ == fb.b.prog.String && op == token.ADD {
		v = fb.prim(core.PSConcat, old, fb.toStringVal(e.RHS))
	} else {
		// Compute in the promoted type, then narrow back (Java's
		// compound-assignment implicit cast).
		rt := sema.TypeOf(e.RHS)
		ct := fb.compoundType(lv.typ, rt, op)
		lw := fb.convert(old, lv.typ, ct)
		var rw core.ValueID
		if op == token.SHL || op == token.SHR {
			rw = fb.exprConv(e.RHS, fb.b.prog.Int)
		} else {
			rw = fb.exprConv(e.RHS, ct)
		}
		v = fb.numericOp(op, ct, lw, rw)
		v = fb.convert(v, ct, lv.typ)
	}
	if fb.cur == nil {
		return v
	}
	lv.store(v)
	return v
}

// compoundType is the computation type of a compound assignment.
func (fb *fnBuilder) compoundType(lt, rt *sema.Type, op token.Kind) *sema.Type {
	p := fb.b.prog
	if op == token.SHL || op == token.SHR {
		if lt.Kind == sema.KindChar {
			return p.Int
		}
		return lt
	}
	if lt == p.Boolean {
		return p.Boolean
	}
	return p.Promote(lt, rt)
}

func (fb *fnBuilder) buildIncDec(e *ast.IncDec) core.ValueID {
	lv := fb.evalLValue(e.X)
	old := lv.load()
	p := fb.b.prog
	ct := lv.typ
	if ct.Kind == sema.KindChar {
		ct = p.Int
	}
	w := fb.convert(old, lv.typ, ct)
	var one core.ValueID
	var op core.PrimOp
	switch ct.Kind {
	case sema.KindInt:
		one, op = fb.constInt(1), core.PIAdd
		if e.Op == token.DEC {
			op = core.PISub
		}
	case sema.KindLong:
		one, op = fb.constLong(1), core.PLAdd
		if e.Op == token.DEC {
			op = core.PLSub
		}
	case sema.KindDouble:
		one, op = fb.constDouble(1), core.PDAdd
		if e.Op == token.DEC {
			op = core.PDSub
		}
	default:
		panic("ssabuild: ++/-- on non-numeric")
	}
	nv := fb.prim(op, w, one)
	lv.store(fb.convert(nv, ct, lv.typ))
	return old // postfix value
}

func (fb *fnBuilder) buildUnary(e *ast.Unary) core.ValueID {
	t := sema.TypeOf(e)
	switch e.Op {
	case token.ADD:
		return fb.exprConv(e.X, t)
	case token.SUB:
		v := fb.exprConv(e.X, t)
		switch t.Kind {
		case sema.KindInt:
			return fb.prim(core.PINeg, v)
		case sema.KindLong:
			return fb.prim(core.PLNeg, v)
		case sema.KindDouble:
			return fb.prim(core.PDNeg, v)
		}
	case token.NOT:
		return fb.prim(core.PBNot, fb.exprBool(e.X))
	case token.TILDE:
		v := fb.exprConv(e.X, t)
		switch t.Kind {
		case sema.KindInt:
			return fb.prim(core.PIXor, v, fb.constInt(-1))
		case sema.KindLong:
			return fb.prim(core.PLXor, v, fb.constLong(-1))
		}
	}
	panic("ssabuild: unhandled unary " + e.Op.String())
}

// numericOp maps a binary token and computation type to the primitive.
func (fb *fnBuilder) numericOp(op token.Kind, t *sema.Type, x, y core.ValueID) core.ValueID {
	var p core.PrimOp
	switch t.Kind {
	case sema.KindInt:
		switch op {
		case token.ADD:
			p = core.PIAdd
		case token.SUB:
			p = core.PISub
		case token.MUL:
			p = core.PIMul
		case token.QUO:
			p = core.PIDiv
		case token.REM:
			p = core.PIRem
		case token.SHL:
			p = core.PIShl
		case token.SHR:
			p = core.PIShr
		case token.AND:
			p = core.PIAnd
		case token.OR:
			p = core.PIOr
		case token.XOR:
			p = core.PIXor
		}
	case sema.KindLong:
		switch op {
		case token.ADD:
			p = core.PLAdd
		case token.SUB:
			p = core.PLSub
		case token.MUL:
			p = core.PLMul
		case token.QUO:
			p = core.PLDiv
		case token.REM:
			p = core.PLRem
		case token.SHL:
			p = core.PLShl
		case token.SHR:
			p = core.PLShr
		case token.AND:
			p = core.PLAnd
		case token.OR:
			p = core.PLOr
		case token.XOR:
			p = core.PLXor
		}
	case sema.KindDouble:
		switch op {
		case token.ADD:
			p = core.PDAdd
		case token.SUB:
			p = core.PDSub
		case token.MUL:
			p = core.PDMul
		case token.QUO:
			p = core.PDDiv
		case token.REM:
			p = core.PDRem
		}
	case sema.KindBoolean:
		switch op {
		case token.AND:
			p = core.PBAnd
		case token.OR:
			p = core.PBOr
		case token.XOR:
			p = core.PBXor
		}
	}
	if p == core.PInvalid {
		panic(fmt.Sprintf("ssabuild: no primitive for %s on %s", op, t))
	}
	return fb.prim(p, x, y)
}

// comparison primitives per promoted type.
var cmpOps = map[sema.TypeKind]map[token.Kind]core.PrimOp{
	sema.KindInt: {
		token.EQL: core.PIEq, token.NEQ: core.PINe,
		token.LSS: core.PILt, token.LEQ: core.PILe,
		token.GTR: core.PIGt, token.GEQ: core.PIGe,
	},
	sema.KindLong: {
		token.EQL: core.PLEq, token.NEQ: core.PLNe,
		token.LSS: core.PLLt, token.LEQ: core.PLLe,
		token.GTR: core.PLGt, token.GEQ: core.PLGe,
	},
	sema.KindDouble: {
		token.EQL: core.PDEq, token.NEQ: core.PDNe,
		token.LSS: core.PDLt, token.LEQ: core.PDLe,
		token.GTR: core.PDGt, token.GEQ: core.PDGe,
	},
}

func (fb *fnBuilder) buildBinary(e *ast.Binary) core.ValueID {
	p := fb.b.prog
	xt, yt := sema.TypeOf(e.X), sema.TypeOf(e.Y)
	switch e.Op {
	case token.LAND:
		return fb.ifValue(e.X,
			func() core.ValueID { return fb.exprBool(e.Y) },
			func() core.ValueID { return fb.constBool(false) },
			fb.tt().Boolean)
	case token.LOR:
		return fb.ifValue(e.X,
			func() core.ValueID { return fb.constBool(true) },
			func() core.ValueID { return fb.exprBool(e.Y) },
			fb.tt().Boolean)
	case token.ADD:
		if sema.TypeOf(e) == p.String {
			return fb.prim(core.PSConcat, fb.toStringVal(e.X), fb.toStringVal(e.Y))
		}
	case token.EQL, token.NEQ:
		if xt.IsRef() && yt.IsRef() {
			x := fb.refOperandAsObject(e.X)
			y := fb.refOperandAsObject(e.Y)
			op := core.PREq
			if e.Op == token.NEQ {
				op = core.PRNe
			}
			return fb.prim(op, x, y)
		}
		if xt == p.Boolean && yt == p.Boolean {
			op := core.PBEq
			if e.Op == token.NEQ {
				op = core.PBNe
			}
			return fb.prim(op, fb.expr(e.X), fb.expr(e.Y))
		}
	}
	switch e.Op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		ct := p.Promote(xt, yt)
		x := fb.exprConv(e.X, ct)
		y := fb.exprConv(e.Y, ct)
		return fb.prim(cmpOps[ct.Kind][e.Op], x, y)
	case token.SHL, token.SHR:
		lt := xt
		if lt.Kind == sema.KindChar {
			lt = p.Int
		}
		x := fb.exprConv(e.X, lt)
		y := fb.exprConv(e.Y, p.Int)
		return fb.numericOp(e.Op, lt, x, y)
	default:
		ct := sema.TypeOf(e)
		x := fb.exprConv(e.X, ct)
		y := fb.exprConv(e.Y, ct)
		return fb.numericOp(e.Op, ct, x, y)
	}
}

// refOperandAsObject evaluates a reference operand onto the Object plane
// (reference comparison is a primitive of the root reference type).
func (fb *fnBuilder) refOperandAsObject(e ast.Expr) core.ValueID {
	if _, ok := e.(*ast.NullLit); ok {
		return fb.constNull(fb.tt().Object)
	}
	v := fb.expr(e)
	return fb.adjustRef(fb.plainRef(v), fb.tt().Object)
}

// ifValue lowers value selection (?:, &&, ||) into an if-else whose arms
// produce a value merged by a phi, per the paper's footnote on
// short-circuit operators.
func (fb *fnBuilder) ifValue(cond ast.Expr, thenFn, elseFn func() core.ValueID, plane core.TypeID) core.ValueID {
	condV := fb.exprBool(cond)
	c := fb.cur
	parent := fb.seq
	node := &core.CSTNode{Kind: core.CIf, At: c, Cond: condV}
	entryVars := fb.snapshotVars()

	thenEntry := fb.newBlock(c)
	thenEntry.Preds = []core.Pred{{From: c}}
	var thenSeq []*core.CSTNode
	fb.enter(thenEntry, &thenSeq)
	tv := thenFn()
	thenEnd, thenVars := fb.cur, fb.snapshotVars()
	node.Kids = append(node.Kids, &core.CSTNode{Kind: core.CSeq, Kids: thenSeq})

	fb.vars = entryVars.clone()
	elseEntry := fb.newBlock(c)
	elseEntry.Preds = []core.Pred{{From: c}}
	var elseSeq []*core.CSTNode
	fb.enter(elseEntry, &elseSeq)
	ev := elseFn()
	elseEnd, elseVars := fb.cur, fb.snapshotVars()
	node.Kids = append(node.Kids, &core.CSTNode{Kind: core.CSeq, Kids: elseSeq})

	*parent = append(*parent, node)

	var snaps []edgeSnap
	var vals []core.ValueID
	if thenEnd != nil {
		snaps = append(snaps, edgeSnap{thenEnd, thenVars})
		vals = append(vals, tv)
	}
	if elseEnd != nil {
		snaps = append(snaps, edgeSnap{elseEnd, elseVars})
		vals = append(vals, ev)
	}
	fb.join(snaps, c, parent)
	if fb.cur == nil {
		return core.NoValue
	}
	if len(vals) == 1 {
		return vals[0]
	}
	if vals[0] == vals[1] {
		return vals[0]
	}
	return fb.addPhi(fb.cur, plane, vals).ID
}

func (fb *fnBuilder) buildSuperCall(e *ast.SuperCall) core.ValueID {
	m := e.Sym.(*sema.MethodSym)
	recv := fb.adjustRef(fb.recv, fb.tt().SafeRefOf(fb.b.classID(m.Owner)))
	args := fb.callArgs(e.Args, m.Params)
	return fb.emitCall(core.OpXCall, m, append([]core.ValueID{recv}, args...))
}

func (fb *fnBuilder) callArgs(args []ast.Expr, params []*sema.Type) []core.ValueID {
	out := make([]core.ValueID, len(args))
	for i, a := range args {
		out[i] = fb.exprConv(a, params[i])
	}
	return out
}

func (fb *fnBuilder) emitCall(op core.Op, m *sema.MethodSym, args []core.ValueID) core.ValueID {
	return fb.emit(&core.Instr{
		Op: op, Type: fb.b.typeOf(m.Return),
		Method: fb.b.methodRef(m), Args: args,
	})
}

// mathPrims maps Math builtins onto type-subordinate primitives.
var mathPrims = map[sema.BuiltinID]core.PrimOp{
	sema.BMathSqrt:  core.PDSqrt,
	sema.BMathAbsD:  core.PDAbs,
	sema.BMathAbsI:  core.PIAbs,
	sema.BMathAbsL:  core.PLAbs,
	sema.BMathMinI:  core.PIMin,
	sema.BMathMaxI:  core.PIMax,
	sema.BMathMinL:  core.PLMin,
	sema.BMathMaxL:  core.PLMax,
	sema.BMathMinD:  core.PDMin,
	sema.BMathMaxD:  core.PDMax,
	sema.BMathPow:   core.PDPow,
	sema.BMathFloor: core.PDFloor,
	sema.BMathCeil:  core.PDCeil,
	sema.BMathLog:   core.PDLog,
	sema.BMathExp:   core.PDExp,
	sema.BMathSin:   core.PDSin,
	sema.BMathCos:   core.PDCos,
}

func (fb *fnBuilder) buildCall(e *ast.CallExpr) core.ValueID {
	switch sym := e.Sym.(type) {
	case *sema.Builtin:
		if p, ok := mathPrims[sym.ID]; ok {
			args := make([]core.ValueID, len(e.Args))
			for i, a := range e.Args {
				args[i] = fb.exprConv(a, sym.Params[i])
			}
			return fb.prim(p, args...)
		}
		// System.out builtins: imported static methods with observable
		// effects, invoked via xcall so they are never CSE'd away.
		args := make([]core.ValueID, len(e.Args))
		for i, a := range e.Args {
			args[i] = fb.exprConv(a, sym.Params[i])
		}
		return fb.emit(&core.Instr{
			Op: core.OpXCall, Type: fb.tt().Void,
			Method: fb.b.printRef(sym), Args: args,
		})
	case *sema.MethodSym:
		args := fb.callArgs(e.Args, sym.Params)
		if sym.Static {
			return fb.emitCall(core.OpXCall, sym, args)
		}
		var recvV core.ValueID
		if e.Recv != nil {
			recvV = fb.expr(e.Recv)
		} else {
			recvV = fb.recv
		}
		recv := fb.safeRef(recvV, fb.tt().SafeRefOf(fb.b.classID(sym.Owner)))
		op := core.OpXDispatch
		if sym.Owner.Imported || sym.VSlot < 0 {
			// Imported classes are final hosts: their methods bind
			// statically (see DESIGN.md).
			op = core.OpXCall
		}
		return fb.emitCall(op, sym, append([]core.ValueID{recv}, args...))
	}
	panic("ssabuild: unresolved call " + e.Name)
}

func (fb *fnBuilder) buildNewObject(e *ast.NewObject) core.ValueID {
	cls := sema.TypeOf(e).Class
	cid := fb.b.classID(cls)
	obj := fb.emit(&core.Instr{
		Op: core.OpNew, Type: fb.tt().SafeRefOf(cid), TypeArg: cid,
	})
	ctor, _ := e.Ctor.(*sema.MethodSym)
	if ctor != nil {
		args := fb.callArgs(e.Args, ctor.Params)
		recv := fb.adjustRef(obj, fb.tt().SafeRefOf(fb.b.classID(ctor.Owner)))
		fb.emitCall(core.OpXCall, ctor, append([]core.ValueID{recv}, args...))
	}
	return obj
}

func (fb *fnBuilder) buildNewArray(e *ast.NewArray) core.ValueID {
	t := sema.TypeOf(e) // full array type
	return fb.newArrayDims(t, e.Lens)
}

// newArrayDims allocates a (possibly multi-dimensional) array: the first
// sized dimension directly, the rest with a synthesized fill loop, the
// classic lowering of Java's multianewarray.
func (fb *fnBuilder) newArrayDims(t *sema.Type, lens []ast.Expr) core.ValueID {
	tt := fb.tt()
	arrID := fb.b.typeOf(t)
	n := fb.exprConv(lens[0], fb.b.prog.Int)
	arr := fb.emit(&core.Instr{
		Op: core.OpNewArray, Type: tt.SafeRefOf(arrID),
		TypeArg: arrID, Args: []core.ValueID{n},
	})
	if len(lens) == 1 {
		return arr
	}
	// for (i = 0; i < n; i++) arr[i] = new Elem[...](rest)
	elem := t.Elem
	i := fb.addSynthLocal(fb.b.prog.Int)
	fb.vars[i] = fb.constInt(0)
	arrLocal := fb.addSynthLocal(t)
	fb.vars[arrLocal] = fb.adjustRef(arr, arrID)
	nLocal := fb.addSynthLocal(fb.b.prog.Int)
	fb.vars[nLocal] = n

	cond := synthExpr(&ast.Binary{Op: token.LSS,
		X: synthIdent(i), Y: synthIdent(nLocal)}, fb.b.prog.Boolean)
	seqHolder := fb.seq
	assigned := map[*sema.Local]bool{i: true}
	fb.buildLoop(cond, func(bodySeq *[]*core.CSTNode) {
		safe := fb.safeRef(fb.vars[arrLocal], tt.SafeRefOf(arrID))
		si := fb.emit(&core.Instr{
			Op: core.OpIndexCheck, Type: tt.SafeIndexOf(arrID),
			TypeArg: arrID, Bind: safe,
			Args: []core.ValueID{safe, fb.vars[i]},
		})
		inner := fb.newArrayDims(elem, lens[1:])
		fb.emit(&core.Instr{
			Op: core.OpSetElt, Type: tt.Void,
			TypeArg: arrID,
			Args:    []core.ValueID{safe, si, fb.adjustRef(inner, fb.b.typeOf(elem))},
		})
		fb.vars[i] = fb.prim(core.PIAdd, fb.vars[i], fb.constInt(1))
	}, nil, assigned, seqHolder)

	v := fb.vars[arrLocal]
	fb.dropSynthLocals(3)
	return v
}

// buildCast lowers casts: numeric conversion chains, free downcasts for
// widening reference casts, checked upcasts for narrowing ones.
func (fb *fnBuilder) buildCast(e *ast.Cast) core.ValueID {
	p := fb.b.prog
	from := sema.TypeOf(e.X)
	to := sema.TypeOf(e)
	if from.IsNumeric() && to.IsNumeric() {
		return fb.convert(fb.expr(e.X), from, to)
	}
	if _, ok := e.X.(*ast.NullLit); ok {
		return fb.constNull(fb.b.typeOf(to))
	}
	v := fb.plainRef(fb.expr(e.X))
	if p.Widens(from, to) {
		return fb.adjustRef(v, fb.b.typeOf(to))
	}
	return fb.emit(&core.Instr{
		Op: core.OpUpcast, Type: fb.b.typeOf(to),
		ArgType: fb.planeOf(v), TypeArg: fb.b.typeOf(to),
		Args: []core.ValueID{v},
	})
}

// ---------------------------------------------------------------------
// Synthetic locals for desugared constructs

func (fb *fnBuilder) addSynthLocal(t *sema.Type) *sema.Local {
	l := &sema.Local{Name: fmt.Sprintf("$t%d", len(fb.scope)), Type: t, Index: -1}
	fb.scope = append(fb.scope, l)
	return l
}

func (fb *fnBuilder) dropSynthLocals(n int) {
	fb.popScope(len(fb.scope) - n)
}

func synthIdent(l *sema.Local) ast.Expr {
	id := &ast.Ident{Name: l.Name, Sym: l}
	id.SetTypeInfo(l.Type)
	return id
}

func synthExpr(e ast.Expr, t *sema.Type) ast.Expr {
	e.SetTypeInfo(t)
	return e
}
