package ssabuild

import (
	"fmt"

	"safetsa/internal/core"
	"safetsa/internal/lang/ast"
	"safetsa/internal/lang/sema"
)

// snapshot is one version map of the locals at a program point.
type snapshot map[*sema.Local]core.ValueID

func (s snapshot) clone() snapshot {
	out := make(snapshot, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// edgeSnap pairs an incoming edge with the variable versions at its
// source point.
type edgeSnap struct {
	from *core.Block
	vars snapshot
}

// phiSlot tracks a pessimistically placed loop-header (or handler) phi
// whose trailing operands are appended as the loop's back and continue
// edges are discovered.
type phiSlot struct {
	local *sema.Local
	phi   *core.Instr
}

// loopCtx is the state of the innermost loop being built.
type loopCtx struct {
	header     *core.Block // continue target (while header / do-while body entry?)
	headerPhis []phiSlot
	// contToHeader is true for while-shaped loops, where continue edges
	// go straight to the header and extend the header phis.
	contToHeader bool
	contSnaps    []edgeSnap // do-while: continue edges to the latch join
	breakSnaps   []edgeSnap
	postAST      []ast.Stmt // for-loop update, inlined at continue sites
	triesBase    int        // len(fb.tries) at loop entry
}

// tryCtx is the state of an enclosing try statement.
type tryCtx struct {
	finallyAST *ast.BlockStmt // inlined on every exit path
	// routing is true while the protected body is being built: throwing
	// instructions register exception edges here.
	routing bool
	sites   []siteSnap
}

// siteSnap is one potential point of exception: an instruction site or
// an explicit throw node, with the variable versions live at that point.
type siteSnap struct {
	from  *core.Block
	site  *core.Instr   // nil for CThrow edges
	throw *core.CSTNode // the throw node for CThrow edges
	vars  snapshot
}

// fnBuilder builds one function body.
type fnBuilder struct {
	b    *Builder
	m    *sema.MethodSym
	info *sema.MethodInfo
	f    *core.Func

	cur *core.Block // nil when the current path has terminated
	// seq points at the CST sequence currently being extended — the one
	// holding cur's leaf. Expression lowerings (short-circuit operators,
	// multi-dimensional array allocation) append their control nodes
	// here.
	seq  *[]*core.CSTNode
	vars snapshot
	// scope lists the locals currently in scope, in declaration order;
	// all deterministic iteration over variables uses it.
	scope []*sema.Local
	recv  core.ValueID // receiver value (safe-ref plane), NoValue for statics

	consts      map[constKey]core.ValueID
	constInstrs []*core.Instr
	paramInstrs []*core.Instr

	loops []*loopCtx
	tries []*tryCtx

	// inFinally suppresses re-inlining a finally block into exits that
	// occur within the finally block itself.
	inFinally int
}

type constKey struct {
	kind core.ConstKind
	i    int64
	d    float64
	s    string
	t    core.TypeID // plane, for null constants
}

func newFnBuilderRaw(b *Builder, name string, params []core.TypeID, result *sema.Type) *fnBuilder {
	fb := &fnBuilder{
		b:      b,
		f:      core.NewFunc(name),
		vars:   make(snapshot),
		consts: make(map[constKey]core.ValueID),
	}
	fb.f.Params = params
	fb.f.Result = b.typeOf(result)
	entry := fb.f.NewBlock()
	fb.f.Entry = entry
	fb.cur = entry
	for i := range params {
		in := &core.Instr{Op: core.OpParam, Type: params[i], Aux: int32(i), Blk: entry}
		fb.f.Define(in)
		fb.paramInstrs = append(fb.paramInstrs, in)
	}
	return fb
}

func newFnBuilder(b *Builder, m *sema.MethodSym) *fnBuilder {
	info := b.prog.MethodInfo[m]
	if info == nil {
		info = &sema.MethodInfo{}
	}
	var params []core.TypeID
	if !m.Static {
		params = append(params, b.mod.Types.SafeRefOf(b.classID(m.Owner)))
	}
	for _, p := range m.Params {
		params = append(params, b.typeOf(p))
	}
	fb := newFnBuilderRaw(b, m.QName(), params, m.Return)
	fb.m = m
	fb.info = info
	off := 0
	if !m.Static {
		fb.recv = fb.paramInstrs[0].ID
		off = 1
	}
	for i, l := range info.Params {
		fb.vars[l] = fb.paramInstrs[off+i].ID
		fb.scope = append(fb.scope, l)
	}
	return fb
}

func (fb *fnBuilder) tt() *core.TypeTable { return fb.b.mod.Types }

func (fb *fnBuilder) snapshotVars() snapshot { return fb.vars.clone() }

// emit appends an instruction to the current block, defining its result
// value when it has one, and registers exception edges for throwing
// instructions inside try regions.
func (fb *fnBuilder) emit(in *core.Instr) core.ValueID {
	if fb.cur == nil {
		panic("ssabuild: emit on terminated path in " + fb.f.Name)
	}
	in.Blk = fb.cur
	if in.Type != fb.tt().Void {
		fb.f.Define(in)
	}
	fb.cur.Code = append(fb.cur.Code, in)
	if in.Op.CanThrow() {
		if t := fb.routingTry(); t != nil {
			t.sites = append(t.sites, siteSnap{from: fb.cur, site: in, vars: fb.snapshotVars()})
		}
	}
	return in.ID
}

// routingTry returns the innermost try context that still routes
// exceptions (i.e. whose protected body is being built).
func (fb *fnBuilder) routingTry() *tryCtx {
	for i := len(fb.tries) - 1; i >= 0; i-- {
		if fb.tries[i].routing {
			return fb.tries[i]
		}
	}
	return nil
}

// newBlock creates a block with the given structural immediate dominator.
func (fb *fnBuilder) newBlock(idom *core.Block) *core.Block {
	b := fb.f.NewBlock()
	b.IDom = idom
	return b
}

// enter makes b the current block and appends its CST leaf to seq.
func (fb *fnBuilder) enter(b *core.Block, seq *[]*core.CSTNode) {
	fb.cur = b
	fb.seq = seq
	*seq = append(*seq, &core.CSTNode{Kind: core.CBlock, Block: b})
}

// resume makes b current within seq without creating a leaf (the leaf was
// already placed when the block was set up).
func (fb *fnBuilder) resume(b *core.Block, seq *[]*core.CSTNode) {
	fb.cur = b
	fb.seq = seq
}

// addPhi appends a phi to b and returns its value.
func (fb *fnBuilder) addPhi(b *core.Block, plane core.TypeID, args []core.ValueID) *core.Instr {
	phi := &core.Instr{Op: core.OpPhi, Type: plane, Args: args, Blk: b}
	fb.f.Define(phi)
	b.Phis = append(b.Phis, phi)
	return phi
}

// localPlane is the plane on which versions of a local live: the plain
// type of the local (never a safe shadow).
func (fb *fnBuilder) localPlane(l *sema.Local) core.TypeID { return fb.b.typeOf(l.Type) }

// structDominates walks the structural dominator chain (usable during
// construction, before Finish assigns the pre/post numbering).
func structDominates(a, b *core.Block) bool {
	for x := b; x != nil; x = x.IDom {
		if x == a {
			return true
		}
	}
	return false
}

// join creates a join block with the given incoming edges (in canonical
// order) and makes it current. A phi is placed for a local when its
// versions differ between the edges, or when the agreed version's
// definition is not a structural ancestor of the join — without the phi
// such a version would be inexpressible as an (l, r) reference, even
// though it dominates the join in the refined flow graph. With no edges
// the path is terminated.
func (fb *fnBuilder) join(snaps []edgeSnap, idom *core.Block, seq *[]*core.CSTNode) {
	switch len(snaps) {
	case 0:
		fb.cur = nil
		fb.vars = make(snapshot)
		return
	}
	j := fb.newBlock(idom)
	for _, s := range snaps {
		j.Preds = append(j.Preds, core.Pred{From: s.from})
	}
	merged := make(snapshot, len(fb.vars))
	for _, l := range fb.scope {
		first, ok := snaps[0].vars[l]
		if !ok {
			continue
		}
		same := true
		for _, s := range snaps[1:] {
			if s.vars[l] != first {
				same = false
				break
			}
		}
		if same {
			if def := fb.f.DefBlock(first); def == nil || structDominates(def, j) {
				merged[l] = first
				continue
			}
		}
		args := make([]core.ValueID, len(snaps))
		for k, s := range snaps {
			args[k] = s.vars[l]
		}
		merged[l] = fb.addPhi(j, fb.localPlane(l), args).ID
	}
	fb.vars = merged
	fb.enter(j, seq)
}

// ---------------------------------------------------------------------
// Top level

func (fb *fnBuilder) build() error {
	var seq []*core.CSTNode
	seq = append(seq, &core.CSTNode{Kind: core.CBlock, Block: fb.f.Entry})
	fb.resume(fb.f.Entry, &seq)

	var body []ast.Stmt
	if fb.m.Synthetic {
		// Compiler-generated default constructor: super() + field inits.
		fb.emitCtorPreamble(nil, &seq)
	} else {
		body = fb.m.Decl.Body.Stmts
		if fb.m.IsCtor {
			var explicit *ast.SuperCtorCall
			if len(body) > 0 {
				if es, ok := body[0].(*ast.ExprStmt); ok {
					if sc, ok := es.X.(*ast.SuperCtorCall); ok {
						explicit = sc
						body = body[1:]
					}
				}
			}
			fb.emitCtorPreamble(explicit, &seq)
		}
	}
	fb.buildStmts(body, &seq)

	// Implicit return at the end of the method.
	if fb.cur != nil {
		ret := &core.CSTNode{Kind: core.CReturn, At: fb.cur}
		if fb.f.Result != fb.tt().Void {
			// TJ does not enforce reachability analysis, so a method
			// may fall off its end; return the zero value of the
			// result type, as documented in DESIGN.md.
			ret.Val = fb.zeroValue(fb.f.Result)
			ret.At = fb.cur
		}
		seq = append(seq, ret)
		fb.cur = nil
	}

	fb.f.Body = &core.CSTNode{Kind: core.CSeq, Kids: seq}
	fb.finish()
	return core.CheckStructuralDominators(fb.f)
}

// emitCtorPreamble emits the super-constructor call and the instance
// field initializers at the start of a constructor body.
func (fb *fnBuilder) emitCtorPreamble(explicit *ast.SuperCtorCall, seq *[]*core.CSTNode) {
	owner := fb.m.Owner
	var superCtor *sema.MethodSym
	var args []core.ValueID
	if explicit != nil {
		superCtor, _ = explicit.Ctor.(*sema.MethodSym)
		if superCtor != nil {
			args = fb.callArgs(explicit.Args, superCtor.Params)
		}
	} else {
		superCtor = fb.b.prog.ImplicitSuper[fb.m]
	}
	if superCtor != nil {
		recv := fb.adjustRef(fb.recv, fb.tt().SafeRefOf(fb.b.classID(superCtor.Owner)))
		fb.emit(&core.Instr{
			Op: core.OpXCall, Type: fb.tt().Void,
			Method: fb.b.methodRef(superCtor),
			Args:   append([]core.ValueID{recv}, args...),
		})
	}
	for _, fld := range owner.Fields {
		if fld.Static || fld.Init == nil {
			continue
		}
		v := fb.exprConv(fld.Init, fld.Type)
		if fb.cur == nil {
			return
		}
		recv := fb.adjustRef(fb.recv, fb.tt().SafeRefOf(fb.b.classID(fld.Owner)))
		fb.emit(&core.Instr{
			Op: core.OpSetField, Type: fb.tt().Void,
			Field: fb.b.fieldRef(fld),
			Args:  []core.ValueID{recv, v},
		})
	}
	_ = seq
}

// finish splices the pre-loaded parameter and constant registers into the
// initial basic block (section 5) and computes the canonical ordering.
func (fb *fnBuilder) finish() {
	entry := fb.f.Entry
	pre := make([]*core.Instr, 0, len(fb.paramInstrs)+len(fb.constInstrs)+len(entry.Code))
	pre = append(pre, fb.paramInstrs...)
	pre = append(pre, fb.constInstrs...)
	entry.Code = append(pre, entry.Code...)
	if fb.f.Body == nil {
		fb.f.Body = &core.CSTNode{Kind: core.CSeq,
			Kids: []*core.CSTNode{{Kind: core.CBlock, Block: entry}}}
	}
	fb.f.Finish()
}

// ---------------------------------------------------------------------
// Statements

func (fb *fnBuilder) buildStmts(stmts []ast.Stmt, seq *[]*core.CSTNode) {
	for _, s := range stmts {
		if fb.cur == nil {
			return // unreachable code after a terminator is dropped
		}
		fb.buildStmt(s, seq)
	}
}

func (fb *fnBuilder) buildStmt(s ast.Stmt, seq *[]*core.CSTNode) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		mark := len(fb.scope)
		fb.buildStmts(s.Stmts, seq)
		fb.popScope(mark)
	case *ast.EmptyStmt:
	case *ast.VarDeclStmt:
		l := fb.b.prog.DeclLocal[s]
		var v core.ValueID
		if s.Init != nil {
			v = fb.exprConv(s.Init, l.Type)
		} else {
			v = fb.zeroValue(fb.localPlane(l))
		}
		if fb.cur == nil {
			return
		}
		fb.vars[l] = v
		fb.scope = append(fb.scope, l)
	case *ast.ExprStmt:
		fb.expr(s.X)
	case *ast.IfStmt:
		fb.buildIf(s, seq)
	case *ast.WhileStmt:
		assigned := make(map[*sema.Local]bool)
		assignedLocals(assigned, s.Cond, s.Body)
		fb.buildLoop(s.Cond, func(bodySeq *[]*core.CSTNode) {
			fb.buildStmt(s.Body, bodySeq)
		}, nil, assigned, seq)
	case *ast.ForStmt:
		fb.buildFor(s, seq)
	case *ast.DoWhileStmt:
		fb.buildDoWhile(s, seq)
	case *ast.ReturnStmt:
		fb.buildReturn(s, seq)
	case *ast.BreakStmt:
		fb.buildBreak(seq)
	case *ast.ContinueStmt:
		fb.buildContinue(seq)
	case *ast.ThrowStmt:
		v := fb.expr(s.X)
		if fb.cur == nil {
			return
		}
		fb.throwValue(v, seq)
	case *ast.TryStmt:
		fb.buildTry(s, seq)
	default:
		panic(fmt.Sprintf("ssabuild: unhandled statement %T", s))
	}
}

func (fb *fnBuilder) popScope(mark int) {
	for _, l := range fb.scope[mark:] {
		delete(fb.vars, l)
	}
	fb.scope = fb.scope[:mark]
}

func (fb *fnBuilder) buildIf(s *ast.IfStmt, seq *[]*core.CSTNode) {
	cond := fb.exprBool(s.Cond)
	if fb.cur == nil {
		return
	}
	c := fb.cur
	node := &core.CSTNode{Kind: core.CIf, At: c, Cond: cond}
	entryVars := fb.snapshotVars()

	thenEntry := fb.newBlock(c)
	thenEntry.Preds = []core.Pred{{From: c}}
	var thenSeq []*core.CSTNode
	fb.enter(thenEntry, &thenSeq)
	mark := len(fb.scope)
	fb.buildStmt(s.Then, &thenSeq)
	fb.popScope(mark)
	thenEnd, thenVars := fb.cur, fb.snapshotVars()
	node.Kids = append(node.Kids, &core.CSTNode{Kind: core.CSeq, Kids: thenSeq})

	var snaps []edgeSnap
	if thenEnd != nil {
		snaps = append(snaps, edgeSnap{thenEnd, thenVars})
	}
	if s.Else != nil {
		fb.vars = entryVars.clone()
		elseEntry := fb.newBlock(c)
		elseEntry.Preds = []core.Pred{{From: c}}
		var elseSeq []*core.CSTNode
		fb.enter(elseEntry, &elseSeq)
		fb.buildStmt(s.Else, &elseSeq)
		fb.popScope(mark)
		if fb.cur != nil {
			snaps = append(snaps, edgeSnap{fb.cur, fb.snapshotVars()})
		}
		node.Kids = append(node.Kids, &core.CSTNode{Kind: core.CSeq, Kids: elseSeq})
	} else {
		snaps = append(snaps, edgeSnap{c, entryVars})
	}
	*seq = append(*seq, node)
	fb.join(snaps, c, seq)
}

// buildLoop builds a while-shaped loop: pessimistic phis at the header
// for the locals the loop assigns (nil assigned = all in scope),
// condition evaluation (possibly multi-block for short-circuit
// operators), body, back edge, and the exit join.
func (fb *fnBuilder) buildLoop(cond ast.Expr, bodyFn func(*[]*core.CSTNode), postAST []ast.Stmt,
	assigned map[*sema.Local]bool, seq *[]*core.CSTNode) {
	c := fb.cur
	h := fb.newBlock(c)
	h.Preds = []core.Pred{{From: c}}
	ctx := &loopCtx{header: h, contToHeader: true, postAST: postAST, triesBase: len(fb.tries)}
	// Single-pass phi placement (Brandis–Mössenböck, with the paper's
	// refinement): one phi per assigned in-scope local; the remaining
	// superfluous ones are pruned by the producer-side DCE.
	for _, l := range fb.scope {
		if assigned != nil && !assigned[l] {
			continue
		}
		phi := fb.addPhi(h, fb.localPlane(l), []core.ValueID{fb.vars[l]})
		fb.vars[l] = phi.ID
		ctx.headerPhis = append(ctx.headerPhis, phiSlot{l, phi})
	}
	fb.loops = append(fb.loops, ctx)

	condSeq := []*core.CSTNode{{Kind: core.CBlock, Block: h}}
	fb.resume(h, &condSeq)
	condV := fb.exprBool(cond)
	condEnd := fb.cur
	condVars := fb.snapshotVars()

	node := &core.CSTNode{Kind: core.CWhile, Block: h, At: condEnd, Cond: condV}
	node.Kids = append(node.Kids, &core.CSTNode{Kind: core.CSeq, Kids: condSeq})

	bodyEntry := fb.newBlock(condEnd)
	bodyEntry.Preds = []core.Pred{{From: condEnd}}
	var bodySeq []*core.CSTNode
	fb.enter(bodyEntry, &bodySeq)
	mark := len(fb.scope)
	bodyFn(&bodySeq)
	fb.popScope(mark)
	if fb.cur != nil {
		// Back edge closes the header phis.
		h.Preds = append(h.Preds, core.Pred{From: fb.cur})
		for _, ps := range ctx.headerPhis {
			ps.phi.Args = append(ps.phi.Args, fb.vars[ps.local])
		}
	}
	node.Kids = append(node.Kids, &core.CSTNode{Kind: core.CSeq, Kids: bodySeq})
	fb.loops = fb.loops[:len(fb.loops)-1]
	*seq = append(*seq, node)

	snaps := append([]edgeSnap{{condEnd, condVars}}, ctx.breakSnaps...)
	fb.join(snaps, condEnd, seq)
}

func (fb *fnBuilder) buildFor(s *ast.ForStmt, seq *[]*core.CSTNode) {
	mark := len(fb.scope)
	if s.Init != nil {
		fb.buildStmt(s.Init, seq)
	}
	if fb.cur == nil {
		fb.popScope(mark)
		return
	}
	cond := s.Cond
	if cond == nil {
		t := &ast.BoolLit{Value: true, P: s.P}
		t.SetTypeInfo(fb.b.prog.Boolean)
		cond = t
	}
	var post []ast.Stmt
	if s.Post != nil {
		post = []ast.Stmt{s.Post}
	}
	assigned := make(map[*sema.Local]bool)
	assignedLocals(assigned, cond, s.Post, s.Body)
	fb.buildLoop(cond, func(bodySeq *[]*core.CSTNode) {
		fb.buildStmt(s.Body, bodySeq)
		// The update part runs after the body on the normal path;
		// continue sites inline it separately.
		if fb.cur != nil {
			fb.buildStmts(post, bodySeq)
		}
	}, post, assigned, seq)
	fb.popScope(mark)
}

func (fb *fnBuilder) buildDoWhile(s *ast.DoWhileStmt, seq *[]*core.CSTNode) {
	c := fb.cur
	bodyEntry := fb.newBlock(c)
	bodyEntry.Preds = []core.Pred{{From: c}}
	ctx := &loopCtx{header: bodyEntry, triesBase: len(fb.tries)}
	assigned := make(map[*sema.Local]bool)
	assignedLocals(assigned, s.Body, s.Cond)
	for _, l := range fb.scope {
		if !assigned[l] {
			continue
		}
		phi := fb.addPhi(bodyEntry, fb.localPlane(l), []core.ValueID{fb.vars[l]})
		fb.vars[l] = phi.ID
		ctx.headerPhis = append(ctx.headerPhis, phiSlot{l, phi})
	}
	fb.loops = append(fb.loops, ctx)

	bodySeq := []*core.CSTNode{{Kind: core.CBlock, Block: bodyEntry}}
	fb.resume(bodyEntry, &bodySeq)
	mark := len(fb.scope)
	fb.buildStmt(s.Body, &bodySeq)
	fb.popScope(mark)

	// Latch join: continue edges first (walk-encounter order), then the
	// body fall-through.
	latchSnaps := append([]edgeSnap(nil), ctx.contSnaps...)
	if fb.cur != nil {
		latchSnaps = append(latchSnaps, edgeSnap{fb.cur, fb.snapshotVars()})
	}
	fb.loops = fb.loops[:len(fb.loops)-1]

	if len(latchSnaps) == 0 {
		// The body never reaches the condition: the loop runs at most
		// once and degenerates to its body.
		*seq = append(*seq, &core.CSTNode{Kind: core.CSeq, Kids: bodySeq})
		fb.join(ctx.breakSnaps, bodyEntry, seq)
		return
	}

	var latchSeq []*core.CSTNode
	fb.join(latchSnaps, bodyEntry, &latchSeq)
	condV := fb.exprBool(s.Cond)
	condEnd := fb.cur
	condVars := fb.snapshotVars()

	// Back edge.
	bodyEntry.Preds = append(bodyEntry.Preds, core.Pred{From: condEnd})
	for _, ps := range ctx.headerPhis {
		ps.phi.Args = append(ps.phi.Args, fb.vars[ps.local])
	}

	node := &core.CSTNode{Kind: core.CDoWhile, Block: bodyEntry, At: condEnd, Cond: condV}
	node.Kids = []*core.CSTNode{
		{Kind: core.CSeq, Kids: bodySeq},
		{Kind: core.CSeq, Kids: latchSeq},
	}
	*seq = append(*seq, node)

	snaps := append([]edgeSnap{{condEnd, condVars}}, ctx.breakSnaps...)
	fb.join(snaps, bodyEntry, seq)
}

// inlineFinallies builds the finally blocks of the try contexts from
// fb.tries[base:] (innermost first) into the current path, as performed
// on every break/continue/return that leaves them.
func (fb *fnBuilder) inlineFinallies(base int, seq *[]*core.CSTNode) {
	if fb.inFinally > 0 {
		return
	}
	for i := len(fb.tries) - 1; i >= base; i-- {
		t := fb.tries[i]
		if t.finallyAST == nil || fb.cur == nil {
			continue
		}
		fb.inFinally++
		mark := len(fb.scope)
		fb.buildStmts(t.finallyAST.Stmts, seq)
		fb.popScope(mark)
		fb.inFinally--
	}
}

func (fb *fnBuilder) buildReturn(s *ast.ReturnStmt, seq *[]*core.CSTNode) {
	var v core.ValueID
	if s.X != nil {
		// Evaluate the result before any finally blocks run.
		want := fb.m.Return
		v = fb.exprConv(s.X, want)
	}
	if fb.cur == nil {
		return
	}
	fb.inlineFinallies(0, seq)
	if fb.cur == nil {
		return
	}
	*seq = append(*seq, &core.CSTNode{Kind: core.CReturn, Val: v, At: fb.cur})
	fb.cur = nil
}

func (fb *fnBuilder) buildBreak(seq *[]*core.CSTNode) {
	ctx := fb.loops[len(fb.loops)-1]
	fb.inlineFinallies(ctx.triesBase, seq)
	if fb.cur == nil {
		return
	}
	ctx.breakSnaps = append(ctx.breakSnaps, edgeSnap{fb.cur, fb.snapshotVars()})
	*seq = append(*seq, &core.CSTNode{Kind: core.CBreak})
	fb.cur = nil
}

func (fb *fnBuilder) buildContinue(seq *[]*core.CSTNode) {
	ctx := fb.loops[len(fb.loops)-1]
	fb.inlineFinallies(ctx.triesBase, seq)
	if fb.cur == nil {
		return
	}
	// For-loop update code runs on the continue path.
	if len(ctx.postAST) > 0 {
		fb.buildStmts(ctx.postAST, seq)
		if fb.cur == nil {
			return
		}
	}
	if ctx.contToHeader {
		ctx.header.Preds = append(ctx.header.Preds, core.Pred{From: fb.cur})
		for _, ps := range ctx.headerPhis {
			ps.phi.Args = append(ps.phi.Args, fb.vars[ps.local])
		}
	} else {
		ctx.contSnaps = append(ctx.contSnaps, edgeSnap{fb.cur, fb.snapshotVars()})
	}
	*seq = append(*seq, &core.CSTNode{Kind: core.CContinue})
	fb.cur = nil
}

// throwValue routes a throw: to the innermost handler when inside a try
// body (with a variable snapshot for the exception phis), otherwise out
// of the function.
func (fb *fnBuilder) throwValue(v core.ValueID, seq *[]*core.CSTNode) {
	tv := fb.adjustRef(v, fb.tt().Throwable)
	node := &core.CSTNode{Kind: core.CThrow, Val: tv, At: fb.cur}
	if t := fb.routingTry(); t != nil {
		t.sites = append(t.sites, siteSnap{from: fb.cur, throw: node, vars: fb.snapshotVars()})
	}
	*seq = append(*seq, node)
	fb.cur = nil
}

func (fb *fnBuilder) buildTry(s *ast.TryStmt, seq *[]*core.CSTNode) {
	c := fb.cur
	entryScope := len(fb.scope)
	scopeAtEntry := append([]*sema.Local(nil), fb.scope...)

	ctx := &tryCtx{finallyAST: s.Finally, routing: true}
	fb.tries = append(fb.tries, ctx)

	bodyEntry := fb.newBlock(c)
	bodyEntry.Preds = []core.Pred{{From: c}}
	var bodySeq []*core.CSTNode
	fb.enter(bodyEntry, &bodySeq)
	fb.buildStmts(s.Body.Stmts, &bodySeq)
	fb.popScope(entryScope)
	ctx.routing = false
	// Normal-path finally.
	if fb.cur != nil && s.Finally != nil {
		fb.inFinally++
		fb.buildStmts(s.Finally.Stmts, &bodySeq)
		fb.popScope(entryScope)
		fb.inFinally--
	}
	var bodyEnd *core.Block
	var bodyVars snapshot
	if fb.cur != nil {
		bodyEnd, bodyVars = fb.cur, fb.snapshotVars()
	}

	if len(ctx.sites) == 0 {
		// Nothing inside the body can throw: no handler is needed and
		// the whole statement reduces to its body.
		fb.tries = fb.tries[:len(fb.tries)-1]
		*seq = append(*seq, &core.CSTNode{Kind: core.CSeq, Kids: bodySeq})
		fb.cur = bodyEnd
		if bodyEnd != nil {
			fb.vars = bodyVars
		}
		return
	}

	// Handler block: exception phis over every potential point of
	// exception, then the caught value and the catch-type dispatch.
	h := fb.newBlock(c)
	for i, site := range ctx.sites {
		h.Preds = append(h.Preds, core.Pred{From: site.from, Site: site.site})
		if site.site != nil {
			fb.f.ExcEdge[site.site] = i
			fb.f.HandlerOf[site.site] = h
		} else {
			fb.f.ThrowEdge[site.throw] = i
			fb.f.ThrowHandler[site.throw] = h
		}
	}
	hVars := make(snapshot)
	for _, l := range scopeAtEntry {
		args := make([]core.ValueID, len(ctx.sites))
		for k, site := range ctx.sites {
			args[k] = site.vars[l]
		}
		hVars[l] = fb.addPhi(h, fb.localPlane(l), args).ID
	}
	fb.vars = hVars
	handlerSeq := []*core.CSTNode{{Kind: core.CBlock, Block: h}}
	fb.resume(h, &handlerSeq)
	caught := fb.emit(&core.Instr{Op: core.OpCatch, Type: fb.tt().Throwable})

	fb.buildCatchChain(s, 0, caught, &handlerSeq)
	var handlerEnd *core.Block
	var handlerVars snapshot
	if fb.cur != nil {
		handlerEnd, handlerVars = fb.cur, fb.snapshotVars()
	}
	fb.tries = fb.tries[:len(fb.tries)-1]

	node := &core.CSTNode{Kind: core.CTry, Handler: h}
	node.Kids = []*core.CSTNode{
		{Kind: core.CSeq, Kids: bodySeq},
		{Kind: core.CSeq, Kids: handlerSeq},
	}
	*seq = append(*seq, node)

	var snaps []edgeSnap
	if bodyEnd != nil {
		snaps = append(snaps, edgeSnap{bodyEnd, bodyVars})
	}
	if handlerEnd != nil {
		snaps = append(snaps, edgeSnap{handlerEnd, handlerVars})
	}
	fb.join(snaps, c, seq)
}

// buildCatchChain lowers the catch clauses into an instanceof dispatch
// chain; the final arm inlines the finally block and rethrows, giving
// the "default, possibly empty, catch block" of section 7.
func (fb *fnBuilder) buildCatchChain(s *ast.TryStmt, i int, caught core.ValueID, seq *[]*core.CSTNode) {
	tt := fb.tt()
	if i == len(s.Catches) {
		if s.Finally != nil {
			fb.inFinally++
			mark := len(fb.scope)
			fb.buildStmts(s.Finally.Stmts, seq)
			fb.popScope(mark)
			fb.inFinally--
		}
		if fb.cur != nil {
			fb.throwValue(caught, seq)
		}
		return
	}
	cc := s.Catches[i]
	ccLocal := fb.b.prog.CatchLocal[cc]
	declType := fb.b.typeOf(ccLocal.Type)

	condV := fb.emit(&core.Instr{
		Op: core.OpInstanceOf, Type: tt.Boolean,
		ArgType: tt.Throwable, TypeArg: declType,
		Args: []core.ValueID{caught},
	})
	c := fb.cur
	node := &core.CSTNode{Kind: core.CIf, At: c, Cond: condV}
	entryVars := fb.snapshotVars()

	armEntry := fb.newBlock(c)
	armEntry.Preds = []core.Pred{{From: c}}
	var armSeq []*core.CSTNode
	fb.enter(armEntry, &armSeq)
	bind := fb.emit(&core.Instr{
		Op: core.OpUpcast, Type: declType,
		ArgType: tt.Throwable, TypeArg: declType,
		Args: []core.ValueID{caught},
	})
	mark := len(fb.scope)
	fb.vars[ccLocal] = bind
	fb.scope = append(fb.scope, ccLocal)
	fb.buildStmts(cc.Body.Stmts, &armSeq)
	fb.popScope(mark)
	if fb.cur != nil && s.Finally != nil {
		fb.inFinally++
		fb.buildStmts(s.Finally.Stmts, &armSeq)
		fb.popScope(mark)
		fb.inFinally--
	}
	node.Kids = append(node.Kids, &core.CSTNode{Kind: core.CSeq, Kids: armSeq})

	var snaps []edgeSnap
	if fb.cur != nil {
		snaps = append(snaps, edgeSnap{fb.cur, fb.snapshotVars()})
	}

	fb.vars = entryVars.clone()
	elseEntry := fb.newBlock(c)
	elseEntry.Preds = []core.Pred{{From: c}}
	var elseSeq []*core.CSTNode
	fb.enter(elseEntry, &elseSeq)
	fb.buildCatchChain(s, i+1, caught, &elseSeq)
	if fb.cur != nil {
		snaps = append(snaps, edgeSnap{fb.cur, fb.snapshotVars()})
	}
	node.Kids = append(node.Kids, &core.CSTNode{Kind: core.CSeq, Kids: elseSeq})

	*seq = append(*seq, node)
	fb.join(snaps, c, seq)
}
