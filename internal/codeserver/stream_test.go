package codeserver

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"safetsa/internal/driver"
	"safetsa/internal/wire"
)

// streamSrc has helper methods behind the entry on the wire, so the
// streaming path has a real prefix to execute early.
const streamSrc = `
class Acc {
    int n;
    Acc(int v) { n = v; }
    int add(int d) { n += d; return n; }
    int sq() { return n * n; }
}
class Main {
    static void main() {
        Acc a = new Acc(4);
        a.add(3);
        System.out.println(a.sq());
    }
}
`

// streamUnit compiles streamSrc and encodes it at the given wire
// version, returning the bytes and the expected output.
func streamUnit(t *testing.T, v2 bool) ([]byte, string) {
	t.Helper()
	mod, err := driver.CompileTSASource(map[string]string{"Main.tj": streamSrc})
	if err != nil {
		t.Fatal(err)
	}
	want, err := driver.RunModule(mod, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v2 {
		return wire.EncodeModuleV2(mod, nil), want
	}
	return wire.EncodeModule(mod), want
}

// TestHTTPRunStream drives POST /run-stream end to end: the unit
// executes, the response carries the output and a content hash, and the
// admitted bytes land in the unit store (servable via GET /unit).
func TestHTTPRunStream(t *testing.T) {
	for _, v2 := range []bool{false, true} {
		name := "v1"
		if v2 {
			name = "v2"
		}
		t.Run(name, func(t *testing.T) {
			s := newTestServer(t, Config{})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			data, want := streamUnit(t, v2)
			resp, err := http.Post(ts.URL+"/run-stream?max_steps=1000000", "application/octet-stream", bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				t.Fatalf("run-stream status %d: %s", resp.StatusCode, body)
			}
			rr := decodeBody[RunStreamResult](t, resp)
			if !rr.OK || rr.Output != want {
				t.Fatalf("stream run result %+v, want output %q", rr, want)
			}
			if rr.Hash == "" {
				t.Fatal("stream run returned no content hash")
			}

			// The admitted unit is cached byte-identically under its
			// wire key and servable.
			resp, err = http.Get(ts.URL + "/unit/" + rr.Hash)
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("unit fetch: status %d, err %v", resp.StatusCode, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("cached stream unit differs from the delivered bytes")
			}

			st := s.Stats()
			if st.UnitsCached != 1 {
				t.Fatalf("units cached = %d, want 1", st.UnitsCached)
			}
			if st.StreamRejects != 0 {
				t.Fatalf("stream rejects = %d, want 0", st.StreamRejects)
			}
			if st.WireDecodeStreamLatency.Count == 0 {
				t.Fatal("wire_decode_stream stage recorded no samples")
			}
		})
	}
}

// TestHTTPRunStreamPartialDelivery truncates the stream at every
// function boundary and at mid-varint cuts around them: every request
// must be rejected as a verify error, and afterwards NOTHING may sit in
// either cache tier — no encoded unit, no decoded module.
func TestHTTPRunStreamPartialDelivery(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	data, _ := streamUnit(t, true)
	su, err := wire.DecodeVerifiedStream(bytes.NewReader(data), wire.DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := su.Wait(); err != nil {
		t.Fatal(err)
	}

	cuts := map[int64]bool{0: true, 1: true, 5: true}
	for _, b := range su.Boundaries() {
		for _, c := range []int64{b - 1, b, b + 1} {
			if c >= 0 && c < int64(len(data)) {
				cuts[c] = true
			}
		}
	}
	rejects := 0
	for cut := range cuts {
		resp, err := http.Post(ts.URL+"/run-stream", "application/octet-stream", bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("truncation to %d/%d bytes was accepted: %s", cut, len(data), body)
		}
		if !strings.Contains(string(body), "verify") && !strings.Contains(string(body), "rejected") {
			t.Fatalf("cut %d: unexpected rejection shape: %s", cut, body)
		}
		rejects++
	}

	st := s.Stats()
	if st.UnitsCached != 0 || st.ModulesLoaded != 0 {
		t.Fatalf("partial deliveries leaked into the caches: units=%d modules=%d",
			st.UnitsCached, st.ModulesLoaded)
	}
	if st.StreamRejects != uint64(rejects) {
		t.Fatalf("stream rejects = %d, want %d", st.StreamRejects, rejects)
	}
}

// TestHTTPRunStreamTrailingGarbage: a complete, valid unit followed by
// trailing bytes is rejected by the streaming path too — one spelling
// on the wire — and does not enter the cache even though the guest may
// already have executed.
func TestHTTPRunStreamTrailingGarbage(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	data, _ := streamUnit(t, true)
	garbled := append(bytes.Clone(data), 0x00, 0xAB)
	resp, err := http.Post(ts.URL+"/run-stream", "application/octet-stream", bytes.NewReader(garbled))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("trailing garbage accepted: %s", body)
	}
	if st := s.Stats(); st.UnitsCached != 0 {
		t.Fatalf("garbled stream cached: units=%d", st.UnitsCached)
	}
}

// TestRunStreamRejectsNonReferenceEngine: the streaming path only
// serves the reference engine; asking for another is a clean user
// error, not a surprise fallback.
func TestRunStreamRejectsNonReferenceEngine(t *testing.T) {
	s := newTestServer(t, Config{})
	data, _ := streamUnit(t, true)
	_, err := s.RunUnitStream(t.Context(), bytes.NewReader(data), RunOptions{Engine: driver.EngineCompiled})
	if err == nil || !strings.Contains(err.Error(), "reference") {
		t.Fatalf("compiled-engine stream run: %v", err)
	}
}

// TestWireVersionCacheKey: the configured wire version is part of unit
// identity — the same source compiled under v1 and v2 servers yields
// different keys and differently encoded units, and each server's unit
// decodes with the matching decoder.
func TestWireVersionCacheKey(t *testing.T) {
	k1 := KeyFor(helloFiles(), Options{Optimize: true})
	k2 := KeyFor(helloFiles(), Options{Optimize: true, WireV2: true})
	if k1 == k2 {
		t.Fatal("wire version does not affect the cache key")
	}

	s2 := newTestServer(t, Config{WireVersion: 2})
	unit, _, err := s2.CompileUnit(t.Context(), helloFiles(), Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if unit.Key != k2 {
		t.Fatalf("v2 server key %s, want %s", unit.Key, k2)
	}
	if _, err := wire.DecodeModuleV1(unit.Wire); err == nil {
		t.Fatal("v2 server emitted a unit a v1-only consumer accepts")
	}
	if _, err := wire.DecodeVerified(unit.Wire); err != nil {
		t.Fatalf("v2 unit does not decode: %v", err)
	}
}
