package codeserver

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"safetsa/internal/core"
	"safetsa/internal/driver"
	"safetsa/internal/interp"
	"safetsa/internal/obs"
	"safetsa/internal/wire"
)

// LoadedUnit is a decoded and verified module held by the loader cache,
// together with its prepared register-machine form and its
// closure-threaded compiled form.
//
// Shared-module invariant (see interp.LoadTrusted): Mod, Prep, and Comp
// are shared read-only between every concurrent execution session of
// this unit. Each session builds its own class metadata, static
// storage, and heap from a fresh rt.Env, so nothing here is ever
// mutated after load. Preparation and backend compilation happen once
// per distinct unit, under the same singleflight as decode+verify, no
// matter how many sessions run it.
type LoadedUnit struct {
	Key    Key
	Mod    *core.Module
	Prep   *interp.Prepared
	Comp   *interp.Compiled
	Instrs int
}

// LoaderCache is the consumer-side cache: it decodes and verifies a wire
// image exactly once (singleflight, like the store) and then hands the
// immutable module to any number of interpreter sessions.
type LoaderCache struct {
	max int
	m   *Metrics

	mu       sync.Mutex
	entries  map[Key]*list.Element
	order    *list.List
	inflight map[Key]*loadCall
}

type loadCall struct {
	done chan struct{}
	unit *LoadedUnit
	err  error
}

// NewLoaderCache creates a cache holding at most maxModules decoded
// modules (<=0 for a default of 256).
func NewLoaderCache(maxModules int, m *Metrics) *LoaderCache {
	if maxModules <= 0 {
		maxModules = 256
	}
	return &LoaderCache{
		max:      maxModules,
		m:        m,
		entries:  make(map[Key]*list.Element),
		order:    list.New(),
		inflight: make(map[Key]*loadCall),
	}
}

// Len reports the number of resident decoded modules.
func (c *LoaderCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// GetOrLoad returns the loaded unit for k, fetching the wire bytes and
// running decode+verify only on a miss. The decode and verify latencies
// feed the metrics; a unit already resident is served without touching
// the wire decoder again.
func (c *LoaderCache) GetOrLoad(ctx context.Context, k Key, fetch func() ([]byte, error)) (*LoadedUnit, error) {
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		c.order.MoveToFront(el)
		c.mu.Unlock()
		c.m.loaderHits.Add(1)
		return el.Value.(*LoadedUnit), nil
	}
	if fl, ok := c.inflight[k]; ok {
		c.mu.Unlock()
		select {
		case <-fl.done:
			return fl.unit, fl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	fl := &loadCall{done: make(chan struct{})}
	c.inflight[k] = fl
	c.mu.Unlock()

	u, err := c.load(ctx, k, fetch)
	fl.unit, fl.err = u, err
	c.mu.Lock()
	delete(c.inflight, k)
	if err == nil {
		c.entries[k] = c.order.PushFront(u)
		for c.order.Len() > c.max {
			back := c.order.Back()
			old := back.Value.(*LoadedUnit)
			c.order.Remove(back)
			delete(c.entries, old.Key)
			c.m.loaderEvict.Add(1)
		}
	}
	c.mu.Unlock()
	close(fl.done)
	return u, err
}

func (c *LoaderCache) load(ctx context.Context, k Key, fetch func() ([]byte, error)) (*LoadedUnit, error) {
	data, err := fetch()
	if err != nil {
		c.m.loadErrors.Add(1)
		return nil, err
	}
	_, dsp := obs.Start(ctx, "decode")
	start := time.Now()
	mod, err := wire.DecodeModule(data)
	c.m.decodeHist.Observe(time.Since(start))
	dsp.End()
	if err != nil {
		c.m.loadErrors.Add(1)
		return nil, &driver.Error{Kind: driver.KindVerify,
			Err: fmt.Errorf("codeserver: unit %s: %w", k, err)}
	}
	_, vsp := obs.Start(ctx, "verify")
	start = time.Now()
	err = mod.Verify(core.VerifyOptions{})
	c.m.verifyHist.Observe(time.Since(start))
	vsp.End()
	if err != nil {
		c.m.loadErrors.Add(1)
		return nil, &driver.Error{Kind: driver.KindVerify,
			Err: fmt.Errorf("codeserver: unit %s rejected by verifier: %w", k, err)}
	}
	_, psp := obs.Start(ctx, "prepare")
	start = time.Now()
	prep, err := interp.Prepare(mod)
	c.m.prepareHist.Observe(time.Since(start))
	psp.End()
	if err != nil {
		c.m.loadErrors.Add(1)
		return nil, &driver.Error{Kind: driver.KindVerify,
			Err: fmt.Errorf("codeserver: unit %s failed to prepare: %w", k, err)}
	}
	_, csp := obs.Start(ctx, "compile_backend")
	start = time.Now()
	comp, err := interp.Compile(mod, prep)
	c.m.compileBackendHist.Observe(time.Since(start))
	csp.End()
	if err != nil {
		c.m.loadErrors.Add(1)
		return nil, &driver.Error{Kind: driver.KindVerify,
			Err: fmt.Errorf("codeserver: unit %s failed to compile: %w", k, err)}
	}
	c.m.loads.Add(1)
	return &LoadedUnit{Key: k, Mod: mod, Prep: prep, Comp: comp, Instrs: mod.NumInstrs()}, nil
}
