package codeserver

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestPrometheusGolden pins the /metrics wire contract: a hand-populated
// Metrics renders byte-identically to testdata/metrics.golden, so any
// change to metric names, label sets, bucket layout, or units shows up
// as a diff here.
func TestPrometheusGolden(t *testing.T) {
	m := &Metrics{}
	m.compileRequests.Store(100)
	m.cacheHits.Store(60)
	m.diskHits.Store(5)
	m.compiles.Store(20)
	m.coalesced.Store(14)
	m.compileErrors.Store(1)
	m.compilesInFlight.Store(2)
	m.evictions.Store(3)
	m.loads.Store(18)
	m.loaderHits.Store(40)
	m.loadErrors.Store(1)
	m.loaderEvict.Store(2)
	m.runs.Store(58)
	m.runErrors.Store(4)
	m.runsInFlight.Store(1)
	m.guestSteps.Store(123456)
	m.guestAllocs.Store(7890)
	m.stepLimitKills.Store(2)
	m.allocLimitKills.Store(1)
	m.interruptKills.Store(1)
	m.deadlineKills.Store(1)
	m.poolHits.Store(30)
	m.poolBuilds.Store(6)
	m.poolDeclines.Store(2)
	m.poolEvictions.Store(1)
	m.tenantRejects.Store(5)
	// Two tenants so the per-tenant families and the (reason, tenant)
	// kill matrix render with a deterministic multi-row shape.
	acme := m.tenant("acme")
	acme.runs.Store(40)
	acme.rejects.Store(5)
	acme.inFlight.Store(1)
	acme.steps.Store(100000)
	acme.allocs.Store(6000)
	acme.kills[killIdx("step_limit")].Store(2)
	acme.kills[killIdx("alloc_limit")].Store(1)
	anon := m.tenant(DefaultTenant)
	anon.runs.Store(18)
	anon.steps.Store(23456)
	anon.allocs.Store(1890)
	anon.kills[killIdx("interrupt")].Store(1)
	anon.kills[killIdx("deadline")].Store(1)
	// Deterministic histogram contents: one sample per stage in known
	// buckets plus one overflow sample for compile.
	m.compileHist.Observe(3 * time.Millisecond)
	m.compileHist.Observe(12 * time.Millisecond)
	m.compileHist.Observe(500 * time.Second) // overflow bucket
	m.decodeHist.Observe(80 * time.Microsecond)
	m.verifyHist.Observe(200 * time.Microsecond)
	m.prepareHist.Observe(50 * time.Microsecond)
	m.compileBackendHist.Observe(120 * time.Microsecond)
	m.runHist.Observe(1500 * time.Microsecond)
	m.runHist.Observe(900 * time.Nanosecond)

	var sb strings.Builder
	m.WritePrometheus(&sb, 7, 4, 3)
	got := sb.String()

	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/codeserver -update` to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("/metrics rendering drifted from golden file; if intended, "+
			"regenerate with `go test ./internal/codeserver -update`.\ngot:\n%s", got)
	}
}

// promValue extracts the value of one exposition line by exact
// metric-name-with-labels match.
func promValue(t *testing.T, text, series string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, series+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, series+" "), 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not found in:\n%s", series, text)
	return 0
}

// TestMetricsEndpointMatchesCounters is the acceptance check for the
// observability layer: after real compile/run traffic, /metrics serves
// per-stage histograms whose sample counts equal the request counters of
// /stats.
func TestMetricsEndpointMatchesCounters(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/compile", CompileRequest{Files: helloFiles(), Optimize: true})
	cr := decodeBody[CompileResponse](t, resp)
	for i := 0; i < 3; i++ {
		resp = postJSON(t, ts.URL+"/run/"+cr.Hash, RunRequest{})
		decodeBody[RunResult](t, resp)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	st := s.Stats()

	if got := promValue(t, text, `safetsa_stage_duration_seconds_count{stage="compile"}`); got != float64(st.Compiles) {
		t.Errorf("compile histogram count %v != compiles %d", got, st.Compiles)
	}
	if got := promValue(t, text, `safetsa_stage_duration_seconds_count{stage="decode"}`); got != float64(st.Loads) {
		t.Errorf("decode histogram count %v != loads %d", got, st.Loads)
	}
	if got := promValue(t, text, `safetsa_stage_duration_seconds_count{stage="verify"}`); got != float64(st.Loads) {
		t.Errorf("verify histogram count %v != loads %d", got, st.Loads)
	}
	if got := promValue(t, text, `safetsa_stage_duration_seconds_count{stage="run"}`); got != float64(st.Runs) {
		t.Errorf("run histogram count %v != runs %d", got, st.Runs)
	}
	if got := promValue(t, text, "safetsa_compile_requests_total"); got != float64(st.CompileRequests) {
		t.Errorf("compile_requests %v != %d", got, st.CompileRequests)
	}
	if got := promValue(t, text, "safetsa_runs_total"); got != 3 {
		t.Errorf("runs_total %v, want 3", got)
	}
	if got := promValue(t, text, "safetsa_guest_steps_total"); got <= 0 {
		t.Errorf("guest_steps_total %v, want > 0", got)
	}
}

// TestDebugTracesJSONShape pins the wire contract of /debug/traces: a
// {"traces": [...]} array where a compile trace carries the nested
// producer stages (store fill → frontend → parse/sema, ...) and a run
// trace carries load (with decode/verify below it) and exec.
func TestDebugTracesJSONShape(t *testing.T) {
	s := newTestServer(t, Config{Traces: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Empty server: still a well-formed (empty) array.
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var raw struct {
		Traces []json.RawMessage `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("traces response is not JSON: %v", err)
	}
	resp.Body.Close()
	if raw.Traces == nil {
		t.Error("empty /debug/traces did not serve an array")
	}

	resp = postJSON(t, ts.URL+"/compile", CompileRequest{Files: helloFiles(), Optimize: true})
	cr := decodeBody[CompileResponse](t, resp)
	resp = postJSON(t, ts.URL+"/run/"+cr.Hash, RunRequest{})
	decodeBody[RunResult](t, resp)

	resp, err = http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	type span struct {
		Name          string `json:"name"`
		OffsetNanos   *int64 `json:"offset_nanos"`
		DurationNanos *int64 `json:"duration_nanos"`
		Children      []span `json:"children"`
	}
	type trace struct {
		ID             uint64 `json:"id"`
		Name           string `json:"name"`
		StartUnixNanos int64  `json:"start_unix_nanos"`
		DurationNanos  int64  `json:"duration_nanos"`
		Spans          []span `json:"spans"`
	}
	var got struct {
		Traces []trace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(got.Traces) != 2 {
		t.Fatalf("got %d traces, want 2 (compile, run)", len(got.Traces))
	}
	// Most recent first: run, then compile.
	if got.Traces[0].Name != "run" || got.Traces[1].Name != "compile" {
		t.Fatalf("trace order [%s %s], want [run compile]", got.Traces[0].Name, got.Traces[1].Name)
	}
	if got.Traces[0].ID <= got.Traces[1].ID {
		t.Errorf("trace IDs not increasing: %d then %d", got.Traces[1].ID, got.Traces[0].ID)
	}

	// flatten collects span names at any depth.
	var flatten func(sps []span, into map[string][]span)
	flatten = func(sps []span, into map[string][]span) {
		for _, sp := range sps {
			into[sp.Name] = append(into[sp.Name], sp)
			flatten(sp.Children, into)
		}
	}

	compile := got.Traces[1]
	if compile.StartUnixNanos <= 0 || compile.DurationNanos < 0 {
		t.Errorf("bad compile trace header: %+v", compile)
	}
	cspans := map[string][]span{}
	flatten(compile.Spans, cspans)
	for _, want := range []string{"fill", "frontend", "parse", "sema", "ssabuild", "build", "verify", "optimize", "passes", "encode"} {
		if len(cspans[want]) == 0 {
			t.Errorf("compile trace missing span %q (have %v)", want, keys(cspans))
		}
	}
	// Nesting: parse and sema sit under frontend, not at the top level.
	var frontend *span
	var walk func(sps []span)
	walk = func(sps []span) {
		for i := range sps {
			if sps[i].Name == "frontend" {
				frontend = &sps[i]
			}
			walk(sps[i].Children)
		}
	}
	walk(compile.Spans)
	if frontend == nil {
		t.Fatal("no frontend span")
	}
	names := map[string]bool{}
	for _, c := range frontend.Children {
		names[c.Name] = true
	}
	if !names["parse"] || !names["sema"] {
		t.Errorf("frontend children = %v, want parse and sema nested inside", frontend.Children)
	}
	for _, sp := range frontend.Children {
		if sp.OffsetNanos == nil || sp.DurationNanos == nil {
			t.Errorf("span %s missing offset/duration fields", sp.Name)
		}
	}

	run := got.Traces[0]
	rspans := map[string][]span{}
	flatten(run.Spans, rspans)
	for _, want := range []string{"load", "decode", "verify", "exec"} {
		if len(rspans[want]) == 0 {
			t.Errorf("run trace missing span %q (have %v)", want, keys(rspans))
		}
	}
	// decode/verify nest under load.
	for _, top := range run.Spans {
		if top.Name != "load" {
			continue
		}
		n := map[string]bool{}
		for _, c := range top.Children {
			n[c.Name] = true
		}
		if !n["decode"] || !n["verify"] {
			t.Errorf("load children = %+v, want decode and verify", top.Children)
		}
	}
}

func keys[V any](m map[string][]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTraceRingBounded: the server retains at most Config.Traces traces.
func TestTraceRingBounded(t *testing.T) {
	s := newTestServer(t, Config{Traces: 3})
	ctx := context.Background()
	for i := 0; i < 9; i++ {
		files := map[string]string{"A.tj": fmt.Sprintf(`
class A { static void main() { System.out.println(%d); } }`, i)}
		if _, _, err := s.CompileUnit(ctx, files, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.tracer.Recent()); got != 3 {
		t.Errorf("retained %d traces, want 3", got)
	}
}

// TestLegacyNanosMonotonic is the compatibility regression test: the
// legacy cumulative compile_nanos/decode_nanos/verify_nanos/run_nanos
// keys are now derived from the histograms but must keep behaving as
// before — nonnegative and monotonically nondecreasing across
// snapshots, increasing when work actually happens — and must equal the
// corresponding histogram sums exactly.
func TestLegacyNanosMonotonic(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()

	legacy := func(st Stats) [4]int64 {
		return [4]int64{st.CompileNanos, st.DecodeNanos, st.VerifyNanos, st.RunNanos}
	}
	prev := legacy(s.Stats())
	for _, v := range prev {
		if v != 0 {
			t.Fatalf("fresh server has nonzero latency totals: %v", prev)
		}
	}

	var unitKey Key
	for i := 0; i < 3; i++ {
		files := map[string]string{"M.tj": fmt.Sprintf(`
class M { static void main() { System.out.println(%d); } }`, i)}
		u, _, err := s.CompileUnit(ctx, files, Options{Optimize: true})
		if err != nil {
			t.Fatal(err)
		}
		unitKey = u.Key
		if _, err := s.RunUnit(ctx, unitKey, 0); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		cur := legacy(st)
		for j, name := range []string{"compile_nanos", "decode_nanos", "verify_nanos", "run_nanos"} {
			if cur[j] < prev[j] {
				t.Errorf("iteration %d: %s went backwards: %d -> %d", i, name, prev[j], cur[j])
			}
		}
		prev = cur

		// Derivation contract: legacy totals are exactly the histogram sums.
		if st.CompileNanos != st.CompileLatency.SumNanos ||
			st.DecodeNanos != st.DecodeLatency.SumNanos ||
			st.VerifyNanos != st.VerifyLatency.SumNanos ||
			st.RunNanos != st.RunLatency.SumNanos {
			t.Errorf("legacy nanos diverge from histogram sums: %+v", st)
		}
	}
	if prev[0] <= 0 || prev[3] <= 0 {
		t.Errorf("compile/run totals did not increase after traffic: %v", prev)
	}

	// A cache hit must not move the compile total (no compile ran).
	before := s.Stats().CompileNanos
	files := map[string]string{"M.tj": `
class M { static void main() { System.out.println(2); } }`}
	if _, cached, err := s.CompileUnit(ctx, files, Options{Optimize: true}); err != nil || !cached {
		t.Fatalf("expected cache hit, got cached=%v err=%v", cached, err)
	}
	if after := s.Stats().CompileNanos; after != before {
		t.Errorf("cache hit moved compile_nanos: %d -> %d", before, after)
	}
}

// TestBudgetKillMetrics: a guest killed by the step budget shows up in
// the kill counters and the budget gauges, not only in the RunResult.
func TestBudgetKillMetrics(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()
	u, _, err := s.CompileUnit(ctx, map[string]string{"Loop.tj": `
class Loop { static void main() { while (true) { } } }`}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunUnit(ctx, u.Key, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("runaway guest reported OK")
	}
	st := s.Stats()
	if st.StepLimitKills != 1 {
		t.Errorf("step_limit_kills = %d, want 1", st.StepLimitKills)
	}
	if st.GuestSteps < 5_000 {
		t.Errorf("guest_steps = %d, want >= step budget", st.GuestSteps)
	}
	if st.RunErrors != 1 {
		t.Errorf("run_errors = %d, want 1", st.RunErrors)
	}
	if st.RunsInFlight != 0 {
		t.Errorf("runs_in_flight = %d after drain", st.RunsInFlight)
	}
	if st.RunLatency.Count != 1 {
		t.Errorf("run histogram count = %d, want 1 (killed runs are still measured)", st.RunLatency.Count)
	}
}
