package codeserver

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
)

// Options selects the producer pipeline variant a unit was built with.
// The options participate in the content hash: the same sources compiled
// with and without optimization are distinct units.
type Options struct {
	Optimize bool `json:"optimize"`
	// ModuleOpt selects the interprocedural optimizer tier (CHA/RTA
	// devirtualization, inlining, flow-based check elimination) on top
	// of the intraprocedural pipeline. Implies Optimize.
	ModuleOpt bool `json:"module_opt"`
	// WireV2 encodes the unit in wire format v2 (adaptive range-coded
	// streams). The wire version is part of the unit's identity: the
	// same sources at v1 and v2 are distinct units with distinct bytes.
	WireV2 bool `json:"wire_v2"`
}

// pipelineVersion is folded into every key so that a pipeline change
// (new optimizer, new wire format) invalidates previously stored units
// instead of serving stale code.
const pipelineVersion = "safetsa-pipeline-v2"

// Key is the content address of a distribution unit: the SHA-256 of the
// pipeline version, the options, and the full, order-independent source
// set (names and contents, length-delimited so concatenation cannot
// collide).
type Key [sha256.Size]byte

// KeyFor computes the content address of a compile request.
func KeyFor(files map[string]string, opts Options) Key {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)

	h := sha256.New()
	var lenBuf [binary.MaxVarintLen64]byte
	writeStr := func(s string) {
		n := binary.PutUvarint(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:n])
		h.Write([]byte(s))
	}
	writeStr(pipelineVersion)
	optByte := func(on bool) {
		if on {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	optByte(opts.Optimize)
	optByte(opts.ModuleOpt)
	optByte(opts.WireV2)
	for _, n := range names {
		writeStr(n)
		writeStr(files[n])
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// KeyForWire computes the content address of a unit delivered as raw
// wire bytes (the streaming run path, where no source set exists). The
// domain is separated from KeyFor so source-addressed and
// wire-addressed units can never collide.
func KeyForWire(data []byte) Key {
	h := sha256.New()
	h.Write([]byte(pipelineVersion + "/wire\x00"))
	h.Write(data)
	var k Key
	h.Sum(k[:0])
	return k
}

// String renders the key as lowercase hex — the {hash} path segment of
// the HTTP API.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form produced by Key.String.
func ParseKey(s string) (Key, error) {
	var k Key
	if len(s) != hex.EncodedLen(len(k)) {
		return k, fmt.Errorf("codeserver: bad unit hash %q", s)
	}
	if _, err := hex.Decode(k[:], []byte(s)); err != nil {
		return k, fmt.Errorf("codeserver: bad unit hash %q: %v", s, err)
	}
	return k, nil
}
