package codeserver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWriteDiskTornWriteRace is the regression test for a torn-write
// race in the disk tier: writeDisk used one fixed "<key>.tmp" scratch
// name, so two concurrent writers for the same key could truncate each
// other's half-written file and rename the torn result into the cache,
// after which loadDisk served a corrupt unit as a hit. With unique temp
// files plus rename, every published file is complete, so a reader may
// see a hit or a miss but never wrong bytes.
func TestWriteDiskTornWriteRace(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 8, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}

	var key Key
	key[0] = 7
	wireBytes := make([]byte, 1<<20)
	for i := range wireBytes {
		wireBytes[i] = byte(i*31 + 7)
	}
	u := &Unit{Key: key, Wire: wireBytes, Size: len(wireBytes), Instrs: 1}
	// Publish once up front so the meta sidecar exists and loadDisk
	// serves the raw wire bytes without a validating decode.
	s.writeDisk(u)

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.writeDisk(u)
				}
			}
		}()
	}

	var readers sync.WaitGroup
	var mu sync.Mutex
	var torn int
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				got, ok := s.loadDisk(key)
				if ok && !bytes.Equal(got.Wire, wireBytes) {
					mu.Lock()
					torn++
					mu.Unlock()
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()

	if torn > 0 {
		t.Fatalf("loadDisk served torn wire bytes %d times", torn)
	}

	// Failed or abandoned publishes must not strand scratch files.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

// mustNotFill is a fill callback for paths that must be served without
// filling; running it is the failure.
func mustNotFill(context.Context) (*Unit, error) {
	return nil, errors.New("fill ran on a path that must not fill")
}

// TestGetOrFillCoalescedCancel: a caller coalesced onto another caller's
// in-flight fill whose context is cancelled must return promptly with
// ctx.Err(), and its departure must not poison the singleflight slot —
// the fill still completes for its owner and later callers hit the
// published unit.
func TestGetOrFillCoalescedCancel(t *testing.T) {
	m := &Metrics{}
	st, err := NewStore("", 0, m)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyFor(map[string]string{"f": "x"}, Options{})

	block := make(chan struct{})
	fillStarted := make(chan struct{})
	ownerDone := make(chan error, 1)
	go func() {
		_, _, err := st.GetOrFill(context.Background(), k, func(context.Context) (*Unit, error) {
			close(fillStarted)
			<-block
			return &Unit{Wire: []byte{1}, Size: 1, Instrs: 1}, nil
		})
		ownerDone <- err
	}()
	<-fillStarted

	// The waiter coalesces onto the in-flight fill, then its ctx dies.
	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := st.GetOrFill(ctx, k, mustNotFill)
		waiterDone <- err
	}()
	for i := 0; m.coalesced.Load() == 0; i++ {
		if i > 4000 {
			t.Fatal("waiter never coalesced onto the in-flight fill")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return promptly")
	}

	// Slot not poisoned: the owner publishes, later callers hit memory.
	close(block)
	if err := <-ownerDone; err != nil {
		t.Fatalf("fill owner failed after waiter cancellation: %v", err)
	}
	u, cached, err := st.GetOrFill(context.Background(), k, mustNotFill)
	if err != nil || !cached || u == nil {
		t.Fatalf("post-cancel lookup: unit %v cached %v err %v, want memory hit", u, cached, err)
	}
}

// TestGetOrFillOwnerCancelDoesNotPoison: when the *filling* caller's ctx
// is cancelled mid-fill, the fill error reaches the owner and every
// coalesced waiter, but the slot is released — the next caller re-runs
// the fill and succeeds.
func TestGetOrFillOwnerCancelDoesNotPoison(t *testing.T) {
	m := &Metrics{}
	st, err := NewStore("", 0, m)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyFor(map[string]string{"f": "y"}, Options{})

	ownerCtx, ownerCancel := context.WithCancel(context.Background())
	fillStarted := make(chan struct{})
	ownerDone := make(chan error, 1)
	go func() {
		_, _, err := st.GetOrFill(ownerCtx, k, func(ctx context.Context) (*Unit, error) {
			close(fillStarted)
			<-ctx.Done()
			return nil, ctx.Err()
		})
		ownerDone <- err
	}()
	<-fillStarted

	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := st.GetOrFill(context.Background(), k, mustNotFill)
		waiterDone <- err
	}()
	for i := 0; m.coalesced.Load() == 0; i++ {
		if i > 4000 {
			t.Fatal("waiter never coalesced onto the in-flight fill")
		}
		time.Sleep(time.Millisecond)
	}
	ownerCancel()
	for i, done := range []chan error{ownerDone, waiterDone} {
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("caller %d returned %v, want context.Canceled", i, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("caller %d did not observe the failed fill", i)
		}
	}

	// The failed fill is not cached: a fresh caller retries and wins.
	u, cached, err := st.GetOrFill(context.Background(), k, func(context.Context) (*Unit, error) {
		return &Unit{Wire: []byte{2}, Size: 1, Instrs: 1}, nil
	})
	if err != nil || cached || u == nil {
		t.Fatalf("retry after failed fill: unit %v cached %v err %v, want fresh fill", u, cached, err)
	}
}

// TestStorePutPublishesBothTiers covers the replica landing point: Put
// makes the unit visible in memory and persists it so a restarted node
// still holds its replicas.
func TestStorePutPublishesBothTiers(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, 8, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	var k Key
	k[0] = 9
	st.Put(&Unit{Key: k, Wire: []byte{1, 2, 3}, Size: 3, Instrs: 1})
	if _, ok := st.Get(k); !ok {
		t.Fatal("Put unit not resident in memory")
	}
	if _, err := os.Stat(fmt.Sprintf("%s/%s.tsa", dir, k)); err != nil {
		t.Fatalf("Put unit not persisted: %v", err)
	}
}
