package codeserver

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"
)

// TestWriteDiskTornWriteRace is the regression test for a torn-write
// race in the disk tier: writeDisk used one fixed "<key>.tmp" scratch
// name, so two concurrent writers for the same key could truncate each
// other's half-written file and rename the torn result into the cache,
// after which loadDisk served a corrupt unit as a hit. With unique temp
// files plus rename, every published file is complete, so a reader may
// see a hit or a miss but never wrong bytes.
func TestWriteDiskTornWriteRace(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 8, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}

	var key Key
	key[0] = 7
	wireBytes := make([]byte, 1<<20)
	for i := range wireBytes {
		wireBytes[i] = byte(i*31 + 7)
	}
	u := &Unit{Key: key, Wire: wireBytes, Size: len(wireBytes), Instrs: 1}
	// Publish once up front so the meta sidecar exists and loadDisk
	// serves the raw wire bytes without a validating decode.
	s.writeDisk(u)

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.writeDisk(u)
				}
			}
		}()
	}

	var readers sync.WaitGroup
	var mu sync.Mutex
	var torn int
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				got, ok := s.loadDisk(key)
				if ok && !bytes.Equal(got.Wire, wireBytes) {
					mu.Lock()
					torn++
					mu.Unlock()
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()

	if torn > 0 {
		t.Fatalf("loadDisk served torn wire bytes %d times", torn)
	}

	// Failed or abandoned publishes must not strand scratch files.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}
