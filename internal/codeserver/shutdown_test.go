package codeserver

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// loopFiles is a guest that proves it started (one write) and then runs
// forever; only an interrupt can end it.
func loopFiles() map[string]string {
	return map[string]string{"Loop.tj": `
class Loop {
    static void main() {
        System.out.println("started");
        while (true) { }
    }
}`}
}

// TestShutdownDrainsInFlightRuns: Shutdown must interrupt in-flight
// guest runs via the rt interrupt channel and wait for them to drain —
// and no run may be abandoned mid-write: every session still produces a
// complete RunResult carrying the output written before the interrupt.
func TestShutdownDrainsInFlightRuns(t *testing.T) {
	s := newTestServer(t, Config{})
	u, _, err := s.CompileUnit(context.Background(), loopFiles(), Options{})
	if err != nil {
		t.Fatal(err)
	}

	const sessions = 4
	var wg sync.WaitGroup
	results := make([]RunResult, sessions)
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.RunUnit(context.Background(), u.Key, 0)
		}(i)
	}
	// Wait until every session is actually executing guest code.
	for i := 0; s.m.runsInFlight.Load() < sessions; i++ {
		if i > 4000 {
			t.Fatal("runs never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown did not drain: %v", err)
	}
	wg.Wait()

	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d abandoned with transport error: %v", i, errs[i])
		}
		if results[i].OK {
			t.Fatalf("session %d reported OK after interrupt", i)
		}
		if !strings.Contains(results[i].Error, "interrupted") {
			t.Errorf("session %d error %q, want an interrupt kill", i, results[i].Error)
		}
		// The write completed before the loop; an abandoned run would
		// have dropped it.
		if results[i].Output != "started\n" {
			t.Errorf("session %d output %q, want the pre-interrupt write", i, results[i].Output)
		}
	}
	st := s.Stats()
	if st.RunsInFlight != 0 {
		t.Errorf("runs still in flight after Shutdown: %d", st.RunsInFlight)
	}
	if st.InterruptKills != sessions {
		t.Errorf("interrupt kills = %d, want %d", st.InterruptKills, sessions)
	}
	if time.Since(start) > 3*time.Second {
		t.Errorf("drain took %v for interrupt-killed guests", time.Since(start))
	}

	// A run arriving after Shutdown is interrupted immediately instead
	// of wedging the drained server.
	res, err := s.RunUnit(context.Background(), u.Key, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Error("post-shutdown run was not interrupted")
	}
}

// TestShutdownCompletesHTTPResponses drives the same drain through the
// HTTP layer: a client blocked on POST /run receives a complete 200
// response (not a reset connection) when the server shuts down.
func TestShutdownCompletesHTTPResponses(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/compile", CompileRequest{Files: loopFiles()})
	cr := decodeBody[CompileResponse](t, resp)

	type runOut struct {
		res  RunResult
		code int
		err  error
	}
	out := make(chan runOut, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/run/"+cr.Hash, "application/json", strings.NewReader("{}"))
		if err != nil {
			out <- runOut{err: err}
			return
		}
		o := runOut{code: resp.StatusCode}
		o.err = json.NewDecoder(resp.Body).Decode(&o.res)
		resp.Body.Close()
		out <- o
	}()

	for i := 0; s.m.runsInFlight.Load() == 0; i++ {
		if i > 4000 {
			t.Fatal("run never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown did not drain: %v", err)
	}

	select {
	case o := <-out:
		if o.err != nil {
			t.Fatalf("HTTP run aborted mid-write: %v", o.err)
		}
		if o.code != http.StatusOK {
			t.Fatalf("run status %d, want 200", o.code)
		}
		if o.res.OK || !strings.Contains(o.res.Error, "interrupted") {
			t.Errorf("run result %+v, want an interrupt kill", o.res)
		}
		if o.res.Output != "started\n" {
			t.Errorf("output %q, want pre-interrupt write preserved", o.res.Output)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("HTTP response never arrived after shutdown")
	}
}
