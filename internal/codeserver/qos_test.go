package codeserver

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"safetsa/internal/rt"
)

// TestClampBudget pins the request-over-cap folding shared by the step
// and allocation budgets.
func TestClampBudget(t *testing.T) {
	tests := []struct {
		name     string
		req, cap int64
		want     int64
	}{
		{"request under cap", 100, 1000, 100},
		{"request equals cap", 1000, 1000, 1000},
		{"request over cap is clamped", 5000, 1000, 1000},
		{"zero request gets the cap", 0, 1000, 1000},
		{"negative request gets the cap", -7, 1000, 1000},
		{"unlimited server passes request through", 100, 0, 100},
		{"unlimited server, zero request stays unlimited", 0, 0, 0},
		{"unlimited server, negative request stays unlimited", -1, 0, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := clampBudget(tc.req, tc.cap); got != tc.want {
				t.Errorf("clampBudget(%d, %d) = %d, want %d", tc.req, tc.cap, got, tc.want)
			}
		})
	}
}

// allocBombFiles is the hostile guest PR 2 kills in-library: doubling a
// string sixty times is 2^60 bytes' worth of allocation unless the
// budget stops it.
func allocBombFiles() map[string]string {
	return map[string]string{"Main.tj": `
class Main {
    static void main() {
        String s = "xxxxxxxxxxxxxxxx";
        for (int i = 0; i < 60; i++) {
            s = s + s;
        }
        System.out.println(s.length());
    }
}`}
}

// TestRunAllocBudgetEnforcedOverHTTP is the fails-before-fix regression
// test for the headline bug: POST /run used to build its rt.Env without
// MaxAlloc, so the configured allocation budget was simply not wired to
// the production run path and the alloc bomb ran to the step limit (or
// forever) instead of dying with ErrAllocLimit. After the fix the bomb
// must die on the allocation budget and the kill must be visible in
// /metrics, not just in the per-request result.
func TestRunAllocBudgetEnforcedOverHTTP(t *testing.T) {
	s := newTestServer(t, Config{MaxSteps: 1 << 24, MaxAllocs: 1 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/compile", CompileRequest{Files: allocBombFiles()})
	cr := decodeBody[CompileResponse](t, resp)

	resp = postJSON(t, ts.URL+"/run/"+cr.Hash, RunRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d", resp.StatusCode)
	}
	rr := decodeBody[RunResult](t, resp)
	if rr.OK {
		t.Fatal("alloc bomb reported OK through POST /run")
	}
	if rr.Error != rt.ErrAllocLimit.Error() {
		t.Fatalf("alloc bomb died with %q, want %q", rr.Error, rt.ErrAllocLimit)
	}
	if rr.Allocs <= 1<<20 {
		t.Errorf("reported alloc drain %d, want > budget %d", rr.Allocs, 1<<20)
	}

	st := s.Stats()
	if st.AllocLimitKills != 1 {
		t.Errorf("alloc_limit_kills = %d, want 1", st.AllocLimitKills)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	series := `safetsa_guest_kills_total{reason="alloc_limit",tenant="anon"}`
	if got := promValue(t, string(body), series); got != 1 {
		t.Errorf("%s = %v, want 1", series, got)
	}
}

// TestRunRequestMaxAllocsClamp: a request may tighten the allocation
// budget below the server cap (and an over-cap ask is folded back).
func TestRunRequestMaxAllocsClamp(t *testing.T) {
	s := newTestServer(t, Config{MaxSteps: 1 << 24})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/compile", CompileRequest{Files: allocBombFiles()})
	cr := decodeBody[CompileResponse](t, resp)

	// Tight per-request budget on an uncapped server: the request's own
	// number is what kills the bomb.
	resp = postJSON(t, ts.URL+"/run/"+cr.Hash, RunRequest{MaxAllocs: 4096})
	rr := decodeBody[RunResult](t, resp)
	if rr.OK || rr.Error != rt.ErrAllocLimit.Error() {
		t.Fatalf("tight request budget: got ok=%v err=%q, want alloc kill", rr.OK, rr.Error)
	}

	// Over-cap ask on a capped server folds back to the cap.
	s2 := newTestServer(t, Config{MaxSteps: 1 << 24, MaxAllocs: 1 << 14})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp = postJSON(t, ts2.URL+"/compile", CompileRequest{Files: allocBombFiles()})
	cr = decodeBody[CompileResponse](t, resp)
	resp = postJSON(t, ts2.URL+"/run/"+cr.Hash, RunRequest{MaxAllocs: 1 << 40})
	rr = decodeBody[RunResult](t, resp)
	if rr.OK || rr.Error != rt.ErrAllocLimit.Error() {
		t.Fatalf("over-cap ask: got ok=%v err=%q, want alloc kill at server cap", rr.OK, rr.Error)
	}
	if rr.Allocs > 1<<15 {
		t.Errorf("alloc drain %d suggests the request escaped the %d cap", rr.Allocs, 1<<14)
	}
}

// TestRunDeadlineKill: the wall-clock enforcer interrupts a guest that
// outlives Config.RunTimeout, and the kill is classified "deadline", not
// "interrupt" (which stays reserved for client aborts and drains).
func TestRunDeadlineKill(t *testing.T) {
	s := newTestServer(t, Config{RunTimeout: 30 * time.Millisecond})
	ctx := context.Background()
	u, _, err := s.CompileUnit(ctx, map[string]string{"Loop.tj": `
class Loop { static void main() { while (true) { } } }`}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunUnit(ctx, u.Key, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("guest outlived its wall-clock deadline and reported OK")
	}
	if res.Error != rt.ErrInterrupted.Error() {
		t.Fatalf("deadline kill surfaced as %q, want %q", res.Error, rt.ErrInterrupted)
	}
	st := s.Stats()
	if st.DeadlineKills != 1 {
		t.Errorf("deadline_kills = %d, want 1", st.DeadlineKills)
	}
	if st.InterruptKills != 0 {
		t.Errorf("interrupt_kills = %d, want 0 (deadline must not masquerade)", st.InterruptKills)
	}
	if ts := st.Tenants[DefaultTenant]; ts.Kills["deadline"] != 1 {
		t.Errorf("tenant kill row = %+v, want one deadline kill", ts.Kills)
	}
}

// warmUnitFiles is a unit with a deliberately heavy static initializer,
// so the pooled-vs-fresh delta (and the Admits gate) has something to
// bite on.
func warmUnitFiles() map[string]string {
	return map[string]string{"Warm.tj": `
class Warm {
    static int[] table = Warm.build();
    static int build_count = 0;
    static int[] build() {
        Warm.build_count = Warm.build_count + 1;
        int[] t = new int[512];
        for (int i = 0; i < 512; i++) {
            t[i] = i * i % 8191;
        }
        return t;
    }
    static void main() {
        System.out.println(Warm.table[100]);
        System.out.println(Warm.build_count);
    }
}`}
}

// TestWarmPoolServesClones: the first run of a unit builds and publishes
// a verified snapshot; later runs are clones that must be observationally
// identical (output, steps, allocs) to the fresh first run — and to a
// pool-disabled server's runs.
func TestWarmPoolServesClones(t *testing.T) {
	pooled := newTestServer(t, Config{})
	cold := newTestServer(t, Config{PoolUnits: -1})
	ctx := context.Background()

	files := warmUnitFiles()
	pu, _, err := pooled.CompileUnit(ctx, files, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cu, _, err := cold.CompileUnit(ctx, files, Options{})
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := cold.RunUnit(ctx, cu.Key, 0)
	if err != nil {
		t.Fatal(err)
	}

	const runs = 4
	var results [runs]RunResult
	for i := 0; i < runs; i++ {
		if results[i], err = pooled.RunUnit(ctx, pu.Key, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < runs; i++ {
		if !results[i].OK {
			t.Fatalf("run %d failed: %s", i, results[i].Error)
		}
		if results[i] != coldRes {
			t.Errorf("pooled run %d diverged from fresh: %+v vs %+v", i, results[i], coldRes)
		}
	}

	st := pooled.Stats()
	if st.PoolBuilds != 1 {
		t.Errorf("pool_builds = %d, want 1", st.PoolBuilds)
	}
	if st.PoolHits != runs-1 {
		t.Errorf("pool_hits = %d, want %d", st.PoolHits, runs-1)
	}
	if st.PoolVerifyFails != 0 {
		t.Errorf("pool_verify_fails = %d, want 0", st.PoolVerifyFails)
	}
	if st.PoolSessions != 1 {
		t.Errorf("pool_sessions = %d, want 1", st.PoolSessions)
	}
	if st.Loads != 1 {
		t.Errorf("loads = %d, want 1 (clones must not re-decode)", st.Loads)
	}
	if cs := cold.Stats(); cs.PoolBuilds != 0 || cs.PoolHits != 0 || cs.PoolSessions != 0 {
		t.Errorf("pool-disabled server grew pool state: %+v", cs)
	}
}

// TestPoolDeclinesTightBudget: a request whose budget could not have
// survived static init must not be served from a clone — it runs fresh
// and dies mid-init exactly like it would on a pool-less server.
func TestPoolDeclinesTightBudget(t *testing.T) {
	s := newTestServer(t, Config{})
	cold := newTestServer(t, Config{PoolUnits: -1})
	ctx := context.Background()

	files := warmUnitFiles()
	u, _, err := s.CompileUnit(ctx, files, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cu, _, err := cold.CompileUnit(ctx, files, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Warm the pool with an unbounded run.
	full, err := s.RunUnit(ctx, u.Key, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !full.OK {
		t.Fatalf("warmup run failed: %s", full.Error)
	}
	tight := full.Steps / 4 // well below the init drain of warmUnitFiles

	got, err := s.RunUnit(ctx, u.Key, tight)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.RunUnit(ctx, cu.Key, tight)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("declined run diverged from pool-less server:\n pooled %+v\n fresh  %+v", got, want)
	}
	if got.OK || got.Error != rt.ErrStepLimit.Error() {
		t.Fatalf("tight budget run: got ok=%v err=%q, want a mid-init step kill", got.OK, got.Error)
	}
	if st := s.Stats(); st.PoolDeclines != 1 {
		t.Errorf("pool_declines = %d, want 1", st.PoolDeclines)
	}
}

// TestTenantAdmissionGate: with TenantMaxInFlight=1 a tenant's second
// concurrent run is rejected with 429 + Retry-After before any work
// happens, while other tenants are unaffected.
func TestTenantAdmissionGate(t *testing.T) {
	s := newTestServer(t, Config{TenantMaxInFlight: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx := context.Background()
	loop, _, err := s.CompileUnit(ctx, map[string]string{"Loop.tj": `
class Loop { static void main() { while (true) { } } }`}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hello, _, err := s.CompileUnit(ctx, helloFiles(), Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Occupy alice's single slot with an interruptible infinite run.
	runCtx, cancel := context.WithCancel(ctx)
	done := make(chan RunResult, 1)
	go func() {
		res, _ := s.RunUnitOpts(runCtx, loop.Key, RunOptions{Tenant: "alice"})
		done <- res
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.m.runsInFlight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background run never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Same tenant, over the bound: 429 with Retry-After, kind throttled.
	resp := postJSON(t, ts.URL+"/run/"+hello.Key.String(), RunRequest{Tenant: "alice"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second alice run got status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 missing Retry-After header")
	}
	er := decodeBody[ErrorResponse](t, resp)
	if er.Kind != "throttled" {
		t.Errorf("error kind %q, want throttled", er.Kind)
	}

	// Header-carried tenant identity hits the same gate.
	req, err := http.NewRequest("POST", ts.URL+"/run/"+hello.Key.String(), strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TenantHeader, "alice")
	req.Header.Set("Content-Type", "application/json")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Errorf("header-tenant run got status %d, want 429", resp2.StatusCode)
	}
	resp2.Body.Close()

	// A different tenant sails through.
	resp = postJSON(t, ts.URL+"/run/"+hello.Key.String(), RunRequest{Tenant: "bob"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bob's run got status %d, want 200", resp.StatusCode)
	}
	if rr := decodeBody[RunResult](t, resp); !rr.OK {
		t.Errorf("bob's run failed: %s", rr.Error)
	}

	cancel()
	res := <-done
	if res.OK || res.Error != rt.ErrInterrupted.Error() {
		t.Errorf("interrupted filler run: %+v", res)
	}

	st := s.Stats()
	if st.TenantRejects != 2 {
		t.Errorf("tenant_rejects = %d, want 2", st.TenantRejects)
	}
	alice := st.Tenants["alice"]
	if alice.Rejects != 2 || alice.Runs != 1 {
		t.Errorf("alice row = %+v, want 2 rejects, 1 run", alice)
	}
	if bob := st.Tenants["bob"]; bob.Runs != 1 || bob.Rejects != 0 {
		t.Errorf("bob row = %+v, want 1 run, 0 rejects", bob)
	}
	if alice.InFlight != 0 || st.RunsInFlight != 0 {
		t.Errorf("in-flight gauges not drained: tenant %d, global %d", alice.InFlight, st.RunsInFlight)
	}
}

// TestMultiTenantPooledStress drives the pooled runtime with 32
// concurrent clients split over four tenants, three engines, and the
// stress corpus, then checks the global and per-tenant books balance.
func TestMultiTenantPooledStress(t *testing.T) {
	files, want := stressCorpus(t)
	s := newTestServer(t, Config{})
	ctx := context.Background()

	keys := make([]Key, len(files))
	for i := range files {
		u, _, err := s.CompileUnit(ctx, files[i], Options{Optimize: true})
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = u.Key
	}

	engines := []string{"", "prepared", "compiled", "reference"}
	tenants := []string{"t0", "t1", "t2", "t3"}
	const clients = 32
	const perClient = 12
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				ui := (c + i) % len(keys)
				res, err := s.RunUnitOpts(ctx, keys[ui], RunOptions{
					Engine: engines[(c+i)%len(engines)],
					Tenant: tenants[c%len(tenants)],
				})
				if err != nil {
					errCh <- err
					return
				}
				if !res.OK {
					errCh <- fmt.Errorf("unit %d: guest failure %s", ui, res.Error)
					return
				}
				if res.Output != want[ui] {
					errCh <- fmt.Errorf("unit %d: output diverged under pooled stress", ui)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := s.Stats()
	total := uint64(clients * perClient)
	if st.Runs != total {
		t.Errorf("runs = %d, want %d", st.Runs, total)
	}
	if st.RunLatency.Count != total {
		t.Errorf("run histogram count = %d, want %d", st.RunLatency.Count, total)
	}
	if st.PoolVerifyFails != 0 {
		t.Errorf("pool_verify_fails = %d under stress", st.PoolVerifyFails)
	}
	if st.PoolHits+st.PoolBuilds == 0 {
		t.Error("stress ran entirely cold: no pool builds or hits")
	}
	if st.StepLimitKills+st.AllocLimitKills+st.InterruptKills+st.DeadlineKills != 0 {
		t.Errorf("clean stress produced kills: %+v", st)
	}
	var tenantRuns uint64
	var tenantSteps, tenantAllocs int64
	for name, row := range st.Tenants {
		tenantRuns += row.Runs
		tenantSteps += row.Steps
		tenantAllocs += row.Allocs
		if row.InFlight != 0 {
			t.Errorf("tenant %s in_flight = %d after drain", name, row.InFlight)
		}
	}
	if tenantRuns != st.Runs {
		t.Errorf("tenant runs sum %d != runs %d", tenantRuns, st.Runs)
	}
	if tenantSteps != st.GuestSteps || tenantAllocs != st.GuestAllocs {
		t.Errorf("tenant budget sums (%d, %d) != globals (%d, %d)",
			tenantSteps, tenantAllocs, st.GuestSteps, st.GuestAllocs)
	}
	if st.TenantRejects != 0 {
		t.Errorf("ungated stress saw %d rejects", st.TenantRejects)
	}
}
