package codeserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"safetsa/internal/driver"
	"safetsa/internal/wire"
)

const helloSrc = `
class Hello {
    static void main() {
        System.out.println("hello, " + (6 * 7));
    }
}
`

func helloFiles() map[string]string {
	return map[string]string{"Hello.tj": helloSrc}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHTTPCompileFetchRun(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Compile.
	resp := postJSON(t, ts.URL+"/compile", CompileRequest{Files: helloFiles(), Optimize: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status %d", resp.StatusCode)
	}
	cr := decodeBody[CompileResponse](t, resp)
	if cr.Cached {
		t.Error("first compile reported cached")
	}
	if cr.Instructions <= 0 || cr.Size <= 0 {
		t.Errorf("bad unit summary: %+v", cr)
	}
	if cr.Hash != KeyFor(helloFiles(), Options{Optimize: true}).String() {
		t.Errorf("hash mismatch: %s", cr.Hash)
	}

	// Second compile is a cache hit.
	resp = postJSON(t, ts.URL+"/compile", CompileRequest{Files: helloFiles(), Optimize: true})
	if cr2 := decodeBody[CompileResponse](t, resp); !cr2.Cached {
		t.Error("second compile not served from cache")
	}

	// Fetch the unit and check it is a decodable distribution unit that
	// matches a direct pipeline run.
	resp, err := http.Get(ts.URL + "/unit/" + cr.Hash)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("unit fetch: status %d, err %v", resp.StatusCode, err)
	}
	mod, err := wire.DecodeVerified(data)
	if err != nil {
		t.Fatalf("served unit does not decode: %v", err)
	}
	want, err := driver.RunModule(mod, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Run.
	resp = postJSON(t, ts.URL+"/run/"+cr.Hash, RunRequest{MaxSteps: 1_000_000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d", resp.StatusCode)
	}
	rr := decodeBody[RunResult](t, resp)
	if !rr.OK || rr.Output != want {
		t.Fatalf("run result %+v, want output %q", rr, want)
	}

	// Stats reflect the traffic.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeBody[Stats](t, resp)
	if st.Compiles != 1 || st.CacheHits != 1 || st.Runs != 1 || st.Loads != 1 {
		t.Errorf("unexpected stats: %+v", st)
	}
	if st.UnitsCached != 1 || st.ModulesLoaded != 1 {
		t.Errorf("unexpected cache sizes: %+v", st)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Syntax error → 400 with kind "parse".
	resp := postJSON(t, ts.URL+"/compile", CompileRequest{
		Files: map[string]string{"Bad.tj": "class {"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("parse error: status %d, want 400", resp.StatusCode)
	}
	if er := decodeBody[ErrorResponse](t, resp); er.Kind != "parse" {
		t.Errorf("parse error kind %q", er.Kind)
	}

	// Type error → 400 with kind "sema".
	resp = postJSON(t, ts.URL+"/compile", CompileRequest{
		Files: map[string]string{"Bad.tj": `
class Bad { static void main() { int x = "not an int"; } }`}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("sema error: status %d, want 400", resp.StatusCode)
	}
	if er := decodeBody[ErrorResponse](t, resp); er.Kind != "sema" {
		t.Errorf("sema error kind %q", er.Kind)
	}

	// Unknown unit → 404.
	var k Key
	k[0] = 0xAB
	resp = postJSON(t, ts.URL+"/run/"+k.String(), RunRequest{})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown unit: status %d, want 404", resp.StatusCode)
	}
	if er := decodeBody[ErrorResponse](t, resp); er.Kind != "not_found" {
		t.Errorf("unknown unit kind %q, want \"not_found\"", er.Kind)
	}

	// Malformed hash → 400.
	resp = postJSON(t, ts.URL+"/run/nothex", RunRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad hash: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestGuestFailureReportedInBody(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()
	u, _, err := s.CompileUnit(ctx, map[string]string{"Loop.tj": `
class Loop { static void main() { while (true) { } } }`}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunUnit(ctx, u.Key, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Error == "" {
		t.Fatalf("runaway program not reported: %+v", res)
	}
}

func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	files := helloFiles()
	key := KeyFor(files, Options{})

	s1 := newTestServer(t, Config{CacheDir: dir})
	if _, _, err := s1.CompileUnit(context.Background(), files, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, key.String()+".tsa")); err != nil {
		t.Fatalf("unit not persisted: %v", err)
	}

	// A fresh server over the same dir serves the unit without compiling.
	s2 := newTestServer(t, Config{CacheDir: dir})
	u, cached, err := s2.CompileUnit(context.Background(), files, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("disk-tier unit not reported as cached")
	}
	if u.Instrs <= 0 {
		t.Errorf("disk-tier unit lost its metadata: %+v", u)
	}
	st := s2.Stats()
	if st.Compiles != 0 || st.DiskHits != 1 {
		t.Errorf("unexpected stats after disk hit: %+v", st)
	}
	res, err := s2.RunUnit(context.Background(), u.Key, 0)
	if err != nil || !res.OK {
		t.Fatalf("run after restart: %+v, %v", res, err)
	}
}

func TestStoreEviction(t *testing.T) {
	m := &Metrics{}
	// One slot per shard: the second unit landing on a shard evicts the
	// first.
	st, err := NewStore("", 1, m)
	if err != nil {
		t.Fatal(err)
	}
	var keys []Key
	for i := 0; ; i++ {
		k := KeyFor(map[string]string{"f": fmt.Sprint(i)}, Options{})
		// Find two keys on the same shard.
		for _, prev := range keys {
			if prev[0]%numShards == k[0]%numShards {
				fill := func(context.Context) (*Unit, error) {
					return &Unit{Wire: []byte{1}, Size: 1, Instrs: 1}, nil
				}
				if _, _, err := st.GetOrFill(context.Background(), prev, fill); err != nil {
					t.Fatal(err)
				}
				if _, _, err := st.GetOrFill(context.Background(), k, fill); err != nil {
					t.Fatal(err)
				}
				if _, ok := st.Get(prev); ok {
					t.Error("evicted unit still resident")
				}
				if m.evictions.Load() != 1 {
					t.Errorf("evictions = %d, want 1", m.evictions.Load())
				}
				return
			}
		}
		keys = append(keys, k)
		if i > 10000 {
			t.Fatal("no shard collision found")
		}
	}
}

func TestStageTimeout(t *testing.T) {
	// A pool with an absurdly small stage timeout must fail with an
	// internal error, not hang.
	m := &Metrics{}
	p := NewPool(1, time.Nanosecond, m)
	_, err := p.Compile(context.Background(), helloFiles(), Options{})
	if err == nil {
		t.Fatal("expected stage timeout")
	}
	if driver.IsUserError(err) {
		t.Errorf("stage timeout classified as user error: %v", err)
	}
}
