package codeserver

import (
	"container/list"
	"sync"

	"safetsa/internal/interp"
)

// sessionPool is the warm-session pool: per-(unit, engine) snapshots of
// post-static-init interpreter state (interp.Snapshot), built lazily by
// the first successful run of a unit and cloned for every later run, so
// the static initializers execute once per unit per engine instead of
// once per request. Entries are LRU-bounded; a snapshot is only
// published after Snapshot.Verify proves a probe clone reproduces the
// frozen heap checksum, init output, and budget drain byte-exactly.
//
// Units whose static init fails (deterministically or by budget kill)
// never produce a snapshot — every request for them runs fresh and
// observes the exact fresh-session failure. Requests whose budgets are
// too tight to have survived init are declined by the server (see
// Snapshot.Admits) and also run fresh.
type sessionPool struct {
	mu      sync.Mutex
	max     int
	entries map[poolKey]*poolEntry
	order   *list.List // front = most recently used
	m       *Metrics
}

type poolKey struct {
	k      Key
	engine string
}

type poolEntry struct {
	snap *interp.Snapshot
	el   *list.Element // value: poolKey
}

func newSessionPool(max int, m *Metrics) *sessionPool {
	return &sessionPool{
		max:     max,
		entries: make(map[poolKey]*poolEntry),
		order:   list.New(),
		m:       m,
	}
}

// Get returns the warm snapshot for (k, engine), bumping its recency,
// or nil when the pool holds none.
func (p *sessionPool) Get(k Key, engine string) *interp.Snapshot {
	key := poolKey{k: k, engine: engine}
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[key]
	if !ok {
		return nil
	}
	p.order.MoveToFront(e.el)
	return e.snap
}

// has reports whether (k, engine) is already pooled, so the build path
// can skip the snapshot+verify work when it would be discarded anyway.
func (p *sessionPool) has(key poolKey) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.entries[key]
	return ok
}

// Offer snapshots a session that just finished static init and, when no
// snapshot for (k, engine) exists yet, verifies and publishes it.
// initOut is the output the session printed during init. Racing offers
// are benign: both build identical snapshots (the clone machinery is
// deterministic) and the first insert wins.
func (p *sessionPool) Offer(k Key, engine string, l *interp.Loader, initOut []byte) {
	key := poolKey{k: k, engine: engine}
	if p.has(key) {
		return
	}
	snap, err := l.Snapshot(initOut)
	if err != nil {
		p.m.poolVerifyFails.Add(1)
		return
	}
	if err := snap.Verify(); err != nil {
		// A snapshot that cannot reproduce itself must never serve
		// traffic; the counter is the alarm (this indicates a clone
		// machinery bug, not a property of the unit).
		p.m.poolVerifyFails.Add(1)
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.entries[key]; ok {
		return // lost the race; the published twin is identical
	}
	for p.max > 0 && len(p.entries) >= p.max {
		back := p.order.Back()
		if back == nil {
			break
		}
		old := back.Value.(poolKey)
		p.order.Remove(back)
		delete(p.entries, old)
		p.m.poolEvictions.Add(1)
	}
	el := p.order.PushFront(key)
	p.entries[key] = &poolEntry{snap: snap, el: el}
	p.m.poolBuilds.Add(1)
}

// Len reports the pooled snapshot count.
func (p *sessionPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}
