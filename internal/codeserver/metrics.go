package codeserver

import (
	"io"
	"sync/atomic"

	"safetsa/internal/obs"
)

// Metrics is the server-wide instrumentation, updated with atomics on
// every request path so it is safe under full concurrency. Per-stage
// latencies are obs.Histograms (lock-free fixed buckets); the legacy
// cumulative *Nanos fields of Stats are derived from their sums, so the
// old JSON keys survive with identical meaning. Stats() returns a
// consistent-enough snapshot for monitoring and tests.
type Metrics struct {
	// node is the fleet identity stamped onto every Prometheus series
	// and the stats snapshot ("" for a single-node server: no label).
	node string

	compileRequests  atomic.Uint64
	cacheHits        atomic.Uint64
	diskHits         atomic.Uint64
	compiles         atomic.Uint64
	coalesced        atomic.Uint64
	compileErrors    atomic.Uint64
	compilesInFlight atomic.Int64
	evictions        atomic.Uint64

	// Peer-fill accounting (cluster mode): units fetched from a fleet
	// peer and re-admitted through the local decode+verify path, fetches
	// that failed before admission, and — the security counter — peer
	// bytes rejected by local admission. Rejected bytes never reach the
	// memory or disk tier.
	peerFills       atomic.Uint64
	peerFillErrors  atomic.Uint64
	peerFillRejects atomic.Uint64

	loads       atomic.Uint64
	loaderHits  atomic.Uint64
	loadErrors  atomic.Uint64
	loaderEvict atomic.Uint64

	runs         atomic.Uint64
	runErrors    atomic.Uint64
	runsInFlight atomic.Int64

	// Run-session budget accounting: cumulative guest work (rt.Env step
	// and allocation counters drained after every session) and kill
	// counters by budget, so hostile-guest terminations are visible as
	// metrics, not just per-request errors.
	guestSteps      atomic.Int64
	guestAllocs     atomic.Int64
	stepLimitKills  atomic.Uint64
	allocLimitKills atomic.Uint64
	interruptKills  atomic.Uint64

	// Per-stage latency histograms. compileHist covers the whole
	// producer pipeline (one sample per actual compile); decodeHist,
	// verifyHist, prepareHist, and compileBackendHist the consumer
	// loader stages (one sample per load attempt — preparation and
	// backend compilation are shared by every session of a unit, so
	// their counts track loads, not runs); runHist one sample per
	// execution session.
	compileHist        obs.Histogram
	decodeHist         obs.Histogram
	verifyHist         obs.Histogram
	prepareHist        obs.Histogram
	compileBackendHist obs.Histogram
	runHist            obs.Histogram
	peerFillHist       obs.Histogram // one sample per peer fetch+admission attempt
}

// Stats is the exported snapshot of Metrics, plus the cache sizes filled
// in by the component that owns them. It is what GET /stats serves.
type Stats struct {
	// Node is the fleet identity of the server that produced this
	// snapshot (absent for single-node servers).
	Node string `json:"node,omitempty"`

	// Producer side (content-addressed store + compile pool).
	CompileRequests  uint64 `json:"compile_requests"`
	CacheHits        uint64 `json:"cache_hits"`
	DiskHits         uint64 `json:"disk_hits"`
	Compiles         uint64 `json:"compiles"`
	Coalesced        uint64 `json:"coalesced"`
	CompileErrors    uint64 `json:"compile_errors"`
	CompilesInFlight int64  `json:"compiles_in_flight"`
	Evictions        uint64 `json:"evictions"`
	UnitsCached      int    `json:"units_cached"`

	// Cluster peer-fill path (see Metrics).
	PeerFills       uint64 `json:"peer_fills"`
	PeerFillErrors  uint64 `json:"peer_fill_errors"`
	PeerFillRejects uint64 `json:"peer_fill_rejects"`

	// Consumer side (loader cache + execution sessions).
	Loads         uint64 `json:"loads"`
	LoaderHits    uint64 `json:"loader_hits"`
	LoadErrors    uint64 `json:"load_errors"`
	LoaderEvicted uint64 `json:"loader_evicted"`
	ModulesLoaded int    `json:"modules_loaded"`
	Runs          uint64 `json:"runs"`
	RunErrors     uint64 `json:"run_errors"`
	RunsInFlight  int64  `json:"runs_in_flight"`

	// Guest budget accounting (see Metrics).
	GuestSteps      int64  `json:"guest_steps"`
	GuestAllocs     int64  `json:"guest_allocs"`
	StepLimitKills  uint64 `json:"step_limit_kills"`
	AllocLimitKills uint64 `json:"alloc_limit_kills"`
	InterruptKills  uint64 `json:"interrupt_kills"`

	// Cumulative latencies (nanoseconds) over all requests. Legacy keys:
	// derived from the histogram sums so they keep increasing exactly as
	// before the histograms existed.
	CompileNanos        int64 `json:"compile_nanos"`
	DecodeNanos         int64 `json:"decode_nanos"`
	VerifyNanos         int64 `json:"verify_nanos"`
	PrepareNanos        int64 `json:"prepare_nanos"`
	CompileBackendNanos int64 `json:"compile_backend_nanos"`
	RunNanos            int64 `json:"run_nanos"`
	PeerFillNanos       int64 `json:"peer_fill_nanos"`

	// Per-stage latency distributions (count, sum, p50/p90/p99).
	CompileLatency        obs.LatencySummary `json:"compile_latency"`
	DecodeLatency         obs.LatencySummary `json:"decode_latency"`
	VerifyLatency         obs.LatencySummary `json:"verify_latency"`
	PrepareLatency        obs.LatencySummary `json:"prepare_latency"`
	CompileBackendLatency obs.LatencySummary `json:"compile_backend_latency"`
	RunLatency            obs.LatencySummary `json:"run_latency"`
	PeerFillLatency       obs.LatencySummary `json:"peer_fill_latency"`
}

func (m *Metrics) snapshot() Stats {
	compile := m.compileHist.Snapshot()
	decode := m.decodeHist.Snapshot()
	verify := m.verifyHist.Snapshot()
	prepare := m.prepareHist.Snapshot()
	compileBackend := m.compileBackendHist.Snapshot()
	run := m.runHist.Snapshot()
	peerFill := m.peerFillHist.Snapshot()
	return Stats{
		Node:                  m.node,
		CompileRequests:       m.compileRequests.Load(),
		CacheHits:             m.cacheHits.Load(),
		DiskHits:              m.diskHits.Load(),
		Compiles:              m.compiles.Load(),
		Coalesced:             m.coalesced.Load(),
		CompileErrors:         m.compileErrors.Load(),
		CompilesInFlight:      m.compilesInFlight.Load(),
		Evictions:             m.evictions.Load(),
		PeerFills:             m.peerFills.Load(),
		PeerFillErrors:        m.peerFillErrors.Load(),
		PeerFillRejects:       m.peerFillRejects.Load(),
		Loads:                 m.loads.Load(),
		LoaderHits:            m.loaderHits.Load(),
		LoadErrors:            m.loadErrors.Load(),
		LoaderEvicted:         m.loaderEvict.Load(),
		Runs:                  m.runs.Load(),
		RunErrors:             m.runErrors.Load(),
		RunsInFlight:          m.runsInFlight.Load(),
		GuestSteps:            m.guestSteps.Load(),
		GuestAllocs:           m.guestAllocs.Load(),
		StepLimitKills:        m.stepLimitKills.Load(),
		AllocLimitKills:       m.allocLimitKills.Load(),
		InterruptKills:        m.interruptKills.Load(),
		CompileNanos:          compile.SumNanos,
		DecodeNanos:           decode.SumNanos,
		VerifyNanos:           verify.SumNanos,
		PrepareNanos:          prepare.SumNanos,
		CompileBackendNanos:   compileBackend.SumNanos,
		RunNanos:              run.SumNanos,
		PeerFillNanos:         peerFill.SumNanos,
		CompileLatency:        compile.Summary(),
		DecodeLatency:         decode.Summary(),
		VerifyLatency:         verify.Summary(),
		PrepareLatency:        prepare.Summary(),
		CompileBackendLatency: compileBackend.Summary(),
		RunLatency:            run.Summary(),
		PeerFillLatency:       peerFill.Summary(),
	}
}

// recordKill classifies an abnormal guest termination by the exhausted
// budget (reason as reported by rt.KillReason; "" records nothing).
func (m *Metrics) recordKill(reason string) {
	switch reason {
	case "step_limit":
		m.stepLimitKills.Add(1)
	case "alloc_limit":
		m.allocLimitKills.Add(1)
	case "interrupt":
		m.interruptKills.Add(1)
	}
}

// WritePrometheus renders the full metric surface in the Prometheus text
// exposition format. unitsCached and modulesLoaded are the cache
// occupancies owned by the store and loader. In cluster mode every
// series carries a node="<name>" label so fleet scrapes stay per-node.
func (m *Metrics) WritePrometheus(w io.Writer, unitsCached, modulesLoaded int) {
	p := obs.NewPromWriter(w).ConstLabel("node", m.node)
	p.Counter("safetsa_compile_requests_total", "Compile requests received.", m.compileRequests.Load())
	p.Counter("safetsa_cache_hits_total", "Compile requests served from the in-memory unit store.", m.cacheHits.Load())
	p.Counter("safetsa_disk_hits_total", "Compile requests served from the on-disk unit store.", m.diskHits.Load())
	p.Counter("safetsa_compiles_total", "Producer pipelines actually run.", m.compiles.Load())
	p.Counter("safetsa_coalesced_total", "Compile requests coalesced onto an in-flight compile.", m.coalesced.Load())
	p.Counter("safetsa_compile_errors_total", "Failed producer pipelines.", m.compileErrors.Load())
	p.Counter("safetsa_evictions_total", "Units evicted from the in-memory store.", m.evictions.Load())
	p.Gauge("safetsa_compiles_in_flight", "Producer pipelines currently running.", m.compilesInFlight.Load())
	p.Gauge("safetsa_units_cached", "Encoded units resident in the in-memory store.", int64(unitsCached))

	p.Counter("safetsa_peer_fills_total", "Units fetched from a fleet peer and admitted by local re-verification.", m.peerFills.Load())
	p.Counter("safetsa_peer_fill_errors_total", "Peer unit fetches that failed before admission.", m.peerFillErrors.Load())
	p.Counter("safetsa_peer_fill_rejects_total", "Peer-supplied units rejected by local decode+verify admission.", m.peerFillRejects.Load())

	p.Counter("safetsa_loads_total", "Units decoded and verified by the loader.", m.loads.Load())
	p.Counter("safetsa_loader_hits_total", "Run requests served from the decoded-module cache.", m.loaderHits.Load())
	p.Counter("safetsa_load_errors_total", "Units rejected by decode or the verifier.", m.loadErrors.Load())
	p.Counter("safetsa_loader_evicted_total", "Decoded modules evicted from the loader cache.", m.loaderEvict.Load())
	p.Gauge("safetsa_modules_loaded", "Decoded modules resident in the loader cache.", int64(modulesLoaded))

	p.Counter("safetsa_runs_total", "Execution sessions started.", m.runs.Load())
	p.Counter("safetsa_run_errors_total", "Execution sessions ending in a guest failure.", m.runErrors.Load())
	p.Gauge("safetsa_runs_in_flight", "Execution sessions currently running.", m.runsInFlight.Load())
	p.Counter("safetsa_guest_steps_total", "Interpreter steps executed by guest programs.", uint64(m.guestSteps.Load()))
	p.Counter("safetsa_guest_allocs_total", "Allocation units charged by guest programs.", uint64(m.guestAllocs.Load()))
	p.CounterVec("safetsa_guest_kills_total", "Guest sessions terminated by an exhausted budget.", "reason",
		map[string]uint64{
			"step_limit":  m.stepLimitKills.Load(),
			"alloc_limit": m.allocLimitKills.Load(),
			"interrupt":   m.interruptKills.Load(),
		})

	p.HistogramVec("safetsa_stage_duration_seconds", "Pipeline stage latency.", "stage",
		map[string]obs.HistogramSnapshot{
			"compile":         m.compileHist.Snapshot(),
			"decode":          m.decodeHist.Snapshot(),
			"verify":          m.verifyHist.Snapshot(),
			"prepare":         m.prepareHist.Snapshot(),
			"compile_backend": m.compileBackendHist.Snapshot(),
			"run":             m.runHist.Snapshot(),
			"peer_fill":       m.peerFillHist.Snapshot(),
		})
}
