package codeserver

import "sync/atomic"

// Metrics is the server-wide instrumentation, updated with atomics on
// every request path so it is safe under full concurrency. Stats()
// returns a consistent-enough snapshot for monitoring and tests.
type Metrics struct {
	compileRequests  atomic.Uint64
	cacheHits        atomic.Uint64
	diskHits         atomic.Uint64
	compiles         atomic.Uint64
	coalesced        atomic.Uint64
	compileErrors    atomic.Uint64
	compilesInFlight atomic.Int64
	evictions        atomic.Uint64

	loads       atomic.Uint64
	loaderHits  atomic.Uint64
	loadErrors  atomic.Uint64
	loaderEvict atomic.Uint64

	runs      atomic.Uint64
	runErrors atomic.Uint64

	compileNanos atomic.Int64
	decodeNanos  atomic.Int64
	verifyNanos  atomic.Int64
	runNanos     atomic.Int64
}

// Stats is the exported snapshot of Metrics, plus the cache sizes filled
// in by the component that owns them. It is what GET /stats serves.
type Stats struct {
	// Producer side (content-addressed store + compile pool).
	CompileRequests  uint64 `json:"compile_requests"`
	CacheHits        uint64 `json:"cache_hits"`
	DiskHits         uint64 `json:"disk_hits"`
	Compiles         uint64 `json:"compiles"`
	Coalesced        uint64 `json:"coalesced"`
	CompileErrors    uint64 `json:"compile_errors"`
	CompilesInFlight int64  `json:"compiles_in_flight"`
	Evictions        uint64 `json:"evictions"`
	UnitsCached      int    `json:"units_cached"`

	// Consumer side (loader cache + execution sessions).
	Loads          uint64 `json:"loads"`
	LoaderHits     uint64 `json:"loader_hits"`
	LoadErrors     uint64 `json:"load_errors"`
	LoaderEvicted  uint64 `json:"loader_evicted"`
	ModulesLoaded  int    `json:"modules_loaded"`
	Runs           uint64 `json:"runs"`
	RunErrors      uint64 `json:"run_errors"`

	// Cumulative latencies (nanoseconds) over all requests.
	CompileNanos int64 `json:"compile_nanos"`
	DecodeNanos  int64 `json:"decode_nanos"`
	VerifyNanos  int64 `json:"verify_nanos"`
	RunNanos     int64 `json:"run_nanos"`
}

func (m *Metrics) snapshot() Stats {
	return Stats{
		CompileRequests:  m.compileRequests.Load(),
		CacheHits:        m.cacheHits.Load(),
		DiskHits:         m.diskHits.Load(),
		Compiles:         m.compiles.Load(),
		Coalesced:        m.coalesced.Load(),
		CompileErrors:    m.compileErrors.Load(),
		CompilesInFlight: m.compilesInFlight.Load(),
		Evictions:        m.evictions.Load(),
		Loads:            m.loads.Load(),
		LoaderHits:       m.loaderHits.Load(),
		LoadErrors:       m.loadErrors.Load(),
		LoaderEvicted:    m.loaderEvict.Load(),
		Runs:             m.runs.Load(),
		RunErrors:        m.runErrors.Load(),
		CompileNanos:     m.compileNanos.Load(),
		DecodeNanos:      m.decodeNanos.Load(),
		VerifyNanos:      m.verifyNanos.Load(),
		RunNanos:         m.runNanos.Load(),
	}
}
