package codeserver

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"safetsa/internal/obs"
)

// Metrics is the server-wide instrumentation, updated with atomics on
// every request path so it is safe under full concurrency. Per-stage
// latencies are obs.Histograms (lock-free fixed buckets); the legacy
// cumulative *Nanos fields of Stats are derived from their sums, so the
// old JSON keys survive with identical meaning. Stats() returns a
// consistent-enough snapshot for monitoring and tests.
type Metrics struct {
	// node is the fleet identity stamped onto every Prometheus series
	// and the stats snapshot ("" for a single-node server: no label).
	node string

	compileRequests  atomic.Uint64
	cacheHits        atomic.Uint64
	diskHits         atomic.Uint64
	compiles         atomic.Uint64
	coalesced        atomic.Uint64
	compileErrors    atomic.Uint64
	compilesInFlight atomic.Int64
	evictions        atomic.Uint64

	// Peer-fill accounting (cluster mode): units fetched from a fleet
	// peer and re-admitted through the local decode+verify path, fetches
	// that failed before admission, and — the security counter — peer
	// bytes rejected by local admission. Rejected bytes never reach the
	// memory or disk tier.
	peerFills       atomic.Uint64
	peerFillErrors  atomic.Uint64
	peerFillRejects atomic.Uint64

	loads       atomic.Uint64
	loaderHits  atomic.Uint64
	loadErrors  atomic.Uint64
	loaderEvict atomic.Uint64

	runs         atomic.Uint64
	runErrors    atomic.Uint64
	runsInFlight atomic.Int64

	// streamRejects counts streaming runs whose unit was rejected at any
	// point in the stream (header, tables, a function the verifier
	// refused, truncation, trailing garbage). Rejected bytes never reach
	// either cache tier.
	streamRejects atomic.Uint64

	// Run-session budget accounting: cumulative guest work (rt.Env step
	// and allocation counters drained after every session) and kill
	// counters by budget, so hostile-guest terminations are visible as
	// metrics, not just per-request errors.
	guestSteps      atomic.Int64
	guestAllocs     atomic.Int64
	stepLimitKills  atomic.Uint64
	allocLimitKills atomic.Uint64
	interruptKills  atomic.Uint64
	deadlineKills   atomic.Uint64

	// Warm-session pool accounting: sessions served from a snapshot
	// clone (hits), snapshots built+verified+published (builds),
	// requests whose budgets were too tight to admit a clone (declines,
	// served fresh), snapshots that failed their publish-time
	// self-verification (verifyFails — a clone-machinery alarm, always 0
	// in a healthy server), and LRU evictions.
	poolHits        atomic.Uint64
	poolBuilds      atomic.Uint64
	poolDeclines    atomic.Uint64
	poolVerifyFails atomic.Uint64
	poolEvictions   atomic.Uint64

	// Per-tenant accounting. tenantRejects is the fleet-visible total of
	// fair-admission 429s; the per-tenant breakdown (runs, rejects,
	// in-flight, budget drain, kills by reason) lives in tenants, a
	// lazily grown bounded map — beyond maxTenants, rows fold into the
	// "overflow" tenant so a tenant-id flood cannot grow the map without
	// bound.
	tenantRejects atomic.Uint64
	tmu           sync.Mutex
	tenants       map[string]*tenantCounters

	// Per-stage latency histograms. compileHist covers the whole
	// producer pipeline (one sample per actual compile); decodeHist,
	// verifyHist, prepareHist, and compileBackendHist the consumer
	// loader stages (one sample per load attempt — preparation and
	// backend compilation are shared by every session of a unit, so
	// their counts track loads, not runs); runHist one sample per
	// execution session.
	compileHist        obs.Histogram
	decodeHist         obs.Histogram
	verifyHist         obs.Histogram
	prepareHist        obs.Histogram
	compileBackendHist obs.Histogram
	runHist            obs.Histogram
	peerFillHist       obs.Histogram // one sample per peer fetch+admission attempt
	// wireDecodeStreamHist covers the whole streaming decode of one
	// /run-stream unit, first header byte to final admission (or
	// rejection) — it overlaps guest execution by design.
	wireDecodeStreamHist obs.Histogram
}

// DefaultTenant is the accounting identity of run requests that carry
// no tenant field.
const DefaultTenant = "anon"

// maxTenants bounds the per-tenant metrics map; the first maxTenants
// distinct tenant ids get their own rows, later ones share "overflow".
const maxTenants = 256

// tenantCounters is one tenant's accounting row.
type tenantCounters struct {
	runs     atomic.Uint64
	rejects  atomic.Uint64
	inFlight atomic.Int64
	steps    atomic.Int64
	allocs   atomic.Int64
	// kills indexed by killReasons order.
	kills [len(killReasons)]atomic.Uint64
}

// killReasons is the stable label order of the kill-reason dimension.
var killReasons = [...]string{"alloc_limit", "deadline", "interrupt", "step_limit"}

func killIdx(reason string) int {
	for i, r := range killReasons {
		if r == reason {
			return i
		}
	}
	return -1
}

// tenant returns (creating on first sight) the counters row for name.
func (m *Metrics) tenant(name string) *tenantCounters {
	m.tmu.Lock()
	defer m.tmu.Unlock()
	if m.tenants == nil {
		m.tenants = make(map[string]*tenantCounters)
	}
	tc, ok := m.tenants[name]
	if !ok {
		if len(m.tenants) >= maxTenants {
			name = "overflow"
			if tc, ok = m.tenants[name]; ok {
				return tc
			}
		}
		tc = &tenantCounters{}
		m.tenants[name] = tc
	}
	return tc
}

// tenantRows snapshots the per-tenant map in sorted name order.
func (m *Metrics) tenantRows() []tenantRow {
	m.tmu.Lock()
	rows := make([]tenantRow, 0, len(m.tenants))
	for name, tc := range m.tenants {
		rows = append(rows, tenantRow{name: name, tc: tc})
	}
	m.tmu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	return rows
}

type tenantRow struct {
	name string
	tc   *tenantCounters
}

// TenantStats is one tenant's row in the /stats snapshot.
type TenantStats struct {
	Runs     uint64            `json:"runs"`
	Rejects  uint64            `json:"rejects"`
	InFlight int64             `json:"in_flight"`
	Steps    int64             `json:"steps"`
	Allocs   int64             `json:"allocs"`
	Kills    map[string]uint64 `json:"kills,omitempty"`
}

// Stats is the exported snapshot of Metrics, plus the cache sizes filled
// in by the component that owns them. It is what GET /stats serves.
type Stats struct {
	// Node is the fleet identity of the server that produced this
	// snapshot (absent for single-node servers).
	Node string `json:"node,omitempty"`

	// Producer side (content-addressed store + compile pool).
	CompileRequests  uint64 `json:"compile_requests"`
	CacheHits        uint64 `json:"cache_hits"`
	DiskHits         uint64 `json:"disk_hits"`
	Compiles         uint64 `json:"compiles"`
	Coalesced        uint64 `json:"coalesced"`
	CompileErrors    uint64 `json:"compile_errors"`
	CompilesInFlight int64  `json:"compiles_in_flight"`
	Evictions        uint64 `json:"evictions"`
	UnitsCached      int    `json:"units_cached"`

	// Cluster peer-fill path (see Metrics).
	PeerFills       uint64 `json:"peer_fills"`
	PeerFillErrors  uint64 `json:"peer_fill_errors"`
	PeerFillRejects uint64 `json:"peer_fill_rejects"`

	// Consumer side (loader cache + execution sessions).
	Loads         uint64 `json:"loads"`
	LoaderHits    uint64 `json:"loader_hits"`
	LoadErrors    uint64 `json:"load_errors"`
	LoaderEvicted uint64 `json:"loader_evicted"`
	ModulesLoaded int    `json:"modules_loaded"`
	Runs          uint64 `json:"runs"`
	RunErrors     uint64 `json:"run_errors"`
	RunsInFlight  int64  `json:"runs_in_flight"`
	StreamRejects uint64 `json:"stream_rejects"`

	// Guest budget accounting (see Metrics).
	GuestSteps      int64  `json:"guest_steps"`
	GuestAllocs     int64  `json:"guest_allocs"`
	StepLimitKills  uint64 `json:"step_limit_kills"`
	AllocLimitKills uint64 `json:"alloc_limit_kills"`
	InterruptKills  uint64 `json:"interrupt_kills"`
	DeadlineKills   uint64 `json:"deadline_kills"`

	// Warm-session pool (see Metrics). PoolSessions is the resident
	// snapshot count, filled in by the server.
	PoolHits        uint64 `json:"pool_hits"`
	PoolBuilds      uint64 `json:"pool_builds"`
	PoolDeclines    uint64 `json:"pool_declines"`
	PoolVerifyFails uint64 `json:"pool_verify_fails"`
	PoolEvictions   uint64 `json:"pool_evictions"`
	PoolSessions    int    `json:"pool_sessions"`

	// Multi-tenant accounting: total fair-admission rejections plus the
	// per-tenant breakdown.
	TenantRejects uint64                 `json:"tenant_rejects"`
	Tenants       map[string]TenantStats `json:"tenants,omitempty"`

	// Cumulative latencies (nanoseconds) over all requests. Legacy keys:
	// derived from the histogram sums so they keep increasing exactly as
	// before the histograms existed.
	CompileNanos          int64 `json:"compile_nanos"`
	DecodeNanos           int64 `json:"decode_nanos"`
	VerifyNanos           int64 `json:"verify_nanos"`
	PrepareNanos          int64 `json:"prepare_nanos"`
	CompileBackendNanos   int64 `json:"compile_backend_nanos"`
	RunNanos              int64 `json:"run_nanos"`
	PeerFillNanos         int64 `json:"peer_fill_nanos"`
	WireDecodeStreamNanos int64 `json:"wire_decode_stream_nanos"`

	// Per-stage latency distributions (count, sum, p50/p90/p99).
	CompileLatency          obs.LatencySummary `json:"compile_latency"`
	DecodeLatency           obs.LatencySummary `json:"decode_latency"`
	VerifyLatency           obs.LatencySummary `json:"verify_latency"`
	PrepareLatency          obs.LatencySummary `json:"prepare_latency"`
	CompileBackendLatency   obs.LatencySummary `json:"compile_backend_latency"`
	RunLatency              obs.LatencySummary `json:"run_latency"`
	PeerFillLatency         obs.LatencySummary `json:"peer_fill_latency"`
	WireDecodeStreamLatency obs.LatencySummary `json:"wire_decode_stream_latency"`
}

func (m *Metrics) snapshot() Stats {
	compile := m.compileHist.Snapshot()
	decode := m.decodeHist.Snapshot()
	verify := m.verifyHist.Snapshot()
	prepare := m.prepareHist.Snapshot()
	compileBackend := m.compileBackendHist.Snapshot()
	run := m.runHist.Snapshot()
	peerFill := m.peerFillHist.Snapshot()
	wireStream := m.wireDecodeStreamHist.Snapshot()
	return Stats{
		Node:                    m.node,
		CompileRequests:         m.compileRequests.Load(),
		CacheHits:               m.cacheHits.Load(),
		DiskHits:                m.diskHits.Load(),
		Compiles:                m.compiles.Load(),
		Coalesced:               m.coalesced.Load(),
		CompileErrors:           m.compileErrors.Load(),
		CompilesInFlight:        m.compilesInFlight.Load(),
		Evictions:               m.evictions.Load(),
		PeerFills:               m.peerFills.Load(),
		PeerFillErrors:          m.peerFillErrors.Load(),
		PeerFillRejects:         m.peerFillRejects.Load(),
		Loads:                   m.loads.Load(),
		LoaderHits:              m.loaderHits.Load(),
		LoadErrors:              m.loadErrors.Load(),
		LoaderEvicted:           m.loaderEvict.Load(),
		Runs:                    m.runs.Load(),
		RunErrors:               m.runErrors.Load(),
		RunsInFlight:            m.runsInFlight.Load(),
		StreamRejects:           m.streamRejects.Load(),
		GuestSteps:              m.guestSteps.Load(),
		GuestAllocs:             m.guestAllocs.Load(),
		StepLimitKills:          m.stepLimitKills.Load(),
		AllocLimitKills:         m.allocLimitKills.Load(),
		InterruptKills:          m.interruptKills.Load(),
		DeadlineKills:           m.deadlineKills.Load(),
		PoolHits:                m.poolHits.Load(),
		PoolBuilds:              m.poolBuilds.Load(),
		PoolDeclines:            m.poolDeclines.Load(),
		PoolVerifyFails:         m.poolVerifyFails.Load(),
		PoolEvictions:           m.poolEvictions.Load(),
		TenantRejects:           m.tenantRejects.Load(),
		Tenants:                 m.tenantStats(),
		CompileNanos:            compile.SumNanos,
		DecodeNanos:             decode.SumNanos,
		VerifyNanos:             verify.SumNanos,
		PrepareNanos:            prepare.SumNanos,
		CompileBackendNanos:     compileBackend.SumNanos,
		RunNanos:                run.SumNanos,
		PeerFillNanos:           peerFill.SumNanos,
		WireDecodeStreamNanos:   wireStream.SumNanos,
		CompileLatency:          compile.Summary(),
		DecodeLatency:           decode.Summary(),
		VerifyLatency:           verify.Summary(),
		PrepareLatency:          prepare.Summary(),
		CompileBackendLatency:   compileBackend.Summary(),
		RunLatency:              run.Summary(),
		PeerFillLatency:         peerFill.Summary(),
		WireDecodeStreamLatency: wireStream.Summary(),
	}
}

// tenantStats snapshots the per-tenant rows for /stats.
func (m *Metrics) tenantStats() map[string]TenantStats {
	rows := m.tenantRows()
	if len(rows) == 0 {
		return nil
	}
	out := make(map[string]TenantStats, len(rows))
	for _, r := range rows {
		ts := TenantStats{
			Runs:     r.tc.runs.Load(),
			Rejects:  r.tc.rejects.Load(),
			InFlight: r.tc.inFlight.Load(),
			Steps:    r.tc.steps.Load(),
			Allocs:   r.tc.allocs.Load(),
		}
		for i, reason := range killReasons {
			if n := r.tc.kills[i].Load(); n > 0 {
				if ts.Kills == nil {
					ts.Kills = make(map[string]uint64)
				}
				ts.Kills[reason] = n
			}
		}
		out[r.name] = ts
	}
	return out
}

// recordKill classifies an abnormal guest termination by the exhausted
// budget (reason as reported by rt.KillReason plus the server-side
// "deadline" refinement; "" records nothing), attributed to a tenant.
func (m *Metrics) recordKill(reason string, tc *tenantCounters) {
	switch reason {
	case "step_limit":
		m.stepLimitKills.Add(1)
	case "alloc_limit":
		m.allocLimitKills.Add(1)
	case "interrupt":
		m.interruptKills.Add(1)
	case "deadline":
		m.deadlineKills.Add(1)
	default:
		return
	}
	if tc != nil {
		if i := killIdx(reason); i >= 0 {
			tc.kills[i].Add(1)
		}
	}
}

// WritePrometheus renders the full metric surface in the Prometheus text
// exposition format. unitsCached, modulesLoaded, and poolSessions are
// the cache occupancies owned by the store, loader, and warm-session
// pool. In cluster mode every series carries a node="<name>" label so
// fleet scrapes stay per-node.
func (m *Metrics) WritePrometheus(w io.Writer, unitsCached, modulesLoaded, poolSessions int) {
	p := obs.NewPromWriter(w).ConstLabel("node", m.node)
	p.Counter("safetsa_compile_requests_total", "Compile requests received.", m.compileRequests.Load())
	p.Counter("safetsa_cache_hits_total", "Compile requests served from the in-memory unit store.", m.cacheHits.Load())
	p.Counter("safetsa_disk_hits_total", "Compile requests served from the on-disk unit store.", m.diskHits.Load())
	p.Counter("safetsa_compiles_total", "Producer pipelines actually run.", m.compiles.Load())
	p.Counter("safetsa_coalesced_total", "Compile requests coalesced onto an in-flight compile.", m.coalesced.Load())
	p.Counter("safetsa_compile_errors_total", "Failed producer pipelines.", m.compileErrors.Load())
	p.Counter("safetsa_evictions_total", "Units evicted from the in-memory store.", m.evictions.Load())
	p.Gauge("safetsa_compiles_in_flight", "Producer pipelines currently running.", m.compilesInFlight.Load())
	p.Gauge("safetsa_units_cached", "Encoded units resident in the in-memory store.", int64(unitsCached))

	p.Counter("safetsa_peer_fills_total", "Units fetched from a fleet peer and admitted by local re-verification.", m.peerFills.Load())
	p.Counter("safetsa_peer_fill_errors_total", "Peer unit fetches that failed before admission.", m.peerFillErrors.Load())
	p.Counter("safetsa_peer_fill_rejects_total", "Peer-supplied units rejected by local decode+verify admission.", m.peerFillRejects.Load())

	p.Counter("safetsa_loads_total", "Units decoded and verified by the loader.", m.loads.Load())
	p.Counter("safetsa_loader_hits_total", "Run requests served from the decoded-module cache.", m.loaderHits.Load())
	p.Counter("safetsa_load_errors_total", "Units rejected by decode or the verifier.", m.loadErrors.Load())
	p.Counter("safetsa_loader_evicted_total", "Decoded modules evicted from the loader cache.", m.loaderEvict.Load())
	p.Gauge("safetsa_modules_loaded", "Decoded modules resident in the loader cache.", int64(modulesLoaded))

	p.Counter("safetsa_runs_total", "Execution sessions started.", m.runs.Load())
	p.Counter("safetsa_run_errors_total", "Execution sessions ending in a guest failure.", m.runErrors.Load())
	p.Counter("safetsa_stream_rejects_total", "Streaming runs whose unit was rejected mid-stream; nothing cached.", m.streamRejects.Load())
	p.Gauge("safetsa_runs_in_flight", "Execution sessions currently running.", m.runsInFlight.Load())
	p.Counter("safetsa_guest_steps_total", "Interpreter steps executed by guest programs.", uint64(m.guestSteps.Load()))
	p.Counter("safetsa_guest_allocs_total", "Allocation units charged by guest programs.", uint64(m.guestAllocs.Load()))

	// Kill counters carry both the budget dimension and the tenant the
	// killed session was accounted to; rows render in (reason, tenant)
	// order, every reason emitted per tenant so scrapes see a fixed
	// matrix.
	tenants := m.tenantRows()
	var killRows []obs.LabeledCounter
	for ri, reason := range killReasons {
		for _, tr := range tenants {
			killRows = append(killRows, obs.LabeledCounter{
				Labels: []string{"reason", reason, "tenant", tr.name},
				Value:  tr.tc.kills[ri].Load(),
			})
		}
	}
	p.CounterRows("safetsa_guest_kills_total", "Guest sessions terminated by an exhausted budget, by reason and tenant.", killRows)

	p.Counter("safetsa_pool_hits_total", "Run sessions served from a warm-session snapshot clone.", m.poolHits.Load())
	p.Counter("safetsa_pool_builds_total", "Warm-session snapshots built, verified, and published.", m.poolBuilds.Load())
	p.Counter("safetsa_pool_declines_total", "Runs declined by the pool because their budgets were below the init drain.", m.poolDeclines.Load())
	p.Counter("safetsa_pool_verify_fails_total", "Warm-session snapshots rejected by publish-time self-verification.", m.poolVerifyFails.Load())
	p.Counter("safetsa_pool_evictions_total", "Warm-session snapshots evicted by the pool LRU.", m.poolEvictions.Load())
	p.Gauge("safetsa_pool_sessions", "Warm-session snapshots resident in the pool.", int64(poolSessions))

	p.Counter("safetsa_tenant_rejects_total", "Runs rejected by the per-tenant fair-admission gate.", m.tenantRejects.Load())
	tenantRuns := make(map[string]uint64, len(tenants))
	tenantRejects := make(map[string]uint64, len(tenants))
	tenantSteps := make(map[string]uint64, len(tenants))
	tenantAllocs := make(map[string]uint64, len(tenants))
	tenantInFlight := make(map[string]int64, len(tenants))
	for _, tr := range tenants {
		tenantRuns[tr.name] = tr.tc.runs.Load()
		tenantRejects[tr.name] = tr.tc.rejects.Load()
		tenantSteps[tr.name] = uint64(tr.tc.steps.Load())
		tenantAllocs[tr.name] = uint64(tr.tc.allocs.Load())
		tenantInFlight[tr.name] = tr.tc.inFlight.Load()
	}
	p.CounterVec("safetsa_tenant_runs_total", "Run sessions accounted per tenant.", "tenant", tenantRuns)
	p.CounterVec("safetsa_tenant_throttled_total", "Fair-admission rejections per tenant.", "tenant", tenantRejects)
	p.CounterVec("safetsa_tenant_steps_total", "Interpreter steps drained per tenant.", "tenant", tenantSteps)
	p.CounterVec("safetsa_tenant_allocs_total", "Allocation units drained per tenant.", "tenant", tenantAllocs)
	p.GaugeVec("safetsa_tenant_runs_in_flight", "Run sessions currently in flight per tenant.", "tenant", tenantInFlight)

	p.HistogramVec("safetsa_stage_duration_seconds", "Pipeline stage latency.", "stage",
		map[string]obs.HistogramSnapshot{
			"compile":            m.compileHist.Snapshot(),
			"decode":             m.decodeHist.Snapshot(),
			"verify":             m.verifyHist.Snapshot(),
			"prepare":            m.prepareHist.Snapshot(),
			"compile_backend":    m.compileBackendHist.Snapshot(),
			"run":                m.runHist.Snapshot(),
			"peer_fill":          m.peerFillHist.Snapshot(),
			"wire_decode_stream": m.wireDecodeStreamHist.Snapshot(),
		})
}
