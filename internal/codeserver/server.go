// Package codeserver is the concurrent mobile-code distribution service:
// a content-addressed store of compiled SafeTSA distribution units (with
// singleflight fills and an optional on-disk tier), a bounded parallel
// producer pool, a consumer-side loader cache that decodes and verifies
// each unit once, and an HTTP API over all three. It turns the one-shot
// safetsac/safetsarun pipeline into a service that amortizes producer
// work across clients and serves verified, immutable modules to
// concurrent interpreter sessions.
package codeserver

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"safetsa/internal/driver"
	"safetsa/internal/interp"
	"safetsa/internal/obs"
	"safetsa/internal/rt"
	"safetsa/internal/wire"
)

// Config tunes the server. The zero value is usable: in-memory only,
// GOMAXPROCS compile workers, no step budget.
type Config struct {
	// CacheDir enables the on-disk unit store when non-empty.
	CacheDir string
	// Workers bounds concurrent producer pipelines (<=0: GOMAXPROCS).
	Workers int
	// StageTimeout bounds each producer stage (<=0: no stage deadline).
	StageTimeout time.Duration
	// MaxUnits bounds the in-memory encoded-unit cache (<=0: 1024).
	MaxUnits int
	// MaxModules bounds the decoded-module loader cache (<=0: 256).
	MaxModules int
	// MaxSteps caps the per-run step budget; requests may ask for less
	// but never more (0: unlimited).
	MaxSteps int64
	// MaxAllocs caps the per-run allocation budget (rt.Env.MaxAlloc)
	// the same way: requests may ask for less but never more
	// (0: unlimited). This is the server-side backstop that makes the
	// in-library alloc budgets reachable from POST /run.
	MaxAllocs int64
	// RunTimeout is the wall-clock deadline of one run session; on
	// expiry the guest is interrupted (it dies with rt.ErrInterrupted,
	// recorded as a "deadline" kill) while its HTTP response still
	// completes with the output produced so far (0: no deadline).
	RunTimeout time.Duration
	// TenantMaxInFlight bounds concurrent run sessions per tenant; a
	// run beyond the bound is rejected with a TenantBusyError (HTTP 429
	// + Retry-After) before any work happens (0: unlimited).
	TenantMaxInFlight int
	// PoolUnits bounds the warm-session pool: per-(unit, engine)
	// snapshots of post-static-init state cloned into later sessions so
	// static init runs once per unit, not once per request (0: default
	// 256; negative: pool disabled, every session runs init fresh).
	PoolUnits int
	// MaxSourceBytes bounds the /compile request body (<=0: 8 MiB).
	MaxSourceBytes int64
	// Traces bounds the ring buffer of recent request traces served by
	// /debug/traces (<=0: 64).
	Traces int
	// ModuleOpt upgrades every optimizing compile to the interprocedural
	// tier (CHA/RTA devirtualization, inlining, flow-based check
	// elimination): requests asking for Optimize get ModuleOpt too. The
	// tier participates in the content hash, so units built either way
	// remain distinct.
	ModuleOpt bool
	// Engine selects the default execution engine for run sessions:
	// driver.EnginePrepared (also the "" default),
	// driver.EngineCompiled, or driver.EngineReference. Requests may
	// override it per session.
	Engine string
	// NodeName identifies this server inside a fleet: it labels every
	// Prometheus series and the stats snapshot. Empty for single-node
	// deployments (no label, historical wire shape).
	NodeName string
	// WireVersion selects the wire format units are encoded in: 0 or 1
	// for the fixed-code v1 format, 2 for the adaptive range-coded v2
	// format. The version participates in the content hash, so a fleet
	// upgrading to v2 never serves mislabeled bytes.
	WireVersion int
}

// PeerFiller fetches the encoded bytes of a unit this node lacks from
// the fleet peer that owns it. Implementations (internal/cluster) speak
// the peer HTTP API; the server treats whatever comes back as untrusted
// input and re-verifies it locally before caching. optimized is
// peer-reported metadata (it only affects bookkeeping, never safety).
type PeerFiller interface {
	FetchUnit(ctx context.Context, k Key) (data []byte, optimized bool, err error)
}

// Server ties the store, pool, and loader cache together and exposes
// both a programmatic API (used by tests and embedding daemons) and an
// http.Handler.
type Server struct {
	cfg    Config
	m      *Metrics
	tracer *obs.Tracer
	store  *Store
	pool   *Pool
	loader *LoaderCache

	// sessions is the warm-session pool (nil when Config.PoolUnits < 0):
	// post-static-init snapshots cloned into later run sessions.
	sessions *sessionPool

	// peerFiller, when set (SetPeerFiller, before serving), turns a
	// store miss on the run/unit paths into a peer fill instead of a
	// hard ErrUnitNotFound.
	peerFiller PeerFiller

	// baseCtx is cancelled by Shutdown; every run session derives its
	// interrupt from both its request context and this one, so a
	// draining server can stop in-flight guests without killing the
	// HTTP exchange they ride on.
	baseCtx    context.Context
	baseCancel context.CancelFunc
}

// New builds a server from the config.
func New(cfg Config) (*Server, error) {
	if cfg.MaxSourceBytes <= 0 {
		cfg.MaxSourceBytes = 8 << 20
	}
	switch cfg.WireVersion {
	case 0, 1, 2:
	default:
		return nil, fmt.Errorf("codeserver: unknown wire version %d (want 1 or 2)", cfg.WireVersion)
	}
	if _, err := resolveEngine(cfg.Engine, ""); err != nil {
		return nil, err
	}
	m := &Metrics{node: cfg.NodeName}
	store, err := NewStore(cfg.CacheDir, cfg.MaxUnits, m)
	if err != nil {
		return nil, err
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	var sessions *sessionPool
	if cfg.PoolUnits >= 0 {
		units := cfg.PoolUnits
		if units == 0 {
			units = 256
		}
		sessions = newSessionPool(units, m)
	}
	return &Server{
		cfg:        cfg,
		m:          m,
		tracer:     obs.NewTracer(cfg.Traces),
		store:      store,
		pool:       NewPool(cfg.Workers, cfg.StageTimeout, m),
		loader:     NewLoaderCache(cfg.MaxModules, m),
		sessions:   sessions,
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
	}, nil
}

// SetPeerFiller installs the cluster peer-fill hook. Call before the
// server starts serving traffic; the hook is read without locking.
func (s *Server) SetPeerFiller(f PeerFiller) { s.peerFiller = f }

// MaxSourceBytes reports the configured /compile request-body bound, so
// outer routing layers can enforce the same limit before forwarding.
func (s *Server) MaxSourceBytes() int64 { return s.cfg.MaxSourceBytes }

// Shutdown interrupts every in-flight guest run (each dies with
// rt.ErrInterrupted, which is reported inside its RunResult like any
// other budget kill — the HTTP response is still written in full) and
// waits until no runs remain in flight or ctx expires. New run sessions
// started after Shutdown are interrupted immediately, so the drain
// converges even while already-accepted connections trickle in.
func (s *Server) Shutdown(ctx context.Context) error {
	s.baseCancel()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.m.runsInFlight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Stats snapshots the server metrics plus the cache occupancies.
func (s *Server) Stats() Stats {
	st := s.m.snapshot()
	st.UnitsCached = s.store.Len()
	st.ModulesLoaded = s.loader.Len()
	if s.sessions != nil {
		st.PoolSessions = s.sessions.Len()
	}
	return st
}

// CompileUnit compiles (or fetches) the unit for a source set. The bool
// reports whether the unit was served from cache. Each call is recorded
// as one trace in the server's ring buffer, with the producer stages as
// nested spans when the pipeline actually runs.
func (s *Server) CompileUnit(ctx context.Context, files map[string]string, opts Options) (*Unit, bool, error) {
	if len(files) == 0 {
		return nil, false, &driver.Error{Kind: driver.KindParse,
			Err: errors.New("codeserver: empty source set")}
	}
	ctx, tr := s.tracer.StartTrace(ctx, "compile")
	defer tr.Finish()
	s.m.compileRequests.Add(1)
	// Normalize the tier before hashing: a server configured for the
	// interprocedural tier upgrades every optimizing request, and
	// ModuleOpt always implies Optimize. Hashing the normalized form
	// keeps one canonical key per effective pipeline.
	if s.cfg.ModuleOpt && opts.Optimize {
		opts.ModuleOpt = true
	}
	if opts.ModuleOpt {
		opts.Optimize = true
	}
	if s.cfg.WireVersion == 2 {
		opts.WireV2 = true
	}
	k := KeyFor(files, opts)
	return s.store.GetOrFill(ctx, k, func(ctx context.Context) (*Unit, error) {
		u, err := s.pool.Compile(ctx, files, opts)
		if err != nil {
			s.m.compileErrors.Add(1)
		}
		return u, err
	})
}

// AdmitUnit re-establishes type safety and referential security of
// peer-supplied wire bytes through the exact admission path a consumer
// applies to any received unit — wire.DecodeVerified, the paper's cheap
// per-plane counter checks — and builds the Unit from locally derived
// facts only (size and instruction count come from the local decode,
// never from peer metadata). Rejections are counted and returned as
// verify-kind errors; rejected bytes never reach either store tier.
func (s *Server) AdmitUnit(k Key, data []byte, optimized bool) (*Unit, error) {
	mod, err := wire.DecodeVerified(data)
	if err != nil {
		s.m.peerFillRejects.Add(1)
		return nil, &driver.Error{Kind: driver.KindVerify,
			Err: fmt.Errorf("codeserver: peer unit %s rejected by local admission: %w", k, err)}
	}
	return &Unit{Key: k, Wire: data, Size: len(data), Instrs: mod.NumInstrs(), Optimized: optimized}, nil
}

// AdmitReplica verifies and stores a unit pushed by a peer (hot-unit
// replication). The push is unsolicited, so it goes through the same
// admission as a pull-based peer fill before touching the store.
func (s *Server) AdmitReplica(k Key, data []byte, optimized bool) (*Unit, error) {
	u, err := s.AdmitUnit(k, data, optimized)
	if err != nil {
		return nil, err
	}
	s.m.peerFills.Add(1)
	s.store.Put(u)
	return u, nil
}

// PeerFillUnit returns the unit for k from the local store, or fills it
// with bytes fetched from its owner elsewhere in the fleet. The fetched
// bytes are untrusted: they must pass AdmitUnit before they are cached
// in either tier. Concurrent callers coalesce on one fetch through the
// store's singleflight, so a node asks the owner for a missing unit at
// most once at a time no matter how many requests race. The bool
// reports a local cache hit.
func (s *Server) PeerFillUnit(ctx context.Context, k Key, fetch func(context.Context) (data []byte, optimized bool, err error)) (*Unit, bool, error) {
	return s.store.GetOrFill(ctx, k, func(ctx context.Context) (*Unit, error) {
		fctx, sp := obs.Start(ctx, "peer_fill")
		defer sp.End()
		start := time.Now()
		data, optimized, err := fetch(fctx)
		if err != nil {
			s.m.peerFillErrors.Add(1)
			return nil, err
		}
		u, err := s.AdmitUnit(k, data, optimized)
		s.m.peerFillHist.Observe(time.Since(start))
		if err != nil {
			return nil, err
		}
		s.m.peerFills.Add(1)
		return u, nil
	})
}

// fillFromPeer resolves a store miss through the peer filler when one
// is installed; without one the miss stays ErrUnitNotFound.
func (s *Server) fillFromPeer(ctx context.Context, k Key) (*Unit, error) {
	if s.peerFiller == nil {
		return nil, ErrUnitNotFound
	}
	u, _, err := s.PeerFillUnit(ctx, k, func(ctx context.Context) ([]byte, bool, error) {
		return s.peerFiller.FetchUnit(ctx, k)
	})
	return u, err
}

// Unit returns the encoded distribution unit for a key, if present in
// the store (memory or disk).
func (s *Server) Unit(k Key) (*Unit, bool) { return s.store.Get(k) }

// RunResult is the outcome of one execution session.
type RunResult struct {
	OK     bool   `json:"ok"`
	Output string `json:"output"`
	Error  string `json:"error,omitempty"`
	Steps  int64  `json:"steps"`
	Allocs int64  `json:"allocs"`
}

// ErrUnitNotFound is returned by RunUnit for a hash the store does not
// hold.
var ErrUnitNotFound = errors.New("codeserver: unit not found")

// TenantBusyError is returned when a run would exceed the tenant's
// in-flight bound. The HTTP layer maps it to 429 with a Retry-After
// header; nothing is executed on the rejected path.
type TenantBusyError struct {
	Tenant string
	Limit  int
}

func (e *TenantBusyError) Error() string {
	return fmt.Sprintf("codeserver: tenant %q at its in-flight run limit (%d)", e.Tenant, e.Limit)
}

// resolveEngine folds the per-request engine over the server default
// ("" falls through to the config, which itself defaults to prepared).
func resolveEngine(cfgEngine, reqEngine string) (string, error) {
	e := reqEngine
	if e == "" {
		e = cfgEngine
	}
	switch e {
	case "", driver.EnginePrepared:
		return driver.EnginePrepared, nil
	case driver.EngineCompiled:
		return driver.EngineCompiled, nil
	case driver.EngineReference:
		return driver.EngineReference, nil
	}
	return "", &driver.Error{Kind: driver.KindParse,
		Err: fmt.Errorf("codeserver: unknown engine %q (want %q, %q, or %q)",
			e, driver.EnginePrepared, driver.EngineCompiled, driver.EngineReference)}
}

// clampBudget folds a per-request budget over the server cap: requests
// may ask for less than the cap but never more, and a request that asks
// for nothing (<= 0) gets the cap itself (or unlimited when the server
// sets none).
func clampBudget(req, cap int64) int64 {
	if cap > 0 && (req <= 0 || req > cap) {
		return cap
	}
	if req <= 0 {
		return 0
	}
	return req
}

// RunOptions selects the budgets, engine, and accounting identity of
// one run session. The zero value means: server-default budgets and
// engine, tenant DefaultTenant.
type RunOptions struct {
	// MaxSteps / MaxAllocs request per-run budgets; both are clamped to
	// the server caps (<= 0 requests the cap itself).
	MaxSteps  int64
	MaxAllocs int64
	// Engine overrides the server's default evaluator ("" keeps it).
	Engine string
	// Tenant is the accounting identity ("" folds to DefaultTenant).
	Tenant string
}

// RunUnit executes the unit's main on the server's default engine; see
// RunUnitOpts.
func (s *Server) RunUnit(ctx context.Context, k Key, maxSteps int64) (RunResult, error) {
	return s.RunUnitOpts(ctx, k, RunOptions{MaxSteps: maxSteps})
}

// RunUnitEngine executes the unit's main with an explicit engine; see
// RunUnitOpts.
func (s *Server) RunUnitEngine(ctx context.Context, k Key, maxSteps int64, engine string) (RunResult, error) {
	return s.RunUnitOpts(ctx, k, RunOptions{MaxSteps: maxSteps, Engine: engine})
}

// RunUnitOpts executes the unit's main in an isolated session: the
// decoded module and its prepared and compiled forms come from the
// loader cache (shared read-only), while the class metadata, statics,
// and heap are per-session, so concurrent sessions cannot observe each
// other. When the warm-session pool holds a snapshot for (unit, engine)
// and the request's budgets admit it, the session is cloned from the
// post-static-init snapshot instead of re-running the initializers —
// byte-exact with a fresh session by the Snapshot contract. Guest
// failures (uncaught exceptions, budget kills) are reported inside
// RunResult, not as an error; a tenant over its in-flight bound gets a
// *TenantBusyError before any work happens.
func (s *Server) RunUnitOpts(ctx context.Context, k Key, opts RunOptions) (RunResult, error) {
	engine, err := resolveEngine(s.cfg.Engine, opts.Engine)
	if err != nil {
		return RunResult{}, err
	}
	tenant := opts.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	tc := s.m.tenant(tenant)
	// Fair admission: bound the tenant's concurrent sessions before any
	// load or execution work happens, so one tenant's burst cannot
	// monopolize the run capacity of the node.
	if lim := s.cfg.TenantMaxInFlight; lim > 0 {
		if tc.inFlight.Add(1) > int64(lim) {
			tc.inFlight.Add(-1)
			tc.rejects.Add(1)
			s.m.tenantRejects.Add(1)
			return RunResult{}, &TenantBusyError{Tenant: tenant, Limit: lim}
		}
	} else {
		tc.inFlight.Add(1)
	}
	defer tc.inFlight.Add(-1)
	ctx, tr := s.tracer.StartTrace(ctx, "run")
	defer tr.Finish()
	maxSteps := clampBudget(opts.MaxSteps, s.cfg.MaxSteps)
	maxAllocs := clampBudget(opts.MaxAllocs, s.cfg.MaxAllocs)
	var snap *interp.Snapshot
	if s.sessions != nil {
		if snap = s.sessions.Get(k, engine); snap != nil && !snap.Admits(maxSteps, maxAllocs) {
			// The request's budgets would have killed static init; a
			// clone cannot reproduce that mid-init death, so run fresh.
			s.m.poolDeclines.Add(1)
			snap = nil
		}
	}
	var lu *LoadedUnit
	if snap == nil {
		lctx, lsp := obs.Start(ctx, "load")
		lu, err = s.loader.GetOrLoad(lctx, k, func() ([]byte, error) {
			u, ok := s.store.Get(k)
			if !ok {
				// Cluster mode: a run for a unit this node lacks pulls the
				// encoded bytes from the owner and re-admits them locally
				// before the loader ever sees them.
				pu, perr := s.fillFromPeer(lctx, k)
				if perr != nil {
					return nil, perr
				}
				u = pu
			}
			return u.Wire, nil
		})
		lsp.End()
		if err != nil {
			return RunResult{}, err
		}
	}
	s.m.runs.Add(1)
	s.m.runsInFlight.Add(1)
	_, esp := obs.Start(ctx, "exec")
	start := time.Now()
	var out bytes.Buffer
	// The guest's interrupt fires when the request is abandoned, the
	// server is draining (Shutdown cancelled baseCtx), or the wall-clock
	// run deadline expires — in every case the guest dies with
	// rt.ErrInterrupted while its HTTP exchange stays up.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	stopAfter := context.AfterFunc(s.baseCtx, cancelRun)
	defer stopAfter()
	var deadlineCtx context.Context
	if s.cfg.RunTimeout > 0 {
		var cancelDeadline context.CancelFunc
		deadlineCtx, cancelDeadline = context.WithTimeout(context.Background(), s.cfg.RunTimeout)
		defer cancelDeadline()
		stopDeadline := context.AfterFunc(deadlineCtx, cancelRun)
		defer stopDeadline()
	}
	env := &rt.Env{Out: &out, MaxSteps: maxSteps, MaxAlloc: maxAllocs, Interrupt: runCtx.Done()}
	res := RunResult{OK: true}
	var l *interp.Loader
	if snap != nil {
		l, err = snap.NewSession(env)
		if err == nil {
			s.m.poolHits.Add(1)
		}
	} else {
		switch engine {
		case driver.EnginePrepared:
			l, err = interp.LoadTrustedDeferred(lu.Mod, lu.Prep, nil, env)
		case driver.EngineCompiled:
			l, err = interp.LoadTrustedDeferred(lu.Mod, nil, lu.Comp, env)
		default:
			l, err = interp.LoadTrustedDeferred(lu.Mod, nil, nil, env)
		}
		if err == nil {
			err = l.RunStaticInit()
			if err == nil && s.sessions != nil {
				s.sessions.Offer(k, engine, l, out.Bytes())
			}
		}
	}
	if err == nil {
		err = l.RunMain()
	}
	s.m.runHist.Observe(time.Since(start))
	esp.End()
	s.m.runsInFlight.Add(-1)
	s.m.guestSteps.Add(env.Steps)
	s.m.guestAllocs.Add(env.Allocs)
	tc.runs.Add(1)
	tc.steps.Add(env.Steps)
	tc.allocs.Add(env.Allocs)
	res.Output = out.String()
	res.Steps = env.Steps
	res.Allocs = env.Allocs
	if err != nil {
		s.m.runErrors.Add(1)
		reason := rt.KillReason(err)
		if reason == "interrupt" && deadlineCtx != nil && deadlineCtx.Err() != nil {
			// The interrupt the guest saw was the wall-clock enforcer,
			// not a client abort or drain.
			reason = "deadline"
		}
		s.m.recordKill(reason, tc)
		res.OK = false
		res.Error = err.Error()
	}
	return res, nil
}

// RunStreamResult is the outcome of one streaming run session: the run
// result plus the content address the admitted unit was cached under.
type RunStreamResult struct {
	RunResult
	// Hash is the wire-addressed key (KeyForWire) of the admitted unit;
	// it is only present when the whole stream verified cleanly, which
	// is also the only case where the unit was cached.
	Hash string `json:"hash,omitempty"`
}

// maxStreamUnitBytes bounds the body of one streaming run. A longer
// body is surfaced as a truncation (the decoder sees the stream end
// mid-unit) or as trailing garbage, both of which reject the unit.
const maxStreamUnitBytes = 64 << 20

// RunUnitStream executes a distribution unit delivered as raw wire
// bytes, starting the guest before the final byte arrives: the symbol
// tables are decoded and statically verified up front, each function is
// admitted by the plane-counter verifier the moment it streams in, and
// execution proceeds exactly as far as admitted code exists
// (wire.DecodeVerifiedStream + interp.LoadTrustedStreaming, reference
// engine). Any failure anywhere in the stream — truncation, a function
// the verifier rejects, trailing garbage — rejects the whole unit: the
// response is a verify error and nothing is cached in either the store
// or the loader tier. Only after Wait returns nil are the exact bytes
// cached under their wire address.
func (s *Server) RunUnitStream(ctx context.Context, body io.Reader, opts RunOptions) (RunStreamResult, error) {
	if opts.Engine != "" && opts.Engine != driver.EngineReference {
		return RunStreamResult{}, &driver.Error{Kind: driver.KindParse,
			Err: fmt.Errorf("codeserver: streaming runs use the %q engine, not %q",
				driver.EngineReference, opts.Engine)}
	}
	tenant := opts.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	tc := s.m.tenant(tenant)
	if lim := s.cfg.TenantMaxInFlight; lim > 0 {
		if tc.inFlight.Add(1) > int64(lim) {
			tc.inFlight.Add(-1)
			tc.rejects.Add(1)
			s.m.tenantRejects.Add(1)
			return RunStreamResult{}, &TenantBusyError{Tenant: tenant, Limit: lim}
		}
	} else {
		tc.inFlight.Add(1)
	}
	defer tc.inFlight.Add(-1)
	ctx, tr := s.tracer.StartTrace(ctx, "run_stream")
	defer tr.Finish()
	maxSteps := clampBudget(opts.MaxSteps, s.cfg.MaxSteps)
	maxAllocs := clampBudget(opts.MaxAllocs, s.cfg.MaxAllocs)

	// The body is teed into a buffer as it is consumed, so the bytes the
	// decoder admitted — and only those — can be cached afterwards.
	var buf bytes.Buffer
	tee := io.TeeReader(io.LimitReader(body, maxStreamUnitBytes+1), &buf)

	_, dsp := obs.Start(ctx, "wire_decode_stream")
	decodeStart := time.Now()
	su, err := wire.DecodeVerifiedStream(tee, wire.DecodeOptions{})
	if err != nil {
		s.m.wireDecodeStreamHist.Observe(time.Since(decodeStart))
		dsp.End()
		s.m.streamRejects.Add(1)
		return RunStreamResult{}, &driver.Error{Kind: driver.KindVerify,
			Err: fmt.Errorf("codeserver: streamed unit rejected: %w", err)}
	}

	s.m.runs.Add(1)
	s.m.runsInFlight.Add(1)
	_, esp := obs.Start(ctx, "exec")
	start := time.Now()
	var out bytes.Buffer
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	stopAfter := context.AfterFunc(s.baseCtx, cancelRun)
	defer stopAfter()
	var deadlineCtx context.Context
	if s.cfg.RunTimeout > 0 {
		var cancelDeadline context.CancelFunc
		deadlineCtx, cancelDeadline = context.WithTimeout(context.Background(), s.cfg.RunTimeout)
		defer cancelDeadline()
		stopDeadline := context.AfterFunc(deadlineCtx, cancelRun)
		defer stopDeadline()
	}
	env := &rt.Env{Out: &out, MaxSteps: maxSteps, MaxAlloc: maxAllocs, Interrupt: runCtx.Done()}
	res := RunStreamResult{RunResult: RunResult{OK: true}}
	l, err := interp.LoadTrustedStreaming(su.Mod, su.WaitFunc, env)
	if err == nil {
		err = l.RunMain()
	}
	// The guest may finish before the tail of the stream arrives;
	// admissibility of the whole unit is decided only by Wait.
	werr := su.Wait()
	s.m.wireDecodeStreamHist.Observe(time.Since(decodeStart))
	dsp.End()
	s.m.runHist.Observe(time.Since(start))
	esp.End()
	s.m.runsInFlight.Add(-1)
	s.m.guestSteps.Add(env.Steps)
	s.m.guestAllocs.Add(env.Allocs)
	tc.runs.Add(1)
	tc.steps.Add(env.Steps)
	tc.allocs.Add(env.Allocs)
	if werr != nil {
		s.m.streamRejects.Add(1)
		s.m.runErrors.Add(1)
		return RunStreamResult{}, &driver.Error{Kind: driver.KindVerify,
			Err: fmt.Errorf("codeserver: streamed unit rejected: %w", werr)}
	}
	res.Output = out.String()
	res.Steps = env.Steps
	res.Allocs = env.Allocs
	if err != nil {
		s.m.runErrors.Add(1)
		reason := rt.KillReason(err)
		if reason == "interrupt" && deadlineCtx != nil && deadlineCtx.Err() != nil {
			reason = "deadline"
		}
		s.m.recordKill(reason, tc)
		res.OK = false
		res.Error = err.Error()
	}
	data := bytes.Clone(buf.Bytes())
	k := KeyForWire(data)
	s.store.Put(&Unit{Key: k, Wire: data, Size: len(data), Instrs: su.Mod.NumInstrs()})
	res.Hash = k.String()
	return res, nil
}

// ---------------------------------------------------------------------
// HTTP API

// CompileRequest is the POST /compile body. Exported so the cluster
// layer (and load generators) speak the same wire shape.
type CompileRequest struct {
	Files    map[string]string `json:"files"`
	Optimize bool              `json:"optimize"`
	// ModuleOpt asks for the interprocedural optimizer tier (implies
	// Optimize); it yields a distinct unit hash from plain Optimize.
	ModuleOpt bool `json:"module_opt"`
}

// CompileResponse is the POST /compile response body.
type CompileResponse struct {
	Hash         string `json:"hash"`
	Size         int    `json:"size"`
	Instructions int    `json:"instructions"`
	Optimized    bool   `json:"optimized"`
	Cached       bool   `json:"cached"`
}

// RunRequest is the POST /run/{hash} body.
type RunRequest struct {
	MaxSteps  int64 `json:"max_steps"`
	MaxAllocs int64 `json:"max_allocs"`
	// Engine optionally overrides the server's default evaluator for
	// this session: "prepared", "compiled", or "reference".
	Engine string `json:"engine,omitempty"`
	// Tenant is the accounting identity of the session; empty falls
	// back to the TenantHeader request header, then DefaultTenant.
	Tenant string `json:"tenant,omitempty"`
}

// TenantHeader is the request header carrying the tenant identity when
// the body does not (and the header routing layers use to forward it).
const TenantHeader = "X-Safetsa-Tenant"

// ErrorResponse is the JSON error body every endpoint uses.
type ErrorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// Handler returns the HTTP API:
//
//	POST /compile       {"files": {...}, "optimize": bool} → unit summary
//	GET  /unit/{hash}   raw distribution-unit bytes
//	POST /run/{hash}    {"max_steps": n} → execution result
//	POST /run-stream    raw unit bytes → streaming execution result
//	GET  /stats         metrics snapshot (JSON)
//	GET  /metrics       metrics in Prometheus text format
//	GET  /debug/traces  ring buffer of recent request traces (JSON)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /compile", s.handleCompile)
	mux.HandleFunc("GET /unit/{hash}", s.handleUnit)
	mux.HandleFunc("POST /run/{hash}", s.handleRun)
	mux.HandleFunc("POST /run-stream", s.handleRunStream)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	return mux
}

// WriteJSON writes an indented JSON body with the given status. Shared
// with the cluster layer so every endpoint keeps one response shape.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// WriteError maps a pipeline error onto an HTTP status: user-program
// faults are 4xx, pipeline faults and timeouts are 5xx.
func WriteError(w http.ResponseWriter, err error) {
	kindStr := driver.KindOf(err).String()
	status := http.StatusInternalServerError
	var busy *TenantBusyError
	switch {
	case errors.As(err, &busy):
		// Fair-admission rejection: the tenant is at its in-flight
		// bound; the client should back off briefly and retry.
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
		kindStr = "throttled"
	case errors.Is(err, ErrUnitNotFound):
		status = http.StatusNotFound
		kindStr = "not_found"
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request
	case driver.IsUserError(err):
		status = http.StatusBadRequest
	}
	WriteJSON(w, status, ErrorResponse{Error: err.Error(), Kind: kindStr})
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxSourceBytes+1))
	if err != nil {
		WriteError(w, err)
		return
	}
	if int64(len(body)) > s.cfg.MaxSourceBytes {
		WriteJSON(w, http.StatusRequestEntityTooLarge, ErrorResponse{
			Error: fmt.Sprintf("source set exceeds %d bytes", s.cfg.MaxSourceBytes),
			Kind:  "parse",
		})
		return
	}
	var req CompileRequest
	if err := json.Unmarshal(body, &req); err != nil {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: "bad request body: " + err.Error(), Kind: "parse"})
		return
	}
	u, cached, err := s.CompileUnit(r.Context(), req.Files,
		Options{Optimize: req.Optimize, ModuleOpt: req.ModuleOpt})
	if err != nil {
		WriteError(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, CompileResponse{
		Hash:         u.Key.String(),
		Size:         u.Size,
		Instructions: u.Instrs,
		Optimized:    u.Optimized,
		Cached:       cached,
	})
}

func (s *Server) handleUnit(w http.ResponseWriter, r *http.Request) {
	k, err := ParseKey(r.PathValue("hash"))
	if err != nil {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Kind: "parse"})
		return
	}
	u, ok := s.store.Get(k)
	if !ok {
		// Cluster mode: pull the unit from its owner (re-verified
		// locally) instead of bouncing the download back to the client.
		pu, err := s.fillFromPeer(r.Context(), k)
		if err != nil {
			WriteError(w, err)
			return
		}
		u = pu
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(u.Wire)))
	_, _ = w.Write(u.Wire)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	k, err := ParseKey(r.PathValue("hash"))
	if err != nil {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Kind: "parse"})
		return
	}
	var req RunRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil && err != io.EOF {
			WriteJSON(w, http.StatusBadRequest, ErrorResponse{
				Error: "bad request body: " + err.Error(), Kind: "parse"})
			return
		}
	}
	if req.Tenant == "" {
		req.Tenant = r.Header.Get(TenantHeader)
	}
	res, err := s.RunUnitOpts(r.Context(), k, RunOptions{
		MaxSteps:  req.MaxSteps,
		MaxAllocs: req.MaxAllocs,
		Engine:    req.Engine,
		Tenant:    req.Tenant,
	})
	if err != nil {
		WriteError(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, res)
}

// handleRunStream is POST /run-stream: the body is the raw distribution
// unit (octet-stream), executed as it arrives. Budgets and tenant ride
// on query parameters and the tenant header, since the body is the unit
// itself.
func (s *Server) handleRunStream(w http.ResponseWriter, r *http.Request) {
	opts := RunOptions{Tenant: r.Header.Get(TenantHeader)}
	q := r.URL.Query()
	for _, p := range []struct {
		name string
		dst  *int64
	}{{"max_steps", &opts.MaxSteps}, {"max_allocs", &opts.MaxAllocs}} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				WriteJSON(w, http.StatusBadRequest, ErrorResponse{
					Error: fmt.Sprintf("bad %s: %v", p.name, err), Kind: "parse"})
				return
			}
			*p.dst = n
		}
	}
	res, err := s.RunUnitStream(r.Context(), r.Body, opts)
	if err != nil {
		WriteError(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, res)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	poolSessions := 0
	if s.sessions != nil {
		poolSessions = s.sessions.Len()
	}
	s.m.WritePrometheus(w, s.store.Len(), s.loader.Len(), poolSessions)
}

// tracesResponse is the wire shape of /debug/traces.
type tracesResponse struct {
	Traces []obs.TraceSnapshot `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	ts := s.tracer.Recent()
	if ts == nil {
		ts = []obs.TraceSnapshot{} // wire contract: always an array
	}
	WriteJSON(w, http.StatusOK, tracesResponse{Traces: ts})
}
