package codeserver

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"safetsa/internal/obs"
	"safetsa/internal/opt"
	"safetsa/internal/wire"
)

// Unit is one compiled distribution unit: the producer pipeline's output
// for a content key. Units are immutable once published.
type Unit struct {
	Key       Key       `json:"-"`
	Wire      []byte    `json:"-"`
	Size      int       `json:"size"`
	Instrs    int       `json:"instructions"`
	Optimized bool      `json:"optimized"`
	OptStats  opt.Stats `json:"opt_stats"`
}

const numShards = 16

// Store is the content-addressed unit store: a sharded in-memory LRU in
// front of an optional on-disk store, with singleflight on fills so that
// concurrent requests for the same key run the producer pipeline exactly
// once.
type Store struct {
	dir         string // "" disables the disk tier
	maxPerShard int
	m           *Metrics
	shards      [numShards]storeShard
}

type storeShard struct {
	mu       sync.Mutex
	entries  map[Key]*list.Element // values are *Unit inside list elements
	order    *list.List            // front = most recently used
	inflight map[Key]*inflightCall
}

type inflightCall struct {
	done     chan struct{} // closed after unit/err are set
	unit     *Unit
	err      error
	fromDisk bool // fill satisfied by the disk tier, not a compile
}

// NewStore creates a store holding at most maxUnits encoded units in
// memory (rounded up to a per-shard capacity, minimum one per shard).
// dir, when non-empty, enables the on-disk tier; it is created if absent.
func NewStore(dir string, maxUnits int, m *Metrics) (*Store, error) {
	if maxUnits <= 0 {
		maxUnits = 1024
	}
	per := (maxUnits + numShards - 1) / numShards
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("codeserver: cache dir: %w", err)
		}
	}
	s := &Store{dir: dir, maxPerShard: per, m: m}
	for i := range s.shards {
		s.shards[i] = storeShard{
			entries:  make(map[Key]*list.Element),
			order:    list.New(),
			inflight: make(map[Key]*inflightCall),
		}
	}
	return s, nil
}

func (s *Store) shardOf(k Key) *storeShard { return &s.shards[k[0]%numShards] }

// Len reports the number of units resident in memory.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Get returns a unit from the memory or disk tier without compiling.
// Lookups on this path (unit downloads, loader-cache fills) are not
// counted as compile-path cache hits.
func (s *Store) Get(k Key) (*Unit, bool) {
	sh := s.shardOf(k)
	sh.mu.Lock()
	if el, ok := sh.entries[k]; ok {
		sh.order.MoveToFront(el)
		sh.mu.Unlock()
		return el.Value.(*Unit), true
	}
	sh.mu.Unlock()
	if u, ok := s.loadDisk(k); ok {
		s.insert(sh, u)
		return u, true
	}
	return nil, false
}

// GetOrFill returns the unit for k, running fill (under singleflight) on
// a miss. The second result reports whether the unit was served without
// running fill in this call (memory/disk hit); callers that coalesced
// onto another caller's in-flight fill see cached=false. Fill errors are
// not cached: every waiter gets the error and the next request retries.
func (s *Store) GetOrFill(ctx context.Context, k Key, fill func(context.Context) (*Unit, error)) (u *Unit, cached bool, err error) {
	sh := s.shardOf(k)
	sh.mu.Lock()
	if el, ok := sh.entries[k]; ok {
		sh.order.MoveToFront(el)
		sh.mu.Unlock()
		s.m.cacheHits.Add(1)
		return el.Value.(*Unit), true, nil
	}
	if fl, ok := sh.inflight[k]; ok {
		sh.mu.Unlock()
		s.m.coalesced.Add(1)
		select {
		case <-fl.done:
			if fl.err != nil {
				return nil, false, fl.err
			}
			return fl.unit, false, nil
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	fl := &inflightCall{done: make(chan struct{})}
	sh.inflight[k] = fl
	sh.mu.Unlock()

	u, err = s.runFill(ctx, sh, k, fl, fill)
	return u, err == nil && fl.fromDisk, err
}

func (s *Store) runFill(ctx context.Context, sh *storeShard, k Key, fl *inflightCall, fill func(context.Context) (*Unit, error)) (*Unit, error) {
	var u *Unit
	var err error
	defer func() {
		fl.unit, fl.err = u, err
		sh.mu.Lock()
		delete(sh.inflight, k)
		sh.mu.Unlock()
		close(fl.done)
	}()

	_, dsp := obs.Start(ctx, "disk")
	du, ok := s.loadDisk(k)
	dsp.End()
	if ok {
		s.m.diskHits.Add(1)
		fl.fromDisk = true
		u = du
		s.insert(sh, u)
		return u, nil
	}
	fctx, fsp := obs.Start(ctx, "fill")
	u, err = fill(fctx)
	fsp.End()
	if err != nil {
		// Error accounting (compile vs peer-fill failure) is the fill
		// callback's job: the store serves both fill flavors.
		return nil, err
	}
	u.Key = k
	s.insert(sh, u)
	s.writeDisk(u)
	return u, nil
}

// Put publishes an already-admitted unit into both tiers, bypassing the
// fill path. It is the landing point for hot-unit replicas pushed by a
// fleet peer — the caller must have run the unit through the local
// admission path (Server.AdmitUnit) first; raw peer bytes never enter
// the store.
func (s *Store) Put(u *Unit) {
	s.insert(s.shardOf(u.Key), u)
	s.writeDisk(u)
}

// insert publishes a unit into the memory tier and evicts past capacity.
func (s *Store) insert(sh *storeShard, u *Unit) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[u.Key]; ok {
		sh.order.MoveToFront(el)
		return
	}
	sh.entries[u.Key] = sh.order.PushFront(u)
	for sh.order.Len() > s.maxPerShard {
		back := sh.order.Back()
		old := back.Value.(*Unit)
		sh.order.Remove(back)
		delete(sh.entries, old.Key)
		s.m.evictions.Add(1)
	}
}

// unitMeta is the sidecar the disk tier keeps next to the raw wire bytes,
// so a disk hit does not need to re-decode the unit to answer /compile.
type unitMeta struct {
	Instrs    int       `json:"instructions"`
	Optimized bool      `json:"optimized"`
	OptStats  opt.Stats `json:"opt_stats"`
}

func (s *Store) wirePath(k Key) string { return filepath.Join(s.dir, k.String()+".tsa") }
func (s *Store) metaPath(k Key) string { return filepath.Join(s.dir, k.String()+".json") }

func (s *Store) loadDisk(k Key) (*Unit, bool) {
	if s.dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(s.wirePath(k))
	if err != nil {
		return nil, false
	}
	u := &Unit{Key: k, Wire: data, Size: len(data)}
	if mb, err := os.ReadFile(s.metaPath(k)); err == nil {
		var meta unitMeta
		if json.Unmarshal(mb, &meta) == nil {
			u.Instrs, u.Optimized, u.OptStats = meta.Instrs, meta.Optimized, meta.OptStats
			return u, true
		}
	}
	// Meta sidecar missing or unreadable: recover the instruction count
	// from the unit itself; a corrupt unit is treated as a miss.
	mod, err := wire.DecodeModule(data)
	if err != nil {
		return nil, false
	}
	u.Instrs = mod.NumInstrs()
	return u, true
}

func (s *Store) writeDisk(u *Unit) {
	if s.dir == "" {
		return
	}
	// Best-effort persistence: the disk tier is an optimization, so I/O
	// errors degrade to recompilation rather than failing the request.
	// Both files are published by writing a fresh CreateTemp file and
	// renaming it into place: a fixed ".tmp" name let concurrent writers
	// for the same key truncate each other's half-written file and then
	// rename the torn result over the cache entry, which loadDisk would
	// serve as a (corrupt) unit. The wire file lands before the sidecar,
	// so a reader between the two renames at worst re-decodes the unit.
	// There is deliberately no fsync: the cache is regenerable from
	// source, so a crash costs at most a recompile, and loadDisk treats
	// undecodable units as misses.
	atomicWrite(s.wirePath(u.Key), u.Wire)
	if mb, err := json.Marshal(unitMeta{Instrs: u.Instrs, Optimized: u.Optimized, OptStats: u.OptStats}); err == nil {
		atomicWrite(s.metaPath(u.Key), mb)
	}
}

// atomicWrite publishes data at path via a unique temp file and rename,
// so readers observe either the previous complete file or the new
// complete file, never a prefix. Errors are swallowed (best-effort tier);
// the temp file is removed on any failure so the cache dir stays clean.
func atomicWrite(path string, data []byte) {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return
	}
	_, werr := f.Write(data)
	cerr := f.Chmod(0o644)
	if err := f.Close(); werr != nil || cerr != nil || err != nil {
		_ = os.Remove(f.Name())
		return
	}
	if err := os.Rename(f.Name(), path); err != nil {
		_ = os.Remove(f.Name())
	}
}
