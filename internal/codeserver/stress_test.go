package codeserver

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"safetsa/internal/corpus"
	"safetsa/internal/driver"
)

// stressUnits are eight corpus programs spanning both groups (generated
// javac-profile classes and hand-written ones); all compile in a few
// milliseconds and terminate quickly, so the stress mix stays fast even
// under -race.
var stressUnits = []string{
	"ErrorMessage", "CompilerMember", "AmbiguousClass", "ArrayType",
	"BinaryAttribute", "Scanner", "BigDecimal", "SignedMutableBigInteger",
}

func stressCorpus(t *testing.T) ([]map[string]string, []string) {
	t.Helper()
	files := make([]map[string]string, len(stressUnits))
	want := make([]string, len(stressUnits))
	for i, name := range stressUnits {
		u, ok := corpus.ByName(name)
		if !ok {
			t.Fatalf("corpus unit %s missing", name)
		}
		files[i] = u.Files
		mod, _, err := driver.CompileTSASourceOpt(u.Files)
		if err != nil {
			t.Fatal(err)
		}
		want[i], err = driver.RunModule(mod, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	return files, want
}

// TestSingleflightCompile is the acceptance check for the producer side:
// 32 concurrent requests for the same source key run the pipeline exactly
// once; everyone else either hits the cache or coalesces onto the
// in-flight compile.
func TestSingleflightCompile(t *testing.T) {
	s := newTestServer(t, Config{})
	const n = 32
	files := helloFiles()

	start := make(chan struct{})
	var wg sync.WaitGroup
	units := make([]*Unit, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			units[i], _, errs[i] = s.CompileUnit(context.Background(), files, Options{Optimize: true})
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if string(units[i].Wire) != string(units[0].Wire) {
			t.Fatalf("request %d got different unit bytes", i)
		}
	}
	st := s.Stats()
	if st.Compiles != 1 {
		t.Fatalf("singleflight broken: %d compiles for one key", st.Compiles)
	}
	if st.CacheHits+st.Coalesced != n-1 {
		t.Errorf("hits %d + coalesced %d != %d", st.CacheHits, st.Coalesced, n-1)
	}
}

// TestConcurrentRunIsolation is the acceptance check for the consumer
// side: concurrent /run sessions of the same unit share one decoded
// module (decoded+verified exactly once — the wire decoder never runs on
// the hit path) yet produce identical outputs from isolated heaps.
func TestConcurrentRunIsolation(t *testing.T) {
	s := newTestServer(t, Config{})
	u, ok := corpus.ByName("BigDecimal")
	if !ok {
		t.Fatal("corpus unit missing")
	}
	unit, _, err := s.CompileUnit(context.Background(), u.Files, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}

	const sessions = 3
	var wg sync.WaitGroup
	results := make([]RunResult, sessions)
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.RunUnit(context.Background(), unit.Key, 0)
		}(i)
	}
	wg.Wait()

	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if !results[i].OK {
			t.Fatalf("session %d failed: %s", i, results[i].Error)
		}
		if results[i].Output != results[0].Output {
			t.Fatalf("session %d output diverged:\n%q\nvs\n%q",
				i, results[i].Output, results[0].Output)
		}
	}
	st := s.Stats()
	if st.Loads != 1 {
		t.Errorf("module decoded %d times, want 1", st.Loads)
	}
	if st.Runs != sessions {
		t.Errorf("runs = %d, want %d", st.Runs, sessions)
	}
}

// TestStressMixedTraffic hammers one server with 32 goroutines running a
// mixed compile/fetch/run workload over 8 corpus programs. Run under
// `go test -race ./internal/codeserver/...` this is the data-race gate
// for the whole shared pipeline (driver, wire, interp, rt, corpus).
func TestStressMixedTraffic(t *testing.T) {
	files, want := stressCorpus(t)
	s := newTestServer(t, Config{CacheDir: t.TempDir()})

	const (
		workers = 32
		iters   = 12
	)
	start := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			ctx := context.Background()
			for it := 0; it < iters; it++ {
				i := (w + it) % len(files)
				opts := Options{Optimize: (w+it)%2 == 0}
				u, _, err := s.CompileUnit(ctx, files[i], opts)
				if err != nil {
					errc <- fmt.Errorf("worker %d compile %s: %w", w, stressUnits[i], err)
					return
				}
				switch (w + it) % 3 {
				case 0: // fetch: the stored bytes must be the compile result
					got, ok := s.Unit(u.Key)
					if !ok {
						errc <- fmt.Errorf("worker %d: unit %s vanished", w, u.Key)
						return
					}
					if string(got.Wire) != string(u.Wire) {
						errc <- fmt.Errorf("worker %d: unit bytes diverged", w)
						return
					}
				default: // run: output must match the one-shot pipeline
					res, err := s.RunUnit(ctx, u.Key, 0)
					if err != nil {
						errc <- fmt.Errorf("worker %d run %s: %w", w, stressUnits[i], err)
						return
					}
					if !res.OK {
						errc <- fmt.Errorf("worker %d run %s: guest error %s", w, stressUnits[i], res.Error)
						return
					}
					if res.Output != want[i] {
						errc <- fmt.Errorf("worker %d run %s: output %q, want %q",
							w, stressUnits[i], res.Output, want[i])
						return
					}
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	st := s.Stats()
	// 8 programs × 2 option sets = at most 16 distinct compiles and 16
	// decoded modules, no matter how many requests raced.
	if st.Compiles > 16 {
		t.Errorf("compiled %d times for 16 distinct keys", st.Compiles)
	}
	if st.Loads > 16 {
		t.Errorf("decoded %d times for 16 distinct keys", st.Loads)
	}
	if st.CompilesInFlight != 0 {
		t.Errorf("compiles still in flight after drain: %d", st.CompilesInFlight)
	}
	if st.CompileRequests != workers*iters {
		t.Errorf("compile requests = %d, want %d", st.CompileRequests, workers*iters)
	}

	// Metrics invariants under load: every compile request is accounted
	// for by exactly one outcome, no in-flight work survives the drain,
	// and the latency histograms saw exactly as many samples as the
	// counters say happened.
	accounted := st.CacheHits + st.DiskHits + st.Coalesced + st.Compiles + st.CompileErrors
	if accounted != st.CompileRequests {
		t.Errorf("request accounting leak: hits %d + disk %d + coalesced %d + compiles %d + errors %d = %d, want %d",
			st.CacheHits, st.DiskHits, st.Coalesced, st.Compiles, st.CompileErrors,
			accounted, st.CompileRequests)
	}
	if st.CompileErrors != 0 {
		t.Errorf("compile errors under clean stress: %d", st.CompileErrors)
	}
	if st.RunsInFlight != 0 {
		t.Errorf("runs still in flight after drain: %d", st.RunsInFlight)
	}
	if st.CompileLatency.Count != st.Compiles {
		t.Errorf("compile histogram count %d != compiles %d", st.CompileLatency.Count, st.Compiles)
	}
	if st.DecodeLatency.Count != st.Loads {
		t.Errorf("decode histogram count %d != loads %d", st.DecodeLatency.Count, st.Loads)
	}
	if st.VerifyLatency.Count != st.Loads {
		t.Errorf("verify histogram count %d != loads %d", st.VerifyLatency.Count, st.Loads)
	}
	if st.PrepareLatency.Count != st.Loads {
		t.Errorf("prepare histogram count %d != loads %d", st.PrepareLatency.Count, st.Loads)
	}
	if st.RunLatency.Count != st.Runs {
		t.Errorf("run histogram count %d != runs %d", st.RunLatency.Count, st.Runs)
	}
	// Legacy cumulative keys are the histogram sums, and real work was
	// measured (guest programs executed steps and allocated).
	if st.CompileNanos != st.CompileLatency.SumNanos || st.RunNanos != st.RunLatency.SumNanos {
		t.Errorf("legacy nanos diverge from histogram sums: %+v", st)
	}
	if st.CompileNanos <= 0 || st.RunNanos <= 0 {
		t.Errorf("latency totals did not accumulate: compile %d, run %d", st.CompileNanos, st.RunNanos)
	}
	if st.GuestSteps <= 0 || st.GuestAllocs <= 0 {
		t.Errorf("guest budget accounting empty: steps %d, allocs %d", st.GuestSteps, st.GuestAllocs)
	}
	if st.StepLimitKills+st.AllocLimitKills+st.InterruptKills != 0 {
		t.Errorf("unexpected budget kills under clean stress: %+v", st)
	}
}

// TestStressEngineSplit runs 32 concurrent sessions of one cached unit
// with the engine choice split evenly across the prepared register
// machine, the reference evaluator, and the closure-threaded compiled
// engine. All three engines share the single decoded+prepared+compiled
// module, must produce identical output, and — the key accounting
// invariant — preparation happens once per distinct unit load, never
// once per run: the prepare-stage histogram count equals Loads (1), not
// the number of run requests.
func TestStressEngineSplit(t *testing.T) {
	s := newTestServer(t, Config{})
	u, ok := corpus.ByName("BigDecimal")
	if !ok {
		t.Fatal("corpus unit missing")
	}
	unit, _, err := s.CompileUnit(context.Background(), u.Files, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}

	const sessions = 32
	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]RunResult, sessions)
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			engine := driver.EnginePrepared
			switch i % 3 {
			case 1:
				engine = driver.EngineReference
			case 2:
				engine = driver.EngineCompiled
			}
			results[i], errs[i] = s.RunUnitEngine(context.Background(), unit.Key, 0, engine)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if !results[i].OK {
			t.Fatalf("session %d failed: %s", i, results[i].Error)
		}
		if results[i].Output != results[0].Output {
			t.Fatalf("session %d (engine split) output diverged:\n%q\nvs\n%q",
				i, results[i].Output, results[0].Output)
		}
	}

	st := s.Stats()
	if st.Loads != 1 {
		t.Errorf("module loaded %d times, want 1", st.Loads)
	}
	if st.Runs != sessions {
		t.Errorf("runs = %d, want %d", st.Runs, sessions)
	}
	if st.PrepareLatency.Count != st.Loads {
		t.Errorf("prepare histogram count %d != loads %d (preparation must be per-load)",
			st.PrepareLatency.Count, st.Loads)
	}
	if st.PrepareLatency.Count == st.Runs {
		t.Errorf("prepare histogram count %d tracks runs, not loads", st.PrepareLatency.Count)
	}
}
