package codeserver

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"safetsa/internal/core"
	"safetsa/internal/driver"
	"safetsa/internal/lang/sema"
	"safetsa/internal/obs"
	"safetsa/internal/opt"
	"safetsa/internal/wire"
)

// Pool is the parallel producer: a bounded worker pool running the
// parse → sema → ssabuild → verify → optimize → wire-encode pipeline for
// many requests concurrently, with per-stage timeouts and context
// cancellation. The store's singleflight sits in front of it, so the
// pool only ever sees distinct keys.
type Pool struct {
	sem          chan struct{}
	stageTimeout time.Duration
	m            *Metrics
}

// NewPool creates a pool with the given concurrency (<=0 means
// GOMAXPROCS) and per-stage timeout (<=0 disables stage deadlines;
// request contexts still cancel).
func NewPool(workers int, stageTimeout time.Duration, m *Metrics) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		sem:          make(chan struct{}, workers),
		stageTimeout: stageTimeout,
		m:            m,
	}
}

// Compile runs the full producer pipeline for one source set, blocking
// until a worker slot is free (or ctx is cancelled while waiting).
func (p *Pool) Compile(ctx context.Context, files map[string]string, opts Options) (*Unit, error) {
	select {
	case p.sem <- struct{}{}:
		defer func() { <-p.sem }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	p.m.compilesInFlight.Add(1)
	defer p.m.compilesInFlight.Add(-1)
	start := time.Now()

	var prog *sema.Program
	err := p.stage(ctx, "frontend", func(ctx context.Context) (err error) {
		prog, err = driver.FrontendContext(ctx, files)
		return err
	})
	if err != nil {
		return nil, err
	}
	var mod *core.Module
	err = p.stage(ctx, "ssabuild", func(ctx context.Context) (err error) {
		mod, err = driver.CompileTSAContext(ctx, prog)
		return err
	})
	if err != nil {
		return nil, err
	}
	u := &Unit{Optimized: opts.Optimize || opts.ModuleOpt}
	if opts.Optimize || opts.ModuleOpt {
		err = p.stage(ctx, "optimize", func(ctx context.Context) (err error) {
			u.OptStats, err = driver.OptimizeModuleOptions(ctx, mod,
				opt.Options{ModuleLevel: opts.ModuleOpt})
			return err
		})
		if err != nil {
			return nil, err
		}
	}
	err = p.stage(ctx, "encode", func(context.Context) error {
		if opts.WireV2 {
			u.Wire = wire.EncodeModuleV2(mod, nil)
		} else {
			u.Wire = wire.EncodeModule(mod)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	u.Size = len(u.Wire)
	u.Instrs = mod.NumInstrs()
	p.m.compiles.Add(1)
	p.m.compileHist.Observe(time.Since(start))
	return u, nil
}

// stage runs one pipeline stage under the stage deadline. A stage that
// overruns its deadline is abandoned (its goroutine finishes in the
// background and the result is dropped) and reported as an internal
// pipeline failure; the worker slot stays held until the whole Compile
// returns, so abandoned stages cannot multiply past the pool bound per
// key thanks to the store's singleflight.
func (p *Pool) stage(ctx context.Context, name string, fn func(context.Context) error) error {
	sctx := ctx
	if p.stageTimeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, p.stageTimeout)
		defer cancel()
	}
	sctx, span := obs.Start(sctx, name)
	defer span.End()
	done := make(chan error, 1)
	go func() { done <- fn(sctx) }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("stage %s: %w", name, err)
		}
		return nil
	case <-sctx.Done():
		return &driver.Error{
			Kind: driver.KindInternal,
			Err:  fmt.Errorf("stage %s: %w", name, sctx.Err()),
		}
	}
}
