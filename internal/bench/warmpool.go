package bench

import (
	"fmt"
	"math"

	"safetsa/internal/core"
	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/interp"
	"safetsa/internal/rt"
	"safetsa/internal/wire"
)

// WarmRow is the warm-vs-cold comparison for one unit on the compiled
// engine: ColdNanos is a full session (load, static init, main) built
// from scratch; WarmNanos is the same session served as a clone of a
// post-static-init snapshot (load, clone statics+heap, replay init
// output, main). Speedup is ColdNanos / WarmNanos. InitHeavy marks the
// synthetic units whose static initializers dominate, where the pool's
// win concentrates.
type WarmRow struct {
	Name      string
	InitHeavy bool
	InitSteps int64
	ColdNanos int64
	WarmNanos int64
	Speedup   float64
}

// WarmPoolComparison aggregates the warm-session-pool benchmark.
// GeomeanSpeedup covers every row; GeomeanInitHeavySpeedup only the
// init-heavy synthetic rows — the number the pool exists for.
type WarmPoolComparison struct {
	BestOf                  int
	Rows                    []WarmRow
	GeomeanSpeedup          float64
	GeomeanInitHeavySpeedup float64
}

// warmSyntheticUnits are init-heavy programs: big static tables built by
// static initializer loops, with a deliberately small main. These model
// the unit shape the warm pool targets — per-request init cost that the
// snapshot amortizes to a heap clone.
func warmSyntheticUnits() []corpus.Unit {
	mk := func(name string, tables, size int) corpus.Unit {
		src := "class " + name + " {\n"
		for i := 0; i < tables; i++ {
			src += fmt.Sprintf("    static int[] t%d = %s.build(%d);\n", i, name, i+3)
		}
		src += fmt.Sprintf(`    static int[] build(int k) {
        int[] t = new int[%d];
        for (int i = 0; i < %d; i++) {
            t[i] = (i * k + k) %% 65521;
        }
        return t;
    }
    static void main() {
        System.out.println(%s.t0[7] + %s.t%d[11]);
    }
}
`, size, size, name, name, tables-1)
		return corpus.Unit{Name: name, Files: map[string]string{name + ".tj": src}}
	}
	return []corpus.Unit{
		mk("WarmTables4x4096", 4, 4096),
		mk("WarmTables8x2048", 8, 2048),
		mk("WarmTables2x16384", 2, 16384),
	}
}

// MeasureWarmPool times cold (fresh static init) versus warm (snapshot
// clone) sessions on the compiled engine, over the runnable corpus plus
// the init-heavy synthetic units. Each unit is compiled, optimized,
// round-tripped through the wire format, verified, prepared, and
// backend-compiled once; the snapshot is built and verified once
// (as codeserver's pool does) and then both paths run bestOf-timed full
// sessions whose outputs must be byte-identical — the benchmark doubles
// as a pooled-parity check.
func MeasureWarmPool() (*WarmPoolComparison, error) {
	wc := &WarmPoolComparison{BestOf: runComparisonBestOf}
	units := corpus.Units()
	heavyFrom := len(units)
	units = append(units, warmSyntheticUnits()...)
	logSum, logSumHeavy, heavy := 0.0, 0.0, 0
	for i, u := range units {
		mod, _, err := driver.CompileTSASourceOpt(u.Files)
		if err != nil {
			return nil, fmt.Errorf("%s: compile: %w", u.Name, err)
		}
		dec, err := wire.DecodeModule(wire.EncodeModule(mod))
		if err != nil {
			return nil, fmt.Errorf("%s: decode: %w", u.Name, err)
		}
		if err := dec.Verify(core.VerifyOptions{}); err != nil {
			return nil, fmt.Errorf("%s: verify: %w", u.Name, err)
		}
		if dec.Entry < 0 {
			continue
		}
		prep, err := interp.Prepare(dec)
		if err != nil {
			return nil, fmt.Errorf("%s: prepare: %w", u.Name, err)
		}
		comp, err := interp.Compile(dec, prep)
		if err != nil {
			return nil, fmt.Errorf("%s: compile backend: %w", u.Name, err)
		}

		snap, err := buildSnapshot(dec, prep, comp)
		if err != nil {
			return nil, fmt.Errorf("%s: snapshot: %w", u.Name, err)
		}

		coldNanos, coldOut, err := bestOf(runComparisonBestOf, func(env *rt.Env) (*interp.Loader, error) {
			return interp.LoadTrustedCompiled(dec, comp, env)
		})
		if err != nil {
			return nil, fmt.Errorf("%s: cold run: %w", u.Name, err)
		}
		warmNanos, warmOut, err := bestOf(runComparisonBestOf, func(env *rt.Env) (*interp.Loader, error) {
			return snap.NewSession(env)
		})
		if err != nil {
			return nil, fmt.Errorf("%s: warm run: %w", u.Name, err)
		}
		if coldOut != warmOut {
			return nil, fmt.Errorf("%s: warm session output diverges:\n%q\nvs\n%q", u.Name, coldOut, warmOut)
		}

		speedup := float64(coldNanos) / float64(warmNanos)
		row := WarmRow{
			Name:      u.Name,
			InitHeavy: i >= heavyFrom,
			InitSteps: snap.InitSteps(),
			ColdNanos: coldNanos,
			WarmNanos: warmNanos,
			Speedup:   speedup,
		}
		wc.Rows = append(wc.Rows, row)
		logSum += math.Log(speedup)
		if row.InitHeavy {
			logSumHeavy += math.Log(speedup)
			heavy++
		}
	}
	if len(wc.Rows) > 0 {
		wc.GeomeanSpeedup = math.Exp(logSum / float64(len(wc.Rows)))
	}
	if heavy > 0 {
		wc.GeomeanInitHeavySpeedup = math.Exp(logSumHeavy / float64(heavy))
	}
	return wc, nil
}

// buildSnapshot runs static init once and freezes it, verified, exactly
// as codeserver's pool publishes snapshots.
func buildSnapshot(mod *core.Module, prep *interp.Prepared, comp *interp.Compiled) (*interp.Snapshot, error) {
	var out warmInitBuf
	l, err := interp.LoadTrustedDeferred(mod, prep, comp, &rt.Env{Out: &out})
	if err != nil {
		return nil, err
	}
	if err := l.RunStaticInit(); err != nil {
		return nil, err
	}
	snap, err := l.Snapshot(out.b)
	if err != nil {
		return nil, err
	}
	if err := snap.Verify(); err != nil {
		return nil, err
	}
	return snap, nil
}

// warmInitBuf is a minimal capture buffer for init output.
type warmInitBuf struct{ b []byte }

func (w *warmInitBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
