package bench

import (
	"fmt"
	"math"

	"safetsa/internal/core"
	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/interp"
	"safetsa/internal/opt"
	"safetsa/internal/rt"
	"safetsa/internal/wire"
)

// PassDelta is one row of the Figure-6-style per-pass block: the total
// corpus instruction count entering and leaving one named pass of the
// interprocedural pipeline. Inlining legitimately grows the count; the
// block makes that visible instead of hiding it in an end-to-end total.
type PassDelta struct {
	Pass         string
	InstrsBefore int
	InstrsAfter  int
}

// ModuleRunRow is the run-latency comparison for one corpus unit: the
// same unit built by the intraprocedural tier and by the module-level
// tier, each round-tripped through the wire format and run to
// completion on the compiled engine. Speedup is IntraNanos/ModuleNanos.
type ModuleRunRow struct {
	Name        string
	IntraNanos  int64
	ModuleNanos int64
	Speedup     float64
}

// ModuleOptComparison aggregates the interprocedural-tier measurement
// over the corpus: what each pass did to the instruction count, what
// the new passes found (devirtualized sites, inlined calls, elided
// checks, pruned exception edges), and what the merged bodies buy at
// run time against the paper's measured intraprocedural configuration.
type ModuleOptComparison struct {
	BestOf     int
	PassDeltas []PassDelta

	Devirtualized  int
	Inlined        int
	ChecksElided   int
	ExcEdgesPruned int

	Rows           []ModuleRunRow
	GeomeanSpeedup float64
}

// MeasureModuleOpt measures the interprocedural tier over every corpus
// unit: per-pass instruction-count deltas (verifier re-checked after
// each pass, so the measurement doubles as a whole-corpus metamorphic
// check), then best-of-K full sessions of the module-level versus
// intraprocedural builds on the compiled engine. Output divergence
// between the two tiers is an error.
func MeasureModuleOpt() (*ModuleOptComparison, error) {
	mc := &ModuleOptComparison{BestOf: runComparisonBestOf}
	passes := opt.ModulePipeline()
	deltas := make([]PassDelta, len(passes))
	for i, p := range passes {
		deltas[i].Pass = p.Name
	}
	logSum := 0.0
	for _, u := range corpus.Units() {
		mod, err := driver.CompileTSASource(u.Files)
		if err != nil {
			return nil, fmt.Errorf("%s: compile: %w", u.Name, err)
		}
		idx, before := 0, mod.NumInstrs()
		st, err := opt.RunPasses(mod, opt.Options{ModuleLevel: true}, passes,
			func(pass string) error {
				if err := mod.Verify(core.VerifyOptions{}); err != nil {
					return fmt.Errorf("%s: verifier rejects after %s: %w", u.Name, pass, err)
				}
				after := mod.NumInstrs()
				deltas[idx].InstrsBefore += before
				deltas[idx].InstrsAfter += after
				idx, before = idx+1, after
				return nil
			})
		if err != nil {
			return nil, err
		}
		mc.Devirtualized += st.Devirtualized
		mc.Inlined += st.Inlined
		mc.ChecksElided += st.ChecksElided
		mc.ExcEdgesPruned += st.ExcEdgesPruned

		intra, _, err := driver.CompileTSASourceOpt(u.Files)
		if err != nil {
			return nil, fmt.Errorf("%s: intraprocedural compile: %w", u.Name, err)
		}
		intraNanos, intraOut, err := timedCompiledSessions(u.Name, intra)
		if err != nil {
			return nil, err
		}
		if intraNanos == 0 {
			continue // nothing to run
		}
		modNanos, modOut, err := timedCompiledSessions(u.Name, mod)
		if err != nil {
			return nil, err
		}
		if intraOut != modOut {
			return nil, fmt.Errorf("%s: tier outputs diverge:\n%q\nvs\n%q", u.Name, intraOut, modOut)
		}
		speedup := float64(intraNanos) / float64(modNanos)
		mc.Rows = append(mc.Rows, ModuleRunRow{
			Name: u.Name, IntraNanos: intraNanos, ModuleNanos: modNanos, Speedup: speedup,
		})
		logSum += math.Log(speedup)
	}
	mc.PassDeltas = deltas
	if len(mc.Rows) > 0 {
		mc.GeomeanSpeedup = math.Exp(logSum / float64(len(mc.Rows)))
	}
	return mc, nil
}

// timedCompiledSessions round-trips a built module through the wire
// format (the measured artifact is exactly what a consumer would hold),
// prepares and backend-compiles it once, and times best-of-K full
// sessions on the compiled engine. Units without an entry point return
// (0, "", nil).
func timedCompiledSessions(name string, mod *core.Module) (int64, string, error) {
	dec, err := wire.DecodeModule(wire.EncodeModule(mod))
	if err != nil {
		return 0, "", fmt.Errorf("%s: decode: %w", name, err)
	}
	if err := dec.Verify(core.VerifyOptions{}); err != nil {
		return 0, "", fmt.Errorf("%s: verify: %w", name, err)
	}
	if dec.Entry < 0 {
		return 0, "", nil
	}
	prep, err := interp.Prepare(dec)
	if err != nil {
		return 0, "", fmt.Errorf("%s: prepare: %w", name, err)
	}
	comp, err := interp.Compile(dec, prep)
	if err != nil {
		return 0, "", fmt.Errorf("%s: compile backend: %w", name, err)
	}
	nanos, out, err := bestOf(runComparisonBestOf, func(env *rt.Env) (*interp.Loader, error) {
		return interp.LoadTrustedCompiled(dec, comp, env)
	})
	if err != nil {
		return 0, "", fmt.Errorf("%s: compiled run: %w", name, err)
	}
	return nanos, out, nil
}
