package bench

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"safetsa/internal/codeserver"
)

// TestRunLoadReplay drives the load generator against an in-process
// codeserver with a fixed request quota and pins the replay contract:
// every request is accounted, the mix approximates the configured 80/20
// run/compile split, the run stage has a real latency distribution, and
// the archived report is valid safetsa-bench-v5 JSON.
func TestRunLoadReplay(t *testing.T) {
	srv, err := codeserver.New(codeserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const quota = 200
	res, err := RunLoad(context.Background(), LoadConfig{
		Targets:  []string{ts.URL},
		Workers:  8,
		Requests: quota,
		Duration: time.Minute, // backstop only; the quota ends the replay
		Units:    8,
		Seed:     42,
		Engine:   "compiled", // exercise the per-request engine override
	})
	if err != nil {
		t.Fatal(err)
	}

	if res.Errors != 0 {
		t.Fatalf("replay recorded %d errors: %v", res.Errors, res.ErrorSamples)
	}
	if res.Requests == 0 || res.Requests > quota {
		t.Fatalf("replay issued %d requests for a quota of %d", res.Requests, quota)
	}
	if res.Runs+res.Compiles != res.Requests {
		t.Fatalf("counts disagree: %d runs + %d compiles != %d requests", res.Runs, res.Compiles, res.Requests)
	}
	// 80/20 mix: with 200 draws the run share should be solidly dominant
	// without pinning the binomial tail.
	if float64(res.Runs)/float64(res.Requests) < 0.6 {
		t.Errorf("run share %d/%d, want a run-dominated mix", res.Runs, res.Requests)
	}
	if res.Compiles == 0 {
		t.Error("replay issued no compiles")
	}
	// The whole universe was warmed up before the timed phase, so every
	// timed compile is a cache hit.
	if res.CachedCompiles != res.Compiles {
		t.Errorf("cached %d of %d compiles, want all (warmed universe)", res.CachedCompiles, res.Compiles)
	}

	run := res.RunHist.Summary()
	if run.Count != res.Runs {
		t.Errorf("run histogram saw %d samples for %d runs", run.Count, res.Runs)
	}
	if run.P50Nanos <= 0 || run.P99Nanos <= 0 || run.P50Nanos > run.P99Nanos {
		t.Errorf("run latency digest malformed: %+v", run)
	}

	data, err := FormatJSONLoad(res)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema string    `json:"schema"`
		Load   *JSONLoad `json:"load"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "safetsa-bench-v5" {
		t.Errorf("schema %q, want safetsa-bench-v5", rep.Schema)
	}
	if rep.Load == nil {
		t.Fatal("report lacks the load block")
	}
	if rep.Load.Latencies["run"].P50Nanos <= 0 || rep.Load.Latencies["run"].P99Nanos <= 0 {
		t.Errorf("archived run latencies not populated: %+v", rep.Load.Latencies["run"])
	}
	if rep.Load.Requests != res.Requests {
		t.Errorf("archived request count %d != %d", rep.Load.Requests, res.Requests)
	}
}

// TestRunLoadRejectsInvalidConfig is the regression test for the silent
// config clamping: RunLoad used to "correct" invalid fields instead of
// rejecting them, which let genuinely broken values through — a NaN
// ZipfS passes a `<= 1` guard, reaches rand.NewZipf (which returns nil
// for it), and the replay panicked on the nil Zipf mid-run. Invalid
// configs must now fail fast with a *ConfigError naming the field,
// before any network traffic — the targets below are unreachable, so
// any attempt to start the warmup would surface as a transport error
// instead.
func TestRunLoadRejectsInvalidConfig(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name  string
		cfg   LoadConfig
		field string
	}{
		{"no targets", LoadConfig{}, "Targets"},
		{"negative workers", LoadConfig{Workers: -3}, "Workers"},
		{"negative duration", LoadConfig{Duration: -time.Second}, "Duration"},
		{"negative requests", LoadConfig{Requests: -1}, "Requests"},
		{"negative units", LoadConfig{Units: -8}, "Units"},
		{"run fraction above one", LoadConfig{RunFraction: 1.5}, "RunFraction"},
		{"run fraction NaN", LoadConfig{RunFraction: nan}, "RunFraction"},
		{"zipf below one", LoadConfig{ZipfS: 0.5}, "ZipfS"},
		{"zipf exactly one", LoadConfig{ZipfS: 1}, "ZipfS"},
		{"zipf NaN", LoadConfig{ZipfS: nan}, "ZipfS"},
		{"zipf infinite", LoadConfig{ZipfS: math.Inf(1)}, "ZipfS"},
		{"negative maxsteps", LoadConfig{MaxSteps: -5}, "MaxSteps"},
		{"unknown engine", LoadConfig{Engine: "jit"}, "Engine"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.field != "Targets" {
				c.cfg.Targets = []string{"http://127.0.0.1:1"} // unreachable: must never be dialed
			}
			_, err := RunLoad(context.Background(), c.cfg)
			var cerr *ConfigError
			if !errors.As(err, &cerr) {
				t.Fatalf("RunLoad(%+v) = %v, want a *ConfigError", c.cfg, err)
			}
			if cerr.Field != c.field {
				t.Errorf("rejected field %q, want %q (%v)", cerr.Field, c.field, err)
			}
		})
	}

	// Zero values still mean "use the default", not "invalid": a
	// zero-filled config (plus a target) passes validation and fails only
	// when it actually dials the dead target.
	cfg := LoadConfig{Targets: []string{"http://127.0.0.1:1"}, Requests: 1, Workers: 1}
	_, err := RunLoad(context.Background(), cfg)
	var cerr *ConfigError
	if errors.As(err, &cerr) {
		t.Errorf("zero-valued fields were rejected: %v", err)
	}
	if err == nil {
		t.Error("replay against an unreachable target reported success")
	}
}

// TestRunLoadZipfSkew: the zipfian draw must actually skew — the hottest
// unit of the universe should see a clear plurality of the traffic.
func TestRunLoadZipfSkew(t *testing.T) {
	srv, err := codeserver.New(codeserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res, err := RunLoad(context.Background(), LoadConfig{
		Targets:  []string{ts.URL},
		Workers:  4,
		Requests: 150,
		Duration: time.Minute,
		Units:    8,
		ZipfS:    1.5,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unit 0 is the zipf head. Its runs dominate, which the server-side
	// loader cache makes visible: far more runs than loads.
	st := srv.Stats()
	if st.Runs != res.Runs {
		t.Errorf("server saw %d runs, client issued %d", st.Runs, res.Runs)
	}
	if st.LoaderHits == 0 {
		t.Error("skewed replay produced no loader-cache hits")
	}
}
