package bench

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"safetsa/internal/codeserver"
)

// TestRunLoadReplay drives the load generator against an in-process
// codeserver with a fixed request quota and pins the replay contract:
// every request is accounted, the mix approximates the configured 80/20
// run/compile split, the run stage has a real latency distribution, and
// the archived report is valid safetsa-bench-v8 JSON.
func TestRunLoadReplay(t *testing.T) {
	srv, err := codeserver.New(codeserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const quota = 200
	res, err := RunLoad(context.Background(), LoadConfig{
		Targets:  []string{ts.URL},
		Workers:  8,
		Requests: quota,
		Duration: time.Minute, // backstop only; the quota ends the replay
		Units:    8,
		Tenants:  3,
		Seed:     42,
		Engine:   "compiled", // exercise the per-request engine override
	})
	if err != nil {
		t.Fatal(err)
	}

	if res.Errors != 0 {
		t.Fatalf("replay recorded %d errors: %v", res.Errors, res.ErrorSamples)
	}
	if res.Requests == 0 || res.Requests > quota {
		t.Fatalf("replay issued %d requests for a quota of %d", res.Requests, quota)
	}
	if res.Runs+res.Compiles+res.Throttled != res.Requests {
		t.Fatalf("counts disagree: %d runs + %d compiles + %d throttled != %d requests",
			res.Runs, res.Compiles, res.Throttled, res.Requests)
	}
	// 80/20 mix: with 200 draws the run share should be solidly dominant
	// without pinning the binomial tail.
	if float64(res.Runs)/float64(res.Requests) < 0.6 {
		t.Errorf("run share %d/%d, want a run-dominated mix", res.Runs, res.Requests)
	}
	if res.Compiles == 0 {
		t.Error("replay issued no compiles")
	}
	// The whole universe was warmed up before the timed phase, so every
	// timed compile is a cache hit.
	if res.CachedCompiles != res.Compiles {
		t.Errorf("cached %d of %d compiles, want all (warmed universe)", res.CachedCompiles, res.Compiles)
	}

	run := res.RunHist.Summary()
	if run.Count != res.Runs {
		t.Errorf("run histogram saw %d samples for %d runs", run.Count, res.Runs)
	}
	if run.P50Nanos <= 0 || run.P99Nanos <= 0 || run.P50Nanos > run.P99Nanos {
		t.Errorf("run latency digest malformed: %+v", run)
	}
	// The per-tenant digests partition the accepted runs.
	if len(res.TenantRunHists) != 3 {
		t.Fatalf("%d tenant digests, want 3", len(res.TenantRunHists))
	}
	var tenantRuns uint64
	for _, h := range res.TenantRunHists {
		tenantRuns += h.Count()
	}
	if tenantRuns != res.Runs {
		t.Errorf("tenant digests saw %d samples for %d runs", tenantRuns, res.Runs)
	}
	// Budget parity: the client's drain totals must mirror the server's
	// guest counters exactly (allocs included — the /run response now
	// reports them).
	st := srv.Stats()
	if res.GuestSteps != uint64(st.GuestSteps) || res.GuestAllocs != uint64(st.GuestAllocs) {
		t.Errorf("client drain (%d steps, %d allocs) != server (%d, %d)",
			res.GuestSteps, res.GuestAllocs, st.GuestSteps, st.GuestAllocs)
	}
	if res.GuestAllocs == 0 {
		t.Error("replay observed no guest allocations (RunResult.Allocs not wired?)")
	}

	data, err := FormatJSONLoad(res)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema string    `json:"schema"`
		Load   *JSONLoad `json:"load"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "safetsa-bench-v8" {
		t.Errorf("schema %q, want safetsa-bench-v8", rep.Schema)
	}
	if rep.Load == nil {
		t.Fatal("report lacks the load block")
	}
	if rep.Load.Latencies["run"].P50Nanos <= 0 || rep.Load.Latencies["run"].P99Nanos <= 0 {
		t.Errorf("archived run latencies not populated: %+v", rep.Load.Latencies["run"])
	}
	if rep.Load.Requests != res.Requests {
		t.Errorf("archived request count %d != %d", rep.Load.Requests, res.Requests)
	}
	if rep.Load.Tenants != 3 || len(rep.Load.TenantLatencies) != 3 {
		t.Errorf("archived tenant digests: tenants=%d, %d latency entries, want 3/3",
			rep.Load.Tenants, len(rep.Load.TenantLatencies))
	}
	if rep.Load.GuestAllocs != res.GuestAllocs {
		t.Errorf("archived guest allocs %d != %d", rep.Load.GuestAllocs, res.GuestAllocs)
	}
}

// TestRunLoadTenantThrottle pins the load generator's 429 handling: a
// run that the fair-admission gate rejects counts as throttled, not as
// an error, and the client and server books agree on the rejection and
// drain totals. tenant-0's single in-flight slot is held for the whole
// replay by a never-terminating guest, so every tenant-0 draw is
// deterministically rejected while tenant-1 runs normally.
func TestRunLoadTenantThrottle(t *testing.T) {
	srv, err := codeserver.New(codeserver.Config{TenantMaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	loop, _, err := srv.CompileUnit(context.Background(), map[string]string{"Loop.tj": `
class Loop { static void main() { while (true) { } } }`}, codeserver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fillCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = srv.RunUnitOpts(fillCtx, loop.Key, codeserver.RunOptions{Tenant: "tenant-0"})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().RunsInFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slot-holding run never started")
		}
		time.Sleep(time.Millisecond)
	}

	res, err := RunLoad(context.Background(), LoadConfig{
		Targets:     []string{ts.URL},
		Workers:     4,
		Requests:    60,
		Duration:    time.Minute,
		Units:       4,
		Tenants:     2,
		RunFraction: 1.0,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("throttled replay recorded %d errors: %v", res.Errors, res.ErrorSamples)
	}
	if res.Throttled == 0 {
		t.Error("tenant-0 draws against a held slot never throttled")
	}
	if res.Runs == 0 {
		t.Error("tenant-1 completed no runs despite a free slot")
	}
	if h := res.TenantRunHists[0].Count(); h != 0 {
		t.Errorf("throttled tenant-0 scored %d latency samples, want none", h)
	}

	// Books must balance while the slot-holder is still in flight (its
	// own drain is not yet booked server-side).
	st := srv.Stats()
	if res.Throttled != st.TenantRejects {
		t.Errorf("client saw %d throttles, server rejected %d", res.Throttled, st.TenantRejects)
	}
	if res.Runs != st.Runs-1 { // -1: the slot-holding run itself
		t.Errorf("client completed %d runs, server admitted %d (incl. slot holder)", res.Runs, st.Runs)
	}
	if res.GuestSteps != uint64(st.GuestSteps) || res.GuestAllocs != uint64(st.GuestAllocs) {
		t.Errorf("client drain (%d steps, %d allocs) != server (%d, %d)",
			res.GuestSteps, res.GuestAllocs, st.GuestSteps, st.GuestAllocs)
	}
	cancel()
	<-done
}

// TestRunLoadRejectsInvalidConfig is the regression test for the silent
// config clamping: RunLoad used to "correct" invalid fields instead of
// rejecting them, which let genuinely broken values through — a NaN
// ZipfS passes a `<= 1` guard, reaches rand.NewZipf (which returns nil
// for it), and the replay panicked on the nil Zipf mid-run. Invalid
// configs must now fail fast with a *ConfigError naming the field,
// before any network traffic — the targets below are unreachable, so
// any attempt to start the warmup would surface as a transport error
// instead.
func TestRunLoadRejectsInvalidConfig(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name  string
		cfg   LoadConfig
		field string
	}{
		{"no targets", LoadConfig{}, "Targets"},
		{"negative workers", LoadConfig{Workers: -3}, "Workers"},
		{"negative duration", LoadConfig{Duration: -time.Second}, "Duration"},
		{"negative requests", LoadConfig{Requests: -1}, "Requests"},
		{"negative units", LoadConfig{Units: -8}, "Units"},
		{"run fraction above one", LoadConfig{RunFraction: 1.5}, "RunFraction"},
		{"run fraction NaN", LoadConfig{RunFraction: nan}, "RunFraction"},
		{"zipf below one", LoadConfig{ZipfS: 0.5}, "ZipfS"},
		{"zipf exactly one", LoadConfig{ZipfS: 1}, "ZipfS"},
		{"zipf NaN", LoadConfig{ZipfS: nan}, "ZipfS"},
		{"zipf infinite", LoadConfig{ZipfS: math.Inf(1)}, "ZipfS"},
		{"negative maxsteps", LoadConfig{MaxSteps: -5}, "MaxSteps"},
		{"unknown engine", LoadConfig{Engine: "jit"}, "Engine"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.field != "Targets" {
				c.cfg.Targets = []string{"http://127.0.0.1:1"} // unreachable: must never be dialed
			}
			_, err := RunLoad(context.Background(), c.cfg)
			var cerr *ConfigError
			if !errors.As(err, &cerr) {
				t.Fatalf("RunLoad(%+v) = %v, want a *ConfigError", c.cfg, err)
			}
			if cerr.Field != c.field {
				t.Errorf("rejected field %q, want %q (%v)", cerr.Field, c.field, err)
			}
		})
	}

	// Zero values still mean "use the default", not "invalid": a
	// zero-filled config (plus a target) passes validation and fails only
	// when it actually dials the dead target.
	cfg := LoadConfig{Targets: []string{"http://127.0.0.1:1"}, Requests: 1, Workers: 1}
	_, err := RunLoad(context.Background(), cfg)
	var cerr *ConfigError
	if errors.As(err, &cerr) {
		t.Errorf("zero-valued fields were rejected: %v", err)
	}
	if err == nil {
		t.Error("replay against an unreachable target reported success")
	}
}

// TestRunLoadZipfSkew: the zipfian draw must actually skew — the hottest
// unit of the universe should see a clear plurality of the traffic.
func TestRunLoadZipfSkew(t *testing.T) {
	srv, err := codeserver.New(codeserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res, err := RunLoad(context.Background(), LoadConfig{
		Targets:  []string{ts.URL},
		Workers:  4,
		Requests: 150,
		Duration: time.Minute,
		Units:    8,
		ZipfS:    1.5,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unit 0 is the zipf head. Its runs dominate, which the server-side
	// caches make visible: repeat runs land in the warm-session pool
	// (or, for sessions the pool declines, the loader cache) instead of
	// decoding again — far more runs than loads either way.
	st := srv.Stats()
	if st.Runs != res.Runs {
		t.Errorf("server saw %d runs, client issued %d", st.Runs, res.Runs)
	}
	if st.LoaderHits+st.PoolHits == 0 {
		t.Error("skewed replay produced no loader-cache or pool hits")
	}
}
