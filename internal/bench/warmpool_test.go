package bench

import (
	"testing"

	"safetsa/internal/corpus"
	"safetsa/internal/driver"
)

// TestMeasureWarmPoolShape runs the warm-vs-cold comparison end to end:
// every runnable corpus unit plus the three init-heavy synthetics gets a
// row, byte-exact output parity is enforced inside the measurement, and
// the init-heavy rows — whose static initializers the snapshot amortizes
// to a heap clone — must show the latency win the pool exists for.
func TestMeasureWarmPoolShape(t *testing.T) {
	wc, err := MeasureWarmPool()
	if err != nil {
		t.Fatal(err)
	}
	runnable := 0
	for _, u := range corpus.Units() {
		if hasEntry(t, u) {
			runnable++
		}
	}
	if want := runnable + 3; len(wc.Rows) != want {
		t.Fatalf("measured %d rows, want %d (runnable corpus + 3 synthetics)", len(wc.Rows), want)
	}
	heavy := 0
	for _, r := range wc.Rows {
		if r.ColdNanos <= 0 || r.WarmNanos <= 0 || r.Speedup <= 0 {
			t.Errorf("%s: malformed row %+v", r.Name, r)
		}
		if r.InitHeavy {
			heavy++
			if r.InitSteps < 10_000 {
				t.Errorf("%s: init-heavy row drained only %d init steps", r.Name, r.InitSteps)
			}
		}
	}
	if heavy != 3 {
		t.Fatalf("%d init-heavy rows, want 3", heavy)
	}
	if wc.GeomeanSpeedup <= 0 || wc.GeomeanInitHeavySpeedup <= 0 {
		t.Fatalf("geomeans not computed: %+v", wc)
	}
	t.Logf("warm-pool geomean speedup %.2fx (init-heavy %.2fx)",
		wc.GeomeanSpeedup, wc.GeomeanInitHeavySpeedup)
	// The acceptance bar for the pool: amortizing static init to a clone
	// must win at least 1.2x on the init-heavy rows. The margin in
	// practice is much larger, so this holds on loaded CI machines too.
	if wc.GeomeanInitHeavySpeedup < 1.2 {
		t.Errorf("init-heavy warm speedup %.2fx, want >= 1.2x", wc.GeomeanInitHeavySpeedup)
	}
}

// hasEntry mirrors MeasureWarmPool's Entry >= 0 skip: units without a
// main get no row.
func hasEntry(t *testing.T, u corpus.Unit) bool {
	t.Helper()
	mod, _, err := driver.CompileTSASourceOpt(u.Files)
	if err != nil {
		t.Fatal(err)
	}
	return mod.Entry >= 0
}
