package bench

import (
	"encoding/json"
	"testing"

	"safetsa/internal/corpus"
)

// TestMeasureAllTimedCounts pins the instrumentation contract of the
// timed corpus run: every stage histogram sees exactly one sample per
// corpus unit, and the JSON report carries the summaries under
// "latencies" with the current schema.
func TestMeasureAllTimedCounts(t *testing.T) {
	rows, tm, err := MeasureAllTimed()
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(len(corpus.Units()))
	if uint64(len(rows)) != n {
		t.Fatalf("measured %d rows for %d units", len(rows), n)
	}
	sums := tm.Summaries()
	for _, stage := range []string{"frontend", "bytecode", "ssabuild", "optimize", "encode", "decode", "verify", "prepare"} {
		s, ok := sums[stage]
		if !ok {
			t.Errorf("stage %q missing from summaries", stage)
			continue
		}
		if s.Count != n {
			t.Errorf("stage %q count = %d, want %d (one sample per unit)", stage, s.Count, n)
		}
		if s.SumNanos < 0 || s.P50Nanos < 0 || s.P50Nanos > s.P99Nanos {
			t.Errorf("stage %q summary malformed: %+v", stage, s)
		}
	}

	data, err := FormatJSONTimed(rows, tm, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema    string                     `json:"schema"`
		Latencies map[string]json.RawMessage `json:"latencies"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "safetsa-bench-v8" {
		t.Errorf("schema = %q, want safetsa-bench-v8", rep.Schema)
	}
	if len(rep.Latencies) != len(sums) {
		t.Errorf("report carries %d latency stages, want %d", len(rep.Latencies), len(sums))
	}

	// The untimed report stays latency-free (back-compat shape).
	plain, err := FormatJSON(rows)
	if err != nil {
		t.Fatal(err)
	}
	var plainRep map[string]json.RawMessage
	if err := json.Unmarshal(plain, &plainRep); err != nil {
		t.Fatal(err)
	}
	if _, ok := plainRep["latencies"]; ok {
		t.Error("untimed report unexpectedly carries latencies")
	}
}
