// Package bench measures the corpus through both pipelines and formats
// the paper's tables: Figure 5 (file sizes and instruction counts for
// Java bytecode vs SafeTSA vs optimized SafeTSA) and Figure 6 (phi,
// null-check, and array-check counts before/after producer-side
// optimization), plus the prose claims of sections 7 and 8.
package bench

import (
	"fmt"
	"strings"
	"time"

	"safetsa/internal/core"
	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/interp"
	"safetsa/internal/obs"
	"safetsa/internal/opt"
	"safetsa/internal/wire"
)

// Row is the measured result for one corpus unit.
type Row struct {
	Name      string
	Group     string
	Generated bool

	BCSize, TSASize, TSAOptSize       int
	BCInstrs, TSAInstrs, TSAOptInstrs int

	PhiBefore, PhiAfter     int
	NullBefore, NullAfter   int
	ArrayBefore, ArrayAfter int

	Stats opt.Stats
	Paper corpus.PaperRow
}

// StageTimings aggregates producer-stage latencies over a corpus
// measurement run into obs histograms, one per pipeline stage, so that
// benchtables -json records the paper's producer-side costs as latency
// distributions — the perf-trajectory counterpart of the size tables.
type StageTimings struct {
	Frontend obs.Histogram
	Bytecode obs.Histogram
	SSABuild obs.Histogram
	Optimize obs.Histogram
	Encode   obs.Histogram
	Decode   obs.Histogram
	Verify   obs.Histogram
	Prepare  obs.Histogram
}

// Summaries digests the per-stage histograms, keyed by stage name.
func (t *StageTimings) Summaries() map[string]obs.LatencySummary {
	return map[string]obs.LatencySummary{
		"frontend": t.Frontend.Summary(),
		"bytecode": t.Bytecode.Summary(),
		"ssabuild": t.SSABuild.Summary(),
		"optimize": t.Optimize.Summary(),
		"encode":   t.Encode.Summary(),
		"decode":   t.Decode.Summary(),
		"verify":   t.Verify.Summary(),
		"prepare":  t.Prepare.Summary(),
	}
}

// MeasureUnit compiles one unit through both pipelines and collects every
// table cell.
func MeasureUnit(u corpus.Unit) (Row, error) {
	return measureUnit(u, &StageTimings{}) // timings discarded
}

func measureUnit(u corpus.Unit, tm *StageTimings) (Row, error) {
	row := Row{Name: u.Name, Group: u.Group, Generated: u.Generated, Paper: u.Paper}

	start := time.Now()
	prog, err := driver.Frontend(u.Files)
	tm.Frontend.Observe(time.Since(start))
	if err != nil {
		return row, fmt.Errorf("%s: frontend: %w", u.Name, err)
	}
	start = time.Now()
	bc, err := driver.CompileBytecode(prog)
	tm.Bytecode.Observe(time.Since(start))
	if err != nil {
		return row, fmt.Errorf("%s: bytecode: %w", u.Name, err)
	}
	row.BCSize = bc.SerializedSize()
	row.BCInstrs = bc.NumInstrs()

	start = time.Now()
	mod, err := driver.CompileTSA(prog)
	tm.SSABuild.Observe(time.Since(start))
	if err != nil {
		return row, fmt.Errorf("%s: safetsa: %w", u.Name, err)
	}
	row.TSAInstrs = mod.NumInstrs()
	row.TSASize = len(wire.EncodeModule(mod))
	instrs, phis, nulls, arrs := opt.Count(mod)
	row.PhiBefore, row.NullBefore, row.ArrayBefore = phis, nulls, arrs
	_ = instrs

	start = time.Now()
	st, err := driver.OptimizeModule(mod)
	tm.Optimize.Observe(time.Since(start))
	if err != nil {
		return row, fmt.Errorf("%s: optimize: %w", u.Name, err)
	}
	row.Stats = st
	row.TSAOptInstrs = mod.NumInstrs()
	start = time.Now()
	encoded := wire.EncodeModule(mod)
	tm.Encode.Observe(time.Since(start))
	row.TSAOptSize = len(encoded)
	_, phis, nulls, arrs = opt.Count(mod)
	row.PhiAfter, row.NullAfter, row.ArrayAfter = phis, nulls, arrs

	// Consumer-side stages: the paper's claim that SafeTSA needs no
	// dataflow verification is a latency claim, so the decode and
	// residual-verify costs belong in the trajectory too.
	start = time.Now()
	dec, err := wire.DecodeModule(encoded)
	tm.Decode.Observe(time.Since(start))
	if err != nil {
		return row, fmt.Errorf("%s: decode: %w", u.Name, err)
	}
	start = time.Now()
	err = dec.Verify(core.VerifyOptions{})
	tm.Verify.Observe(time.Since(start))
	if err != nil {
		return row, fmt.Errorf("%s: verify: %w", u.Name, err)
	}
	start = time.Now()
	_, err = interp.Prepare(dec)
	tm.Prepare.Observe(time.Since(start))
	if err != nil {
		return row, fmt.Errorf("%s: prepare: %w", u.Name, err)
	}
	return row, nil
}

// MeasureAll measures the whole corpus.
func MeasureAll() ([]Row, error) {
	rows, _, err := MeasureAllTimed()
	return rows, err
}

// MeasureAllTimed measures the whole corpus and aggregates per-stage
// latency histograms across it.
func MeasureAllTimed() ([]Row, *StageTimings, error) {
	var rows []Row
	tm := &StageTimings{}
	for _, u := range corpus.Units() {
		r, err := measureUnit(u, tm)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, r)
	}
	return rows, tm, nil
}

func pct(before, after int) string {
	if before <= 0 {
		return "N/A"
	}
	d := 100 * (before - after) / before
	if d == 0 {
		return "N/A"
	}
	return fmt.Sprintf("-%d", d)
}

// FormatFig5 renders the Figure 5 table: sizes in bytes and instruction
// counts for the three formats.
func FormatFig5(rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5: class files — size in bytes | number of instructions\n")
	fmt.Fprintf(&sb, "%-26s %9s %9s %9s | %8s %8s %8s\n",
		"Class Name", "Bytecode", "SafeTSA", "TSA-opt", "Bytecode", "SafeTSA", "TSA-opt")
	group := ""
	for _, r := range rows {
		if r.Paper.BytecodeSize < 0 && r.Paper.PhiBefore >= 0 {
			continue // Figure 6-only row (SourceClass)
		}
		if r.Group != group {
			group = r.Group
			fmt.Fprintf(&sb, "%s\n", group)
		}
		fmt.Fprintf(&sb, "%-26s %9d %9d %9d | %8d %8d %8d\n",
			"  "+r.Name, r.BCSize, r.TSASize, r.TSAOptSize,
			r.BCInstrs, r.TSAInstrs, r.TSAOptInstrs)
	}
	return sb.String()
}

// FormatFig6 renders the Figure 6 table: phi, null-check, and array-check
// instructions before and after producer-side optimization.
func FormatFig6(rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 6: Phi-, Null-Check and Array-Check instructions before/after optimization\n")
	fmt.Fprintf(&sb, "%-26s %7s %6s %5s | %6s %6s %5s | %6s %6s %5s\n",
		"Class Name", "PhiB", "PhiA", "d%", "NullB", "NullA", "d%", "ArrB", "ArrA", "d%")
	group := ""
	for _, r := range rows {
		if r.Paper.PhiBefore < 0 {
			continue // row absent from the paper's Figure 6
		}
		if r.Group != group {
			group = r.Group
			fmt.Fprintf(&sb, "%s\n", group)
		}
		arrB, arrA, arrD := "N/A", "N/A", "N/A"
		if r.ArrayBefore > 0 {
			arrB = fmt.Sprintf("%d", r.ArrayBefore)
			arrA = fmt.Sprintf("%d", r.ArrayAfter)
			arrD = pct(r.ArrayBefore, r.ArrayAfter)
		}
		fmt.Fprintf(&sb, "%-26s %7d %6d %5s | %6d %6d %5s | %6s %6s %5s\n",
			"  "+r.Name,
			r.PhiBefore, r.PhiAfter, pct(r.PhiBefore, r.PhiAfter),
			r.NullBefore, r.NullAfter, pct(r.NullBefore, r.NullAfter),
			arrB, arrA, arrD)
	}
	return sb.String()
}

// ClaimResult is one checked prose claim.
type ClaimResult struct {
	Claim    string
	Paper    string
	Measured string
	Holds    bool
}

// CheckClaims evaluates the paper's prose claims against the measured
// corpus.
func CheckClaims(rows []Row) []ClaimResult {
	var out []ClaimResult
	add := func(claim, paper, measured string, holds bool) {
		out = append(out, ClaimResult{claim, paper, measured, holds})
	}

	// SafeTSA instruction count well below bytecode's in most cases.
	below := 0
	n := 0
	for _, r := range rows {
		if r.BCInstrs == 0 {
			continue
		}
		n++
		if r.TSAInstrs < r.BCInstrs {
			below++
		}
	}
	add("SafeTSA has fewer instructions than bytecode",
		"every Figure 5 row; prose: ~40% fewer in most cases",
		fmt.Sprintf("%d/%d classes below bytecode", below, n), below*2 > n)

	// Optimization reduces SafeTSA instruction count by >10% in most
	// cases, up to 19%.
	over10, maxRed := 0, 0
	for _, r := range rows {
		if r.TSAInstrs == 0 {
			continue
		}
		red := 100 * (r.TSAInstrs - r.TSAOptInstrs) / r.TSAInstrs
		if red >= 10 {
			over10++
		}
		if red > maxRed {
			maxRed = red
		}
	}
	add("optimization shrinks SafeTSA by >10% in most cases",
		">10% typical, up to 19%",
		fmt.Sprintf("%d/%d classes over 10%%, max %d%%", over10, len(rows), maxRed),
		over10*2 >= len(rows))

	// Phi reduction around 30% on average (the DCE claim is 31%).
	totB, totA := 0, 0
	for _, r := range rows {
		totB += r.PhiBefore
		totA += r.PhiAfter
	}
	phiRed := 0
	if totB > 0 {
		phiRed = 100 * (totB - totA) / totB
	}
	add("DCE removes ~31% of phi instructions on average",
		"31% average; rows -9%..-50%",
		fmt.Sprintf("%d%% overall (%d -> %d)", phiRed, totB, totA),
		phiRed >= 15 && phiRed <= 55)

	// Null checks reduced ~30% typically, up to ~73%.
	nb, na := 0, 0
	maxNull := 0
	for _, r := range rows {
		nb += r.NullBefore
		na += r.NullAfter
		if r.NullBefore > 0 {
			red := 100 * (r.NullBefore - r.NullAfter) / r.NullBefore
			if red > maxNull {
				maxNull = red
			}
		}
	}
	nullRed := 0
	if nb > 0 {
		nullRed = 100 * (nb - na) / nb
	}
	add("null checks reduced ~30% typically",
		"-13%..-73%, ~30% typical",
		fmt.Sprintf("%d%% overall, max %d%% (%d -> %d)", nullRed, maxNull, nb, na),
		nullRed >= 15)

	// Array checks reduced up to ~38% on array-heavy classes.
	ab, aa := 0, 0
	for _, r := range rows {
		ab += r.ArrayBefore
		aa += r.ArrayAfter
	}
	arrRed := 0
	if ab > 0 {
		arrRed = 100 * (ab - aa) / ab
	}
	add("array checks reduced on array-heavy classes",
		"up to -38% (Linpack -19%, BigDecimal -38%)",
		fmt.Sprintf("%d%% overall (%d -> %d)", arrRed, ab, aa),
		arrRed > 0)

	// SafeTSA file size no larger than bytecode for most classes.
	smaller := 0
	for _, r := range rows {
		if r.BCSize == 0 {
			continue
		}
		if r.TSASize <= r.BCSize {
			smaller++
		}
	}
	add("SafeTSA is no more voluminous than bytecode",
		"usually smaller, sometimes substantially",
		fmt.Sprintf("%d/%d classes at or below bytecode size", smaller, n), smaller*2 > n)

	return out
}

// FormatClaims renders the claim table.
func FormatClaims(rows []Row) string {
	var sb strings.Builder
	sb.WriteString("Section 7/8 claims, paper vs this reproduction:\n")
	for _, c := range CheckClaims(rows) {
		status := "HOLDS"
		if !c.Holds {
			status = "DIFFERS"
		}
		fmt.Fprintf(&sb, "  [%s] %s\n      paper:    %s\n      measured: %s\n",
			status, c.Claim, c.Paper, c.Measured)
	}
	return sb.String()
}
