package bench

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"time"

	"safetsa/internal/core"
	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/interp"
	"safetsa/internal/rt"
	"safetsa/internal/wire"
)

// RunRow is the execution-latency comparison for one corpus unit: the
// same optimized, round-tripped module run to completion on the
// reference CST evaluator, the prepared register machine, and the
// closure-threaded compiled engine. Latencies are best-of-K wall times
// for a full session (load, static init, main); Speedup is
// ReferenceNanos / PreparedNanos, CompiledSpeedup is
// PreparedNanos / CompiledNanos.
type RunRow struct {
	Name            string
	ReferenceNanos  int64
	PreparedNanos   int64
	CompiledNanos   int64
	Speedup         float64
	CompiledSpeedup float64
}

// RunComparison aggregates the per-unit engine comparison over the
// corpus. GeomeanSpeedup is the geometric mean of the per-unit
// prepared-over-reference speedups — the headline "prepared vs
// reference" number recorded in the BENCH_*.json trajectory.
// GeomeanCompiledSpeedup is the corresponding compiled-over-prepared
// geomean, the headline number for the closure-threaded backend.
type RunComparison struct {
	BestOf                 int
	Rows                   []RunRow
	GeomeanSpeedup         float64
	GeomeanCompiledSpeedup float64
}

// runComparisonBestOf is the number of timed sessions per engine per
// unit; the minimum is reported, which is the standard way to strip
// scheduler noise from short single-threaded runs.
const runComparisonBestOf = 5

// MeasureRunComparison times every runnable corpus unit on all three
// engines. Each unit is compiled, optimized, and round-tripped through
// the wire format first (so the measured module is exactly what a
// consumer would hold), verified, prepared, and backend-compiled once,
// and then run runComparisonBestOf times per engine. The engines'
// outputs must be byte-identical; any divergence is an error, making
// the benchmark double as a whole-corpus equivalence check.
func MeasureRunComparison() (*RunComparison, error) {
	rc := &RunComparison{BestOf: runComparisonBestOf}
	logSum, logSumCompiled := 0.0, 0.0
	for _, u := range corpus.Units() {
		mod, _, err := driver.CompileTSASourceOpt(u.Files)
		if err != nil {
			return nil, fmt.Errorf("%s: compile: %w", u.Name, err)
		}
		dec, err := wire.DecodeModule(wire.EncodeModule(mod))
		if err != nil {
			return nil, fmt.Errorf("%s: decode: %w", u.Name, err)
		}
		if err := dec.Verify(core.VerifyOptions{}); err != nil {
			return nil, fmt.Errorf("%s: verify: %w", u.Name, err)
		}
		if dec.Entry < 0 {
			continue // nothing to run
		}
		prep, err := interp.Prepare(dec)
		if err != nil {
			return nil, fmt.Errorf("%s: prepare: %w", u.Name, err)
		}
		comp, err := interp.Compile(dec, prep)
		if err != nil {
			return nil, fmt.Errorf("%s: compile backend: %w", u.Name, err)
		}

		refNanos, refOut, err := bestOf(runComparisonBestOf, func(env *rt.Env) (*interp.Loader, error) {
			return interp.LoadTrusted(dec, env)
		})
		if err != nil {
			return nil, fmt.Errorf("%s: reference run: %w", u.Name, err)
		}
		prepNanos, prepOut, err := bestOf(runComparisonBestOf, func(env *rt.Env) (*interp.Loader, error) {
			return interp.LoadTrustedPrepared(dec, prep, env)
		})
		if err != nil {
			return nil, fmt.Errorf("%s: prepared run: %w", u.Name, err)
		}
		if refOut != prepOut {
			return nil, fmt.Errorf("%s: engine outputs diverge:\n%q\nvs\n%q", u.Name, refOut, prepOut)
		}
		compNanos, compOut, err := bestOf(runComparisonBestOf, func(env *rt.Env) (*interp.Loader, error) {
			return interp.LoadTrustedCompiled(dec, comp, env)
		})
		if err != nil {
			return nil, fmt.Errorf("%s: compiled run: %w", u.Name, err)
		}
		if refOut != compOut {
			return nil, fmt.Errorf("%s: compiled engine output diverges:\n%q\nvs\n%q", u.Name, refOut, compOut)
		}

		speedup := float64(refNanos) / float64(prepNanos)
		compiledSpeedup := float64(prepNanos) / float64(compNanos)
		rc.Rows = append(rc.Rows, RunRow{
			Name:            u.Name,
			ReferenceNanos:  refNanos,
			PreparedNanos:   prepNanos,
			CompiledNanos:   compNanos,
			Speedup:         speedup,
			CompiledSpeedup: compiledSpeedup,
		})
		logSum += math.Log(speedup)
		logSumCompiled += math.Log(compiledSpeedup)
	}
	if len(rc.Rows) > 0 {
		rc.GeomeanSpeedup = math.Exp(logSum / float64(len(rc.Rows)))
		rc.GeomeanCompiledSpeedup = math.Exp(logSumCompiled / float64(len(rc.Rows)))
	}
	return rc, nil
}

// bestOf runs k full sessions through load (one of the three engines)
// and returns the minimum wall time plus the (identical) printed output.
// The heap is quiesced before every timed session (as testing.B does
// before a benchmark) so that garbage left by the previously measured
// engine cannot bill its collection to this one — without it the
// last-measured engine absorbs the GC assists for all three.
func bestOf(k int, load func(env *rt.Env) (*interp.Loader, error)) (int64, string, error) {
	best := int64(math.MaxInt64)
	var out string
	for i := 0; i < k; i++ {
		runtime.GC()
		var buf bytes.Buffer
		env := &rt.Env{Out: &buf}
		start := time.Now()
		l, err := load(env)
		if err != nil {
			return 0, "", err
		}
		err = l.RunMain()
		elapsed := time.Since(start).Nanoseconds()
		if err != nil {
			return 0, "", err
		}
		if elapsed < best {
			best = elapsed
		}
		if i == 0 {
			out = buf.String()
		} else if buf.String() != out {
			return 0, "", fmt.Errorf("output varies across repeat runs")
		}
	}
	if best < 1 {
		best = 1 // avoid zero-division on sub-nanosecond clocks
	}
	return best, out, nil
}
