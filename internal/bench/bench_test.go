package bench

import (
	"strings"
	"testing"

	"safetsa/internal/corpus"
)

func measured(t *testing.T) []Row {
	t.Helper()
	rows, err := MeasureAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestMeasureAllShape is the headline reproduction check, asserted rather
// than eyeballed: on every row SafeTSA must carry fewer instructions than
// bytecode, optimization must never grow a module, and the Figure 6
// counters must be monotone.
func TestMeasureAllShape(t *testing.T) {
	rows := measured(t)
	if len(rows) != len(corpus.Units()) {
		t.Fatalf("measured %d rows for %d units", len(rows), len(corpus.Units()))
	}
	for _, r := range rows {
		if r.BCInstrs <= 0 || r.TSAInstrs <= 0 || r.BCSize <= 0 || r.TSASize <= 0 {
			t.Errorf("%s: empty measurement %+v", r.Name, r)
			continue
		}
		if r.TSAInstrs >= r.BCInstrs {
			t.Errorf("%s: SafeTSA has %d instructions vs bytecode's %d",
				r.Name, r.TSAInstrs, r.BCInstrs)
		}
		if r.TSAOptInstrs > r.TSAInstrs {
			t.Errorf("%s: optimization grew instructions %d -> %d",
				r.Name, r.TSAInstrs, r.TSAOptInstrs)
		}
		if r.TSAOptSize > r.TSASize {
			t.Errorf("%s: optimization grew the unit %d -> %d bytes",
				r.Name, r.TSASize, r.TSAOptSize)
		}
		if r.PhiAfter > r.PhiBefore || r.NullAfter > r.NullBefore || r.ArrayAfter > r.ArrayBefore {
			t.Errorf("%s: a Figure 6 counter increased: %+v", r.Name, r)
		}
	}
}

func TestClaimsAllHold(t *testing.T) {
	rows := measured(t)
	for _, c := range CheckClaims(rows) {
		if !c.Holds {
			t.Errorf("claim %q does not hold: %s (paper: %s)", c.Claim, c.Measured, c.Paper)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	rows := measured(t)
	fig5 := FormatFig5(rows)
	if !strings.Contains(fig5, "Linpack") || !strings.Contains(fig5, "sun.math") {
		t.Error("Figure 5 missing groups or rows")
	}
	fig6 := FormatFig6(rows)
	if !strings.Contains(fig6, "SourceClass") {
		t.Error("Figure 6 must include the SourceClass row")
	}
	if strings.Contains(fig6, "ErrorMessage") {
		t.Error("Figure 6 must omit rows the paper omits")
	}
	exp := FormatExperiments(rows)
	for _, want := range []string{"Figure 5", "Figure 6", "HOLDS", "| Linpack |"} {
		if !strings.Contains(exp, want) {
			t.Errorf("experiments report missing %q", want)
		}
	}
}

// TestLinpackRowBrackets pins the flagship row against the paper's
// reported effects with generous tolerances: Linpack's array-check
// reduction must land in (0%, 50%] (paper: 19%) and its null-check
// reduction in [20%, 80%] (paper: 39%).
func TestLinpackRowBrackets(t *testing.T) {
	u, _ := corpus.ByName("Linpack")
	r, err := MeasureUnit(u)
	if err != nil {
		t.Fatal(err)
	}
	arrRed := 100 * (r.ArrayBefore - r.ArrayAfter) / r.ArrayBefore
	if arrRed <= 0 || arrRed > 50 {
		t.Errorf("Linpack array-check reduction %d%% outside (0,50]", arrRed)
	}
	nullRed := 100 * (r.NullBefore - r.NullAfter) / r.NullBefore
	if nullRed < 20 || nullRed > 80 {
		t.Errorf("Linpack null-check reduction %d%% outside [20,80]", nullRed)
	}
	if r.TSAOptInstrs >= r.TSAInstrs {
		t.Error("Linpack optimization removed nothing")
	}
}
