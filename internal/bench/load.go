package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"safetsa/internal/codeserver"
	"safetsa/internal/driver"
	"safetsa/internal/obs"
)

// LoadConfig shapes one load-generator replay against a codeserver (or a
// cluster of them): mixed compile/run traffic with zipfian key skew, the
// access pattern of a real mobile-code distribution service where a few
// hot units dominate run traffic while the long tail trickles in.
type LoadConfig struct {
	// Targets are the base URLs to spray traffic over (round-robin by
	// worker draw). At least one is required.
	Targets []string
	// Workers is the concurrent client count (<=0: 8).
	Workers int
	// Duration bounds the timed phase (<=0: 10s) unless Requests is set.
	Duration time.Duration
	// Requests, when >0, replaces Duration with a fixed request quota —
	// deterministic work for CI.
	Requests int
	// Units is the distinct-program universe size (<=0: 16).
	Units int
	// RunFraction is the probability a draw is a run rather than a
	// compile (<=0 or >1: 0.8 — the 80/20 replay mix).
	RunFraction float64
	// ZipfS is the zipfian skew exponent over the unit universe
	// (<=1: 1.2). Higher = hotter hot keys.
	ZipfS float64
	// Seed makes the replay reproducible (0: 1).
	Seed int64
	// MaxSteps is the per-run step budget sent with run requests
	// (<=0: 1_000_000).
	MaxSteps int64
	// MaxAllocs is the per-run allocation budget sent with run requests
	// (0: none — the server's own cap, if any, still applies).
	MaxAllocs int64
	// Tenants is the number of distinct tenant identities the replay
	// spreads run traffic over (<=0: 1). Tenant i is named "tenant-i";
	// each run draw picks one uniformly, and the result digests
	// run latency per tenant — the fairness observable.
	Tenants int
	// Engine, when nonempty, is sent with every run request to override
	// the server's default execution engine ("prepared", "compiled", or
	// "reference").
	Engine string
	// Client performs the requests (nil: 30s-timeout default).
	Client *http.Client
}

// ConfigError reports a LoadConfig field whose value is explicitly
// invalid (as opposed to zero, which means "use the default"). RunLoad
// returns it before any network traffic, so a bad flag fails fast with
// a field-level message instead of panicking mid-replay or silently
// running a different workload than asked. Distinguish it from
// transport errors with errors.As.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("bench: invalid load config: %s %s", e.Field, e.Reason)
}

// validate applies the zero-means-default rules and rejects explicitly
// invalid values. It exists because the old silent clamping let real
// misconfigurations through: ZipfS = NaN passes a `<= 1` guard and makes
// rand.NewZipf return nil (the worker then panics on the nil Zipf), and
// a negative Units used to be "corrected" to the default universe while
// the report claimed the requested one.
func (cfg *LoadConfig) validate() error {
	if len(cfg.Targets) == 0 {
		return &ConfigError{Field: "Targets", Reason: "needs at least one target"}
	}
	if cfg.Workers < 0 {
		return &ConfigError{Field: "Workers", Reason: fmt.Sprintf("must be positive, got %d", cfg.Workers)}
	}
	if cfg.Workers == 0 {
		cfg.Workers = 8
	}
	if cfg.Duration < 0 {
		return &ConfigError{Field: "Duration", Reason: fmt.Sprintf("must be positive, got %v", cfg.Duration)}
	}
	if cfg.Duration == 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Requests < 0 {
		return &ConfigError{Field: "Requests", Reason: fmt.Sprintf("must not be negative, got %d", cfg.Requests)}
	}
	if cfg.Units < 0 {
		return &ConfigError{Field: "Units", Reason: fmt.Sprintf("must be positive, got %d", cfg.Units)}
	}
	if cfg.Units == 0 {
		cfg.Units = 16
	}
	if cfg.RunFraction != 0 && !(cfg.RunFraction > 0 && cfg.RunFraction <= 1) {
		// The negated form also catches NaN, which fails every comparison.
		return &ConfigError{Field: "RunFraction", Reason: fmt.Sprintf("must be in (0, 1], got %v", cfg.RunFraction)}
	}
	if cfg.RunFraction == 0 {
		cfg.RunFraction = 0.8
	}
	if cfg.ZipfS != 0 && !(cfg.ZipfS > 1 && cfg.ZipfS <= 64) {
		// rand.NewZipf returns nil for s <= 1 (and NaN fails every
		// comparison); the upper bound rejects +Inf and absurd skews.
		return &ConfigError{Field: "ZipfS", Reason: fmt.Sprintf("must be in (1, 64], got %v", cfg.ZipfS)}
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxSteps < 0 {
		return &ConfigError{Field: "MaxSteps", Reason: fmt.Sprintf("must be positive, got %d", cfg.MaxSteps)}
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 1_000_000
	}
	if cfg.MaxAllocs < 0 {
		return &ConfigError{Field: "MaxAllocs", Reason: fmt.Sprintf("must not be negative, got %d", cfg.MaxAllocs)}
	}
	if cfg.Tenants < 0 {
		return &ConfigError{Field: "Tenants", Reason: fmt.Sprintf("must be positive, got %d", cfg.Tenants)}
	}
	if cfg.Tenants == 0 {
		cfg.Tenants = 1
	}
	switch cfg.Engine {
	case "", driver.EnginePrepared, driver.EngineCompiled, driver.EngineReference:
	default:
		// The server would 400 every run request; catch the typo before
		// the replay burns its whole budget on rejected traffic.
		return &ConfigError{Field: "Engine", Reason: fmt.Sprintf("must be %q, %q, or %q, got %q",
			driver.EnginePrepared, driver.EngineCompiled, driver.EngineReference, cfg.Engine)}
	}
	return nil
}

// LoadResult is the outcome of one replay: the effective config, the
// outcome counters, and the client-observed latency histogram per stage.
type LoadResult struct {
	Targets     int
	Workers     int
	Units       int
	Tenants     int
	RunFraction float64
	ZipfS       float64
	Elapsed     time.Duration

	Requests       uint64
	Compiles       uint64 // compile requests issued in the timed phase
	CachedCompiles uint64 // ... of which the fleet served from cache
	Runs           uint64 // run requests the server accepted (incl. guest kills)
	Throttled      uint64 // run requests rejected 429 by the fair-admission gate
	Errors         uint64
	ErrorSamples   []string // first few failures, for diagnostics

	// GuestSteps/GuestAllocs total the budget drain the server reported
	// per accepted run — the client-side mirror of the server's guest
	// counters, so budget parity is observable from the load generator.
	GuestSteps  uint64
	GuestAllocs uint64

	CompileHist obs.Histogram
	RunHist     obs.Histogram
	// TenantRunHists digests accepted-run latency per tenant identity
	// ("tenant-0".."tenant-N-1"), index-aligned with the tenant number.
	TenantRunHists []*obs.Histogram
}

// loadProgram is the i-th distinct guest in the key universe: distinct
// source (so a distinct content key), deterministic terminating output.
func loadProgram(i int) map[string]string {
	return map[string]string{"Load.tj": fmt.Sprintf(`
class Load {
    static void main() {
        int acc = %d;
        int i = 0;
        while (i < 25) {
            acc = acc + i * %d;
            i = i + 1;
        }
        System.out.println("load" + acc);
    }
}`, i, i%7+1)}
}

// RunLoad executes the replay: a warmup pass that compiles every unit in
// the universe once (so run draws never race the very first fill), then
// Workers concurrent clients drawing zipfian-skewed mixed traffic until
// the duration or request quota is exhausted. An invalid config is
// rejected up front with a *ConfigError, before any warmup traffic.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}

	res := &LoadResult{
		Targets:     len(cfg.Targets),
		Workers:     cfg.Workers,
		Units:       cfg.Units,
		Tenants:     cfg.Tenants,
		RunFraction: cfg.RunFraction,
		ZipfS:       cfg.ZipfS,
	}
	tenantNames := make([]string, cfg.Tenants)
	for i := range tenantNames {
		tenantNames[i] = fmt.Sprintf("tenant-%d", i)
		res.TenantRunHists = append(res.TenantRunHists, &obs.Histogram{})
	}

	hashes := make([]string, cfg.Units)
	for i := 0; i < cfg.Units; i++ {
		hash, _, err := loadCompile(ctx, client, cfg.Targets[i%len(cfg.Targets)], loadProgram(i))
		if err != nil {
			return nil, fmt.Errorf("bench: warmup compile %d: %w", i, err)
		}
		hashes[i] = hash
	}

	var (
		requests    atomic.Uint64
		compiles    atomic.Uint64
		cached      atomic.Uint64
		runs        atomic.Uint64
		throttled   atomic.Uint64
		guestSteps  atomic.Uint64
		guestAllocs atomic.Uint64
		errCount    atomic.Uint64
		errMu       sync.Mutex
	)
	recordErr := func(err error) {
		errCount.Add(1)
		errMu.Lock()
		if len(res.ErrorSamples) < 5 {
			res.ErrorSamples = append(res.ErrorSamples, err.Error())
		}
		errMu.Unlock()
	}

	timedCtx := ctx
	if cfg.Requests <= 0 {
		var cancel context.CancelFunc
		timedCtx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}
	quota := int64(cfg.Requests) // <=0: unlimited, duration-bounded

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Units-1))
			for {
				if timedCtx.Err() != nil {
					return
				}
				n := requests.Add(1)
				if quota > 0 && int64(n) > quota {
					return
				}
				unit := int(zipf.Uint64())
				target := cfg.Targets[rng.Intn(len(cfg.Targets))]
				if rng.Float64() < cfg.RunFraction {
					ti := rng.Intn(cfg.Tenants)
					t0 := time.Now()
					rr, wasThrottled, err := loadRun(timedCtx, client, target, hashes[unit], &cfg, tenantNames[ti])
					if timedCtx.Err() != nil {
						return // cutoff mid-request: don't score a truncated sample
					}
					if wasThrottled {
						// A 429 is the admission gate working, not a failure:
						// count it apart and keep it out of the latency
						// digests, which score accepted runs.
						throttled.Add(1)
						continue
					}
					d := time.Since(t0)
					res.RunHist.Observe(d)
					res.TenantRunHists[ti].Observe(d)
					runs.Add(1)
					// rr carries the server-reported drain even for guest
					// failures (zero on transport errors), so the parity
					// totals mirror the server's counters exactly.
					guestSteps.Add(uint64(rr.Steps))
					guestAllocs.Add(uint64(rr.Allocs))
					if err != nil {
						recordErr(err)
					}
				} else {
					t0 := time.Now()
					_, wasCached, err := loadCompile(timedCtx, client, target, loadProgram(unit))
					if timedCtx.Err() != nil {
						return
					}
					res.CompileHist.Observe(time.Since(t0))
					compiles.Add(1)
					if err != nil {
						recordErr(err)
					} else if wasCached {
						cached.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	res.Elapsed = time.Since(start)
	res.Compiles = compiles.Load()
	res.CachedCompiles = cached.Load()
	res.Runs = runs.Load()
	res.Throttled = throttled.Load()
	res.Requests = res.Compiles + res.Runs + res.Throttled
	res.GuestSteps = guestSteps.Load()
	res.GuestAllocs = guestAllocs.Load()
	res.Errors = errCount.Load()
	return res, nil
}

func loadCompile(ctx context.Context, client *http.Client, target string, files map[string]string) (hash string, cached bool, err error) {
	body, err := json.Marshal(codeserver.CompileRequest{Files: files})
	if err != nil {
		return "", false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/compile", bytes.NewReader(body))
	if err != nil {
		return "", false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return "", false, fmt.Errorf("compile via %s: status %d: %s", target, resp.StatusCode, b)
	}
	var cr codeserver.CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return "", false, err
	}
	return cr.Hash, cr.Cached, nil
}

func loadRun(ctx context.Context, client *http.Client, target, hash string, cfg *LoadConfig, tenant string) (rr codeserver.RunResult, throttled bool, err error) {
	body, err := json.Marshal(codeserver.RunRequest{
		MaxSteps:  cfg.MaxSteps,
		MaxAllocs: cfg.MaxAllocs,
		Engine:    cfg.Engine,
		Tenant:    tenant,
	})
	if err != nil {
		return rr, false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/run/"+hash, bytes.NewReader(body))
	if err != nil {
		return rr, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return rr, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		return rr, true, nil
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return rr, false, fmt.Errorf("run via %s: status %d: %s", target, resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return rr, false, err
	}
	if !rr.OK {
		return rr, false, fmt.Errorf("run via %s: guest failure: %s", target, rr.Error)
	}
	return rr, false, nil
}
