package bench

import (
	"encoding/json"
	"testing"
)

// TestMeasureModuleOptShape runs the interprocedural-tier measurement
// over the corpus and pins the shape of its report block: every
// pipeline pass accounted, the devirtualizer provably active on the
// dispatch-heavy corpus, and the run rows internally consistent.
func TestMeasureModuleOptShape(t *testing.T) {
	mc, err := MeasureModuleOpt()
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.PassDeltas) == 0 {
		t.Fatal("no pass deltas recorded")
	}
	names := map[string]bool{}
	for _, d := range mc.PassDeltas {
		names[d.Pass] = true
		if d.InstrsBefore <= 0 || d.InstrsAfter <= 0 {
			t.Errorf("pass %s: non-positive instruction totals %d -> %d",
				d.Pass, d.InstrsBefore, d.InstrsAfter)
		}
	}
	for _, want := range []string{"devirt", "inline", "checkelim", "dce2"} {
		if !names[want] {
			t.Errorf("pass %q missing from the delta block", want)
		}
	}
	if mc.Devirtualized == 0 {
		t.Error("no xdispatch site devirtualized over the whole corpus")
	}
	if mc.Inlined == 0 {
		t.Error("no call site inlined over the whole corpus")
	}
	if len(mc.Rows) == 0 {
		t.Fatal("no run rows")
	}
	for _, r := range mc.Rows {
		if r.IntraNanos <= 0 || r.ModuleNanos <= 0 || r.Speedup <= 0 {
			t.Errorf("%s: bad run row %+v", r.Name, r)
		}
	}
	if mc.GeomeanSpeedup <= 0 {
		t.Errorf("geomean speedup %f", mc.GeomeanSpeedup)
	}

	data, err := FormatJSONTimed(nil, nil, nil, nil, mc, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep JSONReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ModuleOpt == nil {
		t.Fatal("module_opt block missing from the JSON report")
	}
	if rep.ModuleOpt.Devirtualized != mc.Devirtualized ||
		len(rep.ModuleOpt.PassDeltas) != len(mc.PassDeltas) ||
		len(rep.ModuleOpt.Rows) != len(mc.Rows) {
		t.Error("JSON block does not round-trip the measurement")
	}
}
