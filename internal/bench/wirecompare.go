package bench

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"time"

	"safetsa/internal/core"
	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/wire"
)

// WireRow is one corpus unit's wire-format comparison: javac-baseline
// and per-version unit sizes, plus the streaming observables — full
// decode+verify latency versus time-to-first-instruction (the moment
// the entry prefix is admitted and main may begin).
type WireRow struct {
	Name  string
	Funcs int

	BCSize     int // serialized bytecode class files (the javac stand-in)
	V1Size     int // fixed-code v1
	V2Size     int // adaptive v2, no dictionary
	V2DictSize int // adaptive v2 with the bundle-trained dictionary

	FullDecodeNanos int64 // decode + verify of the whole v2 unit
	TTFINanos       int64 // streaming: header + tables + entry prefix admitted
}

// WireComparison is the corpus-wide wire-format measurement.
type WireComparison struct {
	BestOf    int
	DictBytes int // serialized size of the shared dictionary
	Rows      []WireRow

	// Size ratios, geomean over the corpus (< 1 means the numerator
	// format is smaller).
	GeomeanV2OverV1     float64
	GeomeanV2DictOverV1 float64
	GeomeanV1OverBC     float64

	// GeomeanTTFIOverFull is the streaming win: time-to-first-instruction
	// over full-decode latency, geomean over multi-function units only
	// (single-function units have no prefix to exploit).
	GeomeanTTFIOverFull float64
}

// MeasureWire measures the wire-format comparison over the whole
// corpus: the shared dictionary is trained over the full distribution
// bundle (every corpus module), then each unit is encoded at v1, v2,
// and v2+dictionary, and the v2 stream is decoded both ways (full and
// streaming) best-of-K.
func MeasureWire(bestOf int) (*WireComparison, error) {
	if bestOf <= 0 {
		bestOf = 5
	}
	units := corpus.Units()
	mods := make([]*core.Module, 0, len(units))
	bcSizes := make([]int, 0, len(units))
	for _, u := range units {
		prog, err := driver.Frontend(u.Files)
		if err != nil {
			return nil, fmt.Errorf("%s: frontend: %w", u.Name, err)
		}
		bc, err := driver.CompileBytecode(prog)
		if err != nil {
			return nil, fmt.Errorf("%s: bytecode: %w", u.Name, err)
		}
		mod, err := driver.CompileTSA(prog)
		if err != nil {
			return nil, fmt.Errorf("%s: safetsa: %w", u.Name, err)
		}
		if _, err := driver.OptimizeModule(mod); err != nil {
			return nil, fmt.Errorf("%s: optimize: %w", u.Name, err)
		}
		mods = append(mods, mod)
		bcSizes = append(bcSizes, bc.SerializedSize())
	}
	dict := wire.TrainDictionary(mods)
	wc := &WireComparison{BestOf: bestOf}
	if dict != nil {
		wc.DictBytes = len(dict.Bytes())
	}

	var rv2v1, rv2dv1, rv1bc, rttfi []float64
	for i, u := range units {
		mod := mods[i]
		row := WireRow{
			Name:   u.Name,
			Funcs:  len(mod.Funcs),
			BCSize: bcSizes[i],
			V1Size: len(wire.EncodeModule(mod)),
		}
		v2 := wire.EncodeModuleV2(mod, nil)
		row.V2Size = len(v2)
		row.V2DictSize = len(wire.EncodeModuleV2(mod, dict))

		row.FullDecodeNanos = int64(bestOfK(bestOf, func() error {
			_, err := wire.DecodeVerified(v2)
			return err
		}))
		row.TTFINanos = int64(bestOfK(bestOf, func() error {
			su, err := wire.DecodeVerifiedStream(bytes.NewReader(v2), wire.DecodeOptions{})
			if err != nil {
				return err
			}
			if err := su.WaitEntry(); err != nil {
				return err
			}
			// The clock stops here; the tail is drained outside the
			// timed section by the caller's next iteration.
			go func() { _ = su.Wait() }()
			return nil
		}))

		if row.V1Size > 0 {
			rv2v1 = append(rv2v1, float64(row.V2Size)/float64(row.V1Size))
			rv2dv1 = append(rv2dv1, float64(row.V2DictSize)/float64(row.V1Size))
		}
		if row.BCSize > 0 {
			rv1bc = append(rv1bc, float64(row.V1Size)/float64(row.BCSize))
		}
		if row.Funcs > 1 && row.FullDecodeNanos > 0 {
			rttfi = append(rttfi, float64(row.TTFINanos)/float64(row.FullDecodeNanos))
		}
		wc.Rows = append(wc.Rows, row)
	}
	wc.GeomeanV2OverV1 = geomean(rv2v1)
	wc.GeomeanV2DictOverV1 = geomean(rv2dv1)
	wc.GeomeanV1OverBC = geomean(rv1bc)
	wc.GeomeanTTFIOverFull = geomean(rttfi)
	return wc, nil
}

// bestOfK times fn k times and returns the fastest successful run; an
// error makes the sample +Inf so failures are visible as absurd rows
// rather than silently zero.
func bestOfK(k int, fn func() error) time.Duration {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < k; i++ {
		start := time.Now()
		err := fn()
		d := time.Since(start)
		if err == nil && d < best {
			best = d
		}
	}
	return best
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// FormatWire renders the wire comparison as a text table.
func FormatWire(wc *WireComparison) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Wire formats: size in bytes | streaming time-to-first-instruction (best of %d)\n", wc.BestOf)
	fmt.Fprintf(&sb, "%-26s %9s %9s %9s %9s | %6s %12s %12s\n",
		"Class Name", "Bytecode", "v1", "v2", "v2+dict", "funcs", "full-decode", "TTFI")
	for _, r := range wc.Rows {
		fmt.Fprintf(&sb, "%-26s %9d %9d %9d %9d | %6d %10dns %10dns\n",
			"  "+r.Name, r.BCSize, r.V1Size, r.V2Size, r.V2DictSize,
			r.Funcs, r.FullDecodeNanos, r.TTFINanos)
	}
	fmt.Fprintf(&sb, "geomean v2/v1 %.3f, v2+dict/v1 %.3f, v1/bytecode %.3f, TTFI/full-decode %.3f (dict %d bytes)\n",
		wc.GeomeanV2OverV1, wc.GeomeanV2DictOverV1, wc.GeomeanV1OverBC, wc.GeomeanTTFIOverFull, wc.DictBytes)
	return sb.String()
}
