package bench

import (
	"encoding/json"
	"fmt"

	"safetsa/internal/obs"
)

// JSONRow is the machine-readable form of one measured corpus row: every
// Figure 5 and Figure 6 cell, measured and paper-reported (-1 marks cells
// the paper leaves out).
type JSONRow struct {
	Name      string `json:"name"`
	Group     string `json:"group"`
	Generated bool   `json:"generated"`

	Measured JSONCells `json:"measured"`
	Paper    JSONCells `json:"paper"`
}

// JSONCells holds the table cells for one source (measured or paper).
type JSONCells struct {
	BytecodeSize   int `json:"bytecode_size"`
	TSASize        int `json:"tsa_size"`
	TSAOptSize     int `json:"tsa_opt_size"`
	BytecodeInstrs int `json:"bytecode_instrs"`
	TSAInstrs      int `json:"tsa_instrs"`
	TSAOptInstrs   int `json:"tsa_opt_instrs"`

	PhiBefore   int `json:"phi_before"`
	PhiAfter    int `json:"phi_after"`
	NullBefore  int `json:"null_before"`
	NullAfter   int `json:"null_after"`
	ArrayBefore int `json:"array_before"`
	ArrayAfter  int `json:"array_after"`
}

// JSONClaim is the machine-readable form of one checked §7/§8 claim.
type JSONClaim struct {
	Claim    string `json:"claim"`
	Paper    string `json:"paper"`
	Measured string `json:"measured"`
	Holds    bool   `json:"holds"`
}

// JSONReport is the full benchtables output as data: the Figure 5/6
// tables, the prose-claim checks, and the per-stage latency summaries,
// for recording BENCH_*.json perf-trajectory snapshots across PRs.
type JSONReport struct {
	Schema string      `json:"schema"`
	Rows   []JSONRow   `json:"rows"`
	Claims []JSONClaim `json:"claims"`
	// Latencies digests the producer/consumer stage histograms measured
	// over the corpus run (count, total, p50/p90/p99 in nanoseconds),
	// keyed by stage: frontend, bytecode, ssabuild, optimize, encode,
	// decode, verify, prepare. Absent when the measurement run was
	// untimed.
	Latencies map[string]obs.LatencySummary `json:"latencies,omitempty"`
	// RunComparison records the three-way reference/prepared/compiled
	// execution-latency comparison over the corpus (best-of-K per engine
	// per unit, plus the geomean speedups). Absent when the comparison
	// was not run.
	RunComparison *JSONRunComparison `json:"run_comparison,omitempty"`
	// WarmPool records the warm-session-pool comparison: cold (fresh
	// static init) versus warm (snapshot clone) full-session latency per
	// unit on the compiled engine. Absent when the comparison was not run.
	WarmPool *JSONWarmPool `json:"warm_pool,omitempty"`
	// ModuleOpt records the interprocedural-tier measurement: per-pass
	// instruction-count deltas over the corpus, the new passes' action
	// counts, and the module-vs-intraprocedural run-latency comparison.
	// Absent when the comparison was not run.
	ModuleOpt *JSONModuleOpt `json:"module_opt,omitempty"`
	// Load records a load-generator replay against a running codeserver
	// or fleet (see LoadResult). Absent from benchtables snapshots.
	Load *JSONLoad `json:"load,omitempty"`
	// Wire records the wire-format comparison: per-unit sizes at v1, v2,
	// and v2+dictionary against the bytecode baseline, plus the
	// streaming time-to-first-instruction versus full-decode latency.
	// Absent when the comparison was not run.
	Wire *JSONWire `json:"wire,omitempty"`
}

// JSONWireRow is one unit's wire-format comparison row.
type JSONWireRow struct {
	Name            string `json:"name"`
	Funcs           int    `json:"funcs"`
	BytecodeSize    int    `json:"bytecode_size"`
	V1Size          int    `json:"v1_size"`
	V2Size          int    `json:"v2_size"`
	V2DictSize      int    `json:"v2_dict_size"`
	FullDecodeNanos int64  `json:"full_decode_nanos"`
	TTFINanos       int64  `json:"ttfi_nanos"`
}

// JSONWire is the machine-readable wire-format comparison block. The
// geomean ratios are < 1 when the numerator wins (v2 smaller than v1,
// first instruction before full decode).
type JSONWire struct {
	BestOf              int           `json:"best_of"`
	DictBytes           int           `json:"dict_bytes"`
	Rows                []JSONWireRow `json:"rows"`
	GeomeanV2OverV1     float64       `json:"geomean_v2_over_v1"`
	GeomeanV2DictOverV1 float64       `json:"geomean_v2_dict_over_v1"`
	GeomeanV1OverBC     float64       `json:"geomean_v1_over_bc"`
	GeomeanTTFIOverFull float64       `json:"geomean_ttfi_over_full"`
}

// JSONLoad is the machine-readable load-replay block: the traffic shape
// actually driven and the client-observed latency digest per stage.
type JSONLoad struct {
	Targets        int     `json:"targets"`
	Workers        int     `json:"workers"`
	Units          int     `json:"units"`
	Tenants        int     `json:"tenants"`
	RunFraction    float64 `json:"run_fraction"`
	ZipfS          float64 `json:"zipf_s"`
	ElapsedNanos   int64   `json:"elapsed_nanos"`
	Requests       uint64  `json:"requests"`
	Compiles       uint64  `json:"compiles"`
	CachedCompiles uint64  `json:"cached_compiles"`
	Runs           uint64  `json:"runs"`
	Throttled      uint64  `json:"throttled"`
	Errors         uint64  `json:"errors"`
	// GuestSteps/GuestAllocs total the server-reported budget drain over
	// all accepted runs — compare against the server's guest counters to
	// check budget parity from outside.
	GuestSteps  uint64 `json:"guest_steps"`
	GuestAllocs uint64 `json:"guest_allocs"`
	// ErrorSamples carries the first few failure messages so a red CI
	// run is diagnosable from the archived report alone.
	ErrorSamples []string `json:"error_samples,omitempty"`
	// Latencies digests the client-observed stage histograms ("compile",
	// "run"): count, total, p50/p90/p99 in nanoseconds.
	Latencies map[string]obs.LatencySummary `json:"latencies"`
	// TenantLatencies digests accepted-run latency per tenant identity —
	// the fairness observable the admission gate protects.
	TenantLatencies map[string]obs.LatencySummary `json:"tenant_latencies,omitempty"`
}

// JSONWarmRow is the machine-readable form of one warm-pool row.
// "speedup" is cold-over-warm.
type JSONWarmRow struct {
	Name      string  `json:"name"`
	InitHeavy bool    `json:"init_heavy"`
	InitSteps int64   `json:"init_steps"`
	ColdNanos int64   `json:"cold_nanos"`
	WarmNanos int64   `json:"warm_nanos"`
	Speedup   float64 `json:"speedup"`
}

// JSONWarmPool is the machine-readable warm-session-pool comparison.
type JSONWarmPool struct {
	BestOf                  int           `json:"best_of"`
	Rows                    []JSONWarmRow `json:"rows"`
	GeomeanSpeedup          float64       `json:"geomean_speedup"`
	GeomeanInitHeavySpeedup float64       `json:"geomean_init_heavy_speedup"`
}

// JSONRunRow is the machine-readable form of one engine-comparison row.
// "speedup" is reference-over-prepared; "compiled_speedup" is
// prepared-over-compiled.
type JSONRunRow struct {
	Name            string  `json:"name"`
	ReferenceNanos  int64   `json:"reference_nanos"`
	PreparedNanos   int64   `json:"prepared_nanos"`
	CompiledNanos   int64   `json:"compiled_nanos"`
	Speedup         float64 `json:"speedup"`
	CompiledSpeedup float64 `json:"compiled_speedup"`
}

// JSONRunComparison is the machine-readable engine comparison.
type JSONRunComparison struct {
	BestOf                 int          `json:"best_of"`
	Rows                   []JSONRunRow `json:"rows"`
	GeomeanSpeedup         float64      `json:"geomean_speedup"`
	GeomeanCompiledSpeedup float64      `json:"geomean_compiled_speedup"`
}

// JSONPassDelta is one row of the Figure-6-style per-pass block: total
// corpus instruction count entering and leaving one named pass of the
// interprocedural pipeline.
type JSONPassDelta struct {
	Pass         string `json:"pass"`
	InstrsBefore int    `json:"instrs_before"`
	InstrsAfter  int    `json:"instrs_after"`
}

// JSONModuleRunRow is one unit's module-vs-intraprocedural run-latency
// row. "speedup" is intra-over-module.
type JSONModuleRunRow struct {
	Name        string  `json:"name"`
	IntraNanos  int64   `json:"intra_nanos"`
	ModuleNanos int64   `json:"module_nanos"`
	Speedup     float64 `json:"speedup"`
}

// JSONModuleOpt is the machine-readable interprocedural-tier block.
type JSONModuleOpt struct {
	BestOf         int                `json:"best_of"`
	PassDeltas     []JSONPassDelta    `json:"pass_deltas"`
	Devirtualized  int                `json:"devirtualized"`
	Inlined        int                `json:"inlined"`
	ChecksElided   int                `json:"checks_elided"`
	ExcEdgesPruned int                `json:"exc_edges_pruned"`
	Rows           []JSONModuleRunRow `json:"rows"`
	GeomeanSpeedup float64            `json:"geomean_speedup"`
}

// jsonSchema is bumped whenever the report layout changes, so trajectory
// tooling can detect incompatible snapshots. v2 added "latencies"; v3
// added the "prepare" latency stage and "run_comparison"; v4 added the
// "load" replay block emitted by safetsaload; v5 made the run
// comparison three-way (compiled_nanos, compiled_speedup,
// geomean_compiled_speedup) and added overflow_count to every latency
// digest; v6 added the "warm_pool" cold-vs-warm session comparison and
// the load block's multi-tenant fields (tenants, throttled,
// guest_allocs); v7 added the "module_opt" interprocedural-tier block
// (per-pass instruction deltas, devirtualization/inlining/check-
// elimination counts, module-vs-intraprocedural run comparison); v8
// added the "wire" block (v1/v2/v2+dict unit sizes vs the bytecode
// baseline and the streaming time-to-first-instruction comparison).
const jsonSchema = "safetsa-bench-v8"

// Report assembles the machine-readable report from measured rows.
func Report(rows []Row) JSONReport {
	rep := JSONReport{Schema: jsonSchema}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, JSONRow{
			Name:      r.Name,
			Group:     r.Group,
			Generated: r.Generated,
			Measured: JSONCells{
				BytecodeSize:   r.BCSize,
				TSASize:        r.TSASize,
				TSAOptSize:     r.TSAOptSize,
				BytecodeInstrs: r.BCInstrs,
				TSAInstrs:      r.TSAInstrs,
				TSAOptInstrs:   r.TSAOptInstrs,
				PhiBefore:      r.PhiBefore,
				PhiAfter:       r.PhiAfter,
				NullBefore:     r.NullBefore,
				NullAfter:      r.NullAfter,
				ArrayBefore:    r.ArrayBefore,
				ArrayAfter:     r.ArrayAfter,
			},
			Paper: JSONCells{
				BytecodeSize:   r.Paper.BytecodeSize,
				TSASize:        r.Paper.TSASize,
				TSAOptSize:     r.Paper.TSAOptSize,
				BytecodeInstrs: r.Paper.BytecodeInstrs,
				TSAInstrs:      r.Paper.TSAInstrs,
				TSAOptInstrs:   r.Paper.TSAOptInstrs,
				PhiBefore:      r.Paper.PhiBefore,
				PhiAfter:       r.Paper.PhiAfter,
				NullBefore:     r.Paper.NullBefore,
				NullAfter:      r.Paper.NullAfter,
				ArrayBefore:    r.Paper.ArrayBefore,
				ArrayAfter:     r.Paper.ArrayAfter,
			},
		})
	}
	for _, c := range CheckClaims(rows) {
		rep.Claims = append(rep.Claims, JSONClaim{
			Claim: c.Claim, Paper: c.Paper, Measured: c.Measured, Holds: c.Holds,
		})
	}
	return rep
}

// FormatJSON renders the report as indented JSON.
func FormatJSON(rows []Row) ([]byte, error) {
	return json.MarshalIndent(Report(rows), "", "  ")
}

// FormatJSONTimed renders the report including the per-stage latency
// summaries of a timed measurement run and, when non-nil, the
// reference-vs-prepared run comparison, the warm-pool comparison, the
// interprocedural-tier comparison, and the wire-format comparison.
func FormatJSONTimed(rows []Row, tm *StageTimings, rc *RunComparison, wp *WarmPoolComparison, mo *ModuleOptComparison, wc *WireComparison) ([]byte, error) {
	rep := Report(rows)
	if tm != nil {
		rep.Latencies = tm.Summaries()
	}
	if wc != nil {
		jw := &JSONWire{
			BestOf:              wc.BestOf,
			DictBytes:           wc.DictBytes,
			GeomeanV2OverV1:     wc.GeomeanV2OverV1,
			GeomeanV2DictOverV1: wc.GeomeanV2DictOverV1,
			GeomeanV1OverBC:     wc.GeomeanV1OverBC,
			GeomeanTTFIOverFull: wc.GeomeanTTFIOverFull,
		}
		for _, r := range wc.Rows {
			jw.Rows = append(jw.Rows, JSONWireRow{
				Name:            r.Name,
				Funcs:           r.Funcs,
				BytecodeSize:    r.BCSize,
				V1Size:          r.V1Size,
				V2Size:          r.V2Size,
				V2DictSize:      r.V2DictSize,
				FullDecodeNanos: r.FullDecodeNanos,
				TTFINanos:       r.TTFINanos,
			})
		}
		rep.Wire = jw
	}
	if mo != nil {
		jm := &JSONModuleOpt{
			BestOf:         mo.BestOf,
			Devirtualized:  mo.Devirtualized,
			Inlined:        mo.Inlined,
			ChecksElided:   mo.ChecksElided,
			ExcEdgesPruned: mo.ExcEdgesPruned,
			GeomeanSpeedup: mo.GeomeanSpeedup,
		}
		for _, d := range mo.PassDeltas {
			jm.PassDeltas = append(jm.PassDeltas, JSONPassDelta{
				Pass: d.Pass, InstrsBefore: d.InstrsBefore, InstrsAfter: d.InstrsAfter,
			})
		}
		for _, r := range mo.Rows {
			jm.Rows = append(jm.Rows, JSONModuleRunRow{
				Name: r.Name, IntraNanos: r.IntraNanos, ModuleNanos: r.ModuleNanos, Speedup: r.Speedup,
			})
		}
		rep.ModuleOpt = jm
	}
	if wp != nil {
		jw := &JSONWarmPool{
			BestOf:                  wp.BestOf,
			GeomeanSpeedup:          wp.GeomeanSpeedup,
			GeomeanInitHeavySpeedup: wp.GeomeanInitHeavySpeedup,
		}
		for _, r := range wp.Rows {
			jw.Rows = append(jw.Rows, JSONWarmRow{
				Name:      r.Name,
				InitHeavy: r.InitHeavy,
				InitSteps: r.InitSteps,
				ColdNanos: r.ColdNanos,
				WarmNanos: r.WarmNanos,
				Speedup:   r.Speedup,
			})
		}
		rep.WarmPool = jw
	}
	if rc != nil {
		jc := &JSONRunComparison{
			BestOf:                 rc.BestOf,
			GeomeanSpeedup:         rc.GeomeanSpeedup,
			GeomeanCompiledSpeedup: rc.GeomeanCompiledSpeedup,
		}
		for _, r := range rc.Rows {
			jc.Rows = append(jc.Rows, JSONRunRow{
				Name:            r.Name,
				ReferenceNanos:  r.ReferenceNanos,
				PreparedNanos:   r.PreparedNanos,
				CompiledNanos:   r.CompiledNanos,
				Speedup:         r.Speedup,
				CompiledSpeedup: r.CompiledSpeedup,
			})
		}
		rep.RunComparison = jc
	}
	return json.MarshalIndent(rep, "", "  ")
}

// JSON converts a load replay into its report block.
func (r *LoadResult) JSON() *JSONLoad {
	j := &JSONLoad{
		Targets:        r.Targets,
		Workers:        r.Workers,
		Units:          r.Units,
		Tenants:        r.Tenants,
		RunFraction:    r.RunFraction,
		ZipfS:          r.ZipfS,
		ElapsedNanos:   int64(r.Elapsed),
		Requests:       r.Requests,
		Compiles:       r.Compiles,
		CachedCompiles: r.CachedCompiles,
		Runs:           r.Runs,
		Throttled:      r.Throttled,
		Errors:         r.Errors,
		GuestSteps:     r.GuestSteps,
		GuestAllocs:    r.GuestAllocs,
		ErrorSamples:   r.ErrorSamples,
		Latencies: map[string]obs.LatencySummary{
			"compile": r.CompileHist.Summary(),
			"run":     r.RunHist.Summary(),
		},
	}
	if len(r.TenantRunHists) > 0 {
		j.TenantLatencies = make(map[string]obs.LatencySummary, len(r.TenantRunHists))
		for i, h := range r.TenantRunHists {
			j.TenantLatencies[fmt.Sprintf("tenant-%d", i)] = h.Summary()
		}
	}
	return j
}

// FormatJSONLoad renders a load replay as a trajectory snapshot: a
// schema-stamped report whose only payload is the load block.
func FormatJSONLoad(r *LoadResult) ([]byte, error) {
	rep := JSONReport{Schema: jsonSchema, Rows: []JSONRow{}, Claims: []JSONClaim{}, Load: r.JSON()}
	return json.MarshalIndent(rep, "", "  ")
}
