package core

import (
	"errors"
	"fmt"
)

// VerifyOptions tunes verification.
type VerifyOptions struct {
	// AllowMem permits the optimizer-internal memory-state values
	// (OpMem0 and mem-typed phis); the wire format never carries them.
	AllowMem bool
}

// Verify checks the module's structural invariants: well-formed symbol
// tables and, for every function, type separation (each operand lives on
// exactly the plane its opcode implies), referential integrity (every
// operand's definition structurally dominates its use), phi/edge
// consistency, and safe-index binding. This is the consumer-side
// verification of the paper reduced to its essence — everything else is
// inexpressible in the encoding.
func (m *Module) Verify(opts VerifyOptions) error {
	var errs []error
	errs = append(errs, m.verifyTables(true)...)
	for _, f := range m.Funcs {
		if err := m.verifyFunc(f, opts); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", f.Name, err))
		}
	}
	return errors.Join(errs...)
}

// VerifyFunc runs the per-function checks of Verify on a single
// function: type separation, referential integrity, phi/edge
// consistency, and safe-index binding. The streaming wire decoder
// admits each function with this the moment it arrives, before the
// rest of the unit exists.
func (m *Module) VerifyFunc(f *Func, opts VerifyOptions) error {
	return m.verifyFunc(f, opts)
}

// VerifyTables runs only the symbol-table consistency checks — the
// paper's residual "trivial counter comparisons". The wire decoder runs
// this as its final admission step so that DecodeModule can never hand
// out a module with inconsistent linking metadata; the full Verify
// additionally checks every function body.
func (m *Module) VerifyTables() error {
	return errors.Join(m.verifyTables(true)...)
}

// VerifyTablesStatic runs the symbol-table checks that do not inspect
// the function list — the half of VerifyTables a streaming consumer can
// discharge before any function body has arrived. The function-linked
// residue (method-body backlinks, static-initializer signatures) is
// enforced incrementally per arriving function and re-checked in full
// by the final VerifyTables before a streamed unit may be cached.
func (m *Module) VerifyTablesStatic() error {
	return errors.Join(m.verifyTables(false)...)
}

// verifyTables checks the linking consistency of the symbol tables: field
// slots within their class's storage, dispatch tables that agree with the
// superclass layout, and method/function cross references. These are the
// "safe linking" conditions of section 4 — the parts of the type table
// that come from the mobile program must be internally consistent before
// any instruction is trusted. withFuncs gates the checks that look into
// m.Funcs, which is still filling during a streaming decode.
func (m *Module) verifyTables(withFuncs bool) []error {
	var errs []error
	bad := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	defByType := make(map[TypeID]*ClassDef)
	for i, cd := range m.Classes {
		t := m.Types.Get(cd.Type)
		if t == nil || t.Kind != TClass {
			bad("class def %d: not a class type", i)
			continue
		}
		if t.Imported {
			bad("class def %d redefines imported class %s", i, t.Name)
			continue
		}
		if defByType[cd.Type] != nil {
			bad("class %s defined twice", t.Name)
			continue
		}
		defByType[cd.Type] = cd
		if cd.Super != t.Super {
			bad("class %s: definition and type table disagree on the superclass", t.Name)
		}
	}

	// NumSlots of an arbitrary (possibly imported) class type.
	slotsOf := func(t TypeID) (int32, bool) {
		if cd := defByType[t]; cd != nil {
			return cd.NumSlots, true
		}
		tt := m.Types.Get(t)
		if tt == nil || !tt.Imported || tt.Kind != TClass {
			return 0, false
		}
		if m.Types.IsSubclass(t, m.Types.Throwable) {
			return 1, true
		}
		return 0, true
	}
	vtableOf := func(t TypeID) []int32 {
		if cd := defByType[t]; cd != nil {
			return cd.VTable
		}
		return nil
	}

	for _, cd := range m.Classes {
		t := m.Types.Get(cd.Type)
		if t == nil || defByType[cd.Type] != cd {
			continue
		}
		superSlots, ok := slotsOf(cd.Super)
		if !ok {
			bad("class %s: invalid superclass", t.Name)
			continue
		}
		if cd.NumSlots < superSlots {
			bad("class %s: fewer instance slots than its superclass", t.Name)
		}
		superVT := vtableOf(cd.Super)
		if len(cd.VTable) < len(superVT) {
			bad("class %s: dispatch table shorter than its superclass's", t.Name)
			continue
		}
		for j, mi := range cd.VTable {
			if int(mi) < 0 || int(mi) >= len(m.Methods) {
				bad("class %s: dispatch slot %d out of method table", t.Name, j)
				continue
			}
			tm := &m.Methods[mi]
			if tm.Static || tm.IsCtor || tm.VSlot != int32(j) {
				bad("class %s: dispatch slot %d holds an incompatible method", t.Name, j)
				continue
			}
			if !m.Types.IsSubclass(cd.Type, tm.Owner) {
				bad("class %s: dispatch slot %d owned by a non-superclass", t.Name, j)
			}
			if j < len(superVT) {
				sm := &m.Methods[superVT[j]]
				if !sameMethodShape(sm, tm) {
					bad("class %s: dispatch slot %d changes the inherited signature", t.Name, j)
				}
			}
		}
	}

	for i, fr := range m.Fields {
		if m.Types.Get(fr.Type) == nil {
			bad("field %d (%s): bad type reference", i, fr.Name)
			continue
		}
		cd := defByType[fr.Owner]
		if cd == nil {
			bad("field %d (%s): owner is not a class of this unit", i, fr.Name)
			continue
		}
		if fr.Slot < 0 {
			bad("field %d (%s): negative slot", i, fr.Name)
			continue
		}
		if fr.Static && fr.Slot >= cd.NumStatics {
			bad("field %d (%s): static slot outside the owner's storage", i, fr.Name)
		}
		if !fr.Static && fr.Slot >= cd.NumSlots {
			bad("field %d (%s): instance slot outside the owner's storage", i, fr.Name)
		}
	}

	for i, mr := range m.Methods {
		if m.Types.Get(mr.Owner) == nil {
			bad("method %d (%s): bad owner", i, mr.Name)
			continue
		}
		if mr.Result != NoType && m.Types.Get(mr.Result) == nil {
			bad("method %d (%s): bad result type", i, mr.Name)
		}
		for _, p := range mr.Params {
			if m.Types.Get(p) == nil {
				bad("method %d (%s): bad parameter type", i, mr.Name)
			}
		}
		switch {
		case mr.FuncIdx >= 0:
			if !withFuncs {
				break
			}
			if int(mr.FuncIdx) >= len(m.Funcs) {
				bad("method %d (%s): body index out of range", i, mr.Name)
			} else if m.Funcs[mr.FuncIdx].Method != int32(i) {
				bad("method %d (%s): body belongs to another method", i, mr.Name)
			}
		case mr.IsCtor:
			// Imported constructors: the no-arg Object/Throwable forms
			// and the Throwable(String) form.
			ot := m.Types.Get(mr.Owner)
			if ot == nil || !ot.Imported {
				bad("method %d (%s): constructor of a unit class without a body", i, mr.Name)
			} else if len(mr.Params) > 1 ||
				(len(mr.Params) == 1 &&
					(mr.Params[0] != m.Types.String || !m.Types.IsSubclass(mr.Owner, m.Types.Throwable))) {
				bad("method %d (%s): no such imported constructor", i, mr.Name)
			}
		case mr.Builtin == 0:
			bad("method %d (%s): no body and no host implementation", i, mr.Name)
		}
	}

	if m.Entry >= 0 {
		if int(m.Entry) >= len(m.Methods) {
			bad("entry method out of range")
		} else if !m.Methods[m.Entry].Static {
			bad("entry method is not static")
		}
	}
	for i, si := range m.StaticInit {
		if si < 0 || !withFuncs {
			continue
		}
		if int(si) >= len(m.Funcs) {
			bad("static initializer %d out of range", i)
		} else if f := m.Funcs[si]; f.Method >= 0 || len(f.Params) != 0 {
			bad("static initializer %d has a signature", i)
		}
	}
	return errs
}

func sameMethodShape(a, b *MethodRef) bool {
	if a.Result != b.Result || len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return false
		}
	}
	return true
}

// pos orders instructions within a block: phis all share position 0 (they
// execute in parallel on block entry), code starts at 1.
func blockPositions(f *Func) map[*Instr]int {
	pos := make(map[*Instr]int)
	for _, b := range f.Blocks {
		for _, in := range b.Phis {
			pos[in] = 0
		}
		for i, in := range b.Code {
			pos[in] = i + 1
		}
	}
	return pos
}

func (m *Module) verifyFunc(f *Func, opts VerifyOptions) error {
	tt := m.Types
	pos := blockPositions(f)

	// available reports whether value v may be used by instruction user
	// (at position userPos in block userBlk). A definition that has been
	// unlinked from the instruction stream (a stale values-table entry —
	// the signature of a broken optimization pass) is as unavailable as
	// one that never existed.
	available := func(v ValueID, userBlk *Block, userPos int) error {
		def := f.Value(v)
		if def == nil {
			return fmt.Errorf("use of undefined value v%d", v)
		}
		defPos, present := pos[def]
		if !present {
			return fmt.Errorf("v%d was removed from the instruction stream but is still used", v)
		}
		if def.Blk == userBlk {
			if defPos >= userPos {
				return fmt.Errorf("v%d used before its definition in block %d", v, userBlk.Index)
			}
			return nil
		}
		if !def.Blk.Dominates(userBlk) {
			return fmt.Errorf("v%d (block %d) does not dominate use in block %d",
				v, def.Blk.Index, userBlk.Index)
		}
		return nil
	}

	// availableOnEdge checks a phi operand: it must be defined at the
	// edge's source point (end of block for normal edges, before the
	// throwing site for exception edges).
	availableOnEdge := func(v ValueID, e Pred) error {
		def := f.Value(v)
		if def == nil {
			return fmt.Errorf("phi uses undefined value v%d", v)
		}
		defPos, present := pos[def]
		if !present {
			return fmt.Errorf("phi operand v%d was removed from the instruction stream but is still used", v)
		}
		if def.Blk == e.From {
			if e.Site != nil && defPos >= pos[e.Site] {
				return fmt.Errorf("phi operand v%d defined after exception site in block %d",
					v, e.From.Index)
			}
			return nil
		}
		if !def.Blk.Dominates(e.From) {
			return fmt.Errorf("phi operand v%d (block %d) does not dominate edge source %d",
				v, def.Blk.Index, e.From.Index)
		}
		return nil
	}

	planeOf := func(v ValueID) (PlaneKey, error) {
		def := f.Value(v)
		if def == nil {
			return PlaneKey{}, fmt.Errorf("undefined value v%d", v)
		}
		return def.Plane(), nil
	}

	wantPlane := func(v ValueID, want PlaneKey, what string) error {
		got, err := planeOf(v)
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("%s: operand v%d on plane %s, want %s",
				what, v, describePlane(tt, got), describePlane(tt, want))
		}
		return nil
	}

	var errs []error
	report := func(b *Block, in *Instr, err error) {
		if err != nil {
			errs = append(errs, fmt.Errorf("block %d %s: %w", b.Index, in.Op, err))
		}
	}

	for _, b := range f.Blocks {
		if len(b.Phis) > 0 && len(b.Preds) < 1 {
			errs = append(errs, fmt.Errorf("block %d has phis but no predecessors", b.Index))
		}
		for _, in := range b.Phis {
			if in.Op != OpPhi {
				errs = append(errs, fmt.Errorf("block %d: non-phi in phi section", b.Index))
				continue
			}
			if len(in.Args) != len(b.Preds) {
				report(b, in, fmt.Errorf("arity %d != %d predecessors", len(in.Args), len(b.Preds)))
				continue
			}
			if in.Type == tt.Mem {
				if !opts.AllowMem {
					report(b, in, fmt.Errorf("memory-state phi outside optimization"))
				}
				continue
			}
			want := in.Plane()
			for k, a := range in.Args {
				if err := availableOnEdge(a, b.Preds[k]); err != nil {
					report(b, in, err)
					continue
				}
				if err := wantPlane(a, want, fmt.Sprintf("operand %d", k)); err != nil {
					report(b, in, err)
				}
			}
			// Safe-index phis stay on one plane only if the binding
			// array value dominates the block (Appendix A).
			if in.Bind != NoValue {
				if err := available(in.Bind, b, 0); err != nil {
					report(b, in, fmt.Errorf("safe-index binding: %w", err))
				}
			}
		}
		for i, in := range b.Code {
			userPos := i + 1
			for _, a := range in.Args {
				if a == NoValue {
					report(b, in, fmt.Errorf("missing operand"))
					continue
				}
				if err := available(a, b, userPos); err != nil {
					report(b, in, err)
				}
			}
			if err := m.verifyInstrTyping(f, in, wantPlane, opts); err != nil {
				report(b, in, err)
			}
		}
	}

	// CST-referenced values must be available at their reference block.
	var walkCST func(n *CSTNode)
	walkCST = func(n *CSTNode) {
		if n == nil {
			return
		}
		check := func(v ValueID, want TypeID, what string) {
			if v == NoValue {
				return
			}
			if n.At == nil {
				errs = append(errs, fmt.Errorf("%s node without reference block", n.Kind))
				return
			}
			if err := available(v, n.At, len(n.At.Code)+1); err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", what, err))
				return
			}
			if want != NoType {
				if err := wantPlane(v, PlaneKey{Type: want}, what); err != nil {
					errs = append(errs, err)
				}
			}
		}
		switch n.Kind {
		case CIf, CWhile, CDoWhile:
			check(n.Cond, tt.Boolean, "condition")
		case CReturn:
			if n.Val != NoValue && (f.Result == NoType || f.Result == tt.Void) {
				errs = append(errs, fmt.Errorf("value returned from a void function"))
				break
			}
			check(n.Val, f.Result, "return value")
		case CThrow:
			// The builder normalizes thrown values onto the Throwable
			// ref plane.
			check(n.Val, tt.Throwable, "thrown value")
		}
		for _, k := range n.Kids {
			walkCST(k)
		}
	}
	walkCST(f.Body)

	return errors.Join(errs...)
}

func describePlane(tt *TypeTable, k PlaneKey) string {
	s := tt.Describe(k.Type)
	if k.Bind != NoValue {
		s += fmt.Sprintf("@v%d", k.Bind)
	}
	return s
}

// verifyInstrTyping checks type separation for one non-phi instruction.
func (m *Module) verifyInstrTyping(f *Func, in *Instr,
	wantPlane func(ValueID, PlaneKey, string) error, opts VerifyOptions) error {
	tt := m.Types
	plain := func(t TypeID) PlaneKey { return PlaneKey{Type: t} }
	nargs := func(n int) error {
		if len(in.Args) != n {
			return fmt.Errorf("want %d operands, have %d", n, len(in.Args))
		}
		return nil
	}
	result := func(want TypeID) error {
		if in.Type != want {
			return fmt.Errorf("result plane %s, want %s", tt.Describe(in.Type), tt.Describe(want))
		}
		return nil
	}

	switch in.Op {
	case OpParam:
		if int(in.Aux) < 0 || int(in.Aux) >= len(f.Params) {
			return fmt.Errorf("parameter index %d out of range", in.Aux)
		}
		return result(f.Params[in.Aux])
	case OpConst:
		switch in.Const.Kind {
		case KInt:
			return result(tt.Int)
		case KLong:
			return result(tt.Long)
		case KDouble:
			return result(tt.Double)
		case KBool:
			return result(tt.Boolean)
		case KChar:
			return result(tt.Char)
		case KString:
			return result(tt.String)
		case KNull:
			if !tt.IsRefType(in.Type) {
				return fmt.Errorf("null constant on non-reference plane %s", tt.Describe(in.Type))
			}
			return nil
		}
		return fmt.Errorf("constant without kind")
	case OpPrim, OpXPrim:
		if !in.Prim.Valid() {
			return fmt.Errorf("unknown primitive")
		}
		sig := in.Prim.Sig()
		if sig.Throws != (in.Op == OpXPrim) {
			return fmt.Errorf("%s must use %s", sig.Name, map[bool]Op{true: OpXPrim, false: OpPrim}[sig.Throws])
		}
		if err := nargs(len(sig.Params)); err != nil {
			return err
		}
		for i, pc := range sig.Params {
			if err := wantPlane(in.Args[i], plain(PlaneType(tt, pc)), fmt.Sprintf("operand %d", i)); err != nil {
				return err
			}
		}
		return result(PlaneType(tt, sig.Result))
	case OpNullCheck:
		if err := nargs(1); err != nil {
			return err
		}
		if !tt.IsRefType(in.ArgType) {
			return fmt.Errorf("nullcheck of non-reference type %s", tt.Describe(in.ArgType))
		}
		if err := wantPlane(in.Args[0], plain(in.ArgType), "operand"); err != nil {
			return err
		}
		return result(tt.SafeRefOf(in.ArgType))
	case OpIndexCheck:
		if err := nargs(2); err != nil {
			return err
		}
		at := tt.Get(in.TypeArg)
		if at == nil || at.Kind != TArray {
			return fmt.Errorf("indexcheck of non-array type")
		}
		if err := wantPlane(in.Args[0], plain(tt.SafeRefOf(in.TypeArg)), "array"); err != nil {
			return err
		}
		if err := wantPlane(in.Args[1], plain(tt.Int), "index"); err != nil {
			return err
		}
		if in.Bind != in.Args[0] {
			return fmt.Errorf("safe-index result must bind to the checked array value")
		}
		return result(tt.SafeIndexOf(in.TypeArg))
	case OpUpcast:
		if err := nargs(1); err != nil {
			return err
		}
		if !tt.IsRefType(in.ArgType) || !tt.IsRefType(in.TypeArg) {
			return fmt.Errorf("upcast between non-reference types")
		}
		if err := wantPlane(in.Args[0], plain(in.ArgType), "operand"); err != nil {
			return err
		}
		return result(in.TypeArg)
	case OpDowncast:
		if err := nargs(1); err != nil {
			return err
		}
		src, dst := in.ArgType, in.TypeArg
		if err := wantPlane(in.Args[0], plain(src), "operand"); err != nil {
			return err
		}
		srcT, dstT := tt.Get(src), tt.Get(dst)
		if srcT == nil || dstT == nil {
			return fmt.Errorf("downcast with invalid types")
		}
		if dstT.Kind == TSafeRef && srcT.Kind != TSafeRef {
			return fmt.Errorf("downcast cannot add safety (%s to %s)",
				tt.Describe(src), tt.Describe(dst))
		}
		if !tt.IsSubclass(tt.BaseRef(src), tt.BaseRef(dst)) {
			return fmt.Errorf("downcast %s to %s is not statically safe",
				tt.Describe(src), tt.Describe(dst))
		}
		return result(dst)
	case OpGetField, OpSetField:
		if int(in.Field) < 0 || int(in.Field) >= len(m.Fields) {
			return fmt.Errorf("field index %d out of range", in.Field)
		}
		fr := m.Fields[in.Field]
		want := 1
		if fr.Static {
			want = 0
		}
		if in.Op == OpSetField {
			want++
		}
		if err := nargs(want); err != nil {
			return err
		}
		argi := 0
		if !fr.Static {
			if err := wantPlane(in.Args[0], plain(tt.SafeRefOf(fr.Owner)), "object"); err != nil {
				return err
			}
			argi = 1
		}
		if in.Op == OpSetField {
			if err := wantPlane(in.Args[argi], plain(fr.Type), "value"); err != nil {
				return err
			}
			return result(tt.Void)
		}
		return result(fr.Type)
	case OpGetElt, OpSetElt:
		at := tt.Get(in.TypeArg)
		if at == nil || at.Kind != TArray {
			return fmt.Errorf("element access on non-array type")
		}
		want := 2
		if in.Op == OpSetElt {
			want = 3
		}
		if err := nargs(want); err != nil {
			return err
		}
		if err := wantPlane(in.Args[0], plain(tt.SafeRefOf(in.TypeArg)), "array"); err != nil {
			return err
		}
		// The index must come from the safe-index plane bound to this
		// very array value — Appendix A's per-value binding.
		idxPlane := PlaneKey{Type: tt.SafeIndexOf(in.TypeArg), Bind: in.Args[0]}
		if err := wantPlane(in.Args[1], idxPlane, "index"); err != nil {
			return err
		}
		if in.Op == OpSetElt {
			if err := wantPlane(in.Args[2], plain(at.Elem), "value"); err != nil {
				return err
			}
			return result(tt.Void)
		}
		return result(at.Elem)
	case OpArrayLen:
		if err := nargs(1); err != nil {
			return err
		}
		at := tt.Get(in.TypeArg)
		if at == nil || at.Kind != TArray {
			return fmt.Errorf("arraylen of non-array type")
		}
		if err := wantPlane(in.Args[0], plain(tt.SafeRefOf(in.TypeArg)), "array"); err != nil {
			return err
		}
		return result(tt.Int)
	case OpXCall, OpXDispatch:
		if int(in.Method) < 0 || int(in.Method) >= len(m.Methods) {
			return fmt.Errorf("method index %d out of range", in.Method)
		}
		mr := m.Methods[in.Method]
		if in.Op == OpXDispatch && mr.VSlot < 0 {
			return fmt.Errorf("xdispatch of non-virtual method %s", mr.Sig(tt))
		}
		want := len(mr.Params)
		argi := 0
		if !mr.Static {
			want++
			argi = 1
		}
		if err := nargs(want); err != nil {
			return err
		}
		if !mr.Static {
			if err := wantPlane(in.Args[0], plain(tt.SafeRefOf(mr.Owner)), "receiver"); err != nil {
				return err
			}
		}
		for i, pt := range mr.Params {
			if err := wantPlane(in.Args[argi+i], plain(pt), fmt.Sprintf("argument %d", i)); err != nil {
				return err
			}
		}
		if mr.Result == NoType || mr.Result == tt.Void {
			return result(tt.Void)
		}
		return result(mr.Result)
	case OpNew:
		if err := nargs(0); err != nil {
			return err
		}
		ct := tt.Get(in.TypeArg)
		if ct == nil || ct.Kind != TClass {
			return fmt.Errorf("new of non-class type")
		}
		return result(tt.SafeRefOf(in.TypeArg))
	case OpNewArray:
		if err := nargs(1); err != nil {
			return err
		}
		at := tt.Get(in.TypeArg)
		if at == nil || at.Kind != TArray {
			return fmt.Errorf("newarray of non-array type")
		}
		if err := wantPlane(in.Args[0], plain(tt.Int), "length"); err != nil {
			return err
		}
		return result(tt.SafeRefOf(in.TypeArg))
	case OpInstanceOf:
		if err := nargs(1); err != nil {
			return err
		}
		if !tt.IsRefType(in.ArgType) || !tt.IsRefType(in.TypeArg) {
			return fmt.Errorf("instanceof between non-reference types")
		}
		if err := wantPlane(in.Args[0], plain(in.ArgType), "operand"); err != nil {
			return err
		}
		return result(tt.Boolean)
	case OpCatch:
		if err := nargs(0); err != nil {
			return err
		}
		return result(tt.Throwable)
	case OpMem0:
		if !opts.AllowMem {
			return fmt.Errorf("memory-state value outside optimization")
		}
		return result(tt.Mem)
	case OpPhi:
		return fmt.Errorf("phi outside the phi section")
	}
	return fmt.Errorf("unknown opcode %d", in.Op)
}
