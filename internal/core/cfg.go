package core

import (
	"fmt"

	"safetsa/internal/dom"
)

// CheckStructuralDominators validates that the structural dominator tree
// built from the CST is sound with respect to the actual flow graph: the
// structural immediate dominator of every block must be a true dominator
// (computed independently with the iterative algorithm over the recorded
// predecessor edges, exception edges included). Since dominance is
// transitive, this implies every structural ancestor truly dominates, and
// therefore every (l, r) wire reference is referentially secure.
func CheckStructuralDominators(f *Func) error {
	n := len(f.Blocks)
	idx := make(map[*Block]int, n)
	for i, b := range f.Blocks {
		idx[b] = i
	}
	preds := func(v int) []int {
		b := f.Blocks[v]
		out := make([]int, 0, len(b.Preds))
		for _, p := range b.Preds {
			out = append(out, idx[p.From])
		}
		return out
	}
	entry := idx[f.Entry]
	idom := dom.Compute(n, entry, preds)
	// in/out numbering of the true dominator tree.
	children := make([][]int, n)
	for i := range f.Blocks {
		if i == entry {
			continue
		}
		if idom[i] < 0 {
			return fmt.Errorf("%s: block %d unreachable", f.Name, i)
		}
		children[idom[i]] = append(children[idom[i]], i)
	}
	in := make([]int, n)
	out := make([]int, n)
	c := 0
	var walk func(v int)
	walk = func(v int) {
		in[v] = c
		c++
		for _, k := range children[v] {
			walk(k)
		}
		out[v] = c
		c++
	}
	walk(entry)
	trueDom := func(a, b int) bool { return in[a] <= in[b] && out[b] <= out[a] }
	for i, b := range f.Blocks {
		if b == f.Entry {
			continue
		}
		d := idx[b.IDom]
		if !trueDom(d, i) {
			return fmt.Errorf("%s: structural idom %d of block %d is not a true dominator",
				f.Name, d, i)
		}
	}
	return nil
}

// DefBlock returns the block defining value id.
func (f *Func) DefBlock(id ValueID) *Block {
	in := f.Value(id)
	if in == nil {
		return nil
	}
	return in.Blk
}

// PlaneKey identifies a register plane: a type, plus — for safe-index
// planes — the array value the plane is bound to.
type PlaneKey struct {
	Type TypeID
	Bind ValueID
}

// Plane returns the plane key of an instruction's result.
func (in *Instr) Plane() PlaneKey { return PlaneKey{Type: in.Type, Bind: in.Bind} }

// PlaneIndex computes, for every value-producing instruction, its
// register number on its plane within its defining block (registers are
// filled in ascending order, per section 3). The result maps value IDs
// to their per-block per-plane index.
func (f *Func) PlaneIndex() map[ValueID]int {
	out := make(map[ValueID]int, f.NumValues())
	for _, b := range f.Blocks {
		counts := make(map[PlaneKey]int)
		b.Instrs(func(in *Instr) {
			if !in.HasResult() {
				return
			}
			k := in.Plane()
			out[in.ID] = counts[k]
			counts[k]++
		})
	}
	return out
}

// LRRef is the paper's (l, r) value reference: l dominator-tree levels up
// from the referencing block, register r on the implied plane of that
// block.
type LRRef struct {
	L int
	R int
}

// EncodeRef computes the (l, r) pair for using value id from block from;
// planeIdx must come from PlaneIndex. It panics if the definition does
// not dominate the use block — i.e. on referentially insecure IR — so
// the encoder can never externalize an unsafe program.
func (f *Func) EncodeRef(from *Block, id ValueID, planeIdx map[ValueID]int) LRRef {
	def := f.DefBlock(id)
	if def == nil {
		panic(fmt.Sprintf("core: reference to undefined value v%d in %s", id, f.Name))
	}
	l := 0
	for b := from; b != def; b = b.IDom {
		if b == nil {
			panic(fmt.Sprintf("core: value v%d (block %d) does not dominate block %d in %s",
				id, def.Index, from.Index, f.Name))
		}
		l++
	}
	return LRRef{L: l, R: planeIdx[id]}
}
