package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeTableImplicitPrefix(t *testing.T) {
	a := NewTypeTable()
	b := NewTypeTable()
	if len(a.ByID) != len(b.ByID) || a.ImplicitLen != b.ImplicitLen {
		t.Fatal("implicit prefix is not deterministic")
	}
	for i := 1; i < a.ImplicitLen; i++ {
		if a.ByID[i].Kind != b.ByID[i].Kind || a.ByID[i].Name != b.ByID[i].Name {
			t.Fatalf("entry %d differs", i)
		}
		if !a.ByID[i].Imported {
			t.Fatalf("implicit entry %d not marked imported", i)
		}
	}
	// Every imported reference type already has its safe-ref shadow.
	for _, id := range []TypeID{a.Object, a.String, a.Throwable, a.NPE} {
		s := a.SafeRefOf(id)
		if a.MustGet(s).Kind != TSafeRef || a.MustGet(s).Base != id {
			t.Errorf("bad safe-ref shadow for %s", a.Describe(id))
		}
	}
}

func TestTypeTableUserTypes(t *testing.T) {
	tt := NewTypeTable()
	c := tt.AddClass("Point", tt.Object)
	if tt.Class("Point") != c || tt.AddClass("Point", tt.Object) != c {
		t.Error("class interning broken")
	}
	arr := tt.ArrayOf(tt.Int)
	if tt.ArrayOf(tt.Int) != arr {
		t.Error("array interning broken")
	}
	if tt.MustGet(tt.SafeIndexOf(arr)).Base != arr {
		t.Error("safe-index shadow wrong")
	}
	aa := tt.ArrayOf(arr)
	if tt.MustGet(aa).Elem != arr {
		t.Error("nested array elem wrong")
	}
	if tt.Describe(tt.SafeRefOf(arr)) != "safe-int[]" {
		t.Errorf("describe: %q", tt.Describe(tt.SafeRefOf(arr)))
	}
	if tt.Describe(tt.SafeIndexOf(arr)) != "safe-index-int[]" {
		t.Errorf("describe: %q", tt.Describe(tt.SafeIndexOf(arr)))
	}
	if !tt.IsSubclass(c, tt.Object) || tt.IsSubclass(tt.Object, c) {
		t.Error("subclass relation wrong")
	}
	if !tt.IsSubclass(arr, tt.Object) {
		t.Error("arrays must be subtypes of Object")
	}
	if tt.IsSubclass(arr, aa) {
		t.Error("unrelated arrays conflated")
	}
	if tt.BaseRef(tt.SafeRefOf(c)) != c || tt.BaseRef(c) != c {
		t.Error("BaseRef wrong")
	}
	if tt.Get(0) != nil || tt.Get(TypeID(len(tt.ByID))) != nil {
		t.Error("out-of-range Get must return nil")
	}
}

func TestPrimSignaturesComplete(t *testing.T) {
	count := 0
	for p := PrimOp(1); int(p) < NumPrimOps; p++ {
		if !p.Valid() {
			t.Errorf("primitive %d has no signature", p)
			continue
		}
		count++
		sig := p.Sig()
		if sig.Name == "" || len(sig.Params) == 0 || sig.Result == PlNone {
			t.Errorf("%s: incomplete signature", sig.Name)
		}
		if !strings.Contains(sig.Name, ".") {
			t.Errorf("%s: primitives are subordinate to types and must be type-qualified", sig.Name)
		}
	}
	if count != NumPrimOps-1 {
		t.Errorf("%d signatures for %d ops", count, NumPrimOps-1)
	}
	// Only integer division and remainder may throw.
	throwing := map[PrimOp]bool{PIDiv: true, PIRem: true, PLDiv: true, PLRem: true}
	for p := PrimOp(1); int(p) < NumPrimOps; p++ {
		if p.Sig().Throws != throwing[p] {
			t.Errorf("%s: wrong Throws classification", p)
		}
	}
}

func TestOpcodeClassification(t *testing.T) {
	for _, op := range []Op{OpXPrim, OpNullCheck, OpIndexCheck, OpUpcast, OpNewArray, OpXCall, OpXDispatch} {
		if !op.CanThrow() {
			t.Errorf("%s must be a potential exception point", op)
		}
	}
	for _, op := range []Op{OpPrim, OpPhi, OpConst, OpParam, OpDowncast, OpGetField, OpGetElt, OpArrayLen} {
		if op.CanThrow() {
			t.Errorf("%s must not throw", op)
		}
	}
	for _, op := range []Op{OpSetField, OpSetElt, OpXCall, OpXDispatch, OpXPrim} {
		if !op.HasSideEffect() {
			t.Errorf("%s must be a DCE root", op)
		}
	}
	for _, op := range []Op{OpPrim, OpGetField, OpGetElt, OpArrayLen, OpDowncast, OpInstanceOf} {
		if op.HasSideEffect() {
			t.Errorf("%s must be removable when unused", op)
		}
	}
}

func TestConstValEq(t *testing.T) {
	prop := func(a, b int64) bool {
		x := ConstVal{Kind: KInt, I: a}
		y := ConstVal{Kind: KInt, I: b}
		return x.Eq(y) == (a == b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	if (ConstVal{Kind: KInt, I: 1}).Eq(ConstVal{Kind: KLong, I: 1}) {
		t.Error("kinds must separate")
	}
	if !(ConstVal{Kind: KString, S: "x"}).Eq(ConstVal{Kind: KString, S: "x"}) {
		t.Error("string equality")
	}
	if (ConstVal{Kind: KDouble, D: 1}).Eq(ConstVal{Kind: KDouble, D: 2}) {
		t.Error("double inequality")
	}
	if (ConstVal{Kind: KNull}).String() != "null" {
		t.Error("null renders wrong")
	}
}

// buildTinyFunc assembles a two-block function by hand:
//
//	entry: c0 = const 1; c1 = const 2; s = add c0 c1; cond = lt ...
//	if cond { b1: add s s } ; b2(join)
func buildTinyFunc(tt *TypeTable) *Func {
	f := NewFunc("tiny")
	f.Result = tt.Void
	entry := f.NewBlock()
	f.Entry = entry

	mk := func(b *Block, op Op, typ TypeID, prim PrimOp, args ...ValueID) *Instr {
		in := &Instr{Op: op, Type: typ, Prim: prim, Args: args, Blk: b}
		f.Define(in)
		b.Code = append(b.Code, in)
		return in
	}
	c0 := mk(entry, OpConst, tt.Int, PInvalid)
	c0.Const = ConstVal{Kind: KInt, I: 1}
	c1 := mk(entry, OpConst, tt.Int, PInvalid)
	c1.Const = ConstVal{Kind: KInt, I: 2}
	sum := mk(entry, OpPrim, tt.Int, PIAdd, c0.ID, c1.ID)
	cond := mk(entry, OpPrim, tt.Boolean, PILt, c0.ID, sum.ID)

	b1 := f.NewBlock()
	b1.IDom = entry
	b1.Preds = []Pred{{From: entry}}
	mk(b1, OpPrim, tt.Int, PIAdd, sum.ID, sum.ID)

	b2 := f.NewBlock()
	b2.IDom = entry
	b2.Preds = []Pred{{From: b1}, {From: entry}}

	f.Body = &CSTNode{Kind: CSeq, Kids: []*CSTNode{
		{Kind: CBlock, Block: entry},
		{Kind: CIf, At: entry, Cond: cond.ID, Kids: []*CSTNode{
			{Kind: CSeq, Kids: []*CSTNode{{Kind: CBlock, Block: b1}}},
		}},
		{Kind: CBlock, Block: b2},
		{Kind: CReturn, At: b2},
	}}
	f.Finish()
	return f
}

func TestVerifyAcceptsHandBuilt(t *testing.T) {
	m := &Module{Types: NewTypeTable(), Entry: -1}
	m.Funcs = append(m.Funcs, buildTinyFunc(m.Types))
	if err := m.Verify(VerifyOptions{}); err != nil {
		t.Fatalf("hand-built module rejected: %v", err)
	}
}

func TestVerifyRejectsTypeConfusion(t *testing.T) {
	corruptions := []struct {
		name string
		hack func(m *Module, f *Func)
	}{
		{"operand from the wrong plane", func(m *Module, f *Func) {
			// int.add over a boolean value.
			f.Entry.Code[2].Args[1] = f.Entry.Code[3].ID // cond is boolean
		}},
		{"use before definition", func(m *Module, f *Func) {
			f.Entry.Code[2].Args[0] = f.Entry.Code[3].ID
			f.Entry.Code[3].Args[0] = f.Entry.Code[2].ID
		}},
		{"reference across a non-dominating block", func(m *Module, f *Func) {
			// The join block uses the value defined in the then-arm.
			b1 := f.Blocks[1]
			b2 := f.Blocks[2]
			in := &Instr{Op: OpPrim, Type: m.Types.Int, Prim: PINeg,
				Args: []ValueID{b1.Code[0].ID}, Blk: b2}
			f.Define(in)
			b2.Code = append(b2.Code, in)
		}},
		{"phi arity mismatch", func(m *Module, f *Func) {
			b2 := f.Blocks[2]
			phi := &Instr{Op: OpPhi, Type: m.Types.Int,
				Args: []ValueID{f.Entry.Code[0].ID}, Blk: b2}
			f.Define(phi)
			b2.Phis = append(b2.Phis, phi)
		}},
		{"xprimitive misuse", func(m *Module, f *Func) {
			f.Entry.Code[2].Prim = PIDiv // div must use OpXPrim
		}},
		{"downcast adds safety", func(m *Module, f *Func) {
			nc := &Instr{Op: OpConst, Type: m.Types.Object,
				Const: ConstVal{Kind: KNull}, Blk: f.Entry}
			f.Define(nc)
			bad := &Instr{Op: OpDowncast, Type: m.Types.SafeRefOf(m.Types.Object),
				ArgType: m.Types.Object, TypeArg: m.Types.SafeRefOf(m.Types.Object),
				Args: []ValueID{nc.ID}, Blk: f.Entry}
			f.Define(bad)
			f.Entry.Code = append(f.Entry.Code, nc, bad)
		}},
		{"null constant on a safe plane", func(m *Module, f *Func) {
			bad := &Instr{Op: OpConst, Type: m.Types.SafeRefOf(m.Types.Object),
				Const: ConstVal{Kind: KNull}, Blk: f.Entry}
			f.Define(bad)
			f.Entry.Code = append(f.Entry.Code, bad)
		}},
		{"return value from the wrong plane", func(m *Module, f *Func) {
			f.Body.Kids[3].Val = f.Entry.Code[0].ID // int where void expected
		}},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			m := &Module{Types: NewTypeTable(), Entry: -1}
			f := buildTinyFunc(m.Types)
			m.Funcs = append(m.Funcs, f)
			c.hack(m, f)
			if err := m.Verify(VerifyOptions{}); err == nil {
				t.Fatal("corrupted module passed verification")
			}
		})
	}
}

func TestEncodeRefPanicsOnInsecureReference(t *testing.T) {
	tt := NewTypeTable()
	f := buildTinyFunc(tt)
	planeIdx := f.PlaneIndex()
	b1 := f.Blocks[1]
	b2 := f.Blocks[2]
	// b1's value does not dominate b2 — encoding must refuse.
	defer func() {
		if recover() == nil {
			t.Fatal("EncodeRef produced an (l,r) pair for a non-dominating definition")
		}
	}()
	f.EncodeRef(b2, b1.Code[0].ID, planeIdx)
}

func TestDominatesAndPlaneIndex(t *testing.T) {
	tt := NewTypeTable()
	f := buildTinyFunc(tt)
	entry, b1, b2 := f.Blocks[0], f.Blocks[1], f.Blocks[2]
	if !entry.Dominates(b1) || !entry.Dominates(b2) || b1.Dominates(b2) || !b1.Dominates(b1) {
		t.Error("dominance relation wrong")
	}
	idx := f.PlaneIndex()
	// Entry's int plane: c0, c1, sum -> registers 0, 1, 2.
	if idx[f.Entry.Code[0].ID] != 0 || idx[f.Entry.Code[1].ID] != 1 || idx[f.Entry.Code[2].ID] != 2 {
		t.Error("int plane numbering wrong")
	}
	// The boolean lives on its own plane, register 0.
	if idx[f.Entry.Code[3].ID] != 0 {
		t.Error("type separation: boolean must start its own plane")
	}
	r := f.EncodeRef(b1, f.Entry.Code[2].ID, idx)
	if r.L != 1 || r.R != 2 {
		t.Errorf("ref from b1 to entry sum = (%d-%d), want (1-2)", r.L, r.R)
	}
}

func TestRemoveExcSite(t *testing.T) {
	tt := NewTypeTable()
	f := NewFunc("exc")
	entry := f.NewBlock()
	f.Entry = entry
	handler := f.NewBlock()
	handler.IDom = entry

	div := func() *Instr {
		c := &Instr{Op: OpConst, Type: tt.Int, Const: ConstVal{Kind: KInt, I: 1}, Blk: entry}
		f.Define(c)
		in := &Instr{Op: OpXPrim, Type: tt.Int, Prim: PIDiv, Args: []ValueID{c.ID, c.ID}, Blk: entry}
		f.Define(in)
		entry.Code = append(entry.Code, c, in)
		return in
	}
	d1, d2, d3 := div(), div(), div()
	for i, in := range []*Instr{d1, d2, d3} {
		handler.Preds = append(handler.Preds, Pred{From: entry, Site: in})
		f.ExcEdge[in] = i
		f.HandlerOf[in] = handler
	}
	phi := &Instr{Op: OpPhi, Type: tt.Int, Args: []ValueID{d1.Args[0], d2.Args[0], d3.Args[0]}, Blk: handler}
	f.Define(phi)
	handler.Phis = append(handler.Phis, phi)

	f.RemoveExcSite(d2)
	if len(handler.Preds) != 2 || len(phi.Args) != 2 {
		t.Fatalf("edge not removed: %d preds, %d phi args", len(handler.Preds), len(phi.Args))
	}
	if f.ExcEdge[d1] != 0 || f.ExcEdge[d3] != 1 {
		t.Errorf("edge indices not renumbered: %d %d", f.ExcEdge[d1], f.ExcEdge[d3])
	}
	if _, ok := f.ExcEdge[d2]; ok {
		t.Error("removed site still registered")
	}
}
