package core

import "fmt"

// BuiltinID mirrors the host environment's natively implemented methods;
// the numbering matches sema.BuiltinID so both ends of the wire resolve
// imported methods identically.
type BuiltinID int32

// FieldRef is one entry of the module field table ("symbolic reference to
// a data member" in the paper's getfield/setfield description).
type FieldRef struct {
	Owner  TypeID // class that declares the field
	Name   string
	Type   TypeID
	Static bool
	// Slot is the instance slot (including inherited) or the index in
	// the owner's static storage.
	Slot int32
}

// MethodRef is one entry of the module method table.
type MethodRef struct {
	Owner  TypeID
	Name   string
	Params []TypeID // not including the receiver
	Result TypeID   // Void for void methods and constructors
	Static bool
	IsCtor bool
	// VSlot is the dispatch-table slot for virtual methods, -1
	// otherwise.
	VSlot int32
	// Builtin is non-zero for imported, natively implemented methods.
	Builtin BuiltinID
	// FuncIdx indexes Module.Funcs for user methods; -1 for imported
	// methods and for the bodies of other classes in partial units.
	FuncIdx int32
}

// Sig renders the method signature for diagnostics.
func (m *MethodRef) Sig(tt *TypeTable) string {
	s := tt.Describe(m.Owner) + "." + m.Name + "("
	for i, p := range m.Params {
		if i > 0 {
			s += ","
		}
		s += tt.Describe(p)
	}
	return s + ")"
}

// ClassDef describes one user class of the distribution unit.
type ClassDef struct {
	Type  TypeID
	Super TypeID
	// Fields lists the field-table indices of the fields this class
	// declares (instance and static).
	Fields []int32
	// Methods lists the method-table indices of declared methods,
	// constructors included.
	Methods []int32
	// NumSlots is the instance slot count including inherited slots;
	// NumStatics the number of static slots declared here.
	NumSlots   int32
	NumStatics int32
	// VTable is the full dispatch table (method-table indices).
	VTable []int32
}

// Module is a SafeTSA distribution unit: the type table, symbol tables,
// and function bodies.
type Module struct {
	Types   *TypeTable
	Classes []*ClassDef
	Fields  []FieldRef
	Methods []MethodRef
	Funcs   []*Func
	// Entry is the method-table index of static main, or -1.
	Entry int32
	// StaticInit lists, per class in Classes order, the function index
	// of the synthetic static initializer (-1 if none).
	StaticInit []int32
}

// ClassByType finds the ClassDef for a class type.
func (m *Module) ClassByType(t TypeID) *ClassDef {
	for _, c := range m.Classes {
		if c.Type == t {
			return c
		}
	}
	return nil
}

// FuncOf returns the function body for a method-table index, or nil.
func (m *Module) FuncOf(method int32) *Func {
	if method < 0 || int(method) >= len(m.Methods) {
		return nil
	}
	fi := m.Methods[method].FuncIdx
	if fi < 0 || int(fi) >= len(m.Funcs) {
		return nil
	}
	return m.Funcs[fi]
}

// NumInstrs counts the instructions of every function in the module
// (phi instructions included) — the "Number of Instructions" column of
// Figure 5.
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// ---------------------------------------------------------------------
// Functions, blocks, and the Control Structure Tree.

// Pred is one incoming edge of a block. Normal edges come from the end
// of From; exception edges come from the potentially-throwing
// instruction Site inside From (the paper's implicit edges from each
// potential point of exception to the exception-handling phi node).
type Pred struct {
	From *Block
	Site *Instr // nil for normal control-flow edges
}

// Block is a basic block of SafeTSA instructions: phis first, then code.
type Block struct {
	// Index is the dominator-tree pre-order number assigned by
	// Func.Finish; blocks are created in that order by construction.
	Index int
	Phis  []*Instr
	Code  []*Instr
	Preds []Pred

	// Dominator-tree links, computed by Func.Finish.
	IDom     *Block
	Children []*Block
	Depth    int
	preIn    int
	preOut   int
}

// Instrs iterates phis then code.
func (b *Block) Instrs(f func(*Instr)) {
	for _, in := range b.Phis {
		f(in)
	}
	for _, in := range b.Code {
		f(in)
	}
}

// Dominates reports whether b dominates c (reflexively), using the
// pre/post numbering assigned by Func.Finish.
func (b *Block) Dominates(c *Block) bool {
	return b.preIn <= c.preIn && c.preOut <= b.preOut
}

// CSTKind identifies Control Structure Tree productions.
type CSTKind uint8

// The CST productions. The CST carries all control flow; basic blocks
// contain no terminators.
const (
	CSeq      CSTKind = iota // sequence of children
	CBlock                   // leaf: one basic block
	CIf                      // kids: [then, else]; Cond computed beforehand
	CWhile                   // Header block (phis+cond code), kids: [body]
	CDoWhile                 // kids: [body]; Latch block computes Cond
	CReturn                  // leaf; Val optional
	CBreak                   // leaf
	CContinue                // leaf
	CThrow                   // leaf; Val is the thrown reference
	CTry                     // kids: [body, handler]; Handler dispatches
)

// NumCSTKinds is the size of the CST production alphabet.
const NumCSTKinds = int(CTry) + 1

var cstNames = [...]string{"seq", "block", "if", "while", "dowhile",
	"return", "break", "continue", "throw", "try"}

func (k CSTKind) String() string {
	if int(k) < len(cstNames) {
		return cstNames[k]
	}
	return fmt.Sprintf("cst(%d)", uint8(k))
}

// CSTNode is one node of the Control Structure Tree.
type CSTNode struct {
	Kind CSTKind
	Kids []*CSTNode

	// Block is the basic block of CBlock leaves, the header of CWhile,
	// and the latch of CDoWhile.
	Block *Block
	// Cond is the controlling boolean value of CIf/CWhile/CDoWhile.
	Cond ValueID
	// Val is the returned/thrown value of CReturn/CThrow (NoValue for
	// void returns).
	Val ValueID
	// Handler is the exception-handler entry block of CTry (the block
	// holding the exception phis and the OpCatch); kids[1] is the
	// handler body including the catch-type dispatch.
	Handler *Block
	// At is the block a node's Cond/Val is referenced from: the current
	// block at the node's decision point. It is determined structurally
	// and recomputed identically by the wire decoder.
	At *Block
}

// Func is one SafeTSA function body.
type Func struct {
	Name   string
	Method int32 // method-table index, -1 for synthetic initializers
	// Params lists the parameter types in order; for instance methods
	// parameter 0 is the receiver on the safe-ref plane of the owner.
	Params []TypeID
	Result TypeID

	Body  *CSTNode
	Entry *Block
	// Blocks in creation order (which Finish re-orders to dominator
	// pre-order).
	Blocks []*Block

	// values[id] is the defining instruction of each SSA value;
	// index 0 unused.
	values []*Instr

	// ExcEdge maps a potentially-throwing instruction inside a try
	// region to the index of its exception edge into the innermost
	// handler block (parallel to Handler.Preds).
	ExcEdge map[*Instr]int
	// HandlerOf maps the same instructions to their innermost handler
	// block.
	HandlerOf map[*Instr]*Block
	// ThrowEdge/ThrowHandler play the same role for explicit CThrow
	// nodes that occur inside a try region.
	ThrowEdge    map[*CSTNode]int
	ThrowHandler map[*CSTNode]*Block
}

// NewFunc creates an empty function.
func NewFunc(name string) *Func {
	return &Func{
		Name:         name,
		Method:       -1,
		values:       make([]*Instr, 1),
		ExcEdge:      make(map[*Instr]int),
		HandlerOf:    make(map[*Instr]*Block),
		ThrowEdge:    make(map[*CSTNode]int),
		ThrowHandler: make(map[*CSTNode]*Block),
	}
}

// NewBlock appends a fresh block.
func (f *Func) NewBlock() *Block {
	b := &Block{Index: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Value returns the defining instruction of an SSA value (nil for
// NoValue or out-of-range IDs).
func (f *Func) Value(id ValueID) *Instr {
	if id <= 0 || int(id) >= len(f.values) {
		return nil
	}
	return f.values[id]
}

// NumValues returns the number of SSA values defined.
func (f *Func) NumValues() int { return len(f.values) - 1 }

// Define assigns the next SSA id to in and records it.
func (f *Func) Define(in *Instr) ValueID {
	in.ID = ValueID(len(f.values))
	f.values = append(f.values, in)
	return in.ID
}

// NumInstrs counts the transmitted instructions: phis and code, but not
// the parameter pre-loads, which are implied by the signature and never
// externalized.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Phis)
		for _, in := range b.Code {
			if in.Op != OpParam {
				n++
			}
		}
	}
	return n
}

// CountOps tallies instructions by opcode.
func (f *Func) CountOps(counts map[Op]int) {
	for _, b := range f.Blocks {
		b.Instrs(func(in *Instr) { counts[in.Op]++ })
	}
}

// CSTBlocks returns the blocks of the function in Control Structure Tree
// walk order — the canonical transmission order of section 7 ("a fixed
// order, derived from the CST, corresponding to a pre-order traversal of
// the dominator tree"). Every block appears exactly once: as a CBlock
// leaf or as a CTry handler entry.
func (f *Func) CSTBlocks() []*Block {
	var out []*Block
	var walk func(n *CSTNode)
	walk = func(n *CSTNode) {
		if n == nil {
			return
		}
		switch n.Kind {
		case CBlock:
			out = append(out, n.Block)
		case CTry:
			walk(n.Kids[0])
			// The handler entry block is the first leaf of kids[1];
			// it is emitted by that walk.
			walk(n.Kids[1])
		default:
			for _, k := range n.Kids {
				walk(k)
			}
		}
	}
	walk(f.Body)
	return out
}

// Finish installs the dominator tree from the structural IDom links set
// during construction (the dominator relation is integrated in the CST,
// as in the paper's UAST), orders blocks canonically, and assigns the
// pre/post numbering used by Dominates. It must be called after
// construction and after any pass that changes block structure.
func (f *Func) Finish() {
	order := f.CSTBlocks()
	if len(order) != len(f.Blocks) {
		panic(fmt.Sprintf("core: %s: CST covers %d blocks, function has %d",
			f.Name, len(order), len(f.Blocks)))
	}
	pos := make(map[*Block]int, len(order))
	for i, b := range order {
		pos[b] = i
		b.Children = nil
	}
	for _, b := range order {
		if b == f.Entry {
			continue
		}
		if b.IDom == nil {
			panic(fmt.Sprintf("core: %s: block without immediate dominator", f.Name))
		}
		b.IDom.Children = append(b.IDom.Children, b)
	}
	// Children in CST order keeps the dominator pre-order equal to the
	// CST walk order on both ends of the wire.
	for _, b := range order {
		kids := b.Children
		for i := 1; i < len(kids); i++ {
			for j := i; j > 0 && pos[kids[j-1]] > pos[kids[j]]; j-- {
				kids[j-1], kids[j] = kids[j], kids[j-1]
			}
		}
	}
	counter := 0
	var walk func(b *Block, depth int)
	walk = func(b *Block, depth int) {
		b.Depth = depth
		b.preIn = counter
		counter++
		for _, c := range b.Children {
			walk(c, depth+1)
		}
		b.preOut = counter
		counter++
	}
	walk(f.Entry, 0)
	for i, b := range order {
		b.Index = i
	}
	f.Blocks = order
}

// RemoveExcSite detaches a potentially-throwing instruction from its
// exception handler: the handler loses the corresponding predecessor
// edge, every handler phi drops the matching operand, and later sites'
// edge indices shift down. Used when the optimizer deletes a redundant
// check (the dominating check subsumes its exception behaviour).
func (f *Func) RemoveExcSite(in *Instr) {
	h := f.HandlerOf[in]
	if h == nil {
		return
	}
	k := f.ExcEdge[in]
	h.Preds = append(h.Preds[:k], h.Preds[k+1:]...)
	for _, phi := range h.Phis {
		phi.Args = append(phi.Args[:k], phi.Args[k+1:]...)
	}
	delete(f.ExcEdge, in)
	delete(f.HandlerOf, in)
	for site, e := range f.ExcEdge {
		if f.HandlerOf[site] == h && e > k {
			f.ExcEdge[site] = e - 1
		}
	}
	for node, e := range f.ThrowEdge {
		if f.ThrowHandler[node] == h && e > k {
			f.ThrowEdge[node] = e - 1
		}
	}
}

// Succs derives the successor edges of every block from the predecessor
// lists (normal edges only).
func (f *Func) Succs() map[*Block][]*Block {
	out := make(map[*Block][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, p := range b.Preds {
			out[p.From] = append(out[p.From], b)
		}
	}
	return out
}
