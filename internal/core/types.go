// Package core defines the SafeTSA intermediate representation — the
// paper's primary contribution. A SafeTSA module carries a type table
// (with the safe-ref and safe-index shadow types that make memory access
// intrinsically safe), per-class field/method tables, and one function
// per method body. Function bodies are Control Structure Trees whose
// leaves are basic blocks of type-separated SSA instructions.
//
// In memory, operands are value IDs; the (l, r) dominator-relative pairs
// of the paper appear only in the wire format (package wire), where they
// make ill-formed references inexpressible.
package core

import "fmt"

// TypeID indexes the module's type table. ID 0 is reserved/invalid.
type TypeID int32

// NoType marks "no type" (e.g. the result of a void call).
const NoType TypeID = 0

// TypeKind discriminates type-table entries.
type TypeKind uint8

// The kinds of type-table entries. TSafeRef and TSafeIndex are the shadow
// types of section 4 of the paper: TSafeRef(T) holds null-checked values
// of reference type T; TSafeIndex(A) holds index values checked against a
// specific array value of array type A (the binding to the array value is
// carried on each safe-index instruction result, per Appendix A).
const (
	TInvalid TypeKind = iota
	TVoid
	TInt
	TLong
	TDouble
	TBoolean
	TChar
	TClass     // a reference (class) type
	TArray     // an array type; Elem is the element type
	TSafeRef   // null-checked view of Base (a TClass or TArray type)
	TSafeIndex // checked-index view for arrays of type Base (a TArray)
	TMem       // the artificial memory state type (optimizer-internal)
)

// Type is one entry of the module type table.
type Type struct {
	ID   TypeID
	Kind TypeKind
	// Name is the class name for TClass entries.
	Name string
	// Elem is the element type of TArray entries.
	Elem TypeID
	// Base is the underlying type of TSafeRef/TSafeIndex entries.
	Base TypeID
	// Super is the superclass of TClass entries (NoType for Object).
	Super TypeID
	// Imported marks entries of the implicit, tamper-proof part of the
	// type table (primitives and host classes); they are never
	// transmitted.
	Imported bool
}

// String renders the type for diagnostics and dumps.
func (t *Type) String() string {
	switch t.Kind {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TLong:
		return "long"
	case TDouble:
		return "double"
	case TBoolean:
		return "boolean"
	case TChar:
		return "char"
	case TClass:
		return t.Name
	case TMem:
		return "mem"
	}
	return fmt.Sprintf("type#%d", t.ID)
}

// TypeTable is the module's type table. The implicit prefix (primitives,
// imported host classes, and their safe-ref types) is identical on the
// producer and consumer and is regenerated rather than transmitted; only
// user classes and the derived array/safe types they introduce are part
// of the distribution unit.
type TypeTable struct {
	ByID []*Type // index 0 unused

	// Fixed implicit entries.
	Void, Int, Long, Double, Boolean, Char, Mem TypeID
	Object, String, Throwable, Exception        TypeID
	NPE, Arith, Bounds, Cast, NegSize           TypeID

	arrays   map[TypeID]TypeID // elem -> array
	safeRefs map[TypeID]TypeID // base -> safe-ref
	safeIdxs map[TypeID]TypeID // array -> safe-index
	classes  map[string]TypeID
	// ImplicitLen is the number of table entries (including index 0)
	// that belong to the implicit prefix.
	ImplicitLen int
}

// NewTypeTable creates a table populated with the implicit prefix.
func NewTypeTable() *TypeTable {
	tt := &TypeTable{
		arrays:   make(map[TypeID]TypeID),
		safeRefs: make(map[TypeID]TypeID),
		safeIdxs: make(map[TypeID]TypeID),
		classes:  make(map[string]TypeID),
	}
	tt.ByID = append(tt.ByID, nil) // slot 0 invalid

	add := func(t *Type) TypeID {
		t.ID = TypeID(len(tt.ByID))
		t.Imported = true
		tt.ByID = append(tt.ByID, t)
		return t.ID
	}
	tt.Void = add(&Type{Kind: TVoid})
	tt.Int = add(&Type{Kind: TInt})
	tt.Long = add(&Type{Kind: TLong})
	tt.Double = add(&Type{Kind: TDouble})
	tt.Boolean = add(&Type{Kind: TBoolean})
	tt.Char = add(&Type{Kind: TChar})
	tt.Mem = add(&Type{Kind: TMem})

	cls := func(name string, super TypeID) TypeID {
		id := add(&Type{Kind: TClass, Name: name, Super: super})
		tt.classes[name] = id
		return id
	}
	tt.Object = cls("Object", NoType)
	tt.String = cls("String", tt.Object)
	tt.Throwable = cls("Throwable", tt.Object)
	tt.Exception = cls("Exception", tt.Throwable)
	tt.NPE = cls("NullPointerException", tt.Exception)
	tt.Arith = cls("ArithmeticException", tt.Exception)
	tt.Bounds = cls("IndexOutOfBoundsException", tt.Exception)
	tt.Cast = cls("ClassCastException", tt.Exception)
	tt.NegSize = cls("NegativeArraySizeException", tt.Exception)

	// Safe-ref shadows for the imported reference types, in table
	// order, so both ends agree on their IDs.
	for id := TypeID(1); id < TypeID(len(tt.ByID)); id++ {
		t := tt.ByID[id]
		if t.Kind == TClass {
			sid := add(&Type{Kind: TSafeRef, Base: id})
			tt.safeRefs[id] = sid
		}
	}
	tt.ImplicitLen = len(tt.ByID)
	return tt
}

// Get returns the type with the given ID, or nil when out of range.
func (tt *TypeTable) Get(id TypeID) *Type {
	if id <= 0 || int(id) >= len(tt.ByID) {
		return nil
	}
	return tt.ByID[id]
}

// MustGet returns the type with the given ID and panics on a bad ID; use
// only after verification.
func (tt *TypeTable) MustGet(id TypeID) *Type {
	t := tt.Get(id)
	if t == nil {
		panic(fmt.Sprintf("core: invalid type id %d", id))
	}
	return t
}

// AddClass appends a user class entry; super must already exist.
func (tt *TypeTable) AddClass(name string, super TypeID) TypeID {
	if id, ok := tt.classes[name]; ok {
		return id
	}
	t := &Type{Kind: TClass, Name: name, Super: super, ID: TypeID(len(tt.ByID))}
	tt.ByID = append(tt.ByID, t)
	tt.classes[name] = t.ID
	// Every reference type gets its safe-ref shadow immediately, so
	// shadow IDs are a deterministic function of creation order.
	tt.safeRefs[t.ID] = tt.addDerived(&Type{Kind: TSafeRef, Base: t.ID})
	return t.ID
}

func (tt *TypeTable) addDerived(t *Type) TypeID {
	t.ID = TypeID(len(tt.ByID))
	tt.ByID = append(tt.ByID, t)
	return t.ID
}

// Class returns the ID of a class by name (0 if absent).
func (tt *TypeTable) Class(name string) TypeID { return tt.classes[name] }

// ArrayOf returns (creating on first use) the array type with the given
// element type, plus its safe-ref and safe-index shadows.
func (tt *TypeTable) ArrayOf(elem TypeID) TypeID {
	if id, ok := tt.arrays[elem]; ok {
		return id
	}
	id := tt.addDerived(&Type{Kind: TArray, Elem: elem, Super: tt.Object})
	tt.arrays[elem] = id
	tt.safeRefs[id] = tt.addDerived(&Type{Kind: TSafeRef, Base: id})
	tt.safeIdxs[id] = tt.addDerived(&Type{Kind: TSafeIndex, Base: id})
	return id
}

// SafeRefOf returns the safe-ref shadow of a reference type.
func (tt *TypeTable) SafeRefOf(ref TypeID) TypeID {
	id, ok := tt.safeRefs[ref]
	if !ok {
		panic(fmt.Sprintf("core: no safe-ref shadow for type %d (%s)", ref, tt.MustGet(ref)))
	}
	return id
}

// SafeIndexOf returns the safe-index shadow of an array type.
func (tt *TypeTable) SafeIndexOf(arr TypeID) TypeID {
	id, ok := tt.safeIdxs[arr]
	if !ok {
		panic(fmt.Sprintf("core: no safe-index shadow for type %d", arr))
	}
	return id
}

// IsRefType reports whether id names a class or array type.
func (tt *TypeTable) IsRefType(id TypeID) bool {
	t := tt.Get(id)
	return t != nil && (t.Kind == TClass || t.Kind == TArray)
}

// BaseRef strips one safe-ref shadow: SafeRef(T) -> T; other types map to
// themselves.
func (tt *TypeTable) BaseRef(id TypeID) TypeID {
	t := tt.MustGet(id)
	if t.Kind == TSafeRef {
		return t.Base
	}
	return id
}

// IsSubclass reports whether class/array type a is b or a transitive
// subclass of b (arrays are only subtypes of Object).
func (tt *TypeTable) IsSubclass(a, b TypeID) bool {
	if a == b {
		return true
	}
	ta := tt.Get(a)
	if ta == nil {
		return false
	}
	if ta.Kind == TArray {
		return b == tt.Object
	}
	for x := ta; x != nil; {
		if x.ID == b {
			return true
		}
		if x.Super == NoType {
			return false
		}
		x = tt.Get(x.Super)
	}
	return false
}

// Describe renders any type including shadow types for dumps.
func (tt *TypeTable) Describe(id TypeID) string {
	t := tt.Get(id)
	if t == nil {
		return fmt.Sprintf("?type%d", id)
	}
	switch t.Kind {
	case TArray:
		return tt.Describe(t.Elem) + "[]"
	case TSafeRef:
		return "safe-" + tt.Describe(t.Base)
	case TSafeIndex:
		return "safe-index-" + tt.Describe(t.Base)
	default:
		return t.String()
	}
}
