package core

import "fmt"

// ValueID identifies an SSA value within one function; IDs are assigned
// in creation order and are dense. 0 means "no value".
type ValueID int32

// NoValue marks the absence of a value operand or result.
const NoValue ValueID = 0

// Op is a SafeTSA opcode.
type Op uint8

// The SafeTSA instruction set (sections 4–6 of the paper). Result planes
// are implied by the opcode and its type arguments; there is no way to
// name a destination register explicitly.
const (
	OpInvalid Op = iota

	// OpParam pre-loads parameter Aux into a register of the parameter's
	// type in the initial block ("pre-loading" of section 5; no target
	// code is generated for it).
	OpParam
	// OpConst pre-loads a constant (from Const) onto the plane of Type.
	OpConst
	// OpPhi merges values; operand k corresponds to incoming edge k of
	// its block. All operands and the result share one plane.
	OpPhi
	// OpPrim applies non-throwing primitive operation Prim.
	OpPrim
	// OpXPrim applies potentially-throwing primitive operation Prim
	// (integer division and remainder).
	OpXPrim

	// OpNullCheck takes a value from the plane of reference type
	// TypeArg and deposits it on the SafeRef(TypeArg) plane, after a
	// runtime null check (NullPointerException on failure).
	OpNullCheck
	// OpIndexCheck takes an array from the SafeRef(TypeArg) plane
	// (TypeArg is the array type) and an int; after a runtime bounds
	// check it deposits the index on the SafeIndex(TypeArg) plane bound
	// to the array value (Appendix A).
	OpIndexCheck
	// OpUpcast performs a dynamically checked reference cast to
	// TypeArg (ClassCastException on failure). Operand plane is the
	// ref type recorded in ArgType.
	OpUpcast
	// OpDowncast moves a value to a statically-safe weaker plane
	// (safe-ref → ref; ref → superclass ref; safe-ref → superclass
	// safe-ref). TypeArg is the destination plane. It generates no
	// target code.
	OpDowncast

	// OpGetField/OpSetField access field Field (module field-table
	// index); the object operand lives on the owner's safe-ref plane.
	OpGetField
	OpSetField
	// OpGetElt/OpSetElt access array elements; the array operand lives
	// on SafeRef(TypeArg) and the index on SafeIndex(TypeArg) bound to
	// that same array value.
	OpGetElt
	OpSetElt
	// OpArrayLen reads the length of an array on SafeRef(TypeArg).
	OpArrayLen

	// OpXCall invokes method Method without dynamic dispatch (statics,
	// constructors, super calls, imported finals). For instance
	// methods, operand 0 is the receiver on the owner's safe-ref plane.
	OpXCall
	// OpXDispatch invokes virtually through the dispatch-table slot of
	// method Method; operand 0 is the receiver.
	OpXDispatch

	// OpNew allocates an instance of class TypeArg; the result is
	// already non-null and lives on SafeRef(TypeArg). The constructor
	// is invoked separately via OpXCall.
	OpNew
	// OpNewArray allocates an array of type TypeArg with the given int
	// length; throws NegativeArraySizeException.
	OpNewArray
	// OpInstanceOf tests whether the operand (plane ArgType, a ref
	// type) is a non-null instance of TypeArg.
	OpInstanceOf

	// OpCatch appears first in an exception-handler block and produces
	// the caught value on the Throwable ref plane.
	OpCatch

	// OpMem0 produces the initial memory state; memory-state values
	// exist only during producer-side optimization and are never
	// encoded (section 8).
	OpMem0
)

var opNames = [...]string{
	OpInvalid:    "invalid",
	OpParam:      "param",
	OpConst:      "const",
	OpPhi:        "phi",
	OpPrim:       "primitive",
	OpXPrim:      "xprimitive",
	OpNullCheck:  "nullcheck",
	OpIndexCheck: "indexcheck",
	OpUpcast:     "upcast",
	OpDowncast:   "downcast",
	OpGetField:   "getfield",
	OpSetField:   "setfield",
	OpGetElt:     "getelt",
	OpSetElt:     "setelt",
	OpArrayLen:   "arraylen",
	OpXCall:      "xcall",
	OpXDispatch:  "xdispatch",
	OpNew:        "new",
	OpNewArray:   "newarray",
	OpInstanceOf: "instanceof",
	OpCatch:      "catch",
	OpMem0:       "mem0",
}

// NumOps is the size of the opcode alphabet (used by the wire format).
const NumOps = int(OpMem0) + 1

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// CanThrow reports whether the opcode may raise an exception and is
// therefore an exception-edge source inside try regions and a root for
// dead-code elimination.
func (o Op) CanThrow() bool {
	switch o {
	case OpXPrim, OpNullCheck, OpIndexCheck, OpUpcast, OpNewArray, OpXCall, OpXDispatch:
		return true
	}
	return false
}

// HasSideEffect reports whether the instruction must be preserved even if
// its result is unused.
func (o Op) HasSideEffect() bool {
	switch o {
	case OpSetField, OpSetElt, OpXCall, OpXDispatch, OpXPrim,
		OpNullCheck, OpIndexCheck, OpUpcast, OpNewArray:
		return true
	}
	return false
}

// ConstKind discriminates constant values.
type ConstKind uint8

// Constant kinds; KNull is a typed null on some reference plane.
const (
	KNone ConstKind = iota
	KInt
	KLong
	KDouble
	KBool
	KChar
	KString
	KNull
)

// ConstVal is the payload of an OpConst instruction.
type ConstVal struct {
	Kind ConstKind
	I    int64   // int, long, char, bool (0/1)
	D    float64 // double
	S    string  // string
}

// String renders the constant.
func (c ConstVal) String() string {
	switch c.Kind {
	case KInt, KLong, KChar:
		return fmt.Sprintf("%d", c.I)
	case KDouble:
		return fmt.Sprintf("%g", c.D)
	case KBool:
		if c.I != 0 {
			return "true"
		}
		return "false"
	case KString:
		return fmt.Sprintf("%q", c.S)
	case KNull:
		return "null"
	}
	return "<none>"
}

// Eq reports semantic equality of constants (used by CSE).
func (c ConstVal) Eq(d ConstVal) bool {
	if c.Kind != d.Kind {
		return false
	}
	switch c.Kind {
	case KDouble:
		// Compare bit patterns implicitly via ==; NaN constants are
		// never folded together, which is conservative and sound.
		return c.D == d.D
	case KString:
		return c.S == d.S
	default:
		return c.I == d.I
	}
}

// Instr is one SafeTSA instruction. Result: instructions whose opcode
// produces a value fill the next free register of the plane identified by
// (Type, Bind); ID is the function-wide SSA name of that result. Void
// instructions have ID == NoValue and Type == the table's Void.
type Instr struct {
	ID   ValueID
	Op   Op
	Type TypeID // result plane type (Void for no result)
	// Bind is the array value a safe-index result is bound to
	// (NoValue otherwise).
	Bind ValueID
	// ArgType is the operand plane for OpNullCheck, OpUpcast,
	// OpInstanceOf, and OpDowncast sources.
	ArgType TypeID
	// TypeArg is the symbolic type argument (target of casts, class of
	// new, array type of element accesses...).
	TypeArg TypeID
	Args    []ValueID
	Field   int32 // field-table index for OpGetField/OpSetField
	Method  int32 // method-table index for OpXCall/OpXDispatch
	Prim    PrimOp
	Aux     int32    // parameter index for OpParam
	Const   ConstVal // payload for OpConst

	Blk *Block
}

// HasResult reports whether the instruction defines an SSA value.
func (in *Instr) HasResult() bool { return in.ID != NoValue }
