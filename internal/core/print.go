package core

import (
	"fmt"
	"strings"
)

// Dump renders the whole module in the textual style of the paper's
// Figure 4 ("type-separated reference-safe SSA"), with (l-r) references.
func (m *Module) Dump() string {
	var sb strings.Builder
	for _, f := range m.Funcs {
		sb.WriteString(m.DumpFunc(f))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// DumpFunc renders one function: the CST structure with each basic block
// printed as plane-indexed instructions and (l-r) operand references.
func (m *Module) DumpFunc(f *Func) string {
	tt := m.Types
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(tt.Describe(p))
	}
	fmt.Fprintf(&sb, ") %s {\n", tt.Describe(f.Result))

	planeIdx := f.PlaneIndex()
	ref := func(from *Block, v ValueID) string {
		if v == NoValue {
			return "(-)"
		}
		def := f.Value(v)
		if def == nil {
			return fmt.Sprintf("(?v%d)", v)
		}
		r := f.EncodeRef(from, v, planeIdx)
		return fmt.Sprintf("(%d-%d %s)", r.L, r.R, tt.Describe(def.Type))
	}
	// Phi operand references use l=0 for the edge's source block.
	phiRef := func(e Pred, v ValueID) string {
		def := f.Value(v)
		if def == nil {
			return fmt.Sprintf("(?v%d)", v)
		}
		r := f.EncodeRef(e.From, v, planeIdx)
		return fmt.Sprintf("(%d-%d)", r.L, r.R)
	}

	printInstr := func(ind string, b *Block, in *Instr) {
		var out strings.Builder
		if in.HasResult() {
			fmt.Fprintf(&out, "%s:%d <- ", tt.Describe(in.Type), planeIdx[in.ID])
		}
		out.WriteString(in.Op.String())
		switch in.Op {
		case OpParam:
			fmt.Fprintf(&out, " #%d", in.Aux)
		case OpConst:
			fmt.Fprintf(&out, " %s %s", tt.Describe(in.Type), in.Const)
		case OpPrim, OpXPrim:
			fmt.Fprintf(&out, " %s", in.Prim)
		case OpGetField, OpSetField:
			fr := m.Fields[in.Field]
			fmt.Fprintf(&out, " %s.%s", tt.Describe(fr.Owner), fr.Name)
		case OpXCall, OpXDispatch:
			fmt.Fprintf(&out, " %s", m.Methods[in.Method].Sig(tt))
		case OpNullCheck, OpInstanceOf, OpUpcast, OpDowncast,
			OpNew, OpNewArray, OpGetElt, OpSetElt, OpIndexCheck, OpArrayLen:
			if in.TypeArg != NoType {
				fmt.Fprintf(&out, " %s", tt.Describe(in.TypeArg))
			}
		}
		if in.Op == OpPhi {
			for k, a := range in.Args {
				if k < len(b.Preds) {
					fmt.Fprintf(&out, " %s", phiRef(b.Preds[k], a))
				} else {
					fmt.Fprintf(&out, " (?edge%d)", k)
				}
			}
		} else {
			for _, a := range in.Args {
				fmt.Fprintf(&out, " %s", ref(b, a))
			}
		}
		fmt.Fprintf(&sb, "%s%s\n", ind, out.String())
	}

	printBlock := func(ind string, b *Block) {
		fmt.Fprintf(&sb, "%sblock b%d (%d preds):\n", ind, b.Index, len(b.Preds))
		for _, in := range b.Phis {
			printInstr(ind+"  ", b, in)
		}
		for _, in := range b.Code {
			printInstr(ind+"  ", b, in)
		}
	}

	var walk func(ind string, n *CSTNode)
	walk = func(ind string, n *CSTNode) {
		if n == nil {
			return
		}
		switch n.Kind {
		case CSeq:
			for _, k := range n.Kids {
				walk(ind, k)
			}
		case CBlock:
			printBlock(ind, n.Block)
		case CIf:
			fmt.Fprintf(&sb, "%sif %s {\n", ind, ref(n.At, n.Cond))
			walk(ind+"  ", n.Kids[0])
			if len(n.Kids) > 1 && n.Kids[1] != nil {
				fmt.Fprintf(&sb, "%s} else {\n", ind)
				walk(ind+"  ", n.Kids[1])
			}
			fmt.Fprintf(&sb, "%s}\n", ind)
		case CWhile:
			fmt.Fprintf(&sb, "%swhile {\n", ind)
			walk(ind+"  ", n.Kids[0])
			fmt.Fprintf(&sb, "%s} cond %s do {\n", ind, ref(n.At, n.Cond))
			walk(ind+"  ", n.Kids[1])
			fmt.Fprintf(&sb, "%s}\n", ind)
		case CDoWhile:
			fmt.Fprintf(&sb, "%sdo {\n", ind)
			walk(ind+"  ", n.Kids[0])
			fmt.Fprintf(&sb, "%s} latch {\n", ind)
			walk(ind+"  ", n.Kids[1])
			fmt.Fprintf(&sb, "%s} while %s\n", ind, ref(n.At, n.Cond))
		case CReturn:
			if n.Val == NoValue {
				fmt.Fprintf(&sb, "%sreturn\n", ind)
			} else {
				fmt.Fprintf(&sb, "%sreturn %s\n", ind, ref(n.At, n.Val))
			}
		case CBreak:
			fmt.Fprintf(&sb, "%sbreak\n", ind)
		case CContinue:
			fmt.Fprintf(&sb, "%scontinue\n", ind)
		case CThrow:
			fmt.Fprintf(&sb, "%sthrow %s\n", ind, ref(n.At, n.Val))
		case CTry:
			fmt.Fprintf(&sb, "%stry {\n", ind)
			walk(ind+"  ", n.Kids[0])
			fmt.Fprintf(&sb, "%s} handler {\n", ind)
			walk(ind+"  ", n.Kids[1])
			fmt.Fprintf(&sb, "%s}\n", ind)
		}
	}
	walk("  ", f.Body)
	sb.WriteString("}\n")
	return sb.String()
}
