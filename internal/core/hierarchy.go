package core

// Whole-module hierarchy and call-graph queries. The wire format ships
// complete distribution units — every class a unit defines travels with
// it, imported host classes are tamper-proof, and nothing can extend a
// unit's classes from outside (the type table is sealed at decode time).
// That closed-world property is what makes class-hierarchy analysis over
// one Module sound, and these queries are the substrate of the
// interprocedural optimizer tier (devirtualization, inlining).

// Subclasses returns the module's class definitions whose type is a
// reflexive subclass of root, in Classes order.
func (m *Module) Subclasses(root TypeID) []*ClassDef {
	var out []*ClassDef
	for _, cd := range m.Classes {
		if m.Types.IsSubclass(cd.Type, root) {
			out = append(out, cd)
		}
	}
	return out
}

// InstantiatedClasses returns the set of class types the module can ever
// instantiate: the TypeArg of every OpNew in any function (rapid type
// analysis). Host-allocated objects (strings, runtime exceptions) are
// instances of imported classes, which user classes cannot subclass, so
// for dispatch sites rooted at a unit-defined class this set covers
// every possible runtime receiver class.
func (m *Module) InstantiatedClasses() map[TypeID]bool {
	inst := make(map[TypeID]bool)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Code {
				if in.Op == OpNew {
					inst[in.TypeArg] = true
				}
			}
		}
	}
	return inst
}

// MonomorphicTarget resolves a dispatch through the method-table entry
// at index method to its unique implementation, if one exists: every
// candidate receiver class (reflexive subclasses of the owner,
// restricted to instantiated when non-nil) must name the same
// method-table index in its dispatch-table slot. It returns -1 when the
// site is not provably monomorphic: a polymorphic slot, no candidate
// receiver class at all, an owner outside the unit (imported classes can
// have host-implemented instances the dispatch tables do not describe),
// or a malformed slot.
func (m *Module) MonomorphicTarget(method int32, instantiated map[TypeID]bool) int32 {
	if method < 0 || int(method) >= len(m.Methods) {
		return -1
	}
	mr := &m.Methods[method]
	if mr.VSlot < 0 {
		return -1
	}
	owner := m.Types.Get(mr.Owner)
	if owner == nil || owner.Imported {
		return -1
	}
	target := int32(-1)
	for _, cd := range m.Subclasses(mr.Owner) {
		if instantiated != nil && !instantiated[cd.Type] {
			continue
		}
		if int(mr.VSlot) >= len(cd.VTable) {
			return -1
		}
		t := cd.VTable[mr.VSlot]
		if target == -1 {
			target = t
		} else if target != t {
			return -1
		}
	}
	return target
}

// CallGraph returns, per function, the unit-local functions it can call:
// direct xcall bodies plus, for each xdispatch site, every
// implementation a possible receiver class could select. Imported
// callees (no body in the unit) do not appear.
func (m *Module) CallGraph() map[*Func][]*Func {
	cg := make(map[*Func][]*Func, len(m.Funcs))
	for _, f := range m.Funcs {
		seen := make(map[*Func]bool)
		var callees []*Func
		add := func(g *Func) {
			if g != nil && !seen[g] {
				seen[g] = true
				callees = append(callees, g)
			}
		}
		for _, b := range f.Blocks {
			for _, in := range b.Code {
				switch in.Op {
				case OpXCall:
					add(m.FuncOf(in.Method))
				case OpXDispatch:
					if in.Method < 0 || int(in.Method) >= len(m.Methods) {
						continue
					}
					mr := &m.Methods[in.Method]
					if mr.VSlot < 0 {
						continue
					}
					for _, cd := range m.Subclasses(mr.Owner) {
						if int(mr.VSlot) < len(cd.VTable) {
							add(m.FuncOf(cd.VTable[mr.VSlot]))
						}
					}
				}
			}
		}
		cg[f] = callees
	}
	return cg
}

// RecursiveFuncs returns the functions that can reach themselves through
// the call graph — the ones an inliner must refuse, since expanding them
// never terminates. Indirectly recursive functions (f → g → f) are
// included.
func (m *Module) RecursiveFuncs() map[*Func]bool {
	cg := m.CallGraph()
	rec := make(map[*Func]bool)
	for _, f := range m.Funcs {
		seen := make(map[*Func]bool)
		stack := append([]*Func(nil), cg[f]...)
		for len(stack) > 0 {
			g := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if g == f {
				rec[f] = true
				break
			}
			if seen[g] {
				continue
			}
			seen[g] = true
			stack = append(stack, cg[g]...)
		}
	}
	return rec
}
