package core

import "fmt"

// PrimOp identifies a primitive operation. As in section 5 of the paper,
// primitives are subordinate to types: each PrimOp belongs to a base type
// (its spelling is prefixed accordingly), has a fixed operand/result
// signature, and is classified as exception-free (usable with OpPrim) or
// potentially-throwing (requiring OpXPrim).
type PrimOp uint8

// The primitive operations.
const (
	PInvalid PrimOp = iota

	// int
	PIAdd
	PISub
	PIMul
	PIDiv // x
	PIRem // x
	PINeg
	PIShl
	PIShr
	PIAnd
	PIOr
	PIXor
	PIEq
	PINe
	PILt
	PILe
	PIGt
	PIGe
	PIAbs
	PIMin
	PIMax
	PI2L
	PI2D
	PI2C

	// long
	PLAdd
	PLSub
	PLMul
	PLDiv // x
	PLRem // x
	PLNeg
	PLShl
	PLShr
	PLAnd
	PLOr
	PLXor
	PLEq
	PLNe
	PLLt
	PLLe
	PLGt
	PLGe
	PLAbs
	PLMin
	PLMax
	PL2I
	PL2D

	// double
	PDAdd
	PDSub
	PDMul
	PDDiv
	PDRem
	PDNeg
	PDEq
	PDNe
	PDLt
	PDLe
	PDGt
	PDGe
	PDAbs
	PDMin
	PDMax
	PDSqrt
	PDPow
	PDFloor
	PDCeil
	PDLog
	PDExp
	PDSin
	PDCos
	PD2I
	PD2L

	// boolean
	PBNot
	PBAnd
	PBOr
	PBXor
	PBEq
	PBNe

	// char
	PC2I

	// reference (Object plane)
	PREq
	PRNe

	// String (operations of the imported String type; string conversion
	// renders null as "null", so these take the plain String plane).
	PSConcat
	PSOfInt
	PSOfLong
	PSOfDouble
	PSOfBool
	PSOfChar
	PSOfRef // string conversion of an arbitrary reference; null -> "null"

	numPrimOps
)

// NumPrimOps is the size of the primitive-operation alphabet.
const NumPrimOps = int(numPrimOps)

// PlaneClass abstracts the operand/result planes of a primitive
// signature; signatures are resolved against a concrete TypeTable with
// the planeType helper.
type PlaneClass uint8

// Plane classes for primitive signatures.
const (
	PlNone PlaneClass = iota
	PlInt
	PlLong
	PlDouble
	PlBool
	PlChar
	PlObject
	PlString
)

// PrimSig is the signature of a primitive operation.
type PrimSig struct {
	Name   string
	Params []PlaneClass
	Result PlaneClass
	Throws bool // must be used with OpXPrim
}

var primSigs = map[PrimOp]PrimSig{
	PIAdd: {"int.add", []PlaneClass{PlInt, PlInt}, PlInt, false},
	PISub: {"int.sub", []PlaneClass{PlInt, PlInt}, PlInt, false},
	PIMul: {"int.mul", []PlaneClass{PlInt, PlInt}, PlInt, false},
	PIDiv: {"int.div", []PlaneClass{PlInt, PlInt}, PlInt, true},
	PIRem: {"int.rem", []PlaneClass{PlInt, PlInt}, PlInt, true},
	PINeg: {"int.neg", []PlaneClass{PlInt}, PlInt, false},
	PIShl: {"int.shl", []PlaneClass{PlInt, PlInt}, PlInt, false},
	PIShr: {"int.shr", []PlaneClass{PlInt, PlInt}, PlInt, false},
	PIAnd: {"int.and", []PlaneClass{PlInt, PlInt}, PlInt, false},
	PIOr:  {"int.or", []PlaneClass{PlInt, PlInt}, PlInt, false},
	PIXor: {"int.xor", []PlaneClass{PlInt, PlInt}, PlInt, false},
	PIEq:  {"int.eq", []PlaneClass{PlInt, PlInt}, PlBool, false},
	PINe:  {"int.ne", []PlaneClass{PlInt, PlInt}, PlBool, false},
	PILt:  {"int.lt", []PlaneClass{PlInt, PlInt}, PlBool, false},
	PILe:  {"int.le", []PlaneClass{PlInt, PlInt}, PlBool, false},
	PIGt:  {"int.gt", []PlaneClass{PlInt, PlInt}, PlBool, false},
	PIGe:  {"int.ge", []PlaneClass{PlInt, PlInt}, PlBool, false},
	PIAbs: {"int.abs", []PlaneClass{PlInt}, PlInt, false},
	PIMin: {"int.min", []PlaneClass{PlInt, PlInt}, PlInt, false},
	PIMax: {"int.max", []PlaneClass{PlInt, PlInt}, PlInt, false},
	PI2L:  {"int.tolong", []PlaneClass{PlInt}, PlLong, false},
	PI2D:  {"int.todouble", []PlaneClass{PlInt}, PlDouble, false},
	PI2C:  {"int.tochar", []PlaneClass{PlInt}, PlChar, false},

	PLAdd: {"long.add", []PlaneClass{PlLong, PlLong}, PlLong, false},
	PLSub: {"long.sub", []PlaneClass{PlLong, PlLong}, PlLong, false},
	PLMul: {"long.mul", []PlaneClass{PlLong, PlLong}, PlLong, false},
	PLDiv: {"long.div", []PlaneClass{PlLong, PlLong}, PlLong, true},
	PLRem: {"long.rem", []PlaneClass{PlLong, PlLong}, PlLong, true},
	PLNeg: {"long.neg", []PlaneClass{PlLong}, PlLong, false},
	PLShl: {"long.shl", []PlaneClass{PlLong, PlInt}, PlLong, false},
	PLShr: {"long.shr", []PlaneClass{PlLong, PlInt}, PlLong, false},
	PLAnd: {"long.and", []PlaneClass{PlLong, PlLong}, PlLong, false},
	PLOr:  {"long.or", []PlaneClass{PlLong, PlLong}, PlLong, false},
	PLXor: {"long.xor", []PlaneClass{PlLong, PlLong}, PlLong, false},
	PLEq:  {"long.eq", []PlaneClass{PlLong, PlLong}, PlBool, false},
	PLNe:  {"long.ne", []PlaneClass{PlLong, PlLong}, PlBool, false},
	PLLt:  {"long.lt", []PlaneClass{PlLong, PlLong}, PlBool, false},
	PLLe:  {"long.le", []PlaneClass{PlLong, PlLong}, PlBool, false},
	PLGt:  {"long.gt", []PlaneClass{PlLong, PlLong}, PlBool, false},
	PLGe:  {"long.ge", []PlaneClass{PlLong, PlLong}, PlBool, false},
	PLAbs: {"long.abs", []PlaneClass{PlLong}, PlLong, false},
	PLMin: {"long.min", []PlaneClass{PlLong, PlLong}, PlLong, false},
	PLMax: {"long.max", []PlaneClass{PlLong, PlLong}, PlLong, false},
	PL2I:  {"long.toint", []PlaneClass{PlLong}, PlInt, false},
	PL2D:  {"long.todouble", []PlaneClass{PlLong}, PlDouble, false},

	PDAdd:   {"double.add", []PlaneClass{PlDouble, PlDouble}, PlDouble, false},
	PDSub:   {"double.sub", []PlaneClass{PlDouble, PlDouble}, PlDouble, false},
	PDMul:   {"double.mul", []PlaneClass{PlDouble, PlDouble}, PlDouble, false},
	PDDiv:   {"double.div", []PlaneClass{PlDouble, PlDouble}, PlDouble, false},
	PDRem:   {"double.rem", []PlaneClass{PlDouble, PlDouble}, PlDouble, false},
	PDNeg:   {"double.neg", []PlaneClass{PlDouble}, PlDouble, false},
	PDEq:    {"double.eq", []PlaneClass{PlDouble, PlDouble}, PlBool, false},
	PDNe:    {"double.ne", []PlaneClass{PlDouble, PlDouble}, PlBool, false},
	PDLt:    {"double.lt", []PlaneClass{PlDouble, PlDouble}, PlBool, false},
	PDLe:    {"double.le", []PlaneClass{PlDouble, PlDouble}, PlBool, false},
	PDGt:    {"double.gt", []PlaneClass{PlDouble, PlDouble}, PlBool, false},
	PDGe:    {"double.ge", []PlaneClass{PlDouble, PlDouble}, PlBool, false},
	PDAbs:   {"double.abs", []PlaneClass{PlDouble}, PlDouble, false},
	PDMin:   {"double.min", []PlaneClass{PlDouble, PlDouble}, PlDouble, false},
	PDMax:   {"double.max", []PlaneClass{PlDouble, PlDouble}, PlDouble, false},
	PDSqrt:  {"double.sqrt", []PlaneClass{PlDouble}, PlDouble, false},
	PDPow:   {"double.pow", []PlaneClass{PlDouble, PlDouble}, PlDouble, false},
	PDFloor: {"double.floor", []PlaneClass{PlDouble}, PlDouble, false},
	PDCeil:  {"double.ceil", []PlaneClass{PlDouble}, PlDouble, false},
	PDLog:   {"double.log", []PlaneClass{PlDouble}, PlDouble, false},
	PDExp:   {"double.exp", []PlaneClass{PlDouble}, PlDouble, false},
	PDSin:   {"double.sin", []PlaneClass{PlDouble}, PlDouble, false},
	PDCos:   {"double.cos", []PlaneClass{PlDouble}, PlDouble, false},
	PD2I:    {"double.toint", []PlaneClass{PlDouble}, PlInt, false},
	PD2L:    {"double.tolong", []PlaneClass{PlDouble}, PlLong, false},

	PBNot: {"boolean.not", []PlaneClass{PlBool}, PlBool, false},
	PBAnd: {"boolean.and", []PlaneClass{PlBool, PlBool}, PlBool, false},
	PBOr:  {"boolean.or", []PlaneClass{PlBool, PlBool}, PlBool, false},
	PBXor: {"boolean.xor", []PlaneClass{PlBool, PlBool}, PlBool, false},
	PBEq:  {"boolean.eq", []PlaneClass{PlBool, PlBool}, PlBool, false},
	PBNe:  {"boolean.ne", []PlaneClass{PlBool, PlBool}, PlBool, false},

	PC2I: {"char.toint", []PlaneClass{PlChar}, PlInt, false},

	PREq: {"ref.eq", []PlaneClass{PlObject, PlObject}, PlBool, false},
	PRNe: {"ref.ne", []PlaneClass{PlObject, PlObject}, PlBool, false},

	PSConcat:   {"String.concat", []PlaneClass{PlString, PlString}, PlString, false},
	PSOfInt:    {"String.ofint", []PlaneClass{PlInt}, PlString, false},
	PSOfLong:   {"String.oflong", []PlaneClass{PlLong}, PlString, false},
	PSOfDouble: {"String.ofdouble", []PlaneClass{PlDouble}, PlString, false},
	PSOfBool:   {"String.ofboolean", []PlaneClass{PlBool}, PlString, false},
	PSOfChar:   {"String.ofchar", []PlaneClass{PlChar}, PlString, false},
	PSOfRef:    {"String.ofref", []PlaneClass{PlObject}, PlString, false},
}

// Sig returns the signature of p.
func (p PrimOp) Sig() PrimSig {
	s, ok := primSigs[p]
	if !ok {
		panic(fmt.Sprintf("core: unknown primitive operation %d", uint8(p)))
	}
	return s
}

// Valid reports whether p is a defined primitive operation.
func (p PrimOp) Valid() bool {
	_, ok := primSigs[p]
	return ok
}

// String returns the type-qualified name of the primitive.
func (p PrimOp) String() string {
	if s, ok := primSigs[p]; ok {
		return s.Name
	}
	return fmt.Sprintf("prim(%d)", uint8(p))
}

// PlaneType resolves a PlaneClass against a type table.
func PlaneType(tt *TypeTable, pc PlaneClass) TypeID {
	switch pc {
	case PlInt:
		return tt.Int
	case PlLong:
		return tt.Long
	case PlDouble:
		return tt.Double
	case PlBool:
		return tt.Boolean
	case PlChar:
		return tt.Char
	case PlObject:
		return tt.Object
	case PlString:
		return tt.String
	}
	return NoType
}
