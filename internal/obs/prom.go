package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4) by hand — no client library, just the few line shapes
// the format defines. Write errors are deliberately ignored: the writer
// targets HTTP response bodies where a broken peer surfaces elsewhere.
type PromWriter struct {
	w io.Writer
	// constLabels is rendered (in insertion order) on every sample line,
	// before any per-sample labels. It is how a fleet member stamps its
	// node identity onto every series it exports.
	constLabels []string // alternating name, value
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// ConstLabel attaches a label pair to every sample line the writer emits
// (per-node identity in a fleet, for example). Returns the writer for
// chaining; empty values are skipped so unlabeled single-node exports
// render exactly as before.
func (p *PromWriter) ConstLabel(name, value string) *PromWriter {
	if value != "" {
		p.constLabels = append(p.constLabels, name, value)
	}
	return p
}

// labels renders the label block for one sample: the const labels
// followed by the extra (name, value) pairs, or "" when there are none.
func (p *PromWriter) labels(extra ...string) string {
	if len(p.constLabels) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	n := 0
	emit := func(pairs []string) {
		for i := 0; i+1 < len(pairs); i += 2 {
			if n > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%q", pairs[i], pairs[i+1])
			n++
		}
	}
	emit(p.constLabels)
	emit(extra)
	b.WriteByte('}')
	return b.String()
}

func (p *PromWriter) header(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Counter emits one cumulative counter.
func (p *PromWriter) Counter(name, help string, v uint64) {
	p.header(name, help, "counter")
	fmt.Fprintf(p.w, "%s%s %d\n", name, p.labels(), v)
}

// CounterVec emits one counter family with a single label dimension,
// label values in sorted order so the rendering is deterministic.
func (p *PromWriter) CounterVec(name, help, label string, vals map[string]uint64) {
	p.header(name, help, "counter")
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(p.w, "%s%s %d\n", name, p.labels(label, k), vals[k])
	}
}

// LabeledCounter is one sample row of a multi-label counter family:
// alternating label name/value pairs plus the counter value.
type LabeledCounter struct {
	Labels []string
	Value  uint64
}

// CounterRows emits one counter family whose samples carry arbitrary
// label sets, rendered in the given row order — callers sort their rows
// so the exposition stays deterministic. An empty row set still emits
// the HELP/TYPE header (a legal sample-less family), so the metric name
// remains discoverable before the first sample exists.
func (p *PromWriter) CounterRows(name, help string, rows []LabeledCounter) {
	p.header(name, help, "counter")
	for _, r := range rows {
		fmt.Fprintf(p.w, "%s%s %d\n", name, p.labels(r.Labels...), r.Value)
	}
}

// GaugeVec emits one gauge family with a single label dimension, label
// values in sorted order so the rendering is deterministic.
func (p *PromWriter) GaugeVec(name, help, label string, vals map[string]int64) {
	p.header(name, help, "gauge")
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(p.w, "%s%s %d\n", name, p.labels(label, k), vals[k])
	}
}

// Gauge emits one gauge.
func (p *PromWriter) Gauge(name, help string, v int64) {
	p.header(name, help, "gauge")
	fmt.Fprintf(p.w, "%s%s %d\n", name, p.labels(), v)
}

// seconds renders a nanosecond quantity as Prometheus-conventional
// seconds with full float precision.
func seconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// HistogramVec emits one histogram family keyed by a single label (the
// pipeline stage), in sorted label order. Buckets are cumulative with
// upper bounds in seconds, per the Prometheus histogram convention;
// empty tail buckets below the overflow are still emitted so scrapers
// see a fixed bucket layout.
func (p *PromWriter) HistogramVec(name, help, label string, snaps map[string]HistogramSnapshot) {
	p.header(name, help, "histogram")
	keys := make([]string, 0, len(snaps))
	for k := range snaps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := snaps[k]
		var cum uint64
		for i := 0; i < NumBuckets; i++ {
			cum += s.Buckets[i]
			fmt.Fprintf(p.w, "%s_bucket%s %d\n",
				name, p.labels(label, k, "le", seconds(BucketUpperBound(i))), cum)
		}
		cum += s.Buckets[NumBuckets]
		fmt.Fprintf(p.w, "%s_bucket%s %d\n", name, p.labels(label, k, "le", "+Inf"), cum)
		fmt.Fprintf(p.w, "%s_sum%s %s\n", name, p.labels(label, k), seconds(s.SumNanos))
		fmt.Fprintf(p.w, "%s_count%s %d\n", name, p.labels(label, k), s.Count)
	}
}
