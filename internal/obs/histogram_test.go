package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the bucket layout: bucket i covers
// (1µs·2^(i-1), 1µs·2^i], bucket 0 additionally absorbs everything at or
// below 1µs, and the overflow bucket catches the rest.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, // clamped, never panics
		{0, 0},
		{1, 0},
		{999, 0},
		{1000, 0}, // exactly the bucket-0 bound
		{1001, 1}, // first value past it
		{2000, 1}, // exactly UB[1]
		{2001, 2},
		{4000, 2},
		{4001, 3},
		{int64(time.Millisecond), 10}, // 1ms = 1000µs ∈ (512µs, 1024µs]
		{int64(time.Second), 20},      // 1s ∈ (0.524s, 1.049s]
		{BucketUpperBound(NumBuckets - 1), NumBuckets - 1},
		{BucketUpperBound(NumBuckets-1) + 1, NumBuckets}, // overflow
		{int64(^uint64(0) >> 2), NumBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Boundaries are strictly increasing powers of two.
	for i := 1; i < NumBuckets; i++ {
		if BucketUpperBound(i) != 2*BucketUpperBound(i-1) {
			t.Errorf("bound %d = %d, want double of %d", i, BucketUpperBound(i), BucketUpperBound(i-1))
		}
	}
	// Every bucket index round-trips: a value at a bucket's upper bound
	// lands in that bucket.
	for i := 0; i < NumBuckets; i++ {
		if got := bucketIndex(BucketUpperBound(i)); got != i {
			t.Errorf("UB[%d]=%d lands in bucket %d", i, BucketUpperBound(i), got)
		}
	}
}

// TestQuantileErrorBounds is the property check for quantile estimation:
// for pseudo-random workloads the estimate must land inside the bucket
// holding the true quantile, i.e. within a factor of two of the truth
// for values above 1µs.
func TestQuantileErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var h Histogram
		n := 100 + rng.Intn(5000)
		samples := make([]int64, n)
		for i := range samples {
			// Spread over ~5 orders of magnitude: 2µs .. 200ms.
			samples[i] = 2000 + int64(rng.Float64()*rng.Float64()*2e8)
			h.ObserveNanos(samples[i])
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		s := h.Snapshot()
		for _, q := range []float64{0.5, 0.9, 0.99} {
			rank := int(q * float64(n))
			if rank < 1 {
				rank = 1
			}
			truth := samples[rank-1]
			est := s.Quantile(q)
			if est < truth/2 || est > truth*2 {
				t.Fatalf("trial %d: q%v estimate %d outside [%d, %d] (truth %d, n=%d)",
					trial, q, est, truth/2, truth*2, truth, n)
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}

	// Single sample: every quantile is inside its bucket.
	var h Histogram
	h.ObserveNanos(5000) // bucket (4µs, 8µs]
	s := h.Snapshot()
	for _, q := range []float64{0.01, 0.5, 1.0} {
		if got := s.Quantile(q); got <= 4000 || got > 8000 {
			t.Errorf("q%v = %d, want in (4000, 8000]", q, got)
		}
	}

	// Overflow samples saturate to the +Inf marker, not to the last
	// finite bound.
	var o Histogram
	o.ObserveNanos(BucketUpperBound(NumBuckets-1) + 12345)
	if got := o.Snapshot().Quantile(0.5); got != BucketUpperBound(NumBuckets) {
		t.Errorf("overflow quantile = %d, want saturation marker %d", got, BucketUpperBound(NumBuckets))
	}
}

// TestQuantileOverflowSaturates is the regression test for the silent
// overflow clamp: a rank that lands in the overflow bucket used to
// report the last finite bound (~134s) as if it were a real measurement.
// It must instead report BucketUpperBound(NumBuckets) — max int64, the
// "+Inf" marker — and the summary must expose how many samples
// overflowed, so a wedged stage cannot hide behind a plausible-looking
// p99.
func TestQuantileOverflowSaturates(t *testing.T) {
	saturated := BucketUpperBound(NumBuckets)
	if saturated != int64(^uint64(0)>>1) {
		t.Fatalf("saturation marker = %d, want max int64", saturated)
	}

	// 98 fast samples and 2 wedged ones: p50/p90 stay finite, p99's rank
	// (99 of 100) lands among the overflow samples and must saturate.
	var h Histogram
	for i := 0; i < 98; i++ {
		h.ObserveNanos(5000)
	}
	h.ObserveNanos(BucketUpperBound(NumBuckets-1) + 1)
	h.ObserveNanos(BucketUpperBound(NumBuckets-1) + 2)
	sum := h.Summary()
	if sum.OverflowCount != 2 {
		t.Errorf("overflow_count = %d, want 2", sum.OverflowCount)
	}
	if sum.P50Nanos >= BucketUpperBound(NumBuckets-1) {
		t.Errorf("p50 = %d, want finite (only 10%% of samples overflowed)", sum.P50Nanos)
	}
	if sum.P99Nanos != saturated {
		t.Errorf("p99 = %d, want saturation marker %d", sum.P99Nanos, saturated)
	}

	// All-overflow histogram: every quantile saturates, none reports the
	// old clamp value.
	var o Histogram
	o.ObserveNanos(BucketUpperBound(NumBuckets-1) + 777)
	o.ObserveNanos(int64(^uint64(0) >> 2))
	osum := o.Summary()
	if osum.OverflowCount != 2 {
		t.Errorf("overflow_count = %d, want 2", osum.OverflowCount)
	}
	for name, v := range map[string]int64{"p50": osum.P50Nanos, "p90": osum.P90Nanos, "p99": osum.P99Nanos} {
		if v != saturated {
			t.Errorf("%s = %d, want saturation marker %d", name, v, saturated)
		}
		if v == BucketUpperBound(NumBuckets-1) {
			t.Errorf("%s reports the last finite bound — the silent clamp is back", name)
		}
	}

	// A histogram with no overflow keeps overflow_count at zero.
	var f Histogram
	f.ObserveNanos(1234)
	if got := f.Summary().OverflowCount; got != 0 {
		t.Errorf("finite-only overflow_count = %d, want 0", got)
	}
}

// TestConcurrentRecordingSumsExactly is the merge/concurrency contract:
// counts and sums from concurrent recorders add exactly — no sampling,
// no loss — and merging snapshots is exact addition too.
func TestConcurrentRecordingSumsExactly(t *testing.T) {
	const (
		goroutines = 16
		perG       = 2000
	)
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.ObserveNanos(int64(g*perG + i + 1))
			}
		}(g)
	}
	wg.Wait()

	const total = goroutines * perG
	if got := h.Count(); got != total {
		t.Errorf("count = %d, want %d", got, total)
	}
	wantSum := int64(total) * (total + 1) / 2 // 1+2+...+total
	if got := h.Sum(); got != wantSum {
		t.Errorf("sum = %d, want %d", got, wantSum)
	}
	s := h.Snapshot()
	if s.Count != total || s.SumNanos != wantSum {
		t.Errorf("snapshot count/sum = %d/%d, want %d/%d", s.Count, s.SumNanos, total, wantSum)
	}

	// Merging two snapshots is exact per-bucket addition.
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.ObserveNanos(int64(1000 * (i + 1)))
		b.ObserveNanos(int64(3000 * (i + 1)))
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(sb)
	if merged.Count != sa.Count+sb.Count {
		t.Errorf("merged count = %d, want %d", merged.Count, sa.Count+sb.Count)
	}
	if merged.SumNanos != sa.SumNanos+sb.SumNanos {
		t.Errorf("merged sum = %d, want %d", merged.SumNanos, sa.SumNanos+sb.SumNanos)
	}
	for i := range merged.Buckets {
		if merged.Buckets[i] != sa.Buckets[i]+sb.Buckets[i] {
			t.Errorf("bucket %d: merged %d, want %d", i, merged.Buckets[i], sa.Buckets[i]+sb.Buckets[i])
		}
	}
}

func TestSummary(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Microsecond)
	}
	sum := h.Summary()
	if sum.Count != 10 {
		t.Errorf("count = %d, want 10", sum.Count)
	}
	if sum.SumNanos != 50_000 {
		t.Errorf("sum = %d, want 50000", sum.SumNanos)
	}
	// All samples in (4µs, 8µs]: every quantile must land there.
	for name, v := range map[string]int64{"p50": sum.P50Nanos, "p90": sum.P90Nanos, "p99": sum.P99Nanos} {
		if v <= 4000 || v > 8000 {
			t.Errorf("%s = %d, want in (4000, 8000]", name, v)
		}
	}
	if sum.P50Nanos > sum.P90Nanos || sum.P90Nanos > sum.P99Nanos {
		t.Errorf("quantiles not monotone: %+v", sum)
	}
}
