package obs

import (
	"context"
	"sync"
	"testing"
)

// TestSpanNesting runs a synthetic compile pipeline through the tracer
// and pins the span tree: top-level stages in order, sub-stages nested
// under their parent, offsets inside the trace window.
func TestSpanNesting(t *testing.T) {
	tr := NewTracer(8)
	ctx, trace := tr.StartTrace(context.Background(), "compile")

	fctx, frontend := Start(ctx, "frontend")
	_, parse := Start(fctx, "parse")
	parse.End()
	_, sema := Start(fctx, "sema")
	sema.End()
	frontend.End()

	// Note: started from ctx, not fctx, so "encode" is a sibling of
	// "frontend", not a child.
	_, encode := Start(ctx, "encode")
	encode.End()
	trace.Finish()

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("got %d traces, want 1", len(recent))
	}
	ts := recent[0]
	if ts.Name != "compile" || ts.ID == 0 {
		t.Errorf("trace header = %+v", ts)
	}
	if ts.DurationNanos < 0 {
		t.Errorf("negative trace duration %d", ts.DurationNanos)
	}
	if len(ts.Spans) != 2 || ts.Spans[0].Name != "frontend" || ts.Spans[1].Name != "encode" {
		t.Fatalf("top-level spans = %+v, want [frontend encode]", ts.Spans)
	}
	fe := ts.Spans[0]
	if len(fe.Children) != 2 || fe.Children[0].Name != "parse" || fe.Children[1].Name != "sema" {
		t.Fatalf("frontend children = %+v, want [parse sema]", fe.Children)
	}
	if len(ts.Spans[1].Children) != 0 {
		t.Errorf("encode has children: %+v", ts.Spans[1].Children)
	}
	for _, sp := range []SpanSnapshot{fe, fe.Children[0], fe.Children[1], ts.Spans[1]} {
		if sp.OffsetNanos < 0 || sp.DurationNanos < 0 {
			t.Errorf("span %s has negative offset/duration: %+v", sp.Name, sp)
		}
		if sp.OffsetNanos+sp.DurationNanos > ts.DurationNanos {
			t.Errorf("span %s overruns its trace: %+v vs %d", sp.Name, sp, ts.DurationNanos)
		}
	}
	// Children start no earlier than their parent.
	for _, c := range fe.Children {
		if c.OffsetNanos < fe.OffsetNanos {
			t.Errorf("child %s starts before parent: %d < %d", c.Name, c.OffsetNanos, fe.OffsetNanos)
		}
	}
}

// TestRingRetention: the buffer keeps exactly the N most recent traces,
// newest first.
func TestRingRetention(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		_, trace := tr.StartTrace(context.Background(), "req")
		trace.Finish()
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("retained %d traces, want 4", len(recent))
	}
	for i, ts := range recent {
		if want := uint64(10 - i); ts.ID != want {
			t.Errorf("recent[%d].ID = %d, want %d", i, ts.ID, want)
		}
	}
}

// TestDisabledTracingIsFree: nil tracers, traceless contexts, and nil
// spans are all no-ops, so instrumented code paths need no branches.
func TestDisabledTracingIsFree(t *testing.T) {
	var nilTracer *Tracer
	ctx, trace := nilTracer.StartTrace(context.Background(), "x")
	if trace != nil {
		t.Error("nil tracer produced a trace")
	}
	trace.Finish() // must not panic
	if got := nilTracer.Recent(); got != nil {
		t.Errorf("nil tracer Recent() = %v", got)
	}

	ctx2, sp := Start(ctx, "stage")
	if sp != nil {
		t.Error("traceless context produced a span")
	}
	if ctx2 != ctx {
		t.Error("traceless Start changed the context")
	}
	sp.End() // must not panic
}

// TestUnfinishedSpanClamped: a span never closed (abandoned stage
// goroutine) is reported as running to the end of the trace rather than
// with a garbage duration.
func TestUnfinishedSpanClamped(t *testing.T) {
	tr := NewTracer(2)
	ctx, trace := tr.StartTrace(context.Background(), "req")
	Start(ctx, "abandoned") // never ended
	trace.Finish()
	ts := tr.Recent()[0]
	if len(ts.Spans) != 1 {
		t.Fatalf("spans = %+v", ts.Spans)
	}
	sp := ts.Spans[0]
	if sp.DurationNanos < 0 || sp.OffsetNanos+sp.DurationNanos > ts.DurationNanos {
		t.Errorf("abandoned span not clamped: %+v vs trace %d", sp, ts.DurationNanos)
	}
}

// TestConcurrentSpans exercises one trace from many goroutines; run
// under -race this is the data-race gate for the span tree.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(2)
	ctx, trace := tr.StartTrace(context.Background(), "req")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sctx, sp := Start(ctx, "stage")
				_, child := Start(sctx, "sub")
				child.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	trace.Finish()
	ts := tr.Recent()[0]
	if len(ts.Spans) != 8*50 {
		t.Errorf("got %d top-level spans, want %d", len(ts.Spans), 8*50)
	}
	for _, sp := range ts.Spans {
		if len(sp.Children) != 1 || sp.Children[0].Name != "sub" {
			t.Fatalf("span children wrong: %+v", sp)
		}
	}
}
