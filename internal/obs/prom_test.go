package obs

import (
	"strings"
	"testing"
)

// TestPromWriterShapes pins the exposition-format line shapes: HELP/TYPE
// headers, cumulative buckets ending in +Inf, seconds units, sorted
// label order.
func TestPromWriterShapes(t *testing.T) {
	var h Histogram
	h.ObserveNanos(1500) // bucket 1 (1µs, 2µs]
	h.ObserveNanos(1500)
	h.ObserveNanos(900) // bucket 0
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Counter("x_total", "a counter.", 7)
	p.Gauge("x_now", "a gauge.", -3)
	p.CounterVec("x_kills_total", "kills.", "reason", map[string]uint64{
		"step_limit": 2, "alloc_limit": 1,
	})
	p.HistogramVec("x_seconds", "latency.", "stage", map[string]HistogramSnapshot{
		"compile": h.Snapshot(),
	})
	out := sb.String()

	for _, want := range []string{
		"# HELP x_total a counter.\n# TYPE x_total counter\nx_total 7\n",
		"# TYPE x_now gauge\nx_now -3\n",
		// Sorted label order: alloc_limit before step_limit.
		"x_kills_total{reason=\"alloc_limit\"} 1\nx_kills_total{reason=\"step_limit\"} 2\n",
		"# TYPE x_seconds histogram\n",
		"x_seconds_bucket{stage=\"compile\",le=\"1e-06\"} 1\n", // cumulative: bucket 0
		"x_seconds_bucket{stage=\"compile\",le=\"2e-06\"} 3\n", // + bucket 1
		"x_seconds_bucket{stage=\"compile\",le=\"+Inf\"} 3\n",
		"x_seconds_sum{stage=\"compile\"} 3.9e-06\n",
		"x_seconds_count{stage=\"compile\"} 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n--- got ---\n%s", want, out)
		}
	}
	// Every non-comment line belongs to a declared family.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if !strings.HasPrefix(line, "x_") {
			t.Errorf("stray line %q", line)
		}
	}
}

// TestPromWriterConstLabels pins the per-node label rendering used by
// fleet members: the const label appears on every sample line, before
// any per-sample labels, and never in the HELP/TYPE headers.
func TestPromWriterConstLabels(t *testing.T) {
	var h Histogram
	h.ObserveNanos(1500)
	var sb strings.Builder
	p := NewPromWriter(&sb).ConstLabel("node", "a1")
	p.Counter("x_total", "a counter.", 7)
	p.Gauge("x_now", "a gauge.", -3)
	p.CounterVec("x_kills_total", "kills.", "reason", map[string]uint64{"step_limit": 2})
	p.HistogramVec("x_seconds", "latency.", "stage", map[string]HistogramSnapshot{
		"run": h.Snapshot(),
	})
	out := sb.String()

	for _, want := range []string{
		"x_total{node=\"a1\"} 7\n",
		"x_now{node=\"a1\"} -3\n",
		// Const label first, then the vec label.
		"x_kills_total{node=\"a1\",reason=\"step_limit\"} 2\n",
		"x_seconds_bucket{node=\"a1\",stage=\"run\",le=\"+Inf\"} 1\n",
		"x_seconds_sum{node=\"a1\",stage=\"run\"} 1.5e-06\n",
		"x_seconds_count{node=\"a1\",stage=\"run\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n--- got ---\n%s", want, out)
		}
	}
	// Headers stay label-free.
	if !strings.Contains(out, "# HELP x_total a counter.\n# TYPE x_total counter\n") {
		t.Errorf("headers polluted by const labels:\n%s", out)
	}

	// An empty value is skipped entirely: single-node exports keep the
	// historical unlabeled line shape.
	sb.Reset()
	NewPromWriter(&sb).ConstLabel("node", "").Counter("x_total", "a counter.", 1)
	if !strings.Contains(sb.String(), "\nx_total 1\n") {
		t.Errorf("empty const label changed the unlabeled shape:\n%s", sb.String())
	}
}
