// Package obs is the dependency-free observability substrate of the
// pipeline: fixed-bucket latency histograms with lock-free recording and
// quantile estimation, lightweight span tracing propagated via context
// with a ring buffer of recent traces, and a hand-rolled Prometheus
// text-format renderer. It deliberately imports nothing outside the
// standard library so every layer (driver, codeserver, bench, cmd) can
// depend on it without cycles or new dependencies.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of finite histogram buckets. Bucket i holds
// durations in (UpperBound(i-1), UpperBound(i)] nanoseconds with
// UpperBound(i) = 1µs·2^i, so the finite range spans 1µs .. ~134s; one
// extra overflow bucket catches everything beyond. Powers of two keep
// recording at a single bits.Len64 plus one atomic add, and bound the
// quantile-estimation error to a factor of two (see Quantile).
const NumBuckets = 28

// firstBucketNanos is the upper bound of bucket 0 (1µs): pipeline stages
// faster than this are "free" at the resolution this system cares about.
const firstBucketNanos = 1000

// BucketUpperBound returns the inclusive upper bound in nanoseconds of
// bucket i. The overflow bucket (i >= NumBuckets) has no finite bound.
func BucketUpperBound(i int) int64 {
	if i >= NumBuckets {
		return int64(^uint64(0) >> 1) // +Inf bucket
	}
	return firstBucketNanos << uint(i)
}

// bucketIndex maps a nanosecond duration to its bucket. Non-positive
// durations land in bucket 0.
func bucketIndex(ns int64) int {
	if ns <= firstBucketNanos {
		return 0
	}
	i := bits.Len64(uint64(ns-1) / firstBucketNanos)
	if i > NumBuckets {
		return NumBuckets
	}
	return i
}

// Histogram is a fixed-bucket latency histogram. The zero value is ready
// to use; recording is one atomic add per bucket plus sum, so it is safe
// (and cheap) under full concurrency with no locks. A Histogram must not
// be copied after first use.
type Histogram struct {
	buckets [NumBuckets + 1]atomic.Uint64
	sum     atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNanos(int64(d)) }

// ObserveNanos records one duration given in nanoseconds.
func (h *Histogram) ObserveNanos(ns int64) {
	h.buckets[bucketIndex(ns)].Add(1)
	h.sum.Add(ns)
}

// Count returns the total number of recorded observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the total of all recorded durations in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Snapshot copies the current bucket counts. Under concurrent recording
// the copy is not a single atomic cut, but every count it contains was
// true at some point during the call; after recording quiesces it is
// exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.SumNanos = h.sum.Load()
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram's state, the
// input to quantile estimation, merging, and rendering.
type HistogramSnapshot struct {
	Buckets  [NumBuckets + 1]uint64
	Count    uint64
	SumNanos int64
}

// Merge adds another snapshot into this one; counts and sums add
// exactly, so merging per-shard or per-worker histograms loses nothing.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.SumNanos += o.SumNanos
}

// Quantile estimates the q-quantile (0 < q <= 1) in nanoseconds by
// linear interpolation inside the bucket holding the target rank. The
// estimate is always within the true quantile's bucket, so it is off by
// at most a factor of two for values above 1µs. An empty histogram
// reports 0. A rank landing in the overflow bucket has no finite upper
// bound, so it reports BucketUpperBound(NumBuckets) — max int64, the
// "+Inf" saturation marker — rather than silently clamping to the last
// finite bound (~134s) and masquerading as a measurement.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		if i >= NumBuckets {
			return BucketUpperBound(NumBuckets)
		}
		lo := int64(0)
		if i > 0 {
			lo = BucketUpperBound(i - 1)
		}
		hi := BucketUpperBound(i)
		// Position of the target rank inside this bucket, in (0, 1].
		frac := float64(rank-cum) / float64(c)
		return lo + int64(frac*float64(hi-lo))
	}
	return BucketUpperBound(NumBuckets)
}

// LatencySummary is the JSON-friendly digest of one histogram: sample
// count, total time, estimated p50/p90/p99, and the number of samples
// that overflowed the finite bucket range. It is what /stats and
// benchtables -json embed. A nonzero OverflowCount means some samples
// exceeded the ~134s finite range; quantiles whose rank lands among them
// saturate to max int64 instead of reporting a fake finite latency.
type LatencySummary struct {
	Count         uint64 `json:"count"`
	SumNanos      int64  `json:"sum_nanos"`
	OverflowCount uint64 `json:"overflow_count"`
	P50Nanos      int64  `json:"p50_nanos"`
	P90Nanos      int64  `json:"p90_nanos"`
	P99Nanos      int64  `json:"p99_nanos"`
}

// Summary digests the snapshot.
func (s HistogramSnapshot) Summary() LatencySummary {
	return LatencySummary{
		Count:         s.Count,
		SumNanos:      s.SumNanos,
		OverflowCount: s.Buckets[NumBuckets],
		P50Nanos:      s.Quantile(0.50),
		P90Nanos:      s.Quantile(0.90),
		P99Nanos:      s.Quantile(0.99),
	}
}

// Summary digests the histogram's current state.
func (h *Histogram) Summary() LatencySummary {
	s := h.Snapshot()
	return s.Summary()
}
