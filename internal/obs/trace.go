package obs

import (
	"context"
	"sync"
	"time"
)

// Tracer collects per-request traces and retains the N most recent
// completed ones in a ring buffer. A nil *Tracer is a valid disabled
// tracer: StartTrace returns a nil trace and every span operation
// degrades to a no-op, so instrumented code never has to branch on
// whether tracing is on.
type Tracer struct {
	mu     sync.Mutex
	nextID uint64
	cap    int
	ring   []*Trace // oldest first; len(ring) <= cap
}

// NewTracer creates a tracer retaining the most recent capacity traces
// (<=0 for a default of 64).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 64
	}
	return &Tracer{cap: capacity}
}

// Trace is the record of one request: a named root with a tree of
// timed spans underneath. All mutation goes through its mutex so spans
// may be opened from concurrent goroutines of the same request.
type Trace struct {
	mu     sync.Mutex
	id     uint64
	name   string
	start  time.Time
	end    time.Time
	spans  []*Span // top-level spans
	tracer *Tracer
}

// Span is one timed operation inside a trace. Spans nest: a span started
// while another span of the same trace is current in the context becomes
// its child.
type Span struct {
	trace    *Trace
	name     string
	start    time.Time
	end      time.Time
	children []*Span
}

type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
)

// StartTrace opens a new trace and installs it in the returned context.
// Finish must be called to publish the trace into the ring buffer. On a
// nil tracer it returns ctx unchanged and a nil trace.
func (t *Tracer) StartTrace(ctx context.Context, name string) (context.Context, *Trace) {
	if t == nil {
		return ctx, nil
	}
	t.mu.Lock()
	t.nextID++
	tr := &Trace{id: t.nextID, name: name, start: time.Now(), tracer: t}
	t.mu.Unlock()
	return context.WithValue(ctx, traceKey, tr), tr
}

// Finish closes the trace and publishes it as the most recent entry of
// its tracer's ring buffer, evicting the oldest past capacity. Open
// spans are clamped to the trace end. Nil-safe.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.end = time.Now()
	tr.mu.Unlock()
	t := tr.tracer
	t.mu.Lock()
	t.ring = append(t.ring, tr)
	if len(t.ring) > t.cap {
		t.ring = t.ring[len(t.ring)-t.cap:]
	}
	t.mu.Unlock()
}

// Start opens a span named name under the current span (or at the top
// level of the current trace) and returns a context with the new span
// current. Without a trace in ctx it returns ctx unchanged and a nil
// span, whose End is a no-op — instrumentation is free when untraced.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	tr, _ := ctx.Value(traceKey).(*Trace)
	if tr == nil {
		return ctx, nil
	}
	sp := &Span{trace: tr, name: name, start: time.Now()}
	parent, _ := ctx.Value(spanKey).(*Span)
	tr.mu.Lock()
	if parent != nil && parent.trace == tr {
		parent.children = append(parent.children, sp)
	} else {
		tr.spans = append(tr.spans, sp)
	}
	tr.mu.Unlock()
	return context.WithValue(ctx, spanKey, sp), sp
}

// End closes the span. Nil-safe.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.trace.mu.Lock()
	sp.end = time.Now()
	sp.trace.mu.Unlock()
}

// TraceSnapshot is the JSON form of one completed trace, as served by
// /debug/traces.
type TraceSnapshot struct {
	ID             uint64         `json:"id"`
	Name           string         `json:"name"`
	StartUnixNanos int64          `json:"start_unix_nanos"`
	DurationNanos  int64          `json:"duration_nanos"`
	Spans          []SpanSnapshot `json:"spans,omitempty"`
}

// SpanSnapshot is the JSON form of one span: offset is relative to the
// trace start, so a trace reads as a waterfall without absolute clocks.
type SpanSnapshot struct {
	Name          string         `json:"name"`
	OffsetNanos   int64          `json:"offset_nanos"`
	DurationNanos int64          `json:"duration_nanos"`
	Children      []SpanSnapshot `json:"children,omitempty"`
}

// Recent returns snapshots of the retained traces, most recent first.
// Nil-safe (returns nil).
func (t *Tracer) Recent() []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	traces := make([]*Trace, len(t.ring))
	copy(traces, t.ring)
	t.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(traces))
	for i := len(traces) - 1; i >= 0; i-- {
		out = append(out, traces[i].snapshot())
	}
	return out
}

func (tr *Trace) snapshot() TraceSnapshot {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	s := TraceSnapshot{
		ID:             tr.id,
		Name:           tr.name,
		StartUnixNanos: tr.start.UnixNano(),
		DurationNanos:  tr.end.Sub(tr.start).Nanoseconds(),
	}
	for _, sp := range tr.spans {
		s.Spans = append(s.Spans, sp.snapshotLocked(tr.start, tr.end))
	}
	return s
}

func (sp *Span) snapshotLocked(base, clamp time.Time) SpanSnapshot {
	end := sp.end
	if end.IsZero() {
		end = clamp // span never closed: report it as running to the end
	}
	s := SpanSnapshot{
		Name:          sp.name,
		OffsetNanos:   sp.start.Sub(base).Nanoseconds(),
		DurationNanos: end.Sub(sp.start).Nanoseconds(),
	}
	for _, c := range sp.children {
		s.Children = append(s.Children, c.snapshotLocked(base, clamp))
	}
	return s
}
