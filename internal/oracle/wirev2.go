package oracle

import (
	"bytes"
	"fmt"

	"safetsa/internal/core"
	"safetsa/internal/wire"
)

// CheckCanonicalWireV2 asserts the canonical-form invariant for the
// adaptive v2 wire format, per model version: encoding a verified
// module with the given shared dictionary (nil for none), decoding the
// bytes with the same dictionary, and encoding again must reproduce the
// first byte string exactly — the adaptive frequency models update
// symmetrically on both sides, so the spelling is a function of the
// module and the negotiated model alone. The decoded module must also
// be structurally identical to the input.
func CheckCanonicalWireV2(mod *core.Module, dict *wire.Dictionary) error {
	first := wire.EncodeModuleV2(mod, dict)
	dec, err := wire.DecodeModuleOpts(first, wire.DecodeOptions{Dict: dict})
	if err != nil {
		return fmt.Errorf("oracle: v2-encoded module does not decode: %w", err)
	}
	if err := dec.Verify(core.VerifyOptions{}); err != nil {
		return fmt.Errorf("oracle: v2 re-decoded module rejected by verifier: %w", err)
	}
	second := wire.EncodeModuleV2(dec, dict)
	if !bytes.Equal(first, second) {
		return fmt.Errorf("oracle: v2 wire form is not canonical: re-encoding %d bytes yielded %d different bytes",
			len(first), len(second))
	}
	if mod.Dump() != dec.Dump() {
		return fmt.Errorf("oracle: v2 round trip is not structure-preserving")
	}
	return nil
}

// CheckStreamingWire holds the streaming decoder to the non-streaming
// decoder over arbitrary bytes: both must agree on admissibility (a
// unit the full decode+verify path accepts must stream-admit, and one
// it rejects must stream-reject — at any point, with nothing admitted),
// and on acceptance the streamed module must be structurally identical
// to the fully decoded one and executable under the budgets without
// crashing the host.
func CheckStreamingWire(data []byte, b Budgets) error {
	full, fullErr := wire.DecodeVerified(data)
	var streamed *core.Module
	su, streamErr := wire.DecodeVerifiedStream(bytes.NewReader(data), wire.DecodeOptions{})
	if streamErr == nil {
		streamErr = su.Wait()
		streamed = su.Mod
	}
	if (fullErr == nil) != (streamErr == nil) {
		return fmt.Errorf("oracle: streaming and full decode disagree on admissibility:\nfull:   %v\nstream: %v",
			fullErr, streamErr)
	}
	if fullErr != nil {
		return nil // both rejected cleanly: the specified behavior
	}
	if full.Dump() != streamed.Dump() {
		return fmt.Errorf("oracle: streamed module differs structurally from the full decode")
	}
	_, _ = runBounded(streamed, b)
	return nil
}

// CheckAdaptiveWire is the fuzz oracle behind FuzzAdaptiveWire: any
// byte string that passes wire admission (either version) must be in
// canonical form under both the v1 fixed-code and the v2 adaptive
// model, and the streaming decoder must agree with the full decoder on
// both the verdict and the structure. Clean rejections — including the
// version errors a dictionary-bearing stream draws without its
// dictionary — return nil.
func CheckAdaptiveWire(data []byte, b Budgets) error {
	if mod, err := wire.DecodeModule(data); err == nil {
		if err := mod.Verify(core.VerifyOptions{}); err != nil {
			return fmt.Errorf("oracle: decoded module rejected by verifier: %w", err)
		}
		if err := CheckCanonicalWire(mod); err != nil {
			return err
		}
		if err := CheckCanonicalWireV2(mod, nil); err != nil {
			return err
		}
	}
	return CheckStreamingWire(data, b)
}
