package oracle_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/oracle"
	"safetsa/internal/wire"
)

// compiledSeedSources are hand-written programs aimed at the closure
// compiler's hard cases: exception edges whose phi moves are baked into
// call and throw thunks, virtual dispatch re-resolved inside a fused
// call, parallel-move swaps on branch thunks, the evalPrim fallback
// tail (string building), and programs that die on the step or
// allocation budget mid-loop so the three engines' kill points must
// coincide exactly.
var compiledSeedSources = map[string]string{
	"dispatch_chain": `
class A {
    int f() { return 1; }
}
class B extends A {
    int f() { return 2; }
}
class C extends B {
    int f() { return 3; }
}
class Main {
    static int sum(A a, int n) {
        int s = 0;
        for (int i = 0; i < n; i++) {
            s = s + a.f();
        }
        return s;
    }
    static void main() {
        System.out.println(sum(new A(), 5) + sum(new B(), 5) + sum(new C(), 5));
    }
}`,
	"exception_edges_in_calls": `
class Main {
    static int risky(int n) {
        if (n % 4 == 0) { throw new Exception("mod4 " + n); }
        int d = n % 3;
        return 100 / d;
    }
    static void main() {
        int total = 0;
        for (int i = 1; i < 14; i++) {
            int got = 0;
            try {
                got = risky(i);
            } catch (Exception e) {
                got = i;
            }
            total = total + got;
        }
        System.out.println(total);
        try {
            Exception boom = null;
            throw boom;
        } catch (Exception e) {
            System.out.println("null " + e.getMessage());
        }
    }
}`,
	"phi_swap_branches": `
class Main {
    static void main() {
        int a = 1;
        int b = 100;
        int i = 0;
        while (i < 17) {
            int t = a;
            a = b;
            b = t;
            if (i % 2 == 0) { a = a + 1; } else { b = b - 1; }
            i = i + 1;
        }
        System.out.println(a);
        System.out.println(b);
    }
}`,
	"string_fallback_tail": `
class Main {
    static void main() {
        String s = "x";
        double d = 0.5;
        for (int i = 0; i < 6; i++) {
            s = s + i + ":" + (d * i) + ";";
        }
        System.out.println(s);
        System.out.println(s.length());
        System.out.println(s.indexOf("3:"));
    }
}`,
	"compiled_step_kill": `
class Main {
    static void main() {
        int i = 0;
        long s = 0L;
        while (i >= 0) {
            s = s + (i % 13);
            i = i + 1;
            if (i > 1000000000) { i = 0; }
        }
        System.out.println(s);
    }
}`,
	"compiled_alloc_kill": `
class Main {
    static void main() {
        int i = 0;
        String s = "a";
        while (i < 1000000000) {
            s = s + s;
            i = i + 1;
        }
        System.out.println(i);
    }
}`,
}

// compiledSeedModules compiles every compiled seed (and a couple of
// generated fuzz programs), optimized and not, into wire bytes.
func compiledSeedModules(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	add := func(files map[string]string) {
		mod, err := driver.CompileTSASource(files)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, wire.EncodeModule(mod))
		if _, err := driver.OptimizeModule(mod); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, wire.EncodeModule(mod))
	}
	for _, name := range []string{
		"dispatch_chain", "exception_edges_in_calls", "phi_swap_branches",
		"string_fallback_tail", "compiled_step_kill", "compiled_alloc_kill",
	} {
		add(map[string]string{"Main.tj": compiledSeedSources[name]})
	}
	for _, seed := range []string{"c0", "c1"} {
		add(corpus.GenerateFuzz(seed, 4, 3))
	}
	return seeds
}

// FuzzCompiledDifferential fuzzes the three-way engine equivalence
// oracle: every byte string that passes wire admission must behave
// identically on the reference evaluator, the prepared register
// machine, and the closure-threaded compiled engine (output, error,
// kill reason, budget drain, heap checksum). Run by CI both as a 30s
// fuzz-smoke job and, through the checked-in testdata/fuzz corpus, on
// every plain `go test`.
func FuzzCompiledDifferential(f *testing.F) {
	for _, s := range compiledSeedModules(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		if err := oracle.PreparedDifferential(data, fuzzBudgets); err != nil {
			t.Fatal(err)
		}
	})
}

// TestWriteCompiledSeedCorpus regenerates the checked-in seed corpus
// under testdata/fuzz/FuzzCompiledDifferential (replayed by every plain
// `go test` run). Set SAFETSA_WRITE_SEEDS=1 to rewrite the files after
// changing the seed programs or the wire format.
func TestWriteCompiledSeedCorpus(t *testing.T) {
	if os.Getenv("SAFETSA_WRITE_SEEDS") == "" {
		t.Skip("set SAFETSA_WRITE_SEEDS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzCompiledDifferential")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(compiledSeedSources))
	for name := range compiledSeedSources {
		names = append(names, name)
	}
	sort.Strings(names)
	write := func(name string, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range names {
		mod, err := driver.CompileTSASource(map[string]string{"Main.tj": compiledSeedSources[name]})
		if err != nil {
			t.Fatal(err)
		}
		write("seed_"+name, wire.EncodeModule(mod))
		if _, err := driver.OptimizeModule(mod); err != nil {
			t.Fatal(err)
		}
		write("seed_"+name+"_opt", wire.EncodeModule(mod))
	}
}

// TestCompiledDifferentialSeeds replays the seed set directly (without
// the fuzz driver), so the three-way equivalence claims — including the
// mid-run step-kill and alloc-kill drain parity of the budget seeds —
// hold in every ordinary test run, not only under -fuzz.
func TestCompiledDifferentialSeeds(t *testing.T) {
	for name, src := range compiledSeedSources {
		t.Run(name, func(t *testing.T) {
			mod, err := driver.CompileTSASource(map[string]string{"Main.tj": src})
			if err != nil {
				t.Fatal(err)
			}
			if err := oracle.PreparedDifferential(wire.EncodeModule(mod), fuzzBudgets); err != nil {
				t.Fatal(err)
			}
			if _, err := driver.OptimizeModule(mod); err != nil {
				t.Fatal(err)
			}
			if err := oracle.PreparedDifferential(wire.EncodeModule(mod), fuzzBudgets); err != nil {
				t.Fatal(err)
			}
		})
	}
}
