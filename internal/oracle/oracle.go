// Package oracle is the shared correctness-oracle infrastructure behind
// the repo's native fuzzing harnesses (go test -fuzz) and the
// differential test suites. It packages the paper's security and
// fidelity claims as executable invariants:
//
//   - Wire admission (§2/§9): arbitrary bytes pushed through
//     wire.DecodeModule either fail cleanly or yield a module the core
//     verifier accepts — a decoded-but-ill-formed module is an invariant
//     violation, never a fuzz "expected failure". Accepted modules must
//     then execute under step and allocation budgets without crashing
//     the host.
//   - Canonical wire form: encode → decode → re-encode is byte-identical,
//     so a distribution unit has exactly one on-the-wire spelling.
//   - Per-pass verification (metamorphic): the consumer verifier must
//     accept the module after every individual producer optimization
//     pass, not merely after the full -O pipeline.
//   - Four-pipeline differential: the bytecode VM, the plain SafeTSA
//     evaluator, the optimized SafeTSA evaluator, and the wire round
//     trip must print identical output for the same program.
//   - Execution-engine equivalence: every admissible module behaves
//     identically on the reference CST evaluator, the prepared register
//     machine, and the closure-threaded compiled engine — output,
//     errors, budget drain, kill reason, and final heap.
//
// Every function returns nil for "behaved as specified" (including clean
// rejections of bad input) and a descriptive error for an invariant
// violation; harnesses simply t.Fatal on non-nil.
package oracle

import (
	"bytes"
	"fmt"

	"safetsa/internal/core"
	"safetsa/internal/driver"
	"safetsa/internal/interp"
	"safetsa/internal/opt"
	"safetsa/internal/rt"
	"safetsa/internal/wire"
)

// Budgets bounds guest execution inside the oracles. The zero value
// picks defaults suitable for fuzzing (small enough that a hostile
// module cannot stall or bloat the harness, large enough that every
// corpus program finishes).
type Budgets struct {
	MaxSteps int64
	MaxAlloc int64
}

func (b Budgets) orDefaults() Budgets {
	if b.MaxSteps == 0 {
		b.MaxSteps = 1 << 20
	}
	if b.MaxAlloc == 0 {
		b.MaxAlloc = 1 << 22
	}
	return b
}

func (b Budgets) newEnv(out *bytes.Buffer) *rt.Env {
	return &rt.Env{Out: out, MaxSteps: b.MaxSteps, MaxAlloc: b.MaxAlloc}
}

// CheckWire is the referential-integrity property of the paper as an
// executable invariant: data is arbitrary (typically fuzzer-chosen)
// bytes. A malformed stream must be rejected cleanly (nil result); a
// stream that decodes must yield a verifier-clean module in canonical
// wire form, and executing that module under the budgets must terminate
// without panicking the host. Guest-level failures (uncaught exceptions,
// budget exhaustion) are legal outcomes.
func CheckWire(data []byte, b Budgets) error {
	mod, err := wire.DecodeModule(data)
	if err != nil {
		return nil // clean rejection is the specified behavior
	}
	if err := mod.Verify(core.VerifyOptions{}); err != nil {
		return fmt.Errorf("oracle: decoded module rejected by verifier: %w", err)
	}
	// The input spelling need not be canonical (trailing bytes, etc.),
	// but one encode must reach the fixed point immediately.
	if err := CheckCanonicalWire(mod); err != nil {
		return err
	}
	_, _ = runBounded(mod, b)
	return nil
}

// runBounded loads and runs a verified module under budgets; the
// (output, error) pair reports the guest-visible outcome. Host panics
// propagate — the caller (a fuzz harness) wants them fatal.
func runBounded(mod *core.Module, b Budgets) (string, error) {
	b = b.orDefaults()
	var out bytes.Buffer
	env := b.newEnv(&out)
	l, err := interp.LoadTrusted(mod, env)
	if err != nil {
		return out.String(), err
	}
	if mod.Entry < 0 {
		return out.String(), nil
	}
	err = l.RunMain()
	return out.String(), err
}

// CheckCanonicalWire asserts the canonical-form invariant on a verified
// module: encoding it, decoding the bytes, and encoding again must
// reproduce the first byte string exactly. This is what makes the
// content-addressed store sound — one module, one hash.
func CheckCanonicalWire(mod *core.Module) error {
	first := wire.EncodeModule(mod)
	dec, err := wire.DecodeModule(first)
	if err != nil {
		return fmt.Errorf("oracle: encoded module does not decode: %w", err)
	}
	if err := dec.Verify(core.VerifyOptions{}); err != nil {
		return fmt.Errorf("oracle: re-decoded module rejected by verifier: %w", err)
	}
	second := wire.EncodeModule(dec)
	if !bytes.Equal(first, second) {
		return fmt.Errorf("oracle: wire form is not canonical: re-encoding %d bytes yielded %d different bytes",
			len(first), len(second))
	}
	return nil
}

// CheckFrontend pushes arbitrary source bytes through the scanner,
// parser, and semantic checker. Diagnostics are the specified behavior;
// the invariant is only that the front end neither panics nor runs away
// (the fuzz driver supplies the wall clock, the harness caps the input
// size). This is the regression net for scanner/parser hangs on
// adversarial input.
func CheckFrontend(src []byte) error {
	_, _ = driver.Frontend(map[string]string{"Fuzz.tj": string(src)})
	return nil
}

// OptimizePerPass runs the producer optimizer over mod, re-running the
// consumer verifier after each individual pass (the metamorphic oracle:
// no intermediate pipeline state may be unverifiable, because a producer
// that stops after any prefix of the pipeline must still emit admissible
// units).
func OptimizePerPass(mod *core.Module) (opt.Stats, error) {
	return RunPassesVerified(mod, opt.Pipeline())
}

// OptimizeModulePerPass runs the full interprocedural pipeline
// (devirtualization, inlining, check elimination on top of the
// intraprocedural passes) under the same per-pass verification.
func OptimizeModulePerPass(mod *core.Module) (opt.Stats, error) {
	return RunPassesVerifiedOptions(mod, opt.Options{ModuleLevel: true}, opt.ModulePipeline())
}

// RunPassesVerified applies an arbitrary pass sequence with the consumer
// verifier as the after-each-pass oracle; the returned error names the
// first pass whose output the verifier rejects.
func RunPassesVerified(mod *core.Module, passes []opt.Pass) (opt.Stats, error) {
	return RunPassesVerifiedOptions(mod, opt.Options{}, passes)
}

// RunPassesVerifiedOptions is RunPassesVerified with the optimizer
// options threaded through to every pass.
func RunPassesVerifiedOptions(mod *core.Module, o opt.Options, passes []opt.Pass) (opt.Stats, error) {
	return opt.RunPasses(mod, o, passes, func(pass string) error {
		if err := mod.Verify(core.VerifyOptions{}); err != nil {
			return fmt.Errorf("oracle: verifier rejects module after pass %q: %w", pass, err)
		}
		return nil
	})
}

// Differential compiles files through all four pipelines — bytecode VM,
// plain SafeTSA, per-pass-verified optimized SafeTSA, and the wire round
// trip of the optimized module — and requires identical printed output
// everywhere. It returns that output on success. Any compile failure,
// verifier rejection, runtime failure, or divergence is an error: the
// inputs are expected to be valid programs (generated corpus or
// checked-in seeds), so nothing here is a "clean rejection".
func Differential(files map[string]string, b Budgets) (string, error) {
	b = b.orDefaults()
	prog, err := driver.Frontend(files)
	if err != nil {
		return "", fmt.Errorf("oracle: frontend: %w", err)
	}

	bc, err := driver.CompileBytecode(prog)
	if err != nil {
		return "", fmt.Errorf("oracle: bytecode compile: %w", err)
	}
	if err := bc.Verify(); err != nil {
		return "", fmt.Errorf("oracle: bytecode verify: %w", err)
	}
	want, err := driver.RunBytecode(bc, b.MaxSteps)
	if err != nil {
		return want, fmt.Errorf("oracle: bytecode run: %w", err)
	}

	mod, err := driver.CompileTSA(prog)
	if err != nil {
		return want, fmt.Errorf("oracle: safetsa compile: %w", err)
	}
	got, err := runBounded(mod, b)
	if err != nil {
		return want, fmt.Errorf("oracle: plain SafeTSA run: %w", err)
	}
	if got != want {
		return want, divergence("plain SafeTSA", want, got)
	}

	if _, err := OptimizePerPass(mod); err != nil {
		return want, err
	}
	got, err = runBounded(mod, b)
	if err != nil {
		return want, fmt.Errorf("oracle: optimized SafeTSA run: %w", err)
	}
	if got != want {
		return want, divergence("optimized SafeTSA", want, got)
	}

	if err := CheckCanonicalWire(mod); err != nil {
		return want, err
	}
	dec, err := wire.DecodeVerified(wire.EncodeModule(mod))
	if err != nil {
		return want, fmt.Errorf("oracle: wire round trip: %w", err)
	}
	got, err = runBounded(dec, b)
	if err != nil {
		return want, fmt.Errorf("oracle: wire round-trip run: %w", err)
	}
	if got != want {
		return want, divergence("wire round trip", want, got)
	}
	return want, nil
}

// engineRun is the observable outcome of one oracle session: printed
// bytes, error, budget drain, and the loader that owns the final heap.
type engineRun struct {
	out bytes.Buffer
	env *rt.Env
	l   *interp.Loader
	err error
}

// PreparedDifferential is the execution-engine equivalence oracle: any
// byte string that decodes and verifies (i.e. passes wire admission)
// must behave identically on the reference CST evaluator, the prepared
// register machine, and the closure-threaded compiled engine —
// byte-identical output, identical error text and KillReason, identical
// cumulative step/alloc budget drain, and an identical final
// reachable-heap checksum. A verified module that fails to Prepare or
// Compile is itself a violation: both lowerings are total on admissible
// modules.
func PreparedDifferential(data []byte, b Budgets) error {
	mod, err := wire.DecodeModule(data)
	if err != nil {
		return nil // clean rejection, same contract as CheckWire
	}
	if err := mod.Verify(core.VerifyOptions{}); err != nil {
		return fmt.Errorf("oracle: decoded module rejected by verifier: %w", err)
	}
	_, err = engineParity(mod, b)
	return err
}

// engineParity runs a verified module on all three engines, holds the
// prepared and compiled sessions to the reference session bit-exactly,
// and returns the reference session for further comparison.
func engineParity(mod *core.Module, b Budgets) (*engineRun, error) {
	prep, err := interp.Prepare(mod)
	if err != nil {
		return nil, fmt.Errorf("oracle: verified module fails to prepare: %w", err)
	}
	comp, err := interp.Compile(mod, prep)
	if err != nil {
		return nil, fmt.Errorf("oracle: prepared module fails to compile: %w", err)
	}
	b = b.orDefaults()

	run := func(engine string) *engineRun {
		r := &engineRun{}
		r.env = b.newEnv(&r.out)
		switch engine {
		case driver.EnginePrepared:
			r.l, r.err = interp.LoadTrustedPrepared(mod, prep, r.env)
		case driver.EngineCompiled:
			r.l, r.err = interp.LoadTrustedCompiled(mod, comp, r.env)
		default:
			r.l, r.err = interp.LoadTrusted(mod, r.env)
		}
		if r.err != nil || mod.Entry < 0 {
			return r
		}
		r.err = r.l.RunMain()
		return r
	}
	ref := run(driver.EngineReference)
	for _, engine := range []string{driver.EnginePrepared, driver.EngineCompiled} {
		if err := compareEngineRuns(engine, ref, run(engine)); err != nil {
			return ref, err
		}
	}
	return ref, nil
}

// ModuleDifferential is the interprocedural-optimizer oracle: any byte
// string that decodes and verifies must (a) pass three-engine parity as
// it arrived, (b) survive the full module-level pipeline with the
// verifier accepting every intermediate state, (c) still be in canonical
// wire form afterwards, (d) pass three-engine parity again, and (e) —
// when neither session was killed by a budget — print the same bytes,
// fail with the same error, and leave the same reachable heap as the
// untransformed module. Budget drain is deliberately not compared across
// the tiers: spending fewer steps is the point of the optimizer, and a
// kill truncates output at a tier-dependent instant.
func ModuleDifferential(data []byte, b Budgets) error {
	mod, err := wire.DecodeModule(data)
	if err != nil {
		return nil // clean rejection, same contract as CheckWire
	}
	if err := mod.Verify(core.VerifyOptions{}); err != nil {
		return fmt.Errorf("oracle: decoded module rejected by verifier: %w", err)
	}
	base, err := engineParity(mod, b)
	if err != nil {
		return err
	}
	tmod, err := wire.DecodeModule(data)
	if err != nil {
		return fmt.Errorf("oracle: second decode of accepted bytes failed: %w", err)
	}
	if _, err := OptimizeModulePerPass(tmod); err != nil {
		return err
	}
	if err := CheckCanonicalWire(tmod); err != nil {
		return err
	}
	after, err := engineParity(tmod, b)
	if err != nil {
		return err
	}
	if rt.KillReason(base.err) != "" || rt.KillReason(after.err) != "" {
		return nil
	}
	if !bytes.Equal(base.out.Bytes(), after.out.Bytes()) {
		return fmt.Errorf("oracle: module passes change output:\nbefore: %q\nafter:  %q",
			base.out.String(), after.out.String())
	}
	baseMsg, afterMsg := "", ""
	if base.err != nil {
		baseMsg = base.err.Error()
	}
	if after.err != nil {
		afterMsg = after.err.Error()
	}
	if baseMsg != afterMsg {
		return fmt.Errorf("oracle: module passes change the error:\nbefore: %q\nafter:  %q", baseMsg, afterMsg)
	}
	if base.l != nil && after.l != nil {
		if bh, ah := base.l.HeapChecksum(), after.l.HeapChecksum(); bh != ah {
			return fmt.Errorf("oracle: module passes change the reachable heap: %#x vs %#x", bh, ah)
		}
	}
	return nil
}

// compareEngineRuns holds one engine's session to the reference
// session's observables, bit-exactly.
func compareEngineRuns(engine string, ref, got *engineRun) error {
	if !bytes.Equal(ref.out.Bytes(), got.out.Bytes()) {
		return fmt.Errorf("oracle: %s engine output diverges:\nreference: %q\n%s: %q",
			engine, ref.out.String(), engine, got.out.String())
	}
	refMsg, gotMsg := "", ""
	if ref.err != nil {
		refMsg = ref.err.Error()
	}
	if got.err != nil {
		gotMsg = got.err.Error()
	}
	if refMsg != gotMsg {
		return fmt.Errorf("oracle: %s engine error diverges:\nreference: %q\n%s: %q",
			engine, refMsg, engine, gotMsg)
	}
	if rk, gk := rt.KillReason(ref.err), rt.KillReason(got.err); rk != gk {
		return fmt.Errorf("oracle: %s engine kill reason diverges: reference %q, %s %q", engine, rk, engine, gk)
	}
	if ref.env.Steps != got.env.Steps || ref.env.Allocs != got.env.Allocs {
		return fmt.Errorf("oracle: %s engine budget drain diverges: reference %d steps/%d allocs, %s %d steps/%d allocs",
			engine, ref.env.Steps, ref.env.Allocs, engine, got.env.Steps, got.env.Allocs)
	}
	if ref.l != nil && got.l != nil {
		if rh, gh := ref.l.HeapChecksum(), got.l.HeapChecksum(); rh != gh {
			return fmt.Errorf("oracle: %s engine heap diverges: reference %#x, %s %#x", engine, rh, engine, gh)
		}
	}
	return nil
}

func divergence(pipeline, want, got string) error {
	return fmt.Errorf("oracle: %s diverges from bytecode baseline:\nbytecode: %q\n%s: %q",
		pipeline, want, pipeline, got)
}
