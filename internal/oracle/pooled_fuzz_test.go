package oracle_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/oracle"
	"safetsa/internal/wire"
)

// pooledSeedSources aim at the warm-session snapshot machinery's hard
// cases: heavy static initializers (the state a snapshot freezes),
// statics that alias one heap object (the cloner must preserve the
// aliasing, not duplicate the object), init-time output (replayed onto
// clones), object identity fixed during init (clones must preserve ids
// and the id cursor), initializers that die on a budget or an uncaught
// exception (no snapshot may form), and mains that mutate the statics a
// clone inherited.
var pooledSeedSources = map[string]string{
	"init_table": `
class Warm {
    static int[] table = Warm.build();
    static int[] build() {
        int[] t = new int[256];
        for (int i = 0; i < 256; i++) {
            t[i] = i * i % 8191;
        }
        return t;
    }
    static void main() {
        System.out.println(Warm.table[100] + Warm.table[255]);
    }
}`,
	"init_aliased_statics": `
class Share {
    static int[] a = Share.mk();
    static int[] b = Share.a;
    static int[] mk() {
        int[] t = new int[8];
        t[0] = 7;
        return t;
    }
    static void main() {
        Share.a[0] = Share.a[0] + 1;
        System.out.println(Share.b[0]);
    }
}`,
	"init_prints": `
class Chatty {
    static int x = Chatty.announce();
    static int announce() {
        System.out.println("init ran");
        return 41;
    }
    static void main() {
        System.out.println(Chatty.x + 1);
    }
}`,
	"init_object_identity": `
class Node {
    Node next;
}
class Ring {
    static Node head = Ring.mk();
    static Node mk() {
        Node a = new Node();
        Node b = new Node();
        a.next = b;
        b.next = a;
        return a;
    }
    static void main() {
        Node fresh = new Node();
        System.out.println(Ring.head == Ring.head.next.next);
        System.out.println(fresh == Ring.head);
    }
}`,
	"init_throws": `
class Boom {
    static int x = Boom.blow();
    static int blow() {
        throw new Exception("static init exploded");
    }
    static void main() {
        System.out.println(Boom.x);
    }
}`,
	"init_step_kill": `
class Grind {
    static long total = Grind.spin();
    static long spin() {
        long s = 0L;
        int i = 0;
        while (i < 1000000000) {
            s = s + (i % 7);
            i = i + 1;
        }
        return s;
    }
    static void main() {
        System.out.println(Grind.total);
    }
}`,
	"main_mutates_statics": `
class Counter {
    static int n = 100;
    static int[] log = new int[4];
    static void main() {
        for (int i = 0; i < 4; i++) {
            Counter.n = Counter.n + i;
            Counter.log[i] = Counter.n;
        }
        System.out.println(Counter.n + " " + Counter.log[3]);
    }
}`,
}

// pooledSeedModules compiles every pooled seed (plus generated fuzz
// programs), optimized and not, into wire bytes.
func pooledSeedModules(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	add := func(files map[string]string) {
		mod, err := driver.CompileTSASource(files)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, wire.EncodeModule(mod))
		if _, err := driver.OptimizeModule(mod); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, wire.EncodeModule(mod))
	}
	names := make([]string, 0, len(pooledSeedSources))
	for name := range pooledSeedSources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		add(map[string]string{"Main.tj": pooledSeedSources[name]})
	}
	for _, seed := range []string{"p0", "p1"} {
		add(corpus.GenerateFuzz(seed, 4, 3))
	}
	return seeds
}

// FuzzPooledDifferential fuzzes the warm-session-pool soundness oracle:
// for every byte string that passes wire admission, a session cloned
// from a post-static-init snapshot must be byte-exact with a fresh
// session (output, error, kill reason, budget drain, heap checksum) on
// all three engines, and snapshots must pass their publish-time
// self-verification. Run by CI as a fuzz-smoke job and, through the
// checked-in testdata/fuzz corpus, on every plain `go test`.
func FuzzPooledDifferential(f *testing.F) {
	for _, s := range pooledSeedModules(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		if err := oracle.PooledDifferential(data, fuzzBudgets); err != nil {
			t.Fatal(err)
		}
	})
}

// TestWritePooledSeedCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzPooledDifferential. Set SAFETSA_WRITE_SEEDS=1 to
// rewrite the files after changing the seed programs or the wire format.
func TestWritePooledSeedCorpus(t *testing.T) {
	if os.Getenv("SAFETSA_WRITE_SEEDS") == "" {
		t.Skip("set SAFETSA_WRITE_SEEDS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzPooledDifferential")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(pooledSeedSources))
	for name := range pooledSeedSources {
		names = append(names, name)
	}
	sort.Strings(names)
	write := func(name string, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range names {
		mod, err := driver.CompileTSASource(map[string]string{"Main.tj": pooledSeedSources[name]})
		if err != nil {
			t.Fatal(err)
		}
		write("seed_"+name, wire.EncodeModule(mod))
		if _, err := driver.OptimizeModule(mod); err != nil {
			t.Fatal(err)
		}
		write("seed_"+name+"_opt", wire.EncodeModule(mod))
	}
}

// TestPooledDifferentialSeeds replays the seed set directly, so the
// pooled-vs-fresh parity claims — including the init-killed and
// init-throwing cases where no snapshot may form — hold in every
// ordinary test run, not only under -fuzz.
func TestPooledDifferentialSeeds(t *testing.T) {
	for name, src := range pooledSeedSources {
		t.Run(name, func(t *testing.T) {
			mod, err := driver.CompileTSASource(map[string]string{"Main.tj": src})
			if err != nil {
				t.Fatal(err)
			}
			if err := oracle.PooledDifferential(wire.EncodeModule(mod), fuzzBudgets); err != nil {
				t.Fatal(err)
			}
			if _, err := driver.OptimizeModule(mod); err != nil {
				t.Fatal(err)
			}
			if err := oracle.PooledDifferential(wire.EncodeModule(mod), fuzzBudgets); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPooledParityCorpusSweep holds the pooled-session oracle over the
// whole paper corpus on all three engines: every corpus unit, optimized
// and not, must serve byte-exact clones.
func TestPooledParityCorpusSweep(t *testing.T) {
	budgets := oracle.Budgets{MaxSteps: 1 << 22, MaxAlloc: 1 << 24}
	for _, u := range corpus.Units() {
		t.Run(u.Name, func(t *testing.T) {
			mod, err := driver.CompileTSASource(u.Files)
			if err != nil {
				t.Fatal(err)
			}
			if err := oracle.PooledDifferential(wire.EncodeModule(mod), budgets); err != nil {
				t.Fatal(err)
			}
			if _, err := driver.OptimizeModule(mod); err != nil {
				t.Fatal(err)
			}
			if err := oracle.PooledDifferential(wire.EncodeModule(mod), budgets); err != nil {
				t.Fatal(err)
			}
		})
	}
}
