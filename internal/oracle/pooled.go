package oracle

import (
	"bytes"
	"fmt"

	"safetsa/internal/core"
	"safetsa/internal/driver"
	"safetsa/internal/interp"
	"safetsa/internal/wire"
)

// PooledDifferential is the warm-session-pool soundness oracle: for any
// byte string that passes wire admission, a session cloned from a
// post-static-init snapshot must be observationally identical — printed
// output, error text, kill reason, cumulative step/alloc budget drain,
// and final reachable-heap checksum — to a fresh session that ran the
// initializers itself, on every execution engine. It also holds the
// snapshot's publish-time self-verification (Verify) to its contract: a
// snapshot taken from a successful init must always verify.
//
// Modules whose static init fails under the budgets never produce a
// snapshot (mirroring the server, which only pools after a successful
// RunStaticInit), so for them the oracle just checks that the split
// LoadTrustedDeferred+RunStaticInit path agrees with the fused loader.
func PooledDifferential(data []byte, b Budgets) error {
	mod, err := wire.DecodeModule(data)
	if err != nil {
		return nil // clean rejection, same contract as CheckWire
	}
	if err := mod.Verify(core.VerifyOptions{}); err != nil {
		return fmt.Errorf("oracle: decoded module rejected by verifier: %w", err)
	}
	prep, err := interp.Prepare(mod)
	if err != nil {
		return fmt.Errorf("oracle: verified module fails to prepare: %w", err)
	}
	comp, err := interp.Compile(mod, prep)
	if err != nil {
		return fmt.Errorf("oracle: prepared module fails to compile: %w", err)
	}
	b = b.orDefaults()

	engines := []struct {
		name string
		prep *interp.Prepared
		comp *interp.Compiled
	}{
		{driver.EngineReference, nil, nil},
		{driver.EnginePrepared, prep, nil},
		{driver.EngineCompiled, nil, comp},
	}
	for _, e := range engines {
		if err := pooledEngineCheck(mod, e.name, e.prep, e.comp, b); err != nil {
			return err
		}
	}
	return nil
}

// pooledEngineCheck runs the fresh/build/clone trio on one engine and
// compares every observable.
func pooledEngineCheck(mod *core.Module, engine string, prep *interp.Prepared, comp *interp.Compiled, b Budgets) error {
	// Fresh baseline: the fused load-and-init path every earlier PR
	// shipped (init + main in one session).
	fresh := &engineRun{}
	fresh.env = b.newEnv(&fresh.out)
	fresh.l, fresh.err = interp.LoadTrustedDeferred(mod, prep, comp, fresh.env)
	if fresh.err == nil {
		fresh.err = fresh.l.RunStaticInit()
	}
	initFailed := fresh.err != nil
	var build *engineRun
	var snap *interp.Snapshot
	if !initFailed {
		// Init succeeded: this is the session the server would Offer to
		// the pool. Freeze it before main mutates anything.
		var err error
		snap, err = fresh.l.Snapshot(fresh.out.Bytes())
		if err != nil {
			return fmt.Errorf("oracle: %s snapshot after successful init failed: %w", engine, err)
		}
		if err := snap.Verify(); err != nil {
			return fmt.Errorf("oracle: %s snapshot self-verification failed: %w", engine, err)
		}
		build = fresh
		if mod.Entry >= 0 {
			build.err = build.l.RunMain()
		}
	}

	// Reference observable: a second fresh session end-to-end (the first
	// one was consumed as the snapshot builder).
	ref := &engineRun{}
	ref.env = b.newEnv(&ref.out)
	ref.l, ref.err = interp.LoadTrustedDeferred(mod, prep, comp, ref.env)
	if ref.err == nil {
		ref.err = ref.l.RunStaticInit()
		if ref.err == nil && mod.Entry >= 0 {
			ref.err = ref.l.RunMain()
		}
	}

	if initFailed {
		// No snapshot forms; the builder session itself must match the
		// reference (both died mid-init the same way).
		if err := compareEngineRuns(engine+" (init-failed build)", ref, fresh); err != nil {
			return err
		}
		return nil
	}

	if err := compareEngineRuns(engine+" (build session)", ref, build); err != nil {
		return err
	}
	if !snap.Admits(b.MaxSteps, b.MaxAlloc) {
		return fmt.Errorf("oracle: %s snapshot does not admit the budgets that built it (init %d steps/%d allocs under %d/%d)",
			engine, snap.InitSteps(), snap.InitAllocs(), b.MaxSteps, b.MaxAlloc)
	}
	clone := &engineRun{}
	clone.env = b.newEnv(&clone.out)
	clone.l, clone.err = snap.NewSession(clone.env)
	if clone.err != nil {
		return fmt.Errorf("oracle: %s clone session failed: %w", engine, clone.err)
	}
	if mod.Entry >= 0 {
		clone.err = clone.l.RunMain()
	}
	if err := compareEngineRuns(engine+" (pooled clone)", ref, clone); err != nil {
		return err
	}
	// Clone independence: a second clone from the same snapshot must see
	// the frozen state, not the first clone's main-mutated heap.
	var out2 bytes.Buffer
	env2 := b.newEnv(&out2)
	l2, err := snap.NewSession(env2)
	if err != nil {
		return fmt.Errorf("oracle: %s second clone failed: %w", engine, err)
	}
	if got := l2.HeapChecksum(); got != snap.Checksum() {
		return fmt.Errorf("oracle: %s second clone heap %#x != frozen %#x (clones are not isolated)",
			engine, got, snap.Checksum())
	}
	return nil
}
