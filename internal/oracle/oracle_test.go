package oracle

import (
	"errors"
	"strings"
	"testing"

	"safetsa/internal/core"
	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/opt"
	"safetsa/internal/rt"
	"safetsa/internal/wire"
)

const oracleProbe = `
class Main {
    static int f(int a, int b) {
        int c = a * b + 7;
        int d = c - a;
        return c + d;
    }
    static void main() {
        int acc = 0;
        for (int i = 1; i < 10; i++) {
            acc += f(i, i + 2);
        }
        System.out.println(acc);
    }
}`

func compileProbe(t *testing.T) *core.Module {
	t.Helper()
	mod, err := driver.CompileTSASource(map[string]string{"Main.tj": oracleProbe})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return mod
}

// corruptFunc emulates an optimizer bug: it deletes the first
// instruction whose SSA result is still consumed by a later instruction
// in the same block, leaving a dangling operand reference.
func corruptFunc(f *core.Func) bool {
	for _, b := range f.Blocks {
		used := map[core.ValueID]bool{}
		for _, in := range b.Code {
			for _, a := range in.Args {
				used[a] = true
			}
		}
		for i, in := range b.Code {
			if in.HasResult() && used[in.ID] {
				b.Code = append(b.Code[:i], b.Code[i+1:]...)
				return true
			}
		}
	}
	return false
}

// TestPerPassOracleCatchesMisoptimization injects a deliberately broken
// pass into the middle of the pipeline and asserts the per-pass verifier
// oracle rejects the module and names the guilty pass — the module-level
// (-O end-to-end) check alone could attribute the damage to a later
// pass, or miss it entirely if a subsequent pass deleted the evidence.
func TestPerPassOracleCatchesMisoptimization(t *testing.T) {
	mod := compileProbe(t)
	if _, err := OptimizePerPass(mod); err != nil {
		t.Fatalf("honest pipeline must verify after every pass: %v", err)
	}

	mod = compileProbe(t)
	corrupted := false
	evil := opt.Pass{Name: "evil-dce", Run: func(m *core.Module, f *core.Func, o opt.Options, st *opt.Stats) {
		if !corrupted {
			corrupted = corruptFunc(f)
		}
	}}
	passes := opt.Pipeline()
	// Splice the broken pass after the first honest pass.
	passes = append(passes[:1], append([]opt.Pass{evil}, passes[1:]...)...)
	_, err := RunPassesVerified(mod, passes)
	if !corrupted {
		t.Fatal("probe program left nothing for the evil pass to corrupt")
	}
	if err == nil {
		t.Fatal("per-pass oracle accepted a mis-optimized module")
	}
	if !strings.Contains(err.Error(), `after pass "evil-dce"`) {
		t.Fatalf("oracle blamed the wrong pass: %v", err)
	}
}

func TestCanonicalWireOnCorpus(t *testing.T) {
	for _, seed := range []string{"0", "1", "2", "canon"} {
		files := corpus.GenerateFuzz(seed, 5, 4)
		mod, err := driver.CompileTSASource(files)
		if err != nil {
			t.Fatalf("seed %s: %v", seed, err)
		}
		if err := CheckCanonicalWire(mod); err != nil {
			t.Errorf("seed %s unoptimized: %v", seed, err)
		}
		if _, err := OptimizePerPass(mod); err != nil {
			t.Fatalf("seed %s: %v", seed, err)
		}
		if err := CheckCanonicalWire(mod); err != nil {
			t.Errorf("seed %s optimized: %v", seed, err)
		}
	}
}

// TestCheckWireTamper drives the CheckWire oracle over systematically
// tampered encodings of a real unit: every outcome must be a clean
// rejection or a verifier-clean, budget-bounded execution — CheckWire
// returning an error (or panicking) is the bug the fuzz target hunts.
func TestCheckWireTamper(t *testing.T) {
	mod := compileProbe(t)
	data := wire.EncodeModule(mod)
	b := Budgets{MaxSteps: 1 << 16, MaxAlloc: 1 << 18}
	if err := CheckWire(data, b); err != nil {
		t.Fatalf("pristine unit: %v", err)
	}
	for i := 0; i < len(data); i++ {
		for bit := 0; bit < 8; bit += 3 {
			mut := append([]byte(nil), data...)
			mut[i] ^= 1 << bit
			if err := CheckWire(mut, b); err != nil {
				t.Fatalf("tampered byte %d bit %d: %v", i, bit, err)
			}
		}
	}
}

// TestAllocBudgetStopsHostileGrowth checks the defense CheckWire relies
// on: a guest that doubles a string every iteration (2^60 bytes' worth)
// must die on the allocation budget, not take the host down with it.
func TestAllocBudgetStopsHostileGrowth(t *testing.T) {
	src := `
class Main {
    static void main() {
        String s = "xxxxxxxxxxxxxxxx";
        for (int i = 0; i < 60; i++) {
            s = s + s;
        }
        System.out.println(s.length());
    }
}`
	mod, err := driver.CompileTSASource(map[string]string{"Main.tj": src})
	if err != nil {
		t.Fatal(err)
	}
	_, err = runBounded(mod, Budgets{MaxSteps: 1 << 20, MaxAlloc: 1 << 20})
	if !errors.Is(err, rt.ErrAllocLimit) {
		t.Fatalf("hostile growth ended with %v, want ErrAllocLimit", err)
	}
}

func TestCheckFrontendOnGarbage(t *testing.T) {
	for _, src := range []string{
		"", "class", "class Main { static void main() { int x = ; } }",
		"\x80\x80\x80", "/* unterminated", `class A { A a = new A(`,
	} {
		if err := CheckFrontend([]byte(src)); err != nil {
			t.Errorf("CheckFrontend(%q) = %v", src, err)
		}
	}
}
