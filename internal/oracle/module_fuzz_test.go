package oracle_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/oracle"
	"safetsa/internal/wire"
)

// moduleSeedSources aim at the interprocedural pipeline's hard cases:
// branching hierarchies where only class-hierarchy plus rapid-type
// analysis can prove a dispatch monomorphic (and where it must not),
// dispatch-heavy loops through a common root, recursive callees the
// inliner must refuse, small throwing callees whose exception edges get
// stitched into the caller's handlers, and diamonds whose join-point
// checks merge into witness phis.
var moduleSeedSources = map[string]string{
	"branching_hierarchy": `
class Shape { int area() { return 0; } int tag() { return 1; } }
class Square extends Shape {
    int side;
    Square(int s) { side = s; }
    int area() { return side * side; }
}
class Circle extends Shape {
    int r;
    Circle(int r0) { r = r0; }
    int area() { return 3 * r * r; }
}
class Main {
    static void main() {
        Shape a = new Square(4);
        Shape b = new Circle(2);
        System.out.println(a.area() + b.area());
        System.out.println(a.tag() + b.tag());
    }
}`,
	"dispatch_heavy": `
class Cell { int v; int get() { return v; } void put(int x) { v = x; } }
class Main {
    static void main() {
        Cell c = new Cell();
        int total = 0;
        int i = 0;
        while (i < 50) {
            c.put(c.get() + i);
            total = total + c.get();
            i = i + 1;
        }
        System.out.println(total);
    }
}`,
	"uninstantiated_root": `
class Base { int f() { return 0; } }
class Only extends Base { int f() { return 9; } }
class Main {
    static void main() {
        Base b = new Only();
        int s = 0;
        int i = 0;
        while (i < 6) { s = s + b.f(); i = i + 1; }
        System.out.println(s);
    }
}`,
	"recursive_callee": `
class Main {
    static int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    static int bounce(int n) { return drop(n - 1); }
    static int drop(int n) { if (n < 1) { return 0; } return bounce(n); }
    static void main() {
        System.out.println(fib(12));
        System.out.println(bounce(5));
    }
}`,
	"throwing_inlinee": `
class Main {
    static int pick(int[] a, int i) { return a[i]; }
    static int div(int a, int b) { return a / b; }
    static void main() {
        int[] a = new int[4];
        a[2] = 12;
        int r = 0;
        try { r = pick(a, 2) + pick(a, 9); } catch (IndexOutOfBoundsException e) { r = -1; }
        System.out.println(r);
        try { r = div(100, 0); } catch (ArithmeticException e) { r = -2; }
        System.out.println(r);
        System.out.println(pick(a, 2) + div(84, 2));
    }
}`,
	"witness_diamond": `
class Main {
    static int f(int[] a, boolean p) {
        int x = 0;
        if (p) { x = a[2]; } else { x = a[2] + 1; }
        return x + a[2];
    }
    static void main() {
        int[] a = new int[5];
        a[2] = 40;
        System.out.println(f(a, true) + f(a, false));
        System.out.println(f(null, true));
    }
}`,
}

// moduleSeedModules compiles every module seed (plus generated fuzz
// programs), intraprocedurally optimized and not, into wire bytes. The
// module-level tier itself is what the fuzz target applies, so its
// output is not a seed.
func moduleSeedModules(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	add := func(files map[string]string) {
		mod, err := driver.CompileTSASource(files)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, wire.EncodeModule(mod))
		if _, err := driver.OptimizeModule(mod); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, wire.EncodeModule(mod))
	}
	names := make([]string, 0, len(moduleSeedSources))
	for name := range moduleSeedSources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		add(map[string]string{"Main.tj": moduleSeedSources[name]})
	}
	for _, seed := range []string{"m0", "m1"} {
		add(corpus.GenerateFuzz(seed, 4, 3))
	}
	return seeds
}

// FuzzModulePasses fuzzes the interprocedural-optimizer oracle: every
// byte string that passes wire admission must survive the full
// module-level pipeline with the consumer verifier accepting each
// intermediate state, stay in canonical wire form, pass three-engine
// parity before and after, and — kills aside — print the same bytes,
// fail the same way, and leave the same reachable heap as the
// untransformed module. Run by CI as a fuzz-smoke job and, through the
// checked-in testdata/fuzz corpus, on every plain `go test`.
func FuzzModulePasses(f *testing.F) {
	for _, s := range moduleSeedModules(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		if err := oracle.ModuleDifferential(data, fuzzBudgets); err != nil {
			t.Fatal(err)
		}
	})
}

// TestWriteModuleSeedCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzModulePasses. Set SAFETSA_WRITE_SEEDS=1 to rewrite
// the files after changing the seed programs or the wire format.
func TestWriteModuleSeedCorpus(t *testing.T) {
	if os.Getenv("SAFETSA_WRITE_SEEDS") == "" {
		t.Skip("set SAFETSA_WRITE_SEEDS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzModulePasses")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(moduleSeedSources))
	for name := range moduleSeedSources {
		names = append(names, name)
	}
	sort.Strings(names)
	write := func(name string, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range names {
		mod, err := driver.CompileTSASource(map[string]string{"Main.tj": moduleSeedSources[name]})
		if err != nil {
			t.Fatal(err)
		}
		write("seed_"+name, wire.EncodeModule(mod))
		if _, err := driver.OptimizeModule(mod); err != nil {
			t.Fatal(err)
		}
		write("seed_"+name+"_opt", wire.EncodeModule(mod))
	}
}

// TestModuleDifferentialSeeds replays the seed set directly, so the
// interprocedural soundness claims hold in every ordinary test run, not
// only under -fuzz.
func TestModuleDifferentialSeeds(t *testing.T) {
	for name, src := range moduleSeedSources {
		t.Run(name, func(t *testing.T) {
			mod, err := driver.CompileTSASource(map[string]string{"Main.tj": src})
			if err != nil {
				t.Fatal(err)
			}
			if err := oracle.ModuleDifferential(wire.EncodeModule(mod), fuzzBudgets); err != nil {
				t.Fatal(err)
			}
			if _, err := driver.OptimizeModule(mod); err != nil {
				t.Fatal(err)
			}
			if err := oracle.ModuleDifferential(wire.EncodeModule(mod), fuzzBudgets); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestModuleParityCorpusSweep holds the interprocedural oracle over the
// whole paper corpus: every unit at every optimizer tier — opt-off,
// intraprocedural, module-level — must pass three-engine parity, and
// the module-level form must match the opt-off baseline observable for
// observable.
func TestModuleParityCorpusSweep(t *testing.T) {
	budgets := oracle.Budgets{MaxSteps: 1 << 22, MaxAlloc: 1 << 24}
	for _, u := range corpus.Units() {
		t.Run(u.Name, func(t *testing.T) {
			mod, err := driver.CompileTSASource(u.Files)
			if err != nil {
				t.Fatal(err)
			}
			data := wire.EncodeModule(mod)
			// Tier 0 parity, tier 2 per-pass verification + parity,
			// and the tier-0-vs-tier-2 comparison in one oracle call.
			if err := oracle.ModuleDifferential(data, budgets); err != nil {
				t.Fatal(err)
			}
			// Tier 1 (the paper's measured intraprocedural pipeline)
			// through the engine-parity oracle on its own wire bytes.
			if _, err := driver.OptimizeModule(mod); err != nil {
				t.Fatal(err)
			}
			if err := oracle.PreparedDifferential(wire.EncodeModule(mod), budgets); err != nil {
				t.Fatal(err)
			}
		})
	}
}
