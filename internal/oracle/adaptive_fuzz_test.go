package oracle_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"safetsa/internal/core"
	"safetsa/internal/driver"
	"safetsa/internal/oracle"
	"safetsa/internal/wire"
)

// adaptiveSeedSources aim at the adaptive coder's hard cases: skewed
// opcode distributions that drive the per-production contexts far from
// their initial probabilities, string-heavy units where the shared
// dictionary actually fires, and deep control structure exercising the
// CST production contexts.
var adaptiveSeedSources = map[string]string{
	"skewed_opcodes": `
class Main {
    static void main() {
        int s = 0;
        for (int i = 0; i < 40; i++) { s = s + i + i + i + i + i; }
        System.out.println(s);
    }
}`,
	"string_heavy": `
class Main {
    static void main() {
        String a = "shared-prefix-alpha";
        String b = "shared-prefix-beta";
        String c = "shared-prefix-alpha";
        System.out.println(a + b + c);
        System.out.println(a.length() + b.length() + c.length());
    }
}`,
	"deep_control": `
class Main {
    static int f(int n) {
        int r = 0;
        for (int i = 0; i < n; i++) {
            if (i % 3 == 0) { r += 1; } else if (i % 3 == 1) { r += 2; } else { r += 3; }
            try { r += 12 / (i % 5); } catch (ArithmeticException e) { r -= 1; }
        }
        return r;
    }
    static void main() { System.out.println(f(25)); }
}`,
}

// adaptiveSeedModules compiles every seed source in sorted name order.
func adaptiveSeedModules(tb testing.TB) []*core.Module {
	tb.Helper()
	names := make([]string, 0, len(adaptiveSeedSources))
	for name := range adaptiveSeedSources {
		names = append(names, name)
	}
	sort.Strings(names)
	mods := make([]*core.Module, 0, len(names))
	for _, name := range names {
		mod, err := driver.CompileTSASource(map[string]string{"Main.tj": adaptiveSeedSources[name]})
		if err != nil {
			tb.Fatal(err)
		}
		mods = append(mods, mod)
	}
	return mods
}

// adaptiveSeeds emits three wire spellings over the seed bundle: each
// unit fixed-code v1 and adaptive v2, plus one dictionary-bearing v2
// stream (which exercises the version-negotiation rejection path in the
// oracle, since the fuzzer holds no dictionary).
func adaptiveSeeds(f *testing.F) [][]byte {
	f.Helper()
	mods := adaptiveSeedModules(f)
	var seeds [][]byte
	for _, mod := range mods {
		seeds = append(seeds, wire.EncodeModule(mod), wire.EncodeModuleV2(mod, nil))
	}
	if dict := wire.TrainDictionary(mods); dict != nil {
		seeds = append(seeds, wire.EncodeModuleV2(mods[0], dict))
	}
	return seeds
}

// FuzzAdaptiveWire fuzzes the adaptive-wire oracle: every byte string
// that passes admission must be byte-identical under re-encode at both
// model versions, and the streaming decoder must agree with the full
// decoder on verdict and structure under arbitrary mutation. Run by CI
// as a 30s fuzz-smoke job and, through the checked-in testdata/fuzz
// corpus, on every plain `go test`.
func FuzzAdaptiveWire(f *testing.F) {
	for _, s := range adaptiveSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		if err := oracle.CheckAdaptiveWire(data, fuzzBudgets); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAdaptiveWireSeeds replays the seed set directly (clean and under
// a deterministic byte-mutation sweep), so the adaptive byte-identity
// and streaming-agreement claims hold in every ordinary test run, not
// only under -fuzz.
func TestAdaptiveWireSeeds(t *testing.T) {
	for name, src := range adaptiveSeedSources {
		t.Run(name, func(t *testing.T) {
			mod, err := driver.CompileTSASource(map[string]string{"Main.tj": src})
			if err != nil {
				t.Fatal(err)
			}
			for label, data := range map[string][]byte{
				"v1": wire.EncodeModule(mod),
				"v2": wire.EncodeModuleV2(mod, nil),
			} {
				if err := oracle.CheckAdaptiveWire(data, fuzzBudgets); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				// Deterministic mutation sweep: every 7th byte flipped.
				for i := 0; i < len(data); i += 7 {
					mut := append([]byte(nil), data...)
					mut[i] ^= 0x40
					if err := oracle.CheckAdaptiveWire(mut, fuzzBudgets); err != nil {
						t.Fatalf("%s: mutation at byte %d: %v", label, i, err)
					}
				}
			}
		})
	}
}

// TestWriteAdaptiveSeedCorpus regenerates the checked-in seed corpus
// under testdata/fuzz/FuzzAdaptiveWire. Set SAFETSA_WRITE_SEEDS=1 to
// rewrite the files after changing the seed programs or the wire
// format.
func TestWriteAdaptiveSeedCorpus(t *testing.T) {
	if os.Getenv("SAFETSA_WRITE_SEEDS") == "" {
		t.Skip("set SAFETSA_WRITE_SEEDS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzAdaptiveWire")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	names := make([]string, 0, len(adaptiveSeedSources))
	for name := range adaptiveSeedSources {
		names = append(names, name)
	}
	sort.Strings(names)
	mods := adaptiveSeedModules(t)
	dict := wire.TrainDictionary(mods)
	for i, name := range names {
		write("seed_"+name+"_v1", wire.EncodeModule(mods[i]))
		write("seed_"+name+"_v2", wire.EncodeModuleV2(mods[i], nil))
	}
	// One dictionary-bearing stream: decodes only with the trained
	// dictionary, so under the dictionary-less fuzz oracle it pins the
	// clean version-error path.
	if dict != nil {
		write("seed_"+names[0]+"_v2_dict", wire.EncodeModuleV2(mods[0], dict))
	}
}
