package oracle_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/oracle"
	"safetsa/internal/wire"
)

// preparedSeedSources are hand-written programs aimed at the prepared
// compiler's hard cases: operands resolved across deep dominator
// chains, phi-heavy loop nests (including a parallel-move swap), and
// programs that die on the step or allocation budget mid-loop so the
// two engines' kill points must coincide exactly.
var preparedSeedSources = map[string]string{
	"deep_dominator_chain": `
class Main {
    static void main() {
        int a = 1;
        if (a > 0) {
            int b = a + 1;
            if (b > 1) {
                int c = b * 2;
                if (c > 3) {
                    int d = c - a;
                    if (d > 2) {
                        int e = d * b;
                        if (e > 5) {
                            System.out.println(a + b + c + d + e);
                        }
                    }
                }
            }
        }
    }
}`,
	"phi_heavy_loops": `
class Main {
    static void main() {
        int a = 0;
        int b = 1;
        int s = 0;
        for (int i = 0; i < 25; i++) {
            int t = a + b;
            a = b;
            b = t;
            int j = 0;
            while (j < 3) {
                s = s + (t % 7);
                j = j + 1;
            }
        }
        System.out.println(a);
        System.out.println(s);
    }
}`,
	"budget_kill_steps": `
class Main {
    static void main() {
        int i = 0;
        long s = 0L;
        while (i >= 0) {
            s = s + i;
            i = i + 1;
            if (i > 1000000000) { i = 0; }
        }
        System.out.println(s);
    }
}`,
	"budget_kill_allocs": `
class Main {
    static void main() {
        int i = 0;
        while (i < 1000000000) {
            int[] a = new int[64];
            a[0] = i;
            i = i + a.length;
        }
        System.out.println(i);
    }
}`,
	"exceptions_across_frames": `
class Main {
    static int depth(int n) {
        if (n == 0) { throw new Exception("bottom"); }
        try {
            return depth(n - 1);
        } catch (Exception e) {
            if (n % 3 == 0) { throw new Exception("re" + n); }
            return n;
        }
    }
    static void main() {
        try {
            System.out.println(depth(10));
        } catch (Exception e) {
            System.out.println("top " + e.getMessage());
        }
        int d = 0;
        try {
            System.out.println(10 / d);
        } catch (Exception e) {
            System.out.println("div " + e.getMessage());
        }
    }
}`,
}

// fuzzBudgets is deliberately small: the budget-kill seeds must die on
// budget with room to spare inside the 30s CI smoke window.
var fuzzBudgets = oracle.Budgets{MaxSteps: 1 << 16, MaxAlloc: 1 << 18}

// seedModules compiles every prepared seed (and a few generated fuzz
// programs), optimized and not, into wire bytes.
func seedModules(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	add := func(files map[string]string) {
		mod, err := driver.CompileTSASource(files)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, wire.EncodeModule(mod))
		if _, err := driver.OptimizeModule(mod); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, wire.EncodeModule(mod))
	}
	for _, name := range []string{
		"deep_dominator_chain", "phi_heavy_loops", "budget_kill_steps",
		"budget_kill_allocs", "exceptions_across_frames",
	} {
		add(map[string]string{"Main.tj": preparedSeedSources[name]})
	}
	for _, seed := range []string{"p0", "p1"} {
		add(corpus.GenerateFuzz(seed, 4, 3))
	}
	return seeds
}

// FuzzPreparedDifferential fuzzes the prepared-engine equivalence
// oracle: every byte string that passes wire admission must behave
// identically on the reference evaluator and the prepared register
// machine (output, error, kill reason, budget drain, heap checksum).
// Run by CI both as a 30s fuzz-smoke job and, through the checked-in
// testdata/fuzz corpus, on every plain `go test`.
func FuzzPreparedDifferential(f *testing.F) {
	for _, s := range seedModules(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		if err := oracle.PreparedDifferential(data, fuzzBudgets); err != nil {
			t.Fatal(err)
		}
	})
}

// TestWritePreparedSeedCorpus regenerates the checked-in seed corpus
// under testdata/fuzz/FuzzPreparedDifferential (replayed by every plain
// `go test` run). Set SAFETSA_WRITE_SEEDS=1 to rewrite the files after
// changing the seed programs or the wire format.
func TestWritePreparedSeedCorpus(t *testing.T) {
	if os.Getenv("SAFETSA_WRITE_SEEDS") == "" {
		t.Skip("set SAFETSA_WRITE_SEEDS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzPreparedDifferential")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(preparedSeedSources))
	for name := range preparedSeedSources {
		names = append(names, name)
	}
	sort.Strings(names)
	write := func(name string, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range names {
		mod, err := driver.CompileTSASource(map[string]string{"Main.tj": preparedSeedSources[name]})
		if err != nil {
			t.Fatal(err)
		}
		write("seed_"+name, wire.EncodeModule(mod))
		if _, err := driver.OptimizeModule(mod); err != nil {
			t.Fatal(err)
		}
		write("seed_"+name+"_opt", wire.EncodeModule(mod))
	}
}

// TestPreparedDifferentialSeeds replays the seed set directly (without
// the fuzz driver), so the equivalence claims hold in every ordinary
// test run, not only under -fuzz.
func TestPreparedDifferentialSeeds(t *testing.T) {
	for name, src := range preparedSeedSources {
		t.Run(name, func(t *testing.T) {
			mod, err := driver.CompileTSASource(map[string]string{"Main.tj": src})
			if err != nil {
				t.Fatal(err)
			}
			if err := oracle.PreparedDifferential(wire.EncodeModule(mod), fuzzBudgets); err != nil {
				t.Fatal(err)
			}
			if _, err := driver.OptimizeModule(mod); err != nil {
				t.Fatal(err)
			}
			if err := oracle.PreparedDifferential(wire.EncodeModule(mod), fuzzBudgets); err != nil {
				t.Fatal(err)
			}
		})
	}
}
