// Package corpus provides the benchmark programs standing in for the
// paper's Figure 5/6 rows (classes from sun.tools.javac, sun.tools.java,
// sun.math, and Linpack). Rows with a natural open reimplementation are
// hand-written TJ programs (Linpack, the sun.math arithmetic classes, a
// scanner and a recursive-descent parser); the javac front-end classes,
// whose sources cannot be shipped, are produced by a deterministic
// profile-driven generator with a matching workload mix (see DESIGN.md's
// substitution table). Every unit compiles, runs, and prints a checksum,
// so the whole corpus doubles as differential-test input.
package corpus

// PaperRow records the numbers the paper reports for a row; -1 marks
// cells the paper leaves out (N/A) or rows absent from a figure.
type PaperRow struct {
	// Figure 5: file sizes in bytes and instruction counts for Java
	// bytecode, SafeTSA, and optimized SafeTSA.
	BytecodeSize, TSASize, TSAOptSize       int
	BytecodeInstrs, TSAInstrs, TSAOptInstrs int
	// Figure 6: phi / null-check / array-check counts before and after
	// producer-side optimization.
	PhiBefore, PhiAfter     int
	NullBefore, NullAfter   int
	ArrayBefore, ArrayAfter int
}

// Unit is one benchmark row: a self-contained TJ compilation unit.
type Unit struct {
	Name      string
	Group     string
	Generated bool
	Files     map[string]string
	Paper     PaperRow
}

func unit(name, group, src string, generated bool, p PaperRow) Unit {
	return Unit{
		Name:      name,
		Group:     group,
		Generated: generated,
		Files:     map[string]string{name + ".tj": src},
		Paper:     p,
	}
}

// Units returns the corpus in the paper's row order.
func Units() []Unit {
	gen := func(name string, p profile) string { return generate(name, p) }
	objHeavy := func(methods, stmts int) profile {
		return profile{
			methods: methods, stmts: stmts, fields: 6, statics: 2,
			wAssign: 30, wIf: 18, wLoop: 10, wArray: 3, wField: 18,
			wCall: 12, wTry: 3, wString: 6, wList: 8,
		}
	}
	plain := func(methods, stmts int) profile {
		return profile{
			methods: methods, stmts: stmts, fields: 3, statics: 1,
			wAssign: 40, wIf: 20, wLoop: 10, wArray: 2, wField: 15,
			wCall: 10, wTry: 1, wString: 2, wList: 0,
		}
	}

	return []Unit{
		// sun.tools.javac — object/field-heavy front-end classes.
		unit("BatchEnvironment", "sun.tools.javac", gen("BatchEnvironment", objHeavy(26, 8)), true, PaperRow{
			18399, 14605, 13931, 2516, 1640, 1462, 131, 75, 425, 206, 11, 9}),
		unit("BatchParser", "sun.tools.javac", gen("BatchParser", objHeavy(8, 5)), true, PaperRow{
			4939, 3832, 3796, 394, 286, 276, 19, 16, 53, 46, -1, -1}),
		unit("CompilerMember", "sun.tools.javac", gen("CompilerMember", plain(3, 2)), true, PaperRow{
			1192, 401, 397, 50, 29, 28, -1, -1, -1, -1, -1, -1}),
		unit("ErrorMessage", "sun.tools.javac", gen("ErrorMessage", plain(2, 1)), true, PaperRow{
			305, 90, 90, 14, 3, 3, -1, -1, -1, -1, -1, -1}),
		unit("Main", "sun.tools.javac", gen("Main", objHeavy(20, 7)), true, PaperRow{
			11363, 11265, 10813, 1734, 1410, 1281, 330, 301, 246, 155, 53, 49}),
		unit("SourceClass", "sun.tools.javac", gen("SourceClass", objHeavy(22, 8)), true, PaperRow{
			-1, -1, -1, -1, -1, -1, 356, 200, 926, 605, -1, -1}),
		unit("SourceMember", "sun.tools.javac", gen("SourceMember", objHeavy(18, 8)), true, PaperRow{
			13809, 11888, 11246, 1735, 1333, 1169, 221, 123, 327, 261, 12, 12}),

		// sun.tools.java.
		unit("AmbiguousClass", "sun.tools.java", gen("AmbiguousClass", plain(2, 1)), true, PaperRow{
			422, 147, 147, 18, 5, 5, -1, -1, -1, -1, -1, -1}),
		unit("AmbiguousMember", "sun.tools.java", gen("AmbiguousMember", plain(3, 2)), true, PaperRow{
			751, 217, 214, 46, 13, 12, -1, -1, -1, -1, -1, -1}),
		unit("ArrayType", "sun.tools.java", gen("ArrayType", plain(3, 2)), true, PaperRow{
			837, 260, 260, 35, 15, 15, -1, -1, -1, -1, -1, -1}),
		unit("BinaryAttribute", "sun.tools.java", gen("BinaryAttribute", objHeavy(4, 4)), true, PaperRow{
			1716, 944, 854, 121, 77, 64, 12, 7, 19, 12, -1, -1}),
		unit("BinaryClass", "sun.tools.java", gen("BinaryClass", objHeavy(12, 7)), true, PaperRow{
			8156, 6008, 5727, 873, 617, 527, 56, 35, 131, 62, 2, 2}),
		unit("BinaryCode", "sun.tools.java", gen("BinaryCode", objHeavy(4, 5)), true, PaperRow{
			2292, 1536, 1479, 133, 77, 62, 6, 3, 15, 4, 1, 1}),
		unit("Parser", "sun.tools.java", parserSrc, false, PaperRow{
			23945, 23678, 22901, 2578, 1732, 1614, 351, 263, 196, 151, 11, 11}),
		unit("Scanner", "sun.tools.java", scannerSrc, false, PaperRow{
			10540, 11695, 11222, 4240, 2912, 2779, 58, 47, 101, 58, 8, 8}),

		// sun.math — hand-written arithmetic classes.
		unit("BigDecimal", "sun.math", bigDecimalSrc, false, PaperRow{
			6140, 5309, 4926, 935, 702, 612, 54, 35, 119, 73, 26, 16}),
		unit("BigInteger", "sun.math", bigIntegerSrc, false, PaperRow{
			19309, 20009, 18393, 5638, 3463, 3080, 382, 296, 451, 257, 188, 169}),
		unit("BitSieve", "sun.math", bitSieveSrc, false, PaperRow{
			1557, 1155, 1080, 277, 153, 140, 18, 15, 15, 11, 3, 3}),
		unit("MutableBigInteger", "sun.math", mutableBigIntegerSrc, false, PaperRow{
			9667, 10757, 9823, 3415, 2223, 1925, 205, 169, 400, 172, 136, 132}),
		unit("SignedMutableBigInteger", "sun.math", signedMutableSrc, false, PaperRow{
			896, 427, 424, 116, 53, 52, -1, -1, -1, -1, -1, -1}),

		// Linpack.
		unit("Linpack", "Linpack", linpackSrc, false, PaperRow{
			3336, 3512, 3042, 1097, 638, 524, 138, 88, 70, 43, 67, 54}),
	}
}

// ByName finds a unit.
func ByName(name string) (Unit, bool) {
	for _, u := range Units() {
		if u.Name == name {
			return u, true
		}
	}
	return Unit{}, false
}
