package corpus

// scannerSrc is a hand-written tokenizer in TJ, standing in for
// sun.tools.java.Scanner: character classification loops, string
// traffic, and a switch-heavy (if-chain) hot path.
const scannerSrc = scannerNoMain + `
class ScanMain {
    static void main() {
        Scanner s = new Scanner("let x = 10 + 2 * (30 - 4); if x while else foo123");
        Token t = s.next();
        int sum = 0;
        int kinds = 0;
        while (t.kind != 0) {
            sum += t.intValue;
            kinds = kinds * 31 + t.kind;
            t = s.next();
        }
        System.out.println(sum);
        System.out.println(kinds);
        System.out.println(s.tokenCount);
        System.out.println(s.line);
    }
}
`

// parserSrc is a recursive-descent expression parser/evaluator over the
// scanner, standing in for sun.tools.java.Parser: a small class
// hierarchy of tree nodes with virtual evaluation, heavy in dispatch and
// null checks.
const parserSrc = `
class Node {
    int eval() { return 0; }
    int count() { return 1; }
}

class NumNode extends Node {
    int value;
    NumNode(int v) { value = v; }
    int eval() { return value; }
}

class BinNode extends Node {
    int op;
    Node left;
    Node right;
    BinNode(int o, Node l, Node r) {
        op = o;
        left = l;
        right = r;
    }
    int eval() {
        int a = left.eval();
        int b = right.eval();
        if (op == 10) { return a + b; }
        if (op == 11) { return a - b; }
        if (op == 12) { return a * b; }
        if (op == 13) {
            if (b == 0) { return 0; }
            return a / b;
        }
        return 0;
    }
    int count() { return 1 + left.count() + right.count(); }
}

class NegNode extends Node {
    Node operand;
    NegNode(Node x) { operand = x; }
    int eval() { return -operand.eval(); }
    int count() { return 1 + operand.count(); }
}

class Parser {
    Scanner scanner;
    Token cur;
    int errors;

    Parser(String src) {
        scanner = new Scanner(src);
        cur = scanner.next();
        errors = 0;
    }

    void advance() {
        cur = scanner.next();
    }

    boolean accept(int kind) {
        if (cur.kind == kind) {
            advance();
            return true;
        }
        return false;
    }

    Node parseExpr() {
        Node left = parseTerm();
        while (cur.kind == 10 || cur.kind == 11) {
            int op = cur.kind;
            advance();
            left = new BinNode(op, left, parseTerm());
        }
        return left;
    }

    Node parseTerm() {
        Node left = parseFactor();
        while (cur.kind == 12 || cur.kind == 13) {
            int op = cur.kind;
            advance();
            left = new BinNode(op, left, parseFactor());
        }
        return left;
    }

    Node parseFactor() {
        if (cur.kind == 1) {
            Node n = new NumNode(cur.intValue);
            advance();
            return n;
        }
        if (cur.kind == 11) {
            advance();
            return new NegNode(parseFactor());
        }
        if (accept(14)) {
            Node inner = parseExpr();
            if (!accept(15)) {
                errors++;
            }
            return inner;
        }
        errors++;
        advance();
        return new NumNode(0);
    }

    static void main() {
        Parser p = new Parser("1 + 2 * 3 - (4 - 5) * -6");
        Node tree = p.parseExpr();
        System.out.println(tree.eval());
        System.out.println(tree.count());
        System.out.println(p.errors);
        Parser q = new Parser("10 / (3 - 3) + 7 * )");
        Node bad = q.parseExpr();
        System.out.println(bad.eval());
        System.out.println(q.errors);
        System.out.println(tree instanceof BinNode);
    }
}
` + scannerNoMain

// scannerNoMain reuses the scanner classes without their driver.
const scannerNoMain = `
class Token {
    int kind;
    String text;
    int intValue;
    Token(int k, String t, int v) {
        kind = k;
        text = t;
        intValue = v;
    }
}

class Scanner {
    String src;
    int pos;
    int line;
    int tokenCount;

    Scanner(String source) {
        src = source;
        pos = 0;
        line = 1;
        tokenCount = 0;
    }

    boolean isDigit(char c) {
        return c >= '0' && c <= '9';
    }

    boolean isLetter(char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    }

    boolean isSpace(char c) {
        return c == ' ' || c == '\t' || c == '\n';
    }

    char peek() {
        if (pos >= src.length()) {
            return '$';
        }
        return src.charAt(pos);
    }

    void skipSpace() {
        while (pos < src.length() && isSpace(src.charAt(pos))) {
            if (src.charAt(pos) == '\n') {
                line++;
            }
            pos++;
        }
    }

    Token next() {
        skipSpace();
        tokenCount++;
        if (pos >= src.length()) {
            return new Token(0, "<eof>", 0);
        }
        char c = src.charAt(pos);
        if (isDigit(c)) {
            int start = pos;
            int value = 0;
            while (pos < src.length() && isDigit(src.charAt(pos))) {
                value = value * 10 + (src.charAt(pos) - '0');
                pos++;
            }
            return new Token(1, src.substring(start, pos), value);
        }
        if (isLetter(c)) {
            int start = pos;
            while (pos < src.length()
                   && (isLetter(src.charAt(pos)) || isDigit(src.charAt(pos)))) {
                pos++;
            }
            String word = src.substring(start, pos);
            int kind = 2;
            if (word.equals("let")) {
                kind = 3;
            } else if (word.equals("if")) {
                kind = 4;
            } else if (word.equals("else")) {
                kind = 5;
            } else if (word.equals("while")) {
                kind = 6;
            }
            return new Token(kind, word, 0);
        }
        pos++;
        if (c == '+') { return new Token(10, "+", 0); }
        if (c == '-') { return new Token(11, "-", 0); }
        if (c == '*') { return new Token(12, "*", 0); }
        if (c == '/') { return new Token(13, "/", 0); }
        if (c == '(') { return new Token(14, "(", 0); }
        if (c == ')') { return new Token(15, ")", 0); }
        if (c == '=') { return new Token(16, "=", 0); }
        if (c == ';') { return new Token(17, ";", 0); }
        return new Token(99, "?", 0);
    }
}
`
