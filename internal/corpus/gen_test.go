package corpus

import (
	"strings"
	"testing"
)

// TestGeneratorDeterminism: the same seed must always yield the same
// source — the generated corpus rows are fixtures, not randomness.
func TestGeneratorDeterminism(t *testing.T) {
	a := GenerateFuzz("42", 5, 4)
	b := GenerateFuzz("42", 5, 4)
	for name, src := range a {
		if b[name] != src {
			t.Fatalf("seed 42 produced different sources")
		}
	}
	c := GenerateFuzz("43", 5, 4)
	same := true
	for name, src := range a {
		if c["Fz43.tj"] == src {
			_ = name
		} else {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sources")
	}
}

func TestGeneratedUnitsAreStable(t *testing.T) {
	// Units() must be a pure function: two calls agree byte for byte.
	u1 := Units()
	u2 := Units()
	if len(u1) != len(u2) {
		t.Fatal("unit count unstable")
	}
	for i := range u1 {
		for name, src := range u1[i].Files {
			if u2[i].Files[name] != src {
				t.Fatalf("unit %s file %s unstable", u1[i].Name, name)
			}
		}
	}
}

func TestPaperRowsPlausible(t *testing.T) {
	for _, u := range Units() {
		p := u.Paper
		if p.BytecodeInstrs > 0 {
			if p.TSAInstrs >= p.BytecodeInstrs {
				t.Errorf("%s: transcribed paper row has TSA >= bytecode", u.Name)
			}
			if p.TSAOptInstrs > p.TSAInstrs {
				t.Errorf("%s: transcribed paper row grows under optimization", u.Name)
			}
		}
		if p.PhiBefore > 0 && p.PhiAfter > p.PhiBefore {
			t.Errorf("%s: paper phi counts inverted", u.Name)
		}
	}
}

func TestGeneratedSourcesLookLikeTJ(t *testing.T) {
	for _, u := range Units() {
		if !u.Generated {
			continue
		}
		for _, src := range u.Files {
			if !strings.Contains(src, "class "+u.Name) {
				t.Errorf("%s: generated unit lacks its class", u.Name)
			}
			if !strings.Contains(src, "static void main()") {
				t.Errorf("%s: generated unit lacks a driver", u.Name)
			}
			if strings.Count(src, "\n") < 10 {
				t.Errorf("%s: generated unit suspiciously small", u.Name)
			}
		}
	}
}
