package corpus

// bitSieveSrc mirrors sun.math.BitSieve: a bit-packed prime sieve over a
// long array, exercising long arithmetic, shifts, and array checks.
const bitSieveSrc = `
class BitSieve {
    long[] bits;
    int length;

    BitSieve(int searchLen) {
        length = searchLen;
        bits = new long[unitIndex(searchLen - 1) + 1];
        set(0);
        int nextIndex = 1;
        int nextPrime = 3;
        do {
            sieveSingle(searchLen, nextIndex + nextPrime, nextPrime);
            nextIndex = sieveSearch(searchLen, nextIndex + 1);
            nextPrime = 2 * nextIndex + 1;
        } while (nextIndex > 0 && nextPrime < searchLen);
    }

    static int unitIndex(int bitIndex) {
        return bitIndex >> 6;
    }

    static long bit(int bitIndex) {
        return 1L << (bitIndex & 63);
    }

    boolean get(int bitIndex) {
        int ui = unitIndex(bitIndex);
        return (bits[ui] & bit(bitIndex)) != 0L;
    }

    void set(int bitIndex) {
        int ui = unitIndex(bitIndex);
        bits[ui] |= bit(bitIndex);
    }

    int sieveSearch(int limit, int start) {
        if (start >= limit) {
            return -1;
        }
        int index = start;
        do {
            if (!get(index)) {
                return index;
            }
            index++;
        } while (index < limit - 1);
        return -1;
    }

    void sieveSingle(int limit, int start, int step) {
        while (start < limit) {
            set(start);
            start += step;
        }
    }

    int countPrimes() {
        int count = 1; // the prime 2
        for (int i = 1; 2 * i + 1 < length; i++) {
            if (!get(i)) {
                count++;
            }
        }
        return count;
    }

    static void main() {
        BitSieve s = new BitSieve(10000);
        System.out.println(s.countPrimes());
        System.out.println(s.get(7));
        System.out.println(s.sieveSearch(10000, 3));
    }
}
`

// mutableBigIntegerBody mirrors sun.math.MutableBigInteger: magnitude
// arithmetic on int arrays with explicit carries — dense in array and
// null checks, the heart of Figure 6's sun.math rows. The main method is
// appended separately so SignedMutableBigInteger can reuse the class.
const mutableBigIntegerBody = `
class MutableBigInteger {
    int[] value;
    int intLen;
    int offset;

    MutableBigInteger() {
        value = new int[1];
        intLen = 0;
        offset = 0;
    }

    MutableBigInteger(int val) {
        value = new int[1];
        intLen = 1;
        value[0] = val;
        offset = 0;
    }

    MutableBigInteger(int[] val, int len) {
        value = val;
        intLen = len;
        offset = 0;
    }

    void clear() {
        offset = 0;
        intLen = 0;
        for (int index = 0; index < value.length; index++) {
            value[index] = 0;
        }
    }

    boolean isZero() {
        return intLen == 0;
    }

    void normalize() {
        if (intLen == 0) {
            offset = 0;
            return;
        }
        int index = offset;
        if (value[index] != 0) {
            return;
        }
        int indexBound = index + intLen;
        do {
            index++;
        } while (index < indexBound && value[index] == 0);
        int numZeros = index - offset;
        intLen -= numZeros;
        offset = intLen == 0 ? 0 : offset + numZeros;
    }

    int compare(MutableBigInteger b) {
        if (intLen < b.intLen) {
            return -1;
        }
        if (intLen > b.intLen) {
            return 1;
        }
        for (int i = 0; i < intLen; i++) {
            long b1 = (value[offset + i] & 0xFFFFFFFFL);
            long b2 = (b.value[b.offset + i] & 0xFFFFFFFFL);
            if (b1 < b2) {
                return -1;
            }
            if (b1 > b2) {
                return 1;
            }
        }
        return 0;
    }

    int getLowestSetBit() {
        if (intLen == 0) {
            return -1;
        }
        int j = intLen - 1;
        while (j > 0 && value[j + offset] == 0) {
            j--;
        }
        int b = value[j + offset];
        if (b == 0) {
            return -1;
        }
        int bit = 0;
        while ((b & 1) == 0) {
            b >>= 1;
            bit++;
        }
        return ((intLen - 1 - j) << 5) + bit;
    }

    void add(MutableBigInteger addend) {
        int x = intLen;
        int y = addend.intLen;
        int resultLen = intLen > addend.intLen ? intLen : addend.intLen;
        int[] result = value.length < resultLen ? new int[resultLen] : value;

        int rstart = result.length - 1;
        long sum = 0L;
        long carry = 0L;
        while (x > 0 && y > 0) {
            x--;
            y--;
            sum = (value[x + offset] & 0xFFFFFFFFL)
                + (addend.value[y + addend.offset] & 0xFFFFFFFFL) + carry;
            result[rstart] = (int) sum;
            rstart--;
            carry = sum >> 32;
        }
        while (x > 0) {
            x--;
            if (carry == 0L && result == value && rstart == (x + offset)) {
                return;
            }
            sum = (value[x + offset] & 0xFFFFFFFFL) + carry;
            result[rstart] = (int) sum;
            rstart--;
            carry = sum >> 32;
        }
        while (y > 0) {
            y--;
            sum = (addend.value[y + addend.offset] & 0xFFFFFFFFL) + carry;
            result[rstart] = (int) sum;
            rstart--;
            carry = sum >> 32;
        }
        if (carry > 0L) {
            resultLen++;
            if (result.length < resultLen) {
                int[] temp = new int[resultLen];
                for (int i = 0; i < result.length; i++) {
                    temp[temp.length - result.length + i] = result[i];
                }
                temp[0] = 1;
                result = temp;
            } else {
                result[result.length - resultLen] = 1;
            }
        }
        value = result;
        intLen = resultLen;
        offset = result.length - resultLen;
    }

    int subtract(MutableBigInteger b) {
        MutableBigInteger a = this;
        int[] result = value;
        int sign = a.compare(b);
        if (sign == 0) {
            reset();
            return 0;
        }
        if (sign < 0) {
            MutableBigInteger tmp = a;
            a = b;
            b = tmp;
        }
        int resultLen = a.intLen;
        if (result.length < resultLen) {
            result = new int[resultLen];
        }
        long diff = 0L;
        int x = a.intLen;
        int y = b.intLen;
        int rstart = result.length - 1;
        while (y > 0) {
            x--;
            y--;
            diff = (a.value[x + a.offset] & 0xFFFFFFFFL)
                 - (b.value[y + b.offset] & 0xFFFFFFFFL) - ((int) -(diff >> 32));
            result[rstart] = (int) diff;
            rstart--;
        }
        while (x > 0) {
            x--;
            diff = (a.value[x + a.offset] & 0xFFFFFFFFL) - ((int) -(diff >> 32));
            result[rstart] = (int) diff;
            rstart--;
        }
        value = result;
        intLen = resultLen;
        offset = value.length - resultLen;
        normalize();
        return sign;
    }

    void reset() {
        offset = 0;
        intLen = 0;
    }

    void mul(int y, MutableBigInteger z) {
        if (y == 1) {
            z.copyValue(this);
            return;
        }
        if (y == 0) {
            z.clear();
            return;
        }
        long ylong = y & 0xFFFFFFFFL;
        int[] zval = z.value.length < intLen + 1 ? new int[intLen + 1] : z.value;
        long carry = 0L;
        for (int i = intLen - 1; i >= 0; i--) {
            long product = ylong * (value[i + offset] & 0xFFFFFFFFL) + carry;
            zval[i + 1] = (int) product;
            carry = product >> 32;
        }
        zval[0] = (int) carry;
        z.intLen = carry == 0L ? intLen : intLen + 1;
        z.value = zval;
        z.offset = 0;
        z.normalize();
    }

    void copyValue(MutableBigInteger src) {
        int len = src.intLen;
        if (value.length < len) {
            value = new int[len];
        }
        for (int i = 0; i < len; i++) {
            value[value.length - len + i] = src.value[src.offset + i];
        }
        intLen = len;
        offset = value.length - len;
    }

    long toLong() {
        if (intLen == 0) {
            return 0L;
        }
        long d = value[offset] & 0xFFFFFFFFL;
        if (intLen == 1) {
            return d;
        }
        return (d << 32) | (value[offset + 1] & 0xFFFFFFFFL);
    }

}
`

// mutableBigIntegerSrc is the standalone unit: the class plus a driver.
const mutableBigIntegerSrc = mutableBigIntegerBody + `
class MutableMain {
    static void main() {
        MutableBigInteger a = new MutableBigInteger(1000000);
        MutableBigInteger b = new MutableBigInteger(999999);
        a.add(b);
        System.out.println(a.toLong());
        MutableBigInteger c = new MutableBigInteger();
        a.mul(1000, c);
        System.out.println(c.toLong());
        c.subtract(a);
        System.out.println(c.toLong());
        System.out.println(c.compare(a));
        System.out.println(c.getLowestSetBit());
        MutableBigInteger big = new MutableBigInteger(7);
        MutableBigInteger acc = new MutableBigInteger(1);
        for (int i = 0; i < 12; i++) {
            MutableBigInteger t = new MutableBigInteger();
            acc.mul(7, t);
            acc = t;
        }
        System.out.println(acc.toLong());
        System.out.println(big.isZero());
    }
}
`

// signedMutableSrc mirrors SignedMutableBigInteger: a thin signed wrapper
// (one of the small rows of Figure 5).
const signedMutableSrc = `
class SignedMutableBigInteger {
    int sign;
    MutableBigInteger mag;

    SignedMutableBigInteger() {
        sign = 1;
        mag = new MutableBigInteger();
    }

    SignedMutableBigInteger(int val) {
        sign = val < 0 ? -1 : 1;
        mag = new MutableBigInteger(val < 0 ? -val : val);
    }

    void signedAdd(SignedMutableBigInteger addend) {
        if (sign == addend.sign) {
            mag.add(addend.mag);
        } else {
            sign = sign * mag.subtract(addend.mag);
        }
    }

    void signedSubtract(SignedMutableBigInteger addend) {
        if (sign != addend.sign) {
            mag.add(addend.mag);
        } else {
            sign = sign * mag.subtract(addend.mag);
        }
        if (mag.isZero()) {
            sign = 1;
        }
    }

    long signedValue() {
        return sign * mag.toLong();
    }

    static void main() {
        SignedMutableBigInteger a = new SignedMutableBigInteger(500);
        SignedMutableBigInteger b = new SignedMutableBigInteger(-300);
        a.signedAdd(b);
        System.out.println(a.signedValue());
        a.signedSubtract(new SignedMutableBigInteger(900));
        System.out.println(a.signedValue());
        a.signedAdd(new SignedMutableBigInteger(700));
        System.out.println(a.signedValue());
    }
}
` + mutableBigIntegerBody

// bigIntegerSrc is a magnitude-array big-integer in the style of
// java.math.BigInteger (the biggest sun.math row): immutable values,
// add/subtract/multiply/shift/compare/parse/toString(decimal).
const bigIntegerSrc = `
class BigInteger {
    int signum;
    int[] mag;

    BigInteger(int signum, int[] mag) {
        this.signum = mag.length == 0 ? 0 : signum;
        this.mag = mag;
    }

    static BigInteger valueOf(long val) {
        int sig = 1;
        if (val == 0L) {
            return new BigInteger(0, new int[0]);
        }
        if (val < 0L) {
            sig = -1;
            val = -val;
        }
        int hi = (int) (val >> 32);
        if (hi == 0) {
            int[] m = new int[1];
            m[0] = (int) val;
            return new BigInteger(sig, m);
        }
        int[] m = new int[2];
        m[0] = hi;
        m[1] = (int) val;
        return new BigInteger(sig, m);
    }

    static int[] trusted(int[] val) {
        int keep = 0;
        while (keep < val.length && val[keep] == 0) {
            keep++;
        }
        if (keep == 0) {
            return val;
        }
        int[] r = new int[val.length - keep];
        for (int i = 0; i < r.length; i++) {
            r[i] = val[keep + i];
        }
        return r;
    }

    static int compareMag(int[] a, int[] b) {
        if (a.length < b.length) {
            return -1;
        }
        if (a.length > b.length) {
            return 1;
        }
        for (int i = 0; i < a.length; i++) {
            long x = a[i] & 0xFFFFFFFFL;
            long y = b[i] & 0xFFFFFFFFL;
            if (x < y) {
                return -1;
            }
            if (x > y) {
                return 1;
            }
        }
        return 0;
    }

    static int[] addMag(int[] x, int[] y) {
        if (x.length < y.length) {
            int[] tmp = x;
            x = y;
            y = tmp;
        }
        int xIndex = x.length;
        int yIndex = y.length;
        int[] result = new int[xIndex];
        long sum = 0L;
        while (yIndex > 0) {
            xIndex--;
            yIndex--;
            sum = (x[xIndex] & 0xFFFFFFFFL) + (y[yIndex] & 0xFFFFFFFFL) + (sum >> 32);
            result[xIndex] = (int) sum;
        }
        boolean carry = (sum >> 32) != 0L;
        while (xIndex > 0 && carry) {
            xIndex--;
            result[xIndex] = x[xIndex] + 1;
            carry = result[xIndex] == 0;
        }
        while (xIndex > 0) {
            xIndex--;
            result[xIndex] = x[xIndex];
        }
        if (carry) {
            int[] bigger = new int[result.length + 1];
            for (int i = 0; i < result.length; i++) {
                bigger[i + 1] = result[i];
            }
            bigger[0] = 1;
            return bigger;
        }
        return result;
    }

    static int[] subMag(int[] big, int[] little) {
        int bigIndex = big.length;
        int[] result = new int[bigIndex];
        int littleIndex = little.length;
        long difference = 0L;
        while (littleIndex > 0) {
            bigIndex--;
            littleIndex--;
            difference = (big[bigIndex] & 0xFFFFFFFFL)
                       - (little[littleIndex] & 0xFFFFFFFFL) + (difference >> 32);
            result[bigIndex] = (int) difference;
        }
        boolean borrow = (difference >> 32) != 0L;
        while (bigIndex > 0 && borrow) {
            bigIndex--;
            result[bigIndex] = big[bigIndex] - 1;
            borrow = big[bigIndex] == 0;
        }
        while (bigIndex > 0) {
            bigIndex--;
            result[bigIndex] = big[bigIndex];
        }
        return trusted(result);
    }

    BigInteger add(BigInteger val) {
        if (val.signum == 0) {
            return this;
        }
        if (signum == 0) {
            return val;
        }
        if (val.signum == signum) {
            return new BigInteger(signum, addMag(mag, val.mag));
        }
        int cmp = compareMag(mag, val.mag);
        if (cmp == 0) {
            return valueOf(0L);
        }
        int[] resultMag = cmp > 0 ? subMag(mag, val.mag) : subMag(val.mag, mag);
        return new BigInteger(cmp == (signum < 0 ? -1 : 1) ? 1 : -1, resultMag);
    }

    BigInteger subtract(BigInteger val) {
        return add(new BigInteger(-val.signum, val.mag));
    }

    BigInteger multiply(BigInteger val) {
        if (signum == 0 || val.signum == 0) {
            return valueOf(0L);
        }
        int[] x = mag;
        int[] y = val.mag;
        int[] z = new int[x.length + y.length];
        int xstart = x.length - 1;
        int ystart = y.length - 1;
        long carry = 0L;
        int k = ystart + 1 + xstart;
        for (int j = ystart; j >= 0; j--) {
            long product = (y[j] & 0xFFFFFFFFL) * (x[xstart] & 0xFFFFFFFFL) + carry;
            z[k] = (int) product;
            carry = product >> 32;
            k--;
        }
        z[xstart] = (int) carry;
        for (int i = xstart - 1; i >= 0; i--) {
            carry = 0L;
            k = ystart + 1 + i;
            for (int j = ystart; j >= 0; j--) {
                long product = (y[j] & 0xFFFFFFFFL) * (x[i] & 0xFFFFFFFFL)
                             + (z[k] & 0xFFFFFFFFL) + carry;
                z[k] = (int) product;
                carry = product >> 32;
                k--;
            }
            z[i] = (int) carry;
        }
        return new BigInteger(signum * val.signum, trusted(z));
    }

    BigInteger shiftLeft(int n) {
        if (signum == 0 || n == 0) {
            return this;
        }
        int nInts = n >> 5;
        int nBits = n & 31;
        int magLen = mag.length;
        int[] newMag;
        if (nBits == 0) {
            newMag = new int[magLen + nInts];
            for (int i = 0; i < magLen; i++) {
                newMag[i] = mag[i];
            }
        } else {
            int i = 0;
            int nBits2 = 32 - nBits;
            int highBits = mag[0] >> nBits2 & ((1 << nBits) - 1);
            if (highBits != 0) {
                newMag = new int[magLen + nInts + 1];
                newMag[i] = highBits;
                i++;
            } else {
                newMag = new int[magLen + nInts];
            }
            int j = 0;
            while (j < magLen - 1) {
                newMag[i] = mag[j] << nBits | (mag[j + 1] >> nBits2 & ((1 << nBits) - 1));
                i++;
                j++;
            }
            newMag[i] = mag[j] << nBits;
        }
        return new BigInteger(signum, newMag);
    }

    int compareTo(BigInteger val) {
        if (signum == val.signum) {
            return signum >= 0 ? compareMag(mag, val.mag) : compareMag(val.mag, mag);
        }
        return signum > val.signum ? 1 : -1;
    }

    long longValue() {
        long result = 0L;
        for (int i = 0; i < mag.length; i++) {
            result = (result << 32) + (mag[i] & 0xFFFFFFFFL);
        }
        return signum * result;
    }

    String toDecimal() {
        if (signum == 0) {
            return "0";
        }
        int[] work = new int[mag.length];
        for (int i = 0; i < mag.length; i++) {
            work[i] = mag[i];
        }
        String digits = "";
        boolean nonzero = true;
        while (nonzero) {
            long rem = 0L;
            nonzero = false;
            for (int i = 0; i < work.length; i++) {
                long cur = (rem << 32) + (work[i] & 0xFFFFFFFFL);
                work[i] = (int) (cur / 10L);
                rem = cur % 10L;
                if (work[i] != 0) {
                    nonzero = true;
                }
            }
            digits = "" + rem + digits;
        }
        return (signum < 0 ? "-" : "") + digits;
    }

    static void main() {
        BigInteger a = valueOf(123456789L);
        BigInteger b = valueOf(987654321L);
        BigInteger c = a.multiply(b);
        System.out.println(c.toDecimal());
        System.out.println(c.add(a).subtract(a).compareTo(c));
        BigInteger big = valueOf(1L);
        for (int i = 0; i < 5; i++) {
            big = big.multiply(valueOf(1000000007L));
        }
        System.out.println(big.toDecimal());
        System.out.println(big.shiftLeft(7).toDecimal());
        System.out.println(a.subtract(b).toDecimal());
        System.out.println(valueOf(-42L).longValue());
    }
}
`

// bigDecimalSrc mirrors a scaled-decimal type over the big integer.
const bigDecimalSrc = `
class BigDecimal {
    long intVal;
    int scale;

    BigDecimal(long val, int scale) {
        intVal = val;
        this.scale = scale;
    }

    static long pow10(int n) {
        long r = 1L;
        for (int i = 0; i < n; i++) {
            r *= 10L;
        }
        return r;
    }

    static BigDecimal valueOf(long unscaled, int scale) {
        return new BigDecimal(unscaled, scale);
    }

    BigDecimal setScale(int newScale) {
        if (newScale == scale) {
            return this;
        }
        if (newScale > scale) {
            return new BigDecimal(intVal * pow10(newScale - scale), newScale);
        }
        long factor = pow10(scale - newScale);
        long half = factor / 2L;
        long q = intVal / factor;
        long r = intVal - q * factor;
        if (r >= half) {
            q += 1L;
        }
        if (-r >= half) {
            q -= 1L;
        }
        return new BigDecimal(q, newScale);
    }

    BigDecimal add(BigDecimal other) {
        int s = scale > other.scale ? scale : other.scale;
        BigDecimal a = setScale(s);
        BigDecimal b = other.setScale(s);
        return new BigDecimal(a.intVal + b.intVal, s);
    }

    BigDecimal subtract(BigDecimal other) {
        int s = scale > other.scale ? scale : other.scale;
        BigDecimal a = setScale(s);
        BigDecimal b = other.setScale(s);
        return new BigDecimal(a.intVal - b.intVal, s);
    }

    BigDecimal multiply(BigDecimal other) {
        return new BigDecimal(intVal * other.intVal, scale + other.scale);
    }

    int compareTo(BigDecimal other) {
        BigDecimal d = subtract(other);
        if (d.intVal == 0L) {
            return 0;
        }
        return d.intVal > 0L ? 1 : -1;
    }

    int signum() {
        if (intVal == 0L) {
            return 0;
        }
        return intVal > 0L ? 1 : -1;
    }

    String show() {
        if (scale == 0) {
            return "" + intVal;
        }
        long f = pow10(scale);
        long whole = intVal / f;
        long frac = intVal % f;
        if (frac < 0L) {
            frac = -frac;
        }
        String fs = "" + frac;
        while (fs.length() < scale) {
            fs = "0" + fs;
        }
        return whole + "." + fs;
    }

    static void main() {
        BigDecimal price = valueOf(19995, 2);
        BigDecimal tax = price.multiply(valueOf(825, 4)).setScale(2);
        BigDecimal total = price.add(tax);
        System.out.println(price.show());
        System.out.println(tax.show());
        System.out.println(total.show());
        System.out.println(total.compareTo(price));
        System.out.println(total.subtract(total).signum());
        BigDecimal acc = valueOf(0, 2);
        for (int i = 1; i <= 10; i++) {
            acc = acc.add(valueOf(i * 111, 2));
        }
        System.out.println(acc.show());
    }
}
`
