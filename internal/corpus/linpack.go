package corpus

// linpackSrc is a faithful TJ port of the classic Linpack benchmark
// (matgen/dgefa/dgesl/daxpy/ddot/dscal/idamax/epslon), the paper's
// array-check workload: Figure 6 reports a 19% array-check reduction and
// 39% null-check reduction on it.
const linpackSrc = `
class Linpack {
    static int n = 60;

    static double abs(double d) {
        return d >= 0.0 ? d : -d;
    }

    static double matgen(double[][] a, int lda, int n, double[] b) {
        double norma = 0.0;
        int init = 1325;
        for (int j = 0; j < n; j++) {
            for (int i = 0; i < n; i++) {
                init = 3125 * init % 65536;
                a[j][i] = (init - 32768.0) / 16384.0;
                norma = a[j][i] > norma ? a[j][i] : norma;
            }
        }
        for (int i = 0; i < n; i++) {
            b[i] = 0.0;
        }
        for (int j = 0; j < n; j++) {
            for (int i = 0; i < n; i++) {
                b[i] += a[j][i];
            }
        }
        return norma;
    }

    static int idamax(int n, double[] dx, int dxOff, int incx) {
        int itemp = 0;
        if (n < 1) {
            return -1;
        }
        if (n == 1) {
            return 0;
        }
        if (incx != 1) {
            double dmax = abs(dx[0 + dxOff]);
            int ix = 1 + incx;
            for (int i = 1; i < n; i++) {
                if (abs(dx[ix + dxOff]) > dmax) {
                    itemp = i;
                    dmax = abs(dx[ix + dxOff]);
                }
                ix += incx;
            }
            return itemp;
        }
        double dmax = abs(dx[dxOff]);
        for (int i = 1; i < n; i++) {
            if (abs(dx[i + dxOff]) > dmax) {
                itemp = i;
                dmax = abs(dx[i + dxOff]);
            }
        }
        return itemp;
    }

    static void dscal(int n, double da, double[] dx, int dxOff, int incx) {
        if (n <= 0) {
            return;
        }
        if (incx != 1) {
            int nincx = n * incx;
            for (int i = 0; i < nincx; i += incx) {
                dx[i + dxOff] *= da;
            }
            return;
        }
        for (int i = 0; i < n; i++) {
            dx[i + dxOff] *= da;
        }
    }

    static void daxpy(int n, double da, double[] dx, int dxOff, int incx,
                      double[] dy, int dyOff, int incy) {
        if (n <= 0) {
            return;
        }
        if (da == 0.0) {
            return;
        }
        if (incx != 1 || incy != 1) {
            int ix = 0;
            int iy = 0;
            if (incx < 0) { ix = (-n + 1) * incx; }
            if (incy < 0) { iy = (-n + 1) * incy; }
            for (int i = 0; i < n; i++) {
                dy[iy + dyOff] += da * dx[ix + dxOff];
                ix += incx;
                iy += incy;
            }
            return;
        }
        for (int i = 0; i < n; i++) {
            dy[i + dyOff] += da * dx[i + dxOff];
        }
    }

    static double ddot(int n, double[] dx, int dxOff, int incx,
                       double[] dy, int dyOff, int incy) {
        double dtemp = 0.0;
        if (n <= 0) {
            return 0.0;
        }
        if (incx != 1 || incy != 1) {
            int ix = 0;
            int iy = 0;
            if (incx < 0) { ix = (-n + 1) * incx; }
            if (incy < 0) { iy = (-n + 1) * incy; }
            for (int i = 0; i < n; i++) {
                dtemp += dx[ix + dxOff] * dy[iy + dyOff];
                ix += incx;
                iy += incy;
            }
            return dtemp;
        }
        for (int i = 0; i < n; i++) {
            dtemp += dx[i + dxOff] * dy[i + dyOff];
        }
        return dtemp;
    }

    static int dgefa(double[][] a, int lda, int n, int[] ipvt) {
        int info = 0;
        int nm1 = n - 1;
        if (nm1 >= 0) {
            for (int k = 0; k < nm1; k++) {
                double[] colK = a[k];
                int kp1 = k + 1;
                int l = idamax(n - k, colK, k, 1) + k;
                ipvt[k] = l;
                if (colK[l] != 0.0) {
                    if (l != k) {
                        double t = colK[l];
                        colK[l] = colK[k];
                        colK[k] = t;
                    }
                    double t = -1.0 / colK[k];
                    dscal(n - kp1, t, colK, kp1, 1);
                    for (int j = kp1; j < n; j++) {
                        double[] colJ = a[j];
                        double u = colJ[l];
                        if (l != k) {
                            colJ[l] = colJ[k];
                            colJ[k] = u;
                        }
                        daxpy(n - kp1, u, colK, kp1, 1, colJ, kp1, 1);
                    }
                } else {
                    info = k;
                }
            }
        }
        ipvt[n - 1] = n - 1;
        if (a[n - 1][n - 1] == 0.0) {
            info = n - 1;
        }
        return info;
    }

    static void dgesl(double[][] a, int lda, int n, int[] ipvt, double[] b, int job) {
        int nm1 = n - 1;
        if (job == 0) {
            if (nm1 >= 1) {
                for (int k = 0; k < nm1; k++) {
                    int l = ipvt[k];
                    double t = b[l];
                    if (l != k) {
                        b[l] = b[k];
                        b[k] = t;
                    }
                    int kp1 = k + 1;
                    daxpy(n - kp1, t, a[k], kp1, 1, b, kp1, 1);
                }
            }
            for (int kb = 0; kb < n; kb++) {
                int k = n - (kb + 1);
                b[k] /= a[k][k];
                double t = -b[k];
                daxpy(k, t, a[k], 0, 1, b, 0, 1);
            }
            return;
        }
        for (int k = 0; k < n; k++) {
            double t = ddot(k, a[k], 0, 1, b, 0, 1);
            b[k] = (b[k] - t) / a[k][k];
        }
        if (nm1 >= 1) {
            for (int kb = 1; kb < nm1; kb++) {
                int k = n - (kb + 1);
                int kp1 = k + 1;
                b[k] += ddot(n - kp1, a[k], kp1, 1, b, kp1, 1);
                int l = ipvt[k];
                if (l != k) {
                    double t = b[l];
                    b[l] = b[k];
                    b[k] = t;
                }
            }
        }
    }

    static double epslon(double x) {
        double a = 4.0 / 3.0;
        double eps = 0.0;
        while (eps == 0.0) {
            double bb = a - 1.0;
            double c = bb + bb + bb;
            eps = abs(c - 1.0);
        }
        return eps * abs(x);
    }

    static void dmxpy(int n1, double[] y, int n2, int ldm, double[] x, double[][] m) {
        for (int j = 0; j < n2; j++) {
            for (int i = 0; i < n1; i++) {
                y[i] += x[j] * m[j][i];
            }
        }
    }

    static void main() {
        int lda = n + 1;
        double[][] a = new double[n][lda];
        double[] b = new double[n];
        double[] x = new double[n];
        int[] ipvt = new int[n];

        double norma = matgen(a, lda, n, b);
        dgefa(a, lda, n, ipvt);
        dgesl(a, lda, n, ipvt, b, 0);

        for (int i = 0; i < n; i++) {
            x[i] = b[i];
        }
        norma = matgen(a, lda, n, b);
        for (int i = 0; i < n; i++) {
            b[i] = -b[i];
        }
        dmxpy(n, b, n, lda, x, a);
        double resid = 0.0;
        double normx = 0.0;
        for (int i = 0; i < n; i++) {
            resid = resid > abs(b[i]) ? resid : abs(b[i]);
            normx = normx > abs(x[i]) ? normx : abs(x[i]);
        }
        double eps = epslon(1.0);
        double residn = resid / (n * norma * normx * eps);
        System.out.println("residn ok: " + (residn < 100.0));
        System.out.println("normx: " + (abs(normx - 1.0) < 0.1));
    }
}
`
