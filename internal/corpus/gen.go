package corpus

import (
	"fmt"
	"strings"
)

// profile shapes one generated class to approximate the workload mix of
// a Figure 5 row: object/field-heavy for the javac classes, with tunable
// amounts of loops, arrays, calls, conditionals, exceptions, and string
// traffic. Generation is fully deterministic (seeded by the class name),
// bounded (every loop has a constant trip count), and closed (calls only
// reach earlier methods), so each generated unit compiles, verifies,
// terminates, and prints a checksum for the differential tests.
type profile struct {
	methods int // number of generated methods
	stmts   int // statements per method
	fields  int // instance int fields
	statics int // static int fields

	// Per-template weights (need not sum to anything particular).
	wAssign, wIf, wLoop, wArray, wField, wCall, wTry, wString, wList int
}

// rng is a splitmix64 generator; no package state, fully reproducible.
type rng struct{ s uint64 }

func newRng(seed string) *rng {
	var h uint64 = 0x9E3779B97F4A7C15
	for i := 0; i < len(seed); i++ {
		h = (h ^ uint64(seed[i])) * 0xBF58476D1CE4E5B9
	}
	return &rng{s: h}
}

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// pick selects a template index by weight.
func (r *rng) pick(weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	v := r.intn(total)
	for i, w := range weights {
		if v < w {
			return i
		}
		v -= w
	}
	return len(weights) - 1
}

// genState tracks the scope of one generated method body.
type genState struct {
	r      *rng
	sb     *strings.Builder
	indent string
	cls    string
	ints   []string // int variables in scope (readable)
	// writable excludes loop variables: reassigning an induction
	// variable from a template could make a loop diverge.
	writable []string
	methods  int // index of the method being generated (calls reach < this)
	fields   int
	statics  int
	static   bool
	// isStatic records the staticness of every already-generated method.
	isStatic []bool
	tmp      int
	// loopDepth and callBudget keep the call graph linear: calls are
	// never generated inside loops and at most one per method, so the
	// dynamic call tree cannot blow up exponentially.
	loopDepth  int
	callBudget int
}

func (g *genState) linef(format string, args ...interface{}) {
	g.sb.WriteString(g.indent)
	fmt.Fprintf(g.sb, format, args...)
	g.sb.WriteByte('\n')
}

// expr yields a small int expression over the in-scope values.
func (g *genState) expr(depth int) string {
	r := g.r
	atom := func() string {
		switch r.intn(4) {
		case 0:
			return fmt.Sprintf("%d", r.intn(97)+1)
		case 1:
			return g.ints[r.intn(len(g.ints))]
		case 2:
			if g.fields > 0 && !g.static {
				return fmt.Sprintf("f%d", r.intn(g.fields))
			}
			return g.ints[r.intn(len(g.ints))]
		default:
			if g.statics > 0 {
				return fmt.Sprintf("s%d", r.intn(g.statics))
			}
			return fmt.Sprintf("%d", r.intn(13)+2)
		}
	}
	if depth <= 0 || r.intn(3) == 0 {
		return atom()
	}
	ops := []string{"+", "-", "*", "&", "|", "^"}
	return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), ops[r.intn(len(ops))], g.expr(depth-1))
}

func (g *genState) cond() string {
	cmp := []string{"<", ">", "<=", ">=", "==", "!="}
	return fmt.Sprintf("%s %s %s", g.expr(1), cmp[g.r.intn(len(cmp))], g.expr(1))
}

func (g *genState) newVar() string {
	v := fmt.Sprintf("t%d", g.tmp)
	g.tmp++
	return v
}

// target picks an assignable variable.
func (g *genState) target() string {
	return g.writable[g.r.intn(len(g.writable))]
}

// stmt emits one statement from the weighted templates.
func (g *genState) stmt(p profile, depth int) {
	r := g.r
	weights := []int{p.wAssign, p.wIf, p.wLoop, p.wArray, p.wField, p.wCall,
		p.wTry, p.wString, p.wList}
	if depth > 2 {
		weights = []int{p.wAssign, 0, 0, 0, p.wField, p.wCall, 0, 0, 0}
	}
	switch g.r.pick(weights) {
	case 0: // assignment to an existing or fresh int
		if r.intn(3) == 0 {
			v := g.newVar()
			g.linef("int %s = %s;", v, g.expr(2))
			g.ints = append(g.ints, v)
			g.writable = append(g.writable, v)
		} else {
			g.linef("%s = %s;", g.target(), g.expr(2))
		}
	case 1: // if/else
		g.linef("if (%s) {", g.cond())
		g.nested(func() {
			g.stmt(p, depth+1)
			g.stmt(p, depth+1)
		})
		if r.intn(2) == 0 {
			g.linef("} else {")
			g.nested(func() { g.stmt(p, depth+1) })
		}
		g.linef("}")
	case 2: // bounded counting loop
		i := g.newVar()
		acc := g.target()
		g.linef("for (int %s = 0; %s < %d; %s++) {", i, i, r.intn(12)+3, i)
		g.loopDepth++
		g.nested(func() {
			g.ints = append(g.ints, i)
			g.linef("%s += %s * %d;", acc, i, r.intn(9)+1)
			g.stmt(p, depth+1)
		})
		g.loopDepth--
		g.linef("}")
	case 3: // array fill and reduce
		a := g.newVar()
		i := g.newVar()
		j := g.newVar()
		acc := g.target()
		n := r.intn(12) + 4
		g.linef("int[] %s = new int[%d];", a, n)
		g.linef("for (int %s = 0; %s < %s.length; %s++) {", i, i, a, i)
		g.nested(func() {
			g.linef("%s[%s] = %s * %d + %s;", a, i, i, r.intn(7)+1, g.ints[r.intn(len(g.ints))])
		})
		g.linef("}")
		g.linef("for (int %s = 0; %s < %s.length; %s++) {", j, j, a, j)
		g.nested(func() {
			g.linef("%s += %s[%s] * %s[%s];", acc, a, j, a, j)
		})
		g.linef("}")
	case 4: // field traffic
		if g.statics > 0 && (g.static || r.intn(2) == 0) {
			g.linef("s%d = s%d + %s;", r.intn(g.statics), r.intn(g.statics), g.expr(1))
		} else if g.fields > 0 && !g.static {
			g.linef("f%d = f%d + %s;", r.intn(g.fields), r.intn(g.fields), g.expr(1))
		} else {
			g.linef("%s = %s;", g.target(), g.expr(2))
		}
	case 5: // call an earlier method (static callers may only reach statics)
		if g.loopDepth > 0 || g.callBudget <= 0 {
			g.linef("%s = %s ^ %s;", g.target(),
				g.ints[r.intn(len(g.ints))], g.expr(1))
			return
		}
		g.callBudget--
		var targets []int
		for t := 0; t < g.methods; t++ {
			if !g.static || g.isStatic[t] {
				targets = append(targets, t)
			}
		}
		if len(targets) == 0 {
			g.linef("%s = %s + 1;", g.target(), g.ints[r.intn(len(g.ints))])
			return
		}
		target := targets[r.intn(len(targets))]
		recv := "this."
		if g.isStatic[target] {
			recv = g.cls + "."
		}
		g.linef("%s = %sm%d(%s, %s);", g.target(), recv, target,
			g.expr(1), g.expr(1))
	case 6: // guarded division in a try
		acc := g.target()
		g.linef("try {")
		g.nested(func() {
			g.linef("%s = %s / (%s %% %d);", acc, g.expr(1), g.expr(1), r.intn(5)+2)
		})
		g.linef("} catch (ArithmeticException e) {")
		g.nested(func() { g.linef("%s = %d;", acc, r.intn(50)) })
		g.linef("}")
	case 7: // string traffic
		s := g.newVar()
		g.linef("String %s = \"%c\" + %s;", s, 'a'+rune(r.intn(26)), g.ints[r.intn(len(g.ints))])
		g.linef("%s += %s.length();", g.target(), s)
	case 8: // linked-list build and walk (javac-style object traffic)
		node := g.cls + "Data"
		head := g.newVar()
		i := g.newVar()
		cur := g.newVar()
		acc := g.target()
		g.linef("%s %s = null;", node, head)
		g.linef("for (int %s = 0; %s < %d; %s++) {", i, i, r.intn(6)+3, i)
		g.nested(func() {
			g.linef("%s nn = new %s();", node, node)
			g.linef("nn.a = %s * %d;", i, r.intn(9)+1)
			g.linef("nn.next = %s;", head)
			g.linef("%s = nn;", head)
		})
		g.linef("}")
		g.linef("%s %s = %s;", node, cur, head)
		g.linef("while (%s != null) {", cur)
		g.nested(func() {
			g.linef("%s += %s.a;", acc, cur)
			g.linef("%s = %s.next;", cur, cur)
		})
		g.linef("}")
	}
}

// nested runs f one indent level deeper; locals declared inside the block
// go out of scope when it closes.
func (g *genState) nested(f func()) {
	saved := g.indent
	savedInts := len(g.ints)
	savedW := len(g.writable)
	g.indent += "    "
	f()
	g.indent = saved
	g.ints = g.ints[:savedInts]
	g.writable = g.writable[:savedW]
}

// GenerateFuzz renders a random-but-deterministic TJ program for
// differential fuzzing: any seed yields a compiling, terminating unit
// whose class is named Fz<n> and whose main prints a checksum.
func GenerateFuzz(seed string, methods, stmts int) map[string]string {
	name := "Fz" + seed
	p := profile{
		methods: methods, stmts: stmts, fields: 4, statics: 2,
		wAssign: 28, wIf: 18, wLoop: 12, wArray: 8, wField: 12,
		wCall: 8, wTry: 5, wString: 4, wList: 5,
	}
	return map[string]string{name + ".tj": generate(name, p)}
}

// generate renders one class (plus its data helper when linked lists are
// in the mix) for a Figure 5 row.
func generate(name string, p profile) string {
	r := newRng(name)
	var sb strings.Builder

	if p.wList > 0 {
		fmt.Fprintf(&sb, "class %sData {\n    int a;\n    double w;\n    %sData next;\n}\n\n",
			name, name)
	}
	fmt.Fprintf(&sb, "class %s {\n", name)
	for i := 0; i < p.fields; i++ {
		fmt.Fprintf(&sb, "    int f%d;\n", i)
	}
	for i := 0; i < p.statics; i++ {
		fmt.Fprintf(&sb, "    static int s%d = %d;\n", i, r.intn(100))
	}
	sb.WriteByte('\n')

	var isStatic []bool
	for mi := 0; mi < p.methods; mi++ {
		static := r.intn(3) == 0
		mod := ""
		if static {
			mod = "static "
		}
		fmt.Fprintf(&sb, "    %sint m%d(int a0, int a1) {\n", mod, mi)
		g := &genState{
			r: r, sb: &sb, indent: "        ", cls: name,
			ints:     []string{"a0", "a1", "acc"},
			writable: []string{"a0", "a1", "acc"},
			methods:  mi, fields: p.fields, statics: p.statics, static: static,
			isStatic: isStatic, callBudget: 1,
		}
		g.linef("int acc = a0 - a1;")
		for si := 0; si < p.stmts; si++ {
			g.stmt(p, 0)
		}
		g.linef("return acc;")
		sb.WriteString("    }\n\n")
		isStatic = append(isStatic, static)
	}

	// Deterministic driver printing a checksum.
	sb.WriteString("    static void main() {\n")
	fmt.Fprintf(&sb, "        %s o = new %s();\n", name, name)
	sb.WriteString("        int acc = 0;\n")
	calls := p.methods
	if calls > 6 {
		calls = 6
	}
	for i := 0; i < calls; i++ {
		target := r.intn(p.methods)
		recv := "o"
		if isStatic[target] {
			recv = name
		}
		fmt.Fprintf(&sb, "        acc = acc * 31 + %s.m%d(%d, %d);\n",
			recv, target, r.intn(20), r.intn(20))
	}
	sb.WriteString("        System.out.println(acc);\n")
	// Route the checksum through double arithmetic as well, so every
	// generated program also exercises Double.toString fidelity across
	// the decimal/scientific regime boundaries (1e-3 and 1e7) and the
	// signed-zero case — the formatting paths the int checksum never
	// touches.
	sb.WriteString("        double dacc = acc;\n")
	sb.WriteString("        System.out.println(dacc / 3.0);\n")
	sb.WriteString("        System.out.println(dacc * 1.0e7);\n")
	sb.WriteString("        System.out.println(dacc / 1.0e5);\n")
	sb.WriteString("        System.out.println(-0.0 * dacc);\n")
	sb.WriteString("    }\n}\n")
	return sb.String()
}
