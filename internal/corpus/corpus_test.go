package corpus_test

import (
	"strings"
	"testing"

	"safetsa/internal/core"
	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/wire"
)

// TestCorpusAllPipelines is the workhorse integration test: every corpus
// unit must compile through the front end, the SafeTSA pipeline (plain
// and optimized), the wire round trip, and the bytecode baseline — and
// all four executions must print identical output.
func TestCorpusAllPipelines(t *testing.T) {
	for _, u := range corpus.Units() {
		u := u
		t.Run(u.Name, func(t *testing.T) {
			prog, err := driver.Frontend(u.Files)
			if err != nil {
				t.Fatalf("frontend: %v", err)
			}

			bc, err := driver.CompileBytecode(prog)
			if err != nil {
				t.Fatalf("bytecode: %v", err)
			}
			if err := bc.Verify(); err != nil {
				t.Fatalf("bytecode verify: %v", err)
			}
			want, err := driver.RunBytecode(bc, 200_000_000)
			if err != nil {
				t.Fatalf("bytecode run: %v (out %q)", err, want)
			}
			if strings.TrimSpace(want) == "" {
				t.Fatalf("unit printed nothing — checksum missing")
			}

			tsa, err := driver.CompileTSA(prog)
			if err != nil {
				t.Fatalf("safetsa: %v", err)
			}
			got, err := driver.RunModule(tsa, 200_000_000)
			if err != nil {
				t.Fatalf("safetsa run: %v", err)
			}
			if got != want {
				t.Fatalf("SafeTSA diverges:\nbytecode %q\nsafetsa  %q", want, got)
			}

			if _, err := driver.OptimizeModule(tsa); err != nil {
				t.Fatalf("optimize: %v", err)
			}
			gotOpt, err := driver.RunModule(tsa, 200_000_000)
			if err != nil {
				t.Fatalf("optimized run: %v", err)
			}
			if gotOpt != want {
				t.Fatalf("optimized SafeTSA diverges:\nbytecode  %q\noptimized %q", want, gotOpt)
			}

			data := wire.EncodeModule(tsa)
			dec, err := wire.DecodeModule(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if err := dec.Verify(core.VerifyOptions{}); err != nil {
				t.Fatalf("decoded verify: %v", err)
			}
			gotWire, err := driver.RunModule(dec, 200_000_000)
			if err != nil {
				t.Fatalf("decoded run: %v", err)
			}
			if gotWire != want {
				t.Fatalf("decoded module diverges:\nbytecode %q\ndecoded  %q", want, gotWire)
			}
		})
	}
}

func TestUnitNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, u := range corpus.Units() {
		if seen[u.Name] {
			t.Errorf("duplicate unit %s", u.Name)
		}
		seen[u.Name] = true
	}
	if _, ok := corpus.ByName("Linpack"); !ok {
		t.Error("Linpack missing")
	}
	if _, ok := corpus.ByName("NoSuchRow"); ok {
		t.Error("phantom unit found")
	}
}
