package wire

import (
	"fmt"
	"io"
	"sync"

	"safetsa/internal/core"
)

// StreamingUnit is a distribution unit being decoded and verified
// incrementally behind an io.Reader. The symbol tables are complete and
// statically verified before the constructor returns; function bodies
// are admitted one by one, in transmission (dominator pre-) order, each
// passing the full per-function plane-counter verification the moment
// it arrives. A consumer may begin executing any admitted function —
// WaitFunc provides the gate — while later functions are still in
// flight. Any failure, at any point, poisons the whole unit: WaitFunc
// and Wait report the error, and nothing may be cached unless Wait
// returns nil.
//
// Soundness sketch (DESIGN.md §11): the admitted prefix is exactly as
// trustworthy as a fully decoded unit because (a) the tables are
// immutable and statically verified up front, (b) a function's
// verification depends only on the tables and its own body, (c) the
// cross-table residue — method↔body backlinks and static-initializer
// signatures — is enforced per arrival against the claims the method
// table made, and (d) the final VerifyTables re-checks everything
// before Wait can succeed.
type StreamingUnit struct {
	// Mod has complete, verified tables from construction time. Funcs
	// is pre-sized; slot i is published only after function i is
	// admitted (synchronized through WaitFunc).
	Mod *core.Module

	nFuncs    int
	entryNeed int // highest func index needed to begin main, -1 if none

	claims    map[int32]int32 // func index -> method that declares it as body
	staticSet map[int32]bool

	mu         sync.Mutex
	cond       *sync.Cond
	ready      int
	done       bool
	err        error
	boundaries []int64
}

// DecodeVerifiedStream begins a streaming decode. It consumes the
// header and symbol tables synchronously (failing fast on anything a
// non-streaming decode would reject about them) and decodes the
// function bodies on a background goroutine. The returned unit's Wait
// must return nil before the unit is treated as fully admitted.
func DecodeVerifiedStream(r io.Reader, o DecodeOptions) (su *StreamingUnit, err error) {
	defer func() {
		if p := recover(); p != nil {
			su, err = nil, malformedf("invalid structure: %v", p)
		}
	}()
	src := &byteSource{r: r}
	sr, err := newStreamReader(src, o, false)
	if err != nil {
		return nil, err
	}
	d := &decoder{r: sr, m: &core.Module{Types: core.NewTypeTable()}}
	nFuncs, err := d.decodeTables()
	if err != nil {
		return nil, err
	}
	if err := d.m.VerifyTablesStatic(); err != nil {
		return nil, malformedf("inconsistent tables: %v", err)
	}

	su = &StreamingUnit{Mod: d.m, nFuncs: nFuncs, entryNeed: -1}
	su.cond = sync.NewCond(&su.mu)

	// The function-linked residue of VerifyTables cannot run yet, but
	// the method table's claims can be pinned now: every body index in
	// range, and no two methods sharing one body. Each arriving
	// function is then checked against these claims, so no admitted
	// prefix can ever dispatch a body under the wrong signature.
	su.claims = make(map[int32]int32)
	for i := range d.m.Methods {
		fi := d.m.Methods[i].FuncIdx
		if fi < 0 {
			continue
		}
		if int(fi) >= nFuncs {
			return nil, malformedf("method %d: body index out of range", i)
		}
		if _, dup := su.claims[fi]; dup {
			return nil, malformedf("two methods claim function %d as their body", fi)
		}
		su.claims[fi] = int32(i)
	}
	su.staticSet = make(map[int32]bool)
	for i, si := range d.m.StaticInit {
		if si < 0 {
			continue
		}
		if int(si) >= nFuncs {
			return nil, malformedf("static initializer %d out of range", i)
		}
		su.staticSet[si] = true
		if int(si) > su.entryNeed {
			su.entryNeed = int(si)
		}
	}
	if d.m.Entry >= 0 && int(d.m.Entry) < len(d.m.Methods) {
		if fi := d.m.Methods[d.m.Entry].FuncIdx; fi >= 0 && int(fi) > su.entryNeed {
			su.entryNeed = int(fi)
		}
	}

	d.m.Funcs = make([]*core.Func, nFuncs)
	go su.run(d, sr, src)
	return su, nil
}

// run is the background decode loop: decode, verify, publish, repeat;
// then the canonical-tail and final whole-unit table checks.
func (su *StreamingUnit) run(d *decoder, r symReader, src *byteSource) {
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = malformedf("invalid structure: %v", p)
			}
		}()
		for j := 0; j < su.nFuncs; j++ {
			f, err := d.decodeFunc()
			if err != nil {
				return fmt.Errorf("function %d: %w", j, err)
			}
			if err := su.admit(j, f); err != nil {
				return err
			}
			su.mu.Lock()
			su.Mod.Funcs[j] = f
			su.ready = j + 1
			su.boundaries = append(su.boundaries, src.off)
			su.cond.Broadcast()
			su.mu.Unlock()
		}
		if err := r.end(); err != nil {
			return err
		}
		if err := su.Mod.VerifyTables(); err != nil {
			return malformedf("inconsistent tables: %v", err)
		}
		return nil
	}()
	su.mu.Lock()
	su.done = true
	su.err = err
	su.cond.Broadcast()
	su.mu.Unlock()
}

// admit runs the per-function admission: the plane-counter verifier
// over the body, plus the incremental half of the cross-table residue —
// exactly as strict as the final VerifyTables, no more and no less, so
// the streaming and the full decoder always agree on admissibility. The
// residue checks only the method→body direction (a method that claims j
// must be named back by f); an orphan function naming a method that
// never dispatches it is tolerated by both paths.
func (su *StreamingUnit) admit(j int, f *core.Func) error {
	if mi, ok := su.claims[int32(j)]; ok && f.Method != mi {
		return malformedf("function %d: body belongs to another method", j)
	}
	if su.staticSet[int32(j)] && (f.Method >= 0 || len(f.Params) != 0) {
		return malformedf("static initializer %d has a signature", j)
	}
	if err := su.Mod.VerifyFunc(f, core.VerifyOptions{}); err != nil {
		return fmt.Errorf("wire: streamed function %d rejected by verifier: %w", j, err)
	}
	return nil
}

// NumFuncs reports the declared function count.
func (su *StreamingUnit) NumFuncs() int { return su.nFuncs }

// Ready reports how many functions (a prefix) are currently admitted.
func (su *StreamingUnit) Ready() int {
	su.mu.Lock()
	defer su.mu.Unlock()
	return su.ready
}

// WaitFunc blocks until function i has been admitted, returning nil,
// or until the stream has failed, returning its error. This is the
// execution gate: after a nil return, Mod.Funcs[i] is published and
// fully verified.
func (su *StreamingUnit) WaitFunc(i int) error {
	if i < 0 || i >= su.nFuncs {
		return malformedf("function index %d out of range", i)
	}
	su.mu.Lock()
	defer su.mu.Unlock()
	for su.ready <= i && !su.done {
		su.cond.Wait()
	}
	if su.ready > i {
		return nil
	}
	return su.streamErr()
}

// WaitEntry blocks until every function needed to begin main — the
// static initializers and the entry method's body — has been admitted.
func (su *StreamingUnit) WaitEntry() error {
	if su.entryNeed < 0 {
		return nil
	}
	return su.WaitFunc(su.entryNeed)
}

// Wait blocks until the entire unit is decoded, verified, and ended
// cleanly. Only a nil return makes the unit cacheable; any mid-stream
// failure surfaces here even if execution of the admitted prefix
// already completed.
func (su *StreamingUnit) Wait() error {
	su.mu.Lock()
	defer su.mu.Unlock()
	for !su.done {
		su.cond.Wait()
	}
	return su.err
}

// Err reports the stream's terminal error without blocking (nil while
// in flight or on success).
func (su *StreamingUnit) Err() error {
	su.mu.Lock()
	defer su.mu.Unlock()
	if !su.done {
		return nil
	}
	return su.err
}

func (su *StreamingUnit) streamErr() error {
	if su.err != nil {
		return su.err
	}
	return malformedf("stream ended before the requested function")
}

// Boundaries returns the byte offset just past each function, valid
// after Wait returns nil — the cut points for partial-delivery tests.
func (su *StreamingUnit) Boundaries() []int64 {
	su.mu.Lock()
	defer su.mu.Unlock()
	return append([]int64(nil), su.boundaries...)
}

// byteSource adapts an io.Reader to io.ByteReader with a small buffer
// and a consumed-byte count. It never reads ahead of demand more than
// the buffer size, and — critically for streaming — a short Read is
// accepted as-is, so bytes are handed to the decoder as soon as the
// transport delivers them.
type byteSource struct {
	r    io.Reader
	buf  [4096]byte
	i, n int
	off  int64
}

func (s *byteSource) ReadByte() (byte, error) {
	if s.i >= s.n {
		for {
			n, err := s.r.Read(s.buf[:])
			if n > 0 {
				s.i, s.n = 0, n
				break
			}
			if err != nil {
				return 0, err
			}
		}
	}
	b := s.buf[s.i]
	s.i++
	s.off++
	return b, nil
}
