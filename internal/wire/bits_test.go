package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// TestSymbolRoundTrip: every (value, alphabet) pair encodes and decodes
// identically under the truncated-binary code.
func TestSymbolRoundTrip(t *testing.T) {
	prop := func(vRaw, nRaw uint16) bool {
		n := int(nRaw%2000) + 1
		v := int(vRaw) % n
		w := &bitWriter{}
		w.symbol(v, n)
		w.symbol(n-1, n) // a second symbol to catch bit misalignment
		r := newBitReader(bytes.NewReader(w.bytes()))
		got, err := r.symbol(n)
		if err != nil || got != v {
			return false
		}
		got2, err := r.symbol(n)
		return err == nil && got2 == n-1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestSymbolCodeLength: the truncated-binary code uses floor(log2 n) or
// ceil(log2 n) bits — never more.
func TestSymbolCodeLength(t *testing.T) {
	for n := 2; n < 300; n++ {
		for _, v := range []int{0, n / 2, n - 1} {
			w := &bitWriter{}
			w.symbol(v, n)
			bits := w.bitLen()
			ceil := 0
			for 1<<ceil < n {
				ceil++
			}
			if bits > ceil || bits < ceil-1 {
				t.Fatalf("symbol(%d,%d) used %d bits, want %d or %d", v, n, bits, ceil-1, ceil)
			}
		}
	}
}

func TestForcedSymbolIsFree(t *testing.T) {
	w := &bitWriter{}
	w.symbol(0, 1)
	if w.bitLen() != 0 {
		t.Fatalf("alphabet of size 1 must cost zero bits, used %d", w.bitLen())
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	prop := func(v uint64) bool {
		v %= 1 << 60
		w := &bitWriter{}
		w.uvarint(v)
		w.uvarint(0)
		r := newBitReader(bytes.NewReader(w.bytes()))
		got, err := r.uvarint()
		if err != nil || got != v {
			return false
		}
		z, err := r.uvarint()
		return err == nil && z == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSvarintRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), math.MaxInt32, math.MinInt32} {
		w := &bitWriter{}
		w.svarint(v)
		r := newBitReader(bytes.NewReader(w.bytes()))
		got, err := r.svarint()
		if err != nil || got != v {
			t.Fatalf("svarint(%d) -> %d, %v", v, got, err)
		}
	}
	prop := func(v int64) bool {
		v %= 1 << 58
		w := &bitWriter{}
		w.svarint(v)
		r := newBitReader(bytes.NewReader(w.bytes()))
		got, err := r.svarint()
		return err == nil && got == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloatAndStringRoundTrip(t *testing.T) {
	for _, f := range []float64{0, 1.5, -2.25, math.Pi, math.Inf(1), math.Inf(-1), math.SmallestNonzeroFloat64} {
		w := &bitWriter{}
		w.float64bits(f)
		r := newBitReader(bytes.NewReader(w.bytes()))
		got, err := r.float64bits()
		if err != nil || got != f {
			t.Fatalf("float %v -> %v, %v", f, got, err)
		}
	}
	// NaN round-trips by bit pattern.
	w := &bitWriter{}
	w.float64bits(math.NaN())
	r := newBitReader(bytes.NewReader(w.bytes()))
	got, err := r.float64bits()
	if err != nil || !math.IsNaN(got) {
		t.Fatalf("NaN lost: %v %v", got, err)
	}

	for _, s := range []string{"", "a", "hello", "snowman ☃", string([]byte{0, 255, 128})} {
		w := &bitWriter{}
		w.str(s)
		w.bit(true)
		r := newBitReader(bytes.NewReader(w.bytes()))
		gs, err := r.str()
		if err != nil || gs != s {
			t.Fatalf("str %q -> %q, %v", s, gs, err)
		}
		bv, err := r.bit()
		if err != nil || !bv {
			t.Fatalf("trailing bit lost after %q", s)
		}
	}
}

func TestReaderTruncation(t *testing.T) {
	w := &bitWriter{}
	w.uvarint(1 << 40)
	data := w.bytes()
	for cut := 0; cut < len(data); cut++ {
		r := newBitReader(bytes.NewReader(data[:cut]))
		if _, err := r.uvarint(); err == nil && cut < len(data)-1 {
			// Short prefixes may decode a smaller value; the final
			// byte boundary is the only guaranteed success.
			continue
		}
	}
	r := newBitReader(bytes.NewReader(nil))
	if _, err := r.readBits(1); err == nil {
		t.Fatal("read from empty stream succeeded")
	}
}
