package wire

import (
	"safetsa/internal/core"
)

// funcDecoder decodes the instruction phases of one function.
type funcDecoder struct {
	d   *decoder
	f   *core.Func
	rf  *regFile
	pos map[*core.Instr]int
	// handler stack for exception-edge registration during the phase-2
	// walk (sites register in program order, as on the producer side).
	handlers []*core.Block
}

func (fd *funcDecoder) innermostHandler() *core.Block {
	if len(fd.handlers) == 0 {
		return nil
	}
	return fd.handlers[len(fd.handlers)-1]
}

// decodeBlocks walks the CST in transmission order decoding each block's
// phi types and instructions, maintaining the try context so that
// potentially-throwing instructions and throw nodes register their
// implicit exception edges exactly as the producer did.
func (fd *funcDecoder) decodeBlocks(n *core.CSTNode) error {
	if n == nil {
		return nil
	}
	switch n.Kind {
	case core.CBlock:
		return fd.decodeBlock(n.Block)
	case core.CThrow:
		if h := fd.innermostHandler(); h != nil {
			edge := len(h.Preds)
			h.Preds = append(h.Preds, core.Pred{From: n.At})
			fd.f.ThrowEdge[n] = edge
			fd.f.ThrowHandler[n] = h
		}
		return nil
	case core.CTry:
		fd.handlers = append(fd.handlers, n.Handler)
		if err := fd.decodeBlocks(n.Kids[0]); err != nil {
			return err
		}
		fd.handlers = fd.handlers[:len(fd.handlers)-1]
		return fd.decodeBlocks(n.Kids[1])
	default:
		for _, k := range n.Kids {
			if err := fd.decodeBlocks(k); err != nil {
				return err
			}
		}
		return nil
	}
}

func (fd *funcDecoder) decodeBlock(b *core.Block) error {
	d := fd.d
	tt := d.m.Types
	d.r.setProd(prodBlock)
	nPhis, err := d.count("phi")
	if err != nil {
		return err
	}
	if nPhis > 0 && len(b.Preds) == 0 {
		// A phi operand is a per-incoming-edge reference; a block with no
		// predecessors offers no edge alphabet to draw from, so the
		// spelling is inadmissible (the verifier would reject it too, but
		// wire admission must not produce unverifiable modules at all).
		return malformedf("phis in a block with no predecessors")
	}
	if b == fd.f.Entry {
		// Re-create the untransmitted parameter pre-loads from the
		// signature.
		for i, pt := range fd.f.Params {
			in := &core.Instr{Op: core.OpParam, Type: pt, Aux: int32(i), Blk: b}
			fd.f.Define(in)
			b.Code = append(b.Code, in)
			fd.rf.add(b, in, i+1)
			fd.pos[in] = i + 1
		}
	}
	for i := 0; i < nPhis; i++ {
		t, err := d.typeRef()
		if err != nil {
			return err
		}
		pt := tt.MustGet(t)
		if pt.Kind == core.TVoid || pt.Kind == core.TMem || pt.Kind == core.TSafeIndex {
			return malformedf("phi on plane %s", tt.Describe(t))
		}
		phi := &core.Instr{Op: core.OpPhi, Type: t, Blk: b}
		fd.f.Define(phi)
		b.Phis = append(b.Phis, phi)
		fd.rf.add(b, phi, 0)
		fd.pos[phi] = 0
	}
	nCode, err := d.count("instruction")
	if err != nil {
		return err
	}
	base := len(b.Code) // parameter pre-loads already in place for entry
	for i := 0; i < nCode; i++ {
		p := base + i + 1
		in, err := fd.decodeInstr(b, p)
		if err != nil {
			return err
		}
		in.Blk = b
		if in.Type != tt.Void {
			fd.f.Define(in)
		}
		b.Code = append(b.Code, in)
		fd.rf.add(b, in, p)
		fd.pos[in] = p
		if in.Op.CanThrow() {
			if h := fd.innermostHandler(); h != nil {
				edge := len(h.Preds)
				h.Preds = append(h.Preds, core.Pred{From: b, Site: in})
				fd.f.ExcEdge[in] = edge
				fd.f.HandlerOf[in] = h
			}
		}
	}
	return nil
}

// decodeRef reads an (l, r) reference used from block b at intra-block
// position p. The alphabets are derived from the register file, so any
// successfully decoded reference names a value that structurally
// dominates the use — referential integrity without verification.
func (fd *funcDecoder) decodeRef(b *core.Block, plane core.PlaneKey) (core.ValueID, error) {
	l, err := fd.d.r.symbol(b.Depth + 1)
	if err != nil {
		return core.NoValue, err
	}
	def := b
	for i := 0; i < l; i++ {
		def = def.IDom
	}
	n := fd.rf.countBefore(def, plane, -1)
	r, err := fd.d.r.symbol(n)
	if err != nil {
		return core.NoValue, err
	}
	v := fd.rf.at(def, plane, r, -1)
	if v == core.NoValue {
		return core.NoValue, malformedf("register %d-%d empty", l, r)
	}
	return v, nil
}

// decodeEdgeRef reads a phi operand relative to an edge source, windowed
// to the registers before the throwing site on exception edges.
func (fd *funcDecoder) decodeEdgeRef(edge core.Pred, plane core.PlaneKey) (core.ValueID, error) {
	from := edge.From
	l, err := fd.d.r.symbol(from.Depth + 1)
	if err != nil {
		return core.NoValue, err
	}
	def := from
	for i := 0; i < l; i++ {
		def = def.IDom
	}
	limit := -1
	if l == 0 && edge.Site != nil {
		limit = fd.pos[edge.Site]
	}
	n := fd.rf.countBefore(def, plane, limit)
	r, err := fd.d.r.symbol(n)
	if err != nil {
		return core.NoValue, err
	}
	v := fd.rf.at(def, plane, r, limit)
	if v == core.NoValue {
		return core.NoValue, malformedf("phi operand register %d-%d empty", l, r)
	}
	return v, nil
}

func (fd *funcDecoder) decodeCSTRefs(n *core.CSTNode) error {
	if n == nil {
		return nil
	}
	tt := fd.d.m.Types
	var err error
	switch n.Kind {
	case core.CIf, core.CWhile, core.CDoWhile:
		n.Cond, err = fd.decodeRef(n.At, core.PlaneKey{Type: tt.Boolean})
	case core.CReturn:
		if n.Val != core.NoValue { // placeholder set during phase 1
			n.Val, err = fd.decodeRef(n.At, core.PlaneKey{Type: fd.f.Result})
		}
	case core.CThrow:
		n.Val, err = fd.decodeRef(n.At, core.PlaneKey{Type: tt.Throwable})
	}
	if err != nil {
		return err
	}
	for _, k := range n.Kids {
		if err := fd.decodeCSTRefs(k); err != nil {
			return err
		}
	}
	return nil
}

// decodeInstr mirrors encoder.encodeInstr; every operand is read against
// the plane the opcode and type arguments imply.
func (fd *funcDecoder) decodeInstr(b *core.Block, p int) (*core.Instr, error) {
	d := fd.d
	r := d.r
	tt := d.m.Types
	r.setProd(prodOp)
	opv, err := r.symbol(core.NumOps)
	if err != nil {
		return nil, err
	}
	// Payload symbols adapt in the opcode's own production context,
	// mirroring encodeInstr.
	r.setProd(opv)
	in := &core.Instr{Op: core.Op(opv)}
	ref := func(plane core.PlaneKey) error {
		v, err := fd.decodeRef(b, plane)
		if err != nil {
			return err
		}
		in.Args = append(in.Args, v)
		return nil
	}
	plainRef := func(t core.TypeID) error { return ref(core.PlaneKey{Type: t}) }

	switch in.Op {
	case core.OpParam:
		aux, err := d.count("parameter index")
		if err != nil {
			return nil, err
		}
		if aux >= len(fd.f.Params) {
			return nil, malformedf("parameter %d out of range", aux)
		}
		in.Aux = int32(aux)
		in.Type = fd.f.Params[aux]
	case core.OpConst:
		kv, err := r.symbol(7)
		if err != nil {
			return nil, err
		}
		in.Const.Kind = core.ConstKind(kv + 1)
		switch in.Const.Kind {
		case core.KInt, core.KChar:
			if in.Const.I, err = r.svarint(); err != nil {
				return nil, err
			}
			if in.Const.Kind == core.KInt {
				in.Const.I = int64(int32(in.Const.I))
				in.Type = tt.Int
			} else {
				in.Const.I = int64(uint16(in.Const.I))
				in.Type = tt.Char
			}
		case core.KLong:
			if in.Const.I, err = r.svarint(); err != nil {
				return nil, err
			}
			in.Type = tt.Long
		case core.KBool:
			if in.Const.I, err = r.svarint(); err != nil {
				return nil, err
			}
			in.Const.I &= 1
			in.Type = tt.Boolean
		case core.KDouble:
			if in.Const.D, err = r.float64bits(); err != nil {
				return nil, err
			}
			in.Type = tt.Double
		case core.KString:
			if in.Const.S, err = r.str(); err != nil {
				return nil, err
			}
			in.Type = tt.String
		case core.KNull:
			t, err := d.refTypeRef()
			if err != nil {
				return nil, err
			}
			in.Type = t
		}
	case core.OpPrim, core.OpXPrim:
		pv, err := r.symbol(core.NumPrimOps)
		if err != nil {
			return nil, err
		}
		in.Prim = core.PrimOp(pv)
		if !in.Prim.Valid() {
			return nil, malformedf("unknown primitive %d", pv)
		}
		sig := in.Prim.Sig()
		if sig.Throws != (in.Op == core.OpXPrim) {
			return nil, malformedf("%s used with the wrong primitive instruction", sig.Name)
		}
		for _, pc := range sig.Params {
			if err := plainRef(core.PlaneType(tt, pc)); err != nil {
				return nil, err
			}
		}
		in.Type = core.PlaneType(tt, sig.Result)
	case core.OpNullCheck:
		t, err := d.refTypeRef()
		if err != nil {
			return nil, err
		}
		in.ArgType = t
		if err := plainRef(t); err != nil {
			return nil, err
		}
		in.Type = tt.SafeRefOf(t)
	case core.OpIndexCheck:
		t, err := d.typeRef()
		if err != nil {
			return nil, err
		}
		if tt.MustGet(t).Kind != core.TArray {
			return nil, malformedf("indexcheck of a non-array type")
		}
		in.TypeArg = t
		if err := plainRef(tt.SafeRefOf(t)); err != nil {
			return nil, err
		}
		if err := plainRef(tt.Int); err != nil {
			return nil, err
		}
		in.Bind = in.Args[0]
		in.Type = tt.SafeIndexOf(t)
	case core.OpUpcast, core.OpDowncast, core.OpInstanceOf:
		at, err := d.typeRef()
		if err != nil {
			return nil, err
		}
		ta, err := d.typeRef()
		if err != nil {
			return nil, err
		}
		in.ArgType, in.TypeArg = at, ta
		argt := tt.MustGet(at)
		switch in.Op {
		case core.OpUpcast, core.OpInstanceOf:
			if !tt.IsRefType(at) || !tt.IsRefType(ta) {
				return nil, malformedf("%s between non-reference types", in.Op)
			}
		case core.OpDowncast:
			dstt := tt.MustGet(ta)
			if dstt.Kind == core.TSafeRef && argt.Kind != core.TSafeRef {
				return nil, malformedf("downcast cannot add safety")
			}
			if !tt.IsSubclass(tt.BaseRef(at), tt.BaseRef(ta)) {
				return nil, malformedf("downcast is not statically safe")
			}
		}
		if err := plainRef(at); err != nil {
			return nil, err
		}
		if in.Op == core.OpInstanceOf {
			in.Type = tt.Boolean
		} else {
			in.Type = ta
		}
	case core.OpGetField, core.OpSetField:
		fi, err := r.symbol(len(d.m.Fields))
		if err != nil {
			return nil, err
		}
		in.Field = int32(fi)
		fr := d.m.Fields[fi]
		if !fr.Static {
			if err := plainRef(tt.SafeRefOf(fr.Owner)); err != nil {
				return nil, err
			}
		}
		if in.Op == core.OpSetField {
			if err := plainRef(fr.Type); err != nil {
				return nil, err
			}
			in.Type = tt.Void
		} else {
			in.Type = fr.Type
		}
	case core.OpGetElt, core.OpSetElt:
		t, err := d.typeRef()
		if err != nil {
			return nil, err
		}
		at := tt.MustGet(t)
		if at.Kind != core.TArray {
			return nil, malformedf("element access on a non-array type")
		}
		in.TypeArg = t
		if err := plainRef(tt.SafeRefOf(t)); err != nil {
			return nil, err
		}
		// The index plane is bound to the array value decoded above —
		// only indices checked against this very array are expressible.
		if err := ref(core.PlaneKey{Type: tt.SafeIndexOf(t), Bind: in.Args[0]}); err != nil {
			return nil, err
		}
		if in.Op == core.OpSetElt {
			if err := plainRef(at.Elem); err != nil {
				return nil, err
			}
			in.Type = tt.Void
		} else {
			in.Type = at.Elem
		}
	case core.OpArrayLen:
		t, err := d.typeRef()
		if err != nil {
			return nil, err
		}
		if tt.MustGet(t).Kind != core.TArray {
			return nil, malformedf("arraylen of a non-array type")
		}
		in.TypeArg = t
		if err := plainRef(tt.SafeRefOf(t)); err != nil {
			return nil, err
		}
		in.Type = tt.Int
	case core.OpXCall, core.OpXDispatch:
		mi, err := r.symbol(len(d.m.Methods))
		if err != nil {
			return nil, err
		}
		in.Method = int32(mi)
		mr := d.m.Methods[mi]
		if in.Op == core.OpXDispatch && mr.VSlot < 0 {
			return nil, malformedf("xdispatch of a non-virtual method")
		}
		if !mr.Static {
			if err := plainRef(tt.SafeRefOf(mr.Owner)); err != nil {
				return nil, err
			}
		}
		for _, pt := range mr.Params {
			if err := plainRef(pt); err != nil {
				return nil, err
			}
		}
		if mr.Result == tt.Void {
			in.Type = tt.Void
		} else {
			in.Type = mr.Result
		}
	case core.OpNew:
		t, err := d.typeRef()
		if err != nil {
			return nil, err
		}
		if tt.MustGet(t).Kind != core.TClass {
			return nil, malformedf("new of a non-class type")
		}
		in.TypeArg = t
		in.Type = tt.SafeRefOf(t)
	case core.OpNewArray:
		t, err := d.typeRef()
		if err != nil {
			return nil, err
		}
		if tt.MustGet(t).Kind != core.TArray {
			return nil, malformedf("newarray of a non-array type")
		}
		in.TypeArg = t
		if err := plainRef(tt.Int); err != nil {
			return nil, err
		}
		in.Type = tt.SafeRefOf(t)
	case core.OpCatch:
		in.Type = tt.Throwable
	default:
		return nil, malformedf("opcode %d is not valid in a code section", opv)
	}
	return in, nil
}
