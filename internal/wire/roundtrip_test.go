package wire_test

import (
	"bytes"
	"errors"
	"testing"

	"safetsa/internal/core"
	"safetsa/internal/driver"
	"safetsa/internal/interp"
	"safetsa/internal/rt"
	"safetsa/internal/wire"
)

// testPrograms exercise every CST production and instruction kind through
// the wire format.
var testPrograms = map[string]string{
	"arith": `
class Main {
    static void main() {
        int a = 6; long b = 7L; double c = 0.5;
        System.out.println(a * 7);
        System.out.println(b * 6L);
        System.out.println(c * 84.0);
        System.out.println((char) 65);
        System.out.println(1 < 2 == true);
    }
}`,
	"control": `
class Main {
    static void main() {
        int s = 0;
        for (int i = 0; i < 10; i++) {
            if (i == 2) continue;
            if (i == 8) break;
            s += i;
        }
        int k = 3;
        do { s += k; k--; } while (k > 0);
        while (s > 30) { s -= 7; }
        System.out.println(s);
    }
}`,
	"objects": `
class A { int x; A(int v) { x = v; } int get() { return x; } }
class B extends A { B(int v) { super(v * 2); } int get() { return x + 1; } }
class Main {
    static void main() {
        A a = new B(10);
        System.out.println(a.get());
        System.out.println(a instanceof B);
        B b = (B) a;
        System.out.println(b.x);
    }
}`,
	"arrays": `
class Main {
    static void main() {
        double[][] m = new double[2][3];
        m[1][2] = 6.5;
        System.out.println(m[1][2]);
        System.out.println(m.length);
        System.out.println(m[0].length);
        int[] v = new int[4];
        for (int i = 0; i < v.length; i++) v[i] = i;
        System.out.println(v[3]);
    }
}`,
	"exceptions": `
class Main {
    static int f(int d) {
        try {
            int x = 10 / d;
            if (x > 3) throw new Exception("big " + x);
            return x;
        } catch (ArithmeticException e) {
            return -1;
        } catch (Exception e) {
            System.out.println(e.getMessage());
            return -2;
        } finally {
            System.out.println("fin");
        }
    }
    static void main() {
        System.out.println(f(5));
        System.out.println(f(0));
        System.out.println(f(1));
    }
}`,
	"statics": `
class Counter {
    static int n = 100;
    static int bump() { n += 5; return n; }
}
class Main {
    static void main() {
        System.out.println(Counter.bump());
        System.out.println(Counter.bump());
        System.out.println(Counter.n);
    }
}`,
	"strings": `
class Main {
    static void main() {
        String s = "safe" + "tsa" + 2001;
        System.out.println(s);
        System.out.println(s.substring(4, 7));
        System.out.println(s.length());
    }
}`,
}

func compileAll(t *testing.T, src string, optimize bool) *core.Module {
	t.Helper()
	files := map[string]string{"Main.tj": src}
	if optimize {
		mod, _, err := driver.CompileTSASourceOpt(files)
		if err != nil {
			t.Fatalf("compile -O: %v", err)
		}
		return mod
	}
	mod, err := driver.CompileTSASource(files)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return mod
}

func runMod(t *testing.T, mod *core.Module) string {
	t.Helper()
	out, err := driver.RunModule(mod, 20_000_000)
	if err != nil {
		t.Fatalf("run: %v (output %q)", err, out)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	for name, src := range testPrograms {
		for _, optimized := range []bool{false, true} {
			label := name
			if optimized {
				label += "-opt"
			}
			t.Run(label, func(t *testing.T) {
				mod := compileAll(t, src, optimized)
				want := runMod(t, mod)
				data := wire.EncodeModule(mod)
				dec, err := wire.DecodeModule(data)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if err := dec.Verify(core.VerifyOptions{}); err != nil {
					t.Fatalf("decoded module fails verification: %v", err)
				}
				got := runMod(t, dec)
				if got != want {
					t.Fatalf("decoded module diverges:\nwant %q\ngot  %q", want, got)
				}
				// The decoded module must re-encode to the identical
				// byte stream (canonical form).
				data2 := wire.EncodeModule(dec)
				if !bytes.Equal(data, data2) {
					t.Fatalf("re-encoding is not canonical: %d vs %d bytes", len(data), len(data2))
				}
				// The textual dumps must agree structurally.
				if mod.Dump() != dec.Dump() {
					t.Fatalf("dump mismatch after round trip")
				}
			})
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := wire.DecodeModule([]byte("not a module")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := wire.DecodeModule(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

// TestDecodeTruncations: every byte-level prefix of a valid unit must be
// rejected cleanly (no panic, no acceptance of a partial module).
func TestDecodeTruncations(t *testing.T) {
	mod := compileAll(t, testPrograms["objects"], true)
	data := wire.EncodeModule(mod)
	for cut := 0; cut < len(data); cut++ {
		if _, err := wire.DecodeModule(data[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", cut, len(data))
		}
	}
}

// TestDecodeAppendedGarbage: a stream with trailing data after the
// final production is rejected at decode time, for both wire versions —
// an admissible unit has exactly one on-the-wire spelling. A nonzero
// bit smuggled into the v1 zero padding of the last byte is rejected
// too.
func TestDecodeAppendedGarbage(t *testing.T) {
	mod := compileAll(t, testPrograms["arith"], false)
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"v1", wire.EncodeModule(mod)},
		{"v2", wire.EncodeModuleV2(mod, nil)},
	} {
		for _, tail := range [][]byte{{0x00}, {0xFF, 0x00, 0xAB}} {
			garbled := append(append([]byte{}, tc.data...), tail...)
			if _, err := wire.DecodeModule(garbled); err == nil {
				t.Fatalf("%s: %d trailing bytes accepted", tc.name, len(tail))
			} else if !errors.Is(err, wire.ErrMalformed) {
				t.Fatalf("%s: trailing bytes gave a non-decode error: %v", tc.name, err)
			}
		}
		// The exact stream still decodes.
		if _, err := wire.DecodeModule(tc.data); err != nil {
			t.Fatalf("%s: clean stream rejected: %v", tc.name, err)
		}
	}

}

// TestTamperResistance is the paper's section 2 security argument made
// executable: flipping any single bit of a distribution unit must yield
// either a clean decode error or a module that still passes the verifier
// (i.e. is well-formed, if different). It must never produce an
// ill-formed reference or type-confused instruction, and executing the
// mutant must never corrupt the host (Go-level panic).
func TestTamperResistance(t *testing.T) {
	mod := compileAll(t, testPrograms["exceptions"], true)
	data := wire.EncodeModule(mod)
	step := 1
	if testing.Short() {
		step = 7
	}
	rejected, accepted := 0, 0
	for i := 0; i < len(data)*8; i += step {
		mut := bytes.Clone(data)
		mut[i/8] ^= 1 << (7 - i%8)
		dec, err := wire.DecodeModule(mut)
		if err != nil {
			rejected++
			continue
		}
		// The consumer's residual check is the cheap table/link
		// verification; a mutant may also fail there and be rejected.
		// What must NEVER happen is an accepted module corrupting the
		// host below.
		if err := dec.Verify(core.VerifyOptions{}); err != nil {
			rejected++
			continue
		}
		accepted++
		// A well-formed mutant must also be safely executable: the
		// consumer may observe different behaviour but never host
		// corruption.
		func() {
			defer func() {
				if r := recover(); r != nil && r != rt.ErrStepLimit {
					t.Fatalf("bit %d: executing mutant crashed the host: %v", i, r)
				}
			}()
			var out bytes.Buffer
			env := &rt.Env{Out: &out, MaxSteps: 200_000}
			if l, err := interp.Load(dec, env); err == nil {
				_ = l.RunMain()
			}
		}()
	}
	t.Logf("tamper: %d bit flips rejected, %d decoded to well-formed modules", rejected, accepted)
	if rejected == 0 {
		t.Fatal("no flips rejected — the decoder is not validating")
	}
}
