package wire

import (
	"safetsa/internal/core"
)

// regEntry is one filled register: the value and its intra-block position
// (phis share position 0; code instructions are 1-based).
type regEntry struct {
	id  core.ValueID
	pos int
}

// regFile models the paper's implied machine: for every basic block, one
// register plane per type (plus the per-array-value safe-index planes),
// filled in ascending order. Both the encoder and the decoder fill it
// incrementally while walking the blocks in transmission order, so the
// alphabet of every (l, r) reference — and therefore the set of
// expressible operands — is identical on both sides.
type regFile struct {
	regs map[*core.Block]map[core.PlaneKey][]regEntry
}

func newRegFile() *regFile {
	return &regFile{regs: make(map[*core.Block]map[core.PlaneKey][]regEntry)}
}

// add fills the next register of the instruction's plane.
func (rf *regFile) add(b *core.Block, in *core.Instr, pos int) {
	if !in.HasResult() {
		return
	}
	m := rf.regs[b]
	if m == nil {
		m = make(map[core.PlaneKey][]regEntry)
		rf.regs[b] = m
	}
	k := in.Plane()
	m[k] = append(m[k], regEntry{id: in.ID, pos: pos})
}

// countBefore returns how many registers of the plane exist in b before
// the given position (use limit < 0 for "all").
func (rf *regFile) countBefore(b *core.Block, plane core.PlaneKey, limit int) int {
	rs := rf.regs[b][plane]
	if limit < 0 {
		return len(rs)
	}
	n := 0
	for _, e := range rs {
		if e.pos < limit {
			n++
		}
	}
	return n
}

// at returns register r of the plane in b (respecting the limit), or 0.
func (rf *regFile) at(b *core.Block, plane core.PlaneKey, r, limit int) core.ValueID {
	rs := rf.regs[b][plane]
	if limit >= 0 {
		n := 0
		for _, e := range rs {
			if e.pos >= limit {
				break
			}
			n = n + 1
		}
		rs = rs[:n]
	}
	if r < 0 || r >= len(rs) {
		return core.NoValue
	}
	return rs[r].id
}

// indexOf finds the register number of a value on its plane in its block
// (respecting the limit); -1 when absent.
func (rf *regFile) indexOf(b *core.Block, plane core.PlaneKey, id core.ValueID, limit int) int {
	for i, e := range rf.regs[b][plane] {
		if limit >= 0 && e.pos >= limit {
			break
		}
		if e.id == id {
			return i
		}
	}
	return -1
}
