package wire_test

import (
	"bytes"
	"io"
	"testing"

	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/interp"
	"safetsa/internal/rt"
	"safetsa/internal/wire"
)

// decodeStreamAll runs a full streaming decode over in-memory bytes and
// returns the unit (with Wait already settled) or the stream error.
func decodeStreamAll(data []byte) (*wire.StreamingUnit, error) {
	su, err := wire.DecodeVerifiedStream(bytes.NewReader(data), wire.DecodeOptions{})
	if err != nil {
		return nil, err
	}
	if err := su.Wait(); err != nil {
		return nil, err
	}
	return su, nil
}

// TestStreamingMatchesFull: a streaming decode of every test program at
// both wire versions yields the same module as the one-shot decoder,
// and records one boundary per function.
func TestStreamingMatchesFull(t *testing.T) {
	for name, src := range testPrograms {
		t.Run(name, func(t *testing.T) {
			mod := compileAll(t, src, true)
			for _, tc := range []struct {
				label string
				data  []byte
			}{
				{"v1", wire.EncodeModule(mod)},
				{"v2", wire.EncodeModuleV2(mod, nil)},
			} {
				full, err := wire.DecodeVerified(tc.data)
				if err != nil {
					t.Fatalf("%s: full decode: %v", tc.label, err)
				}
				su, err := decodeStreamAll(tc.data)
				if err != nil {
					t.Fatalf("%s: streaming decode: %v", tc.label, err)
				}
				if su.Mod.Dump() != full.Dump() {
					t.Fatalf("%s: streaming and full decode disagree structurally", tc.label)
				}
				bs := su.Boundaries()
				if len(bs) != len(full.Funcs) {
					t.Fatalf("%s: %d boundaries for %d functions", tc.label, len(bs), len(full.Funcs))
				}
				for i := 1; i < len(bs); i++ {
					if bs[i] <= bs[i-1] {
						t.Fatalf("%s: boundaries not strictly increasing: %v", tc.label, bs)
					}
				}
			}
		})
	}
}

// TestStreamPartialDelivery is the partial-delivery battery over the
// corpus: every unit, both wire versions, truncated at every function
// boundary and at mid-varint cuts around each boundary, must be
// verify-rejected by the streaming decoder — constructor error or Wait
// error, never a nil Wait, never a panic.
func TestStreamPartialDelivery(t *testing.T) {
	units := corpus.Units()
	for _, u := range units {
		t.Run(u.Name, func(t *testing.T) {
			prog, err := driver.Frontend(u.Files)
			if err != nil {
				t.Fatal(err)
			}
			mod, err := driver.CompileTSA(prog)
			if err != nil {
				t.Fatal(err)
			}
			for _, tc := range []struct {
				label string
				data  []byte
			}{
				{"v1", wire.EncodeModule(mod)},
				{"v2", wire.EncodeModuleV2(mod, nil)},
			} {
				su, err := decodeStreamAll(tc.data)
				if err != nil {
					t.Fatalf("%s: clean stream rejected: %v", tc.label, err)
				}
				cuts := map[int64]bool{0: true, 1: true, 3: true}
				for _, b := range su.Boundaries() {
					// The boundary itself plus mid-symbol cuts around it:
					// one byte short lands mid-production, one or two past
					// land inside the next function's first varints.
					for _, c := range []int64{b - 1, b, b + 1, b + 2} {
						if c >= 0 && c < int64(len(tc.data)) {
							cuts[c] = true
						}
					}
				}
				for cut := range cuts {
					if _, err := decodeStreamAll(tc.data[:cut]); err == nil {
						t.Fatalf("%s: truncation to %d/%d bytes was admitted", tc.label, cut, len(tc.data))
					}
				}
			}
		})
	}
}

// TestStreamTruncationSweep is the exhaustive version of the boundary
// cuts over one unit: every byte-level prefix must be rejected.
func TestStreamTruncationSweep(t *testing.T) {
	mod := compileAll(t, testPrograms["objects"], true)
	for _, tc := range []struct {
		label string
		data  []byte
	}{
		{"v1", wire.EncodeModule(mod)},
		{"v2", wire.EncodeModuleV2(mod, nil)},
	} {
		for cut := 0; cut < len(tc.data); cut++ {
			if _, err := decodeStreamAll(tc.data[:cut]); err == nil {
				t.Fatalf("%s: prefix of %d/%d bytes was admitted", tc.label, cut, len(tc.data))
			}
		}
	}
}

// TestStreamSlowReader proves the streaming claim end to end: with the
// tail of the stream withheld, the entry function is admitted and
// executes to completion — first-instruction execution strictly before
// the final byte arrives — and releasing the tail then completes
// admission of the whole unit.
func TestStreamSlowReader(t *testing.T) {
	// Helper methods after Main keep functions beyond the entry prefix
	// on the wire; main never calls them, so execution needs only the
	// prefix.
	src := `
class Helper {
    int spareOne(int x) { return x * 3 + 1; }
    int spareTwo(int x) { return x - 7; }
    int spareThree(int x) { return x * x; }
}
class Main {
    static void main() { System.out.println(6 * 7); }
}`
	mod := compileAll(t, src, false)
	data := wire.EncodeModuleV2(mod, nil)

	// A reference pass over the complete stream pins the prefix length:
	// every function up to and including the entry's body (the module is
	// transmitted entry-first, see ssabuild's streaming order).
	ref, err := decodeStreamAll(data)
	if err != nil {
		t.Fatal(err)
	}
	need := -1
	for _, si := range ref.Mod.StaticInit {
		if int(si) > need {
			need = int(si)
		}
	}
	if e := ref.Mod.Entry; e >= 0 {
		if fi := ref.Mod.Methods[e].FuncIdx; int(fi) > need {
			need = int(fi)
		}
	}
	if need < 0 || need >= ref.NumFuncs()-1 {
		t.Fatalf("entry prefix (%d) is not a proper prefix of %d functions; the test proves nothing", need, ref.NumFuncs())
	}
	prefix := ref.Boundaries()[need]

	pr, pw := io.Pipe()
	release := make(chan struct{})
	go func() {
		if _, err := pw.Write(data[:prefix]); err != nil {
			t.Error(err)
		}
		<-release
		_, _ = pw.Write(data[prefix:])
		pw.Close()
	}()

	su, err := wire.DecodeVerifiedStream(pr, wire.DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := su.WaitEntry(); err != nil {
		t.Fatalf("entry prefix not admitted from partial stream: %v", err)
	}

	// Execute main while the tail is still withheld.
	var out bytes.Buffer
	env := &rt.Env{Out: &out, MaxSteps: 1_000_000}
	l, err := interp.LoadTrustedStreaming(su.Mod, su.WaitFunc, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RunMain(); err != nil {
		t.Fatalf("run over partial stream: %v", err)
	}
	if got := out.String(); got != "42\n" {
		t.Fatalf("output %q, want %q", got, "42\n")
	}
	if r, n := su.Ready(), su.NumFuncs(); r >= n {
		t.Fatalf("all %d functions admitted before the tail was released — the slow reader did not hold anything back", n)
	}

	close(release)
	if err := su.Wait(); err != nil {
		t.Fatalf("released stream failed admission: %v", err)
	}
	if su.Mod.Dump() != ref.Mod.Dump() {
		t.Fatal("slow-reader decode disagrees with reference decode")
	}
}

// TestStreamMidStreamFailurePoisonsWait: a stream that turns bad after
// several functions were already admitted (and possibly executed) must
// still fail Wait — the admitted prefix never launders the unit into
// cacheability.
func TestStreamMidStreamFailurePoisonsWait(t *testing.T) {
	mod := compileAll(t, testPrograms["objects"], true)
	data := wire.EncodeModule(mod)
	ref, err := decodeStreamAll(data)
	if err != nil {
		t.Fatal(err)
	}
	bs := ref.Boundaries()
	if len(bs) < 2 {
		t.Skip("unit too small to corrupt mid-stream")
	}
	// Corrupt a byte inside the LAST function's span, after every
	// earlier function was admitted.
	mut := bytes.Clone(data)
	mut[bs[len(bs)-1]-2] ^= 0x55
	su, err := wire.DecodeVerifiedStream(bytes.NewReader(mut), wire.DecodeOptions{})
	if err == nil {
		err = su.Wait()
	}
	if err == nil {
		// The flip may still decode to a well-formed unit (tamper
		// tolerance); only a *rejected* stream must poison Wait. Retry
		// with a guaranteed-bad mutation: hard truncation.
		if _, err := decodeStreamAll(data[:bs[len(bs)-1]-2]); err == nil {
			t.Fatal("mid-stream truncation after admitted prefix passed Wait")
		}
		return
	}
	// The terminal error is observable without blocking once Wait has
	// settled. (WaitFunc may still answer nil for functions that were
	// admitted before the stream went bad — admission is a prefix
	// property; cacheability is Wait's alone.)
	if su != nil && su.Err() == nil {
		t.Fatal("Err() reports nil on a poisoned stream")
	}
}
