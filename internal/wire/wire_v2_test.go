package wire_test

import (
	"bytes"
	"errors"
	"testing"

	"safetsa/internal/core"
	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/wire"
)

// TestV2RoundTrip is TestRoundTrip for the adaptive v2 stream: the
// decoded module must verify, behave identically, re-encode to the
// byte-identical stream (the adaptive models update symmetrically on
// both sides), and dump structurally equal to the original.
func TestV2RoundTrip(t *testing.T) {
	for name, src := range testPrograms {
		for _, optimized := range []bool{false, true} {
			label := name
			if optimized {
				label += "-opt"
			}
			t.Run(label, func(t *testing.T) {
				mod := compileAll(t, src, optimized)
				want := runMod(t, mod)
				data := wire.EncodeModuleV2(mod, nil)
				if v1 := wire.EncodeModule(mod); len(data) >= len(v1) {
					t.Logf("v2 (%d bytes) not smaller than v1 (%d bytes)", len(data), len(v1))
				}
				dec, err := wire.DecodeModule(data)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if err := dec.Verify(core.VerifyOptions{}); err != nil {
					t.Fatalf("decoded module fails verification: %v", err)
				}
				if got := runMod(t, dec); got != want {
					t.Fatalf("decoded module diverges:\nwant %q\ngot  %q", want, got)
				}
				if data2 := wire.EncodeModuleV2(dec, nil); !bytes.Equal(data, data2) {
					t.Fatalf("re-encoding is not canonical: %d vs %d bytes", len(data), len(data2))
				}
				if mod.Dump() != dec.Dump() {
					t.Fatalf("dump mismatch after round trip")
				}
			})
		}
	}
}

// testProgramModules compiles every testProgram (optimized) for
// dictionary training.
func testProgramModules(t *testing.T) []*core.Module {
	t.Helper()
	mods := make([]*core.Module, 0, len(testPrograms))
	for _, src := range testPrograms {
		mods = append(mods, compileAll(t, src, true))
	}
	return mods
}

// TestDictionaryRoundTrip trains a shared dictionary over the test
// bundle and checks the dictionary-bearing streams: byte-identical
// re-encode, structural identity, and that the serialized dictionary
// survives its own round trip.
func TestDictionaryRoundTrip(t *testing.T) {
	mods := testProgramModules(t)
	dict := wire.TrainDictionary(mods)
	if dict == nil {
		t.Fatal("training over the full bundle produced no dictionary")
	}

	// The serialized dictionary parses back with the identical identity
	// and serialization.
	ser := dict.Bytes()
	re, err := wire.ParseDictionary(ser)
	if err != nil {
		t.Fatalf("ParseDictionary(Bytes()): %v", err)
	}
	if re.ID != dict.ID {
		t.Fatalf("dictionary ID changed across serialization: %x vs %x", re.ID, dict.ID)
	}
	if !bytes.Equal(re.Bytes(), ser) {
		t.Fatal("dictionary serialization is not canonical")
	}

	for i, mod := range mods {
		data := wire.EncodeModuleV2(mod, dict)
		dec, err := wire.DecodeModuleOpts(data, wire.DecodeOptions{Dict: dict})
		if err != nil {
			t.Fatalf("module %d: decode with dictionary: %v", i, err)
		}
		if err := dec.Verify(core.VerifyOptions{}); err != nil {
			t.Fatalf("module %d: decoded module fails verification: %v", i, err)
		}
		if mod.Dump() != dec.Dump() {
			t.Fatalf("module %d: dump mismatch through dictionary stream", i)
		}
		if data2 := wire.EncodeModuleV2(dec, dict); !bytes.Equal(data, data2) {
			t.Fatalf("module %d: dictionary re-encoding is not canonical", i)
		}
		// The parsed copy of the dictionary decodes the same stream.
		if _, err := wire.DecodeModuleOpts(data, wire.DecodeOptions{Dict: re}); err != nil {
			t.Fatalf("module %d: parsed dictionary copy rejected the stream: %v", i, err)
		}
	}
}

// TestDictionaryNegotiation: a dictionary-bearing stream decoded
// without the dictionary, or with one of a different identity, fails
// with a clean ErrUnsupportedVersion — "fetch the dictionary", never a
// parse error.
func TestDictionaryNegotiation(t *testing.T) {
	mods := testProgramModules(t)
	dict := wire.TrainDictionary(mods)
	if dict == nil {
		t.Fatal("no dictionary")
	}
	data := wire.EncodeModuleV2(mods[0], dict)

	if _, err := wire.DecodeModule(data); !errors.Is(err, wire.ErrUnsupportedVersion) {
		t.Fatalf("missing dictionary: got %v, want ErrUnsupportedVersion", err)
	}
	wrong := *dict
	wrong.ID[0] ^= 0xFF
	if _, err := wire.DecodeModuleOpts(data, wire.DecodeOptions{Dict: &wrong}); !errors.Is(err, wire.ErrUnsupportedVersion) {
		t.Fatalf("mismatched dictionary: got %v, want ErrUnsupportedVersion", err)
	}
	// With the right dictionary the stream is fine.
	if _, err := wire.DecodeModuleOpts(data, wire.DecodeOptions{Dict: dict}); err != nil {
		t.Fatalf("matching dictionary rejected: %v", err)
	}
}

// TestCrossVersionMatrix runs every corpus unit through every wire
// spelling — v1, v2, v2+dictionary — and demands structural identity of
// the decoded modules, plus clean version negotiation: a v1-only
// consumer rejects a v2 stream with ErrUnsupportedVersion, never a
// parse panic.
func TestCrossVersionMatrix(t *testing.T) {
	units := corpus.Units()
	mods := make([]*core.Module, len(units))
	for i, u := range units {
		prog, err := driver.Frontend(u.Files)
		if err != nil {
			t.Fatalf("%s: frontend: %v", u.Name, err)
		}
		mod, err := driver.CompileTSA(prog)
		if err != nil {
			t.Fatalf("%s: compile: %v", u.Name, err)
		}
		mods[i] = mod
	}
	dict := wire.TrainDictionary(mods)
	if dict == nil {
		t.Fatal("corpus bundle trained no dictionary")
	}

	for i, u := range units {
		t.Run(u.Name, func(t *testing.T) {
			mod := mods[i]
			want := mod.Dump()

			v1 := wire.EncodeModule(mod)
			v2 := wire.EncodeModuleV2(mod, nil)
			v2d := wire.EncodeModuleV2(mod, dict)

			for _, tc := range []struct {
				label string
				data  []byte
				opts  wire.DecodeOptions
			}{
				{"v1", v1, wire.DecodeOptions{}},
				{"v2", v2, wire.DecodeOptions{}},
				{"v2+dict", v2d, wire.DecodeOptions{Dict: dict}},
			} {
				dec, err := wire.DecodeModuleOpts(tc.data, tc.opts)
				if err != nil {
					t.Fatalf("%s: decode: %v", tc.label, err)
				}
				if err := dec.Verify(core.VerifyOptions{}); err != nil {
					t.Fatalf("%s: verify: %v", tc.label, err)
				}
				if got := dec.Dump(); got != want {
					t.Fatalf("%s: structural mismatch against source module", tc.label)
				}
			}

			// A v1-only consumer: decodes the v1 stream, and answers the
			// v2 streams with a clean version error.
			if _, err := wire.DecodeModuleV1(v1); err != nil {
				t.Fatalf("v1-only consumer rejected a v1 stream: %v", err)
			}
			for _, data := range [][]byte{v2, v2d} {
				_, err := wire.DecodeModuleV1(data)
				if !errors.Is(err, wire.ErrUnsupportedVersion) {
					t.Fatalf("v1-only consumer on v2 stream: got %v, want ErrUnsupportedVersion", err)
				}
			}
		})
	}
}
