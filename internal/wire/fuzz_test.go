package wire_test

import (
	"testing"

	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/oracle"
	"safetsa/internal/wire"
)

// FuzzWireDecode is the executable form of the paper's referential-
// integrity claim (§2/§9): arbitrary bytes pushed through the decoder
// either fail cleanly or produce a module the verifier accepts, in
// canonical wire form, that runs to a guest-visible outcome under step
// and allocation budgets. oracle.CheckWire encodes exactly that
// contract; any non-nil result is a decoder admission bug.
//
// Seeds: a handful of degenerate prefixes plus real encodings of corpus
// programs, so mutation starts from streams that reach deep decoder
// states instead of dying on the magic number.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte("SAFETSA\x00"))
	for _, seed := range []string{"0", "1", "2", "wire"} {
		files := corpus.GenerateFuzz(seed, 4, 3)
		mod, err := driver.CompileTSASource(files)
		if err != nil {
			f.Fatalf("seed %s: %v", seed, err)
		}
		f.Add(wire.EncodeModule(mod))
		if _, err := driver.OptimizeModule(mod); err != nil {
			f.Fatalf("seed %s: %v", seed, err)
		}
		f.Add(wire.EncodeModule(mod))
	}
	budgets := oracle.Budgets{MaxSteps: 1 << 16, MaxAlloc: 1 << 18}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		if err := oracle.CheckWire(data, budgets); err != nil {
			t.Fatal(err)
		}
	})
}
