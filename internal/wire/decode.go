package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"safetsa/internal/core"
)

// ErrUnsupportedVersion marks a clean version-negotiation failure: the
// stream is intact and self-describing, but the consumer does not speak
// its wire version (or its adaptive model revision). It is distinct
// from ErrMalformed so a fleet can distinguish "upgrade me" from
// "hostile bytes".
var ErrUnsupportedVersion = errors.New("wire: unsupported wire version")

// DecodeOptions carries per-decode negotiation state.
type DecodeOptions struct {
	// Dict supplies the shared dictionary for dictionary-bearing v2
	// streams. A stream that names a dictionary id other than Dict's
	// (or names one when Dict is nil) is rejected before any symbol is
	// decoded.
	Dict *Dictionary
}

// DecodeModule reads a SafeTSA distribution unit of any supported wire
// version. Every symbol is decoded against the alphabet the preceding
// context allows, so the result is always a well-formed module (or an
// error) — in particular, no operand can name a register that is not in
// scope on the required plane. The residual checks are the trivial
// counter comparisons of the paper.
func DecodeModule(data []byte) (*core.Module, error) {
	return DecodeModuleOpts(data, DecodeOptions{})
}

// DecodeModuleOpts is DecodeModule with explicit negotiation options.
func DecodeModuleOpts(data []byte, o DecodeOptions) (m *core.Module, err error) {
	defer func() {
		if r := recover(); r != nil {
			// Structural panics during decoding indicate a malformed
			// stream, never a crash we want to propagate.
			m, err = nil, malformedf("invalid structure: %v", r)
		}
	}()
	src := bytes.NewReader(data)
	r, err := newStreamReader(src, o, false)
	if err != nil {
		return nil, err
	}
	return decodeBody(r)
}

// DecodeModuleV1 decodes with the original fixed-probability code only,
// behaving like a consumer that predates the adaptive model: a v2
// stream is rejected with a clean ErrUnsupportedVersion, never a parse
// error or panic.
func DecodeModuleV1(data []byte) (m *core.Module, err error) {
	defer func() {
		if r := recover(); r != nil {
			m, err = nil, malformedf("invalid structure: %v", r)
		}
	}()
	src := bytes.NewReader(data)
	r, err := newStreamReader(src, DecodeOptions{}, true)
	if err != nil {
		return nil, err
	}
	return decodeBody(r)
}

// newStreamReader parses the container header from an incremental byte
// source and returns the matching symbol reader. v1Only models a
// fixed-code-only consumer.
func newStreamReader(src io.ByteReader, o DecodeOptions, v1Only bool) (symReader, error) {
	var hdr [4]byte
	for i := range hdr {
		b, err := src.ReadByte()
		if err != nil {
			return nil, malformedf("stream truncated")
		}
		hdr[i] = b
	}
	if hdr[0] != 'S' || hdr[1] != 'T' || hdr[2] != 'S' {
		return nil, malformedf("bad magic")
	}
	switch hdr[3] {
	case versionV1:
		return newBitReader(src), nil
	case versionV2:
		if v1Only {
			return nil, fmt.Errorf("%w: stream is wire v2, this consumer speaks only v1", ErrUnsupportedVersion)
		}
		mb, err := src.ReadByte()
		if err != nil {
			return nil, malformedf("stream truncated")
		}
		if mb&7 != modelAdaptive {
			return nil, fmt.Errorf("%w: adaptive model revision %d", ErrUnsupportedVersion, mb&7)
		}
		if mb&^byte(7|dictFlag) != 0 {
			return nil, malformedf("reserved model-byte bits set")
		}
		var dict *Dictionary
		if mb&dictFlag != 0 {
			var id [8]byte
			for i := range id {
				b, err := src.ReadByte()
				if err != nil {
					return nil, malformedf("stream truncated")
				}
				id[i] = b
			}
			if o.Dict == nil {
				return nil, fmt.Errorf("%w: stream requires shared dictionary %x, none loaded", ErrUnsupportedVersion, id)
			}
			if o.Dict.ID != id {
				return nil, fmt.Errorf("%w: stream requires shared dictionary %x, have %x", ErrUnsupportedVersion, id, o.Dict.ID)
			}
			dict = o.Dict
		}
		plen, err := readLEB(src)
		if err != nil {
			return nil, err
		}
		if plen > 1<<31 {
			return nil, malformedf("payload length too large")
		}
		return newACReader(src, dict, int64(plen))
	default:
		return nil, fmt.Errorf("%w: version byte %q", ErrUnsupportedVersion, hdr[3])
	}
}

// decodeBody runs the shared production walk over an already-negotiated
// symbol reader.
func decodeBody(r symReader) (*core.Module, error) {
	d := &decoder{r: r, m: &core.Module{Types: core.NewTypeTable()}}
	nFuncs, err := d.decodeTables()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nFuncs; i++ {
		f, err := d.decodeFunc()
		if err != nil {
			return nil, fmt.Errorf("function %d: %w", i, err)
		}
		d.m.Funcs = append(d.m.Funcs, f)
	}
	// A distribution unit has exactly one spelling: anything after the
	// final production — trailing bytes, nonzero padding, or a payload
	// length that disagrees with the coder — is rejected.
	if err := r.end(); err != nil {
		return nil, err
	}
	// Residual admission checks (the paper's "trivial counter
	// comparisons"): cross-table linking consistency that the
	// context-restricted alphabets cannot express structurally. After
	// this, a successfully decoded module is well-formed by construction
	// — DecodeModule never returns a module the verifier would reject.
	if err := d.m.VerifyTables(); err != nil {
		return nil, malformedf("inconsistent tables: %v", err)
	}
	return d.m, nil
}

// DecodeVerified decodes a distribution unit and runs the module verifier
// over the result — the full consumer-side admission check. Loader caches
// call this exactly once per unit; the returned module is safe to share
// read-only between concurrent execution sessions (see interp.LoadTrusted).
func DecodeVerified(data []byte) (*core.Module, error) {
	return DecodeVerifiedOpts(data, DecodeOptions{})
}

// DecodeVerifiedOpts is DecodeVerified with explicit negotiation options.
func DecodeVerifiedOpts(data []byte, o DecodeOptions) (*core.Module, error) {
	m, err := DecodeModuleOpts(data, o)
	if err != nil {
		return nil, err
	}
	if err := m.Verify(core.VerifyOptions{}); err != nil {
		return nil, fmt.Errorf("wire: decoded module rejected by verifier: %w", err)
	}
	return m, nil
}

type decoder struct {
	r symReader
	m *core.Module
}

func (d *decoder) typeRef() (core.TypeID, error) {
	n := len(d.m.Types.ByID) - 1
	v, err := d.r.symbol(n)
	if err != nil {
		return core.NoType, err
	}
	return core.TypeID(v + 1), nil
}

func (d *decoder) refTypeRef() (core.TypeID, error) {
	t, err := d.typeRef()
	if err != nil {
		return t, err
	}
	if !d.m.Types.IsRefType(t) {
		return t, malformedf("expected a reference type, got %s", d.m.Types.Describe(t))
	}
	return t, nil
}

const maxCount = 1 << 22 // defensive bound on table and list sizes

func (d *decoder) count(what string) (int, error) {
	v, err := d.r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > maxCount {
		return 0, malformedf("%s count too large", what)
	}
	return int(v), nil
}

func (d *decoder) decodeTables() (int, error) {
	tt := d.m.Types
	r := d.r
	r.setProd(prodTables)

	nTypes, err := d.count("type")
	if err != nil {
		return 0, err
	}
	for i := 0; i < nTypes; i++ {
		isArray, err := r.bit()
		if err != nil {
			return 0, err
		}
		if isArray {
			elem, err := d.typeRef()
			if err != nil {
				return 0, err
			}
			et := tt.MustGet(elem)
			if et.Kind == core.TSafeRef || et.Kind == core.TSafeIndex ||
				et.Kind == core.TVoid || et.Kind == core.TMem {
				return 0, malformedf("array of non-value type")
			}
			tt.ArrayOf(elem)
			continue
		}
		name, err := r.str()
		if err != nil {
			return 0, err
		}
		super, err := d.typeRef()
		if err != nil {
			return 0, err
		}
		st := tt.MustGet(super)
		if st.Kind != core.TClass {
			return 0, malformedf("class %s extends a non-class type", name)
		}
		if tt.Class(name) != core.NoType {
			return 0, malformedf("class %s redeclared", name)
		}
		tt.AddClass(name, super)
	}

	nFields, err := d.count("field")
	if err != nil {
		return 0, err
	}
	for i := 0; i < nFields; i++ {
		var fr core.FieldRef
		if fr.Owner, err = d.refTypeRef(); err != nil {
			return 0, err
		}
		if fr.Name, err = r.str(); err != nil {
			return 0, err
		}
		if fr.Type, err = d.typeRef(); err != nil {
			return 0, err
		}
		ft := tt.MustGet(fr.Type)
		if ft.Kind == core.TSafeRef || ft.Kind == core.TSafeIndex ||
			ft.Kind == core.TVoid || ft.Kind == core.TMem {
			return 0, malformedf("field %s has a non-value type", fr.Name)
		}
		if fr.Static, err = r.bit(); err != nil {
			return 0, err
		}
		slot, err := d.count("slot")
		if err != nil {
			return 0, err
		}
		fr.Slot = int32(slot)
		d.m.Fields = append(d.m.Fields, fr)
	}

	nMethods, err := d.count("method")
	if err != nil {
		return 0, err
	}
	for i := 0; i < nMethods; i++ {
		var mr core.MethodRef
		if mr.Owner, err = d.refTypeRef(); err != nil {
			return 0, err
		}
		if mr.Name, err = r.str(); err != nil {
			return 0, err
		}
		np, err := d.count("parameter")
		if err != nil {
			return 0, err
		}
		for j := 0; j < np; j++ {
			p, err := d.typeRef()
			if err != nil {
				return 0, err
			}
			mr.Params = append(mr.Params, p)
		}
		if mr.Result, err = d.typeRef(); err != nil {
			return 0, err
		}
		if mr.Static, err = r.bit(); err != nil {
			return 0, err
		}
		if mr.IsCtor, err = r.bit(); err != nil {
			return 0, err
		}
		vs, err := r.svarint()
		if err != nil {
			return 0, err
		}
		mr.VSlot = int32(vs)
		bi, err := r.uvarint()
		if err != nil {
			return 0, err
		}
		mr.Builtin = core.BuiltinID(bi)
		fi, err := r.svarint()
		if err != nil {
			return 0, err
		}
		mr.FuncIdx = int32(fi)
		d.m.Methods = append(d.m.Methods, mr)
	}

	nClasses, err := d.count("class")
	if err != nil {
		return 0, err
	}
	for i := 0; i < nClasses; i++ {
		cd := &core.ClassDef{}
		if cd.Type, err = d.refTypeRef(); err != nil {
			return 0, err
		}
		ct := tt.MustGet(cd.Type)
		if ct.Kind != core.TClass || ct.Imported {
			return 0, malformedf("class definition for a non-unit type")
		}
		cd.Super = ct.Super
		nf, err := d.count("class field")
		if err != nil {
			return 0, err
		}
		for j := 0; j < nf; j++ {
			v, err := r.symbol(len(d.m.Fields))
			if err != nil {
				return 0, err
			}
			cd.Fields = append(cd.Fields, int32(v))
		}
		nm, err := d.count("class method")
		if err != nil {
			return 0, err
		}
		for j := 0; j < nm; j++ {
			v, err := r.symbol(len(d.m.Methods))
			if err != nil {
				return 0, err
			}
			cd.Methods = append(cd.Methods, int32(v))
		}
		ns, err := d.count("slot")
		if err != nil {
			return 0, err
		}
		cd.NumSlots = int32(ns)
		nst, err := d.count("static slot")
		if err != nil {
			return 0, err
		}
		cd.NumStatics = int32(nst)
		nv, err := d.count("vtable")
		if err != nil {
			return 0, err
		}
		for j := 0; j < nv; j++ {
			v, err := r.symbol(len(d.m.Methods))
			if err != nil {
				return 0, err
			}
			cd.VTable = append(cd.VTable, int32(v))
		}
		d.m.Classes = append(d.m.Classes, cd)
	}

	entry, err := r.svarint()
	if err != nil {
		return 0, err
	}
	d.m.Entry = int32(entry)
	nsi, err := d.count("static initializer")
	if err != nil {
		return 0, err
	}
	for i := 0; i < nsi; i++ {
		v, err := r.svarint()
		if err != nil {
			return 0, err
		}
		d.m.StaticInit = append(d.m.StaticInit, int32(v))
	}
	return d.count("function")
}

// decodeFunc reads one function in three phases and reconstructs its
// structure.
func (d *decoder) decodeFunc() (*core.Func, error) {
	r := d.r
	tt := d.m.Types
	r.setProd(prodSig)
	name, err := r.str()
	if err != nil {
		return nil, err
	}
	f := core.NewFunc(name)
	mi, err := r.svarint()
	if err != nil {
		return nil, err
	}
	f.Method = int32(mi)
	if f.Method >= 0 {
		if int(f.Method) >= len(d.m.Methods) {
			return nil, malformedf("function names method %d outside the table", f.Method)
		}
		mr := d.m.Methods[f.Method]
		if !mr.Static {
			f.Params = append(f.Params, tt.SafeRefOf(mr.Owner))
		}
		f.Params = append(f.Params, mr.Params...)
		f.Result = mr.Result
	} else {
		np, err := d.count("parameter")
		if err != nil {
			return nil, err
		}
		for i := 0; i < np; i++ {
			p, err := d.typeRef()
			if err != nil {
				return nil, err
			}
			f.Params = append(f.Params, p)
		}
		if f.Result, err = d.typeRef(); err != nil {
			return nil, err
		}
	}

	// Phase 1: CST productions; blocks materialize in order.
	r.setProd(prodCST)
	f.Body, err = d.decodeCST(f, 0)
	if err != nil {
		return nil, err
	}
	// Structural replay: edges, dominators, reference blocks.
	if err := linkShape(f); err != nil {
		return nil, err
	}
	f.Finish()

	// Phase 2: block contents in the canonical CST order.
	fd := &funcDecoder{d: d, f: f, rf: newRegFile(), pos: make(map[*core.Instr]int)}
	if err := fd.decodeBlocks(f.Body); err != nil {
		return nil, err
	}

	// Phase 3: phi operands, then CST value references.
	r.setProd(prodRefs)
	for _, b := range f.Blocks {
		for _, phi := range b.Phis {
			phi.Args = make([]core.ValueID, len(b.Preds))
			for k := range phi.Args {
				v, err := fd.decodeEdgeRef(b.Preds[k], phi.Plane())
				if err != nil {
					return nil, err
				}
				phi.Args[k] = v
			}
		}
	}
	if err := fd.decodeCSTRefs(f.Body); err != nil {
		return nil, err
	}
	return f, nil
}

const maxCSTDepth = 512

func (d *decoder) decodeCST(f *core.Func, depth int) (*core.CSTNode, error) {
	if depth > maxCSTDepth {
		return nil, malformedf("control structure tree too deep")
	}
	kind, err := d.r.symbol(core.NumCSTKinds)
	if err != nil {
		return nil, err
	}
	n := &core.CSTNode{Kind: core.CSTKind(kind)}
	switch n.Kind {
	case core.CSeq:
		nk, err := d.count("CST child")
		if err != nil {
			return nil, err
		}
		for i := 0; i < nk; i++ {
			k, err := d.decodeCST(f, depth+1)
			if err != nil {
				return nil, err
			}
			n.Kids = append(n.Kids, k)
		}
	case core.CBlock:
		n.Block = f.NewBlock()
	case core.CBreak, core.CContinue, core.CThrow:
	case core.CIf:
		hasElse, err := d.r.bit()
		if err != nil {
			return nil, err
		}
		k0, err := d.decodeCST(f, depth+1)
		if err != nil {
			return nil, err
		}
		n.Kids = append(n.Kids, k0)
		if hasElse {
			k1, err := d.decodeCST(f, depth+1)
			if err != nil {
				return nil, err
			}
			n.Kids = append(n.Kids, k1)
		}
	case core.CWhile, core.CDoWhile, core.CTry:
		for i := 0; i < 2; i++ {
			k, err := d.decodeCST(f, depth+1)
			if err != nil {
				return nil, err
			}
			n.Kids = append(n.Kids, k)
		}
	case core.CReturn:
		hasVal, err := d.r.bit()
		if err != nil {
			return nil, err
		}
		if hasVal {
			n.Val = core.ValueID(-1) // placeholder until phase 3
		}
	default:
		return nil, malformedf("unknown CST production %d", kind)
	}
	return n, nil
}
