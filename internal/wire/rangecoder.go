package wire

import "io"

// Binary range coder for wire format v2. The construction is the
// classic carry-cached range coder (as used by LZMA): 32-bit range,
// 11-bit probabilities adapted by shift, byte-at-a-time renormalization
// with carry propagation buffered through a cache byte. Everything is
// integer arithmetic, so encoder and decoder are exactly reproducible
// across platforms — the determinism the canonical-wire oracle depends
// on.
//
// Byte-count symmetry: the decoder preloads 5 bytes and then reads one
// byte per renormalization; the encoder's final flush performs 5 extra
// shiftLow steps, the last of which always drains the pending
// carry-cache run (a pending run of 0xFF bytes in `low` is at most 4
// bytes long, so the condition in shiftLow fires by the fifth flush
// step at the latest). The encoder therefore emits exactly the number
// of bytes the decoder consumes, which lets the v2 container enforce
// consumed == declared-length and reject any trailing garbage.
const (
	rcTop        = 1 << 24
	probBits     = 11
	probOne      = 1 << probBits
	probInit     = probOne / 2
	probMoveBits = 5
)

type rcEncoder struct {
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int
	out       []byte
}

func newRCEncoder() *rcEncoder {
	return &rcEncoder{rng: 0xFFFFFFFF, cacheSize: 1}
}

func (e *rcEncoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || e.low>>32 != 0 {
		carry := byte(e.low >> 32)
		temp := e.cache
		for {
			e.out = append(e.out, temp+carry)
			temp = 0xFF
			e.cacheSize--
			if e.cacheSize == 0 {
				break
			}
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSize++
	e.low = (e.low << 8) & 0xFFFFFFFF
}

// encodeBit codes one bit against the adaptive probability *p (the
// chance that the bit is 0, in 1/probOne units) and moves *p toward the
// observed outcome. The decoder applies the identical update, keeping
// both models in lockstep.
func (e *rcEncoder) encodeBit(p *uint16, bit int) {
	bound := (e.rng >> probBits) * uint32(*p)
	if bit == 0 {
		e.rng = bound
		*p += (probOne - *p) >> probMoveBits
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*p -= *p >> probMoveBits
	}
	for e.rng < rcTop {
		e.rng <<= 8
		e.shiftLow()
	}
}

// encodeDirect codes n bits of v (most significant first) at fixed
// probability 1/2 with no model update — used for float64 payloads
// where adaptation has nothing to learn.
func (e *rcEncoder) encodeDirect(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		e.rng >>= 1
		if v>>uint(i)&1 != 0 {
			e.low += uint64(e.rng)
		}
		for e.rng < rcTop {
			e.rng <<= 8
			e.shiftLow()
		}
	}
}

// finish flushes the coder and returns the complete payload. The first
// emitted byte is always 0 (the initial cache), which the decoder
// verifies.
func (e *rcEncoder) finish() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

type rcDecoder struct {
	src io.ByteReader
	rng uint32
	cod uint32
}

func newRCDecoder(src io.ByteReader) (*rcDecoder, error) {
	d := &rcDecoder{src: src, rng: 0xFFFFFFFF}
	b, err := d.readByte()
	if err != nil {
		return nil, err
	}
	if b != 0 {
		return nil, malformedf("corrupt range-coder prologue")
	}
	for i := 0; i < 4; i++ {
		b, err := d.readByte()
		if err != nil {
			return nil, err
		}
		d.cod = d.cod<<8 | uint32(b)
	}
	return d, nil
}

func (d *rcDecoder) readByte() (byte, error) {
	b, err := d.src.ReadByte()
	if err != nil {
		return 0, malformedf("stream truncated")
	}
	return b, nil
}

func (d *rcDecoder) decodeBit(p *uint16) (int, error) {
	bound := (d.rng >> probBits) * uint32(*p)
	var bit int
	if d.cod < bound {
		d.rng = bound
		*p += (probOne - *p) >> probMoveBits
	} else {
		d.cod -= bound
		d.rng -= bound
		*p -= *p >> probMoveBits
		bit = 1
	}
	for d.rng < rcTop {
		b, err := d.readByte()
		if err != nil {
			return 0, err
		}
		d.cod = d.cod<<8 | uint32(b)
		d.rng <<= 8
	}
	return bit, nil
}

func (d *rcDecoder) decodeDirect(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		d.rng >>= 1
		var bit uint64
		if d.cod >= d.rng {
			d.cod -= d.rng
			bit = 1
		}
		v = v<<1 | bit
		for d.rng < rcTop {
			b, err := d.readByte()
			if err != nil {
				return 0, err
			}
			d.cod = d.cod<<8 | uint32(b)
			d.rng <<= 8
		}
	}
	return v, nil
}
