package wire

import (
	"safetsa/internal/core"
)

// linkShape reconstructs, from the bare Control Structure Tree, all the
// structural function state the builder produced on the producer side:
// normal predecessor edges (in the canonical per-construct order), the
// structural immediate dominators, each node's reference block (At), and
// the loop/handler block pointers. Exception edges are added afterwards,
// while instructions are decoded, in program order.
//
// This is the consumer half of the paper's claim that control flow and
// dominance are integrated in the transmitted structure: nothing about
// edges or dominators appears in the byte stream.
func linkShape(f *core.Func) error {
	s := &shaper{f: f}
	if err := s.walk(f.Body); err != nil {
		return err
	}
	if f.Entry == nil {
		return malformedf("function %s has no entry block", f.Name)
	}
	return nil
}

type loopShape struct {
	header       *core.Block
	contToHeader bool
	contEdges    []core.Pred
	breakEdges   []core.Pred
}

type shaper struct {
	f   *core.Func
	cur *core.Block
	// pending carries the edges and structural dominator for the next
	// CBlock leaf.
	pending     []core.Pred
	pendingIDom *core.Block
	loops       []*loopShape
}

// terminated reports whether the active path has ended.
type walkResult bool

const (
	flows      walkResult = false
	terminated walkResult = true
)

func (s *shaper) walk(n *core.CSTNode) error {
	_, err := s.walkNode(n)
	return err
}

func (s *shaper) walkNode(n *core.CSTNode) (walkResult, error) {
	if n == nil {
		return flows, nil
	}
	switch n.Kind {
	case core.CSeq:
		for i, k := range n.Kids {
			t, err := s.walkNode(k)
			if err != nil {
				return t, err
			}
			if t == terminated {
				if i != len(n.Kids)-1 {
					return t, malformedf("code after a terminator in a sequence")
				}
				return terminated, nil
			}
		}
		return flows, nil

	case core.CBlock:
		b := n.Block
		if s.f.Entry == nil {
			s.f.Entry = b
		} else {
			b.Preds = s.pending
			b.IDom = s.pendingIDom
			if b.IDom == nil {
				return flows, malformedf("non-entry block without a dominator context")
			}
		}
		s.pending, s.pendingIDom = nil, nil
		s.cur = b
		return flows, nil

	case core.CIf:
		c := s.cur
		if c == nil {
			return flows, malformedf("if without a current block")
		}
		n.At = c
		thenTerm, thenEnd, err := s.walkRegion(n.Kids[0], []core.Pred{{From: c}}, c)
		if err != nil {
			return flows, err
		}
		var pend []core.Pred
		if thenTerm == flows {
			pend = append(pend, core.Pred{From: thenEnd})
		}
		if len(n.Kids) > 1 {
			elseTerm, elseEnd, err := s.walkRegion(n.Kids[1], []core.Pred{{From: c}}, c)
			if err != nil {
				return flows, err
			}
			if elseTerm == flows {
				pend = append(pend, core.Pred{From: elseEnd})
			}
		} else {
			pend = append(pend, core.Pred{From: c})
		}
		if len(pend) == 0 {
			s.cur = nil
			return terminated, nil
		}
		s.pending, s.pendingIDom = pend, c
		return flows, nil

	case core.CWhile:
		c := s.cur
		if c == nil {
			return flows, malformedf("while without a current block")
		}
		// Condition region: its first leaf is the loop header, whose
		// back and continue edges are appended below.
		condTerm, condEnd, err := s.walkRegion(n.Kids[0], []core.Pred{{From: c}}, c)
		if err != nil {
			return flows, err
		}
		if condTerm == terminated {
			return flows, malformedf("loop condition region terminates")
		}
		header := firstBlock(n.Kids[0])
		if header == nil {
			return flows, malformedf("loop without a header block")
		}
		n.Block = header
		n.At = condEnd

		ls := &loopShape{header: header, contToHeader: true}
		s.loops = append(s.loops, ls)
		bodyTerm, bodyEnd, err := s.walkRegion(n.Kids[1], []core.Pred{{From: condEnd}}, condEnd)
		if err != nil {
			return flows, err
		}
		s.loops = s.loops[:len(s.loops)-1]
		if bodyTerm == flows {
			header.Preds = append(header.Preds, core.Pred{From: bodyEnd})
		}
		pend := append([]core.Pred{{From: condEnd}}, ls.breakEdges...)
		s.pending, s.pendingIDom = pend, condEnd
		return flows, nil

	case core.CDoWhile:
		c := s.cur
		if c == nil {
			return flows, malformedf("do-while without a current block")
		}
		bodyEntry := firstBlock(n.Kids[0])
		if bodyEntry == nil {
			return flows, malformedf("do-while without a body block")
		}
		n.Block = bodyEntry
		ls := &loopShape{header: bodyEntry}
		s.loops = append(s.loops, ls)
		bodyTerm, bodyEnd, err := s.walkRegion(n.Kids[0], []core.Pred{{From: c}}, c)
		if err != nil {
			return flows, err
		}
		s.loops = s.loops[:len(s.loops)-1]

		latchPreds := append([]core.Pred(nil), ls.contEdges...)
		if bodyTerm == flows {
			latchPreds = append(latchPreds, core.Pred{From: bodyEnd})
		}
		if len(latchPreds) == 0 {
			return flows, malformedf("do-while latch is unreachable")
		}
		latchTerm, condEnd, err := s.walkRegion(n.Kids[1], latchPreds, bodyEntry)
		if err != nil {
			return flows, err
		}
		if latchTerm == terminated {
			return flows, malformedf("do-while latch region terminates")
		}
		n.At = condEnd
		bodyEntry.Preds = append(bodyEntry.Preds, core.Pred{From: condEnd})

		pend := append([]core.Pred{{From: condEnd}}, ls.breakEdges...)
		s.pending, s.pendingIDom = pend, bodyEntry
		return flows, nil

	case core.CReturn, core.CThrow:
		if s.cur == nil {
			return flows, malformedf("%v without a current block", n.Kind)
		}
		n.At = s.cur
		s.cur = nil
		return terminated, nil

	case core.CBreak:
		if len(s.loops) == 0 || s.cur == nil {
			return flows, malformedf("break outside a loop")
		}
		ls := s.loops[len(s.loops)-1]
		ls.breakEdges = append(ls.breakEdges, core.Pred{From: s.cur})
		s.cur = nil
		return terminated, nil

	case core.CContinue:
		if len(s.loops) == 0 || s.cur == nil {
			return flows, malformedf("continue outside a loop")
		}
		ls := s.loops[len(s.loops)-1]
		if ls.contToHeader {
			ls.header.Preds = append(ls.header.Preds, core.Pred{From: s.cur})
		} else {
			ls.contEdges = append(ls.contEdges, core.Pred{From: s.cur})
		}
		s.cur = nil
		return terminated, nil

	case core.CTry:
		c := s.cur
		if c == nil {
			return flows, malformedf("try without a current block")
		}
		bodyTerm, bodyEnd, err := s.walkRegion(n.Kids[0], []core.Pred{{From: c}}, c)
		if err != nil {
			return flows, err
		}
		handler := firstBlock(n.Kids[1])
		if handler == nil {
			return flows, malformedf("try without a handler block")
		}
		n.Handler = handler
		// Exception edges are appended during instruction decoding; the
		// handler region starts with no predecessors.
		handlerTerm, handlerEnd, err := s.walkRegion(n.Kids[1], nil, c)
		if err != nil {
			return flows, err
		}
		var pend []core.Pred
		if bodyTerm == flows {
			pend = append(pend, core.Pred{From: bodyEnd})
		}
		if handlerTerm == flows {
			pend = append(pend, core.Pred{From: handlerEnd})
		}
		if len(pend) == 0 {
			s.cur = nil
			return terminated, nil
		}
		s.pending, s.pendingIDom = pend, c
		return flows, nil
	}
	return flows, malformedf("unknown CST production %d", n.Kind)
}

// walkRegion enters a sub-region whose first leaf takes the given edges
// and dominator, then returns whether it terminated and its final block.
func (s *shaper) walkRegion(n *core.CSTNode, preds []core.Pred, idom *core.Block) (walkResult, *core.Block, error) {
	savedCur := s.cur
	savedPend, savedIDom := s.pending, s.pendingIDom
	s.pending, s.pendingIDom = preds, idom
	t, err := s.walkNode(n)
	end := s.cur
	s.cur = savedCur
	s.pending, s.pendingIDom = savedPend, savedIDom
	if err != nil {
		return t, end, err
	}
	if t == flows && end == nil {
		return t, end, malformedf("region flowed off without a block")
	}
	// An empty region (no leaf consumed the pending edges) behaves as a
	// direct fall-through; the builder never emits one, so reject.
	if t == flows && len(preds) > 0 && end != nil && end == savedCur {
		return t, end, malformedf("region with no blocks")
	}
	return t, end, nil
}

// firstBlock finds the first CBlock leaf of a subtree.
func firstBlock(n *core.CSTNode) *core.Block {
	if n == nil {
		return nil
	}
	if n.Kind == core.CBlock {
		return n.Block
	}
	for _, k := range n.Kids {
		if b := firstBlock(k); b != nil {
			return b
		}
	}
	return nil
}
