package wire

import (
	"fmt"
	"io"
	"math"
	"math/bits"

	"safetsa/internal/core"
)

// Production contexts for the v2 adaptive model. Every opcode is its
// own production; the section-level productions below cover the symbol
// positions that are not governed by a specific opcode. The encoder and
// decoder switch contexts with setProd at identical grammar points, so
// the per-production frequency models adapt in lockstep.
const (
	prodOp     = int(core.NumOps) + iota // opcode selector position
	prodTables                           // type/field/method/class tables
	prodSig                              // function name + signature
	prodCST                              // control structure tree productions
	prodBlock                            // per-block phi and instruction counts
	prodRefs                             // phase-3 phi operands and CST refs
	numProd
)

// prodCtx holds the adaptive bit probabilities for one production:
// truncated-binary symbol bits by position, standalone flag bits by
// order of appearance, and uvarint continuation/payload bits by group.
type prodCtx struct {
	sym  [24]uint16
	flag [8]uint16
	cont [16]uint16
	pay  [16][4]uint16
}

// model is the complete adaptive state shared (by symmetric
// construction, not by reference) between encoder and decoder. A
// Dictionary primes the initial probabilities and contributes a shared
// string table; everything else starts at probInit.
type model struct {
	prods   []prodCtx // one per production, numProd entries
	lit     [256]uint16
	useDict uint16
	dictSym [24]uint16

	dictStrings []string
	dictIndex   map[string]int // writer-side lookup, nil on the reader
}

func newModel(dict *Dictionary) *model {
	m := &model{prods: make([]prodCtx, numProd)}
	m.eachProb(func(p *uint16) { *p = probInit })
	if dict != nil {
		if len(dict.Probs) > 0 {
			i := 0
			m.eachProb(func(p *uint16) { *p = dict.Probs[i]; i++ })
		}
		m.dictStrings = dict.Strings
		m.dictIndex = make(map[string]int, len(dict.Strings))
		for i, s := range dict.Strings {
			m.dictIndex[s] = i
		}
	}
	return m
}

// eachProb visits every adaptive probability in a fixed canonical
// order — the order Dictionary.Probs is serialized in.
func (m *model) eachProb(f func(*uint16)) {
	for i := range m.prods {
		pc := &m.prods[i]
		for j := range pc.sym {
			f(&pc.sym[j])
		}
		for j := range pc.flag {
			f(&pc.flag[j])
		}
		for j := range pc.cont {
			f(&pc.cont[j])
		}
		for j := range pc.pay {
			for k := range pc.pay[j] {
				f(&pc.pay[j][k])
			}
		}
	}
	for j := range m.lit {
		f(&m.lit[j])
	}
	f(&m.useDict)
	for j := range m.dictSym {
		f(&m.dictSym[j])
	}
}

func (m *model) snapshot() []uint16 {
	var out []uint16
	m.eachProb(func(p *uint16) { out = append(out, *p) })
	return out
}

// modelProbCount is the exact length of a probability snapshot; a
// dictionary with any other count is rejected at parse time.
func modelProbCount() int {
	m := &model{prods: make([]prodCtx, numProd)}
	n := 0
	m.eachProb(func(*uint16) { n++ })
	return n
}

// acEncodeSymbol writes one truncated-binary symbol with each code bit
// adapted in the per-position context slice.
func acEncodeSymbol(rc *rcEncoder, ctx []uint16, v, n int) {
	if n <= 0 || v < 0 || v >= n {
		panic(fmt.Sprintf("wire: symbol %d outside alphabet of size %d", v, n))
	}
	if n == 1 {
		return
	}
	k := uint(bits.Len(uint(n - 1)))
	u := (1 << k) - n
	var val uint64
	var nb uint
	if v < u {
		val, nb = uint64(v), k-1
	} else {
		val, nb = uint64(v+u), k
	}
	for i := int(nb) - 1; i >= 0; i-- {
		pos := int(nb) - 1 - i
		if pos >= len(ctx) {
			pos = len(ctx) - 1
		}
		rc.encodeBit(&ctx[pos], int(val>>uint(i)&1))
	}
}

// acDecodeSymbol mirrors acEncodeSymbol: it reads the k-1 common bits,
// and the conditional extra bit exactly when the prefix selects a long
// codeword — the same context sequence the encoder used on both paths.
func acDecodeSymbol(rc *rcDecoder, ctx []uint16, n int) (int, error) {
	if n <= 0 {
		return 0, malformedf("empty alphabet (no value of the required kind is in scope)")
	}
	if n == 1 {
		return 0, nil
	}
	k := uint(bits.Len(uint(n - 1)))
	u := (1 << k) - n
	var v uint64
	for pos := 0; pos < int(k-1); pos++ {
		cp := pos
		if cp >= len(ctx) {
			cp = len(ctx) - 1
		}
		b, err := rc.decodeBit(&ctx[cp])
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	if int(v) < u {
		return int(v), nil
	}
	cp := int(k - 1)
	if cp >= len(ctx) {
		cp = len(ctx) - 1
	}
	b, err := rc.decodeBit(&ctx[cp])
	if err != nil {
		return 0, err
	}
	return int(v)<<1 + b - u, nil
}

// acWriter implements symWriter over the adaptive model — wire v2.
type acWriter struct {
	mdl     *model
	rc      *rcEncoder
	prod    int
	flagIdx int
}

func newACWriter(dict *Dictionary) *acWriter {
	return &acWriter{mdl: newModel(dict), rc: newRCEncoder()}
}

func (w *acWriter) finish() []byte { return w.rc.finish() }

func (w *acWriter) pc() *prodCtx { return &w.mdl.prods[w.prod] }

func (w *acWriter) setProd(p int) {
	if p < 0 || p >= numProd {
		p = prodOp
	}
	w.prod = p
	w.flagIdx = 0
}

func (w *acWriter) bit(b bool) {
	pc := w.pc()
	i := w.flagIdx
	if i >= len(pc.flag) {
		i = len(pc.flag) - 1
	}
	w.flagIdx++
	bit := 0
	if b {
		bit = 1
	}
	w.rc.encodeBit(&pc.flag[i], bit)
}

func (w *acWriter) symbol(v, n int) {
	acEncodeSymbol(w.rc, w.pc().sym[:], v, n)
}

func (w *acWriter) uvarint(v uint64) {
	pc := w.pc()
	g := 0
	for {
		gi := g
		if gi >= len(pc.cont) {
			gi = len(pc.cont) - 1
		}
		if v < 16 {
			w.rc.encodeBit(&pc.cont[gi], 0)
			for j := 3; j >= 0; j-- {
				w.rc.encodeBit(&pc.pay[gi][3-j], int(v>>uint(j)&1))
			}
			return
		}
		w.rc.encodeBit(&pc.cont[gi], 1)
		lo := v & 15
		for j := 3; j >= 0; j-- {
			w.rc.encodeBit(&pc.pay[gi][3-j], int(lo>>uint(j)&1))
		}
		v >>= 4
		g++
	}
}

func (w *acWriter) svarint(v int64) {
	w.uvarint(uint64(v)<<1 ^ uint64(v>>63))
}

func (w *acWriter) float64bits(f float64) {
	w.rc.encodeDirect(math.Float64bits(f), 64)
}

func (w *acWriter) litByte(b byte) {
	ctx := 1
	for i := 7; i >= 0; i-- {
		bit := int(b>>uint(i)) & 1
		w.rc.encodeBit(&w.mdl.lit[ctx], bit)
		ctx = ctx<<1 | bit
	}
}

func (w *acWriter) str(s string) {
	m := w.mdl
	if len(m.dictStrings) > 0 {
		if idx, ok := m.dictIndex[s]; ok {
			w.rc.encodeBit(&m.useDict, 1)
			acEncodeSymbol(w.rc, m.dictSym[:], idx, len(m.dictStrings))
			return
		}
		w.rc.encodeBit(&m.useDict, 0)
	}
	w.uvarint(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		w.litByte(s[i])
	}
}

// acReader implements symReader over the adaptive model — the decode
// side of wire v2. It is constructed after the container header (model
// byte, optional dictionary id, payload length) has been parsed.
type acReader struct {
	mdl     *model
	rc      *rcDecoder
	lim     *limitedByteSource
	outer   io.ByteReader
	prod    int
	flagIdx int
}

// limitedByteSource bounds the range coder to the declared payload
// length: a read past the limit reports EOF, which the coder surfaces
// as a truncation error.
type limitedByteSource struct {
	src io.ByteReader
	n   int64
}

func (l *limitedByteSource) ReadByte() (byte, error) {
	if l.n <= 0 {
		return 0, io.EOF
	}
	b, err := l.src.ReadByte()
	if err == nil {
		l.n--
	}
	return b, err
}

func newACReader(src io.ByteReader, dict *Dictionary, payloadLen int64) (*acReader, error) {
	lim := &limitedByteSource{src: src, n: payloadLen}
	rc, err := newRCDecoder(lim)
	if err != nil {
		return nil, err
	}
	return &acReader{mdl: newModel(dict), rc: rc, lim: lim, outer: src}, nil
}

func (r *acReader) pc() *prodCtx { return &r.mdl.prods[r.prod] }

func (r *acReader) setProd(p int) {
	if p < 0 || p >= numProd {
		p = prodOp
	}
	r.prod = p
	r.flagIdx = 0
}

func (r *acReader) bit() (bool, error) {
	pc := r.pc()
	i := r.flagIdx
	if i >= len(pc.flag) {
		i = len(pc.flag) - 1
	}
	r.flagIdx++
	b, err := r.rc.decodeBit(&pc.flag[i])
	return b == 1, err
}

func (r *acReader) symbol(n int) (int, error) {
	return acDecodeSymbol(r.rc, r.pc().sym[:], n)
}

func (r *acReader) uvarint() (uint64, error) {
	pc := r.pc()
	var v uint64
	var shift uint
	g := 0
	for {
		gi := g
		if gi >= len(pc.cont) {
			gi = len(pc.cont) - 1
		}
		c, err := r.rc.decodeBit(&pc.cont[gi])
		if err != nil {
			return 0, err
		}
		var grp uint64
		for j := 0; j < 4; j++ {
			b, err := r.rc.decodeBit(&pc.pay[gi][j])
			if err != nil {
				return 0, err
			}
			grp = grp<<1 | uint64(b)
		}
		if shift > 60 {
			return 0, malformedf("varint overflow")
		}
		v |= grp << shift
		if c == 0 {
			return v, nil
		}
		shift += 4
		g++
	}
}

func (r *acReader) svarint() (int64, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

func (r *acReader) float64bits() (float64, error) {
	v, err := r.rc.decodeDirect(64)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(v), nil
}

func (r *acReader) litByte() (byte, error) {
	ctx := 1
	for i := 0; i < 8; i++ {
		b, err := r.rc.decodeBit(&r.mdl.lit[ctx])
		if err != nil {
			return 0, err
		}
		ctx = ctx<<1 | b
	}
	return byte(ctx - 256), nil
}

func (r *acReader) str() (string, error) {
	m := r.mdl
	if len(m.dictStrings) > 0 {
		b, err := r.rc.decodeBit(&m.useDict)
		if err != nil {
			return "", err
		}
		if b == 1 {
			idx, err := acDecodeSymbol(r.rc, m.dictSym[:], len(m.dictStrings))
			if err != nil {
				return "", err
			}
			return m.dictStrings[idx], nil
		}
	}
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", malformedf("string too long")
	}
	buf := make([]byte, n)
	for i := range buf {
		if buf[i], err = r.litByte(); err != nil {
			return "", err
		}
	}
	return string(buf), nil
}

// end enforces the v2 canonical tail: the range coder must have
// consumed the declared payload exactly (byte-count symmetry with the
// encoder, see rangecoder.go), and the enclosing source must be at EOF.
func (r *acReader) end() error {
	if r.lim.n != 0 {
		return malformedf("payload length does not match the final production")
	}
	if _, err := r.outer.ReadByte(); err == nil {
		return malformedf("trailing data after the final production")
	}
	return nil
}
