// Package wire implements the SafeTSA externalization of section 7: a
// program is a sequence of symbols, each drawn from a finite alphabet
// fully determined by the preceding context. Version 1 emits each symbol
// with a simple fixed-probability prefix code (truncated binary — the
// code Huffman's algorithm produces for equiprobable symbols); version 2
// keeps the identical symbol decomposition but drives every bit through
// per-production adaptive probability models and a binary range coder
// (see model.go). The encoder transmits the Control Structure Tree
// first, then the basic blocks in the CST-derived dominator pre-order,
// and the phi operands last. Because every operand is decoded against
// the register planes actually in scope, a decoded module is
// referentially secure by construction: a malicious byte stream either
// fails to decode or denotes some well-formed program.
package wire

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
)

// ErrMalformed is wrapped by all decode failures.
var ErrMalformed = errors.New("wire: malformed SafeTSA stream")

func malformedf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}

// symWriter is the symbol sink the encoder writes productions through.
// bitWriter (v1, fixed-probability truncated binary) and acWriter (v2,
// adaptive range coding) both implement it, so one production walk
// serves every wire version.
type symWriter interface {
	bit(b bool)
	symbol(v, n int)
	uvarint(v uint64)
	svarint(v int64)
	float64bits(f float64)
	str(s string)
	// setProd switches the adaptive probability context to the given
	// production (an opcode or one of the prod* section ids); the v1
	// fixed code ignores it. Encoder and decoder call it at identical
	// grammar points, which is what keeps the adaptive models in
	// lockstep.
	setProd(p int)
}

// symReader mirrors symWriter on the decode side.
type symReader interface {
	bit() (bool, error)
	symbol(n int) (int, error)
	uvarint() (uint64, error)
	svarint() (int64, error)
	float64bits() (float64, error)
	str() (string, error)
	setProd(p int)
	// end reports whether the stream is cleanly exhausted: at most a
	// partial byte of zero padding may remain, and the underlying source
	// must be at EOF. Trailing data after the final production is a
	// decode error — a distribution unit has exactly one spelling.
	end() error
}

// bitWriter accumulates a bit stream, most significant bit of each byte
// first.
type bitWriter struct {
	buf  []byte
	cur  byte
	nCur uint
}

func (w *bitWriter) writeBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.cur = w.cur<<1 | byte((v>>uint(i))&1)
		w.nCur++
		if w.nCur == 8 {
			w.buf = append(w.buf, w.cur)
			w.cur, w.nCur = 0, 0
		}
	}
}

// bytes flushes (padding the final byte with zeros) and returns the
// stream.
func (w *bitWriter) bytes() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.nCur))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// bitLen reports the current length in bits.
func (w *bitWriter) bitLen() int { return len(w.buf)*8 + int(w.nCur) }

// symbol emits one symbol v from an alphabet of size n using the
// truncated binary code. n must be >= 1 and v < n; n == 1 emits nothing
// (the symbol is forced).
func (w *bitWriter) symbol(v, n int) {
	if n <= 0 || v < 0 || v >= n {
		panic(fmt.Sprintf("wire: symbol %d outside alphabet of size %d", v, n))
	}
	if n == 1 {
		return
	}
	k := uint(bits.Len(uint(n - 1)))
	u := (1 << k) - n // number of short (k-1 bit) codewords
	if v < u {
		w.writeBits(uint64(v), k-1)
	} else {
		w.writeBits(uint64(v+u), k)
	}
}

// uvarint emits an unbounded non-negative integer as 4-bit groups, each
// preceded by a continuation bit.
func (w *bitWriter) uvarint(v uint64) {
	for {
		if v < 16 {
			w.writeBits(0, 1)
			w.writeBits(v, 4)
			return
		}
		w.writeBits(1, 1)
		w.writeBits(v&15, 4)
		v >>= 4
	}
}

// svarint emits a signed integer with zigzag coding.
func (w *bitWriter) svarint(v int64) {
	w.uvarint(uint64(v)<<1 ^ uint64(v>>63))
}

func (w *bitWriter) float64bits(f float64) {
	w.writeBits(math.Float64bits(f), 64)
}

func (w *bitWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		w.writeBits(uint64(s[i]), 8)
	}
}

func (w *bitWriter) bit(b bool) {
	if b {
		w.writeBits(1, 1)
	} else {
		w.writeBits(0, 1)
	}
}

// setProd is a no-op: the v1 fixed-probability code has no adaptive
// state to steer.
func (w *bitWriter) setProd(int) {}

// bitReader mirrors bitWriter over an incremental byte source, so the
// same decoder drives both whole-buffer decoding and streaming decode
// behind an io.Reader.
type bitReader struct {
	src io.ByteReader
	cur byte // unconsumed bits, left-aligned
	n   uint // number of unconsumed bits in cur
}

func newBitReader(src io.ByteReader) *bitReader { return &bitReader{src: src} }

func (r *bitReader) readBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		if r.n == 0 {
			b, err := r.src.ReadByte()
			if err != nil {
				return 0, malformedf("stream truncated")
			}
			r.cur, r.n = b, 8
		}
		v = v<<1 | uint64(r.cur>>7)
		r.cur <<= 1
		r.n--
	}
	return v, nil
}

// symbol reads one truncated-binary symbol from an alphabet of size n.
func (r *bitReader) symbol(n int) (int, error) {
	if n <= 0 {
		return 0, malformedf("empty alphabet (no value of the required kind is in scope)")
	}
	if n == 1 {
		return 0, nil
	}
	k := uint(bits.Len(uint(n - 1)))
	u := (1 << k) - n
	v, err := r.readBits(k - 1)
	if err != nil {
		return 0, err
	}
	if int(v) < u {
		return int(v), nil
	}
	b, err := r.readBits(1)
	if err != nil {
		return 0, err
	}
	return int(v)<<1 + int(b) - u, nil
}

func (r *bitReader) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		c, err := r.readBits(1)
		if err != nil {
			return 0, err
		}
		g, err := r.readBits(4)
		if err != nil {
			return 0, err
		}
		if shift > 60 {
			return 0, malformedf("varint overflow")
		}
		v |= g << shift
		if c == 0 {
			// The final group carries the most significant bits for
			// the c==0 short path; mirror the writer exactly.
			if shift == 0 {
				return g, nil
			}
			return v, nil
		}
		shift += 4
	}
}

func (r *bitReader) svarint() (int64, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

func (r *bitReader) float64bits() (float64, error) {
	v, err := r.readBits(64)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(v), nil
}

const maxStringLen = 1 << 20

func (r *bitReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", malformedf("string too long")
	}
	b := make([]byte, n)
	for i := range b {
		v, err := r.readBits(8)
		if err != nil {
			return "", err
		}
		b[i] = byte(v)
	}
	return string(b), nil
}

func (r *bitReader) bit() (bool, error) {
	v, err := r.readBits(1)
	if err != nil {
		return false, err
	}
	return v == 1, nil
}

// setProd is a no-op for the fixed-probability code.
func (r *bitReader) setProd(int) {}

// end enforces the canonical tail: any unconsumed bits of the current
// byte must be the encoder's zero padding, and the byte source must be
// exhausted. Trailing garbage after the final production is rejected so
// every admissible unit has exactly one on-the-wire spelling.
func (r *bitReader) end() error {
	if r.cur != 0 {
		return malformedf("nonzero padding after the final production")
	}
	if _, err := r.src.ReadByte(); err == nil {
		return malformedf("trailing data after the final production")
	}
	return nil
}
