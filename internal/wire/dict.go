package wire

import (
	"crypto/sha256"
	"encoding/binary"
	"io"
	"sort"

	"safetsa/internal/core"
)

// Dictionary is a shared compression dictionary trained over a
// distribution bundle: a string table for names that recur across
// units, plus trained initial probabilities for the adaptive model.
// A dictionary only ever primes the model — it is re-validated content
// like a peer fill, never trusted: every string pulled from it still
// passes the same structural admission checks as an inline string, so
// a hostile dictionary can change compression, not admissibility.
type Dictionary struct {
	// ID is the first 8 bytes of the SHA-256 of the serialized body;
	// v2 streams that use a dictionary carry it in the header so the
	// consumer can detect a mismatched dictionary before decoding.
	ID      [8]byte
	Strings []string
	// Probs is a full probability snapshot in eachProb order (see
	// model.go), or empty for default initialization.
	Probs []uint16
}

const (
	maxDictStrings = 4096
	dictVersion    = 1
)

var dictMagic = [4]byte{'S', 'T', 'S', 'D'}

// strCollector is a symWriter that records only the strings a module
// puts on the wire — running the real encoder over it yields exactly
// the dictionary-eligible string population.
type strCollector struct{ counts map[string]int }

func (c *strCollector) bit(bool)            {}
func (c *strCollector) symbol(int, int)     {}
func (c *strCollector) uvarint(uint64)      {}
func (c *strCollector) svarint(int64)       {}
func (c *strCollector) float64bits(float64) {}
func (c *strCollector) str(s string)        { c.counts[s]++ }
func (c *strCollector) setProd(int)         {}

// TrainDictionary builds a dictionary over a distribution bundle: the
// string table holds every string that appears at least twice across
// the bundle (capped, most frequent first), and the probabilities are
// the adaptive model's state after encoding the whole bundle — so a
// fresh unit starts from the bundle's learned symbol statistics instead
// of the uniform prior.
func TrainDictionary(mods []*core.Module) *Dictionary {
	c := &strCollector{counts: make(map[string]int)}
	for _, m := range mods {
		(&encoder{m: m, w: c}).encodeAll()
	}
	var names []string
	for s, n := range c.counts {
		if n >= 2 && len(s) >= 2 {
			names = append(names, s)
		}
	}
	sort.Slice(names, func(i, j int) bool {
		if c.counts[names[i]] != c.counts[names[j]] {
			return c.counts[names[i]] > c.counts[names[j]]
		}
		return names[i] < names[j]
	})
	if len(names) > maxDictStrings {
		names = names[:maxDictStrings]
	}

	mdl := newModel(nil)
	for _, m := range mods {
		aw := &acWriter{mdl: mdl, rc: newRCEncoder()}
		(&encoder{m: m, w: aw}).encodeAll()
		aw.finish()
	}

	d := &Dictionary{Strings: names, Probs: mdl.snapshot()}
	d.ID = dictID(d.body())
	return d
}

func dictID(body []byte) [8]byte {
	sum := sha256.Sum256(body)
	var id [8]byte
	copy(id[:], sum[:8])
	return id
}

func (d *Dictionary) body() []byte {
	var b []byte
	b = appendLEB(b, uint64(len(d.Strings)))
	for _, s := range d.Strings {
		b = appendLEB(b, uint64(len(s)))
		b = append(b, s...)
	}
	b = appendLEB(b, uint64(len(d.Probs)))
	for _, p := range d.Probs {
		b = binary.LittleEndian.AppendUint16(b, p)
	}
	return b
}

// Bytes serializes the dictionary for distribution alongside a bundle.
func (d *Dictionary) Bytes() []byte {
	out := append([]byte{}, dictMagic[:]...)
	out = append(out, dictVersion)
	return append(out, d.body()...)
}

// ParseDictionary reads and fully validates a serialized dictionary.
// Like any unit off the wire, a dictionary is untrusted input: every
// bound is checked here, and nothing in it can widen what the decoder
// admits — it only redistributes code space.
func ParseDictionary(data []byte) (*Dictionary, error) {
	if len(data) < 5 || string(data[:4]) != string(dictMagic[:]) {
		return nil, malformedf("bad dictionary magic")
	}
	if data[4] != dictVersion {
		return nil, malformedf("unsupported dictionary version %d", data[4])
	}
	body := data[5:]
	r := &sliceByteReader{buf: body}
	ns, err := readLEB(r)
	if err != nil {
		return nil, err
	}
	if ns > maxDictStrings {
		return nil, malformedf("dictionary string table too large")
	}
	d := &Dictionary{}
	seen := make(map[string]bool, ns)
	for i := uint64(0); i < ns; i++ {
		sl, err := readLEB(r)
		if err != nil {
			return nil, err
		}
		if sl > maxStringLen {
			return nil, malformedf("dictionary string too long")
		}
		if uint64(len(r.buf)-r.off) < sl {
			return nil, malformedf("stream truncated")
		}
		s := string(r.buf[r.off : r.off+int(sl)])
		r.off += int(sl)
		if seen[s] {
			return nil, malformedf("dictionary string %q duplicated", s)
		}
		seen[s] = true
		d.Strings = append(d.Strings, s)
	}
	np, err := readLEB(r)
	if err != nil {
		return nil, err
	}
	if np != 0 {
		if np != uint64(modelProbCount()) {
			return nil, malformedf("dictionary probability snapshot has wrong length")
		}
		d.Probs = make([]uint16, np)
		for i := range d.Probs {
			if len(r.buf)-r.off < 2 {
				return nil, malformedf("stream truncated")
			}
			p := binary.LittleEndian.Uint16(r.buf[r.off:])
			r.off += 2
			if p < 1 || p >= probOne {
				return nil, malformedf("dictionary probability out of range")
			}
			d.Probs[i] = p
		}
	}
	if r.off != len(r.buf) {
		return nil, malformedf("trailing data after dictionary")
	}
	d.ID = dictID(body)
	return d, nil
}

type sliceByteReader struct {
	buf []byte
	off int
}

func (r *sliceByteReader) ReadByte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, io.EOF
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

// appendLEB / readLEB are the byte-level varint used by container
// framing (dictionary bodies, the v2 payload length) — distinct from
// the bit-level uvarint inside the symbol stream.
func appendLEB(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func readLEB(src io.ByteReader) (uint64, error) {
	var v uint64
	var shift uint
	for {
		b, err := src.ReadByte()
		if err != nil {
			return 0, malformedf("stream truncated")
		}
		if shift >= 63 && b > 1 {
			return 0, malformedf("varint overflow")
		}
		v |= uint64(b&0x7F) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
}
