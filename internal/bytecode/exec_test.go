package bytecode

import (
	"bytes"
	"testing"

	"safetsa/internal/rt"
)

// handProgram assembles a one-class program whose static "go()I" method
// runs the given code, for direct VM-level testing.
func handProgram(code []Instr, maxLocals int, exc []ExcEntry, pool func(cp *ConstPool)) *Program {
	cf := &ClassFile{Name: "H", Super: "Object", CP: NewConstPool()}
	if pool != nil {
		pool(cf.CP)
	}
	cf.Methods = []*Method{{
		Name: "go", Desc: "()I", Static: true,
		Code: code, MaxLocals: maxLocals, ExcTable: exc,
	}}
	return &Program{Classes: []*ClassFile{cf}}
}

func runHand(t *testing.T, p *Program) rt.Value {
	t.Helper()
	var out bytes.Buffer
	vm, err := NewVM(p, &rt.Env{Out: &out, MaxSteps: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	c := vm.classes["H"]
	return vm.call(c, c.methods["go()I"], nil)
}

func TestStackOps(t *testing.T) {
	// dup_x1: 1 2 -> 2 1 2; then iadd twice: 2 + (1+2) = 5.
	v := runHand(t, handProgram([]Instr{
		{Op: ICONST, A: 1},
		{Op: ICONST, A: 2},
		{Op: DUPX1},
		{Op: IADD},
		{Op: IADD},
		{Op: IRETURN},
	}, 0, nil, nil))
	if v.Int() != 5 {
		t.Fatalf("dup_x1 result %d", v.Int())
	}

	// swap: 7 3 -> 3 7; isub = 3-7 = -4.
	v = runHand(t, handProgram([]Instr{
		{Op: ICONST, A: 7},
		{Op: ICONST, A: 3},
		{Op: SWAP},
		{Op: ISUB},
		{Op: IRETURN},
	}, 0, nil, nil))
	if v.Int() != -4 {
		t.Fatalf("swap result %d", v.Int())
	}

	// dup2 over two ints: 1 2 -> 1 2 1 2; iadd; iadd; iadd = 6.
	v = runHand(t, handProgram([]Instr{
		{Op: ICONST, A: 1},
		{Op: ICONST, A: 2},
		{Op: DUP2},
		{Op: IADD},
		{Op: IADD},
		{Op: IADD},
		{Op: IRETURN},
	}, 0, nil, nil))
	if v.Int() != 6 {
		t.Fatalf("dup2 result %d", v.Int())
	}
}

func TestWideValuesOnStack(t *testing.T) {
	// Long arithmetic through the two-word stack model.
	var longIdx, long2 int32
	p := handProgram([]Instr{
		{Op: LCONST, A: 0}, // patched below
		{Op: LCONST, A: 0},
		{Op: LADD},
		{Op: L2I},
		{Op: IRETURN},
	}, 0, nil, nil)
	cp := p.Classes[0].CP
	longIdx = cp.Long(1 << 33)
	long2 = cp.Long(5)
	p.Classes[0].Methods[0].Code[0].A = longIdx
	p.Classes[0].Methods[0].Code[1].A = long2
	v := runHand(t, p)
	if v.Int() != 5 { // low 32 bits of 2^33+5
		t.Fatalf("long add low word %d", v.Int())
	}

	// POP2 discards one long.
	p = handProgram([]Instr{
		{Op: LCONST, A: 0},
		{Op: POP2},
		{Op: ICONST, A: 9},
		{Op: IRETURN},
	}, 0, nil, nil)
	p.Classes[0].Methods[0].Code[0].A = p.Classes[0].CP.Long(123)
	if v := runHand(t, p); v.Int() != 9 {
		t.Fatalf("pop2 result %d", v.Int())
	}
}

func TestExceptionTableDispatch(t *testing.T) {
	// 1/0 with a handler that returns 42; the handler range must catch.
	p := handProgram([]Instr{
		{Op: ICONST, A: 1},
		{Op: ICONST, A: 0},
		{Op: IDIV}, // throws at pc 2
		{Op: IRETURN},
		{Op: POP}, // handler at pc 4: drop the exception ref
		{Op: ICONST, A: 42},
		{Op: IRETURN},
	}, 0, []ExcEntry{{Start: 0, End: 4, Handler: 4}}, nil)
	if v := runHand(t, p); v.Int() != 42 {
		t.Fatalf("handler result %d", v.Int())
	}

	// A handler with a non-matching catch type must not fire.
	p2 := handProgram([]Instr{
		{Op: ICONST, A: 1},
		{Op: ICONST, A: 0},
		{Op: IDIV},
		{Op: IRETURN},
		{Op: POP},
		{Op: ICONST, A: 42},
		{Op: IRETURN},
	}, 0, nil, nil)
	cp := p2.Classes[0].CP
	p2.Classes[0].Methods[0].ExcTable = []ExcEntry{
		{Start: 0, End: 4, Handler: 4, CatchType: cp.Class("NullPointerException")},
	}
	var out bytes.Buffer
	vm, err := NewVM(p2, &rt.Env{Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	var caught error
	func() {
		defer vm.catchTopLevel(&caught)
		c := vm.classes["H"]
		vm.call(c, c.methods["go()I"], nil)
	}()
	if caught == nil {
		t.Fatal("wrong-typed handler caught the exception")
	}
}

func TestBranchSemantics(t *testing.T) {
	// if_icmpge skips the then-path.
	v := runHand(t, handProgram([]Instr{
		{Op: ICONST, A: 5},
		{Op: ICONST, A: 9},
		{Op: IFICMPGE, A: 5},
		{Op: ICONST, A: 1},
		{Op: IRETURN},
		{Op: ICONST, A: 2},
		{Op: IRETURN},
	}, 0, nil, nil))
	if v.Int() != 1 {
		t.Fatalf("5 < 9 took the wrong branch: %d", v.Int())
	}

	// iinc + goto loop: sum 0..4 via locals.
	v = runHand(t, handProgram([]Instr{
		{Op: ICONST, A: 0},
		{Op: ISTORE, A: 0}, // i
		{Op: ICONST, A: 0},
		{Op: ISTORE, A: 1}, // s
		{Op: ILOAD, A: 0},  // pc 4: loop head
		{Op: ICONST, A: 5},
		{Op: IFICMPGE, A: 13},
		{Op: ILOAD, A: 1},
		{Op: ILOAD, A: 0},
		{Op: IADD},
		{Op: ISTORE, A: 1},
		{Op: IINC, A: 0, B: 1},
		{Op: GOTO, A: 4},
		{Op: ILOAD, A: 1}, // pc 13
		{Op: IRETURN},
	}, 2, nil, nil))
	if v.Int() != 10 {
		t.Fatalf("loop sum %d", v.Int())
	}
}

func TestNullChecksInFusedOps(t *testing.T) {
	// aconst_null; arraylength -> NPE caught by a catch-all handler.
	v := runHand(t, handProgram([]Instr{
		{Op: ACONSTNULL},
		{Op: ARRAYLENGTH},
		{Op: IRETURN},
		{Op: POP},
		{Op: ICONST, A: -7},
		{Op: IRETURN},
	}, 0, []ExcEntry{{Start: 0, End: 3, Handler: 3}}, nil))
	if v.Int() != -7 {
		t.Fatalf("NPE not raised by arraylength: %d", v.Int())
	}
}

func TestDcmpNaNOrdering(t *testing.T) {
	// DCMPL with a NaN pushes -1; DCMPG pushes 1.
	mk := func(op Opcode) *Program {
		p := handProgram([]Instr{
			{Op: DCONST, A: 0},
			{Op: DCONST, A: 0},
			{Op: op},
			{Op: IRETURN},
		}, 0, nil, nil)
		cp := p.Classes[0].CP
		nan := cp.Double(0)
		p.Classes[0].CP.Entries[nan].D = 0.0 / zero
		p.Classes[0].Methods[0].Code[0].A = nan
		p.Classes[0].Methods[0].Code[1].A = cp.Double(1)
		return p
	}
	if v := runHand(t, mk(DCMPL)); v.Int() != -1 {
		t.Fatalf("dcmpl NaN = %d", v.Int())
	}
	if v := runHand(t, mk(DCMPG)); v.Int() != 1 {
		t.Fatalf("dcmpg NaN = %d", v.Int())
	}
}

var zero = 0.0 // defeats constant folding of 0.0/0.0 in Go
