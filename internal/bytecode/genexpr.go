package bytecode

import (
	"fmt"

	"safetsa/internal/lang/ast"
	"safetsa/internal/lang/sema"
	"safetsa/internal/lang/token"
)

func (g *gen) storeLocal(l *sema.Local) {
	slot := g.slots[l]
	switch l.Type.Kind {
	case sema.KindLong:
		g.emit(LSTORE, slot)
	case sema.KindDouble:
		g.emit(DSTORE, slot)
	case sema.KindInt, sema.KindBoolean, sema.KindChar:
		g.emit(ISTORE, slot)
	default:
		g.emit(ASTORE, slot)
	}
}

func (g *gen) loadLocal(l *sema.Local) {
	slot := g.slots[l]
	switch l.Type.Kind {
	case sema.KindLong:
		g.emit(LLOAD, slot)
	case sema.KindDouble:
		g.emit(DLOAD, slot)
	case sema.KindInt, sema.KindBoolean, sema.KindChar:
		g.emit(ILOAD, slot)
	default:
		g.emit(ALOAD, slot)
	}
}

// genExprStmt evaluates an expression for effect, dropping any value.
func (g *gen) genExprStmt(e ast.Expr) {
	switch e := e.(type) {
	case *ast.Assign:
		g.genAssign(e, false)
		return
	case *ast.IncDec:
		g.genIncDec(e, false)
		return
	case *ast.CallExpr, *ast.SuperCall, *ast.NewObject:
		g.genExpr(e)
		t := sema.TypeOf(e)
		if t != nil && t.Kind != sema.KindVoid {
			g.emit0(popOf(t))
		}
		return
	case *ast.SuperCtorCall:
		panic("bytecode: super(...) outside constructor preamble")
	}
	g.genExpr(e)
	if t := sema.TypeOf(e); t != nil && t.Kind != sema.KindVoid {
		g.emit0(popOf(t))
	}
}

// genConv emits a numeric conversion chain.
func (g *gen) genConv(from, to *sema.Type) {
	if from == to || from.Kind == to.Kind {
		return
	}
	if from.Kind == sema.KindChar {
		g.genConvKinds(sema.KindInt, to.Kind)
		return
	}
	g.genConvKinds(from.Kind, to.Kind)
}

func (g *gen) genConvKinds(from, to sema.TypeKind) {
	if from == to {
		return
	}
	switch {
	case from == sema.KindBoolean || to == sema.KindBoolean:
		// boolean is int-encoded; no instruction.
	case from == sema.KindInt && to == sema.KindLong:
		g.emit0(I2L)
	case from == sema.KindInt && to == sema.KindDouble:
		g.emit0(I2D)
	case from == sema.KindInt && to == sema.KindChar:
		g.emit0(I2C)
	case from == sema.KindLong && to == sema.KindInt:
		g.emit0(L2I)
	case from == sema.KindLong && to == sema.KindDouble:
		g.emit0(L2D)
	case from == sema.KindLong && to == sema.KindChar:
		g.emit0(L2I)
		g.emit0(I2C)
	case from == sema.KindDouble && to == sema.KindInt:
		g.emit0(D2I)
	case from == sema.KindDouble && to == sema.KindLong:
		g.emit0(D2L)
	case from == sema.KindDouble && to == sema.KindChar:
		g.emit0(D2I)
		g.emit0(I2C)
	case to == sema.KindClass || to == sema.KindArray || to == sema.KindNull:
		// Reference widening needs no code.
	default:
		panic(fmt.Sprintf("bytecode: no conversion %v -> %v", from, to))
	}
}

func (g *gen) genExprConv(e ast.Expr, want *sema.Type) {
	g.genExpr(e)
	have := sema.TypeOf(e)
	if have.IsNumeric() && want.IsNumeric() {
		g.genConv(have, want)
	}
}

// ---------------------------------------------------------------------
// Conditions

// genCondBranches emits branches taken when the condition equals
// jumpWhen; returns the branch indexes to patch to the target.
func (g *gen) genCondBranches(e ast.Expr, jumpWhen bool) []int {
	switch e := e.(type) {
	case *ast.BoolLit:
		if e.Value == jumpWhen {
			return []int{g.branch(GOTO)}
		}
		return nil
	case *ast.Unary:
		if e.Op == token.NOT {
			return g.genCondBranches(e.X, !jumpWhen)
		}
	case *ast.Binary:
		switch e.Op {
		case token.LAND:
			if jumpWhen {
				// Jump if both true: fall through on first false.
				fall := g.genCondBranches(e.X, false)
				jumps := g.genCondBranches(e.Y, true)
				g.patchAll(fall)
				return jumps
			}
			// Jump if either false.
			j1 := g.genCondBranches(e.X, false)
			j2 := g.genCondBranches(e.Y, false)
			return append(j1, j2...)
		case token.LOR:
			if jumpWhen {
				j1 := g.genCondBranches(e.X, true)
				j2 := g.genCondBranches(e.Y, true)
				return append(j1, j2...)
			}
			fall := g.genCondBranches(e.X, true)
			jumps := g.genCondBranches(e.Y, false)
			g.patchAll(fall)
			return jumps
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			return []int{g.genComparison(e, jumpWhen)}
		}
	}
	// Generic boolean value (variable, call, field, &/|/^ on booleans):
	// materialize the 0/1 and branch on it.
	g.genExprRaw(e)
	if jumpWhen {
		return []int{g.branch(IFNE)}
	}
	return []int{g.branch(IFEQ)}
}

var icmpOps = map[token.Kind][2]Opcode{
	token.EQL: {IFICMPEQ, IFICMPNE},
	token.NEQ: {IFICMPNE, IFICMPEQ},
	token.LSS: {IFICMPLT, IFICMPGE},
	token.LEQ: {IFICMPLE, IFICMPGT},
	token.GTR: {IFICMPGT, IFICMPLE},
	token.GEQ: {IFICMPGE, IFICMPLT},
}

var ifOps = map[token.Kind][2]Opcode{
	token.EQL: {IFEQ, IFNE},
	token.NEQ: {IFNE, IFEQ},
	token.LSS: {IFLT, IFGE},
	token.LEQ: {IFLE, IFGT},
	token.GTR: {IFGT, IFLE},
	token.GEQ: {IFGE, IFLT},
}

// genComparison emits a fused comparison branch, returning the branch
// index.
func (g *gen) genComparison(e *ast.Binary, jumpWhen bool) int {
	sel := 0
	if !jumpWhen {
		sel = 1
	}
	xt, yt := sema.TypeOf(e.X), sema.TypeOf(e.Y)
	if xt.IsRef() && yt.IsRef() {
		g.genExpr(e.X)
		g.genExpr(e.Y)
		ops := map[token.Kind][2]Opcode{
			token.EQL: {IFACMPEQ, IFACMPNE},
			token.NEQ: {IFACMPNE, IFACMPEQ},
		}
		return g.branch(ops[e.Op][sel])
	}
	if xt == g.prog.Boolean && yt == g.prog.Boolean {
		g.genExpr(e.X)
		g.genExpr(e.Y)
		return g.branch(icmpOps[e.Op][sel])
	}
	ct := g.prog.Promote(xt, yt)
	g.genExprConv(e.X, ct)
	g.genExprConv(e.Y, ct)
	switch ct.Kind {
	case sema.KindInt:
		return g.branch(icmpOps[e.Op][sel])
	case sema.KindLong:
		g.emit0(LCMP)
		return g.branch(ifOps[e.Op][sel])
	default:
		// Choose the NaN-conservative comparison like javac.
		if e.Op == token.LSS || e.Op == token.LEQ {
			g.emit0(DCMPG)
		} else {
			g.emit0(DCMPL)
		}
		return g.branch(ifOps[e.Op][sel])
	}
}

// genBoolValue materializes a boolean expression as 0/1 on the stack via
// branches, as javac does.
func (g *gen) genBoolValue(e ast.Expr) {
	switch e := e.(type) {
	case *ast.BoolLit:
		if e.Value {
			g.emit(ICONST, 1)
		} else {
			g.emit(ICONST, 0)
		}
		return
	case *ast.Ident, *ast.FieldAccess, *ast.IndexExpr, *ast.CallExpr,
		*ast.SuperCall, *ast.Assign, *ast.IncDec:
		g.genExprRaw(e)
		return
	case *ast.Binary:
		// Non-short-circuit boolean operators are plain int arithmetic.
		switch e.Op {
		case token.AND, token.OR, token.XOR:
			g.genExprRaw(e)
			return
		}
	}
	trueBr := g.genCondBranches(e, true)
	g.emit(ICONST, 0)
	end := g.branch(GOTO)
	g.patchAll(trueBr)
	g.emit(ICONST, 1)
	g.patch(end)
}

// ---------------------------------------------------------------------
// Expressions

func (g *gen) genExpr(e ast.Expr) {
	t := sema.TypeOf(e)
	if t == g.prog.Boolean {
		g.genBoolValue(e)
		return
	}
	g.genExprRaw(e)
}

func (g *gen) genExprRaw(e ast.Expr) {
	cp := g.cf.CP
	switch e := e.(type) {
	case *ast.IntLit:
		g.emit(ICONST, e.Value)
	case *ast.LongLit:
		g.emit(LCONST, cp.Long(e.Value))
	case *ast.DoubleLit:
		g.emit(DCONST, cp.Double(e.Value))
	case *ast.BoolLit:
		v := int32(0)
		if e.Value {
			v = 1
		}
		g.emit(ICONST, v)
	case *ast.CharLit:
		g.emit(ICONST, int32(uint16(e.Value)))
	case *ast.StringLit:
		g.emit(SCONST, cp.Str(e.Value))
	case *ast.NullLit:
		g.emit0(ACONSTNULL)
	case *ast.ThisExpr:
		g.emit(ALOAD, 0)
	case *ast.Ident:
		switch sym := e.Sym.(type) {
		case *sema.Local:
			g.loadLocal(sym)
		case *sema.FieldSym:
			g.genFieldLoad(sym, nil)
		default:
			panic("bytecode: identifier is not a value: " + e.Name)
		}
	case *ast.FieldAccess:
		if e.IsLength {
			g.genExpr(e.X)
			g.emit0(ARRAYLENGTH)
			return
		}
		sym := e.Sym.(*sema.FieldSym)
		if sym.Static {
			g.genFieldLoad(sym, nil)
			return
		}
		g.genFieldLoad(sym, e.X)
	case *ast.IndexExpr:
		g.genExpr(e.X)
		g.genExprConv(e.Index, g.prog.Int)
		g.emit0(arrayLoadOp(sema.TypeOf(e)))
	case *ast.Assign:
		g.genAssign(e, true)
	case *ast.IncDec:
		g.genIncDec(e, true)
	case *ast.Unary:
		g.genUnary(e)
	case *ast.Binary:
		g.genBinary(e)
	case *ast.CallExpr:
		g.genCall(e)
	case *ast.SuperCall:
		m := e.Sym.(*sema.MethodSym)
		g.emit(ALOAD, 0)
		for i, a := range e.Args {
			g.genExprConv(a, m.Params[i])
		}
		g.emit(INVOKESPECIAL, cp.MethodRef(m.Owner.Name, m.Name, methodDescOf(m)))
	case *ast.NewObject:
		cls := sema.TypeOf(e).Class
		g.emit(NEW, cp.Class(cls.Name))
		g.emit0(DUP)
		ctor, _ := e.Ctor.(*sema.MethodSym)
		desc := "()V"
		if ctor != nil {
			for i, a := range e.Args {
				g.genExprConv(a, ctor.Params[i])
			}
			desc = methodDescOf(ctor)
		}
		g.emit(INVOKESPECIAL, cp.MethodRef(cls.Name, "<init>", desc))
	case *ast.NewArray:
		g.genNewArray(e)
	case *ast.Cast:
		g.genCast(e)
	case *ast.InstanceOf:
		g.genExpr(e.X)
		tt := g.prog.InstanceOfType[e]
		g.emit(INSTANCEOF, cp.Class(classNameOf(tt)))
	case *ast.Cond:
		elseBr := g.genCondBranches(e.C, false)
		t := sema.TypeOf(e)
		g.genExprConv(e.Then, t)
		end := g.branch(GOTO)
		g.patchAll(elseBr)
		g.genExprConv(e.Else, t)
		g.patch(end)
	default:
		panic(fmt.Sprintf("bytecode: unhandled expression %T", e))
	}
}

// classNameOf renders a class or array type as a constant-pool class
// name.
func classNameOf(t *sema.Type) string {
	if t.Kind == sema.KindArray {
		return descOf(t)
	}
	return t.Class.Name
}

func arrayLoadOp(elem *sema.Type) Opcode {
	switch elem.Kind {
	case sema.KindInt, sema.KindBoolean:
		return IALOAD
	case sema.KindLong:
		return LALOAD
	case sema.KindDouble:
		return DALOAD
	case sema.KindChar:
		return CALOAD
	default:
		return AALOAD
	}
}

func arrayStoreOp(elem *sema.Type) Opcode {
	switch elem.Kind {
	case sema.KindInt, sema.KindBoolean:
		return IASTORE
	case sema.KindLong:
		return LASTORE
	case sema.KindDouble:
		return DASTORE
	case sema.KindChar:
		return CASTORE
	default:
		return AASTORE
	}
}

func (g *gen) genFieldLoad(sym *sema.FieldSym, recv ast.Expr) {
	ref := g.cf.CP.FieldRef(sym.Owner.Name, sym.Name, descOf(sym.Type))
	if sym.Static {
		g.emit(GETSTATIC, ref)
		return
	}
	if recv == nil {
		g.emit(ALOAD, 0)
	} else {
		g.genExpr(recv)
	}
	g.emit(GETFIELD, ref)
}

func (g *gen) genAssign(e *ast.Assign, needValue bool) {
	if e.Op == token.ASSIGN {
		g.genPlainAssign(e, needValue)
		return
	}
	g.genCompoundAssign(e, needValue)
}

// dupUnder duplicates the top value (of type t) below the address words
// already on the stack — not needed for plain stores, where javac keeps
// the value with a pre-store dup when the expression value is used.
func (g *gen) genPlainAssign(e *ast.Assign, needValue bool) {
	cp := g.cf.CP
	switch lhs := e.LHS.(type) {
	case *ast.Ident:
		switch sym := lhs.Sym.(type) {
		case *sema.Local:
			g.genExprConv(e.RHS, sym.Type)
			if needValue {
				g.dupValue(sym.Type)
			}
			g.storeLocal(sym)
			return
		case *sema.FieldSym:
			g.genFieldStore(sym, nil, e.RHS, needValue)
			return
		}
	case *ast.FieldAccess:
		sym := lhs.Sym.(*sema.FieldSym)
		if sym.Static {
			g.genFieldStore(sym, nil, e.RHS, needValue)
			return
		}
		g.genFieldStore(sym, lhs.X, e.RHS, needValue)
		return
	case *ast.IndexExpr:
		elem := sema.TypeOf(lhs)
		g.genExpr(lhs.X)
		g.genExprConv(lhs.Index, g.prog.Int)
		g.genExprConv(e.RHS, elem)
		if needValue {
			// Keep a copy in a scratch local (avoids dup2_x forms).
			tmp := g.allocSlot(slotWidth(elem))
			g.storeScratch(elem, tmp)
			g.loadScratch(elem, tmp)
			g.emit0(arrayStoreOp(elem))
			g.loadScratch(elem, tmp)
			return
		}
		g.emit0(arrayStoreOp(elem))
		return
	}
	_ = cp
	panic("bytecode: bad assignment target")
}

func (g *gen) dupValue(t *sema.Type) {
	if slotWidth(t) == 2 {
		g.emit0(DUP2)
	} else {
		g.emit0(DUP)
	}
}

func (g *gen) storeScratch(t *sema.Type, slot int32) {
	switch t.Kind {
	case sema.KindLong:
		g.emit(LSTORE, slot)
	case sema.KindDouble:
		g.emit(DSTORE, slot)
	case sema.KindInt, sema.KindBoolean, sema.KindChar:
		g.emit(ISTORE, slot)
	default:
		g.emit(ASTORE, slot)
	}
}

func (g *gen) loadScratch(t *sema.Type, slot int32) {
	switch t.Kind {
	case sema.KindLong:
		g.emit(LLOAD, slot)
	case sema.KindDouble:
		g.emit(DLOAD, slot)
	case sema.KindInt, sema.KindBoolean, sema.KindChar:
		g.emit(ILOAD, slot)
	default:
		g.emit(ALOAD, slot)
	}
}

func (g *gen) genFieldStore(sym *sema.FieldSym, recv ast.Expr, rhs ast.Expr, needValue bool) {
	ref := g.cf.CP.FieldRef(sym.Owner.Name, sym.Name, descOf(sym.Type))
	if sym.Static {
		g.genExprConv(rhs, sym.Type)
		if needValue {
			g.dupValue(sym.Type)
		}
		g.emit(PUTSTATIC, ref)
		return
	}
	if recv == nil {
		g.emit(ALOAD, 0)
	} else {
		g.genExpr(recv)
	}
	g.genExprConv(rhs, sym.Type)
	if needValue {
		tmp := g.allocSlot(slotWidth(sym.Type))
		g.storeScratch(sym.Type, tmp)
		g.loadScratch(sym.Type, tmp)
		g.emit(PUTFIELD, ref)
		g.loadScratch(sym.Type, tmp)
		return
	}
	g.emit(PUTFIELD, ref)
}

// genCompute folds the RHS into the loaded LHS value on the stack.
func (g *gen) genCompute(lt *sema.Type, op token.Kind, rhs ast.Expr) {
	if lt == g.prog.String && op == token.ADD {
		g.genConcatWith(rhs)
		return
	}
	ct := g.compoundType(lt, sema.TypeOf(rhs), op)
	g.genConv(lt, ct)
	if op == token.SHL || op == token.SHR {
		g.genExprConv(rhs, g.prog.Int)
	} else {
		g.genExprConv(rhs, ct)
	}
	g.genArith(op, ct)
	g.genConv(ct, lt)
}

func (g *gen) genCompoundAssign(e *ast.Assign, needValue bool) {
	op := e.Op.CompoundOp()
	lt := sema.TypeOf(e.LHS)

	switch lhs := e.LHS.(type) {
	case *ast.Ident:
		if sym, ok := lhs.Sym.(*sema.Local); ok {
			// iinc special case: i += smallConst on an int local.
			if !needValue && sym.Type == g.prog.Int {
				if lit, ok := e.RHS.(*ast.IntLit); ok &&
					(op == token.ADD || op == token.SUB) &&
					lit.Value >= -128 && lit.Value < 128 {
					d := lit.Value
					if op == token.SUB {
						d = -d
					}
					g.emit2(IINC, g.slots[sym], d)
					return
				}
			}
			g.loadLocal(sym)
			g.genCompute(lt, op, e.RHS)
			if needValue {
				g.dupValue(lt)
			}
			g.storeLocal(sym)
			return
		}
		g.genCompoundFieldAssign(lhs.Sym.(*sema.FieldSym), nil, lt, op, e.RHS, needValue)
		return
	case *ast.FieldAccess:
		sym := lhs.Sym.(*sema.FieldSym)
		var recv ast.Expr
		if !sym.Static {
			recv = lhs.X
		}
		g.genCompoundFieldAssign(sym, recv, lt, op, e.RHS, needValue)
		return
	case *ast.IndexExpr:
		elem := sema.TypeOf(lhs)
		g.genExpr(lhs.X)
		g.genExprConv(lhs.Index, g.prog.Int)
		g.emit0(DUP2) // arr idx arr idx
		g.emit0(arrayLoadOp(elem))
		g.genCompute(elem, op, e.RHS)
		if needValue {
			tmp := g.allocSlot(slotWidth(elem))
			g.storeScratch(elem, tmp)
			g.loadScratch(elem, tmp)
			g.emit0(arrayStoreOp(elem))
			g.loadScratch(elem, tmp)
			return
		}
		g.emit0(arrayStoreOp(elem))
		return
	}
	panic("bytecode: bad compound assignment target")
}

func (g *gen) genCompoundFieldAssign(sym *sema.FieldSym, recv ast.Expr,
	lt *sema.Type, op token.Kind, rhs ast.Expr, needValue bool) {
	ref := g.cf.CP.FieldRef(sym.Owner.Name, sym.Name, descOf(sym.Type))
	if sym.Static {
		g.emit(GETSTATIC, ref)
		g.genCompute(lt, op, rhs)
		if needValue {
			g.dupValue(lt)
		}
		g.emit(PUTSTATIC, ref)
		return
	}
	if recv == nil {
		g.emit(ALOAD, 0)
	} else {
		g.genExpr(recv)
	}
	g.emit0(DUP) // obj obj
	g.emit(GETFIELD, ref)
	g.genCompute(lt, op, rhs)
	if needValue {
		tmp := g.allocSlot(slotWidth(lt))
		g.storeScratch(lt, tmp)
		g.loadScratch(lt, tmp)
		g.emit(PUTFIELD, ref)
		g.loadScratch(lt, tmp)
		return
	}
	g.emit(PUTFIELD, ref)
}

func (g *gen) compoundType(lt, rt *sema.Type, op token.Kind) *sema.Type {
	p := g.prog
	if op == token.SHL || op == token.SHR {
		if lt.Kind == sema.KindChar {
			return p.Int
		}
		return lt
	}
	if lt == p.Boolean {
		return p.Boolean
	}
	return p.Promote(lt, rt)
}

func (g *gen) genIncDec(e *ast.IncDec, needValue bool) {
	t := sema.TypeOf(e)
	// Postfix: the expression value is the OLD value.
	switch lhs := e.X.(type) {
	case *ast.Ident:
		if sym, ok := lhs.Sym.(*sema.Local); ok {
			if sym.Type == g.prog.Int && !needValue {
				d := int32(1)
				if e.Op == token.DEC {
					d = -1
				}
				g.emit2(IINC, g.slots[sym], d)
				return
			}
			g.loadLocal(sym)
			if needValue {
				g.dupValue(sym.Type)
			}
			g.genOne(sym.Type)
			g.genArithIncDec(e.Op, sym.Type)
			g.storeLocal(sym)
			return
		}
	}
	// Field/array targets: lower as a compound assignment; the old
	// value is recovered via a scratch local when needed.
	one := &ast.IntLit{Value: 1}
	one.SetTypeInfo(g.prog.Int)
	op := token.ADDASSIGN
	if e.Op == token.DEC {
		op = token.SUBASSIGN
	}
	asn := &ast.Assign{Op: op, LHS: e.X, RHS: one}
	asn.SetTypeInfo(t)
	if !needValue {
		g.genCompoundAssign(asn, false)
		return
	}
	// Postfix value: new value minus/plus one.
	g.genCompoundAssign(asn, true)
	g.genOne(t)
	rev := token.SUB
	if e.Op == token.DEC {
		rev = token.ADD
	}
	ct := t
	if ct.Kind == sema.KindChar {
		g.genConv(t, g.prog.Int)
		ct = g.prog.Int
	}
	g.genArith(rev, ct)
	g.genConv(ct, t)
}

func (g *gen) genOne(t *sema.Type) {
	switch t.Kind {
	case sema.KindLong:
		g.emit(LCONST, g.cf.CP.Long(1))
	case sema.KindDouble:
		g.emit(DCONST, g.cf.CP.Double(1))
	default:
		g.emit(ICONST, 1)
	}
}

func (g *gen) genArithIncDec(op token.Kind, t *sema.Type) {
	k := token.ADD
	if op == token.DEC {
		k = token.SUB
	}
	ct := t
	if ct.Kind == sema.KindChar {
		ct = g.prog.Int
	}
	g.genArith(k, ct)
	if t.Kind == sema.KindChar {
		g.emit0(I2C)
	}
}

var arithOps = map[sema.TypeKind]map[token.Kind]Opcode{
	sema.KindInt: {
		token.ADD: IADD, token.SUB: ISUB, token.MUL: IMUL,
		token.QUO: IDIV, token.REM: IREM, token.SHL: ISHL, token.SHR: ISHR,
		token.AND: IAND, token.OR: IOR, token.XOR: IXOR,
	},
	sema.KindLong: {
		token.ADD: LADD, token.SUB: LSUB, token.MUL: LMUL,
		token.QUO: LDIV, token.REM: LREM, token.SHL: LSHL, token.SHR: LSHR,
		token.AND: LAND, token.OR: LOR, token.XOR: LXOR,
	},
	sema.KindDouble: {
		token.ADD: DADD, token.SUB: DSUB, token.MUL: DMUL,
		token.QUO: DDIV, token.REM: DREM,
	},
	sema.KindBoolean: {
		token.AND: IAND, token.OR: IOR, token.XOR: IXOR,
	},
}

func (g *gen) genArith(op token.Kind, t *sema.Type) {
	o, ok := arithOps[t.Kind][op]
	if !ok {
		panic(fmt.Sprintf("bytecode: no arithmetic op %s on %s", op, t))
	}
	g.emit0(o)
}

func (g *gen) genUnary(e *ast.Unary) {
	t := sema.TypeOf(e)
	switch e.Op {
	case token.ADD:
		g.genExprConv(e.X, t)
	case token.SUB:
		g.genExprConv(e.X, t)
		switch t.Kind {
		case sema.KindInt:
			g.emit0(INEG)
		case sema.KindLong:
			g.emit0(LNEG)
		case sema.KindDouble:
			g.emit0(DNEG)
		}
	case token.TILDE:
		g.genExprConv(e.X, t)
		switch t.Kind {
		case sema.KindInt:
			g.emit(ICONST, -1)
			g.emit0(IXOR)
		case sema.KindLong:
			g.emit(LCONST, g.cf.CP.Long(-1))
			g.emit0(LXOR)
		}
	default:
		panic("bytecode: unhandled unary " + e.Op.String())
	}
}

func (g *gen) genBinary(e *ast.Binary) {
	t := sema.TypeOf(e)
	if e.Op == token.ADD && t == g.prog.String {
		g.genConcat(e)
		return
	}
	switch e.Op {
	case token.SHL, token.SHR:
		lt := sema.TypeOf(e.X)
		if lt.Kind == sema.KindChar {
			lt = g.prog.Int
		}
		g.genExprConv(e.X, lt)
		g.genExprConv(e.Y, g.prog.Int)
		g.genArith(e.Op, lt)
		return
	}
	g.genExprConv(e.X, t)
	g.genExprConv(e.Y, t)
	g.genArith(e.Op, t)
}

// genConcat builds string concatenation through StringBuilder, exactly
// the shape javac emits (and a major contributor to bytecode instruction
// counts).
func (g *gen) genConcat(e *ast.Binary) {
	cp := g.cf.CP
	g.emit(NEW, cp.Class("StringBuilder"))
	g.emit0(DUP)
	g.emit(INVOKESPECIAL, cp.MethodRef("StringBuilder", "<init>", "()V"))
	var appendOperand func(x ast.Expr)
	appendOperand = func(x ast.Expr) {
		if b, ok := x.(*ast.Binary); ok && b.Op == token.ADD && sema.TypeOf(b) == g.prog.String {
			appendOperand(b.X)
			appendOperand(b.Y)
			return
		}
		g.genAppend(x)
	}
	appendOperand(e.X)
	appendOperand(e.Y)
	g.emit(INVOKEVIRTUAL, cp.MethodRef("StringBuilder", "toString", "()LString;"))
}

// genConcatWith appends rhs to the string on the stack top (the s += x
// lowering): ...,left → NEW SB; DUP_X1 → SB,left,SB; <init> consumes the
// top SB → SB,left; append(left); append(rhs); toString.
func (g *gen) genConcatWith(rhs ast.Expr) {
	cp := g.cf.CP
	g.emit(NEW, cp.Class("StringBuilder"))
	g.emit0(DUPX1)
	g.emit(INVOKESPECIAL, cp.MethodRef("StringBuilder", "<init>", "()V"))
	g.emit(INVOKEVIRTUAL, cp.MethodRef("StringBuilder", "append", "(LString;)LStringBuilder;"))
	g.genAppend(rhs)
	g.emit(INVOKEVIRTUAL, cp.MethodRef("StringBuilder", "toString", "()LString;"))
}

func (g *gen) genAppend(x ast.Expr) {
	cp := g.cf.CP
	t := sema.TypeOf(x)
	g.genExpr(x)
	var desc string
	switch {
	case t == g.prog.String:
		desc = "(LString;)LStringBuilder;"
	case t.Kind == sema.KindInt:
		desc = "(I)LStringBuilder;"
	case t.Kind == sema.KindLong:
		desc = "(J)LStringBuilder;"
	case t.Kind == sema.KindDouble:
		desc = "(D)LStringBuilder;"
	case t.Kind == sema.KindBoolean:
		desc = "(Z)LStringBuilder;"
	case t.Kind == sema.KindChar:
		desc = "(C)LStringBuilder;"
	default:
		desc = "(LObject;)LStringBuilder;"
	}
	g.emit(INVOKEVIRTUAL, cp.MethodRef("StringBuilder", "append", desc))
}

func (g *gen) genNewArray(e *ast.NewArray) {
	t := sema.TypeOf(e)
	for _, l := range e.Lens {
		g.genExprConv(l, g.prog.Int)
	}
	if len(e.Lens) > 1 {
		g.emit2(MULTIANEWARRAY, g.cf.CP.Class(descOf(t)), int32(len(e.Lens)))
		return
	}
	elem := t.Elem
	switch elem.Kind {
	case sema.KindClass, sema.KindArray:
		// The element is recorded as its descriptor so the runtime's
		// array-type interning agrees with instanceof/checkcast.
		g.emit(ANEWARRAY, g.cf.CP.Class(descOf(elem)))
	default:
		g.emit(NEWARRAY, int32(elem.Kind))
	}
}

func (g *gen) genCast(e *ast.Cast) {
	from := sema.TypeOf(e.X)
	to := sema.TypeOf(e)
	if from.IsNumeric() && to.IsNumeric() {
		g.genExpr(e.X)
		g.genConv(from, to)
		return
	}
	g.genExpr(e.X)
	if !g.prog.Widens(from, to) {
		g.emit(CHECKCAST, g.cf.CP.Class(classNameOf(to)))
	}
}

func (g *gen) genCall(e *ast.CallExpr) {
	cp := g.cf.CP
	switch sym := e.Sym.(type) {
	case *sema.Builtin:
		// Math statics and System.out printing, as the real class
		// library calls.
		if len(sym.Name) > 5 && sym.Name[:5] == "Math." {
			for i, a := range e.Args {
				g.genExprConv(a, sym.Params[i])
			}
			params := make([]string, len(sym.Params))
			for i, p := range sym.Params {
				params[i] = descOf(p)
			}
			g.emit(INVOKESTATIC, cp.MethodRef("Math", sym.Name[5:],
				MethodDesc(params, descOf(sym.Return))))
			return
		}
		// System.out.println(x): getstatic System.out, args,
		// invokevirtual.
		g.emit(GETSTATIC, cp.FieldRef("System", "out", "LPrintStream;"))
		for i, a := range e.Args {
			g.genExprConv(a, sym.Params[i])
		}
		params := make([]string, len(sym.Params))
		for i, p := range sym.Params {
			params[i] = descOf(p)
		}
		name := "println"
		if sym.Name == "System.out.print" {
			name = "print"
		}
		g.emit(INVOKEVIRTUAL, cp.MethodRef("PrintStream", name, MethodDesc(params, "V")))
		return
	case *sema.MethodSym:
		if sym.Static {
			for i, a := range e.Args {
				g.genExprConv(a, sym.Params[i])
			}
			g.emit(INVOKESTATIC, cp.MethodRef(sym.Owner.Name, sym.Name, methodDescOf(sym)))
			return
		}
		if e.Recv != nil {
			g.genExpr(e.Recv)
		} else {
			g.emit(ALOAD, 0)
		}
		for i, a := range e.Args {
			g.genExprConv(a, sym.Params[i])
		}
		g.emit(INVOKEVIRTUAL, cp.MethodRef(sym.Owner.Name, sym.Name, methodDescOf(sym)))
		return
	}
	panic("bytecode: unresolved call " + e.Name)
}
