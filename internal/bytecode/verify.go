package bytecode

import (
	"fmt"
)

// Verify performs the classic bytecode verification dataflow the paper
// contrasts SafeTSA against (section 9): abstract interpretation of every
// method over (operand stack, locals) type states, merged at branch
// targets until a fixpoint. SafeTSA's counter-based verification replaces
// all of this.
func (p *Program) Verify() error {
	for _, cf := range p.Classes {
		for _, m := range cf.Methods {
			if err := verifyMethod(cf, m); err != nil {
				return fmt.Errorf("%s.%s%s: %w", cf.Name, m.Name, m.Desc, err)
			}
		}
	}
	return nil
}

// vtype is an abstract verification type (one stack/local word).
type vtype uint8

const (
	vUnset vtype = iota // uninitialized local
	vInt
	vLong  // low word
	vLong2 // high word
	vDouble
	vDouble2
	vRef
	vTop // merge conflict; unusable
)

func (v vtype) String() string {
	return [...]string{"unset", "int", "long", "long2", "double", "double2", "ref", "top"}[v]
}

type vstate struct {
	stack  []vtype
	locals []vtype
}

func (s *vstate) clone() *vstate {
	return &vstate{
		stack:  append([]vtype(nil), s.stack...),
		locals: append([]vtype(nil), s.locals...),
	}
}

// merge joins another state into s, reporting whether s changed;
// incompatible words become vTop (usable only by being overwritten).
func (s *vstate) merge(o *vstate) (bool, error) {
	if len(s.stack) != len(o.stack) {
		return false, fmt.Errorf("stack depth mismatch at join: %d vs %d", len(s.stack), len(o.stack))
	}
	changed := false
	for i := range s.stack {
		if s.stack[i] != o.stack[i] {
			return false, fmt.Errorf("stack type mismatch at join: %v vs %v", s.stack[i], o.stack[i])
		}
	}
	for i := range s.locals {
		if s.locals[i] != o.locals[i] && s.locals[i] != vTop {
			s.locals[i] = vTop
			changed = true
		}
	}
	return changed, nil
}

func descWord(c byte) vtype {
	switch c {
	case 'J':
		return vLong
	case 'D':
		return vDouble
	case 'L', '[':
		return vRef
	case 'V':
		return vUnset
	default:
		return vInt
	}
}

// verifyMethod runs the dataflow for one method.
func verifyMethod(cf *ClassFile, m *Method) error {
	// Static checks (performed on all code, reachable or not): branch
	// targets, constant-pool indices, and exception-table ranges.
	for pc, in := range m.Code {
		if in.Op.IsBranch() && (in.A < 0 || int(in.A) >= len(m.Code)) {
			return fmt.Errorf("at pc %d: branch target %d out of code", pc, in.A)
		}
		switch in.Op {
		case GETSTATIC, PUTSTATIC, GETFIELD, PUTFIELD,
			INVOKEVIRTUAL, INVOKESTATIC, INVOKESPECIAL,
			NEW, ANEWARRAY, CHECKCAST, INSTANCEOF, MULTIANEWARRAY,
			LCONST, DCONST, SCONST:
			if in.A <= 0 || int(in.A) >= len(cf.CP.Entries) {
				return fmt.Errorf("at pc %d: constant-pool index %d out of range", pc, in.A)
			}
		}
	}
	for _, e := range m.ExcTable {
		if e.Start < 0 || e.End > int32(len(m.Code)) || e.Start > e.End ||
			e.Handler < 0 || int(e.Handler) >= len(m.Code) {
			return fmt.Errorf("bad exception-table entry")
		}
	}
	if len(m.Code) == 0 {
		return fmt.Errorf("empty code")
	}

	states := make([]*vstate, len(m.Code))
	entry := &vstate{locals: make([]vtype, m.MaxLocals+2)}
	slot := 0
	if !m.Static {
		entry.locals[0] = vRef
		slot = 1
	}
	params, result := paramDescs(m.Desc)
	for _, p := range params {
		w := descWord(p[0])
		entry.locals[slot] = w
		slot++
		if w == vLong || w == vDouble {
			entry.locals[slot] = w + 1
			slot++
		}
	}
	_ = result

	work := []int32{0}
	states[0] = entry
	flow := func(from int32, to int32, st *vstate) error {
		if to < 0 || int(to) >= len(m.Code) {
			return fmt.Errorf("branch target %d out of code (from %d)", to, from)
		}
		if states[to] == nil {
			states[to] = st.clone()
			work = append(work, to)
			return nil
		}
		changed, err := states[to].merge(st)
		if err != nil {
			return fmt.Errorf("at %d->%d: %w", from, to, err)
		}
		if changed {
			work = append(work, to)
		}
		return nil
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		pre := states[pc]
		// An exception may occur at this point: every covering handler
		// is reachable with the current locals and a one-reference
		// stack (this is what makes bytecode verification a full
		// dataflow analysis).
		for _, e := range m.ExcTable {
			if pc < e.Start || pc >= e.End {
				continue
			}
			h := &vstate{stack: []vtype{vRef}, locals: append([]vtype(nil), pre.locals...)}
			if err := flow(pc, e.Handler, h); err != nil {
				return err
			}
		}
		st := pre.clone()
		next, err := simulate(cf, m, pc, st)
		if err != nil {
			return fmt.Errorf("at pc %d (%s): %w", pc, m.Code[pc].Op, err)
		}
		for _, t := range next {
			if err := flow(pc, t, st); err != nil {
				return err
			}
		}
	}
	return nil
}

// stack helpers reporting verification errors.
type vstack struct {
	st  *vstate
	err error
}

func (v *vstack) push(t vtype) {
	v.st.stack = append(v.st.stack, t)
	if t == vLong || t == vDouble {
		v.st.stack = append(v.st.stack, t+1)
	}
}

func (v *vstack) pushWord(t vtype) { v.st.stack = append(v.st.stack, t) }

func (v *vstack) popWord() vtype {
	if v.err != nil {
		return vTop
	}
	if len(v.st.stack) == 0 {
		v.err = fmt.Errorf("stack underflow")
		return vTop
	}
	t := v.st.stack[len(v.st.stack)-1]
	v.st.stack = v.st.stack[:len(v.st.stack)-1]
	return t
}

func (v *vstack) pop(want vtype) {
	switch want {
	case vLong, vDouble:
		hi := v.popWord()
		lo := v.popWord()
		if v.err == nil && (hi != want+1 || lo != want) {
			v.err = fmt.Errorf("want %v, have %v/%v", want, lo, hi)
		}
	default:
		t := v.popWord()
		if v.err == nil && t != want {
			v.err = fmt.Errorf("want %v, have %v", want, t)
		}
	}
}

// simulate transfers one instruction, returning successor pcs.
func simulate(cf *ClassFile, m *Method, pc int32, st *vstate) ([]int32, error) {
	in := m.Code[pc]
	v := &vstack{st: st}
	seq := []int32{pc + 1}
	br := func() []int32 { return []int32{pc + 1, in.A} }

	loadLocal := func(want vtype) {
		if int(in.A) >= len(st.locals) {
			v.err = fmt.Errorf("local %d out of range", in.A)
			return
		}
		got := st.locals[in.A]
		if got != want {
			v.err = fmt.Errorf("local %d holds %v, want %v", in.A, got, want)
			return
		}
		v.push(want)
	}
	storeLocal := func(want vtype) {
		v.pop(want)
		if int(in.A) >= len(st.locals) {
			v.err = fmt.Errorf("local %d out of range", in.A)
			return
		}
		st.locals[in.A] = want
		if want == vLong || want == vDouble {
			st.locals[in.A+1] = want + 1
		}
	}

	switch in.Op {
	case NOP:
	case ICONST:
		v.push(vInt)
	case LCONST:
		v.push(vLong)
	case DCONST:
		v.push(vDouble)
	case SCONST, ACONSTNULL:
		v.push(vRef)
	case ILOAD:
		loadLocal(vInt)
	case LLOAD:
		loadLocal(vLong)
	case DLOAD:
		loadLocal(vDouble)
	case ALOAD:
		loadLocal(vRef)
	case ISTORE:
		storeLocal(vInt)
	case LSTORE:
		storeLocal(vLong)
	case DSTORE:
		storeLocal(vDouble)
	case ASTORE:
		storeLocal(vRef)
	case POP:
		v.popWord()
	case POP2:
		v.popWord()
		v.popWord()
	case DUP:
		t := v.popWord()
		v.pushWord(t)
		v.pushWord(t)
	case DUPX1:
		t1 := v.popWord()
		t2 := v.popWord()
		v.pushWord(t1)
		v.pushWord(t2)
		v.pushWord(t1)
	case DUP2:
		t1 := v.popWord()
		t2 := v.popWord()
		v.pushWord(t2)
		v.pushWord(t1)
		v.pushWord(t2)
		v.pushWord(t1)
	case SWAP:
		t1 := v.popWord()
		t2 := v.popWord()
		v.pushWord(t1)
		v.pushWord(t2)
	case IADD, ISUB, IMUL, IDIV, IREM, ISHL, ISHR, IAND, IOR, IXOR:
		v.pop(vInt)
		v.pop(vInt)
		v.push(vInt)
	case INEG:
		v.pop(vInt)
		v.push(vInt)
	case IINC:
		if int(in.A) >= len(st.locals) || st.locals[in.A] != vInt {
			return nil, fmt.Errorf("iinc of a non-int local %d", in.A)
		}
	case LADD, LSUB, LMUL, LDIV, LREM, LAND, LOR, LXOR:
		v.pop(vLong)
		v.pop(vLong)
		v.push(vLong)
	case LNEG:
		v.pop(vLong)
		v.push(vLong)
	case LSHL, LSHR:
		v.pop(vInt)
		v.pop(vLong)
		v.push(vLong)
	case LCMP:
		v.pop(vLong)
		v.pop(vLong)
		v.push(vInt)
	case DADD, DSUB, DMUL, DDIV, DREM:
		v.pop(vDouble)
		v.pop(vDouble)
		v.push(vDouble)
	case DNEG:
		v.pop(vDouble)
		v.push(vDouble)
	case DCMPL, DCMPG:
		v.pop(vDouble)
		v.pop(vDouble)
		v.push(vInt)
	case I2L:
		v.pop(vInt)
		v.push(vLong)
	case I2D:
		v.pop(vInt)
		v.push(vDouble)
	case I2C:
		v.pop(vInt)
		v.push(vInt)
	case L2I:
		v.pop(vLong)
		v.push(vInt)
	case L2D:
		v.pop(vLong)
		v.push(vDouble)
	case D2I:
		v.pop(vDouble)
		v.push(vInt)
	case D2L:
		v.pop(vDouble)
		v.push(vLong)
	case GOTO:
		seq = []int32{in.A}
	case IFEQ, IFNE, IFLT, IFGE, IFGT, IFLE:
		v.pop(vInt)
		seq = br()
	case IFICMPEQ, IFICMPNE, IFICMPLT, IFICMPGE, IFICMPGT, IFICMPLE:
		v.pop(vInt)
		v.pop(vInt)
		seq = br()
	case IFACMPEQ, IFACMPNE:
		v.pop(vRef)
		v.pop(vRef)
		seq = br()
	case IFNULL, IFNONNULL:
		v.pop(vRef)
		seq = br()
	case GETSTATIC, GETFIELD, PUTSTATIC, PUTFIELD:
		desc := memberDesc(cf, in.A)
		w := descWord(desc[0])
		switch in.Op {
		case GETSTATIC:
			v.push(w)
		case GETFIELD:
			v.pop(vRef)
			v.push(w)
		case PUTSTATIC:
			v.pop(w)
		case PUTFIELD:
			v.pop(w)
			v.pop(vRef)
		}
	case INVOKEVIRTUAL, INVOKESTATIC, INVOKESPECIAL:
		desc := memberDesc(cf, in.A)
		params, result := paramDescs(desc)
		for i := len(params) - 1; i >= 0; i-- {
			v.pop(descWord(params[i][0]))
		}
		if in.Op != INVOKESTATIC {
			v.pop(vRef)
		}
		if result != "V" {
			v.push(descWord(result[0]))
		}
	case NEW:
		v.push(vRef)
	case NEWARRAY, ANEWARRAY:
		v.pop(vInt)
		v.push(vRef)
	case MULTIANEWARRAY:
		for i := int32(0); i < in.B; i++ {
			v.pop(vInt)
		}
		v.push(vRef)
	case ARRAYLENGTH:
		v.pop(vRef)
		v.push(vInt)
	case IALOAD, CALOAD:
		v.pop(vInt)
		v.pop(vRef)
		v.push(vInt)
	case LALOAD:
		v.pop(vInt)
		v.pop(vRef)
		v.push(vLong)
	case DALOAD:
		v.pop(vInt)
		v.pop(vRef)
		v.push(vDouble)
	case AALOAD:
		v.pop(vInt)
		v.pop(vRef)
		v.push(vRef)
	case IASTORE, CASTORE:
		v.pop(vInt)
		v.pop(vInt)
		v.pop(vRef)
	case LASTORE:
		v.pop(vLong)
		v.pop(vInt)
		v.pop(vRef)
	case DASTORE:
		v.pop(vDouble)
		v.pop(vInt)
		v.pop(vRef)
	case AASTORE:
		v.pop(vRef)
		v.pop(vInt)
		v.pop(vRef)
	case CHECKCAST:
		v.pop(vRef)
		v.push(vRef)
	case INSTANCEOF:
		v.pop(vRef)
		v.push(vInt)
	case ATHROW:
		v.pop(vRef)
		seq = nil
	case IRETURN:
		v.pop(vInt)
		seq = nil
	case LRETURN:
		v.pop(vLong)
		seq = nil
	case DRETURN:
		v.pop(vDouble)
		seq = nil
	case ARETURN:
		v.pop(vRef)
		seq = nil
	case RETURN:
		seq = nil
	default:
		return nil, fmt.Errorf("unknown opcode")
	}
	if v.err != nil {
		return nil, v.err
	}
	if len(seq) > 0 && seq[len(seq)-1] == int32(len(m.Code)) && in.Op != GOTO {
		return nil, fmt.Errorf("control falls off the code end")
	}
	return seq, nil
}

// memberDesc extracts the descriptor of a field/method reference.
func memberDesc(cf *ClassFile, cpIdx int32) string {
	e := cf.CP.Entries[cpIdx]
	return cf.CP.Entries[e.C].S
}
