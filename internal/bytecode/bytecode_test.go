package bytecode_test

import (
	"testing"

	"safetsa/internal/bytecode"
	"safetsa/internal/driver"
)

func compile(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	prog, err := driver.Frontend(map[string]string{"Main.tj": src})
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := bytecode.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

const verifySrc = `
class Point {
    int x; int y;
    Point(int a, int b) { x = a; y = b; }
    double dist() { return Math.sqrt(x * x + y * y); }
}
class Main {
    static long counter = 5L;
    static void main() {
        Point p = new Point(3, 4);
        System.out.println(p.dist());
        double[] d = new double[4];
        for (int i = 0; i < d.length; i++) d[i] = i * 0.5;
        double s = 0.0;
        for (int i = 0; i < d.length; i++) s += d[i];
        System.out.println(s);
        try {
            int z = 1 / (p.x - 3);
            System.out.println(z);
        } catch (ArithmeticException e) {
            System.out.println("div0: " + e.getMessage());
        } finally {
            counter += 1L;
        }
        System.out.println(counter);
        String msg = "p=" + p.x + "," + p.y;
        System.out.println(msg.substring(2, 5));
    }
}`

func TestVerifyAcceptsGeneratedCode(t *testing.T) {
	p := compile(t, verifySrc)
	if err := p.Verify(); err != nil {
		t.Fatalf("generated code rejected by the dataflow verifier: %v", err)
	}
}

func TestVerifyRejectsCorruptCode(t *testing.T) {
	cases := []func(p *bytecode.Program){
		// Branch out of the code array.
		func(p *bytecode.Program) {
			m := firstUserMethod(p)
			m.Code = append(m.Code, bytecode.Instr{Op: bytecode.GOTO, A: 9999})
		},
		// Type confusion: iadd on a reference.
		func(p *bytecode.Program) {
			m := firstUserMethod(p)
			m.Code = append([]bytecode.Instr{
				{Op: bytecode.ACONSTNULL},
				{Op: bytecode.ICONST, A: 1},
				{Op: bytecode.IADD},
			}, m.Code...)
		},
		// Stack underflow.
		func(p *bytecode.Program) {
			m := firstUserMethod(p)
			m.Code = append([]bytecode.Instr{{Op: bytecode.POP}}, m.Code...)
		},
		// Falling off the end of the code.
		func(p *bytecode.Program) {
			m := firstUserMethod(p)
			m.Code = m.Code[:len(m.Code)-1]
		},
	}
	for i, corrupt := range cases {
		p := compile(t, verifySrc)
		corrupt(p)
		if err := p.Verify(); err == nil {
			t.Errorf("case %d: corrupted program passed verification", i)
		}
	}
}

func firstUserMethod(p *bytecode.Program) *bytecode.Method {
	for _, cf := range p.Classes {
		for _, m := range cf.Methods {
			if m.Name == "main" {
				return m
			}
		}
	}
	panic("no main")
}

func TestSerializeRoundSize(t *testing.T) {
	p := compile(t, verifySrc)
	for _, cf := range p.Classes {
		data := cf.Serialize()
		if len(data) < 50 {
			t.Errorf("class %s serialized suspiciously small: %d bytes", cf.Name, len(data))
		}
		if data[0] != 0xCA || data[1] != 0xFE {
			t.Errorf("class %s: bad magic", cf.Name)
		}
		if cf.NumInstrs() == 0 && cf.Name == "Main" {
			t.Errorf("class %s has no instructions", cf.Name)
		}
	}
	if p.SerializedSize() <= 0 {
		t.Fatal("no serialized size")
	}
}

func TestDisassembleSmoke(t *testing.T) {
	p := compile(t, verifySrc)
	if s := p.Classes[0].Disassemble(); len(s) == 0 {
		t.Fatal("empty disassembly")
	}
}
