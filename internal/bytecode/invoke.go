package bytecode

import (
	"fmt"

	"safetsa/internal/rt"
)

// execInvoke handles the three invocation opcodes, including the imported
// host library (Math, PrintStream, String, StringBuilder, Throwable).
func (vm *VM) execInvoke(fr *frame, in Instr) {
	cp := fr.c.cf.CP.Entries
	ref := cp[in.A]
	class := cpUTF8Of(fr.c.cf, cp[ref.A].A)
	name := cpUTF8Of(fr.c.cf, ref.B)
	desc := cpUTF8Of(fr.c.cf, ref.C)
	sig := name + desc
	_, result := paramDescs(desc)

	words := descSlots(desc)
	if in.Op != INVOKESTATIC {
		words++
	}
	args := make([]rt.Value, words)
	copy(args, fr.stack[len(fr.stack)-words:])
	fr.stack = fr.stack[:len(fr.stack)-words]

	pushResult := func(v rt.Value) {
		switch result {
		case "V":
		case "J", "D":
			fr.pushWide(v)
		default:
			fr.push(v)
		}
	}

	if in.Op == INVOKESTATIC {
		if class == "Math" {
			pushResult(vm.nativeMath(name, desc, args))
			return
		}
		c, m := vm.findStatic(class, sig)
		if m == nil {
			panic(fmt.Sprintf("bytecode: unresolved static method %s.%s", class, sig))
		}
		pushResult(vm.call(c, m, args))
		return
	}

	recv := args[0]
	if recv.R == nil {
		vm.throwNew(vm.exc.NPE, "null receiver for "+class+"."+name)
	}

	if in.Op == INVOKESPECIAL {
		if name == "<init>" {
			if c, m := vm.findStatic(class, sig); m != nil {
				vm.call(c, m, args)
				return
			}
			vm.nativeInit(class, recv, args)
			return
		}
		// super.m(...) — non-virtual.
		c, m := vm.findStatic(class, sig)
		if m == nil {
			pushResult(vm.nativeVirtual(class, name, desc, args))
			return
		}
		pushResult(vm.call(c, m, args))
		return
	}

	// INVOKEVIRTUAL: resolve through the receiver's dynamic class.
	if obj, ok := recv.R.(*rt.Object); ok {
		if c, m := vm.findVirtual(obj.Class, sig); m != nil {
			pushResult(vm.call(c, m, args))
			return
		}
	}
	pushResult(vm.nativeVirtual(class, name, desc, args))
}

func (vm *VM) nativeInit(class string, recv rt.Value, args []rt.Value) {
	obj, _ := recv.R.(*rt.Object)
	switch class {
	case "Object":
	case "StringBuilder":
		if obj != nil {
			obj.Fields[0] = rt.RefValue(&rt.Str{S: ""})
		}
	default:
		// Throwable hierarchy: optional message argument.
		if obj != nil && len(obj.Fields) > 0 && len(args) == 2 {
			obj.Fields[0] = args[1]
		}
	}
}

func (vm *VM) nativeMath(name, desc string, args []rt.Value) rt.Value {
	switch desc {
	case "(D)D":
		return rt.DoubleValue(rt.MathOp(name, args[0].D, 0))
	case "(DD)D":
		return rt.DoubleValue(rt.MathOp(name, args[0].D, args[2].D))
	case "(I)I":
		v := args[0].Int()
		if name == "abs" && v < 0 {
			v = -v
		}
		return rt.IntValue(v)
	case "(II)I":
		a, b := args[0].Int(), args[1].Int()
		if name == "min" && b < a || name == "max" && b > a {
			a = b
		}
		return rt.IntValue(a)
	case "(J)J":
		v := args[0].I
		if name == "abs" && v < 0 {
			v = -v
		}
		return rt.LongValue(v)
	case "(JJ)J":
		a, b := args[0].I, args[2].I
		if name == "min" && b < a || name == "max" && b > a {
			a = b
		}
		return rt.LongValue(a)
	}
	panic("bytecode: unknown Math intrinsic " + name + desc)
}

func (vm *VM) nativeVirtual(class, name, desc string, args []rt.Value) rt.Value {
	env := vm.Env
	recv := args[0]
	str := func(v rt.Value) string {
		s, _ := rt.GetStr(v.R)
		return s
	}
	switch class {
	case "PrintStream":
		var text string
		switch desc {
		case "(LString;)V":
			text = rt.RefString(args[1].R)
		case "(I)V":
			text = rt.StringOf(args[1], 'i')
		case "(J)V":
			text = rt.StringOf(args[1], 'l')
		case "(D)V":
			text = rt.StringOf(args[1], 'd')
		case "(Z)V":
			text = rt.StringOf(args[1], 'z')
		case "(C)V":
			text = rt.StringOf(args[1], 'c')
		case "()V":
			text = ""
		}
		if name == "println" {
			env.Println(text)
		} else {
			env.Print(text)
		}
		return rt.Value{}
	case "StringBuilder":
		obj := recv.R.(*rt.Object)
		cur, _ := rt.GetStr(obj.Fields[0].R)
		switch name {
		case "append":
			var add string
			switch desc {
			case "(LString;)LStringBuilder;":
				add = rt.RefString(args[1].R)
			case "(I)LStringBuilder;":
				add = rt.StringOf(args[1], 'i')
			case "(J)LStringBuilder;":
				add = rt.StringOf(args[1], 'l')
			case "(D)LStringBuilder;":
				add = rt.StringOf(args[1], 'd')
			case "(Z)LStringBuilder;":
				add = rt.StringOf(args[1], 'z')
			case "(C)LStringBuilder;":
				add = rt.StringOf(args[1], 'c')
			default:
				add = rt.RefString(args[1].R)
			}
			obj.Fields[0] = rt.RefValue(env.NewStr(cur + add))
			return recv
		case "toString":
			return rt.RefValue(&rt.Str{S: cur})
		}
	case "String":
		s := str(recv)
		switch name {
		case "length":
			return rt.IntValue(rt.StrLen(s))
		case "charAt":
			c, ok := rt.CharAt(s, args[1].Int())
			if !ok {
				vm.throwNew(vm.exc.Bounds, fmt.Sprintf("string index %d", args[1].Int()))
			}
			return rt.CharValue(rune(c))
		case "substring":
			sub, ok := rt.Substring(s, args[1].Int(), args[2].Int())
			if !ok {
				vm.throwNew(vm.exc.Bounds, "substring bounds")
			}
			return rt.RefValue(&rt.Str{S: sub})
		case "equals":
			o, ok := rt.GetStr(args[1].R)
			return rt.BoolValue(ok && o == s)
		case "compareTo":
			return rt.IntValue(rt.CompareStr(s, str(args[1])))
		case "indexOf":
			return rt.IntValue(rt.IndexOfStr(s, str(args[1])))
		case "hashCode":
			return rt.IntValue(rt.StringHash(s))
		}
	}
	// Object / Throwable defaults.
	switch name {
	case "hashCode":
		return rt.IntValue(int32(rt.Identity(recv.R)))
	case "equals":
		return rt.BoolValue(refEq(recv.R, args[1].R))
	case "toString":
		return rt.RefValue(&rt.Str{S: rt.RefString(recv.R)})
	case "getMessage":
		if obj, ok := recv.R.(*rt.Object); ok && len(obj.Fields) > 0 {
			return obj.Fields[0]
		}
		return rt.Value{}
	}
	panic(fmt.Sprintf("bytecode: unresolved virtual method %s.%s%s", class, name, desc))
}
