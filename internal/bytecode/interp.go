package bytecode

import (
	"fmt"

	"safetsa/internal/rt"
)

// VM executes a bytecode Program against the shared runtime. The operand
// stack follows the JVM word model: long and double values occupy two
// stack slots (the upper one a dummy), so DUP2/POP2 have their exact
// class-file semantics.
type VM struct {
	Prog *Program
	Env  *rt.Env

	classes map[string]*rtClass
	exc     rt.ExcClasses
	// arrayType interns array descriptors for instanceof/checkcast.
	arrayType map[string]int32
	arrayName []string

	printStream *rt.Object
	sbClass     *rt.ClassInfo
}

type rtClass struct {
	cf         *ClassFile
	super      *rtClass
	info       *rt.ClassInfo
	fieldSlot  map[string]int32
	staticSlot map[string]int32
	methods    map[string]*Method
}

// NewVM links a program: builds class metadata, resolves the hierarchy,
// and runs the static initializers.
func NewVM(p *Program, env *rt.Env) (*VM, error) {
	vm := &VM{
		Prog:      p,
		Env:       env,
		classes:   make(map[string]*rtClass),
		arrayType: make(map[string]int32),
	}
	mkImported := func(name string, super *rtClass, slots int) *rtClass {
		c := &rtClass{
			super:      super,
			fieldSlot:  map[string]int32{},
			staticSlot: map[string]int32{},
			methods:    map[string]*Method{},
		}
		var si *rt.ClassInfo
		if super != nil {
			si = super.info
		}
		c.info = &rt.ClassInfo{Name: name, Super: si, NumSlots: slots}
		vm.classes[name] = c
		return c
	}
	object := mkImported("Object", nil, 0)
	mkImported("String", object, 0)
	throwable := mkImported("Throwable", object, 1)
	throwable.fieldSlot["message"] = 0
	exc := mkImported("Exception", throwable, 1)
	vm.exc = rt.ExcClasses{
		Throwable: throwable.info,
		Exception: exc.info,
		NPE:       mkImported("NullPointerException", exc, 1).info,
		Arith:     mkImported("ArithmeticException", exc, 1).info,
		Bounds:    mkImported("IndexOutOfBoundsException", exc, 1).info,
		Cast:      mkImported("ClassCastException", exc, 1).info,
		NegSize:   mkImported("NegativeArraySizeException", exc, 1).info,
	}
	sb := mkImported("StringBuilder", object, 1)
	vm.sbClass = sb.info
	ps := mkImported("PrintStream", object, 0)
	vm.printStream = env.NewObject(ps.info)

	// User classes: superclasses must be linked first; iterate until
	// fixpoint (class files arrive in declaration order, which is not
	// necessarily topological).
	pending := append([]*ClassFile(nil), p.Classes...)
	for len(pending) > 0 {
		progress := false
		var next []*ClassFile
		for _, cf := range pending {
			super, ok := vm.classes[cf.Super]
			if !ok {
				next = append(next, cf)
				continue
			}
			progress = true
			c := &rtClass{
				cf:         cf,
				super:      super,
				fieldSlot:  map[string]int32{},
				staticSlot: map[string]int32{},
				methods:    map[string]*Method{},
			}
			for k, v := range super.fieldSlot {
				c.fieldSlot[k] = v
			}
			slots := super.info.NumSlots
			statics := 0
			for _, f := range cf.Fields {
				if f.Static {
					c.staticSlot[f.Name] = int32(statics)
					statics++
				} else {
					c.fieldSlot[f.Name] = int32(slots)
					slots++
				}
			}
			for _, m := range cf.Methods {
				c.methods[m.Sig()] = m
			}
			c.info = &rt.ClassInfo{
				Name: cf.Name, Super: super.info,
				NumSlots: slots, Statics: make([]rt.Value, statics),
			}
			vm.classes[cf.Name] = c
			if prev, dup := vm.classes[cf.Name]; dup && prev != c {
				return nil, fmt.Errorf("bytecode: class %s redefined", cf.Name)
			}
		}
		if !progress {
			return nil, fmt.Errorf("bytecode: unresolved superclasses")
		}
		pending = next
	}

	var err error
	func() {
		defer vm.catchTopLevel(&err)
		for _, cf := range p.Classes {
			c := vm.classes[cf.Name]
			if m, ok := c.methods["<clinit>()V"]; ok {
				vm.call(c, m, nil)
			}
		}
	}()
	return vm, err
}

func (vm *VM) catchTopLevel(err *error) {
	r := recover()
	switch t := r.(type) {
	case nil:
	case error:
		if rt.IsExecError(t) {
			*err = t
			return
		}
		panic(r)
	case rt.Thrown:
		msg := ""
		if o, ok := t.Val.R.(*rt.Object); ok {
			msg = o.Class.Name
			if len(o.Fields) > 0 {
				if s, ok := rt.GetStr(o.Fields[0].R); ok {
					msg += ": " + s
				}
			}
		}
		*err = fmt.Errorf("uncaught exception: %s", msg)
	default:
		panic(r)
	}
}

// RunMain executes static main of the program's main class.
func (vm *VM) RunMain() error {
	if vm.Prog.Main == "" {
		return fmt.Errorf("bytecode: no main class")
	}
	c := vm.classes[vm.Prog.Main]
	var m *Method
	for sig, cand := range c.methods {
		if cand.Static && cand.Name == "main" && (sig == "main()V" || sig == "main([LString;)V") {
			m = cand
			break
		}
	}
	if m == nil {
		return fmt.Errorf("bytecode: class %s has no main method", vm.Prog.Main)
	}
	args := make([]rt.Value, descSlots(m.Desc))
	var err error
	func() {
		defer vm.catchTopLevel(&err)
		vm.call(c, m, args)
	}()
	return err
}

// findVirtual resolves a method signature against a runtime class chain.
func (vm *VM) findVirtual(ci *rt.ClassInfo, sig string) (*rtClass, *Method) {
	for c := vm.classes[ci.Name]; c != nil; c = c.super {
		if m, ok := c.methods[sig]; ok {
			return c, m
		}
	}
	return nil, nil
}

func (vm *VM) findStatic(class, sig string) (*rtClass, *Method) {
	for c := vm.classes[class]; c != nil; c = c.super {
		if m, ok := c.methods[sig]; ok {
			return c, m
		}
	}
	return nil, nil
}

func (vm *VM) arrayTypeID(desc string) int32 {
	if id, ok := vm.arrayType[desc]; ok {
		return id
	}
	id := int32(len(vm.arrayName)) + 1
	vm.arrayType[desc] = id
	vm.arrayName = append(vm.arrayName, desc)
	return id
}

// cpString resolves a UTF8 entry.
func cpUTF8Of(cf *ClassFile, idx int32) string { return cf.CP.Entries[idx].S }

func (vm *VM) throwNew(ci *rt.ClassInfo, msg string) {
	vm.Env.ThrowNew(ci, msg)
}
