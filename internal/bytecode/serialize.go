package bytecode

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Serialize renders a class in the class-file layout: magic, constant
// pool, class/super references, field and method tables, and per-method
// Code attributes with real instruction encodings (short forms included)
// and exception tables. The byte counts are what Figure 5's size columns
// measure for the baseline.
func (cf *ClassFile) Serialize() []byte {
	var b []byte
	u16 := func(v int) { b = binary.BigEndian.AppendUint16(b, uint16(v)) }
	u32 := func(v int) { b = binary.BigEndian.AppendUint32(b, uint32(v)) }

	b = append(b, 0xCA, 0xFE, 0xBA, 0xBE)
	u16(0)  // minor
	u16(46) // major (JDK 1.2)

	u16(len(cf.CP.Entries))
	for _, e := range cf.CP.Entries[1:] {
		b = append(b, byte(e.Tag))
		switch e.Tag {
		case cpUTF8:
			u16(len(e.S))
			b = append(b, e.S...)
		case cpInt:
			u32(int(e.I))
		case cpLong:
			b = binary.BigEndian.AppendUint64(b, uint64(e.I))
		case cpDouble:
			b = binary.BigEndian.AppendUint64(b, math.Float64bits(e.D))
		case cpString, cpClass:
			u16(int(e.A))
		case cpFieldRef, cpMethodRef:
			u16(int(e.A))
			u16(int(e.B))
		}
	}

	u16(0x0021) // access flags: public super
	u16(int(cf.CP.Class(cf.Name)))
	u16(int(cf.CP.Class(cf.Super)))
	u16(0) // interfaces

	u16(len(cf.Fields))
	for _, f := range cf.Fields {
		flags := 0x0001
		if f.Static {
			flags |= 0x0008
		}
		u16(flags)
		u16(int(cf.CP.UTF8(f.Name)))
		u16(int(cf.CP.UTF8(f.Desc)))
		u16(0) // attributes
	}

	u16(len(cf.Methods))
	for _, m := range cf.Methods {
		flags := 0x0001
		if m.Static {
			flags |= 0x0008
		}
		u16(flags)
		u16(int(cf.CP.UTF8(m.Name)))
		u16(int(cf.CP.UTF8(m.Desc)))
		u16(1) // one attribute: Code
		u16(int(cf.CP.UTF8("Code")))
		code := encodeCode(m)
		u32(2 + 2 + 4 + len(code) + 2 + 8*len(m.ExcTable) + 2)
		u16(maxStackEstimate(m))
		u16(m.MaxLocals)
		u32(len(code))
		b = append(b, code...)
		u16(len(m.ExcTable))
		for range m.ExcTable {
			u16(0)
			u16(0)
			u16(0)
			u16(0)
		}
		u16(0) // code attributes
	}
	u16(0) // class attributes
	return b
}

// encodeCode renders instructions at their modeled byte lengths; branch
// targets become byte offsets.
func encodeCode(m *Method) []byte {
	offsets := make([]int, len(m.Code)+1)
	off := 0
	for i, in := range m.Code {
		offsets[i] = off
		off += in.ByteLen()
	}
	offsets[len(m.Code)] = off
	out := make([]byte, 0, off)
	for _, in := range m.Code {
		n := in.ByteLen()
		out = append(out, byte(in.Op))
		arg := int(in.A)
		if in.Op.IsBranch() {
			if in.A >= 0 && int(in.A) <= len(m.Code) {
				arg = offsets[in.A]
			}
		}
		for k := 1; k < n; k++ {
			out = append(out, byte(arg>>((n-1-k)*8)))
		}
	}
	return out
}

// maxStackEstimate reports a conservative operand-stack bound (class
// files must declare one; a simple linear estimate is enough here).
func maxStackEstimate(m *Method) int {
	max, cur := 2, 0
	for _, in := range m.Code {
		switch in.Op {
		case ICONST, LCONST, DCONST, SCONST, ACONSTNULL,
			ILOAD, LLOAD, DLOAD, ALOAD, DUP, DUP2, DUPX1, NEW,
			GETSTATIC:
			cur += 2
		case INVOKEVIRTUAL, INVOKESTATIC, INVOKESPECIAL:
			cur = cur/2 + 2
		default:
			if cur > 0 {
				cur--
			}
		}
		if cur > max {
			max = cur
		}
	}
	return max
}

// SerializedSize is the class-file byte count.
func (cf *ClassFile) SerializedSize() int { return len(cf.Serialize()) }

// SerializedSize sums all class files.
func (p *Program) SerializedSize() int {
	n := 0
	for _, c := range p.Classes {
		n += c.SerializedSize()
	}
	return n
}

// Disassemble renders the program textually.
func (cf *ClassFile) Disassemble() string {
	s := fmt.Sprintf("class %s extends %s\n", cf.Name, cf.Super)
	for _, f := range cf.Fields {
		s += fmt.Sprintf("  field %s %s\n", f.Name, f.Desc)
	}
	for _, m := range cf.Methods {
		s += fmt.Sprintf("  method %s%s (maxLocals=%d)\n", m.Name, m.Desc, m.MaxLocals)
		for i, in := range m.Code {
			s += fmt.Sprintf("    %4d: %s", i, in.Op)
			switch in.Op {
			case ICONST, ILOAD, LLOAD, DLOAD, ALOAD, ISTORE, LSTORE, DSTORE, ASTORE, NEWARRAY:
				s += fmt.Sprintf(" %d", in.A)
			case IINC:
				s += fmt.Sprintf(" %d %d", in.A, in.B)
			default:
				if in.Op.IsBranch() {
					s += fmt.Sprintf(" -> %d", in.A)
				} else if in.A != 0 {
					s += fmt.Sprintf(" #%d", in.A)
				}
			}
			s += "\n"
		}
		for _, e := range m.ExcTable {
			s += fmt.Sprintf("    handler [%d,%d) -> %d (type #%d)\n",
				e.Start, e.End, e.Handler, e.CatchType)
		}
	}
	return s
}
