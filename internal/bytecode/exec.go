package bytecode

import (
	"fmt"
	"math"

	"safetsa/internal/rt"
)

// frame is one activation of the stack machine.
type frame struct {
	c      *rtClass
	m      *Method
	locals []rt.Value
	stack  []rt.Value
	pc     int32
}

func (f *frame) push(v rt.Value) { f.stack = append(f.stack, v) }
func (f *frame) pushWide(v rt.Value) {
	f.stack = append(f.stack, v, rt.Value{})
}
func (f *frame) pop() rt.Value {
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v
}
func (f *frame) popWide() rt.Value {
	f.stack = f.stack[:len(f.stack)-1] // dummy word
	return f.pop()
}
func (f *frame) peek(n int) rt.Value { return f.stack[len(f.stack)-1-n] }

// call runs a method to completion and returns its (single-slot) result;
// wide results are returned as the value itself.
func (vm *VM) call(c *rtClass, m *Method, args []rt.Value) rt.Value {
	fr := &frame{c: c, m: m, locals: make([]rt.Value, m.MaxLocals+2)}
	copy(fr.locals, args)
	for {
		done, res := vm.run(fr)
		if done {
			return res
		}
	}
}

// run executes until return or an exception; exceptions are dispatched
// against the method's exception table, re-panicking when unhandled.
func (vm *VM) run(fr *frame) (done bool, result rt.Value) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		t, ok := r.(rt.Thrown)
		if !ok {
			panic(r)
		}
		for _, e := range fr.m.ExcTable {
			if fr.pc < e.Start || fr.pc >= e.End {
				continue
			}
			if e.CatchType != 0 {
				name := cpUTF8Of(fr.c.cf, fr.c.cf.CP.Entries[e.CatchType].A)
				target := vm.classes[name]
				obj, isObj := t.Val.R.(*rt.Object)
				if target == nil || !isObj || !obj.Class.IsSubclassOf(target.info) {
					continue
				}
			}
			fr.stack = fr.stack[:0]
			fr.push(t.Val)
			fr.pc = e.Handler
			done = false
			return
		}
		panic(r)
	}()
	return vm.exec(fr)
}

func (vm *VM) exec(fr *frame) (bool, rt.Value) {
	env := vm.Env
	code := fr.m.Code
	cp := fr.c.cf.CP.Entries
	for {
		if int(fr.pc) >= len(code) {
			return true, rt.Value{}
		}
		env.Step()
		in := code[fr.pc]
		next := fr.pc + 1
		switch in.Op {
		case NOP:
		case ICONST:
			fr.push(rt.IntValue(in.A))
		case LCONST:
			fr.pushWide(rt.LongValue(cp[in.A].I))
		case DCONST:
			fr.pushWide(rt.DoubleValue(cp[in.A].D))
		case SCONST:
			fr.push(rt.RefValue(&rt.Str{S: cp[cp[in.A].A].S}))
		case ACONSTNULL:
			fr.push(rt.Value{})

		case ILOAD, ALOAD:
			fr.push(fr.locals[in.A])
		case LLOAD, DLOAD:
			fr.pushWide(fr.locals[in.A])
		case ISTORE, ASTORE:
			fr.locals[in.A] = fr.pop()
		case LSTORE, DSTORE:
			fr.locals[in.A] = fr.popWide()

		case POP:
			fr.pop()
		case POP2:
			fr.pop()
			fr.pop()
		case DUP:
			fr.push(fr.peek(0))
		case DUPX1:
			v1 := fr.pop()
			v2 := fr.pop()
			fr.push(v1)
			fr.push(v2)
			fr.push(v1)
		case DUP2:
			v1 := fr.peek(0)
			v2 := fr.peek(1)
			fr.push(v2)
			fr.push(v1)
		case SWAP:
			v1 := fr.pop()
			v2 := fr.pop()
			fr.push(v1)
			fr.push(v2)

		case IADD:
			b, a := fr.pop().Int(), fr.pop().Int()
			fr.push(rt.IntValue(a + b))
		case ISUB:
			b, a := fr.pop().Int(), fr.pop().Int()
			fr.push(rt.IntValue(a - b))
		case IMUL:
			b, a := fr.pop().Int(), fr.pop().Int()
			fr.push(rt.IntValue(a * b))
		case IDIV:
			b, a := fr.pop().Int(), fr.pop().Int()
			if b == 0 {
				vm.throwNew(vm.exc.Arith, "/ by zero")
			}
			fr.push(rt.IntValue(rt.IDiv(a, b)))
		case IREM:
			b, a := fr.pop().Int(), fr.pop().Int()
			if b == 0 {
				vm.throwNew(vm.exc.Arith, "/ by zero")
			}
			fr.push(rt.IntValue(rt.IRem(a, b)))
		case INEG:
			fr.push(rt.IntValue(-fr.pop().Int()))
		case ISHL:
			b, a := fr.pop().Int(), fr.pop().Int()
			fr.push(rt.IntValue(a << (uint32(b) & 31)))
		case ISHR:
			b, a := fr.pop().Int(), fr.pop().Int()
			fr.push(rt.IntValue(a >> (uint32(b) & 31)))
		case IAND:
			b, a := fr.pop().Int(), fr.pop().Int()
			fr.push(rt.IntValue(a & b))
		case IOR:
			b, a := fr.pop().Int(), fr.pop().Int()
			fr.push(rt.IntValue(a | b))
		case IXOR:
			b, a := fr.pop().Int(), fr.pop().Int()
			fr.push(rt.IntValue(a ^ b))
		case IINC:
			fr.locals[in.A] = rt.IntValue(fr.locals[in.A].Int() + in.B)

		case LADD:
			b, a := fr.popWide().I, fr.popWide().I
			fr.pushWide(rt.LongValue(a + b))
		case LSUB:
			b, a := fr.popWide().I, fr.popWide().I
			fr.pushWide(rt.LongValue(a - b))
		case LMUL:
			b, a := fr.popWide().I, fr.popWide().I
			fr.pushWide(rt.LongValue(a * b))
		case LDIV:
			b, a := fr.popWide().I, fr.popWide().I
			if b == 0 {
				vm.throwNew(vm.exc.Arith, "/ by zero")
			}
			fr.pushWide(rt.LongValue(rt.LDiv(a, b)))
		case LREM:
			b, a := fr.popWide().I, fr.popWide().I
			if b == 0 {
				vm.throwNew(vm.exc.Arith, "/ by zero")
			}
			fr.pushWide(rt.LongValue(rt.LRem(a, b)))
		case LNEG:
			fr.pushWide(rt.LongValue(-fr.popWide().I))
		case LSHL:
			b := fr.pop().Int()
			a := fr.popWide().I
			fr.pushWide(rt.LongValue(a << (uint32(b) & 63)))
		case LSHR:
			b := fr.pop().Int()
			a := fr.popWide().I
			fr.pushWide(rt.LongValue(a >> (uint32(b) & 63)))
		case LAND:
			b, a := fr.popWide().I, fr.popWide().I
			fr.pushWide(rt.LongValue(a & b))
		case LOR:
			b, a := fr.popWide().I, fr.popWide().I
			fr.pushWide(rt.LongValue(a | b))
		case LXOR:
			b, a := fr.popWide().I, fr.popWide().I
			fr.pushWide(rt.LongValue(a ^ b))
		case LCMP:
			b, a := fr.popWide().I, fr.popWide().I
			fr.push(rt.IntValue(cmp64(a, b)))

		case DADD:
			b, a := fr.popWide().D, fr.popWide().D
			fr.pushWide(rt.DoubleValue(a + b))
		case DSUB:
			b, a := fr.popWide().D, fr.popWide().D
			fr.pushWide(rt.DoubleValue(a - b))
		case DMUL:
			b, a := fr.popWide().D, fr.popWide().D
			fr.pushWide(rt.DoubleValue(a * b))
		case DDIV:
			b, a := fr.popWide().D, fr.popWide().D
			fr.pushWide(rt.DoubleValue(a / b))
		case DREM:
			b, a := fr.popWide().D, fr.popWide().D
			fr.pushWide(rt.DoubleValue(rt.DRem(a, b)))
		case DNEG:
			fr.pushWide(rt.DoubleValue(-fr.popWide().D))
		case DCMPL, DCMPG:
			b, a := fr.popWide().D, fr.popWide().D
			switch {
			case a < b:
				fr.push(rt.IntValue(-1))
			case a > b:
				fr.push(rt.IntValue(1))
			case a == b:
				fr.push(rt.IntValue(0))
			default: // NaN
				if in.Op == DCMPG {
					fr.push(rt.IntValue(1))
				} else {
					fr.push(rt.IntValue(-1))
				}
			}

		case I2L:
			fr.pushWide(rt.LongValue(int64(fr.pop().Int())))
		case I2D:
			fr.pushWide(rt.DoubleValue(float64(fr.pop().Int())))
		case I2C:
			fr.push(rt.IntValue(int32(uint16(fr.pop().Int()))))
		case L2I:
			fr.push(rt.IntValue(int32(fr.popWide().I)))
		case L2D:
			fr.pushWide(rt.DoubleValue(float64(fr.popWide().I)))
		case D2I:
			fr.push(rt.IntValue(rt.D2I(fr.popWide().D)))
		case D2L:
			fr.pushWide(rt.LongValue(rt.D2L(fr.popWide().D)))

		case GOTO:
			next = in.A
		case IFEQ, IFNE, IFLT, IFGE, IFGT, IFLE:
			v := fr.pop().Int()
			if intCond(in.Op, v) {
				next = in.A
			}
		case IFICMPEQ, IFICMPNE, IFICMPLT, IFICMPGE, IFICMPGT, IFICMPLE:
			b, a := fr.pop().Int(), fr.pop().Int()
			if icmpCond(in.Op, a, b) {
				next = in.A
			}
		case IFACMPEQ:
			b, a := fr.pop().R, fr.pop().R
			if refEq(a, b) {
				next = in.A
			}
		case IFACMPNE:
			b, a := fr.pop().R, fr.pop().R
			if !refEq(a, b) {
				next = in.A
			}
		case IFNULL:
			if fr.pop().R == nil {
				next = in.A
			}
		case IFNONNULL:
			if fr.pop().R != nil {
				next = in.A
			}

		case GETSTATIC, PUTSTATIC, GETFIELD, PUTFIELD:
			vm.execField(fr, in)
		case INVOKEVIRTUAL, INVOKESTATIC, INVOKESPECIAL:
			fr.pc = next - 1 // faulting pc for the exception table
			vm.execInvoke(fr, in)
		case NEW:
			name := cpUTF8Of(fr.c.cf, cp[in.A].A)
			c := vm.classes[name]
			if c == nil {
				panic(fmt.Sprintf("bytecode: unknown class %s", name))
			}
			fr.push(rt.RefValue(env.NewObject(c.info)))
		case NEWARRAY, ANEWARRAY:
			n := fr.pop().Int()
			if n < 0 {
				vm.throwNew(vm.exc.NegSize, fmt.Sprintf("%d", n))
			}
			var desc string
			if in.Op == NEWARRAY {
				desc = "[" + primDesc(in.A)
			} else {
				desc = "[" + cpUTF8Of(fr.c.cf, cp[in.A].A)
			}
			fr.push(rt.RefValue(env.NewArray(n, vm.arrayTypeID(desc))))
		case MULTIANEWARRAY:
			desc := cpUTF8Of(fr.c.cf, cp[in.A].A)
			dims := make([]int32, in.B)
			for i := int(in.B) - 1; i >= 0; i-- {
				dims[i] = fr.pop().Int()
			}
			fr.push(rt.RefValue(vm.multiNew(desc, dims)))
		case ARRAYLENGTH:
			arr := vm.popArray(fr)
			fr.push(rt.IntValue(int32(len(arr.Elems))))
		case IALOAD, AALOAD, CALOAD:
			i := fr.pop().Int()
			arr := vm.popArray(fr)
			vm.checkBounds(arr, i)
			fr.push(arr.Elems[i])
		case LALOAD, DALOAD:
			i := fr.pop().Int()
			arr := vm.popArray(fr)
			vm.checkBounds(arr, i)
			fr.pushWide(arr.Elems[i])
		case IASTORE, AASTORE, CASTORE:
			v := fr.pop()
			i := fr.pop().Int()
			arr := vm.popArray(fr)
			vm.checkBounds(arr, i)
			arr.Elems[i] = v
		case LASTORE, DASTORE:
			v := fr.popWide()
			i := fr.pop().Int()
			arr := vm.popArray(fr)
			vm.checkBounds(arr, i)
			arr.Elems[i] = v
		case CHECKCAST:
			name := cpUTF8Of(fr.c.cf, cp[in.A].A)
			v := fr.peek(0)
			if v.R != nil && !vm.isInstance(v.R, name) {
				vm.throwNew(vm.exc.Cast, "cannot cast to "+name)
			}
		case INSTANCEOF:
			name := cpUTF8Of(fr.c.cf, cp[in.A].A)
			v := fr.pop()
			fr.push(rt.BoolValue(v.R != nil && vm.isInstance(v.R, name)))
		case ATHROW:
			v := fr.pop()
			if v.R == nil {
				vm.throwNew(vm.exc.NPE, "throw of null")
			}
			fr.pc = next - 1
			panic(rt.Thrown{Val: v})

		case IRETURN, ARETURN:
			return true, fr.pop()
		case LRETURN, DRETURN:
			return true, fr.popWide()
		case RETURN:
			return true, rt.Value{}
		default:
			panic(fmt.Sprintf("bytecode: unhandled opcode %s", in.Op))
		}
		fr.pc = next
	}
}

func cmp64(a, b int64) int32 {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func intCond(op Opcode, v int32) bool {
	switch op {
	case IFEQ:
		return v == 0
	case IFNE:
		return v != 0
	case IFLT:
		return v < 0
	case IFGE:
		return v >= 0
	case IFGT:
		return v > 0
	case IFLE:
		return v <= 0
	}
	return false
}

func icmpCond(op Opcode, a, b int32) bool {
	switch op {
	case IFICMPEQ:
		return a == b
	case IFICMPNE:
		return a != b
	case IFICMPLT:
		return a < b
	case IFICMPGE:
		return a >= b
	case IFICMPGT:
		return a > b
	case IFICMPLE:
		return a <= b
	}
	return false
}

func refEq(a, b rt.Ref) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a == b
}

func (vm *VM) popArray(fr *frame) *rt.Array {
	v := fr.pop()
	arr, ok := v.R.(*rt.Array)
	if !ok {
		vm.throwNew(vm.exc.NPE, "null array")
	}
	return arr
}

func (vm *VM) checkBounds(arr *rt.Array, i int32) {
	if i < 0 || int(i) >= len(arr.Elems) {
		vm.throwNew(vm.exc.Bounds,
			fmt.Sprintf("index %d out of bounds for length %d", i, len(arr.Elems)))
	}
}

// primDesc maps a NEWARRAY element tag (a sema.TypeKind value) to the
// descriptor character, keeping the array-type interning consistent with
// instanceof/checkcast class names.
func primDesc(tag int32) string {
	switch tag {
	case 0: // int
		return "I"
	case 1: // long
		return "J"
	case 2: // double
		return "D"
	case 3: // boolean
		return "Z"
	case 4: // char
		return "C"
	}
	return fmt.Sprintf("?%d", tag)
}

func (vm *VM) multiNew(desc string, dims []int32) *rt.Array {
	n := dims[0]
	if n < 0 {
		vm.throwNew(vm.exc.NegSize, fmt.Sprintf("%d", n))
	}
	arr := vm.Env.NewArray(n, vm.arrayTypeID(desc))
	if len(dims) > 1 {
		for i := range arr.Elems {
			arr.Elems[i] = rt.RefValue(vm.multiNew(desc[1:], dims[1:]))
		}
	}
	return arr
}

func (vm *VM) isInstance(r rt.Ref, name string) bool {
	switch r := r.(type) {
	case *rt.Str:
		return name == "String" || name == "Object"
	case *rt.Array:
		if name == "Object" {
			return true
		}
		if id, ok := vm.arrayType[name]; ok {
			return id == r.TypeID
		}
		return false
	case *rt.Object:
		target := vm.classes[name]
		return target != nil && r.Class.IsSubclassOf(target.info)
	}
	return false
}

func (vm *VM) execField(fr *frame, in Instr) {
	cp := fr.c.cf.CP.Entries
	ref := cp[in.A]
	class := cpUTF8Of(fr.c.cf, cp[ref.A].A)
	name := cpUTF8Of(fr.c.cf, ref.B)
	desc := cpUTF8Of(fr.c.cf, ref.C)
	wide := desc == "J" || desc == "D"

	switch in.Op {
	case GETSTATIC:
		// System.out is the one imported static field.
		if class == "System" && name == "out" {
			fr.push(rt.RefValue(vm.printStream))
			return
		}
		c, slot := vm.resolveStatic(class, name)
		v := c.info.Statics[slot]
		if wide {
			fr.pushWide(v)
		} else {
			fr.push(v)
		}
	case PUTSTATIC:
		var v rt.Value
		if wide {
			v = fr.popWide()
		} else {
			v = fr.pop()
		}
		c, slot := vm.resolveStatic(class, name)
		c.info.Statics[slot] = v
	case GETFIELD:
		obj := vm.popObject(fr)
		slot := vm.resolveField(class, name)
		v := obj.Fields[slot]
		if wide {
			fr.pushWide(v)
		} else {
			fr.push(v)
		}
	case PUTFIELD:
		var v rt.Value
		if wide {
			v = fr.popWide()
		} else {
			v = fr.pop()
		}
		obj := vm.popObject(fr)
		slot := vm.resolveField(class, name)
		obj.Fields[slot] = v
	}
}

func (vm *VM) popObject(fr *frame) *rt.Object {
	v := fr.pop()
	obj, ok := v.R.(*rt.Object)
	if !ok {
		vm.throwNew(vm.exc.NPE, "null dereference")
	}
	return obj
}

func (vm *VM) resolveStatic(class, name string) (*rtClass, int32) {
	for c := vm.classes[class]; c != nil; c = c.super {
		if slot, ok := c.staticSlot[name]; ok {
			return c, slot
		}
	}
	panic(fmt.Sprintf("bytecode: unresolved static field %s.%s", class, name))
}

func (vm *VM) resolveField(class, name string) int32 {
	for c := vm.classes[class]; c != nil; c = c.super {
		if slot, ok := c.fieldSlot[name]; ok {
			return slot
		}
	}
	panic(fmt.Sprintf("bytecode: unresolved field %s.%s", class, name))
}

var _ = math.MaxInt32
