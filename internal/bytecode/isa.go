// Package bytecode is the baseline the paper compares against: a
// JVM-style stack-machine code format for TJ with class-file containers,
// a dataflow verifier (the expensive consumer-side analysis SafeTSA
// eliminates), and an interpreter sharing the runtime of package rt. The
// instruction set mirrors the Java bytecode design points the paper
// discusses: 0-address operands, fused array accesses (aload includes the
// null check, bounds check, address computation, and load), per-use local
// variable traffic, and a constant pool with symbolic linking.
package bytecode

import "fmt"

// Opcode enumerates the instructions.
type Opcode uint8

// The instruction set.
const (
	NOP Opcode = iota

	// Constants. A is the immediate or constant-pool index.
	ICONST // A = int immediate
	LCONST // A = constant-pool index (long)
	DCONST // A = constant-pool index (double)
	SCONST // A = constant-pool index (string)
	ACONSTNULL

	// Locals. A = slot.
	ILOAD
	LLOAD
	DLOAD
	ALOAD
	ISTORE
	LSTORE
	DSTORE
	ASTORE

	// Stack.
	POP
	POP2
	DUP
	DUPX1
	DUP2
	SWAP

	// int arithmetic.
	IADD
	ISUB
	IMUL
	IDIV
	IREM
	INEG
	ISHL
	ISHR
	IAND
	IOR
	IXOR

	// long arithmetic.
	LADD
	LSUB
	LMUL
	LDIV
	LREM
	LNEG
	LSHL
	LSHR
	LAND
	LOR
	LXOR
	LCMP

	// double arithmetic.
	DADD
	DSUB
	DMUL
	DDIV
	DREM
	DNEG
	DCMPL
	DCMPG

	// Conversions.
	I2L
	I2D
	I2C
	L2I
	L2D
	D2I
	D2L

	// Branches. A = target pc.
	GOTO
	IFEQ
	IFNE
	IFLT
	IFGE
	IFGT
	IFLE
	IFICMPEQ
	IFICMPNE
	IFICMPLT
	IFICMPGE
	IFICMPGT
	IFICMPLE
	IFACMPEQ
	IFACMPNE
	IFNULL
	IFNONNULL

	// Fields. A = constant-pool field-ref index.
	GETSTATIC
	PUTSTATIC
	GETFIELD
	PUTFIELD

	// Calls. A = constant-pool method-ref index.
	INVOKEVIRTUAL
	INVOKESTATIC
	INVOKESPECIAL

	// Objects and arrays. A = constant-pool class/type index where
	// applicable; MULTIANEWARRAY carries the dimension count in B.
	NEW
	NEWARRAY // A = primitive element tag
	ANEWARRAY
	MULTIANEWARRAY
	ARRAYLENGTH
	IALOAD
	LALOAD
	DALOAD
	AALOAD
	CALOAD
	IASTORE
	LASTORE
	DASTORE
	AASTORE
	CASTORE
	CHECKCAST
	INSTANCEOF
	ATHROW

	// Returns.
	IRETURN
	LRETURN
	DRETURN
	ARETURN
	RETURN

	// IINC increments int local A by immediate B.
	IINC

	numOpcodes
)

var opNames = map[Opcode]string{
	NOP: "nop", ICONST: "iconst", LCONST: "lconst", DCONST: "dconst",
	SCONST: "sconst", ACONSTNULL: "aconst_null",
	ILOAD: "iload", LLOAD: "lload", DLOAD: "dload", ALOAD: "aload",
	ISTORE: "istore", LSTORE: "lstore", DSTORE: "dstore", ASTORE: "astore",
	POP: "pop", POP2: "pop2", DUP: "dup", DUPX1: "dup_x1", DUP2: "dup2", SWAP: "swap",
	IADD: "iadd", ISUB: "isub", IMUL: "imul", IDIV: "idiv", IREM: "irem",
	INEG: "ineg", ISHL: "ishl", ISHR: "ishr", IAND: "iand", IOR: "ior", IXOR: "ixor",
	LADD: "ladd", LSUB: "lsub", LMUL: "lmul", LDIV: "ldiv", LREM: "lrem",
	LNEG: "lneg", LSHL: "lshl", LSHR: "lshr", LAND: "land", LOR: "lor",
	LXOR: "lxor", LCMP: "lcmp",
	DADD: "dadd", DSUB: "dsub", DMUL: "dmul", DDIV: "ddiv", DREM: "drem",
	DNEG: "dneg", DCMPL: "dcmpl", DCMPG: "dcmpg",
	I2L: "i2l", I2D: "i2d", I2C: "i2c", L2I: "l2i", L2D: "l2d", D2I: "d2i", D2L: "d2l",
	GOTO: "goto", IFEQ: "ifeq", IFNE: "ifne", IFLT: "iflt", IFGE: "ifge",
	IFGT: "ifgt", IFLE: "ifle",
	IFICMPEQ: "if_icmpeq", IFICMPNE: "if_icmpne", IFICMPLT: "if_icmplt",
	IFICMPGE: "if_icmpge", IFICMPGT: "if_icmpgt", IFICMPLE: "if_icmple",
	IFACMPEQ: "if_acmpeq", IFACMPNE: "if_acmpne",
	IFNULL: "ifnull", IFNONNULL: "ifnonnull",
	GETSTATIC: "getstatic", PUTSTATIC: "putstatic",
	GETFIELD: "getfield", PUTFIELD: "putfield",
	INVOKEVIRTUAL: "invokevirtual", INVOKESTATIC: "invokestatic",
	INVOKESPECIAL: "invokespecial",
	NEW:           "new", NEWARRAY: "newarray", ANEWARRAY: "anewarray",
	MULTIANEWARRAY: "multianewarray", ARRAYLENGTH: "arraylength",
	IALOAD: "iaload", LALOAD: "laload", DALOAD: "daload", AALOAD: "aaload",
	CALOAD:  "caload",
	IASTORE: "iastore", LASTORE: "lastore", DASTORE: "dastore",
	AASTORE: "aastore", CASTORE: "castore",
	CHECKCAST: "checkcast", INSTANCEOF: "instanceof", ATHROW: "athrow",
	IRETURN: "ireturn", LRETURN: "lreturn", DRETURN: "dreturn",
	ARETURN: "areturn", RETURN: "return", IINC: "iinc",
}

func (o Opcode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one decoded instruction; A and B carry the immediate,
// constant-pool index, local slot, branch target, or dimension count.
type Instr struct {
	Op Opcode
	A  int32
	B  int32
}

// ByteLen models the class-file encoding length of the instruction, in
// bytes, following the JVM's actual formats (short forms for small
// constants and low local slots).
func (in Instr) ByteLen() int {
	switch in.Op {
	case NOP, ACONSTNULL, POP, POP2, DUP, DUPX1, DUP2, SWAP,
		IADD, ISUB, IMUL, IDIV, IREM, INEG, ISHL, ISHR, IAND, IOR, IXOR,
		LADD, LSUB, LMUL, LDIV, LREM, LNEG, LSHL, LSHR, LAND, LOR, LXOR, LCMP,
		DADD, DSUB, DMUL, DDIV, DREM, DNEG, DCMPL, DCMPG,
		I2L, I2D, I2C, L2I, L2D, D2I, D2L,
		ARRAYLENGTH, IALOAD, LALOAD, DALOAD, AALOAD, CALOAD,
		IASTORE, LASTORE, DASTORE, AASTORE, CASTORE, ATHROW,
		IRETURN, LRETURN, DRETURN, ARETURN, RETURN:
		return 1
	case ICONST:
		switch {
		case in.A >= -1 && in.A <= 5:
			return 1 // iconst_<n>
		case in.A >= -128 && in.A <= 127:
			return 2 // bipush
		case in.A >= -32768 && in.A <= 32767:
			return 3 // sipush
		}
		return 2 // ldc
	case LCONST, DCONST:
		return 3 // ldc2_w
	case SCONST:
		return 2 // ldc
	case ILOAD, LLOAD, DLOAD, ALOAD, ISTORE, LSTORE, DSTORE, ASTORE:
		if in.A <= 3 {
			return 1 // xload_<n>
		}
		return 2
	case NEWARRAY:
		return 2
	case MULTIANEWARRAY:
		return 4
	case IINC:
		return 3
	case GOTO, IFEQ, IFNE, IFLT, IFGE, IFGT, IFLE,
		IFICMPEQ, IFICMPNE, IFICMPLT, IFICMPGE, IFICMPGT, IFICMPLE,
		IFACMPEQ, IFACMPNE, IFNULL, IFNONNULL,
		GETSTATIC, PUTSTATIC, GETFIELD, PUTFIELD,
		INVOKEVIRTUAL, INVOKESTATIC, INVOKESPECIAL,
		NEW, ANEWARRAY, CHECKCAST, INSTANCEOF:
		return 3
	}
	return 1
}

// IsBranch reports whether A is a code target.
func (o Opcode) IsBranch() bool {
	return o >= GOTO && o <= IFNONNULL
}
