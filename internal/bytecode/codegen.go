package bytecode

import (
	"fmt"

	"safetsa/internal/lang/ast"
	"safetsa/internal/lang/sema"
)

// Compile translates a checked TJ program into the baseline class-file
// format, one ClassFile per user class, in the style of javac: stack
// traffic per use, fused array/field opcodes with their implicit checks,
// StringBuilder-based concatenation, and inlined finally blocks.
func Compile(prog *sema.Program) (*Program, error) {
	p := &Program{}
	for _, c := range prog.UserClasses() {
		cf, err := compileClass(prog, c)
		if err != nil {
			return nil, err
		}
		p.Classes = append(p.Classes, cf)
		for _, m := range c.Methods {
			if m.Name == "main" && m.Static && p.Main == "" {
				p.Main = c.Name
			}
		}
	}
	return p, nil
}

// descOf renders the Java descriptor of a type.
func descOf(t *sema.Type) string {
	switch t.Kind {
	case sema.KindInt:
		return "I"
	case sema.KindLong:
		return "J"
	case sema.KindDouble:
		return "D"
	case sema.KindBoolean:
		return "Z"
	case sema.KindChar:
		return "C"
	case sema.KindVoid:
		return "V"
	case sema.KindNull:
		return "LObject;"
	case sema.KindClass:
		return "L" + t.Class.Name + ";"
	case sema.KindArray:
		return "[" + descOf(t.Elem)
	}
	panic("bytecode: bad type")
}

func methodDescOf(m *sema.MethodSym) string {
	params := make([]string, len(m.Params))
	for i, p := range m.Params {
		params[i] = descOf(p)
	}
	res := "V"
	if m.Return != nil && !m.IsCtor {
		res = descOf(m.Return)
	}
	return MethodDesc(params, res)
}

func compileClass(prog *sema.Program, c *sema.Class) (*ClassFile, error) {
	cf := &ClassFile{Name: c.Name, Super: c.Super.Name, CP: NewConstPool()}
	cf.CP.Class(c.Name)
	cf.CP.Class(c.Super.Name)
	for _, f := range c.Fields {
		cf.Fields = append(cf.Fields, FieldInfo{Name: f.Name, Desc: descOf(f.Type), Static: f.Static})
	}

	// Static initializer.
	var clinitFields []*sema.FieldSym
	for _, f := range c.Fields {
		if f.Static && f.Init != nil {
			clinitFields = append(clinitFields, f)
		}
	}
	if len(clinitFields) > 0 {
		g := newGen(prog, cf, nil)
		for _, f := range clinitFields {
			g.genExprConv(f.Init, f.Type)
			g.emit(PUTSTATIC, cf.CP.FieldRef(c.Name, f.Name, descOf(f.Type)))
		}
		g.emit0(RETURN)
		cf.Methods = append(cf.Methods, &Method{
			Name: "<clinit>", Desc: "()V", Static: true,
			Code: g.code, MaxLocals: g.maxLocals, ExcTable: g.excTable,
		})
	}

	for _, m := range c.Ctors {
		mm, err := compileMethod(prog, cf, c, m)
		if err != nil {
			return nil, err
		}
		cf.Methods = append(cf.Methods, mm)
	}
	for _, m := range c.Methods {
		mm, err := compileMethod(prog, cf, c, m)
		if err != nil {
			return nil, err
		}
		cf.Methods = append(cf.Methods, mm)
	}
	return cf, nil
}

func compileMethod(prog *sema.Program, cf *ClassFile, c *sema.Class, m *sema.MethodSym) (*Method, error) {
	g := newGen(prog, cf, m)
	name := m.Name
	desc := methodDescOf(m)
	if m.IsCtor {
		name = "<init>"
	}
	if !m.Static {
		g.allocSlot(1) // this
	}
	info := prog.MethodInfo[m]
	if info != nil {
		for i, l := range info.Params {
			g.slots[l] = g.allocSlot(slotWidth(m.Params[i]))
		}
	}

	var body []ast.Stmt
	if !m.Synthetic {
		body = m.Decl.Body.Stmts
	}
	if m.IsCtor {
		var explicit *ast.SuperCtorCall
		if len(body) > 0 {
			if es, ok := body[0].(*ast.ExprStmt); ok {
				if sc, ok := es.X.(*ast.SuperCtorCall); ok {
					explicit = sc
					body = body[1:]
				}
			}
		}
		g.genCtorPreamble(c, m, explicit)
	}
	for _, s := range body {
		g.genStmt(s)
	}
	if !g.terminated {
		if m.IsCtor || m.Return == nil || m.Return == prog.Void {
			g.emit0(RETURN)
		} else {
			// Fall-off return of the zero value (TJ has no
			// reachability analysis; see DESIGN.md).
			g.genZero(m.Return)
			g.genReturnOp(m.Return)
		}
	}
	return &Method{
		Name: name, Desc: desc, Static: m.Static,
		Code: g.code, MaxLocals: g.maxLocals, ExcTable: g.excTable,
	}, nil
}

func slotWidth(t *sema.Type) int {
	if t.Kind == sema.KindLong || t.Kind == sema.KindDouble {
		return 2
	}
	return 1
}

// gen is the per-method code generator.
type gen struct {
	prog *sema.Program
	cf   *ClassFile
	m    *sema.MethodSym

	code      []Instr
	slots     map[*sema.Local]int32
	nextSlot  int
	maxLocals int
	excTable  []ExcEntry

	loops      []*loopGen
	tries      []*tryGen
	inFinally  int
	terminated bool
}

type loopGen struct {
	contPends   []int // branch indexes to patch with the continue target
	breakPends  []int
	postAST     []ast.Stmt
	triesBase   int
	contKnown   bool  // while/for: the continue target is the loop head
	contAddress int32 // valid when contKnown
}

type tryGen struct {
	finallyAST *ast.BlockStmt
}

func newGen(prog *sema.Program, cf *ClassFile, m *sema.MethodSym) *gen {
	return &gen{
		prog:  prog,
		cf:    cf,
		m:     m,
		slots: make(map[*sema.Local]int32),
	}
}

func (g *gen) allocSlot(w int) int32 {
	s := g.nextSlot
	g.nextSlot += w
	if g.nextSlot > g.maxLocals {
		g.maxLocals = g.nextSlot
	}
	return int32(s)
}

func (g *gen) pc() int32 { return int32(len(g.code)) }

func (g *gen) emit(op Opcode, a int32) int {
	g.code = append(g.code, Instr{Op: op, A: a})
	g.terminated = false
	return len(g.code) - 1
}

func (g *gen) emit0(op Opcode) int { return g.emit(op, 0) }

func (g *gen) emit2(op Opcode, a, b int32) int {
	g.code = append(g.code, Instr{Op: op, A: a, B: b})
	g.terminated = false
	return len(g.code) - 1
}

// branch emits a branch with an unknown target, returning the index to
// patch.
func (g *gen) branch(op Opcode) int { return g.emit(op, -1) }

func (g *gen) patch(idx int) { g.code[idx].A = g.pc() }

func (g *gen) patchAll(idxs []int) {
	for _, i := range idxs {
		g.patch(i)
	}
}

func (g *gen) genCtorPreamble(c *sema.Class, m *sema.MethodSym, explicit *ast.SuperCtorCall) {
	g.emit(ALOAD, 0)
	if explicit != nil {
		ctor := explicit.Ctor.(*sema.MethodSym)
		for i, a := range explicit.Args {
			g.genExprConv(a, ctor.Params[i])
		}
		g.emit(INVOKESPECIAL, g.cf.CP.MethodRef(ctor.Owner.Name, "<init>", methodDescOf(ctor)))
	} else {
		ctor := g.prog.ImplicitSuper[m]
		owner := c.Super.Name
		if ctor != nil {
			owner = ctor.Owner.Name
		}
		g.emit(INVOKESPECIAL, g.cf.CP.MethodRef(owner, "<init>", "()V"))
	}
	for _, f := range c.Fields {
		if f.Static || f.Init == nil {
			continue
		}
		g.emit(ALOAD, 0)
		g.genExprConv(f.Init, f.Type)
		g.emit(PUTFIELD, g.cf.CP.FieldRef(f.Owner.Name, f.Name, descOf(f.Type)))
	}
}

func (g *gen) genZero(t *sema.Type) {
	switch t.Kind {
	case sema.KindInt, sema.KindBoolean, sema.KindChar:
		g.emit(ICONST, 0)
	case sema.KindLong:
		g.emit(LCONST, g.cf.CP.Long(0))
	case sema.KindDouble:
		g.emit(DCONST, g.cf.CP.Double(0))
	default:
		g.emit0(ACONSTNULL)
	}
}

func (g *gen) genReturnOp(t *sema.Type) {
	switch t.Kind {
	case sema.KindInt, sema.KindBoolean, sema.KindChar:
		g.emit0(IRETURN)
	case sema.KindLong:
		g.emit0(LRETURN)
	case sema.KindDouble:
		g.emit0(DRETURN)
	case sema.KindVoid:
		g.emit0(RETURN)
	default:
		g.emit0(ARETURN)
	}
	g.terminated = true
}

func popOf(t *sema.Type) Opcode {
	if slotWidth(t) == 2 {
		return POP2
	}
	return POP
}

// ---------------------------------------------------------------------
// Statements

func (g *gen) genStmt(s ast.Stmt) {
	if g.terminated {
		return // unreachable code is dropped, as javac requires
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.Stmts {
			g.genStmt(st)
		}
	case *ast.EmptyStmt:
	case *ast.VarDeclStmt:
		l := g.prog.DeclLocal[s]
		g.slots[l] = g.allocSlot(slotWidth(l.Type))
		if s.Init != nil {
			g.genExprConv(s.Init, l.Type)
		} else {
			g.genZero(l.Type)
		}
		g.storeLocal(l)
	case *ast.ExprStmt:
		g.genExprStmt(s.X)
	case *ast.IfStmt:
		elseBr := g.genCondBranches(s.Cond, false)
		g.genStmt(s.Then)
		if s.Else == nil {
			g.patchAll(elseBr)
			g.terminated = false
			return
		}
		thenTerm := g.terminated
		var skip int
		if !thenTerm {
			skip = g.branch(GOTO)
		}
		g.patchAll(elseBr)
		g.terminated = false
		g.genStmt(s.Else)
		elseTerm := g.terminated
		if !thenTerm {
			g.patch(skip)
			g.terminated = false
		} else {
			g.terminated = thenTerm && elseTerm
		}
	case *ast.WhileStmt:
		g.genLoop(s.Cond, func() { g.genStmt(s.Body) }, nil)
	case *ast.ForStmt:
		if s.Init != nil {
			g.genStmt(s.Init)
		}
		cond := s.Cond
		var post []ast.Stmt
		if s.Post != nil {
			post = []ast.Stmt{s.Post}
		}
		g.genLoop(cond, func() { g.genStmt(s.Body) }, post)
	case *ast.DoWhileStmt:
		g.genDoWhile(s)
	case *ast.ReturnStmt:
		if s.X != nil {
			g.genExprConv(s.X, g.m.Return)
		}
		g.inlineFinallies(0)
		if s.X != nil {
			g.genReturnOp(g.m.Return)
		} else {
			g.emit0(RETURN)
			g.terminated = true
		}
	case *ast.BreakStmt:
		lg := g.loops[len(g.loops)-1]
		g.inlineFinallies(lg.triesBase)
		lg.breakPends = append(lg.breakPends, g.branch(GOTO))
		g.terminated = true
	case *ast.ContinueStmt:
		lg := g.loops[len(g.loops)-1]
		g.inlineFinallies(lg.triesBase)
		for _, st := range lg.postAST {
			g.genStmt(st)
		}
		if lg.contKnown {
			g.emit(GOTO, lg.contAddress)
		} else {
			lg.contPends = append(lg.contPends, g.branch(GOTO))
		}
		g.terminated = true
	case *ast.ThrowStmt:
		g.genExpr(s.X)
		g.emit0(ATHROW)
		g.terminated = true
	case *ast.TryStmt:
		g.genTry(s)
	default:
		panic(fmt.Sprintf("bytecode: unhandled statement %T", s))
	}
}

func (g *gen) inlineFinallies(base int) {
	if g.inFinally > 0 {
		return
	}
	for i := len(g.tries) - 1; i >= base; i-- {
		t := g.tries[i]
		if t.finallyAST == nil {
			continue
		}
		g.inFinally++
		for _, st := range t.finallyAST.Stmts {
			g.genStmt(st)
		}
		g.inFinally--
	}
}

func (g *gen) genLoop(cond ast.Expr, body func(), post []ast.Stmt) {
	lg := &loopGen{postAST: post, triesBase: len(g.tries), contKnown: true}
	lg.contAddress = g.pc()
	var exitBr []int
	if cond != nil {
		exitBr = g.genCondBranches(cond, false)
	}
	g.loops = append(g.loops, lg)
	body()
	if !g.terminated {
		for _, st := range post {
			g.genStmt(st)
		}
		g.emit(GOTO, lg.contAddress)
	}
	g.loops = g.loops[:len(g.loops)-1]
	g.patchAll(exitBr)
	g.patchAll(lg.breakPends)
	g.terminated = false
}

func (g *gen) genDoWhile(s *ast.DoWhileStmt) {
	lg := &loopGen{triesBase: len(g.tries)}
	top := g.pc()
	g.loops = append(g.loops, lg)
	g.genStmt(s.Body)
	g.loops = g.loops[:len(g.loops)-1]
	// The condition is the continue target.
	g.patchAll(lg.contPends)
	g.terminated = false
	backBr := g.genCondBranches(s.Cond, true)
	for _, i := range backBr {
		g.code[i].A = top
	}
	g.patchAll(lg.breakPends)
	g.terminated = false
}

func (g *gen) genTry(s *ast.TryStmt) {
	g.tries = append(g.tries, &tryGen{finallyAST: s.Finally})
	start := g.pc()
	for _, st := range s.Body.Stmts {
		g.genStmt(st)
	}
	bodyTerm := g.terminated
	if !bodyTerm && s.Finally != nil {
		g.inFinally++
		for _, st := range s.Finally.Stmts {
			g.genStmt(st)
		}
		g.inFinally--
		bodyTerm = g.terminated
	}
	end := g.pc()
	g.tries = g.tries[:len(g.tries)-1]
	if end == start {
		// Empty protected region: nothing can throw.
		g.terminated = bodyTerm
		return
	}

	var exits []int
	if !bodyTerm {
		exits = append(exits, g.branch(GOTO))
	}

	for _, cc := range s.Catches {
		handler := g.pc()
		l := g.prog.CatchLocal[cc]
		g.slots[l] = g.allocSlot(1)
		g.terminated = false
		g.emit(ASTORE, g.slots[l])
		g.excTable = append(g.excTable, ExcEntry{
			Start: start, End: end, Handler: handler,
			CatchType: g.cf.CP.Class(l.Type.Class.Name),
		})
		for _, st := range cc.Body.Stmts {
			g.genStmt(st)
		}
		if !g.terminated && s.Finally != nil {
			g.inFinally++
			for _, st := range s.Finally.Stmts {
				g.genStmt(st)
			}
			g.inFinally--
		}
		if !g.terminated {
			exits = append(exits, g.branch(GOTO))
		}
	}

	if s.Finally != nil {
		// Catch-any handler: run the finally code and rethrow.
		handler := g.pc()
		g.terminated = false
		tmp := g.allocSlot(1)
		g.emit(ASTORE, tmp)
		g.excTable = append(g.excTable, ExcEntry{Start: start, End: end, Handler: handler})
		g.inFinally++
		for _, st := range s.Finally.Stmts {
			g.genStmt(st)
		}
		g.inFinally--
		if !g.terminated {
			g.emit(ALOAD, tmp)
			g.emit0(ATHROW)
		}
	}

	if len(exits) == 0 {
		g.terminated = true
		return
	}
	g.patchAll(exits)
	g.terminated = false
}
