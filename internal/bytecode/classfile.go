package bytecode

import (
	"fmt"
	"strings"
)

// Constant-pool entry tags.
type cpTag uint8

// The constant-pool entry kinds (a compact analog of the class-file
// pool).
const (
	cpUTF8 cpTag = iota + 1
	cpInt
	cpLong
	cpDouble
	cpString
	cpClass
	cpFieldRef
	cpMethodRef
)

// CPEntry is one constant-pool slot.
type CPEntry struct {
	Tag cpTag
	S   string // utf8 payload
	I   int64
	D   float64
	// Ref payloads: class name, member name, descriptor (as utf8
	// indices, like the real pool's indirection).
	A, B, C int32
}

// ConstPool interns constants and symbolic references.
type ConstPool struct {
	Entries []CPEntry
	index   map[string]int32
}

// NewConstPool returns an empty pool (index 0 is reserved, as in class
// files).
func NewConstPool() *ConstPool {
	return &ConstPool{Entries: make([]CPEntry, 1), index: make(map[string]int32)}
}

func (cp *ConstPool) intern(key string, e CPEntry) int32 {
	if i, ok := cp.index[key]; ok {
		return i
	}
	i := int32(len(cp.Entries))
	cp.Entries = append(cp.Entries, e)
	cp.index[key] = i
	return i
}

// UTF8 interns a string payload.
func (cp *ConstPool) UTF8(s string) int32 {
	return cp.intern("u:"+s, CPEntry{Tag: cpUTF8, S: s})
}

// Long interns a long constant.
func (cp *ConstPool) Long(v int64) int32 {
	return cp.intern(fmt.Sprintf("l:%d", v), CPEntry{Tag: cpLong, I: v})
}

// Double interns a double constant (by bit pattern).
func (cp *ConstPool) Double(v float64) int32 {
	return cp.intern(fmt.Sprintf("d:%b", v), CPEntry{Tag: cpDouble, D: v})
}

// Str interns a string constant.
func (cp *ConstPool) Str(s string) int32 {
	u := cp.UTF8(s)
	return cp.intern(fmt.Sprintf("s:%d", u), CPEntry{Tag: cpString, A: u})
}

// Class interns a class reference.
func (cp *ConstPool) Class(name string) int32 {
	u := cp.UTF8(name)
	return cp.intern(fmt.Sprintf("c:%d", u), CPEntry{Tag: cpClass, A: u})
}

// FieldRef interns a symbolic field reference.
func (cp *ConstPool) FieldRef(class, name, desc string) int32 {
	c, n, d := cp.Class(class), cp.UTF8(name), cp.UTF8(desc)
	return cp.intern(fmt.Sprintf("f:%d:%d:%d", c, n, d),
		CPEntry{Tag: cpFieldRef, A: c, B: n, C: d})
}

// MethodRef interns a symbolic method reference.
func (cp *ConstPool) MethodRef(class, name, desc string) int32 {
	c, n, d := cp.Class(class), cp.UTF8(name), cp.UTF8(desc)
	return cp.intern(fmt.Sprintf("m:%d:%d:%d", c, n, d),
		CPEntry{Tag: cpMethodRef, A: c, B: n, C: d})
}

// ExcEntry is one exception-table row.
type ExcEntry struct {
	Start, End, Handler int32
	CatchType           int32 // constant-pool class index, 0 = any
}

// Method is one compiled method.
type Method struct {
	Name      string
	Desc      string
	Static    bool
	Code      []Instr
	MaxLocals int
	ExcTable  []ExcEntry
}

// Sig renders name+descriptor.
func (m *Method) Sig() string { return m.Name + m.Desc }

// FieldInfo is one declared field.
type FieldInfo struct {
	Name   string
	Desc   string
	Static bool
}

// ClassFile is one compiled class.
type ClassFile struct {
	Name    string
	Super   string
	CP      *ConstPool
	Fields  []FieldInfo
	Methods []*Method
}

// Program is a set of class files (the baseline's "jar").
type Program struct {
	Classes []*ClassFile
	// Main names the class holding static main, "" if none.
	Main string
}

// NumInstrs counts the instructions of a class (the paper's Figure 5
// column for Java bytecode).
func (cf *ClassFile) NumInstrs() int {
	n := 0
	for _, m := range cf.Methods {
		n += len(m.Code)
	}
	return n
}

// NumInstrs counts instructions over the whole program.
func (p *Program) NumInstrs() int {
	n := 0
	for _, c := range p.Classes {
		n += c.NumInstrs()
	}
	return n
}

// descriptor helpers -----------------------------------------------------

// MethodDesc builds a Java-style method descriptor.
func MethodDesc(params []string, result string) string {
	var sb strings.Builder
	sb.WriteByte('(')
	for _, p := range params {
		sb.WriteString(p)
	}
	sb.WriteByte(')')
	sb.WriteString(result)
	return sb.String()
}

// descSlots counts the local-variable slots of a descriptor's parameters
// (long and double take two, as in the JVM).
func descSlots(desc string) int {
	n := 0
	i := 1 // skip '('
	for desc[i] != ')' {
		switch desc[i] {
		case 'J', 'D':
			n += 2
			i++
		case 'L':
			n++
			for desc[i] != ';' {
				i++
			}
			i++
		case '[':
			n++
			for desc[i] == '[' {
				i++
			}
			if desc[i] == 'L' {
				for desc[i] != ';' {
					i++
				}
			}
			i++
		default:
			n++
			i++
		}
	}
	return n
}

// paramDescs splits a method descriptor into its parameter descriptors
// and the result descriptor.
func paramDescs(desc string) ([]string, string) {
	var out []string
	i := 1
	for desc[i] != ')' {
		start := i
		for desc[i] == '[' {
			i++
		}
		if desc[i] == 'L' {
			for desc[i] != ';' {
				i++
			}
		}
		i++
		out = append(out, desc[start:i])
	}
	return out, desc[i+1:]
}
