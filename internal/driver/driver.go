// Package driver wires the compilation pipeline together: TJ source →
// parse → sema → SafeTSA build (→ optimize) → wire encode, plus the
// consumer side (decode → verify → execute). The cmd tools, the bench
// harness, the codeserver pool, and the tests all go through these
// helpers.
//
// Every stage has a context-aware form (FrontendContext, …) used by the
// concurrent codeserver; the plain forms are shorthands bound to
// context.Background(). Errors are tagged with an ErrorKind so servers
// can map user-program faults and pipeline faults to different failure
// classes.
package driver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"

	"safetsa/internal/bytecode"
	"safetsa/internal/core"
	"safetsa/internal/interp"
	"safetsa/internal/lang/ast"
	"safetsa/internal/lang/parser"
	"safetsa/internal/lang/sema"
	"safetsa/internal/obs"
	"safetsa/internal/opt"
	"safetsa/internal/rt"
	"safetsa/internal/ssabuild"
)

// Frontend parses and checks a set of named TJ sources.
func Frontend(files map[string]string) (*sema.Program, error) {
	return FrontendContext(context.Background(), files)
}

// FrontendContext parses and checks a set of named TJ sources, honoring
// cancellation between files.
func FrontendContext(ctx context.Context, files map[string]string) (*sema.Program, error) {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	var asts []*ast.File
	var errs []error
	_, psp := obs.Start(ctx, "parse")
	for _, n := range names {
		if err := ctx.Err(); err != nil {
			psp.End()
			return nil, err
		}
		f, ferrs := parser.ParseFile(n, files[n])
		errs = append(errs, ferrs...)
		asts = append(asts, f)
	}
	psp.End()
	if len(errs) > 0 {
		return nil, wrapKind(KindParse, fmt.Errorf("parse: %w", errors.Join(errs...)))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, ssp := obs.Start(ctx, "sema")
	prog, serrs := sema.Check(asts...)
	ssp.End()
	if len(serrs) > 0 {
		return nil, wrapKind(KindSema, fmt.Errorf("sema: %w", errors.Join(serrs...)))
	}
	return prog, nil
}

// CompileTSA builds the (unoptimized) SafeTSA module for a program.
func CompileTSA(prog *sema.Program) (*core.Module, error) {
	return CompileTSAContext(context.Background(), prog)
}

// CompileTSAContext builds and verifies the SafeTSA module for a checked
// program. A verifier rejection here is a producer bug, not a user error.
func CompileTSAContext(ctx context.Context, prog *sema.Program) (*core.Module, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, bsp := obs.Start(ctx, "build")
	mod, err := ssabuild.Build(prog)
	bsp.End()
	if err != nil {
		return nil, wrapKind(KindInternal, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, vsp := obs.Start(ctx, "verify")
	err = mod.Verify(core.VerifyOptions{})
	vsp.End()
	if err != nil {
		return nil, wrapKind(KindInternal, fmt.Errorf("safetsa verifier: %w", err))
	}
	return mod, nil
}

// CompileTSASource is the one-call helper: source text → verified module.
func CompileTSASource(files map[string]string) (*core.Module, error) {
	return CompileTSASourceContext(context.Background(), files)
}

// CompileTSASourceContext is the context-aware form of CompileTSASource.
func CompileTSASourceContext(ctx context.Context, files map[string]string) (*core.Module, error) {
	prog, err := FrontendContext(ctx, files)
	if err != nil {
		return nil, err
	}
	return CompileTSAContext(ctx, prog)
}

// OptimizeModule runs the producer-side optimizer and re-verifies the
// module, returning the optimization statistics.
func OptimizeModule(mod *core.Module) (opt.Stats, error) {
	return OptimizeModuleContext(context.Background(), mod)
}

// OptimizeModuleContext is the context-aware form of OptimizeModule.
func OptimizeModuleContext(ctx context.Context, mod *core.Module) (opt.Stats, error) {
	return OptimizeModuleOptions(ctx, mod, opt.Options{})
}

// OptimizeModuleOptions runs the optimizer tier the options select
// (intraprocedural by default, interprocedural with ModuleLevel) and
// re-verifies the module.
func OptimizeModuleOptions(ctx context.Context, mod *core.Module, o opt.Options) (opt.Stats, error) {
	if err := ctx.Err(); err != nil {
		return opt.Stats{}, err
	}
	_, osp := obs.Start(ctx, "passes")
	st := opt.OptimizeWithOptions(mod, o)
	osp.End()
	_, vsp := obs.Start(ctx, "verify")
	err := mod.Verify(core.VerifyOptions{})
	vsp.End()
	if err != nil {
		return st, wrapKind(KindInternal, fmt.Errorf("safetsa verifier after optimization: %w", err))
	}
	return st, nil
}

// CompileTSASourceOpt compiles and optimizes in one call.
func CompileTSASourceOpt(files map[string]string) (*core.Module, opt.Stats, error) {
	mod, err := CompileTSASource(files)
	if err != nil {
		return nil, opt.Stats{}, err
	}
	st, err := OptimizeModule(mod)
	return mod, st, err
}

// CompileBytecode builds the baseline stack-bytecode program.
func CompileBytecode(prog *sema.Program) (*bytecode.Program, error) {
	return bytecode.Compile(prog)
}

// RunBytecode links and executes a bytecode program's main, returning its
// printed output.
func RunBytecode(p *bytecode.Program, maxSteps int64) (string, error) {
	var out bytes.Buffer
	env := &rt.Env{Out: &out, MaxSteps: maxSteps}
	vm, err := bytecode.NewVM(p, env)
	if err != nil {
		return out.String(), err
	}
	err = vm.RunMain()
	return out.String(), err
}

// Engine names accepted by RunModuleEngine and the cmd -engine flags.
const (
	EngineReference = "reference"
	EnginePrepared  = "prepared"
	EngineCompiled  = "compiled"
)

// RunModule loads and executes a module's main method, returning its
// printed output. maxSteps bounds execution (0 = unlimited).
func RunModule(mod *core.Module, maxSteps int64) (string, error) {
	return RunModuleContext(context.Background(), mod, maxSteps)
}

// RunModuleContext is the context-aware form of RunModule: cancelling ctx
// interrupts the guest program at the next step-budget check. Load/link
// failures are tagged KindVerify (the unit is at fault); execution
// failures are tagged KindRuntime.
func RunModuleContext(ctx context.Context, mod *core.Module, maxSteps int64) (string, error) {
	var out bytes.Buffer
	env := &rt.Env{Out: &out, MaxSteps: maxSteps, Interrupt: ctx.Done()}
	l, err := interp.Load(mod, env)
	if err != nil {
		return out.String(), wrapKind(KindVerify, err)
	}
	if err := l.RunMain(); err != nil {
		return out.String(), wrapKind(KindRuntime, err)
	}
	return out.String(), nil
}

// RunModulePrepared verifies, prepares, and executes a module on the
// prepared register machine.
func RunModulePrepared(mod *core.Module, maxSteps int64) (string, error) {
	return RunModulePreparedContext(context.Background(), mod, maxSteps)
}

// RunModulePreparedContext is the context-aware form of
// RunModulePrepared: verifier first, then the load-time Prepare pass
// (under a "prepare" span), then a prepared-engine session.
func RunModulePreparedContext(ctx context.Context, mod *core.Module, maxSteps int64) (string, error) {
	if err := mod.Verify(core.VerifyOptions{}); err != nil {
		return "", wrapKind(KindVerify, fmt.Errorf("interp: module rejected by verifier: %w", err))
	}
	_, psp := obs.Start(ctx, "prepare")
	prep, err := interp.Prepare(mod)
	psp.End()
	if err != nil {
		return "", wrapKind(KindVerify, err)
	}
	var out bytes.Buffer
	env := &rt.Env{Out: &out, MaxSteps: maxSteps, Interrupt: ctx.Done()}
	l, err := interp.LoadTrustedPrepared(mod, prep, env)
	if err != nil {
		return out.String(), wrapKind(KindVerify, err)
	}
	if err := l.RunMain(); err != nil {
		return out.String(), wrapKind(KindRuntime, err)
	}
	return out.String(), nil
}

// RunModuleCompiled verifies, prepares, compiles, and executes a module
// on the closure-threaded engine.
func RunModuleCompiled(mod *core.Module, maxSteps int64) (string, error) {
	return RunModuleCompiledContext(context.Background(), mod, maxSteps)
}

// RunModuleCompiledContext is the context-aware form of
// RunModuleCompiled: verifier first, then the load-time Prepare pass
// (under a "prepare" span), the closure-fusing Compile pass (under a
// "compile_backend" span), then a compiled-engine session.
func RunModuleCompiledContext(ctx context.Context, mod *core.Module, maxSteps int64) (string, error) {
	if err := mod.Verify(core.VerifyOptions{}); err != nil {
		return "", wrapKind(KindVerify, fmt.Errorf("interp: module rejected by verifier: %w", err))
	}
	_, psp := obs.Start(ctx, "prepare")
	prep, err := interp.Prepare(mod)
	psp.End()
	if err != nil {
		return "", wrapKind(KindVerify, err)
	}
	_, csp := obs.Start(ctx, "compile_backend")
	comp, err := interp.Compile(mod, prep)
	csp.End()
	if err != nil {
		return "", wrapKind(KindVerify, err)
	}
	var out bytes.Buffer
	env := &rt.Env{Out: &out, MaxSteps: maxSteps, Interrupt: ctx.Done()}
	l, err := interp.LoadTrustedCompiled(mod, comp, env)
	if err != nil {
		return out.String(), wrapKind(KindVerify, err)
	}
	if err := l.RunMain(); err != nil {
		return out.String(), wrapKind(KindRuntime, err)
	}
	return out.String(), nil
}

// RunModuleEngine dispatches to the named engine: "prepared" (also the
// default for ""), "compiled", or "reference".
func RunModuleEngine(ctx context.Context, mod *core.Module, maxSteps int64, engine string) (string, error) {
	switch engine {
	case "", EnginePrepared:
		return RunModulePreparedContext(ctx, mod, maxSteps)
	case EngineCompiled:
		return RunModuleCompiledContext(ctx, mod, maxSteps)
	case EngineReference:
		return RunModuleContext(ctx, mod, maxSteps)
	}
	return "", wrapKind(KindParse, fmt.Errorf("unknown engine %q (want %q, %q, or %q)",
		engine, EnginePrepared, EngineCompiled, EngineReference))
}
