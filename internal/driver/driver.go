// Package driver wires the compilation pipeline together: TJ source →
// parse → sema → SafeTSA build (→ optimize) → wire encode, plus the
// consumer side (decode → verify → execute). The cmd tools, the bench
// harness, and the tests all go through these helpers.
package driver

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"safetsa/internal/bytecode"
	"safetsa/internal/core"
	"safetsa/internal/interp"
	"safetsa/internal/lang/ast"
	"safetsa/internal/lang/parser"
	"safetsa/internal/lang/sema"
	"safetsa/internal/opt"
	"safetsa/internal/rt"
	"safetsa/internal/ssabuild"
)

// Frontend parses and checks a set of named TJ sources.
func Frontend(files map[string]string) (*sema.Program, error) {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	var asts []*ast.File
	var errs []error
	for _, n := range names {
		f, ferrs := parser.ParseFile(n, files[n])
		errs = append(errs, ferrs...)
		asts = append(asts, f)
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("parse: %w", errors.Join(errs...))
	}
	prog, serrs := sema.Check(asts...)
	if len(serrs) > 0 {
		return nil, fmt.Errorf("sema: %w", errors.Join(serrs...))
	}
	return prog, nil
}

// CompileTSA builds the (unoptimized) SafeTSA module for a program.
func CompileTSA(prog *sema.Program) (*core.Module, error) {
	mod, err := ssabuild.Build(prog)
	if err != nil {
		return nil, err
	}
	if err := mod.Verify(core.VerifyOptions{}); err != nil {
		return nil, fmt.Errorf("safetsa verifier: %w", err)
	}
	return mod, nil
}

// CompileTSASource is the one-call helper: source text → verified module.
func CompileTSASource(files map[string]string) (*core.Module, error) {
	prog, err := Frontend(files)
	if err != nil {
		return nil, err
	}
	return CompileTSA(prog)
}

// OptimizeModule runs the producer-side optimizer and re-verifies the
// module, returning the optimization statistics.
func OptimizeModule(mod *core.Module) (opt.Stats, error) {
	st := opt.Optimize(mod)
	if err := mod.Verify(core.VerifyOptions{}); err != nil {
		return st, fmt.Errorf("safetsa verifier after optimization: %w", err)
	}
	return st, nil
}

// CompileTSASourceOpt compiles and optimizes in one call.
func CompileTSASourceOpt(files map[string]string) (*core.Module, opt.Stats, error) {
	mod, err := CompileTSASource(files)
	if err != nil {
		return nil, opt.Stats{}, err
	}
	st, err := OptimizeModule(mod)
	return mod, st, err
}

// CompileBytecode builds the baseline stack-bytecode program.
func CompileBytecode(prog *sema.Program) (*bytecode.Program, error) {
	return bytecode.Compile(prog)
}

// RunBytecode links and executes a bytecode program's main, returning its
// printed output.
func RunBytecode(p *bytecode.Program, maxSteps int64) (string, error) {
	var out bytes.Buffer
	env := &rt.Env{Out: &out, MaxSteps: maxSteps}
	vm, err := bytecode.NewVM(p, env)
	if err != nil {
		return out.String(), err
	}
	err = vm.RunMain()
	return out.String(), err
}

// RunModule loads and executes a module's main method, returning its
// printed output. maxSteps bounds execution (0 = unlimited).
func RunModule(mod *core.Module, maxSteps int64) (string, error) {
	var out bytes.Buffer
	env := &rt.Env{Out: &out, MaxSteps: maxSteps}
	l, err := interp.Load(mod, env)
	if err != nil {
		return out.String(), err
	}
	err = l.RunMain()
	return out.String(), err
}
