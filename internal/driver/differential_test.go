package driver

import (
	"testing"
)

// diffPrograms are executed through all three pipelines — plain SafeTSA,
// optimized SafeTSA, and the bytecode baseline — and must print identical
// output. They deliberately stress the semantics corners where the
// pipelines could diverge: evaluation order, exceptions during partial
// evaluation, inheritance, numeric edge cases, and string conversion.
var diffPrograms = map[string]string{
	"eval-order": `
class Main {
    static int trace(String tag, int v) { System.out.print(tag); return v; }
    static void main() {
        int[] a = new int[4];
        a[trace("i", 1)] = trace("v", 9);
        System.out.println(a[1]);
        int x = trace("a", 2) + trace("b", 3) * trace("c", 4);
        System.out.println(x);
    }
}`,
	"exception-partial": `
class Main {
    static int side;
    static int bump() { side++; return side; }
    static void main() {
        int[] a = new int[2];
        try {
            a[5] = bump();
        } catch (IndexOutOfBoundsException e) {
            System.out.println("oob after " + side);
        }
        int[] b = null;
        try {
            b[0] = bump();
        } catch (NullPointerException e) {
            System.out.println("npe after " + side);
        }
    }
}`,
	"numeric-edges": `
class Main {
    static void main() {
        int min = -2147483647 - 1;
        System.out.println(min / -1);
        System.out.println(min % -1);
        System.out.println(7 / -2);
        System.out.println(7 % -2);
        System.out.println(-7 % 2);
        long lmin = -9223372036854775807L - 1L;
        System.out.println(lmin / -1L);
        System.out.println(1 << 33);
        System.out.println(1L << 33);
        System.out.println((int) 3.99);
        System.out.println((int) -3.99);
        System.out.println((char) 66);
        System.out.println((int) 'B');
        System.out.println(0.1 + 0.2);
        System.out.println(1.0 / 0.0);
        System.out.println(-1.0 / 0.0);
        System.out.println(0.0 / 0.0);
    }
}`,
	"inheritance": `
class Animal {
    String name;
    Animal(String n) { name = n; }
    String speak() { return "..."; }
    String describe() { return name + " says " + speak(); }
}
class Dog extends Animal {
    Dog(String n) { super(n); }
    String speak() { return "woof"; }
}
class Puppy extends Dog {
    Puppy() { super("puppy"); }
    String speak() { return "yip " + super.speak(); }
}
class Main {
    static void main() {
        Animal[] zoo = new Animal[3];
        zoo[0] = new Animal("thing");
        zoo[1] = new Dog("rex");
        zoo[2] = new Puppy();
        for (int i = 0; i < zoo.length; i++) {
            System.out.println(zoo[i].describe());
        }
        Animal a = zoo[2];
        System.out.println(a instanceof Dog);
        System.out.println(a instanceof Puppy);
        Dog d = (Dog) a;
        System.out.println(d.name);
    }
}`,
	"strings": `
class Main {
    static void main() {
        String s = "";
        for (int i = 0; i < 5; i++) {
            s += i + ",";
        }
        System.out.println(s);
        System.out.println(s.length());
        System.out.println("abc".compareTo("abd"));
        System.out.println("hello world".indexOf("world"));
        System.out.println("" + 'x' + 'y');
        System.out.println(1 + 2 + "three" + 4 + 5);
        System.out.println("val=" + 1.5 + " " + true + " " + 'c' + " " + 10L);
    }
}`,
	"compound": `
class Box { int v; double d; }
class Main {
    static void main() {
        Box b = new Box();
        b.v = 10;
        b.v += 5;
        b.v *= 2;
        b.v -= 3;
        b.v /= 2;
        System.out.println(b.v);
        int[] a = new int[3];
        a[1] = 4;
        a[1] <<= 2;
        a[1] |= 1;
        a[1] ^= 6;
        System.out.println(a[1]);
        int i = 0;
        int j = i++ + ++i;
        System.out.println(i + " " + j);
        b.d = 1.5;
        b.d *= 4.0;
        System.out.println(b.d);
        char c = 'a';
        c++;
        System.out.println(c);
    }
}`,
	"casts-and-checks": `
class A {}
class B extends A {}
class Main {
    static void main() {
        A a = new A();
        try {
            B b = (B) a;
            System.out.println(b == null);
        } catch (ClassCastException e) {
            System.out.println("cce");
        }
        A nb = new B();
        B ok = (B) nb;
        System.out.println(ok != null);
        Object o = "text";
        System.out.println(o instanceof String);
        String t = (String) o;
        System.out.println(t.length());
    }
}`,
	"recursion": `
class Main {
    static long fib(int n) {
        if (n < 2) return n;
        return fib(n - 1) + fib(n - 2);
    }
    static int ack(int m, int n) {
        if (m == 0) return n + 1;
        if (n == 0) return ack(m - 1, 1);
        return ack(m - 1, ack(m, n - 1));
    }
    static void main() {
        System.out.println(fib(20));
        System.out.println(ack(2, 3));
    }
}`,
	"nested-try": `
class Main {
    static void main() {
        try {
            try {
                int[] a = new int[1];
                a[3] = 1;
            } finally {
                System.out.println("inner finally");
            }
        } catch (Exception e) {
            System.out.println("outer: " + e.getMessage());
        }
        try {
            try {
                throw new Exception("deep");
            } catch (ArithmeticException e) {
                System.out.println("wrong handler");
            }
        } catch (Exception e) {
            System.out.println("right handler: " + e.getMessage());
        }
    }
}`,
	"loops-hard": `
class Main {
    static void main() {
        int total = 0;
        for (int i = 0; i < 5; i++) {
            for (int j = 0; j < 5; j++) {
                if (j > i) break;
                if ((i + j) % 2 == 0) continue;
                total += i * 10 + j;
            }
        }
        System.out.println(total);
        int n = 0;
        while (true) {
            n++;
            if (n >= 7) break;
        }
        System.out.println(n);
        int m = 10;
        do {
            m -= 3;
            if (m == 4) continue;
        } while (m > 0);
        System.out.println(m);
    }
}`,
}

func TestDifferentialPipelines(t *testing.T) {
	for name, src := range diffPrograms {
		t.Run(name, func(t *testing.T) {
			files := map[string]string{"Main.tj": src}
			prog, err := Frontend(files)
			if err != nil {
				t.Fatalf("frontend: %v", err)
			}

			bc, err := CompileBytecode(prog)
			if err != nil {
				t.Fatalf("bytecode compile: %v", err)
			}
			want, err := RunBytecode(bc, 50_000_000)
			if err != nil {
				t.Fatalf("bytecode run: %v (output %q)", err, want)
			}

			tsa, err := CompileTSA(prog)
			if err != nil {
				t.Fatalf("safetsa compile: %v", err)
			}
			got, err := RunModule(tsa, 50_000_000)
			if err != nil {
				t.Fatalf("safetsa run: %v (output %q)", err, got)
			}
			if got != want {
				t.Fatalf("SafeTSA diverges from bytecode:\nbytecode: %q\nsafetsa:  %q", want, got)
			}

			if _, err := OptimizeModule(tsa); err != nil {
				t.Fatalf("optimize: %v", err)
			}
			gotOpt, err := RunModule(tsa, 50_000_000)
			if err != nil {
				t.Fatalf("optimized run: %v", err)
			}
			if gotOpt != want {
				t.Fatalf("optimized SafeTSA diverges:\nbytecode:  %q\noptimized: %q", want, gotOpt)
			}
		})
	}
}
