package driver

import (
	"testing"
)

// optPrograms are differential-test inputs: each program's output must be
// identical before and after producer-side optimization.
var optPrograms = map[string]string{
	"cse-fields": `
class P { int x; int y; P(int a, int b) { x = a; y = b; } }
class Main {
    static void main() {
        P p = new P(3, 4);
        int d = p.x * p.x + p.y * p.y;   // repeated loads, repeated nullchecks
        int e = p.x * p.x + p.y * p.y;
        System.out.println(d + e);
        p.x = 10;                         // store kills memory
        System.out.println(p.x * p.x + p.y * p.y);
    }
}`,
	"cse-arrays": `
class Main {
    static void main() {
        int[] a = new int[5];
        for (int i = 0; i < 5; i++) a[i] = i + 1;
        int s = 0;
        int dead = 0;                     // its loop phi and adds are DCE fodder
        for (int i = 0; i < 5; i++) {
            s += a[i] * a[i] + a[i];      // duplicate index checks + loads
            dead += a[i];
        }
        System.out.println(s);
    }
}`,
	"constants": `
class Main {
    static void main() {
        int x = 3 * 4 + 5;
        double y = 2.0 * 8.0;
        boolean b = 3 < 4 && 4 < 3;
        System.out.println(x);
        System.out.println(y);
        System.out.println(b);
    }
}`,
	"loop-phis": `
class Main {
    static void main() {
        int a = 0; int b = 1; int c = 2; int unused = 99;
        for (int i = 0; i < 8; i++) {
            a += i;
            if (i % 2 == 0) { b *= 2; }
        }
        System.out.println(a);
        System.out.println(b);
        System.out.println(c);
    }
}`,
	"exceptions": `
class Main {
    static int f(int[] a, int i) {
        try {
            return a[i] + a[i];           // duplicate checks inside try
        } catch (IndexOutOfBoundsException e) {
            return -1;
        }
    }
    static void main() {
        int[] a = new int[3];
        a[0] = 7; a[1] = 8; a[2] = 9;
        System.out.println(f(a, 1));
        System.out.println(f(a, 5));
    }
}`,
	"division": `
class Main {
    static void main() {
        int n = 100;
        int d = 7;
        System.out.println(n / d + n / d);  // duplicate xprimitive
        try {
            System.out.println(n / (d - 7));
        } catch (ArithmeticException e) {
            System.out.println("div0");
        }
    }
}`,
}

func TestOptimizedOutputMatches(t *testing.T) {
	for name, src := range optPrograms {
		t.Run(name, func(t *testing.T) {
			files := map[string]string{"Main.tj": src}
			plain, err := CompileTSASource(files)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			want, err := RunModule(plain, 10_000_000)
			if err != nil {
				t.Fatalf("run plain: %v", err)
			}
			optMod, st, err := CompileTSASourceOpt(files)
			if err != nil {
				t.Fatalf("optimize: %v", err)
			}
			got, err := RunModule(optMod, 10_000_000)
			if err != nil {
				t.Fatalf("run optimized: %v", err)
			}
			if got != want {
				t.Fatalf("output diverged:\nplain:     %q\noptimized: %q", want, got)
			}
			if st.InstrsAfter > st.InstrsBefore {
				t.Fatalf("optimization grew the program: %d -> %d",
					st.InstrsBefore, st.InstrsAfter)
			}
		})
	}
}

func TestOptimizationReducesChecks(t *testing.T) {
	mod, st, err := CompileTSASourceOpt(map[string]string{"Main.tj": optPrograms["cse-fields"]})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	_ = mod
	if st.NullChecksAfter >= st.NullChecksBefore {
		t.Errorf("null checks not reduced: %d -> %d", st.NullChecksBefore, st.NullChecksAfter)
	}
	if st.CSERemoved == 0 {
		t.Errorf("CSE removed nothing")
	}
	mod2, st2, err := CompileTSASourceOpt(map[string]string{"Main.tj": optPrograms["cse-arrays"]})
	if err != nil {
		t.Fatalf("compile arrays: %v", err)
	}
	_ = mod2
	if st2.ArrayChecksAfter >= st2.ArrayChecksBefore {
		t.Errorf("array checks not reduced: %d -> %d", st2.ArrayChecksBefore, st2.ArrayChecksAfter)
	}
	if st2.PhisAfter >= st2.PhisBefore {
		t.Errorf("phis not reduced: %d -> %d", st2.PhisBefore, st2.PhisAfter)
	}
}
