package driver

import (
	"strings"
	"testing"
)

func run(t *testing.T, src string) string {
	t.Helper()
	mod, err := CompileTSASource(map[string]string{"Main.tj": src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	out, err := RunModule(mod, 50_000_000)
	if err != nil {
		t.Fatalf("run: %v (output so far: %q)", err, out)
	}
	return out
}

func TestHelloArithmetic(t *testing.T) {
	out := run(t, `
class Main {
    static void main() {
        int i = 2;
        int j = 40;
        System.out.println(i + j);
        System.out.println("hello " + (i * j));
    }
}`)
	want := "42\nhello 80\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestPaperFigure1Fragment(t *testing.T) {
	// The running example of Figures 1-4: if (i > 0) j = j*i+1; else
	// j = -i*2; i = j*3;
	out := run(t, `
class Main {
    static int f(int i, int j) {
        if (i > 0) {
            j = j * i + 1;
        } else {
            j = -i * 2;
        }
        i = j * 3;
        return i;
    }
    static void main() {
        System.out.println(f(5, 7));
        System.out.println(f(-4, 9));
    }
}`)
	want := "108\n24\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestLoopsAndArrays(t *testing.T) {
	out := run(t, `
class Main {
    static void main() {
        int[] a = new int[10];
        for (int i = 0; i < a.length; i++) {
            a[i] = i * i;
        }
        int sum = 0;
        int k = 0;
        while (k < 10) {
            sum += a[k];
            k++;
        }
        System.out.println(sum);
        do {
            sum--;
        } while (sum > 280);
        System.out.println(sum);
    }
}`)
	want := "285\n280\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestObjectsAndDispatch(t *testing.T) {
	out := run(t, `
class Shape {
    int area() { return 0; }
    int describe() { return area() * 10; }
}
class Square extends Shape {
    int side;
    Square(int s) { side = s; }
    int area() { return side * side; }
}
class Main {
    static void main() {
        Shape s = new Square(4);
        System.out.println(s.area());
        System.out.println(s.describe());
        System.out.println(s instanceof Square);
        Square q = (Square) s;
        System.out.println(q.side);
    }
}`)
	want := "16\n160\ntrue\n4\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestExceptions(t *testing.T) {
	out := run(t, `
class Main {
    static int div(int a, int b) {
        try {
            return a / b;
        } catch (ArithmeticException e) {
            System.out.println("caught: " + e.getMessage());
            return -1;
        } finally {
            System.out.println("finally");
        }
    }
    static void main() {
        System.out.println(div(10, 2));
        System.out.println(div(10, 0));
        try {
            throw new Exception("boom");
        } catch (Exception e) {
            System.out.println(e.getMessage());
        }
    }
}`)
	want := "finally\n5\ncaught: / by zero\nfinally\n-1\nboom\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestShortCircuitAndTernary(t *testing.T) {
	out := run(t, `
class Main {
    static int calls;
    static boolean bump() { calls++; return true; }
    static void main() {
        boolean a = false && bump();
        boolean b = true || bump();
        System.out.println(calls);
        boolean c = true && bump();
        System.out.println(calls);
        System.out.println(a ? 1 : 2);
        System.out.println(b ? 1 : 2);
        int x = 5;
        String s = x > 3 ? "big" : "small";
        System.out.println(s);
    }
}`)
	want := "0\n1\n2\n1\nbig\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestStringsAndStatics(t *testing.T) {
	out := run(t, `
class Main {
    static String greeting = "hi";
    static void main() {
        String s = greeting + " there";
        System.out.println(s.length());
        System.out.println(s.charAt(3));
        System.out.println(s.substring(0, 2));
        System.out.println(s.equals("hi there"));
        System.out.println(s.indexOf("there"));
        String n = null;
        System.out.println("x" + n);
    }
}`)
	want := "8\nt\nhi\ntrue\n3\nxnull\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestMultiDimArraysAndMath(t *testing.T) {
	out := run(t, `
class Main {
    static void main() {
        double[][] m = new double[3][4];
        for (int i = 0; i < 3; i++)
            for (int j = 0; j < 4; j++)
                m[i][j] = i * 4 + j;
        double sum = 0.0;
        for (int i = 0; i < 3; i++)
            for (int j = 0; j < 4; j++)
                sum += m[i][j];
        System.out.println(sum);
        System.out.println(Math.sqrt(64.0));
        System.out.println(Math.abs(-3));
        System.out.println(Math.max(2.5, 7.5));
        long big = 1L << 40;
        System.out.println(big);
    }
}`)
	want := "66.0\n8.0\n3\n7.5\n1099511627776\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestUncaughtExceptionPropagates(t *testing.T) {
	mod, err := CompileTSASource(map[string]string{"Main.tj": `
class Main {
    static void main() {
        int[] a = new int[3];
        a[5] = 1;
    }
}`})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	_, err = RunModule(mod, 1_000_000)
	if err == nil || !strings.Contains(err.Error(), "IndexOutOfBounds") {
		t.Fatalf("want index error, got %v", err)
	}
}

func TestNullPointer(t *testing.T) {
	out := run(t, `
class Box { int v; }
class Main {
    static void main() {
        Box b = null;
        try {
            int x = b.v;
            System.out.println(x);
        } catch (NullPointerException e) {
            System.out.println("npe");
        }
    }
}`)
	if out != "npe\n" {
		t.Fatalf("got %q", out)
	}
}

func TestBreakContinueNested(t *testing.T) {
	out := run(t, `
class Main {
    static void main() {
        int total = 0;
        for (int i = 0; i < 10; i++) {
            if (i == 3) continue;
            if (i == 7) break;
            total += i;
        }
        System.out.println(total);
    }
}`)
	if out != "18\n" {
		t.Fatalf("got %q", out)
	}
}
