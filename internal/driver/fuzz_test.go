package driver

import (
	"fmt"
	"testing"

	"safetsa/internal/core"
	"safetsa/internal/corpus"
	"safetsa/internal/wire"
)

// TestRandomProgramDifferential generates random (deterministic) TJ
// programs and pushes each through all four pipelines — bytecode VM,
// SafeTSA evaluator, optimized SafeTSA, and the wire round trip — which
// must all print the same checksum. This is the broad-spectrum bug net
// over the whole system.
func TestRandomProgramDifferential(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	for i := 0; i < n; i++ {
		seed := fmt.Sprintf("%d", i)
		t.Run("seed"+seed, func(t *testing.T) {
			files := corpus.GenerateFuzz(seed, 4+i%5, 3+i%4)
			prog, err := Frontend(files)
			if err != nil {
				t.Fatalf("frontend: %v", err)
			}
			bc, err := CompileBytecode(prog)
			if err != nil {
				t.Fatalf("bytecode: %v", err)
			}
			if err := bc.Verify(); err != nil {
				t.Fatalf("bytecode verify: %v", err)
			}
			want, err := RunBytecode(bc, 50_000_000)
			if err != nil {
				t.Fatalf("bytecode run: %v", err)
			}

			mod, err := CompileTSA(prog)
			if err != nil {
				t.Fatalf("safetsa: %v", err)
			}
			got, err := RunModule(mod, 50_000_000)
			if err != nil || got != want {
				t.Fatalf("plain SafeTSA: %q %v, want %q", got, err, want)
			}

			if _, err := OptimizeModule(mod); err != nil {
				t.Fatalf("optimize: %v", err)
			}
			got, err = RunModule(mod, 50_000_000)
			if err != nil || got != want {
				t.Fatalf("optimized SafeTSA: %q %v, want %q", got, err, want)
			}

			data := wire.EncodeModule(mod)
			dec, err := wire.DecodeModule(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if err := dec.Verify(core.VerifyOptions{}); err != nil {
				t.Fatalf("decoded verify: %v", err)
			}
			got, err = RunModule(dec, 50_000_000)
			if err != nil || got != want {
				t.Fatalf("wire round trip: %q %v, want %q", got, err, want)
			}
		})
	}
}
