package driver_test

import (
	"fmt"
	"hash/fnv"
	"testing"

	"safetsa/internal/corpus"
	"safetsa/internal/oracle"
)

// TestRandomProgramDifferential generates random (deterministic) TJ
// programs and pushes each through the shared four-pipeline oracle —
// bytecode VM, SafeTSA evaluator, per-pass-verified optimized SafeTSA,
// and the wire round trip — which must all print the same checksum.
// This is the broad-spectrum bug net over the whole system; the same
// oracle backs FuzzDifferential below, so every seed here is also a
// replayable fuzz baseline.
func TestRandomProgramDifferential(t *testing.T) {
	n := 48
	if testing.Short() {
		n = 8
	}
	budgets := oracle.Budgets{MaxSteps: 50_000_000, MaxAlloc: 1 << 26}
	for i := 0; i < n; i++ {
		seed := fmt.Sprintf("%d", i)
		t.Run("seed"+seed, func(t *testing.T) {
			files := corpus.GenerateFuzz(seed, 4+i%5, 3+i%4)
			if _, err := oracle.Differential(files, budgets); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// FuzzFrontend feeds arbitrary source bytes to the scanner, parser, and
// semantic checker. Diagnostics are the specified behaviour; panics and
// runaways are the bugs. Inputs are size-capped so recursive-descent
// depth stays within the goroutine stack.
func FuzzFrontend(f *testing.F) {
	for _, src := range []string{
		"",
		"class Main { static void main() { System.out.println(1); } }",
		"class A extends A {}",
		"class Main { static void main() { int x = 2147483648; } }",
		"class Main { static void main() { double d = 1e; } }",
		"/* unterminated",
		"class Main { static void main() { String s = \"\\u0041\"; } }",
		"class \x80 {}",
	} {
		f.Add([]byte(src))
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		if err := oracle.CheckFrontend(src); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzDifferential lets the fuzzer steer the corpus generator: the input
// bytes pick the generator seed and program shape, and the resulting
// program must satisfy the full four-pipeline differential oracle.
// Unlike FuzzFrontend this never sees invalid programs — every failure
// is a genuine cross-pipeline fidelity bug.
func FuzzDifferential(f *testing.F) {
	f.Add([]byte("0"))
	f.Add([]byte("differential"))
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})
	budgets := oracle.Budgets{MaxSteps: 50_000_000, MaxAlloc: 1 << 26}
	f.Fuzz(func(t *testing.T, data []byte) {
		h := fnv.New64a()
		h.Write(data)
		sum := h.Sum64()
		// Class names are "Fz"+seed, so the seed must be identifier-safe.
		seed := fmt.Sprintf("x%x", sum)
		methods := 2 + int(sum>>8&0xff)%6
		stmts := 2 + int(sum>>16&0xff)%5
		files := corpus.GenerateFuzz(seed, methods, stmts)
		if _, err := oracle.Differential(files, budgets); err != nil {
			t.Fatal(err)
		}
	})
}
