package driver

import "testing"

// semCases pin exact Java-observable behaviour on all pipelines (the run
// helper below pushes each through bytecode, SafeTSA, and optimized
// SafeTSA and asserts agreement before comparing to the expectation).
var semCases = []struct {
	name, src, want string
}{
	{"char-arith", `
class Main { static void main() {
    char c = 'A';
    int i = c + 1;
    char d = (char)(c + 2);
    System.out.println(i);
    System.out.println(d);
    System.out.println('z' - 'a');
    char w = (char) 70000;       // wraps modulo 2^16
    System.out.println((int) w);
} }`, "66\nC\n25\n4464\n"},

	{"int-overflow", `
class Main { static void main() {
    int big = 2147483647;
    System.out.println(big + 1);
    System.out.println(big * 2);
    long lbig = 9223372036854775807L;
    System.out.println(lbig + 1L);
} }`, "-2147483648\n-2\n-9223372036854775808\n"},

	{"shift-masking", `
class Main { static void main() {
    System.out.println(1 << 32);     // shift count masked to 0
    System.out.println(1 << 31);
    System.out.println(-8 >> 1);     // arithmetic shift
    System.out.println(1L << 62);
    System.out.println(5L >> 65);    // 65 & 63 = 1
} }`, "1\n-2147483648\n-4\n4611686018427387904\n2\n"},

	{"field-hiding", `
class A { int v = 1; int get() { return v; } }
class B extends A { int v = 2; int get() { return v; } }
class Main { static void main() {
    B b = new B();
    A a = b;
    System.out.println(a.v);       // static binding: A's field
    System.out.println(b.v);
    System.out.println(a.get());   // dynamic dispatch: B's method
} }`, "1\n2\n2\n"},

	{"array-aliasing", `
class Main { static void main() {
    int[][] m = new int[2][2];
    int[] row = m[0];
    row[1] = 5;
    System.out.println(m[0][1]);
    m[1] = row;
    m[1][0] = 9;
    System.out.println(m[0][0]);
} }`, "5\n9\n"},

	{"string-identity-vs-equals", `
class Main { static void main() {
    String a = "xy";
    String b = "x" + "y";
    System.out.println(a.equals(b));
    String n = null;
    System.out.println(n == null);
    System.out.println("abc".substring(1, 1).length());
} }`, "true\ntrue\n0\n"},

	{"ternary-chain", `
class Main {
    static String grade(int s) {
        return s >= 90 ? "A" : s >= 80 ? "B" : s >= 70 ? "C" : "F";
    }
    static void main() {
        System.out.println(grade(95) + grade(85) + grade(75) + grade(10));
    }
}`, "ABCF\n"},

	{"compound-on-fields-and-statics", `
class K { static int s = 3; int f = 4; }
class Main { static void main() {
    K k = new K();
    K.s *= 5;
    k.f <<= 2;
    k.f ^= 1;
    System.out.println(K.s + " " + k.f);
} }`, "15 17\n"},

	{"postinc-in-index", `
class Main { static void main() {
    int[] a = new int[4];
    int i = 0;
    a[i++] = 10;
    a[i++] = 20;
    a[i] = a[i - 1] + a[--i];    // index evaluated first: stores to a[2]
    System.out.println(a[0] + " " + a[1] + " " + a[2] + " " + i);
} }`, "10 20 40 1\n"},

	{"do-while-once", `
class Main { static void main() {
    int n = 10;
    do { n++; } while (n < 5);
    System.out.println(n);
} }`, "11\n"},

	{"exception-from-ctor", `
class Picky {
    int v;
    Picky(int x) {
        if (x < 0) { throw new Exception("neg"); }
        v = x;
    }
}
class Main { static void main() {
    try {
        Picky p = new Picky(-1);
        System.out.println(p.v);
    } catch (Exception e) {
        System.out.println("ctor: " + e.getMessage());
    }
} }`, "ctor: neg\n"},

	{"nested-catch-rethrow", `
class Main { static void main() {
    try {
        try {
            throw new ArithmeticException("inner");
        } catch (ArithmeticException e) {
            throw new Exception("re:" + e.getMessage());
        }
    } catch (Exception e) {
        System.out.println(e.getMessage());
    }
} }`, "re:inner\n"},

	{"finally-with-break", `
class Main { static void main() {
    int log = 0;
    for (int i = 0; i < 5; i++) {
        try {
            if (i == 2) { break; }
            log = log * 10 + i;
        } finally {
            log = log * 10 + 9;
        }
    }
    System.out.println(log);
} }`, "9199\n"},

	{"double-formatting", `
class Main { static void main() {
    System.out.println(1.0 / 3.0);
    System.out.println(2.5e10);
    System.out.println(-0.5);
    System.out.println(100.0);
    System.out.println(10000000.0);
    System.out.println(9999999.0);
    System.out.println(0.001);
    System.out.println(0.0001);
    System.out.println(-0.0);
} }`, "0.3333333333333333\n2.5E10\n-0.5\n100.0\n1.0E7\n9999999.0\n0.001\n1.0E-4\n-0.0\n"},

	{"instanceof-null", `
class A {}
class Main { static void main() {
    A a = null;
    System.out.println(a instanceof A);
    Object o = new A();
    System.out.println(o instanceof A);
    int[] xs = new int[1];
    Object oo = xs;
    System.out.println(oo instanceof int[]);
    System.out.println(oo instanceof double[]);
} }`, "false\ntrue\ntrue\nfalse\n"},

	{"boolean-bitwise", `
class Main {
    static int n;
    static boolean bump() { n++; return true; }
    static void main() {
        boolean b = false & bump();   // non-short-circuit: bump runs
        System.out.println(b + " " + n);
        boolean c = false && bump();  // short-circuit: bump skipped
        System.out.println(c + " " + n);
        System.out.println(true ^ true);
    }
}`, "false 1\nfalse 1\nfalse\n"},
}

func TestSemanticsBattery(t *testing.T) {
	for _, c := range semCases {
		t.Run(c.name, func(t *testing.T) {
			files := map[string]string{"Main.tj": c.src}
			prog, err := Frontend(files)
			if err != nil {
				t.Fatalf("frontend: %v", err)
			}
			bc, err := CompileBytecode(prog)
			if err != nil {
				t.Fatalf("bytecode: %v", err)
			}
			bcOut, err := RunBytecode(bc, 5_000_000)
			if err != nil {
				t.Fatalf("bytecode run: %v (out %q)", err, bcOut)
			}
			tsa, err := CompileTSA(prog)
			if err != nil {
				t.Fatalf("safetsa: %v", err)
			}
			tsaOut, err := RunModule(tsa, 5_000_000)
			if err != nil {
				t.Fatalf("safetsa run: %v", err)
			}
			if _, err := OptimizeModule(tsa); err != nil {
				t.Fatal(err)
			}
			optOut, err := RunModule(tsa, 5_000_000)
			if err != nil {
				t.Fatalf("optimized run: %v", err)
			}
			if bcOut != tsaOut || tsaOut != optOut {
				t.Fatalf("pipelines disagree:\nbytecode %q\nsafetsa  %q\nopt      %q",
					bcOut, tsaOut, optOut)
			}
			if bcOut != c.want {
				t.Fatalf("got %q, want %q", bcOut, c.want)
			}
		})
	}
}
