package driver

import "errors"

// ErrorKind classifies pipeline failures so that callers (in particular
// the codeserver HTTP layer) can distinguish faults in the submitted
// program from faults in the pipeline itself.
type ErrorKind int

const (
	// KindInternal is the zero kind: a pipeline bug or resource failure
	// (ssabuild inconsistency, post-build verifier rejection, stage
	// timeout). Maps to HTTP 5xx.
	KindInternal ErrorKind = iota
	// KindParse is a syntax error in the submitted TJ source.
	KindParse
	// KindSema is a type/semantic error in the submitted TJ source.
	KindSema
	// KindVerify is a distribution unit rejected on the consumer side
	// (wire decode failure, module verifier, or link check).
	KindVerify
	// KindRuntime is a guest-program execution failure (uncaught TJ
	// exception, step limit, interrupt).
	KindRuntime
)

func (k ErrorKind) String() string {
	switch k {
	case KindParse:
		return "parse"
	case KindSema:
		return "sema"
	case KindVerify:
		return "verify"
	case KindRuntime:
		return "runtime"
	default:
		return "internal"
	}
}

// Error attaches an ErrorKind to a pipeline error. Error() returns the
// wrapped message unchanged, so existing text-matching callers are
// unaffected.
type Error struct {
	Kind ErrorKind
	Err  error
}

func (e *Error) Error() string { return e.Err.Error() }
func (e *Error) Unwrap() error { return e.Err }

// wrapKind tags err with a kind (nil-safe). An already-tagged error keeps
// its original kind.
func wrapKind(kind ErrorKind, err error) error {
	if err == nil {
		return nil
	}
	var de *Error
	if errors.As(err, &de) {
		return err
	}
	return &Error{Kind: kind, Err: err}
}

// KindOf reports the kind of a pipeline error; untagged errors are
// internal.
func KindOf(err error) ErrorKind {
	var de *Error
	if errors.As(err, &de) {
		return de.Kind
	}
	return KindInternal
}

// IsUserError reports whether the failure was caused by the submitted
// program (source or distribution unit) rather than by the pipeline.
func IsUserError(err error) bool {
	switch KindOf(err) {
	case KindParse, KindSema, KindVerify, KindRuntime:
		return true
	}
	return false
}
